// Topozoo: build every topology in the repository as a host-switch graph
// at comparable scale and print its metrics against the paper's analytic
// bounds — a tour of §6.1 plus the proposed construction.
//
//	go run ./examples/topozoo
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/topo"
)

func main() {
	const n = 1024

	fmt.Printf("%-22s %-6s %-6s %-8s %-9s %-10s %-10s\n",
		"topology", "m", "r", "links", "h-ASPL", "diameter", "Thm2-LB")

	row := func(name string, g *hsgraph.Graph) {
		met := g.Evaluate()
		lb := bounds.HASPLLowerBound(g.Order(), g.Radix())
		fmt.Printf("%-22s %-6d %-6d %-8d %-9.4f %-10d %-10.4f\n",
			name, g.Switches(), g.Radix(), g.NumEdges(), met.HASPL, met.Diameter, lb)
	}

	// The paper's three conventional baselines at their §6.3 configurations.
	torus, err := topo.Torus(5, 3, 15)
	must(err)
	g, err := torus.Build(n)
	must(err)
	row("5-D torus (base 3)", g)

	df, err := topo.Dragonfly(8)
	must(err)
	g, err = df.Build(n)
	must(err)
	row("dragonfly (a=8)", g)

	ft, err := topo.FatTree(16)
	must(err)
	g, err = ft.Build(n)
	must(err)
	row("16-ary fat-tree", g)

	// Extras.
	hc, err := topo.Hypercube(7, 15)
	must(err)
	g, err = hc.Build(n)
	must(err)
	row("7-cube", g)

	// Related-work random models (§2.1 of the paper).
	g, err = topo.CyclePlusMatching(n, 256, 15, 1)
	must(err)
	row("cycle+matching", g)
	g, err = topo.WattsStrogatz(n, 256, 15, 3, 0.2, 1)
	must(err)
	row("watts-strogatz", g)

	// The proposed ORP topologies at the matching radixes.
	for _, r := range []int{15, 16} {
		top, err := core.Solve(n, r, core.Options{Iterations: 15000, Seed: 3})
		must(err)
		row(fmt.Sprintf("proposed ORP (r=%d)", r), top.Graph)
	}

	fmt.Println("\nNote how the proposed topologies sit closest to the Theorem 2 bound")
	fmt.Println("while using the fewest switches: the paper's Table-free headline.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
