// Quickstart: solve a small order/radix problem instance and inspect the
// result against the paper's analytic bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/hsgraph"
)

func main() {
	// Design a network for 96 hosts built from 8-port switches.
	const n, r = 96, 8

	// Step 1: what does theory promise? Theorem 1 bounds the diameter,
	// Theorem 2 the h-ASPL, and the continuous Moore bound predicts the
	// best number of switches.
	mOpt, moore := bounds.OptimalSwitchCount(n, r, 0)
	fmt.Printf("order n=%d, radix r=%d\n", n, r)
	fmt.Printf("diameter lower bound (Thm 1): %d\n", bounds.DiameterLowerBound(n, r))
	fmt.Printf("h-ASPL lower bound   (Thm 2): %.4f\n", bounds.HASPLLowerBound(n, r))
	fmt.Printf("predicted m_opt:              %d (continuous Moore bound %.4f)\n\n", mOpt, moore)

	// Step 2: solve the ORP instance. Solve picks the regime automatically:
	// single switch if n <= r, the provably optimal clique when feasible,
	// and otherwise simulated annealing with the 2-neighbor swing operation
	// at m = m_opt.
	top, err := core.Solve(n, r, core.Options{Iterations: 20000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method:    %v\n", top.Method)
	fmt.Printf("switches:  %d\n", top.MUsed)
	fmt.Printf("h-ASPL:    %.4f (bound %.4f)\n", top.Metrics.HASPL, top.LowerBound)
	fmt.Printf("diameter:  %d\n", top.Metrics.Diameter)

	// Step 3: the host distribution. The optimised graph typically mixes
	// switches with different numbers of hosts — neither a direct nor an
	// indirect network (the paper's Fig. 6 observation).
	fmt.Printf("host distribution (index = hosts on a switch):\n  %v\n\n", top.Graph.HostDistribution())

	// Step 4: persist the topology in the repository's text format.
	f, err := os.CreateTemp("", "quickstart-*.hsg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := hsgraph.Write(f, top.Graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology written to %s (inspect with cmd/orpeval)\n", f.Name())
}
