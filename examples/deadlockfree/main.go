// Deadlockfree: deploy an ORP topology on a wormhole-routed network.
// Irregular low-h-ASPL graphs need topology-agnostic deadlock-free
// routing (the paper's reference [14]); this example quantifies the cost:
// it solves an instance, verifies that minimal routing would deadlock,
// switches to up*/down*, measures the path stretch, and renders the
// topology as SVG.
//
//	go run ./examples/deadlockfree
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/vis"
)

func main() {
	const n, r = 128, 10
	top, err := core.Solve(n, r, core.Options{Iterations: 10000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	g := top.Graph
	fmt.Printf("solved ORP(n=%d, r=%d): m=%d, h-ASPL=%.4f\n\n", n, r, top.MUsed, top.Metrics.HASPL)

	// Minimal routing: shortest paths, but is it safe on wormhole HW?
	minTab, err := routing.ShortestPath(g)
	if err != nil {
		log.Fatal(err)
	}
	minFree, err := routing.DeadlockFree(g, minTab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal routing deadlock-free: %v\n", minFree)

	// up*/down*: provably safe; what does it cost?
	udTab, err := routing.UpDown(g)
	if err != nil {
		log.Fatal(err)
	}
	udFree, err := routing.DeadlockFree(g, udTab)
	if err != nil {
		log.Fatal(err)
	}
	mean, max, err := routing.Stretch(g, udTab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("up*/down* deadlock-free:      %v\n", udFree)
	fmt.Printf("up*/down* path stretch:       mean %.3f, max %.1f\n", mean, max)
	if !udFree {
		log.Fatal("up*/down* must be deadlock-free; channel-dependency analysis disagrees")
	}

	// Render the topology for inspection.
	f, err := os.CreateTemp("", "orp-*.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := vis.WriteSVG(f, g, vis.Options{ShowHosts: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntopology rendered to %s\n", f.Name())
}
