// Trafficstudy: stress four topologies with the classical synthetic
// traffic patterns (uniform, transpose, bit-reverse, shift, hotspot, ...)
// and print a latency/throughput matrix plus link-utilisation hotspots —
// the microbenchmark-level view that complements the paper's NPB results.
//
//	go run ./examples/trafficstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/simnet"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	const n = 64

	fabrics := []struct {
		name string
		g    *hsgraph.Graph
	}{}

	torus, err := topo.Torus(2, 4, 8) // 16 switches, 4 hosts each
	must(err)
	gt, err := torus.Build(n)
	must(err)
	fabrics = append(fabrics, struct {
		name string
		g    *hsgraph.Graph
	}{"2D-torus", gt})

	df, err := topo.Dragonfly(4)
	must(err)
	gd, err := df.Build(n)
	must(err)
	fabrics = append(fabrics, struct {
		name string
		g    *hsgraph.Graph
	}{"dragonfly", gd})

	ft, err := topo.FatTree(8)
	must(err)
	gf, err := ft.Build(n)
	must(err)
	fabrics = append(fabrics, struct {
		name string
		g    *hsgraph.Graph
	}{"fat-tree", gf})

	top, err := core.Solve(n, 8, core.Options{Iterations: 10000, Seed: 13})
	must(err)
	fabrics = append(fabrics, struct {
		name string
		g    *hsgraph.Graph
	}{"proposed", topo.RelabelHostsDFS(top.Graph)})

	patterns := traffic.All(1)
	opts := traffic.RunOptions{MessageBytes: 32768, Rounds: 4}

	fmt.Printf("mean end-to-end latency (us) per pattern; lower is better\n\n")
	fmt.Printf("%-12s", "fabric")
	for _, p := range patterns {
		fmt.Printf("%-14s", p.Name)
	}
	fmt.Println()
	for _, f := range fabrics {
		nw, err := simnet.NewNetwork(f.g, simnet.Config{})
		must(err)
		fmt.Printf("%-12s", f.name)
		for _, p := range patterns {
			res, err := traffic.Run(nw, p, opts)
			must(err)
			fmt.Printf("%-14.2f", res.MeanLatSec*1e6)
		}
		fmt.Println()
	}

	// Hotspot analysis on one fabric: which links melt under shift?
	fmt.Printf("\nlink hotspots under 'shift' on the proposed fabric:\n")
	nw, err := simnet.NewNetwork(fabrics[3].g, simnet.Config{})
	must(err)
	sim := simnet.NewSim(nw)
	sim.TrackLinkStats = true
	for src := 0; src < n; src++ {
		src := src
		sim.Spawn(src, func(p *simnet.Proc) {
			dst := traffic.Shift.Dest(src, n)
			sg, err := sim.StartFlow(src, dst, 1<<20)
			if err != nil {
				log.Fatal(err)
			}
			p.Wait(sg)
		})
	}
	must(sim.Run())
	maxB, meanB := sim.LinkLoadSummary()
	fmt.Printf("  max link load %.1f MB, mean (active links) %.1f MB, imbalance %.2fx\n",
		maxB/1e6, meanB/1e6, maxB/meanB)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
