// Mpiplayground: write a small MPI program against the simulated MPI API
// and time its collectives on two different fabrics. Demonstrates using
// the simulator directly, outside the NPB skeletons.
//
//	go run ./examples/mpiplayground
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

const ranks = 32

// program is an ordinary-looking MPI program: a halo exchange on a ring,
// an all-to-all transpose, and a reduction — the building blocks of most
// HPC codes.
func program(r *mpi.Rank) error {
	p := r.Size()
	left := (r.ID() - 1 + p) % p
	right := (r.ID() + 1) % p

	// 10 rounds of 64 KiB halo exchange with both neighbours.
	for round := 0; round < 10; round++ {
		rq1 := r.Irecv(left, 100)
		rq2 := r.Irecv(right, 101)
		sq1 := r.Isend(right, 65536, 100)
		sq2 := r.Isend(left, 65536, 101)
		r.WaitAll(rq1, rq2, sq1, sq2)
		r.Compute(1e7) // 100 us of local work at 100 GFlops
	}

	// One 1 MiB-per-pair transpose.
	r.Alltoall(1 << 20 / float64(p))

	// Global dot product.
	r.Allreduce(8)
	return nil
}

func main() {
	// Fabric A: a 2-D torus of 16 switches.
	torus, err := topo.Torus(2, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	gt, err := torus.Build(ranks)
	if err != nil {
		log.Fatal(err)
	}

	// Fabric B: the ORP-optimised topology at the same order and radix.
	top, err := core.Solve(ranks, 8, core.Options{Iterations: 8000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	gp := topo.RelabelHostsDFS(top.Graph)

	for _, f := range []struct {
		name string
		g    *hsgraph.Graph
	}{{"2-D torus", gt}, {"proposed ORP", gp}} {
		nw, err := simnet.NewNetwork(f.g, simnet.Config{})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := mpi.Run(nw, ranks, mpi.Config{}, program)
		if err != nil {
			log.Fatal(err)
		}
		met := f.g.Evaluate()
		fmt.Printf("%-14s m=%-3d h-ASPL=%.4f  simulated %.3f ms, %d flows, %.1f MB moved\n",
			f.name, f.g.Switches(), met.HASPL,
			stats.Elapsed*1e3, stats.FlowsCompleted, stats.BytesMoved/1e6)
	}
}
