// Clusterdesign: an end-to-end design study in the style of the paper's
// §6.3.3 — design a 1024-host cluster with 16-port switches and compare
// the proposed ORP topology against the 16-ary fat-tree on all four axes:
// simulated NPB performance, partition-cut bandwidth, power, and cost.
//
//	go run ./examples/clusterdesign            (takes a minute or two)
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/partition"
	"repro/internal/phys"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func main() {
	const n = 1024
	const ranks = 256 // MPI job size for the performance probe

	// Baseline: the 16-ary three-layer fat-tree (m=320, r=16).
	ftSpec, err := topo.FatTree(16)
	if err != nil {
		log.Fatal(err)
	}
	fatTree, err := ftSpec.Build(n)
	if err != nil {
		log.Fatal(err)
	}

	// Proposed: solve ORP at the same order and radix, then apply the
	// depth-first host placement.
	top, err := core.Solve(n, ftSpec.Radix, core.Options{Iterations: 20000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	proposed := topo.RelabelHostsDFS(top.Graph)

	fm, pm := fatTree.Evaluate(), proposed.Evaluate()
	fmt.Printf("topology        switches  h-ASPL   diameter\n")
	fmt.Printf("fat-tree        %-9d %-8.4f %d\n", fatTree.Switches(), fm.HASPL, fm.Diameter)
	fmt.Printf("proposed (ORP)  %-9d %-8.4f %d\n", proposed.Switches(), pm.HASPL, pm.Diameter)
	fmt.Printf("switch savings: %.0f%%\n\n",
		100*(1-float64(proposed.Switches())/float64(fatTree.Switches())))

	// Axis 1: simulated NPB performance at class B geometry (CG and MG are
	// the benchmarks where the paper reports the fat-tree suffering most).
	fmt.Println("NPB performance (simulated Mop/s, higher is better):")
	for _, bench := range []string{"CG", "MG", "LU"} {
		mb := mops(fatTree, bench, ranks)
		mp := mops(proposed, bench, ranks)
		fmt.Printf("  %-4s fat-tree %10.0f   proposed %10.0f   (%+.0f%%)\n",
			bench, mb, mp, 100*(mp/mb-1))
	}

	// Axis 2: bandwidth via balanced partition cuts.
	fmt.Println("\npartition-cut bandwidth (higher is better):")
	gf := partition.FromHostSwitchGraph(fatTree)
	gp := partition.FromHostSwitchGraph(proposed)
	for _, p := range []int{2, 8, 16} {
		cf := cut(gf, p)
		cp := cut(gp, p)
		fmt.Printf("  P=%-3d fat-tree %6d   proposed %6d\n", p, cf, cp)
	}

	// Axes 3+4: deployment power and cost.
	params := phys.NewParams()
	rf, rp := phys.Evaluate(fatTree, params), phys.Evaluate(proposed, params)
	fmt.Printf("\ndeployment:\n")
	fmt.Printf("  %-10s power %8.0f W   cost $%9.0f (switches $%.0f + cables $%.0f)\n",
		"fat-tree", rf.TotalPowerW(), rf.TotalCost(), rf.SwitchCost, rf.CableCost)
	fmt.Printf("  %-10s power %8.0f W   cost $%9.0f (switches $%.0f + cables $%.0f)\n",
		"proposed", rp.TotalPowerW(), rp.TotalCost(), rp.SwitchCost, rp.CableCost)
}

func mops(g *hsgraph.Graph, bench string, ranks int) float64 {
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := npb.New(bench, npb.ClassB, ranks)
	if err != nil {
		log.Fatal(err)
	}
	// Two iterations suffice: simulated time scales linearly with the
	// iteration count, so topology ratios are iteration-invariant.
	if spec.Iterations > 2 {
		spec.Iterations = 2
	}
	stats, err := mpi.Run(nw, ranks, mpi.Config{}, spec.Program())
	if err != nil {
		log.Fatal(err)
	}
	return spec.NominalOps() / stats.Elapsed / 1e6
}

func cut(g *partition.Graph, p int) int64 {
	parts, err := partition.KWay(g, p, 11)
	if err != nil {
		log.Fatal(err)
	}
	return partition.EdgeCut(g, parts)
}
