package repro

import "testing"

// Telemetry overhead benchmarks, shimmed onto the internal/perf workload
// registry (perf_bridge_test.go): BenchmarkAnneal is the bare
// 2-neighbor-swing annealer, BenchmarkAnnealObserved the same run sampled
// into live obs gauges every 250 iterations. The ns/op and allocs/op
// delta between the two is the whole observer cost (the nil-observer path
// is additionally guarded to be alloc-free by opt's
// TestNilObserverZeroAllocDelta); EXPERIMENTS.md records the measured
// overhead, and the same pair is tracked release-over-release in the
// BENCH_*.json trajectory.

func BenchmarkAnneal(b *testing.B) {
	benchWorkload(b, "anneal/2-neighbor-swing/n=96,iters=1000")
}

func BenchmarkAnnealObserved(b *testing.B) {
	benchWorkload(b, "anneal/observed/n=96,iters=1000")
}

func BenchmarkAnnealObservedSpans(b *testing.B) {
	benchWorkload(b, "anneal/observed-spans/n=96,iters=1000")
}

// BenchmarkAnnealStored adds the run-store append on top of the span
// trace: the same anneal persisted as one durable record (fsync
// included) per run. The delta against BenchmarkAnnealObservedSpans is
// the whole persistence cost; the disabled (-store absent) path is
// separately guarded alloc-free by runstore's
// TestNilStoreIsInertAndAllocFree.
func BenchmarkAnnealStored(b *testing.B) {
	benchWorkload(b, "anneal/stored/n=96,iters=1000")
}
