package repro

import (
	"testing"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Telemetry overhead benchmarks: BenchmarkAnneal is the bare annealer,
// BenchmarkAnnealObserved the same run sampled into live obs gauges every
// ReportEvery iterations. The allocs/op delta between the two is the whole
// observer cost (the nil-observer path is additionally guarded to be
// alloc-free by opt's TestNilObserverZeroAllocDelta); EXPERIMENTS.md
// records the measured ns/op overhead.

func annealStart(b *testing.B) *hsgraph.Graph {
	b.Helper()
	start, err := hsgraph.RandomConnected(96, 24, 8, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return start
}

func benchAnneal(b *testing.B, obsv opt.Observer) {
	start := annealStart(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Anneal(start, opt.Options{
			Iterations:  4000,
			ReportEvery: 500,
			Seed:        2,
			Observer:    obsv,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnneal(b *testing.B) {
	benchAnneal(b, nil)
}

func BenchmarkAnnealObserved(b *testing.B) {
	reg := obs.NewRegistry()
	benchAnneal(b, cliutil.NewAnnealObserver(reg, nil, false))
}
