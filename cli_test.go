package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// CLI integration tests: build every command once, then drive the
// binaries end to end the way a user would (solve -> eval -> sim).

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "orp-bins-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"orpsolve", "orpeval", "orptopo", "orpsim", "orpgolf", "orptraffic", "orpfigures", "orpmap", "orpfault"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n", tool, err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// runTool executes a built binary and returns stdout, stderr.
func runTool(t *testing.T, tool string, stdin []byte, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestCLISolveEvalPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graphFile := filepath.Join(t.TempDir(), "g.hsg")
	_, stderr := runTool(t, "orpsolve", nil, "-n", "64", "-r", "8", "-iters", "2000", "-o", graphFile)
	if !strings.Contains(stderr, "h-ASPL") {
		t.Fatalf("orpsolve stderr missing stats: %s", stderr)
	}
	out, _ := runTool(t, "orpeval", nil, "-bandwidth", "-phys", graphFile)
	for _, want := range []string{"h-ASPL", "theorem2", "partition cuts", "deployment", "m_opt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpeval output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITopoSimPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graphFile := filepath.Join(t.TempDir(), "df.hsg")
	_, stderr := runTool(t, "orptopo", nil, "-kind", "dragonfly", "-a", "4", "-o", graphFile)
	if !strings.Contains(stderr, "dragonfly") {
		t.Fatalf("orptopo stderr: %s", stderr)
	}
	out, _ := runTool(t, "orpsim", nil, "-bench", "MG", "-class", "S", "-ranks", "16", graphFile)
	for _, want := range []string{"simulated time", "Mop/s", "flows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpsim output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIStdinPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	// orptopo writes the graph to stdout; orpeval reads "-" from stdin.
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orpeval", []byte(graph), "-")
	if !strings.Contains(out, "order (hosts)     16") {
		t.Fatalf("piped eval wrong:\n%s", out)
	}
}

func TestCLIGolfRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	edges := filepath.Join(t.TempDir(), "g.edges")
	_, stderr := runTool(t, "orpgolf", nil, "-n", "16", "-d", "3", "-iters", "3000", "-o", edges)
	if !strings.Contains(stderr, "ASPL") {
		t.Fatalf("orpgolf stderr: %s", stderr)
	}
	_, stderr2 := runTool(t, "orpgolf", nil, "-eval", edges)
	if !strings.Contains(stderr2, "diameter") {
		t.Fatalf("orpgolf -eval stderr: %s", stderr2)
	}
}

func TestCLITraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orptraffic", []byte(graph), "-pattern", "transpose", "-rounds", "2", "-")
	if !strings.Contains(out, "transpose") || !strings.Contains(out, "mean=") {
		t.Fatalf("orptraffic output wrong:\n%s", out)
	}
}

func TestCLIFiguresTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	out, _ := runTool(t, "orpfigures", nil, "-fig", "7", "-n", "128", "-r", "12")
	if !strings.Contains(out, "continuous-Moore") {
		t.Fatalf("orpfigures fig 7 output wrong:\n%s", out)
	}
	out2, _ := runTool(t, "orpfigures", nil, "-fig", "6", "-n", "96", "-r", "12", "-iters", "1500")
	if !strings.Contains(out2, "host distribution") {
		t.Fatalf("orpfigures fig 6 output wrong:\n%s", out2)
	}
}

func TestCLIDotOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.hsg")
	dotFile := filepath.Join(dir, "g.dot")
	runTool(t, "orptopo", nil, "-kind", "fullmesh", "-m", "4", "-r", "8", "-q", "-o", graphFile)
	runTool(t, "orpeval", nil, "-dot", dotFile, graphFile)
	data, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph hsgraph {") {
		t.Fatalf("bad DOT output: %s", data[:40])
	}
}

func TestCLIMap(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.hsg")
	matrixFile := filepath.Join(dir, "m.traffic")
	runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q", "-o", graphFile)
	// Ring traffic over 16 ranks.
	var mb strings.Builder
	mb.WriteString("traffic 16\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&mb, "%d %d 1000\n", i, (i+1)%16)
	}
	if err := os.WriteFile(matrixFile, []byte(mb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr := runTool(t, "orpmap", nil, "-matrix", matrixFile, "-iters", "3000", graphFile)
	if !strings.Contains(stderr, "traffic-weighted hops") {
		t.Fatalf("orpmap stderr missing report: %s", stderr)
	}
	if !strings.Contains(out, "hsgraph 16 20 4") {
		t.Fatalf("orpmap did not emit the remapped graph:\n%.120s", out)
	}
}

func TestCLIEvalJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orpeval", []byte(graph), "-json", "-workers", "2", "-")
	var rep struct {
		Order     int     `json:"order"`
		HASPL     float64 `json:"haspl"`
		Connected bool    `json:"connected"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("orpeval -json not parseable: %v\n%s", err, out)
	}
	if rep.Order != 16 || !rep.Connected || rep.HASPL <= 0 {
		t.Fatalf("orpeval -json wrong content: %+v", rep)
	}
}

func TestCLIFaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")

	// Text mode reports the degradation.
	out, _ := runTool(t, "orpfault", []byte(graph), "-model", "links", "-frac", "0.05", "-seed", "7", "-")
	for _, want := range []string{"failure scenario", "pristine h-ASPL", "stretch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpfault output missing %q:\n%s", want, out)
		}
	}

	// JSON mode emits the shared GraphReport schema for both graphs, and
	// the run is deterministic: same seed, same bytes.
	js1, _ := runTool(t, "orpfault", []byte(graph), "-json", "-frac", "0.05", "-seed", "7", "-")
	js2, _ := runTool(t, "orpfault", []byte(graph), "-json", "-frac", "0.05", "-seed", "7", "-")
	if js1 != js2 {
		t.Fatal("orpfault -json not deterministic for a fixed seed")
	}
	var rep struct {
		Pristine struct {
			HASPL float64 `json:"haspl"`
		} `json:"pristine"`
		Degraded struct {
			SurvivingHASPL float64 `json:"survivingHASPL"`
		} `json:"degraded"`
		FailedLinks int `json:"failedLinks"`
	}
	if err := json.Unmarshal([]byte(js1), &rep); err != nil {
		t.Fatalf("orpfault -json not parseable: %v\n%s", err, js1)
	}
	if rep.FailedLinks != 4 || rep.Degraded.SurvivingHASPL < rep.Pristine.HASPL {
		t.Fatalf("orpfault -json wrong content: %+v", rep)
	}
}

func TestCLIFaultSweepAndRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")
	out, _ := runTool(t, "orpfault", []byte(graph), "-sweep", "-trials", "4", "-fracs", "0,0.1", "-")
	if !strings.Contains(out, "resilience sweep") || !strings.Contains(out, "pristine h-ASPL") {
		t.Fatalf("orpfault -sweep output wrong:\n%s", out)
	}

	dir := t.TempDir()
	svgFile := filepath.Join(dir, "deg.svg")
	out2, _ := runTool(t, "orpfault", []byte(graph),
		"-model", "links", "-frac", "0.08", "-repair", "-svg", svgFile, "-")
	if !strings.Contains(out2, "repaired h-ASPL") {
		t.Fatalf("orpfault -repair output wrong:\n%s", out2)
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "stroke-dasharray") {
		t.Fatal("degraded SVG does not highlight failed links")
	}
}
