package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runstore"
)

// CLI integration tests: build every command once, then drive the
// binaries end to end the way a user would (solve -> eval -> sim).

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "orp-bins-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"orpsolve", "orpeval", "orptopo", "orpsim", "orpgolf", "orptraffic", "orpfigures", "orpmap", "orpfault", "orptrace", "orpbench", "orphist"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n", tool, err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// seedBetterRecord appends a synthetic eligible record with the given
// h-ASPL into the (n, r) cell — a "prior best" for orphist check to
// regress against.
func seedBetterRecord(t *testing.T, dir string, n, r int, haspl float64) {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(&runstore.Record{
		Unix: time.Now().UnixNano(),
		Tool: "orpsolve",
		Kind: "anneal",
		Seed: 99,
		N:    n,
		R:    r,
		M:    n,
		Metrics: runstore.Metrics{
			HASPL: haspl, Diameter: 3, Connected: true,
			TotalPath: 1, ReachablePairs: 1,
		},
	}); err != nil {
		t.Fatal(err)
	}
}

// runTool executes a built binary and returns stdout, stderr.
func runTool(t *testing.T, tool string, stdin []byte, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestCLISolveEvalPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graphFile := filepath.Join(t.TempDir(), "g.hsg")
	_, stderr := runTool(t, "orpsolve", nil, "-n", "64", "-r", "8", "-iters", "2000", "-o", graphFile)
	if !strings.Contains(stderr, "h-ASPL") {
		t.Fatalf("orpsolve stderr missing stats: %s", stderr)
	}
	out, _ := runTool(t, "orpeval", nil, "-bandwidth", "-phys", graphFile)
	for _, want := range []string{"h-ASPL", "theorem2", "partition cuts", "deployment", "m_opt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpeval output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITopoSimPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graphFile := filepath.Join(t.TempDir(), "df.hsg")
	_, stderr := runTool(t, "orptopo", nil, "-kind", "dragonfly", "-a", "4", "-o", graphFile)
	if !strings.Contains(stderr, "dragonfly") {
		t.Fatalf("orptopo stderr: %s", stderr)
	}
	out, _ := runTool(t, "orpsim", nil, "-bench", "MG", "-class", "S", "-ranks", "16", graphFile)
	for _, want := range []string{"simulated time", "Mop/s", "flows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpsim output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIStdinPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	// orptopo writes the graph to stdout; orpeval reads "-" from stdin.
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orpeval", []byte(graph), "-")
	if !strings.Contains(out, "order (hosts)     16") {
		t.Fatalf("piped eval wrong:\n%s", out)
	}
}

func TestCLIGolfRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	edges := filepath.Join(t.TempDir(), "g.edges")
	_, stderr := runTool(t, "orpgolf", nil, "-n", "16", "-d", "3", "-iters", "3000", "-o", edges)
	if !strings.Contains(stderr, "ASPL") {
		t.Fatalf("orpgolf stderr: %s", stderr)
	}
	_, stderr2 := runTool(t, "orpgolf", nil, "-eval", edges)
	if !strings.Contains(stderr2, "diameter") {
		t.Fatalf("orpgolf -eval stderr: %s", stderr2)
	}
}

func TestCLITraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orptraffic", []byte(graph), "-pattern", "transpose", "-rounds", "2", "-")
	if !strings.Contains(out, "transpose") || !strings.Contains(out, "mean=") {
		t.Fatalf("orptraffic output wrong:\n%s", out)
	}
}

func TestCLIFiguresTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	out, _ := runTool(t, "orpfigures", nil, "-fig", "7", "-n", "128", "-r", "12")
	if !strings.Contains(out, "continuous-Moore") {
		t.Fatalf("orpfigures fig 7 output wrong:\n%s", out)
	}
	out2, _ := runTool(t, "orpfigures", nil, "-fig", "6", "-n", "96", "-r", "12", "-iters", "1500")
	if !strings.Contains(out2, "host distribution") {
		t.Fatalf("orpfigures fig 6 output wrong:\n%s", out2)
	}
}

func TestCLIDotOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.hsg")
	dotFile := filepath.Join(dir, "g.dot")
	runTool(t, "orptopo", nil, "-kind", "fullmesh", "-m", "4", "-r", "8", "-q", "-o", graphFile)
	runTool(t, "orpeval", nil, "-dot", dotFile, graphFile)
	data, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph hsgraph {") {
		t.Fatalf("bad DOT output: %s", data[:40])
	}
}

func TestCLIMap(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.hsg")
	matrixFile := filepath.Join(dir, "m.traffic")
	runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q", "-o", graphFile)
	// Ring traffic over 16 ranks.
	var mb strings.Builder
	mb.WriteString("traffic 16\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&mb, "%d %d 1000\n", i, (i+1)%16)
	}
	if err := os.WriteFile(matrixFile, []byte(mb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr := runTool(t, "orpmap", nil, "-matrix", matrixFile, "-iters", "3000", graphFile)
	if !strings.Contains(stderr, "traffic-weighted hops") {
		t.Fatalf("orpmap stderr missing report: %s", stderr)
	}
	if !strings.Contains(out, "hsgraph 16 20 4") {
		t.Fatalf("orpmap did not emit the remapped graph:\n%.120s", out)
	}
}

func TestCLIEvalJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	out, _ := runTool(t, "orpeval", []byte(graph), "-json", "-workers", "2", "-")
	var rep struct {
		Order     int     `json:"order"`
		HASPL     float64 `json:"haspl"`
		Connected bool    `json:"connected"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("orpeval -json not parseable: %v\n%s", err, out)
	}
	if rep.Order != 16 || !rep.Connected || rep.HASPL <= 0 {
		t.Fatalf("orpeval -json wrong content: %+v", rep)
	}
}

func TestCLIFaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")

	// Text mode reports the degradation.
	out, _ := runTool(t, "orpfault", []byte(graph), "-model", "links", "-frac", "0.05", "-seed", "7", "-")
	for _, want := range []string{"failure scenario", "pristine h-ASPL", "stretch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpfault output missing %q:\n%s", want, out)
		}
	}

	// JSON mode emits the shared GraphReport schema for both graphs, and
	// the run is deterministic: same seed, same bytes.
	js1, _ := runTool(t, "orpfault", []byte(graph), "-json", "-frac", "0.05", "-seed", "7", "-")
	js2, _ := runTool(t, "orpfault", []byte(graph), "-json", "-frac", "0.05", "-seed", "7", "-")
	if js1 != js2 {
		t.Fatal("orpfault -json not deterministic for a fixed seed")
	}
	var rep struct {
		Pristine struct {
			HASPL float64 `json:"haspl"`
		} `json:"pristine"`
		Degraded struct {
			SurvivingHASPL float64 `json:"survivingHASPL"`
		} `json:"degraded"`
		FailedLinks int `json:"failedLinks"`
	}
	if err := json.Unmarshal([]byte(js1), &rep); err != nil {
		t.Fatalf("orpfault -json not parseable: %v\n%s", err, js1)
	}
	if rep.FailedLinks != 4 || rep.Degraded.SurvivingHASPL < rep.Pristine.HASPL {
		t.Fatalf("orpfault -json wrong content: %+v", rep)
	}
}

func TestCLITelemetryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()

	// Anneal telemetry: orpsolve -trace-out emits JSONL that orptrace
	// renders as a convergence table.
	annealJSONL := filepath.Join(dir, "anneal.jsonl")
	graphFile := filepath.Join(dir, "g.hsg")
	runTool(t, "orpsolve", nil, "-n", "64", "-r", "6", "-iters", "3000",
		"-trace-out", annealJSONL, "-o", graphFile)
	out, _ := runTool(t, "orptrace", nil, annealJSONL)
	for _, want := range []string{"iter", "temp", "best", "accept", "anneal done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orptrace anneal summary missing %q:\n%s", want, out)
		}
	}

	// Flow telemetry: orpsim -trace-out writes a chrome://tracing JSON
	// array; orptrace reports latency percentiles and hot links from it.
	traceFile := filepath.Join(dir, "t.json")
	runTool(t, "orpsim", nil, "-bench", "FT", "-class", "S", "-ranks", "16",
		"-trace-out", traceFile, graphFile)
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	out2, _ := runTool(t, "orptrace", nil, traceFile)
	for _, want := range []string{"p50", "p95", "p99", "hot links", "flows"} {
		if !strings.Contains(out2, want) {
			t.Fatalf("orptrace chrome summary missing %q:\n%s", want, out2)
		}
	}

	// Sweep telemetry: orpfault -sweep -trace-out, summarised by orptrace.
	sweepJSONL := filepath.Join(dir, "sweep.jsonl")
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")
	runTool(t, "orpfault", []byte(graph), "-sweep", "-trials", "3", "-fracs", "0.02,0.05",
		"-trace-out", sweepJSONL, "-")
	out3, _ := runTool(t, "orptrace", nil, sweepJSONL)
	if !strings.Contains(out3, "sweep: 6 trials over 2 fractions") || !strings.Contains(out3, "sweep done") {
		t.Fatalf("orptrace sweep summary wrong:\n%s", out3)
	}
}

func TestCLIMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	// A long anneal keeps the process alive while we scrape it.
	cmd := exec.Command(filepath.Join(binDir, "orpsolve"),
		"-n", "256", "-r", "10", "-iters", "50000000", "-metrics-addr", "127.0.0.1:0", "-o", os.DevNull)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "http://"); ok {
			addr = strings.TrimSuffix(rest, "/metrics")
			break
		}
	}
	if addr == "" {
		t.Fatalf("orpsolve never announced its metrics address (scan err %v)", sc.Err())
	}
	var body string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(b)
		// The anneal gauges appear after the first ReportEvery interval.
		if strings.Contains(body, "anneal_best_energy") {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(body, "anneal_best_energy") || !strings.Contains(body, "# TYPE anneal_temperature gauge") {
		t.Fatalf("metrics exposition missing anneal gauges:\n%.500s", body)
	}
}

func TestCLIWorkersValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	// Negative -workers must be rejected uniformly, with a usage-style exit.
	graph, _ := runTool(t, "orptopo", nil, "-kind", "fattree", "-k", "4", "-q")
	for _, tc := range []struct {
		tool string
		args []string
	}{
		{"orpsim", []string{"-workers", "-1", "-bench", "EP", "-class", "S", "-ranks", "16", "-"}},
		{"orpfault", []string{"-workers", "-2", "-frac", "0.05", "-"}},
		{"orpsolve", []string{"-workers", "-3", "-n", "32", "-r", "6"}},
	} {
		cmd := exec.Command(filepath.Join(binDir, tc.tool), tc.args...)
		cmd.Stdin = strings.NewReader(graph)
		var errb bytes.Buffer
		cmd.Stderr = &errb
		err := cmd.Run()
		if err == nil {
			t.Fatalf("%s accepted a negative -workers", tc.tool)
		}
		if !strings.Contains(errb.String(), "-workers must be >= 0") {
			t.Fatalf("%s error message wrong: %s", tc.tool, errb.String())
		}
	}
}

// TestCLISolveKillAndResume is the end-to-end crash-recovery contract:
// an orpsolve run SIGKILLed mid-anneal and resumed from its periodic
// checkpoint emits the byte-identical graph the uninterrupted run does.
func TestCLISolveKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	refFile := filepath.Join(dir, "ref.hsg")
	outFile := filepath.Join(dir, "resumed.hsg")
	ckFile := filepath.Join(dir, "run.ckpt")
	args := []string{"-n", "96", "-r", "8", "-iters", "60000", "-seed", "9"}

	// Uninterrupted reference.
	runTool(t, "orpsolve", nil, append(args, "-o", refFile)...)

	// Kill a checkpointing run with SIGKILL (no chance to clean up) as
	// soon as the first periodic snapshot has landed.
	cmd := exec.Command(filepath.Join(binDir, "orpsolve"),
		append(args, "-checkpoint", ckFile, "-checkpoint-every", "500", "-o", outFile)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint file appeared within 30s")
		}
		time.Sleep(time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// Resume. (If the run happened to finish before the kill, the resume
	// is a no-op replay from the final snapshot — the contract holds
	// either way.)
	_, stderr := runTool(t, "orpsolve", nil,
		append(args, "-checkpoint", ckFile, "-resume", "-o", outFile)...)
	if !strings.Contains(stderr, "resuming restart 0 from") {
		t.Fatalf("resume did not report the checkpoint:\n%s", stderr)
	}
	ref, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatal("resumed run produced a different graph than the uninterrupted run")
	}
}

// TestCLIFaultSweepInterruptAndResume interrupts a checkpointing sweep
// with SIGINT (the engine saves its trial ledger and exits 130) and
// checks the resumed sweep reproduces the uninterrupted JSON output.
func TestCLIFaultSweepInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")
	dir := t.TempDir()
	ledger := filepath.Join(dir, "sweep.ckpt")
	args := []string{"-sweep", "-trials", "10", "-fracs", "0.02,0.05,0.1",
		"-seed", "11", "-json", "-"}

	refOut, _ := runTool(t, "orpfault", []byte(graph), args...)

	// Interrupt after the first completed trial reports progress.
	ckArgs := append([]string{"-checkpoint", ledger, "-progress"}, args...)
	cmd := exec.Command(filepath.Join(binDir, "orpfault"), ckArgs...)
	cmd.Stdin = strings.NewReader(graph)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "trial") {
			cmd.Process.Signal(os.Interrupt)
			break
		}
	}
	io.Copy(io.Discard, stderrPipe)
	werr := cmd.Wait()
	if werr != nil {
		// The interrupted path must exit 130 with a saved ledger.
		ee, ok := werr.(*exec.ExitError)
		if !ok || ee.ExitCode() != 130 {
			t.Fatalf("interrupted sweep exit: %v", werr)
		}
		if _, err := os.Stat(ledger); err != nil {
			t.Fatalf("no ledger after interrupt: %v", err)
		}
	} // else: the sweep outran the signal; the resume is a full replay.

	out, _ := runTool(t, "orpfault", []byte(graph),
		append([]string{"-checkpoint", ledger, "-resume"}, args...)...)
	if out != refOut {
		t.Fatalf("resumed sweep output differs from the uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", out, refOut)
	}
}

// TestCLIRunStoreHistory drives the persistent run history end to end:
// orpsolve and orpfault write records with -store, orphist queries them
// (list, best, show, check), a seeded better record turns check into an
// exit-3 regression, and a torn log tail is skipped with a warning that
// compact clears.
func TestCLIRunStoreHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "runs")
	graphFile := filepath.Join(dir, "g.hsg")

	runTool(t, "orpsolve", nil, "-n", "32", "-r", "5", "-iters", "1500", "-seed", "3",
		"-store", storeDir, "-o", graphFile)
	graph, err := os.ReadFile(graphFile)
	if err != nil {
		t.Fatal(err)
	}
	runTool(t, "orpfault", graph, "-model", "links", "-frac", "0.05", "-seed", "7",
		"-store", storeDir, "-")

	list, _ := runTool(t, "orphist", nil, "-store", storeDir, "list")
	for _, want := range []string{"r00000001", "r00000002", "orpsolve", "orpfault", "anneal", "eval"} {
		if !strings.Contains(list, want) {
			t.Fatalf("orphist list missing %q:\n%s", want, list)
		}
	}

	best, _ := runTool(t, "orphist", nil, "-store", storeDir, "best")
	if !strings.Contains(best, "n=32 r=5") {
		t.Fatalf("orphist best has no leaderboard row:\n%s", best)
	}

	show, _ := runTool(t, "orphist", nil, "-store", storeDir, "show", "r00000001")
	for _, want := range []string{"orpsolve/anneal", "h-ASPL", "fingerprint", "energy trace"} {
		if !strings.Contains(show, want) {
			t.Fatalf("orphist show missing %q:\n%s", want, show)
		}
	}
	resJSON, _ := runTool(t, "orphist", nil, "-store", storeDir, "show", "-result", "r00000001")
	var solved struct {
		Method string  `json:"method"`
		HASPL  float64 `json:"haspl"`
	}
	if err := json.Unmarshal([]byte(resJSON), &solved); err != nil {
		t.Fatalf("show -result is not JSON: %v\n%s", err, resJSON)
	}
	if solved.Method != "annealed" || solved.HASPL <= 0 {
		t.Fatalf("stored result wrong: %+v", solved)
	}

	// The fresh store checks clean (the anneal record is the cell's best
	// or first; either way, no regression).
	out, _ := runTool(t, "orphist", nil, "-store", storeDir, "check", "r00000001")
	if !strings.Contains(out, "PASS") {
		t.Fatalf("orphist check on a fresh store: %s", out)
	}

	// Seed a better record into the cell: now the anneal regresses on it
	// and check must exit 3 (the CI-gate contract).
	seedBetterRecord(t, storeDir, 32, 5, solved.HASPL/2)
	cmd := exec.Command(filepath.Join(binDir, "orphist"), "-store", storeDir, "check", "r00000001")
	var checkOut bytes.Buffer
	cmd.Stdout = &checkOut
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("orphist check on a regression: err %v, want exit 3\n%s", err, checkOut.String())
	}
	if !strings.Contains(checkOut.String(), "REGRESSION") {
		t.Fatalf("orphist check verdict wrong:\n%s", checkOut.String())
	}

	// Tear the log tail (a crash mid-append): queries keep working and
	// warn; compact drops the torn region and clears the warning.
	logPath := filepath.Join(storeDir, "runs.orplog")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr := runTool(t, "orphist", nil, "-store", storeDir, "list")
	if !strings.Contains(stderr, "skipped 1 unreadable region") {
		t.Fatalf("torn tail not warned about: %s", stderr)
	}
	runTool(t, "orphist", nil, "-store", storeDir, "compact")
	_, stderr = runTool(t, "orphist", nil, "-store", storeDir, "list")
	if strings.Contains(stderr, "skipped") {
		t.Fatalf("warning survived compact: %s", stderr)
	}
}

func TestCLIFaultSweepAndRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	graph, _ := runTool(t, "orptopo", nil, "-kind", "hypercube", "-dims", "5", "-n", "64", "-q")
	out, _ := runTool(t, "orpfault", []byte(graph), "-sweep", "-trials", "4", "-fracs", "0,0.1", "-")
	if !strings.Contains(out, "resilience sweep") || !strings.Contains(out, "pristine h-ASPL") {
		t.Fatalf("orpfault -sweep output wrong:\n%s", out)
	}

	dir := t.TempDir()
	svgFile := filepath.Join(dir, "deg.svg")
	out2, _ := runTool(t, "orpfault", []byte(graph),
		"-model", "links", "-frac", "0.08", "-repair", "-svg", svgFile, "-")
	if !strings.Contains(out2, "repaired h-ASPL") {
		t.Fatalf("orpfault -repair output wrong:\n%s", out2)
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "stroke-dasharray") {
		t.Fatal("degraded SVG does not highlight failed links")
	}
}
