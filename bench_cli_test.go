package repro

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

// runToolExit runs a built binary like runTool but returns the exit code
// instead of failing on nonzero status, for tests that assert exit-code
// contracts.
func runToolExit(t *testing.T, tool string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestCLIBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	out, _ := runTool(t, "orpbench", nil, "-list")
	for _, want := range []string{"eval/sharded/", "anneal/2-neighbor-swing/", "simnet/npb/CG-S-32", "fault/sweep/links/", "ckpt/encode/"} {
		if !strings.Contains(out, want) {
			t.Fatalf("orpbench -list missing %q:\n%s", want, out)
		}
	}
	// Usage errors take exit 2, distinct from regressions (3).
	if _, _, code := runToolExit(t, "orpbench", "-compare", "only-one.json"); code != 2 {
		t.Fatalf("orpbench -compare with one arg: exit %d, want 2", code)
	}
	if _, _, code := runToolExit(t, "orpbench", "-run", "no/such/workload"); code != 2 {
		t.Fatalf("orpbench with empty workload match: exit %d, want 2", code)
	}
}

// TestCLIBenchCompareGate is the CLI half of the acceptance contract:
// back-to-back runs on the same build compare clean (exit 0), and a
// >=20% slowdown makes -compare exit 3.
func TestCLIBenchCompareGate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	// ckpt plus the fault sweep: the sweep's relative MAD sits around
	// 3%, so at least one workload always gates the scaled copy below
	// even if the ckpt timings catch a noise spike.
	run := []string{"-short", "-run", "^ckpt/|^fault/", "-out"}
	if _, stderr, code := runToolExit(t, "orpbench", append(run, a)...); code != 0 {
		t.Fatalf("first orpbench run: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runToolExit(t, "orpbench", append(run, b)...); code != 0 {
		t.Fatalf("second orpbench run: exit %d\n%s", code, stderr)
	}
	if out, stderr, code := runToolExit(t, "orpbench", "-compare", a, b); code != 0 {
		t.Fatalf("back-to-back compare: exit %d\n%s%s", code, out, stderr)
	}

	// Rewrite the second report with every sample 50% slower — the
	// moral equivalent of a regressed commit — and the gate must fire.
	// The comparator options are pinned because short-mode samples on a
	// loaded CI box can carry relative MADs above 10%, which the default
	// 6-MAD thresholds would (correctly) wave a 50% delta through; the
	// deterministic 20%-slowdown-at-default-thresholds contract is
	// proven on a quiet workload by internal/perf's
	// TestInjectedSlowdownFiresGate. Firing here needs only
	// relMAD < 25%, several times the spread ever measured for ckpt.
	rep, err := perf.ReadReportFile(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Workloads {
		w := &rep.Workloads[i]
		for j := range w.SamplesNs {
			w.SamplesNs[j] *= 1.5
		}
		w.MedianNs *= 1.5
		w.MADNs *= 1.5
	}
	slow := filepath.Join(dir, "slow.json")
	if err := rep.WriteFile(slow); err != nil {
		t.Fatal(err)
	}
	// Comparing b against its own scaled copy pins the ratio at exactly
	// 1.5, independent of cross-run drift between a and b.
	gate := []string{"-compare", "-mad-scale", "2", "-min-rel", "0.15"}
	out, stderr, code := runToolExit(t, "orpbench", append(gate, b, slow)...)
	if code != 3 {
		t.Fatalf("compare against 50%% slowdown: exit %d, want 3\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("compare output missing REGRESSION verdict:\n%s", out)
	}
	// A relaxed CI-style threshold scale (4 x 0.15 floor = 60% > 50%)
	// waves the same delta through.
	if _, stderr, code := runToolExit(t, "orpbench", append(gate, "-threshold-scale", "4", b, slow)...); code != 0 {
		t.Fatalf("relaxed compare: exit %d\n%s", code, stderr)
	}
}

// TestCLIVersionFlag: every command reports the shared build identity.
func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	for _, tool := range []string{"orpsolve", "orpeval", "orptopo", "orpsim", "orpgolf", "orptraffic", "orpfigures", "orpmap", "orpfault", "orptrace", "orpbench"} {
		out, _, code := runToolExit(t, tool, "-version")
		if code != 0 {
			t.Fatalf("%s -version: exit %d", tool, code)
		}
		if !strings.HasPrefix(out, tool+": repro") {
			t.Fatalf("%s -version output %q, want prefix %q", tool, out, tool+": repro")
		}
	}
}
