// Package repro's root benchmarks regenerate every figure of the paper at
// a reduced-but-faithful scale (one benchmark per figure/panel) and report
// the headline quantity of each as a custom metric. Full-scale runs are
// the job of cmd/orpfigures (-paper).
//
// Hot-path benchmarks (h-ASPL evaluation engines, the SA move loop, the
// telemetry overhead pair) live in evaluator_bench_test.go and
// obs_bench_test.go as shims over the internal/perf workload registry —
// the same bodies cmd/orpbench measures into the BENCH_*.json
// performance trajectory.
package repro

import (
	"math"
	"testing"

	"repro/internal/figures"
	"repro/internal/phys"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/traffic"
)

// benchOptions keeps every figure benchmark in the seconds range.
func benchOptions() figures.Options {
	return figures.Options{
		SAIterations: 2000,
		Ranks:        64,
		Class:        'S',
		MaxIters:     2,
		Seed:         1,
		Benchmarks:   []string{"EP", "IS", "CG", "MG"},
	}
}

// BenchmarkFig5HASPLvsM regenerates a Fig. 5 panel (h-ASPL vs m with SA
// and the bounds) and reports how close the SA minimum sits to the
// continuous Moore bound minimum.
func BenchmarkFig5HASPLvsM(b *testing.B) {
	o := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig5(128, 12, o)
		if err != nil {
			b.Fatal(err)
		}
		gap = minOf(fig, "SA-2neighbor-swing") - minOf(fig, "continuous-Moore")
	}
	b.ReportMetric(gap, "haspl-gap-to-moore")
}

func minOf(fig figures.Figure, label string) float64 {
	best := math.Inf(1)
	for _, s := range fig.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.Y < best {
				best = p.Y
			}
		}
	}
	return best
}

// BenchmarkFig6HostDistribution regenerates the host-distribution
// histogram at m_opt and reports the number of distinct host counts.
func BenchmarkFig6HostDistribution(b *testing.B) {
	o := benchOptions()
	var distinct int
	for i := 0; i < b.N; i++ {
		hist, _, err := figures.Fig6(128, 24, o)
		if err != nil {
			b.Fatal(err)
		}
		distinct = 0
		for _, c := range hist.Counts {
			if c > 0 {
				distinct++
			}
		}
	}
	b.ReportMetric(float64(distinct), "distinct-host-counts")
}

// BenchmarkFig7MooreBounds regenerates the Moore vs continuous Moore
// comparison.
func BenchmarkFig7MooreBounds(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		fig := figures.Fig7(1024, 24)
		points = len(fig.Series[0].Points) + len(fig.Series[1].Points)
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkFig8UnusedSwitches regenerates the m = n experiment and
// reports the fraction of empty switches (the paper reports > 70% at
// n = m = 1024).
func BenchmarkFig8UnusedSwitches(b *testing.B) {
	o := benchOptions()
	var emptyFrac float64
	for i := 0; i < b.N; i++ {
		hist, g, err := figures.Fig8(128, 12, o)
		if err != nil {
			b.Fatal(err)
		}
		emptyFrac = float64(hist.Counts[0]) / float64(g.Switches())
	}
	b.ReportMetric(emptyFrac, "empty-switch-fraction")
}

// comparison benchmarks: one per panel of Figs. 9 (torus), 10 (dragonfly)
// and 11 (fat-tree).

func benchComparison(b *testing.B, kind string) *figures.Comparison {
	b.Helper()
	c, err := figures.BuildComparison(kind, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// perfOptions uses the class-B message geometry at 256 ranks: the scale
// at which the h-ASPL difference between topologies becomes visible (at
// 64 ranks / class S the job is too local and latency-insensitive; see
// EXPERIMENTS.md).
func perfOptions() figures.Options {
	o := benchOptions()
	o.Ranks = 256
	o.Class = 'P'
	o.Benchmarks = []string{"CG", "MG"}
	return o
}

func benchPerformance(b *testing.B, kind string) {
	o := perfOptions()
	c := benchComparison(b, kind)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := c.Performance(o)
		if err != nil {
			b.Fatal(err)
		}
		speedup = geomeanRatio(fig)
	}
	b.ReportMetric(speedup, "proposed-speedup-geomean")
}

// geomeanRatio computes the geometric mean of proposed/baseline Mop/s.
func geomeanRatio(fig figures.Figure) float64 {
	if len(fig.Series) != 2 {
		return 0
	}
	base, prop := fig.Series[0], fig.Series[1]
	logSum, n := 0.0, 0
	for i := range base.Points {
		if i < len(prop.Points) && base.Points[i].Y > 0 {
			logSum += math.Log(prop.Points[i].Y / base.Points[i].Y)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

func benchBandwidth(b *testing.B, kind string) {
	o := benchOptions()
	c := benchComparison(b, kind)
	var bisectionRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := c.Bandwidth(o)
		if err != nil {
			b.Fatal(err)
		}
		bisectionRatio = fig.Series[1].Points[0].Y / fig.Series[0].Points[0].Y
	}
	b.ReportMetric(bisectionRatio, "proposed-bisection-ratio")
}

func benchPower(b *testing.B, kind string) {
	o := benchOptions()
	c := benchComparison(b, kind)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := c.Power(o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastRatio(fig)
	}
	b.ReportMetric(ratio, "proposed-power-ratio")
}

func benchCost(b *testing.B, kind string) {
	o := benchOptions()
	c := benchComparison(b, kind)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := c.Cost(o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastRatio(fig)
		bd := c.CostBreakdown()
		if len(bd.Rows) != 2 {
			b.Fatal("bad breakdown")
		}
	}
	b.ReportMetric(ratio, "proposed-cost-ratio")
}

// lastRatio is proposed/baseline at the largest sweep point.
func lastRatio(fig figures.Figure) float64 {
	base, prop := fig.Series[0], fig.Series[1]
	if len(base.Points) == 0 || len(prop.Points) == 0 {
		return 0
	}
	return prop.Points[len(prop.Points)-1].Y / base.Points[len(base.Points)-1].Y
}

func BenchmarkFig9aTorusPerformance(b *testing.B)      { benchPerformance(b, "torus") }
func BenchmarkFig9bTorusBandwidth(b *testing.B)        { benchBandwidth(b, "torus") }
func BenchmarkFig9cTorusPower(b *testing.B)            { benchPower(b, "torus") }
func BenchmarkFig9dTorusCost(b *testing.B)             { benchCost(b, "torus") }
func BenchmarkFig10aDragonflyPerformance(b *testing.B) { benchPerformance(b, "dragonfly") }
func BenchmarkFig10bDragonflyBandwidth(b *testing.B)   { benchBandwidth(b, "dragonfly") }
func BenchmarkFig10cDragonflyPower(b *testing.B)       { benchPower(b, "dragonfly") }
func BenchmarkFig10dDragonflyCost(b *testing.B)        { benchCost(b, "dragonfly") }
func BenchmarkFig11aFatTreePerformance(b *testing.B)   { benchPerformance(b, "fattree") }
func BenchmarkFig11bFatTreeBandwidth(b *testing.B)     { benchBandwidth(b, "fattree") }
func BenchmarkFig11cFatTreePower(b *testing.B)         { benchPower(b, "fattree") }
func BenchmarkFig11dFatTreeCost(b *testing.B)          { benchCost(b, "fattree") }

// Ablation benchmarks: design choices called out in DESIGN.md.

// BenchmarkAblationMoveSets compares swap / swing / 2-neighbor-swing SA
// and reports the h-ASPL advantage of the paper's combined operation.
func BenchmarkAblationMoveSets(b *testing.B) {
	o := benchOptions()
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationMoves(128, 40, 8, o)
		if err != nil {
			b.Fatal(err)
		}
		adv = res["swap"] - res["2-neighbor-swing"]
	}
	b.ReportMetric(adv, "swing-haspl-advantage")
}

// BenchmarkAblationSchedules compares cooling schedules and reports the
// hill-climbing penalty relative to geometric SA.
func BenchmarkAblationSchedules(b *testing.B) {
	o := benchOptions()
	var penalty float64
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationSchedules(128, 40, 8, o)
		if err != nil {
			b.Fatal(err)
		}
		penalty = res["hillclimb"] - res["geometric"]
	}
	b.ReportMetric(penalty, "hillclimb-haspl-penalty")
}

// BenchmarkAblationPlacement reports the slowdown of scrambled host ids
// versus the paper's depth-first placement on MG.
func BenchmarkAblationPlacement(b *testing.B) {
	o := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationPlacement("MG", o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res["raw"] / res["dfs"]
	}
	b.ReportMetric(ratio, "raw-over-dfs-time")
}

// BenchmarkAblationTieBreak reports hash-ECMP time over lowest-index
// time for CG.
func BenchmarkAblationTieBreak(b *testing.B) {
	o := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationTieBreak("CG", o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res["hash"] / res["lowest"]
	}
	b.ReportMetric(ratio, "hash-over-lowest-time")
}

// BenchmarkAblationCollectives reports the 1 MiB allreduce speedup of
// Rabenseifner over recursive doubling on the proposed topology.
func BenchmarkAblationCollectives(b *testing.B) {
	o := benchOptions()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationCollectives(o)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res["allreduce-rd/1048576"] / res["allreduce-rabenseifner/1048576"]
	}
	b.ReportMetric(speedup, "rabenseifner-speedup-1MiB")
}

// BenchmarkTrafficPatterns sweeps the synthetic patterns over the
// proposed topology and reports the uniform-traffic mean latency.
func BenchmarkTrafficPatterns(b *testing.B) {
	g, err := figures.ProposedTopology(1024, 16, 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var uniformMean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := traffic.Sweep(nw, traffic.All(1), traffic.RunOptions{
			MessageBytes: 32768, Rounds: 2, Hosts: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		uniformMean = results[0].MeanLatSec
	}
	b.ReportMetric(uniformMean*1e6, "uniform-mean-latency-us")
}

// BenchmarkRoutingUpDownStretch measures the deadlock-freedom price on
// the proposed topology: mean up*/down* path stretch over minimal.
func BenchmarkRoutingUpDownStretch(b *testing.B) {
	g, err := figures.ProposedTopology(1024, 16, 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := routing.UpDown(g)
		if err != nil {
			b.Fatal(err)
		}
		mean, _, err = routing.Stretch(g, tab)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "updown-mean-stretch")
}

// BenchmarkLayoutOptimizer measures the cable-cost saving of the
// layout-conscious placement on the proposed topology.
func BenchmarkLayoutOptimizer(b *testing.B) {
	g, err := figures.ProposedTopology(1024, 16, 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := phys.NewParams()
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := phys.EvaluateLayout(g, p, phys.DefaultLayout(g, p))
		l := phys.OptimizeLayout(g, p, 20000, 1)
		after := phys.EvaluateLayout(g, p, l)
		saving = 1 - after.CableCost/before.CableCost
	}
	b.ReportMetric(saving, "cable-cost-saving-frac")
}
