package repro

import "testing"

// orpd fast-path benchmarks, shimmed onto the internal/perf workload
// registry (perf_bridge_test.go): BenchmarkServeCachedSubmit is a
// cache-hit submission through the scheduler core alone,
// BenchmarkServeCachedHTTP the same query through the full HTTP handler
// (routing, spec decode, response encode). The delta between the two is
// the whole HTTP-layer cost of a repeated query; both are tracked
// release-over-release in the BENCH_*.json trajectory and the measured
// latency distribution under load lives in EXPERIMENTS.md §orpd.

func BenchmarkServeCachedSubmit(b *testing.B) {
	benchWorkload(b, "serve/eval-cached/n=48,m=16,r=6")
}

func BenchmarkServeCachedHTTP(b *testing.B) {
	benchWorkload(b, "serve/http-eval-cached/n=48,m=16,r=6")
}
