package repro

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/figures"
	"repro/internal/perf"
)

// TestCommittedBenchBaseline keeps the committed trajectory honest: every
// BENCH_*.json at the repo root must parse, validate against the current
// schema, and the newest baseline must cover all five workload families,
// so a schema change or a half-deleted registry cannot merge silently.
func TestCommittedBenchBaseline(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json baseline committed at the repo root")
	}
	for _, p := range paths {
		rep, err := perf.ReadReportFile(p) // Validate runs inside
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		fams := map[string]bool{}
		for _, f := range perf.Families(rep.Workloads) {
			fams[f] = true
		}
		for _, want := range []string{"eval", "anneal", "simnet", "fault", "ckpt"} {
			if !fams[want] {
				t.Errorf("%s: no %q workloads in the baseline", p, want)
			}
		}
		if rep.Build.GoVersion == "" {
			t.Errorf("%s: baseline missing build fingerprint", p)
		}
	}

	// Baselines recorded since the orpd service exists (BENCH_7 on) must
	// also track the serve family (older trajectories predate it).
	for _, p := range paths {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &idx); err != nil || idx < 7 {
			continue
		}
		rep, err := perf.ReadReportFile(p)
		if err != nil {
			continue // already reported above
		}
		fams := map[string]bool{}
		for _, f := range perf.Families(rep.Workloads) {
			fams[f] = true
		}
		if !fams["serve"] {
			t.Errorf("%s: no \"serve\" workloads in the baseline", p)
		}
	}

	// The committed history must also always be plottable.
	fig, err := figures.PerfTrajectory(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Fatal("perf trajectory has no series")
	}
	// Every registered workload should be tracked by the newest baseline;
	// a workload added without re-recording the trajectory is flagged
	// here rather than surfacing as MissingInOld forever. Newest is the
	// highest numeric index, not the lexically-last glob entry
	// (BENCH_10 sorts before BENCH_9).
	newest := paths[len(paths)-1]
	best := -1
	for _, p := range paths {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &idx); err == nil && idx > best {
			best, newest = idx, p
		}
	}
	last, err := perf.ReadReportFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	inBaseline := map[string]bool{}
	for _, w := range last.Workloads {
		inBaseline[w.Name] = true
	}
	for _, w := range perf.Workloads() {
		if !inBaseline[w.Name] {
			t.Errorf("workload %s is registered but absent from %s — regenerate the baseline with `go run ./cmd/orpbench -out %s`",
				w.Name, newest, newest)
		}
	}
}
