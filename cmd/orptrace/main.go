// Command orptrace summarises telemetry files produced by the other orp*
// tools: Chrome trace_event JSON from orpsim -trace-out (flow latency
// percentiles, hot links, rank activity) and obs JSONL event streams from
// orpsolve/orpfault -trace-out (anneal convergence, sweep progress).
// The format is auto-detected.
//
// Usage:
//
//	orpsim -bench FT -class S -ranks 16 -trace-out t.json graph.hsg
//	orptrace t.json
//	orpsolve -n 256 -r 10 -trace-out anneal.jsonl >/dev/null
//	orptrace -top 5 anneal.jsonl
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	top := flag.Int("top", 10, "number of hot links / slowest flows to list")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orptrace", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orptrace [-top 10] <trace.json | events.jsonl | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	if isChrome(data) {
		evs, err := obs.ReadChromeTrace(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		summarizeChrome(evs, *top)
		return
	}
	evs, err := obs.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		fatal(err)
	}
	summarizeJSONL(evs, *top)
}

// isChrome detects the Chrome trace_event flavours (a JSON array, or an
// object with a traceEvents key) against the JSONL event stream, whose
// first line is the obs.header object.
func isChrome(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return false
	}
	if trimmed[0] == '[' {
		return true
	}
	if trimmed[0] == '{' {
		// JSONL streams start with {"t":...,"kind":"obs.header",...}.
		line := trimmed
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		return !bytes.Contains(line, []byte(`"obs.header"`))
	}
	return false
}

// summarizeChrome reports flow latency percentiles, the hottest links and
// the failure count out of a Chrome trace written by orpsim/simnet.
func summarizeChrome(evs []obs.TraceEvent, top int) {
	type span struct {
		name string
		dur  float64 // seconds
	}
	var flows []span
	var lats []float64
	linkBytes := make(map[string]float64)
	failed := 0
	computeSpans, p2pPosts := 0, 0
	for _, e := range evs {
		switch {
		case e.Ph == "X" && e.Cat == "flow":
			if strings.HasPrefix(e.Name, "FAILED") {
				failed++
				continue
			}
			d := e.Dur / 1e6
			flows = append(flows, span{e.Name, d})
			lats = append(lats, d)
			b, _ := e.Args["bytes"].(float64)
			if route, ok := e.Args["route"].([]any); ok {
				for _, hop := range route {
					if s, ok := hop.(string); ok {
						linkBytes[s] += b
					}
				}
			}
		case e.Ph == "i" && e.Cat == "flow" && strings.HasPrefix(e.Name, "FAILED"):
			failed++
		case e.Ph == "X" && e.Cat == "compute":
			computeSpans++
		case e.Ph == "i" && e.Cat == "p2p":
			p2pPosts++
		}
	}
	fmt.Printf("flows            %d completed, %d failed\n", len(flows), failed)
	if computeSpans+p2pPosts > 0 {
		fmt.Printf("mpi activity     %d compute spans, %d p2p posts\n", computeSpans, p2pPosts)
	}
	if len(lats) > 0 {
		fmt.Printf("flow latency     p50 %.6es  p95 %.6es  p99 %.6es  max %.6es\n",
			stats.Percentile(lats, 50), stats.Percentile(lats, 95),
			stats.Percentile(lats, 99), stats.Percentile(lats, 100))
		sort.Slice(flows, func(i, j int) bool { return flows[i].dur > flows[j].dur })
		n := top
		if n > len(flows) {
			n = len(flows)
		}
		fmt.Printf("slowest flows\n")
		for _, f := range flows[:n] {
			fmt.Printf("  %-28s %.6es\n", f.name, f.dur)
		}
	}
	if len(linkBytes) > 0 {
		type load struct {
			link  string
			bytes float64
		}
		loads := make([]load, 0, len(linkBytes))
		for l, b := range linkBytes {
			loads = append(loads, load{l, b})
		}
		sort.Slice(loads, func(i, j int) bool {
			if loads[i].bytes != loads[j].bytes {
				return loads[i].bytes > loads[j].bytes
			}
			return loads[i].link < loads[j].link
		})
		n := top
		if n > len(loads) {
			n = len(loads)
		}
		fmt.Printf("hot links (top %d of %d by bytes)\n", n, len(loads))
		for _, l := range loads[:n] {
			fmt.Printf("  %-12s %.3e bytes\n", l.link, l.bytes)
		}
	}
}

// summarizeJSONL reports anneal convergence, sweep progress and the
// causal span waterfall out of an obs JSONL event stream.
func summarizeJSONL(evs []obs.Event, top int) {
	var samples, trials []obs.Event
	var annealDone, sweepDone *obs.Event
	spans, gapDropped := 0, 0.0
	for i, e := range evs {
		switch e.Kind {
		case obs.KindHeader:
			if v := e.F["version"]; v > obs.SchemaVersion {
				fmt.Fprintf(os.Stderr, "orptrace: note: file schema v%g is newer than this tool (v%d)\n", v, obs.SchemaVersion)
			}
		case obs.KindAnnealSample:
			samples = append(samples, e)
		case obs.KindAnnealDone:
			annealDone = &evs[i]
		case obs.KindSweepTrial:
			trials = append(trials, e)
		case obs.KindSweepDone:
			sweepDone = &evs[i]
		case obs.KindSpan:
			spans++
		case "stream.gap":
			gapDropped += e.F["dropped"]
		}
	}
	if gapDropped > 0 {
		fmt.Printf("note: the stream is incomplete — %.0f events were dropped by the server's ring buffer\n", gapDropped)
	}
	if len(samples) > 0 {
		printAnneal(samples, annealDone)
	}
	if len(trials) > 0 {
		printSweep(trials, sweepDone, top)
	}
	if spans > 0 {
		printSpans(evs, spans)
	}
	if len(samples) == 0 && len(trials) == 0 && spans == 0 {
		fmt.Printf("no anneal, sweep or span events (%d records)\n", len(evs))
	}
}

// printSpans renders the causal span forest as an indented waterfall,
// one tree per root (an orpd job, an orpsolve/orpfault run).
func printSpans(evs []obs.Event, n int) {
	roots := obs.BuildSpanTrees(evs)
	fmt.Printf("spans: %d in %d trace tree(s)\n", n, len(roots))
	if err := obs.WriteSpanTree(os.Stdout, roots, 48); err != nil {
		fatal(err)
	}
}

// printAnneal renders the convergence table, one row per sample, grouped
// by restart.
func printAnneal(samples []obs.Event, done *obs.Event) {
	byRestart := make(map[int][]obs.Event)
	var restarts []int
	for _, e := range samples {
		r := int(e.F["restart"])
		if _, ok := byRestart[r]; !ok {
			restarts = append(restarts, r)
		}
		byRestart[r] = append(byRestart[r], e)
	}
	sort.Ints(restarts)
	for _, r := range restarts {
		rs := byRestart[r]
		if len(restarts) > 1 {
			fmt.Printf("restart %d\n", r)
		}
		fmt.Printf("%10s  %14s  %12s  %12s  %7s  %12s\n",
			"iter", "temp", "current", "best", "accept", "moves/s")
		for _, e := range rs {
			rate := 0.0
			if p := e.F["proposed"]; p > 0 {
				rate = e.F["accepted"] / p
			}
			fmt.Printf("%10.0f  %14.3f  %12.0f  %12.0f  %7.3f  %12.0f\n",
				e.F["iter"], e.F["temp"], e.F["current"], e.F["best"], rate, e.F["movesPerSec"])
		}
	}
	if done != nil {
		fmt.Printf("anneal done      %.0f iters, best h-ASPL %.6f (total path %.0f), accept %.3f, %.2fs\n",
			done.F["iters"], done.F["bestHASPL"], done.F["bestTotalPath"],
			done.F["acceptRate"], done.F["seconds"])
	}
}

// printSweep aggregates per-trial sweep events by fraction.
func printSweep(trials []obs.Event, done *obs.Event, top int) {
	type agg struct {
		n                    int
		haspl, secs, stretch float64
	}
	byFrac := make(map[float64]*agg)
	var fracs []float64
	var slow []obs.Event
	for _, e := range trials {
		f := e.F["fraction"]
		a := byFrac[f]
		if a == nil {
			a = &agg{}
			byFrac[f] = a
			fracs = append(fracs, f)
		}
		a.n++
		a.haspl += e.F["survivingHASPL"]
		a.stretch += e.F["stretch"]
		a.secs += e.F["seconds"]
		slow = append(slow, e)
	}
	sort.Float64s(fracs)
	fmt.Printf("sweep: %d trials over %d fractions\n", len(trials), len(fracs))
	fmt.Printf("%8s  %7s  %16s  %9s  %12s\n", "frac", "trials", "mean surv hASPL", "stretch", "mean trial s")
	for _, f := range fracs {
		a := byFrac[f]
		n := float64(a.n)
		fmt.Printf("%8.3g  %7d  %16.6f  %9.4f  %12.4f\n", f, a.n, a.haspl/n, a.stretch/n, a.secs/n)
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].F["seconds"] > slow[j].F["seconds"] })
	n := top
	if n > len(slow) {
		n = len(slow)
	}
	fmt.Printf("slowest trials\n")
	for _, e := range slow[:n] {
		fmt.Printf("  frac %-6.3g trial %-4.0f %.4fs\n", e.F["fraction"], e.F["trial"], e.F["seconds"])
	}
	if done != nil {
		fmt.Printf("sweep done       %.0f trials in %.2fs\n", done.F["trials"], done.F["seconds"])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orptrace: %v\n", err)
	os.Exit(1)
}
