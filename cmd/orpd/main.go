// Command orpd is the long-running topology-design service: a REST/JSON
// server over the repository's engines (graph evaluation, ORP
// annealing, Monte-Carlo fault sweeps) with a priority job queue, one
// shared worker budget with checkpoint preemption, and a
// content-addressed result cache.
//
// Usage:
//
//	orpd -addr 127.0.0.1:8080 -workers 8 -data-dir /var/lib/orpd
//
// API (see internal/serve):
//
//	POST /v1/jobs             submit {"type":"eval|anneal|sweep", ...}
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        status + result (GraphReport schema inside)
//	GET  /v1/jobs/{id}/events replay + follow the job's JSONL telemetry
//	GET  /v1/history          persistent run records (with -store)
//	GET  /metrics             Prometheus exposition (orpd_* instruments)
//	GET  /healthz             liveness JSON (version, uptime, workers, store)
//
// With -store DIR every completed job is appended to a durable run
// store (internal/runstore) and the result cache survives restarts: a
// previously-served query is answered byte-identically by a fresh
// process, and `orphist` queries the same directory offline.
//
// On SIGINT/SIGTERM the server drains gracefully: new submissions get
// 503, running anneals and sweeps checkpoint and unwind, in-flight HTTP
// requests finish, then the process exits. A second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an OS-assigned port)")
		workers      = flag.Int("workers", 0, "global worker budget shared by all jobs (0 = all cores)")
		cacheSize    = flag.Int("cache-size", 1024, "result cache capacity in entries")
		dataDir      = flag.String("data-dir", "", "checkpoint directory (default: a fresh temp dir)")
		storeDir     = flag.String("store", "", "persistent run-store directory (empty = no persistence)")
		retention    = flag.Duration("retention", 0, "drop finished job records this long after completion (0 = keep forever; cached results keep their own LRU bound)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpd", version)
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: orpd [-addr host:port] [-workers N] [-cache-size N] [-data-dir DIR]")
		os.Exit(2)
	}
	w, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Workers:   w,
		CacheSize: *cacheSize,
		DataDir:   *dataDir,
		StoreDir:  *storeDir,
		Registry:  obs.NewRegistry(),
		Retention: *retention,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "orpd: serving on http://%s (budget %d workers)\n", ln.Addr(), effectiveWorkers(w))

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "orpd: %v: draining (signal again to abort)\n", s)
		go func() {
			<-sig
			os.Exit(130)
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the scheduler first (jobs checkpoint and unwind), then the
	// HTTP listener (in-flight status/event requests finish).
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "orpd: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	// Close releases the run store's append handle and removes an owned
	// temp data dir (the drain above already unwound every job, so the
	// embedded re-drain is a no-op).
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "orpd: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "orpd: drained")
}

func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orpd: %v\n", err)
	os.Exit(1)
}
