// Command orpbench runs the canonical workload registry of internal/perf
// and maintains the repository's performance trajectory: machine-readable
// BENCH_*.json reports, per-workload CPU/heap profiles, and a noise-aware
// regression gate for CI.
//
// Usage:
//
//	orpbench -list                        # show registered workloads
//	orpbench -out BENCH_5.json            # full measurement pass
//	orpbench -run 'eval/' -reps 20        # subset, more repetitions
//	orpbench -short -out ci.json          # reduced repetitions (CI smoke)
//	orpbench -profile-dir prof/           # CPU+heap profile per workload
//	orpbench -compare old.json new.json   # regression gate; exit 3 on fail
//
// Exit status: 0 success (and no regression), 1 runtime error, 2 usage,
// 3 regression detected by -compare.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/cliutil"
	"repro/internal/perf"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list registered workloads and exit")
		run        = flag.String("run", "", "only run workloads matching this regexp")
		reps       = flag.Int("reps", 0, "timed repetitions per workload (0 = default: 12, or 6 with -short)")
		warmup     = flag.Int("warmup", 0, "warmup repetitions per workload (0 = default: 2, or 1 with -short)")
		short      = flag.Bool("short", false, "reduced repetition counts (per-repetition work is never reduced)")
		out        = flag.String("out", "", "write the JSON report to this file ('-' for stdout)")
		profileDir = flag.String("profile-dir", "", "capture per-workload CPU and heap profiles into this directory")
		compare    = flag.Bool("compare", false, "compare two reports: orpbench -compare old.json new.json")
		minRel     = flag.Float64("min-rel", 0, "regression threshold floor as a fraction (0 = default 0.10)")
		madScale   = flag.Float64("mad-scale", 0, "noise multiplier: threshold = mad-scale x measured relative MAD (0 = default 6)")
		scale      = flag.Float64("threshold-scale", 0, "relax every threshold by this factor, for shared CI runners (0 = default 1)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpbench", version)

	if *compare {
		os.Exit(runCompare(flag.Args(), perf.CompareOptions{MinRel: *minRel, MADScale: *madScale, Scale: *scale}))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: orpbench [flags]  |  orpbench -compare old.json new.json")
		os.Exit(2)
	}

	var re *regexp.Regexp
	if *run != "" {
		var err error
		if re, err = regexp.Compile(*run); err != nil {
			fmt.Fprintf(os.Stderr, "orpbench: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
	}
	ws := perf.Match(re)
	if len(ws) == 0 {
		fmt.Fprintln(os.Stderr, "orpbench: no workloads match")
		os.Exit(2)
	}
	if *list {
		for _, w := range ws {
			fmt.Printf("%-44s [%s] %s (%s/s)\n", w.Name, w.Family, w.Doc, w.Unit)
		}
		return
	}

	rep, err := perf.RunWorkloads(ws, perf.RunOptions{
		Warmup:     *warmup,
		Reps:       *reps,
		Short:      *short,
		ProfileDir: *profileDir,
		Log:        os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
		os.Exit(1)
	}
	switch *out {
	case "":
	case "-":
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d workloads, %d families)\n",
			*out, len(rep.Workloads), len(perf.Families(rep.Workloads)))
	}
}

// runCompare implements the regression gate and returns the process exit
// status.
func runCompare(args []string, o perf.CompareOptions) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: orpbench -compare old.json new.json")
		return 2
	}
	old, err := perf.ReadReportFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
		return 1
	}
	new, err := perf.ReadReportFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
		return 1
	}
	res, err := perf.Compare(old, new, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpbench: %v\n", err)
		return 1
	}
	res.Format(os.Stdout)
	if res.Gate() {
		fmt.Fprintf(os.Stderr, "orpbench: %d regression(s), %d baseline workload(s) missing\n",
			res.Regressions, len(res.MissingInNew))
		return 3
	}
	return 0
}
