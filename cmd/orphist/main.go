// Command orphist queries the durable run history written by orpd
// (-store), orpsolve (-store) and orpfault (-store): list recent runs,
// inspect one record, compute the best-known h-ASPL leaderboard per
// (n, r) cell, compare two records, check a result for regression
// against the stored best, or compact a log that has accumulated
// corrupt or foreign regions.
//
// Usage:
//
//	orphist -store runs/ list [-n 20] [-tool orpd] [-kind anneal] [-json]
//	orphist -store runs/ show [-result] [-json] r00000042
//	orphist -store runs/ best [-by-m] [-json]
//	orphist -store runs/ compare [-json] r00000001 r00000042
//	orphist -store runs/ check [-by-m] [-json] [r00000042 | latest]
//	orphist -store runs/ compact
//
// check exits 3 when the candidate regresses on the stored best of its
// cell (the convention orpbench -compare uses), so CI can gate on it.
// All query subcommands open the store read-only; a missing store is an
// empty history, not an error. Skipped regions (torn tail after a
// crash, records from a different binary version) are reported on
// stderr and never fatal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/runstore"
)

func main() {
	storeDir := flag.String("store", "", "run-store directory (as given to orpd/orpsolve/orpfault -store)")
	version := cliutil.VersionFlag()
	flag.Usage = usage
	flag.Parse()
	cliutil.ExitIfVersion("orphist", version)
	if *storeDir == "" || flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "list":
		runList(*storeDir, args)
	case "show":
		runShow(*storeDir, args)
	case "best":
		runBest(*storeDir, args)
	case "compare":
		runCompare(*storeDir, args)
	case "check":
		runCheck(*storeDir, args)
	case "compact":
		runCompact(*storeDir, args)
	default:
		fmt.Fprintf(os.Stderr, "orphist: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: orphist -store DIR <subcommand> [flags] [args]

subcommands:
  list     recent runs, newest first
  show     one record in full
  best     best-known h-ASPL leaderboard per (n, r) cell
  compare  two records side by side
  check    regression check of a record against its cell's stored best (exit 3 on regression)
  compact  rewrite the log, dropping corrupt or foreign regions

run "orphist -store DIR <subcommand> -h" for subcommand flags.
`)
}

// open opens the store read-only and surfaces scan skips: a run store is
// shared across binary versions and survives crashes, so "some regions
// were skipped" is a warning the user should see, never a failure.
func open(dir string) *runstore.Store {
	st, err := runstore.OpenRead(dir)
	if err != nil {
		fatal(err)
	}
	warnSkips(st)
	return st
}

func warnSkips(st *runstore.Store) {
	if s := st.Stats(); s.SkippedRecords > 0 {
		fmt.Fprintf(os.Stderr, "orphist: warning: skipped %d unreadable region(s), %d bytes (torn tail, corruption or foreign record versions); \"orphist -store %s compact\" drops them\n",
			s.SkippedRecords, s.SkippedBytes, st.Dir())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orphist: %v\n", err)
	os.Exit(1)
}

// subFlags builds a subcommand flag set that exits 2 on bad flags.
func subFlags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("orphist "+name, flag.ExitOnError)
	return fs
}

func runList(dir string, args []string) {
	fs := subFlags("list")
	n := fs.Int("n", 20, "show at most this many records (0 = all)")
	tool := fs.String("tool", "", "only records from this tool (orpd, orpsolve, orpfault)")
	kind := fs.String("kind", "", "only records of this kind (eval, anneal, sweep)")
	jsonOut := fs.Bool("json", false, "machine-readable output (one record per line)")
	fs.Parse(args)
	st := open(dir)
	recs := st.Recent(0)
	filtered := recs[:0]
	for _, r := range recs {
		if (*tool == "" || r.Tool == *tool) && (*kind == "" || r.Kind == *kind) {
			filtered = append(filtered, r)
		}
	}
	if *n > 0 && len(filtered) > *n {
		filtered = filtered[:*n]
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range filtered {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		}
		return
	}
	if len(filtered) == 0 {
		fmt.Println("no records")
		return
	}
	fmt.Printf("%-10s  %-19s  %-8s  %-6s  %6s %4s %5s  %10s  %9s\n",
		"ID", "TIME", "TOOL", "KIND", "N", "R", "M", "H-ASPL", "WALL")
	for _, r := range filtered {
		fmt.Printf("%-10s  %-19s  %-8s  %-6s  %6d %4d %5d  %10s  %8.2fs\n",
			r.ID, time.Unix(0, r.Unix).Format("2006-01-02 15:04:05"),
			r.Tool, r.Kind, r.N, r.R, r.M, hasplStr(r), r.WallSeconds)
	}
}

// hasplStr renders the record's h-ASPL, or the disconnection marker.
func hasplStr(r runstore.Record) string {
	if !r.Metrics.Connected {
		return "disc"
	}
	return fmt.Sprintf("%.6f", r.Metrics.HASPL)
}

func runShow(dir string, args []string) {
	fs := subFlags("show")
	result := fs.Bool("result", false, "print the record's raw result JSON to stdout instead of the summary")
	jsonOut := fs.Bool("json", false, "machine-readable record (result bytes included under \"result\")")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("show needs exactly one record ID"))
	}
	st := open(dir)
	rec, ok := st.Get(fs.Arg(0))
	if !ok {
		fatal(fmt.Errorf("no record %q (try \"orphist -store %s list\")", fs.Arg(0), dir))
	}
	switch {
	case *result:
		if len(rec.Result) == 0 {
			fatal(fmt.Errorf("record %s carries no result bytes", rec.ID))
		}
		os.Stdout.Write(rec.Result)
		if rec.Result[len(rec.Result)-1] != '\n' {
			fmt.Println()
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			runstore.Record
			Result json.RawMessage `json:"result,omitempty"`
		}{rec, rec.ResultJSON()}); err != nil {
			fatal(err)
		}
	default:
		printRecord(rec)
	}
}

func printRecord(r runstore.Record) {
	fmt.Printf("record       %s\n", r.ID)
	fmt.Printf("time         %s\n", time.Unix(0, r.Unix).Format(time.RFC3339))
	fmt.Printf("tool/kind    %s/%s\n", r.Tool, r.Kind)
	if r.Build != "" {
		fmt.Printf("build        %s\n", r.Build)
	}
	fmt.Printf("cell         n=%d r=%d m=%d\n", r.N, r.R, r.M)
	fmt.Printf("seed         %d\n", r.Seed)
	if r.Symmetry != 0 {
		fmt.Printf("symmetry     %d\n", r.Symmetry)
	}
	if r.EvalMode != "" {
		fmt.Printf("eval mode    %s\n", r.EvalMode)
	}
	if r.Workers != 0 {
		fmt.Printf("workers      %d\n", r.Workers)
	}
	if r.Key != "" {
		fmt.Printf("cache key    %s\n", r.Key)
	}
	if r.Fingerprint != "" {
		fmt.Printf("fingerprint  %s\n", r.Fingerprint)
	}
	fmt.Printf("h-ASPL       %s (diameter %d, connected %v)\n", hasplStr(r), r.Metrics.Diameter, r.Metrics.Connected)
	fmt.Printf("total path   %d over %d pairs\n", r.Metrics.TotalPath, r.Metrics.ReachablePairs)
	if len(r.EnergyTrace) > 0 {
		fmt.Printf("energy trace %d samples, stride %d: %d -> %d\n",
			len(r.EnergyTrace), r.EnergyTraceStride,
			int64(r.EnergyTrace[0]), int64(r.EnergyTrace[len(r.EnergyTrace)-1]))
	}
	fmt.Printf("wall         %.3fs", r.WallSeconds)
	if r.CPUSeconds > 0 {
		fmt.Printf(" (cpu %.3fs)", r.CPUSeconds)
	}
	fmt.Println()
	for _, p := range r.Phases {
		fmt.Printf("  phase %-18s %9.3fs\n", p.Name, p.Seconds)
	}
	if len(r.Result) > 0 {
		fmt.Printf("result       %d bytes (orphist show -result %s)\n", len(r.Result), r.ID)
	}
}

func runBest(dir string, args []string) {
	fs := subFlags("best")
	byM := fs.Bool("by-m", false, "split leaderboard cells by switch count m as well")
	jsonOut := fs.Bool("json", false, "machine-readable leaderboard")
	fs.Parse(args)
	st := open(dir)
	entries := runstore.Best(st.Records(), *byM)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fatal(err)
		}
		return
	}
	if len(entries) == 0 {
		fmt.Println("no eligible records")
		return
	}
	fmt.Printf("%-20s  %10s  %-10s  %-8s  %-19s\n", "CELL", "H-ASPL", "ID", "TOOL", "TIME")
	for _, e := range entries {
		fmt.Printf("%-20s  %10.6f  %-10s  %-8s  %-19s\n",
			e.Cell, e.Record.Metrics.HASPL, e.Record.ID, e.Record.Tool,
			time.Unix(0, e.Record.Unix).Format("2006-01-02 15:04:05"))
	}
}

func runCompare(dir string, args []string) {
	fs := subFlags("compare")
	jsonOut := fs.Bool("json", false, "machine-readable comparison")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("compare needs exactly two record IDs"))
	}
	st := open(dir)
	a, ok := st.Get(fs.Arg(0))
	if !ok {
		fatal(fmt.Errorf("no record %q", fs.Arg(0)))
	}
	b, ok := st.Get(fs.Arg(1))
	if !ok {
		fatal(fmt.Errorf("no record %q", fs.Arg(1)))
	}
	delta := 0.0
	if a.Metrics.HASPL > 0 {
		delta = (b.Metrics.HASPL - a.Metrics.HASPL) / a.Metrics.HASPL * 100
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			A        runstore.Record `json:"a"`
			B        runstore.Record `json:"b"`
			DeltaPct float64         `json:"deltaPct"`
		}{a, b, delta}); err != nil {
			fatal(err)
		}
		return
	}
	row := func(name string, f func(runstore.Record) string) {
		fmt.Printf("%-12s  %-28s  %-28s\n", name, f(a), f(b))
	}
	fmt.Printf("%-12s  %-28s  %-28s\n", "", a.ID, b.ID)
	row("time", func(r runstore.Record) string { return time.Unix(0, r.Unix).Format("2006-01-02 15:04:05") })
	row("tool/kind", func(r runstore.Record) string { return r.Tool + "/" + r.Kind })
	row("cell", func(r runstore.Record) string { return fmt.Sprintf("n=%d r=%d m=%d", r.N, r.R, r.M) })
	row("seed", func(r runstore.Record) string { return fmt.Sprintf("%d", r.Seed) })
	row("h-ASPL", hasplStr)
	row("diameter", func(r runstore.Record) string { return fmt.Sprintf("%d", r.Metrics.Diameter) })
	row("wall", func(r runstore.Record) string { return fmt.Sprintf("%.3fs", r.WallSeconds) })
	fmt.Printf("%-12s  %+.4f%% (b vs a, h-ASPL; negative is better)\n", "delta", delta)
}

func runCheck(dir string, args []string) {
	fs := subFlags("check")
	byM := fs.Bool("by-m", false, "split cells by switch count m as well")
	jsonOut := fs.Bool("json", false, "machine-readable verdict")
	fs.Parse(args)
	if fs.NArg() > 1 {
		fatal(fmt.Errorf("check takes at most one record ID (default: latest)"))
	}
	st := open(dir)
	var candidate runstore.Record
	if fs.NArg() == 0 || fs.Arg(0) == "latest" {
		recent := st.Recent(1)
		if len(recent) == 0 {
			fatal(fmt.Errorf("store is empty; nothing to check"))
		}
		candidate = recent[0]
	} else {
		var ok bool
		candidate, ok = st.Get(fs.Arg(0))
		if !ok {
			fatal(fmt.Errorf("no record %q", fs.Arg(0)))
		}
	}
	res := runstore.Check(st.Records(), candidate, *byM)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		switch {
		case res.Best == nil:
			fmt.Printf("PASS  %s is the first eligible result in cell %s\n", candidate.ID, res.Cell)
		case res.Regressed:
			fmt.Printf("REGRESSION  %s h-ASPL %s vs best %s (%s) %.6f: %+.4f%%\n",
				candidate.ID, hasplStr(candidate), res.Best.ID, res.Best.Tool,
				res.Best.Metrics.HASPL, res.DeltaPct)
		default:
			fmt.Printf("PASS  %s h-ASPL %s vs best %s %.6f: %+.4f%%\n",
				candidate.ID, hasplStr(candidate), res.Best.ID,
				res.Best.Metrics.HASPL, res.DeltaPct)
		}
	}
	if res.Regressed {
		os.Exit(3) // the orpbench -compare convention: regression = exit 3
	}
}

func runCompact(dir string, args []string) {
	fs := subFlags("compact")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatal(fmt.Errorf("compact takes no arguments"))
	}
	st, err := runstore.Open(dir)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	before := st.Stats()
	if err := st.Compact(); err != nil {
		fatal(err)
	}
	after := st.Stats()
	fmt.Printf("compacted %s: %d records, %d -> %d bytes",
		dir, after.Records, before.Bytes, after.Bytes)
	if before.SkippedRecords > 0 {
		fmt.Printf(" (dropped %d unreadable region(s), %d bytes)",
			before.SkippedRecords, before.SkippedBytes)
	}
	fmt.Println()
}
