// Command orpgolf solves order/degree problem (ODP) instances in the
// style of the Graph Golf competition the paper cites: given order N and
// degree D, search for an N-vertex D-regular graph with minimal average
// shortest path length, and read/write Graph Golf edge lists.
//
// Usage:
//
//	orpgolf -n 32 -d 5 -iters 50000 -o graph.edges   # solve
//	orpgolf -eval graph.edges                        # evaluate a file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/odp"
	"repro/internal/opt"
)

func main() {
	var (
		n        = flag.Int("n", 32, "order: number of vertices")
		d        = flag.Int("d", 4, "degree")
		iters    = flag.Int("iters", 50000, "annealing iterations")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "evaluation shard workers (0 = GOMAXPROCS)")
		schedule = flag.String("schedule", "geometric", "geometric | linear | hillclimb")
		out      = flag.String("o", "", "write the edge list here (default stdout)")
		evalFile = flag.String("eval", "", "evaluate an existing edge-list file instead of solving")
		evalMode = flag.String("eval-mode", "exact", "evaluation ladder rung: exact, incremental, ladder or symmetric (same result, increasing moves/s)")
		symmetry = flag.Int("symmetry", 0, "search only graphs closed under a cyclic group action of this order (0 = off; must divide n)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpgolf", version)

	if *evalFile != "" {
		f, err := os.Open(*evalFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := odp.ReadEdgeList(f, 0)
		if err != nil {
			fatal(err)
		}
		res, err := odp.Evaluate(g)
		if err != nil {
			fatal(err)
		}
		report(res)
		return
	}

	var sched opt.Schedule
	switch *schedule {
	case "geometric":
		sched = opt.Geometric
	case "linear":
		sched = opt.Linear
	case "hillclimb":
		sched = opt.HillClimb
	default:
		fmt.Fprintf(os.Stderr, "orpgolf: unknown schedule %q\n", *schedule)
		os.Exit(2)
	}
	eval, err := opt.ParseEvalMode(*evalMode)
	if err != nil {
		fatal(err)
	}
	res, err := odp.Solve(*n, *d, odp.Options{Iterations: *iters, Seed: *seed, Schedule: sched, Workers: *workers, Eval: eval, Symmetry: *symmetry})
	if err != nil {
		fatal(err)
	}
	report(res)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := odp.WriteEdgeList(w, res.Graph); err != nil {
		fatal(err)
	}
}

func report(res *odp.Result) {
	fmt.Fprintf(os.Stderr, "order     %d\n", res.Order)
	fmt.Fprintf(os.Stderr, "degree    %d\n", res.Degree)
	fmt.Fprintf(os.Stderr, "ASPL      %.6f (Moore bound %.6f, gap %.6f)\n", res.ASPL, res.LowerB, res.ASPLGap)
	fmt.Fprintf(os.Stderr, "diameter  %d\n", res.Diameter)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orpgolf: %v\n", err)
	os.Exit(1)
}
