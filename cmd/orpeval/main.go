// Command orpeval evaluates a host-switch graph file: h-ASPL, diameter,
// the paper's lower bounds, host distribution, deployment power/cost, and
// partition-cut bandwidth.
//
// Usage:
//
//	orpeval [-bandwidth] [-phys] [-json] [-workers N] graph.hsg
//	orpsolve -n 128 -r 24 | orpeval -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bounds"
	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/partition"
	"repro/internal/phys"
	"repro/internal/vis"
)

func main() {
	var (
		withBandwidth = flag.Bool("bandwidth", false, "also compute partition cuts for P=2..16")
		withPhys      = flag.Bool("phys", false, "also compute deployment power and cost")
		dotOut        = flag.String("dot", "", "write a Graphviz rendering to this file")
		svgOut        = flag.String("svg", "", "write an SVG rendering to this file")
		dotHosts      = flag.Bool("dothosts", false, "include host vertices in the DOT output")
		seed          = flag.Uint64("seed", 1, "partitioner seed")
		workers       = flag.Int("workers", 0, "h-ASPL evaluation shard workers (0 = all cores)")
		jsonOut       = flag.Bool("json", false, "emit the fault.GraphReport JSON schema instead of text")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpeval", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpeval [-bandwidth] [-phys] <graph.hsg | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "orpeval: invalid graph: %v\n", err)
		os.Exit(1)
	}
	n, m, r := g.Order(), g.Switches(), g.Radix()
	met := g.EvaluateParallel(*workers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fault.NewGraphReport(g, met)); err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("order (hosts)     %d\n", n)
	fmt.Printf("switches          %d (used on shortest paths: %d)\n", m, g.UsedSwitches())
	fmt.Printf("radix             %d\n", r)
	fmt.Printf("switch links      %d\n", g.NumEdges())
	fmt.Printf("h-ASPL            %.6f\n", met.HASPL)
	fmt.Printf("diameter          %d\n", met.Diameter)
	fmt.Printf("theorem1 diam LB  %d\n", bounds.DiameterLowerBound(n, r))
	fmt.Printf("theorem2 ASPL LB  %.6f\n", bounds.HASPLLowerBound(n, r))
	mOpt, b := bounds.OptimalSwitchCount(n, r, 0)
	fmt.Printf("m_opt prediction  %d (continuous Moore bound %.6f)\n", mOpt, b)
	fmt.Printf("host distribution %v\n", g.HostDistribution())

	if *withBandwidth {
		pg := partition.FromHostSwitchGraph(g)
		fmt.Printf("\npartition cuts (METIS-style):\n")
		for p := 2; p <= 16; p++ {
			parts, err := partition.KWay(pg, p, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orpeval: partition P=%d: %v\n", p, err)
				os.Exit(1)
			}
			fmt.Printf("  P=%-3d cut=%-6d imbalance=%.3f\n",
				p, partition.EdgeCut(pg, parts), partition.Imbalance(pg, parts, p))
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		if err := hsgraph.WriteDOT(f, g, *dotHosts); err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nDOT rendering written to %s\n", *dotOut)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		if err := vis.WriteSVG(f, g, vis.Options{ShowHosts: *dotHosts, ShowLabels: true}); err != nil {
			fmt.Fprintf(os.Stderr, "orpeval: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nSVG rendering written to %s\n", *svgOut)
	}
	if *withPhys {
		rep := phys.Evaluate(g, phys.NewParams())
		fmt.Printf("\ndeployment (%d cabinets, %dx%d grid):\n", rep.Cabinets, rep.GridCols, rep.GridRows)
		fmt.Printf("  cables          %d electrical, %d optical, %.1f m total\n", rep.NumElec, rep.NumOpt, rep.TotalCableM)
		fmt.Printf("  power           %.1f W switches + %.1f W cables = %.1f W\n", rep.SwitchPowerW, rep.CablePowerW, rep.TotalPowerW())
		fmt.Printf("  cost            $%.0f switches + $%.0f cables = $%.0f\n", rep.SwitchCost, rep.CableCost, rep.TotalCost())
	}
}
