// Command orpsolve solves an order/radix problem instance: given order n
// (hosts) and radix r (ports per switch), it predicts the optimal switch
// count from the continuous Moore bound and runs simulated annealing with
// the 2-neighbor swing operation, writing the resulting host-switch graph
// and its metrics.
//
// Usage:
//
//	orpsolve -n 1024 -r 15 [-iters 100000] [-restarts 4] [-workers 0]
//	         [-seed 1] [-m 0] [-moves 2ns|swap|swing] [-o graph.hsg] [-v]
//	         [-progress] [-trace-out anneal.jsonl] [-metrics-addr 127.0.0.1:0]
//	         [-checkpoint run.ckpt] [-checkpoint-every 10000] [-resume]
//	         [-store runs/]
//
// With -checkpoint the anneal periodically persists a crash-safe snapshot
// (and a final one on SIGINT/SIGTERM); -resume continues such a run and
// produces the bit-identical result the uninterrupted run would have.
//
// With -store every completed solve appends one record (configuration,
// final metrics, convergence trace, wall-time decomposition) to the run
// store in that directory; query it later with orphist. orpd and orpfault
// can share the same directory.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/ckpt"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/runstore"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	var (
		n        = flag.Int("n", 1024, "order: number of hosts")
		r        = flag.Int("r", 15, "radix: ports per switch")
		iters    = flag.Int("iters", 100000, "annealing iterations")
		restarts = flag.Int("restarts", 1, "independent annealing restarts (best wins)")
		workers  = flag.Int("workers", 0, "evaluation shard workers per run (0 = auto: split GOMAXPROCS over restarts)")
		seed     = flag.Uint64("seed", 1, "random seed")
		fixedM   = flag.Int("m", 0, "force the switch count (0 = continuous-Moore prediction)")
		moves    = flag.String("moves", "2ns", "move set: 2ns, swap or swing")
		evalMode = flag.String("eval-mode", "exact", "evaluation ladder rung: exact, incremental, ladder or symmetric (same result, increasing moves/s)")
		symmetry = flag.Int("symmetry", 0, "search only graphs closed under a cyclic group action of this order (0 = off; pair with -eval-mode symmetric to quotient evaluation)")
		out      = flag.String("o", "", "output file for the graph (default stdout)")
		dfs      = flag.Bool("dfs", true, "relabel hosts in depth-first order (paper §6.2.1)")
		verbose  = flag.Bool("v", false, "print annealing progress")
		repeat   = flag.Int("repeat", 1, "solve with this many consecutive seeds and report h-ASPL statistics")

		progress    = flag.Bool("progress", false, "print per-interval anneal telemetry (temperature, accept rate, moves/s) to stderr")
		traceOut    = flag.String("trace-out", "", "write anneal telemetry as JSONL events to this file (obs schema)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address while solving (e.g. 127.0.0.1:0)")

		checkpoint      = flag.String("checkpoint", "", "write crash-safe anneal snapshots to this file (one per restart when -restarts > 1)")
		checkpointEvery = flag.Int("checkpoint-every", 0, "snapshot interval in iterations (0 = annealer default, 10000)")
		resume          = flag.Bool("resume", false, "continue from the -checkpoint snapshot; the result is bit-identical to an uninterrupted run")

		storeDir = flag.String("store", "", "append one run record per completed solve to the run store in this directory (query with orphist)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpsolve", version)
	if _, err := cliutil.Workers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "orpsolve: -resume needs -checkpoint")
		os.Exit(2)
	}
	if *checkpoint != "" && *repeat > 1 {
		fmt.Fprintln(os.Stderr, "orpsolve: -checkpoint does not combine with -repeat (one snapshot file cannot serve several seeds)")
		os.Exit(2)
	}

	var moveSet opt.MoveSet
	switch *moves {
	case "2ns":
		moveSet = opt.TwoNeighborSwing
	case "swap":
		moveSet = opt.SwapOnly
	case "swing":
		moveSet = opt.SwingOnly
	default:
		fmt.Fprintf(os.Stderr, "orpsolve: unknown move set %q\n", *moves)
		os.Exit(2)
	}
	eval, err := opt.ParseEvalMode(*evalMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := cliutil.StartMetrics(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	// A resumed run appends to the interrupted run's event log instead of
	// truncating it.
	openSink := cliutil.OpenSink
	if *resume {
		openSink = cliutil.AppendSink
	}
	sink, err := openSink(*traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
		os.Exit(1)
	}
	defer sink.Close()
	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
	}
	// Run-store records keep the run's wall-time decomposition, so spans
	// are collected in memory whenever a store is configured — with or
	// without a -trace-out file.
	var spans *cliutil.SpanCollector
	if store != nil {
		spans = &cliutil.SpanCollector{}
	}

	o := core.Options{
		Iterations:      *iters,
		Restarts:        *restarts,
		Seed:            *seed,
		FixedM:          *fixedM,
		Moves:           moveSet,
		Workers:         *workers,
		Eval:            eval,
		Symmetry:        *symmetry,
		TraceEnergy:     store != nil, // stored records carry the convergence trace
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
	}
	if *checkpoint != "" {
		o.Interrupt = cliutil.Interrupt()
	}
	if *resume {
		nres := *restarts
		if nres < 1 {
			nres = 1
		}
		for i := 0; i < nres; i++ {
			path := opt.RestartCheckpointPath(*checkpoint, nres, i)
			info, err := opt.ReadCheckpointInfo(path)
			switch {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(os.Stderr, "no checkpoint at %s; restart %d starts fresh\n", path, i)
			case err != nil:
				fmt.Fprintf(os.Stderr, "orpsolve: resume %s: %v\n", path, err)
				os.Exit(1)
			default:
				fmt.Fprintf(os.Stderr, "resuming restart %d from %s: iteration %d/%d, best %d\n",
					info.Restart, path, info.Iter, info.Iterations, info.BestEnergy)
			}
		}
	}
	if obsv := cliutil.NewAnnealObserver(reg, sink, *progress); obsv != nil {
		o.Observer = obsv
	}
	// With -trace-out the run carries a stage-span trace alongside the
	// samples: orptrace renders the waterfall from the same file.
	root := cliutil.TeeTracer("orpsolve", sink, spans).Root("solve")
	o.Span = root
	if *verbose && *restarts <= 1 {
		o.OnProgress = func(iter int, cur, best int64) {
			fmt.Fprintf(os.Stderr, "iter %8d  current %12d  best %12d\n", iter, cur, best)
		}
	}
	solveStart := time.Now()
	var top *core.Topology
	if *repeat > 1 {
		// Multi-seed study: report h-ASPL statistics, keep the best.
		haspls := make([]float64, 0, *repeat)
		for i := 0; i < *repeat; i++ {
			oi := o
			oi.Seed = o.Seed + uint64(i)
			oi.OnProgress = nil
			seedStart, seedCPU := time.Now(), cliutil.CPUSeconds()
			ti, err := core.Solve(*n, *r, oi)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orpsolve: seed %d: %v\n", oi.Seed, err)
				os.Exit(1)
			}
			// One record per seed; the shared root span covers all seeds,
			// so per-seed records carry wall/CPU deltas and no phase
			// decomposition.
			if err := store.AppendRun(func() runstore.Record {
				return solveRecord(ti, *n, *r, oi.Seed, *symmetry, *evalMode, *workers,
					time.Since(seedStart).Seconds(), cliutil.CPUSeconds()-seedCPU, nil)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "orpsolve: store: %v\n", err)
				os.Exit(1)
			}
			haspls = append(haspls, ti.Metrics.HASPL)
			fmt.Fprintf(os.Stderr, "seed %-6d h-ASPL %.6f\n", oi.Seed, ti.Metrics.HASPL)
			if top == nil || ti.Metrics.TotalPath < top.Metrics.TotalPath {
				top = ti
			}
		}
		sum := stats.Summarize(haspls)
		lo, hi := stats.BootstrapCI(haspls, 0.95, 2000, o.Seed)
		fmt.Fprintf(os.Stderr, "h-ASPL over %d seeds: %v\n", *repeat, sum)
		fmt.Fprintf(os.Stderr, "95%% bootstrap CI of the mean: [%.6f, %.6f]\n", lo, hi)
	} else {
		var err error
		top, err = core.Solve(*n, *r, o)
		if errors.Is(err, ckpt.ErrInterrupted) {
			if top != nil {
				fmt.Fprintf(os.Stderr, "interrupted at iteration %d/%d, best h-ASPL so far %.6f\n",
					top.Anneal.Iterations, *iters, top.Metrics.HASPL)
			}
			root.SetS("outcome", "interrupted")
			root.End()
			sink.Close()
			fmt.Fprintf(os.Stderr, "checkpoint saved to %s; rerun with -resume to continue\n", *checkpoint)
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
			os.Exit(1)
		}
	}
	root.End()
	if *repeat <= 1 {
		// Single solve: the ended root span yields the run's wall-time
		// decomposition (repeat mode already recorded per seed above).
		if err := store.AppendRun(func() runstore.Record {
			return solveRecord(top, *n, *r, o.Seed, *symmetry, *evalMode, *workers,
				time.Since(solveStart).Seconds(), cliutil.CPUSeconds(),
				runstore.PhasesFromDurations(obs.PhaseDurations(spans.Events())))
		}); err != nil {
			fmt.Fprintf(os.Stderr, "orpsolve: store: %v\n", err)
			os.Exit(1)
		}
	}
	if sink != nil && top.Method == core.Annealed {
		res := top.Anneal
		rate := 0.0
		if res.Proposed > 0 {
			rate = float64(res.Accepted) / float64(res.Proposed)
		}
		secs := time.Since(solveStart).Seconds()
		sink.Emit(obs.Event{T: secs, Kind: obs.KindAnnealDone, F: map[string]float64{
			"iters":         float64(res.Iterations),
			"bestTotalPath": float64(res.Best.TotalPath),
			"bestHASPL":     res.Best.HASPL,
			"acceptRate":    rate,
			"seconds":       secs,
		}})
	}
	// The incremental evaluator's one silent performance downgrade: peek
	// sweeps too large for the row store fall back to recomputation on
	// accept. Surface it so nobody wonders where the moves/s went.
	if skips := top.Anneal.Eval.Inc.PeekStoreSkips; skips > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d peek sweeps exceeded the %d-entry row store and were recomputed on accept (larger graphs than the cache expects; -eval-mode exact avoids the cache)\n",
			skips, hsgraph.MaxPeekRowEntries)
	}
	g := top.Graph
	if *dfs {
		g = topo.RelabelHostsDFS(g)
	}

	fmt.Fprintf(os.Stderr, "method            %v\n", top.Method)
	fmt.Fprintf(os.Stderr, "switches          %d (predicted m_opt %d)\n", top.MUsed, top.MPredicted)
	fmt.Fprintf(os.Stderr, "h-ASPL            %.6f\n", top.Metrics.HASPL)
	fmt.Fprintf(os.Stderr, "diameter          %d\n", top.Metrics.Diameter)
	fmt.Fprintf(os.Stderr, "theorem2 bound    %.6f\n", top.LowerBound)
	fmt.Fprintf(os.Stderr, "continuous Moore  %.6f\n", top.ContinuousMoore)
	fmt.Fprintf(os.Stderr, "host distribution %v\n", g.HostDistribution())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hsgraph.Write(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "orpsolve: %v\n", err)
		os.Exit(1)
	}
}

// solveResult is the result-JSON schema stored with orpsolve records: a
// compact summary of what the solve produced (the graph itself goes to
// stdout/-o, not the store). Deliberately distinct from orpd's result
// schema — that is why CLI records carry no cache key.
type solveResult struct {
	Method          string  `json:"method"`
	N               int     `json:"n"`
	R               int     `json:"r"`
	MUsed           int     `json:"mUsed"`
	MPredicted      int     `json:"mPredicted"`
	HASPL           float64 `json:"haspl"`
	Diameter        int     `json:"diameter"`
	TotalPath       int64   `json:"totalPath"`
	LowerBound      float64 `json:"lowerBound"`
	ContinuousMoore float64 `json:"continuousMoore"`
	Fingerprint     string  `json:"fingerprint"`
}

// solveRecord builds the run-store record for one completed solve. Only
// called via Store.AppendRun, so it never runs when -store is off.
func solveRecord(ti *core.Topology, n, r int, seed uint64, symmetry int, evalMode string, workers int, wall, cpu float64, phases []runstore.Phase) runstore.Record {
	res, _ := json.Marshal(solveResult{
		Method:          fmt.Sprint(ti.Method),
		N:               n,
		R:               r,
		MUsed:           ti.MUsed,
		MPredicted:      ti.MPredicted,
		HASPL:           ti.Metrics.HASPL,
		Diameter:        ti.Metrics.Diameter,
		TotalPath:       ti.Metrics.TotalPath,
		LowerBound:      ti.LowerBound,
		ContinuousMoore: ti.ContinuousMoore,
		Fingerprint:     ti.Graph.Fingerprint().String(),
	})
	rec := runstore.Record{
		Unix:        time.Now().UnixNano(),
		Tool:        "orpsolve",
		Kind:        "anneal",
		Build:       buildinfo.Get().String(),
		Fingerprint: ti.Graph.Fingerprint().String(),
		Seed:        seed,
		N:           n,
		M:           ti.MUsed,
		R:           r,
		Symmetry:    symmetry,
		EvalMode:    evalMode,
		Workers:     workers,
		Metrics: runstore.MetricsOf(ti.Metrics.HASPL, ti.Metrics.Diameter,
			ti.Metrics.Connected, ti.Metrics.TotalPath, ti.Metrics.ReachablePairs),
		Phases:      phases,
		WallSeconds: wall,
		CPUSeconds:  cpu,
		Result:      res,
	}
	if ti.Method == core.Annealed {
		rec.EnergyTrace = ti.Anneal.EnergyTrace
		rec.EnergyTraceStride = ti.Anneal.EnergyTraceStride
	}
	return rec
}
