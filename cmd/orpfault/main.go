// Command orpfault injects deterministic failures into a host-switch graph
// and reports the degradation: post-failure h-ASPL over surviving pairs,
// disconnected hosts, path stretch, and (with -sweep) a Monte-Carlo
// resilience curve with bootstrap confidence intervals. With -repair it
// re-optimises the degraded graph around the failures and reports how much
// of the lost h-ASPL the repair recovers.
//
// Usage:
//
//	orpfault -model links -frac 0.05 -seed 7 graph.hsg
//	orpfault -sweep -trials 20 -json graph.hsg
//	orpfault -sweep -trials 200 -checkpoint sweep.ckpt [-resume] graph.hsg
//	orpfault -model switches -frac 0.1 -repair -o repaired.hsg graph.hsg
//	orpfault -frac 0.05 -svg degraded.svg graph.hsg
//	orpfault -sweep -store runs/ graph.hsg
//
// With -store every completed run appends one record to the run store in
// that directory (scenario runs as kind "eval", sweeps as kind "sweep",
// both carrying the pristine graph's metrics and the full result JSON);
// query it later with orphist. orpd and orpsolve can share the directory.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/ckpt"
	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/runstore"
	"repro/internal/vis"
)

func main() {
	var (
		model   = flag.String("model", "links", "failure model: links|switches|bundles|targeted")
		frac    = flag.Float64("frac", 0.05, "failure fraction for single-scenario mode")
		seed    = flag.Uint64("seed", 1, "scenario seed (sweep: base seed)")
		workers = flag.Int("workers", 0, "h-ASPL evaluation shard workers (0 = all cores)")
		jsonOut = flag.Bool("json", false, "machine-readable output (fault.GraphReport schema per graph)")

		sweep  = flag.Bool("sweep", false, "Monte-Carlo sweep over -fracs instead of one scenario")
		fracs  = flag.String("fracs", "", "comma-separated sweep fractions (default 0,0.01,0.02,0.05,0.10,0.15,0.20)")
		trials = flag.Int("trials", 20, "scenarios per fraction in -sweep")

		repair      = flag.Bool("repair", false, "repair the degraded graph (reattach, recable, warm-start anneal)")
		repairIters = flag.Int("repair-iters", 4000, "focused anneal iterations for -repair")
		evalMode    = flag.String("eval-mode", "exact", "repair anneal evaluation: exact|incremental|ladder (bit-identical results)")

		svgOut = flag.String("svg", "", "write an SVG of the degraded topology (failures highlighted)")
		out    = flag.String("o", "", "write the degraded (or repaired, with -repair) graph to this file")

		progress    = flag.Bool("progress", false, "print per-trial sweep progress to stderr (-sweep only)")
		traceOut    = flag.String("trace-out", "", "write per-trial sweep telemetry as JSONL events to this file (-sweep only)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address while sweeping (e.g. 127.0.0.1:0)")

		checkpoint      = flag.String("checkpoint", "", "write a crash-safe sweep trial ledger to this file (-sweep only)")
		checkpointEvery = flag.Int("checkpoint-every", 0, "flush the ledger every this many completed trials (0 = every trial)")
		resume          = flag.Bool("resume", false, "continue from the -checkpoint ledger, re-running only unfinished trials")

		storeDir = flag.String("store", "", "append one run record per completed run to the run store in this directory (query with orphist)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpfault", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpfault [flags] <graph.hsg | ->")
		os.Exit(2)
	}
	if _, err := cliutil.Workers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "orpfault: %v\n", err)
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "orpfault: -resume needs -checkpoint")
		os.Exit(2)
	}
	if *checkpoint != "" && !*sweep {
		fmt.Fprintln(os.Stderr, "orpfault: -checkpoint only applies to -sweep runs")
		os.Exit(2)
	}
	m, err := fault.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fatal(err)
	}
	if err := g.Validate(); err != nil {
		fatal(fmt.Errorf("invalid graph: %w", err))
	}

	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	if *sweep {
		runSweep(g, m, *fracs, *trials, *seed, *workers, *jsonOut,
			*progress, *traceOut, *metricsAddr,
			*checkpoint, *checkpointEvery, *resume, store)
		return
	}
	mode, err := opt.ParseEvalMode(*evalMode)
	if err != nil {
		fatal(err)
	}
	runScenario(g, m, *frac, *seed, *workers, *jsonOut, *repair, *repairIters, mode, *svgOut, *out, store)
}

// runSweep prints the Monte-Carlo degradation curve.
func runSweep(g *hsgraph.Graph, m fault.Model, fracSpec string, trials int, seed uint64, workers int, jsonOut bool,
	progress bool, traceOut, metricsAddr string,
	checkpoint string, checkpointEvery int, resume bool, store *runstore.Store) {
	fractions := fault.DefaultFractions()
	if fracSpec != "" {
		fractions = fractions[:0]
		for _, s := range strings.Split(fracSpec, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -fracs entry %q: %v", s, err))
			}
			fractions = append(fractions, f)
		}
	}
	so := fault.SweepOptions{
		Model:           m,
		Fractions:       fractions,
		Trials:          trials,
		Seed:            seed,
		Workers:         workers,
		CheckpointPath:  checkpoint,
		CheckpointEvery: checkpointEvery,
		Resume:          resume,
	}
	if checkpoint != "" {
		so.Interrupt = cliutil.Interrupt()
	}
	if metricsAddr != "" {
		reg := obs.NewRegistry()
		so.Metrics = fault.NewSweepMetrics(reg)
		srv, err := cliutil.StartMetrics(metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
	}
	openSink := cliutil.OpenSink
	if resume {
		// Continue the interrupted run's event log rather than truncating.
		openSink = cliutil.AppendSink
	}
	sink, err := openSink(traceOut)
	if err != nil {
		fatal(err)
	}
	defer sink.Close()
	// Stage-span trace of the sweep (pristine-eval, trials, aggregate)
	// into the same -trace-out file as the per-trial events; the in-memory
	// collector feeds the run-store record's wall-time decomposition.
	var spans *cliutil.SpanCollector
	if store != nil {
		spans = &cliutil.SpanCollector{}
	}
	root := cliutil.TeeTracer("orpfault", sink, spans).Root("sweep")
	so.Span = root
	if progress || sink != nil {
		so.OnTrial = func(p fault.TrialProgress) {
			if progress {
				fmt.Fprintf(os.Stderr, "trial %3d/%d  frac %.3g #%d  %.3fs  surviving h-ASPL %.6f\n",
					p.Done, p.Total, p.Fraction, p.Trial, p.Seconds, p.Result.SurvivingHASPL)
			}
			sink.Emit(obs.Event{T: p.Seconds, Kind: obs.KindSweepTrial, F: map[string]float64{
				"fraction":       p.Fraction,
				"trial":          float64(p.Trial),
				"done":           float64(p.Done),
				"total":          float64(p.Total),
				"seconds":        p.Seconds,
				"survivingHASPL": p.Result.SurvivingHASPL,
				"stretch":        p.Result.Stretch,
				"reachableFrac":  p.Result.ReachableFrac,
				"failedLinks":    float64(p.Result.FailedLinks),
				"failedSwitches": float64(p.Result.FailedSwitches),
			}})
		}
	}
	sweepStart := time.Now()
	points, err := fault.Sweep(g, so)
	if errors.Is(err, ckpt.ErrInterrupted) {
		root.SetS("outcome", "interrupted")
		root.End()
		sink.Close()
		fmt.Fprintf(os.Stderr, "interrupted: trial ledger saved to %s; rerun with -resume to continue\n", checkpoint)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	root.End()
	sink.Emit(obs.Event{T: time.Since(sweepStart).Seconds(), Kind: obs.KindSweepDone, F: map[string]float64{
		"trials":  float64(len(fractions) * so.Trials),
		"seconds": time.Since(sweepStart).Seconds(),
	}})
	pristine := g.EvaluateParallel(workers)
	report := sweepReport{
		Graph:  fault.NewGraphReport(g, pristine),
		Model:  m.String(),
		Trials: trials,
		Seed:   seed,
		Points: points,
	}
	// The record keys the sweep by the pristine graph (its cell and
	// metrics); the degradation curve itself rides in the result JSON.
	if err := store.AppendRun(func() runstore.Record {
		res, _ := json.Marshal(report)
		return runstore.Record{
			Unix:        time.Now().UnixNano(),
			Tool:        "orpfault",
			Kind:        "sweep",
			Build:       buildinfo.Get().String(),
			Fingerprint: g.Fingerprint().String(),
			Seed:        seed,
			N:           g.Order(),
			M:           g.Switches(),
			R:           g.Radix(),
			Workers:     workers,
			Metrics: runstore.MetricsOf(pristine.HASPL, pristine.Diameter,
				pristine.Connected, pristine.TotalPath, pristine.ReachablePairs),
			Phases:      runstore.PhasesFromDurations(obs.PhaseDurations(spans.Events())),
			WallSeconds: time.Since(sweepStart).Seconds(),
			CPUSeconds:  cliutil.CPUSeconds(),
			Result:      res,
		}
	}); err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("resilience sweep: n=%d m=%d r=%d, model=%s, %d trials/point, seed %d\n",
		g.Order(), g.Switches(), g.Radix(), m, trials, seed)
	fmt.Printf("pristine h-ASPL %.6f, diameter %d\n\n", pristine.HASPL, pristine.Diameter)
	fmt.Printf("%-6s  %-22s  %-8s  %-9s  %-9s  %s\n",
		"frac", "surviving h-ASPL (95% CI)", "stretch", "reach", "conn", "disc hosts (mean)")
	for _, p := range points {
		fmt.Printf("%-6.3g  %8.5f [%.5f,%.5f]  %-8.4f  %-9.5f  %3d/%-3d   %.2f\n",
			p.Fraction, p.SurvivingHASPL.Mean, p.HASPLLo, p.HASPLHi,
			p.Stretch.Mean, p.ReachableFrac.Mean, p.ConnectedTrials, p.Trials,
			p.DisconnectedHosts.Mean)
	}
}

// scenarioReport is the single-scenario result schema: what -json prints
// and what a -store record carries as its result bytes.
type scenarioReport struct {
	Model             string            `json:"model"`
	Fraction          float64           `json:"fraction"`
	Seed              uint64            `json:"seed"`
	Pristine          fault.GraphReport `json:"pristine"`
	Degraded          fault.GraphReport `json:"degraded"`
	FailedLinks       int               `json:"failedLinks"`
	FailedSwitches    int               `json:"failedSwitches"`
	DetachedHosts     int               `json:"detachedHosts"`
	DisconnectedHosts int               `json:"disconnectedHosts"`
	Stretch           float64           `json:"stretch"`

	Repaired *fault.GraphReport `json:"repaired,omitempty"`
}

// sweepReport is the sweep result schema (-json and -store).
type sweepReport struct {
	Graph  fault.GraphReport  `json:"graph"`
	Model  string             `json:"model"`
	Trials int                `json:"trials"`
	Seed   uint64             `json:"seed"`
	Points []fault.SweepPoint `json:"points"`
}

// runScenario samples one failure scenario, measures it, and optionally
// repairs the degraded graph and/or writes renderings.
func runScenario(g *hsgraph.Graph, m fault.Model, frac float64, seed uint64, workers int,
	jsonOut, doRepair bool, repairIters int, evalMode opt.EvalMode, svgOut, out string,
	store *runstore.Store) {
	start, cpu0 := time.Now(), cliutil.CPUSeconds()
	sc, err := fault.Sample(g, m, frac, seed)
	if err != nil {
		fatal(err)
	}
	d, err := fault.Apply(g, sc)
	if err != nil {
		fatal(err)
	}
	ev := hsgraph.NewEvaluator(workers)
	defer ev.Close()
	pristine := ev.Evaluate(g)
	res := fault.Measure(pristine, d, ev)

	var repaired *hsgraph.Graph
	var repRes opt.RepairResult
	if doRepair {
		repaired, repRes, err = opt.Repair(d.Graph, sc.Switches, opt.RepairOptions{
			Iterations:  repairIters,
			Seed:        seed,
			Workers:     workers,
			MaxNewLinks: d.FailedLinks,
			Eval:        evalMode,
		})
		if err != nil {
			fatal(err)
		}
	}

	rep := scenarioReport{
		Model:             m.String(),
		Fraction:          frac,
		Seed:              seed,
		Pristine:          fault.NewGraphReport(g, pristine),
		Degraded:          fault.NewGraphReport(d.Graph, res.Degraded),
		FailedLinks:       res.FailedLinks,
		FailedSwitches:    res.FailedSwitches,
		DetachedHosts:     res.DetachedHosts,
		DisconnectedHosts: res.DisconnectedHosts,
		Stretch:           res.Stretch,
	}
	if doRepair {
		rr := fault.NewGraphReport(repaired, repRes.After)
		rep.Repaired = &rr
	}
	// Like the sweep record: keyed by the pristine graph, with the full
	// degradation report in the result bytes.
	if err := store.AppendRun(func() runstore.Record {
		resJSON, _ := json.Marshal(rep)
		return runstore.Record{
			Unix:        time.Now().UnixNano(),
			Tool:        "orpfault",
			Kind:        "eval",
			Build:       buildinfo.Get().String(),
			Fingerprint: g.Fingerprint().String(),
			Seed:        seed,
			N:           g.Order(),
			M:           g.Switches(),
			R:           g.Radix(),
			Workers:     workers,
			Metrics: runstore.MetricsOf(pristine.HASPL, pristine.Diameter,
				pristine.Connected, pristine.TotalPath, pristine.ReachablePairs),
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  cliutil.CPUSeconds() - cpu0,
			Result:      resJSON,
		}
	}); err != nil {
		fatal(err)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("failure scenario  model=%s frac=%g seed=%d\n", m, frac, seed)
		fmt.Printf("failed            %d links, %d switches (%d hosts detached)\n",
			res.FailedLinks, res.FailedSwitches, res.DetachedHosts)
		fmt.Printf("pristine h-ASPL   %.6f (diameter %d)\n", pristine.HASPL, pristine.Diameter)
		if res.Degraded.Connected {
			fmt.Printf("degraded h-ASPL   %.6f (diameter %d)\n", res.Degraded.HASPL, res.Degraded.Diameter)
		} else {
			fmt.Printf("degraded          DISCONNECTED: %d hosts unreachable, surviving h-ASPL %.6f (%.4f of pairs reachable)\n",
				res.DisconnectedHosts, res.SurvivingHASPL, res.ReachableFrac)
		}
		fmt.Printf("stretch           %.4f\n", res.Stretch)
		if doRepair {
			printRepair(res, repRes)
		}
	}

	if svgOut != "" {
		writeSVG(svgOut, d)
	}
	if out != "" {
		final := d.Graph
		if doRepair {
			final = repaired
		}
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := hsgraph.Write(f, final); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// printRepair reports the repair outcome, including how much of the
// h-ASPL degradation it recovered.
func printRepair(res fault.Result, rr opt.RepairResult) {
	fmt.Printf("repair            %d hosts reattached, %d links added, %d/%d anneal moves kept\n",
		rr.HostsReattached, rr.LinksAdded, rr.Accepted, rr.Proposed)
	if !rr.After.Connected {
		fmt.Printf("repaired          still disconnected\n")
		return
	}
	fmt.Printf("repaired h-ASPL   %.6f (diameter %d)\n", rr.After.HASPL, rr.After.Diameter)
	if res.Degraded.Connected && res.Pristine.HASPL > 0 {
		degradation := res.Degraded.HASPL - res.Pristine.HASPL
		recovered := res.Degraded.HASPL - rr.After.HASPL
		if degradation > 0 {
			fmt.Printf("recovered         %.1f%% of the h-ASPL degradation\n", 100*recovered/degradation)
		}
	}
}

// writeSVG renders the degraded topology with the failures highlighted.
func writeSVG(path string, d *fault.Degraded) {
	links := make([][2]int, len(d.Scenario.Links))
	for i, l := range d.Scenario.Links {
		links[i] = [2]int{int(l[0]), int(l[1])}
	}
	switches := make([]int, len(d.Scenario.Switches))
	for i, s := range d.Scenario.Switches {
		switches[i] = int(s)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := vis.WriteSVG(f, d.Graph, vis.Options{
		ShowLabels:     true,
		FailedLinks:    links,
		FailedSwitches: switches,
	}); err != nil {
		fatal(err)
	}
	f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orpfault: %v\n", err)
	os.Exit(1)
}
