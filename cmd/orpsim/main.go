// Command orpsim runs a NAS Parallel Benchmark communication skeleton on
// a host-switch graph with the fluid network simulator and reports the
// simulated runtime and Mop/s.
//
// Usage:
//
//	orptopo -kind fattree -k 16 -q | orpsim -bench FT -class A -ranks 64 -
//	orpsim -bench CG -class B -ranks 256 graph.hsg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/simnet"
)

func main() {
	var (
		bench    = flag.String("bench", "EP", "benchmark: EP IS FT CG MG LU BT SP")
		class    = flag.String("class", "S", "NPB class: S, A or B")
		ranks    = flag.Int("ranks", 16, "MPI ranks (power of two; square for BT/SP)")
		iters    = flag.Int("iters", 0, "override iteration count (0 = class default)")
		flops    = flag.Float64("gflops", 100, "host speed in GFlops (paper: 100)")
		workers  = flag.Int("workers", 0, "h-ASPL evaluation shard workers (0 = all cores)")
		linkdown = flag.String("linkdown", "", "mid-run link failures, e.g. '0.001:3-7,0.002:1-2' (time:switchA-switchB)")

		progress    = flag.Bool("progress", false, "print live simulation progress (flows, simulated time) to stderr")
		traceOut    = flag.String("trace-out", "", "write a chrome://tracing trace of flows and MPI ranks to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address while simulating (e.g. 127.0.0.1:0)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpsim", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpsim [flags] <graph.hsg | ->")
		os.Exit(2)
	}
	if _, err := cliutil.Workers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	if len(*class) != 1 {
		fmt.Fprintf(os.Stderr, "orpsim: bad class %q\n", *class)
		os.Exit(2)
	}
	spec, err := npb.New(*bench, npb.Class((*class)[0]), *ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	if *iters > 0 {
		spec.Iterations = *iters
	}
	cfg := mpi.Config{FlopsPerHost: *flops * 1e9}
	if *linkdown != "" {
		downs, err := parseLinkDowns(*linkdown)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
			os.Exit(2)
		}
		cfg.LinkDowns = downs
	}
	if *metricsAddr != "" || *progress {
		// The live gauges back both the scrape endpoint and -progress.
		reg := obs.NewRegistry()
		cfg.Metrics = simnet.NewSimMetrics(reg)
		if *metricsAddr != "" {
			srv, err := cliutil.StartMetrics(*metricsAddr, reg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
				os.Exit(1)
			}
			defer srv.Close()
		}
	}
	var ftr *simnet.FlowTracer
	var mtr *mpi.Tracer
	if *traceOut != "" {
		ftr = &simnet.FlowTracer{}
		mtr = &mpi.Tracer{}
		cfg.FlowTracer = ftr
		cfg.Tracer = mtr
	}
	if *progress {
		// The simulator is single-threaded in simulated time; a wall-clock
		// ticker reads the (atomic) live gauges from outside.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					m := cfg.Metrics
					fmt.Fprintf(os.Stderr, "t=%.6fs  flows %d done / %d failed / %.0f active  %.3e bytes\n",
						m.SimTime.Value(), m.FlowsCompleted.Value(), m.FlowsFailed.Value(),
						m.ActiveFlows.Value(), m.BytesMoved.Value())
				}
			}
		}()
	}
	stats, err := mpi.Run(nw, *ranks, cfg, spec.Program())
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		// One trace file, two processes: fabric flows (pid 0) + MPI ranks
		// (pid 1), loadable in chrome://tracing or Perfetto.
		evs := append(ftr.ChromeEvents(nw), mtr.ChromeEvents(cfg.FlopsPerHost)...)
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, evs); err != nil {
			fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	met := g.EvaluateParallel(*workers)
	fmt.Printf("benchmark        %s class %s, %d ranks, %d iterations\n", *bench, *class, *ranks, spec.Iterations)
	fmt.Printf("network          n=%d m=%d r=%d\n", g.Order(), g.Switches(), g.Radix())
	fmt.Printf("h-ASPL           %.6f (diameter %d)\n", met.HASPL, met.Diameter)
	fmt.Printf("simulated time   %.6f s\n", stats.Elapsed)
	fmt.Printf("Mop/s            %.1f\n", spec.NominalOps()/stats.Elapsed/1e6)
	fmt.Printf("flows            %d\n", stats.FlowsCompleted)
	if stats.FlowsFailed > 0 {
		fmt.Printf("flows failed     %d (link failures cut their routes)\n", stats.FlowsFailed)
	}
	fmt.Printf("bytes moved      %.3e\n", stats.BytesMoved)
}

// parseLinkDowns parses "time:a-b,time:a-b" link-failure schedules.
func parseLinkDowns(spec string) ([]mpi.LinkDown, error) {
	var out []mpi.LinkDown
	for _, part := range strings.Split(spec, ",") {
		at, pair, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad -linkdown entry %q (want time:a-b)", part)
		}
		sa, sb, ok := strings.Cut(pair, "-")
		if !ok {
			return nil, fmt.Errorf("bad -linkdown entry %q (want time:a-b)", part)
		}
		t, err := strconv.ParseFloat(at, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -linkdown time %q: %v", at, err)
		}
		a, err := strconv.Atoi(sa)
		if err != nil {
			return nil, fmt.Errorf("bad -linkdown switch %q: %v", sa, err)
		}
		b, err := strconv.Atoi(sb)
		if err != nil {
			return nil, fmt.Errorf("bad -linkdown switch %q: %v", sb, err)
		}
		out = append(out, mpi.LinkDown{At: t, A: a, B: b})
	}
	return out, nil
}
