// Command orpsim runs a NAS Parallel Benchmark communication skeleton on
// a host-switch graph with the fluid network simulator and reports the
// simulated runtime and Mop/s.
//
// Usage:
//
//	orptopo -kind fattree -k 16 -q | orpsim -bench FT -class A -ranks 64 -
//	orpsim -bench CG -class B -ranks 256 graph.hsg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/simnet"
)

func main() {
	var (
		bench = flag.String("bench", "EP", "benchmark: EP IS FT CG MG LU BT SP")
		class = flag.String("class", "S", "NPB class: S, A or B")
		ranks = flag.Int("ranks", 16, "MPI ranks (power of two; square for BT/SP)")
		iters = flag.Int("iters", 0, "override iteration count (0 = class default)")
		flops = flag.Float64("gflops", 100, "host speed in GFlops (paper: 100)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpsim [flags] <graph.hsg | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	if len(*class) != 1 {
		fmt.Fprintf(os.Stderr, "orpsim: bad class %q\n", *class)
		os.Exit(2)
	}
	spec, err := npb.New(*bench, npb.Class((*class)[0]), *ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	if *iters > 0 {
		spec.Iterations = *iters
	}
	stats, err := mpi.Run(nw, *ranks, mpi.Config{FlopsPerHost: *flops * 1e9}, spec.Program())
	if err != nil {
		fmt.Fprintf(os.Stderr, "orpsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark        %s class %s, %d ranks, %d iterations\n", *bench, *class, *ranks, spec.Iterations)
	fmt.Printf("network          n=%d m=%d r=%d\n", g.Order(), g.Switches(), g.Radix())
	fmt.Printf("simulated time   %.6f s\n", stats.Elapsed)
	fmt.Printf("Mop/s            %.1f\n", spec.NominalOps()/stats.Elapsed/1e6)
	fmt.Printf("flows            %d\n", stats.FlowsCompleted)
	fmt.Printf("bytes moved      %.3e\n", stats.BytesMoved)
}
