// Command orptopo generates conventional interconnection topologies as
// host-switch graphs: torus, dragonfly, fat-tree, hypercube and full mesh.
//
// Usage:
//
//	orptopo -kind torus -dims 5 -base 3 -r 15 -n 1024
//	orptopo -kind dragonfly -a 8 -n 1024
//	orptopo -kind fattree -k 16 -n 1024
//	orptopo -kind hypercube -dims 4 -r 8 -n 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/topo"
)

func main() {
	var (
		kind  = flag.String("kind", "torus", "torus | dragonfly | fattree | hypercube | fullmesh")
		n     = flag.Int("n", 0, "hosts to attach (0 = full capacity)")
		r     = flag.Int("r", 15, "radix (torus/hypercube/fullmesh)")
		dims  = flag.Int("dims", 5, "dimensions (torus/hypercube)")
		base  = flag.Int("base", 3, "base (torus)")
		a     = flag.Int("a", 8, "group size (dragonfly)")
		k     = flag.Int("k", 16, "arity (fattree)")
		m     = flag.Int("m", 8, "switches (fullmesh)")
		rr    = flag.Bool("roundrobin", false, "attach hosts round-robin instead of sequentially")
		out   = flag.String("o", "", "output file (default stdout)")
		quiet = flag.Bool("q", false, "suppress the stats header on stderr")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orptopo", version)

	var spec *topo.Spec
	var err error
	switch *kind {
	case "torus":
		spec, err = topo.Torus(*dims, *base, *r)
	case "dragonfly":
		spec, err = topo.Dragonfly(*a)
	case "fattree":
		spec, err = topo.FatTree(*k)
	case "hypercube":
		spec, err = topo.Hypercube(*dims, *r)
	case "fullmesh":
		spec, err = topo.FullMesh(*m, *r)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(2)
	}
	hosts := *n
	if hosts == 0 {
		hosts = spec.MaxHosts
	}
	var g *hsgraph.Graph
	if *rr {
		g, err = spec.BuildRoundRobin(hosts)
	} else {
		g, err = spec.Build(hosts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		met := g.Evaluate()
		fmt.Fprintf(os.Stderr, "%s: n=%d m=%d r=%d links=%d h-ASPL=%.4f diameter=%d\n",
			spec.Name, g.Order(), g.Switches(), g.Radix(), g.NumEdges(), met.HASPL, met.Diameter)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hsgraph.Write(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(1)
	}
}
