// Command orptopo generates conventional interconnection topologies as
// host-switch graphs: torus, dragonfly, fat-tree, hypercube and full mesh.
//
// Usage:
//
//	orptopo -kind torus -dims 5 -base 3 -r 15 -n 1024
//	orptopo -kind dragonfly -a 8 -n 1024
//	orptopo -kind fattree -k 16 -n 1024
//	orptopo -kind hypercube -dims 4 -r 8 -n 32
//	orptopo -kind symmetric -n 1024 -m 64 -r 24 -symmetry 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/topo"
)

func main() {
	var (
		kind  = flag.String("kind", "torus", "torus | dragonfly | fattree | hypercube | fullmesh | symmetric")
		n     = flag.Int("n", 0, "hosts to attach (0 = full capacity; required for symmetric)")
		r     = flag.Int("r", 15, "radix (torus/hypercube/fullmesh/symmetric)")
		dims  = flag.Int("dims", 5, "dimensions (torus/hypercube)")
		base  = flag.Int("base", 3, "base (torus)")
		a     = flag.Int("a", 8, "group size (dragonfly)")
		k     = flag.Int("k", 16, "arity (fattree)")
		m     = flag.Int("m", 8, "switches (fullmesh/symmetric)")
		sym   = flag.Int("symmetry", 2, "cyclic group order (symmetric; must divide m and n mod m)")
		seed  = flag.Uint64("seed", 1, "random seed (symmetric)")
		rr    = flag.Bool("roundrobin", false, "attach hosts round-robin instead of sequentially")
		out   = flag.String("o", "", "output file (default stdout)")
		quiet = flag.Bool("q", false, "suppress the stats header on stderr")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orptopo", version)

	if *kind == "symmetric" {
		// Random generator, not a structured Spec: build the graph directly.
		if *n == 0 {
			fmt.Fprintln(os.Stderr, "orptopo: -kind symmetric needs -n")
			os.Exit(2)
		}
		g, err := topo.RandomSymmetric(*n, *m, *r, *sym, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
			os.Exit(1)
		}
		emit(g, fmt.Sprintf("symmetric(g=%d)", *sym), *quiet, *out)
		return
	}

	var spec *topo.Spec
	var err error
	switch *kind {
	case "torus":
		spec, err = topo.Torus(*dims, *base, *r)
	case "dragonfly":
		spec, err = topo.Dragonfly(*a)
	case "fattree":
		spec, err = topo.FatTree(*k)
	case "hypercube":
		spec, err = topo.Hypercube(*dims, *r)
	case "fullmesh":
		spec, err = topo.FullMesh(*m, *r)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(2)
	}
	hosts := *n
	if hosts == 0 {
		hosts = spec.MaxHosts
	}
	var g *hsgraph.Graph
	if *rr {
		g, err = spec.BuildRoundRobin(hosts)
	} else {
		g, err = spec.Build(hosts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(1)
	}
	emit(g, spec.Name, *quiet, *out)
}

// emit prints the stats header (unless quiet) and writes the graph to out
// (stdout when empty).
func emit(g *hsgraph.Graph, name string, quiet bool, out string) {
	if !quiet {
		met := g.Evaluate()
		fmt.Fprintf(os.Stderr, "%s: n=%d m=%d r=%d links=%d h-ASPL=%.4f diameter=%d\n",
			name, g.Order(), g.Switches(), g.Radix(), g.NumEdges(), met.HASPL, met.Diameter)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hsgraph.Write(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "orptopo: %v\n", err)
		os.Exit(1)
	}
}
