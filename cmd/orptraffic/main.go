// Command orptraffic stresses a host-switch graph with synthetic traffic
// patterns and prints latency/throughput statistics, optionally with
// per-link hotspot analysis and the packet-level (store-and-forward)
// model instead of the fluid one.
//
// Usage:
//
//	orpsolve -n 64 -r 8 | orptraffic -
//	orptraffic -pattern shift -bytes 1048576 -packet graph.hsg
//	orptraffic -hotlinks graph.hsg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/simnet"
	"repro/internal/traffic"
)

func main() {
	var (
		pattern  = flag.String("pattern", "all", "uniform|transpose|bitreverse|bitcomplement|shift|neighbor|hotspot10|all")
		bytes    = flag.Float64("bytes", 32768, "message size")
		rounds   = flag.Int("rounds", 4, "messages per source")
		packet   = flag.Bool("packet", false, "store-and-forward packet model instead of fluid flows")
		mtu      = flag.Float64("mtu", 0, "packet size for -packet (0 = default)")
		seed     = flag.Uint64("seed", 1, "seed for randomized patterns")
		hotlinks = flag.Bool("hotlinks", false, "print the 10 most loaded links under the chosen pattern")
		workers  = flag.Int("workers", 0, "h-ASPL evaluation shard workers (0 = all cores)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orptraffic", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orptraffic [flags] <graph.hsg | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		fatal(err)
	}
	met := g.EvaluateParallel(*workers)
	fmt.Printf("graph: n=%d m=%d r=%d h-ASPL=%.6f diameter=%d\n",
		g.Order(), g.Switches(), g.Radix(), met.HASPL, met.Diameter)
	opts := traffic.RunOptions{MessageBytes: *bytes, Rounds: *rounds, Packet: *packet, MTU: *mtu}

	var patterns []traffic.Pattern
	if *pattern == "all" {
		patterns = traffic.All(*seed)
	} else {
		for _, p := range traffic.All(*seed) {
			if p.Name == *pattern {
				patterns = []traffic.Pattern{p}
			}
		}
		if len(patterns) == 0 {
			fmt.Fprintf(os.Stderr, "orptraffic: unknown pattern %q\n", *pattern)
			os.Exit(2)
		}
	}
	results, err := traffic.Sweep(nw, patterns, opts)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		fmt.Println(res)
	}

	if *hotlinks {
		p := patterns[0]
		sim := simnet.NewSim(nw)
		sim.TrackLinkStats = true
		n := nw.Hosts()
		for src := 0; src < n; src++ {
			src := src
			sim.Spawn(src, func(proc *simnet.Proc) {
				dst := p.Dest(src, n)
				if dst == src {
					return
				}
				sg, err := sim.StartFlow(src, dst, *bytes)
				if err != nil {
					return
				}
				proc.Wait(sg)
			})
		}
		if err := sim.Run(); err != nil {
			fatal(err)
		}
		loads := sim.LinkLoads()
		sort.Slice(loads, func(i, j int) bool { return loads[i].Bytes > loads[j].Bytes })
		fmt.Printf("\nhottest links under %q:\n", p.Name)
		for i := 0; i < 10 && i < len(loads); i++ {
			l := loads[i]
			fmt.Printf("  %s -> %s  %.1f KB\n", nodeName(nw, l.From), nodeName(nw, l.To), l.Bytes/1e3)
		}
	}
}

func nodeName(nw *simnet.Network, id int) string {
	if id < nw.Hosts() {
		return fmt.Sprintf("h%d", id)
	}
	return fmt.Sprintf("s%d", id-nw.Hosts())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orptraffic: %v\n", err)
	os.Exit(1)
}
