// Command orptop is a live terminal dashboard for a running orpd: it
// polls /metrics (Prometheus text exposition) and the jobs API and
// renders service health — queue depth, worker occupancy, cache hit
// rate, per-endpoint request rates and latency percentiles, queue-wait
// percentiles by priority, and the evaluation-ladder escalation
// counters — plus the most recent jobs. With -job it instead renders
// one job's causal span waterfall from its event stream.
//
// Usage:
//
//	orptop -addr http://127.0.0.1:8080              # refresh every 2s
//	orptop -addr http://127.0.0.1:8080 -once        # one snapshot (CI, scripts)
//	orptop -addr http://127.0.0.1:8080 -job j00000003
//
// It speaks only the public HTTP API, so it works against any orpd it
// can reach; nothing is shared with the server process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "orpd base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
		jobID    = flag.String("job", "", "render this job's span waterfall instead of the dashboard")
		rows     = flag.Int("rows", 12, "job rows to show")
		state    = flag.String("state", "", "only list jobs in this state (queued|running|done|failed)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orptop", version)
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: orptop [-addr URL] [-interval 2s] [-once] [-job ID] [-state S]")
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	if *jobID != "" {
		if err := renderJob(os.Stdout, client, base, *jobID); err != nil {
			fatal(err)
		}
		return
	}

	for {
		var buf strings.Builder
		err := renderDashboard(&buf, client, base, *rows, *state)
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear + home between refreshes
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "orptop: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			os.Stdout.WriteString(buf.String())
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func scrape(client *http.Client, base string) ([]obs.PromSample, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParsePrometheus(resp.Body)
}

// renderDashboard writes one full dashboard frame.
func renderDashboard(w io.Writer, client *http.Client, base string, rows int, state string) error {
	samples, err := scrape(client, base)
	if err != nil {
		return err
	}
	q := "/v1/jobs"
	if state != "" {
		q += "?state=" + state
	}
	var jobs []serve.JobStatus
	if err := getJSON(client, base+q, &jobs); err != nil {
		return err
	}

	val := func(name string, labels map[string]string) float64 {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			match := len(s.Labels) == len(labels)
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
				}
			}
			if match {
				return s.Value
			}
		}
		return 0
	}
	flat := func(name string) float64 { return val(name, nil) }

	fmt.Fprintf(w, "orptop — %s — %s\n\n", base, time.Now().Format("15:04:05"))

	submitted := flat("orpd_jobs_submitted_total")
	hits := flat("orpd_cache_hits_total")
	misses := flat("orpd_cache_misses_total")
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses)
	}
	fmt.Fprintf(w, "jobs      %5.0f submitted   %5.0f done   %4.0f failed   %4.0f evicted\n",
		submitted, flat("orpd_jobs_done_total"), flat("orpd_jobs_failed_total"),
		flat("orpd_jobs_evicted_total"))
	fmt.Fprintf(w, "workers   %5.0f busy        %5.0f queued\n",
		flat("orpd_workers_busy"), flat("orpd_queue_depth"))
	fmt.Fprintf(w, "cache     %5.1f%% hit rate   %5.0f preemptions\n",
		100*hitRate, flat("orpd_preemptions_total"))

	if ladderTotal := flat("orpd_ladder_bound_decided_total") +
		flat("orpd_ladder_escalated_total") + flat("orpd_ladder_unbounded_total"); ladderTotal > 0 {
		fmt.Fprintf(w, "ladder    %5.1f%% escalated  (%.0f bound-decided, %.0f exact, %.0f unbounded); inc: %.0f syncs, %.0f rebuilds, %.0f peek reuses\n",
			100*(flat("orpd_ladder_escalated_total")+flat("orpd_ladder_unbounded_total"))/ladderTotal,
			flat("orpd_ladder_bound_decided_total"), flat("orpd_ladder_escalated_total"),
			flat("orpd_ladder_unbounded_total"), flat("orpd_inc_syncs_total"),
			flat("orpd_inc_full_rebuilds_total"), flat("orpd_inc_stored_peek_reuses_total"))
	}

	// RED per endpoint: request counts by class + latency percentiles
	// rebuilt from the scraped histogram buckets.
	fmt.Fprintf(w, "\n%-8s  %7s %5s %5s  %10s %10s %10s\n", "endpoint", "2xx", "4xx", "5xx", "p50", "p95", "p99")
	for _, ep := range []string{"submit", "list", "get", "events"} {
		line := fmt.Sprintf("%-8s  %7.0f %5.0f %5.0f",
			ep,
			val("orpd_http_requests_total", map[string]string{"endpoint": ep, "code": "2xx"}),
			val("orpd_http_requests_total", map[string]string{"endpoint": ep, "code": "4xx"}),
			val("orpd_http_requests_total", map[string]string{"endpoint": ep, "code": "5xx"}))
		if snap, ok := obs.PromHistogram(samples, "orpd_http_request_seconds",
			map[string]string{"endpoint": ep}); ok && snap.Count > 0 {
			line += fmt.Sprintf("  %10s %10s %10s",
				fmtSecs(snap.Quantile(0.50)), fmtSecs(snap.Quantile(0.95)), fmtSecs(snap.Quantile(0.99)))
		}
		fmt.Fprintln(w, line)
	}

	// Queue wait percentiles per priority (labels are client-chosen, so
	// discover them from the scrape).
	prios := map[string]bool{}
	for _, s := range samples {
		if s.Name == "orpd_queue_wait_seconds_count" {
			prios[s.Label("priority")] = true
		}
	}
	if len(prios) > 0 {
		var keys []string
		for p := range prios {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, _ := strconv.Atoi(keys[i])
			b, _ := strconv.Atoi(keys[j])
			return a < b
		})
		fmt.Fprintf(w, "\n%-12s  %7s  %10s %10s %10s\n", "queue wait", "n", "p50", "p95", "p99")
		for _, p := range keys {
			snap, ok := obs.PromHistogram(samples, "orpd_queue_wait_seconds", map[string]string{"priority": p})
			if !ok {
				continue
			}
			fmt.Fprintf(w, "priority %-3s  %7d  %10s %10s %10s\n", p, snap.Count,
				fmtSecs(snap.Quantile(0.50)), fmtSecs(snap.Quantile(0.95)), fmtSecs(snap.Quantile(0.99)))
		}
	}

	// Most recent jobs last, like top's process table.
	fmt.Fprintf(w, "\n%-11s %-7s %-8s %4s %3s %6s %9s\n", "job", "type", "state", "prio", "wrk", "preempt", "runtime")
	start := 0
	if len(jobs) > rows {
		start = len(jobs) - rows
	}
	for _, j := range jobs[start:] {
		fmt.Fprintf(w, "%-11s %-7s %-8s %4d %3d %6d %9s\n",
			j.ID, j.Type, j.State, j.Priority, j.Workers, j.Preemptions, runtimeOf(j))
	}
	if len(jobs) == 0 {
		fmt.Fprintln(w, "(no jobs)")
	}
	return nil
}

func runtimeOf(j serve.JobStatus) string {
	if j.Started == nil {
		return "-"
	}
	end := time.Now()
	if j.Finished != nil {
		end = *j.Finished
	}
	d := end.Sub(*j.Started)
	if d < 0 {
		d = 0
	}
	return d.Round(time.Millisecond).String()
}

func fmtSecs(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// renderJob prints one job's status and its span waterfall, rebuilt
// from the events stream (replay only — no follow).
func renderJob(w io.Writer, client *http.Client, base, id string) error {
	var st serve.JobStatus
	if err := getJSON(client, base+"/v1/jobs/"+id, &st); err != nil {
		return err
	}
	fmt.Fprintf(w, "job %s  type=%s state=%s priority=%d preemptions=%d\n",
		st.ID, st.Type, st.State, st.Priority, st.Preemptions)
	if st.Error != "" {
		fmt.Fprintf(w, "error: %s\n", st.Error)
	}

	resp, err := client.Get(base + "/v1/jobs/" + id + "/events?follow=0")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET events: %s", resp.Status)
	}
	events, err := obs.ReadJSONL(resp.Body)
	if err != nil {
		return err
	}
	var dropped float64
	for _, e := range events {
		if e.Kind == "stream.gap" {
			dropped += e.F["dropped"]
		}
	}
	if dropped > 0 {
		fmt.Fprintf(w, "note: %0.f events trimmed by the server's ring buffer; the waterfall may be partial\n", dropped)
	}
	roots := obs.BuildSpanTrees(events)
	if len(roots) == 0 {
		fmt.Fprintln(w, "(no spans yet — the job may still be queued)")
		return nil
	}
	return obs.WriteSpanTree(w, roots, 48)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orptop: %v\n", err)
	os.Exit(1)
}
