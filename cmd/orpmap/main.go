// Command orpmap optimises the placement of application ranks onto the
// hosts of a host-switch graph against a traffic matrix, writing the
// remapped graph. The matrix format is "traffic <n>" followed by
// "src dst bytes" triples (produced by mapping.WriteMatrix or by hand).
//
// Usage:
//
//	orpmap -matrix app.traffic -iters 20000 graph.hsg > remapped.hsg
//	orpmap -matrix app.traffic -dry graph.hsg        # report cost only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/hsgraph"
	"repro/internal/mapping"
)

func main() {
	var (
		matrixFile = flag.String("matrix", "", "traffic matrix file (required)")
		iters      = flag.Int("iters", 20000, "local search iterations")
		seed       = flag.Uint64("seed", 1, "random seed")
		dry        = flag.Bool("dry", false, "only report costs; do not write the remapped graph")
		workers    = flag.Int("workers", 0, "h-ASPL evaluation shard workers (0 = all cores)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpmap", version)
	if *matrixFile == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpmap -matrix <file> [flags] <graph.hsg | ->")
		os.Exit(2)
	}
	mf, err := os.Open(*matrixFile)
	if err != nil {
		fatal(err)
	}
	m, err := mapping.ReadMatrix(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := hsgraph.Read(in)
	if err != nil {
		fatal(err)
	}
	identity := make([]int, m.N)
	for i := range identity {
		identity[i] = i
	}
	before, err := mapping.Cost(m, g, identity)
	if err != nil {
		fatal(err)
	}
	perm, after, err := mapping.Optimize(m, g, *iters, *seed)
	if err != nil {
		fatal(err)
	}
	met := g.EvaluateParallel(*workers)
	fmt.Fprintf(os.Stderr, "graph h-ASPL: %.6f (diameter %d)\n", met.HASPL, met.Diameter)
	fmt.Fprintf(os.Stderr, "traffic-weighted hops: %.4g -> %.4g (%.1f%% saved)\n",
		before, after, 100*(1-after/before))
	if *dry {
		return
	}
	if m.N != g.Order() {
		fmt.Fprintf(os.Stderr, "orpmap: cannot write remapped graph: matrix covers %d of %d hosts (use -dry)\n", m.N, g.Order())
		os.Exit(1)
	}
	out, err := mapping.Apply(g, perm)
	if err != nil {
		fatal(err)
	}
	if err := hsgraph.Write(os.Stdout, out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "orpmap: %v\n", err)
	os.Exit(1)
}
