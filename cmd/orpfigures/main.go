// Command orpfigures regenerates the data series behind every figure of
// the paper's evaluation (Figs. 5-11) and prints them as text tables.
//
// Usage:
//
//	orpfigures -fig 5 [-n 1024 -r 24]     # h-ASPL vs m
//	orpfigures -fig 6                     # host distribution at m_opt
//	orpfigures -fig 7                     # Moore vs continuous Moore
//	orpfigures -fig 8                     # unused switches
//	orpfigures -fig 9                     # torus comparison (a-d)
//	orpfigures -fig 10                    # dragonfly comparison (a-d)
//	orpfigures -fig 11                    # fat-tree comparison (a-d)
//	orpfigures -fig resilience            # degradation under random failures
//	orpfigures -fig convergence           # SA convergence by move set
//	orpfigures -fig perf                  # orpbench BENCH_*.json trajectory
//	orpfigures -fig all
//
// By default the experiments run at a reduced scale so a full regeneration
// takes minutes; pass -paper for the paper's parameters (1024 MPI ranks,
// NPB classes A/B, 100k SA iterations) and expect a long run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/figures"
	"repro/internal/hsgraph"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, 10, 11, ablation, resilience, convergence, perf or all")
		benchGlob = flag.String("bench-glob", "BENCH_*.json", "report files for -fig perf")
		n         = flag.Int("n", 0, "order override for figs 5-8")
		r         = flag.Int("r", 0, "radix override for figs 5-8")
		paper     = flag.Bool("paper", false, "paper-scale parameters (slow)")
		ranks     = flag.Int("ranks", 0, "MPI ranks for figs 9a/10a/11a (0 = default)")
		iters     = flag.Int("iters", 0, "SA iterations (0 = default)")
		seed      = flag.Uint64("seed", 1, "random seed")
		benches   = flag.String("benchmarks", "", "comma-separated NPB subset for the performance panels")
		asJSON    = flag.Bool("json", false, "emit JSON instead of text tables (figs 5 and 7)")
		workers   = flag.Int("workers", 0, "h-ASPL evaluation shard workers per SA run (0 = serial; figures already parallelise across runs)")
	)
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.ExitIfVersion("orpfigures", version)

	o := figures.Options{Seed: *seed}
	if *paper {
		o = figures.PaperScale()
		o.Seed = *seed
	}
	if *ranks > 0 {
		o.Ranks = *ranks
	}
	if *iters > 0 {
		o.SAIterations = *iters
	}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *workers > 0 {
		o.Workers = *workers
	}

	run := func(id string, f func() error) {
		if *fig != "all" && *fig != id {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "orpfigures: fig %s: %v\n", id, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		g, err := figures.Fig1()
		if err != nil {
			return err
		}
		met := g.Evaluate()
		fmt.Printf("# fig1: example host-switch graph (n=16, m=4, r=6)\n")
		fmt.Printf("h-ASPL %.4f, diameter %d, l(h0,h15) = %d\n\n", met.HASPL, met.Diameter, g.HostDistance(0, 15))
		return hsgraph.WriteDOT(os.Stdout, g, true)
	})
	run("5", func() error {
		ns := []int{128, 256, 512, 1024}
		rs := []int{12, 24}
		if *n > 0 {
			ns = []int{*n}
		}
		if *r > 0 {
			rs = []int{*r}
		}
		if !*paper && *n == 0 {
			ns = []int{128, 256} // reduced default sweep
		}
		for _, nn := range ns {
			for _, rr := range rs {
				f, err := figures.Fig5(nn, rr, o)
				if err != nil {
					return err
				}
				if *asJSON {
					if err := f.WriteJSON(os.Stdout); err != nil {
						return err
					}
				} else {
					fmt.Println(f.Format())
				}
			}
		}
		return nil
	})
	run("6", func() error {
		cases := [][2]int{{128, 24}, {1024, 12}, {1024, 24}}
		if *n > 0 && *r > 0 {
			cases = [][2]int{{*n, *r}}
		} else if !*paper {
			cases = [][2]int{{128, 24}, {256, 12}}
		}
		for _, c := range cases {
			h, _, err := figures.Fig6(c[0], c[1], o)
			if err != nil {
				return err
			}
			fmt.Println(h.Format())
		}
		return nil
	})
	run("7", func() error {
		nn, rr := 1024, 24
		if *n > 0 {
			nn = *n
		}
		if *r > 0 {
			rr = *r
		}
		f := figures.Fig7(nn, rr)
		if *asJSON {
			return f.WriteJSON(os.Stdout)
		}
		fmt.Println(f.Format())
		return nil
	})
	run("8", func() error {
		nn, rr := 1024, 24
		if !*paper {
			nn = 256
		}
		if *n > 0 {
			nn = *n
		}
		if *r > 0 {
			rr = *r
		}
		h, g, err := figures.Fig8(nn, rr, o)
		if err != nil {
			return err
		}
		fmt.Println(h.Format())
		fmt.Printf("switches with no hosts: %d / %d (%.1f%%)\n\n",
			h.Counts[0], g.Switches(), 100*float64(h.Counts[0])/float64(g.Switches()))
		return nil
	})
	for id, kind := range map[string]string{"9": "torus", "10": "dragonfly", "11": "fattree"} {
		id, kind := id, kind
		run(id, func() error { return comparison(kind, o) })
	}
	run("ablation", func() error { return ablations(o) })
	run("resilience", func() error { return resilience(o) })
	run("perf", func() error {
		paths, err := filepath.Glob(*benchGlob)
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			if *fig == "all" {
				// -fig all must keep working outside the repo root,
				// where no trajectory files exist.
				fmt.Fprintf(os.Stderr, "orpfigures: fig perf: no reports match %q, skipping\n", *benchGlob)
				return nil
			}
			return fmt.Errorf("no reports match %q", *benchGlob)
		}
		f, err := figures.PerfTrajectory(paths)
		if err != nil {
			return err
		}
		if *asJSON {
			return f.WriteJSON(os.Stdout)
		}
		fmt.Println(f.Format())
		return nil
	})
	run("convergence", func() error {
		// Same (n, m, r) grid as the move-set ablation; the figure shows how
		// fast each neighbourhood converges rather than only where it lands.
		f, err := figures.Convergence(128, 30, 12, o)
		if err != nil {
			return err
		}
		if *asJSON {
			return f.WriteJSON(os.Stdout)
		}
		fmt.Println(f.Format())
		return nil
	})
}

// resilience prints the beyond-the-paper degradation sweep: proposed vs
// the paper's conventional baselines under random link failures.
func resilience(o figures.Options) error {
	ro := figures.ResilienceOptions{}
	if o.SAIterations < 100000 { // reduced scale: fewer trials per point
		ro.Trials = 8
	}
	stretch, reach, err := figures.Resilience(ro, o)
	if err != nil {
		return err
	}
	fmt.Println(stretch.Format())
	fmt.Println(reach.Format())
	return nil
}

// ablations prints the beyond-the-paper design-choice studies.
func ablations(o figures.Options) error {
	n, r := 128, 12
	m := 30
	moves, err := figures.AblationMoves(n, m, r, o)
	if err != nil {
		return err
	}
	fmt.Printf("# move sets (n=%d m=%d r=%d): final h-ASPL\n%v\n\n", n, m, r, moves)
	scheds, err := figures.AblationSchedules(n, m, r, o)
	if err != nil {
		return err
	}
	fmt.Printf("# cooling schedules: final h-ASPL\n%v\n\n", scheds)
	placement, err := figures.AblationPlacement("MG", o)
	if err != nil {
		return err
	}
	fmt.Printf("# host placement (MG, simulated seconds)\n%v\n\n", placement)
	tie, err := figures.AblationTieBreak("CG", o)
	if err != nil {
		return err
	}
	fmt.Printf("# routing tie-break (CG, simulated seconds)\n%v\n\n", tie)
	colls, err := figures.AblationCollectives(o)
	if err != nil {
		return err
	}
	fmt.Printf("# collective algorithms (simulated seconds)\n%v\n\n", colls)
	attach, err := figures.AblationAttachment("torus", "MG", o)
	if err != nil {
		return err
	}
	fmt.Printf("# torus host attachment (MG, simulated seconds)\n%v\n", attach)
	return nil
}

func comparison(kind string, o figures.Options) error {
	c, err := figures.BuildComparison(kind, o)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s vs proposed: baseline m=%d, proposed m=%d (%.0f%% fewer switches) ===\n\n",
		kind, c.Baseline.Switches(), c.Proposed.Switches(),
		100*(1-float64(c.Proposed.Switches())/float64(c.Baseline.Switches())))

	perf, err := c.Performance(o)
	if err != nil {
		return err
	}
	fmt.Println(perf.Format())
	labels := o.Benchmarks
	if len(labels) == 0 {
		labels = []string{"EP", "IS", "FT", "CG", "MG", "LU", "BT", "SP"}
	}
	fmt.Printf("benchmark labels: %v\n\n", labels)

	bw, err := c.Bandwidth(o)
	if err != nil {
		return err
	}
	fmt.Println(bw.Format())

	pw, err := c.Power(o)
	if err != nil {
		return err
	}
	fmt.Println(pw.Format())

	ct, err := c.Cost(o)
	if err != nil {
		return err
	}
	fmt.Println(ct.Format())
	fmt.Println(c.CostBreakdown().Format())
	return nil
}
