package repro

import (
	"testing"

	"repro/internal/perf"
)

// The evaluation and anneal-throughput benchmarks are thin shims over the
// internal/perf workload registry (see perf_bridge_test.go): the bodies
// measured here are byte-for-byte the ones cmd/orpbench records into the
// BENCH_*.json trajectory. The sharded eval workloads verify every
// repetition against the serial bit-parallel result, so the numbers can't
// drift from a silently wrong evaluator.

// BenchmarkEvaluateParallel covers one h-ASPL evaluation per engine
// (serial BFS, serial bit-parallel, sharded pool) at the registry's
// canonical (n, r) points.
func BenchmarkEvaluateParallel(b *testing.B) {
	for _, name := range perf.Names("eval/") {
		b.Run(name, func(b *testing.B) { benchWorkload(b, name) })
	}
}

// BenchmarkAnnealThroughput reports SA moves/sec per move set plus the
// sharded-evaluator variant — the quantity that gates how far the
// Fig. 5/8 sweeps and Graph Golf-size searches can explore.
func BenchmarkAnnealThroughput(b *testing.B) {
	for _, name := range perf.Names("anneal/") {
		b.Run(name, func(b *testing.B) { benchWorkload(b, name) })
	}
}
