package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/opt"
	"repro/internal/rng"
)

// BenchmarkEvaluateParallel measures one h-ASPL evaluation of the sharded
// engine against the serial bit-parallel sweep at the paper's headline
// scale: n = 1024, r in {12, 24}, m = m_opt. Every sub-benchmark verifies
// the sharded result against the serial one, so the numbers can't drift
// from a silently wrong evaluator.
func BenchmarkEvaluateParallel(b *testing.B) {
	for _, r := range []int{12, 24} {
		m, _ := bounds.OptimalSwitchCount(1024, r, 0)
		g, err := hsgraph.RandomConnected(1024, m, r, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		want := g.Evaluate()
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("r=%d/m=%d/workers=%d", r, m, workers), func(b *testing.B) {
				ev := hsgraph.NewEvaluator(workers)
				defer ev.Close()
				ev.Evaluate(g) // warm the scratch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if met := ev.Evaluate(g); met.TotalPath != want.TotalPath {
						b.Fatalf("sharded evaluation diverged: %+v vs %+v", met, want)
					}
				}
			})
		}
	}
}

// BenchmarkAnnealThroughput reports SA moves/sec at n = 1024, r = 24,
// m = m_opt — the quantity that gates how far the Fig. 5/8 sweeps and
// Graph Golf-size searches can explore. workers=1 is the seed repo's
// single-threaded hot path; the other counts show the sharded engine.
func BenchmarkAnnealThroughput(b *testing.B) {
	const n, r = 1024, 24
	m, _ := bounds.OptimalSwitchCount(n, r, 0)
	start, err := hsgraph.RandomConnected(n, m, r, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			const itersPerRun = 128
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := opt.Anneal(start, opt.Options{
					Iterations: itersPerRun,
					Seed:       1,
					Workers:    workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*itersPerRun)/b.Elapsed().Seconds(), "moves/s")
		})
	}
}
