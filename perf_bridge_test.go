package repro

import (
	"testing"

	"repro/internal/perf"
)

// benchWorkload is the bridge between `go test -bench` and the
// internal/perf workload registry: the benchmark loop drives the exact
// workload body cmd/orpbench measures, so the two measurement paths can
// never drift apart. Domain throughput is reported with the workload's
// own unit (pairs/s, moves/s, flows/s, ...).
func benchWorkload(b *testing.B, name string) {
	b.Helper()
	w := perf.Lookup(name)
	if w == nil {
		b.Fatalf("workload %q not registered in internal/perf", name)
	}
	inst, err := w.Setup(perf.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if inst.Close != nil {
		defer inst.Close()
	}
	// One unrecorded repetition warms scratch buffers, mirroring the
	// orpbench harness's warmup phase.
	items, err := inst.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items, err = inst.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if items > 0 && b.Elapsed() > 0 {
		b.ReportMetric(items*float64(b.N)/b.Elapsed().Seconds(), w.Unit+"/s")
	}
}

// TestRegisteredWorkloadsRunnable runs every registered workload once so
// a broken Setup or Run fails `go test .`, not the first orpbench pass
// after a refactor. (simnet workloads are the slow ones; the whole pass
// is a few hundred milliseconds.)
func TestRegisteredWorkloadsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("workload smoke pass skipped in -short")
	}
	for _, w := range perf.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Setup(perf.Config{Short: true})
			if err != nil {
				t.Fatal(err)
			}
			if inst.Close != nil {
				defer inst.Close()
			}
			items, err := inst.Run()
			if err != nil {
				t.Fatal(err)
			}
			if items <= 0 {
				t.Fatalf("workload reported %v items", items)
			}
		})
	}
}
