package opt

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func observerStart(t testing.TB) *hsgraph.Graph {
	t.Helper()
	g, err := hsgraph.RandomConnected(48, 16, 6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestObserverSamples(t *testing.T) {
	start := observerStart(t)
	var samples []AnnealSample
	_, res, err := Anneal(start, Options{
		Iterations:  2500,
		ReportEvery: 500,
		Seed:        7,
		Moves:       TwoNeighborSwing,
		Observer:    ObserverFunc(func(s AnnealSample) { samples = append(samples, s) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("want 5 samples (2500/500), got %d", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Iter != 2500 || last.Iterations != 2500 {
		t.Errorf("final sample at iter %d/%d, want 2500/2500", last.Iter, last.Iterations)
	}
	if last.Accepted != res.Accepted || last.Proposed != res.Proposed {
		t.Errorf("final sample counters %d/%d disagree with Result %d/%d",
			last.Accepted, last.Proposed, res.Accepted, res.Proposed)
	}
	if last.Moves != res.Moves {
		t.Errorf("final sample move counters %+v disagree with Result %+v", last.Moves, res.Moves)
	}
	// 2-neighbor swing: every acceptance is a swing or a counter-swing.
	if got := res.Moves.SwingAccepts + res.Moves.CounterAccepts; int(got) != res.Accepted {
		t.Errorf("swing %d + counter %d accepts != total %d",
			res.Moves.SwingAccepts, res.Moves.CounterAccepts, res.Accepted)
	}
	if res.Moves.SwingAccepts > res.Moves.SwingAttempts || res.Moves.CounterAccepts > res.Moves.CounterAttempts {
		t.Errorf("accepts exceed attempts: %+v", res.Moves)
	}
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if cur.Iter <= prev.Iter || cur.Proposed < prev.Proposed || cur.Best > prev.Best {
			t.Errorf("samples not monotone: %+v -> %+v", prev, cur)
		}
		if cur.Temp > prev.Temp {
			t.Errorf("temperature rose under geometric cooling: %g -> %g", prev.Temp, cur.Temp)
		}
	}
	if rate := last.AcceptRate(); rate < 0 || rate > 1 {
		t.Errorf("accept rate %g out of [0,1]", rate)
	}
}

func TestObserverSharedAcrossRestarts(t *testing.T) {
	start := observerStart(t)
	var mu sync.Mutex
	seen := map[int]int{}
	_, _, err := ParallelAnneal(start, Options{
		Iterations:  1200,
		ReportEvery: 300,
		Seed:        5,
		Workers:     1,
		Observer: ObserverFunc(func(s AnnealSample) {
			mu.Lock()
			seen[s.Restart]++
			mu.Unlock()
		}),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if seen[r] != 4 {
			t.Errorf("restart %d emitted %d samples, want 4", r, seen[r])
		}
	}
}

func TestEnergyTraceBoundedAndMonotone(t *testing.T) {
	start := observerStart(t)
	const max = 8
	_, res, err := Anneal(start, Options{
		Iterations:     6000,
		ReportEvery:    100, // 60 intervals, forcing several decimations
		Seed:           9,
		TraceEnergy:    true,
		EnergyTraceMax: max,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EnergyTrace) == 0 || len(res.EnergyTrace) > max {
		t.Fatalf("trace length %d, want 1..%d", len(res.EnergyTrace), max)
	}
	if res.EnergyTraceStride < 100 || res.EnergyTraceStride%100 != 0 {
		t.Errorf("stride %d not a multiple of ReportEvery", res.EnergyTraceStride)
	}
	for i := 1; i < len(res.EnergyTrace); i++ {
		if res.EnergyTrace[i] > res.EnergyTrace[i-1] {
			t.Errorf("best-energy trace rose at %d: %v", i, res.EnergyTrace)
		}
	}
	// The trace ends at (or above: it is decimated and the final interval
	// may be dropped) the best energy the run reports.
	if tail := res.EnergyTrace[len(res.EnergyTrace)-1]; tail < float64(res.Best.TotalPath) {
		t.Errorf("trace tail %g below final best %d", tail, res.Best.TotalPath)
	}

	// Disabled by default.
	_, res2, err := Anneal(start, Options{Iterations: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EnergyTrace != nil {
		t.Error("EnergyTrace populated without TraceEnergy")
	}
}

// TestNilObserverZeroAllocDelta is the in-tree twin of the root
// BenchmarkAnneal/BenchmarkAnnealObserved pair: the telemetry layer must
// add no per-sample (let alone per-iteration) allocations. A deterministic
// seed makes the two runs propose and clone identically, so any alloc
// difference is telemetry-induced. The 800-iteration run samples 4 times;
// a tolerance below that catches a single alloc per sample while ignoring
// runtime noise (mcache refills land on one run or the other, worth ~1
// alloc out of ~1400 either way).
func TestNilObserverZeroAllocDelta(t *testing.T) {
	start := observerStart(t)
	run := func(observer Observer) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, _, err := Anneal(start, Options{
				Iterations:  800,
				ReportEvery: 200,
				Seed:        11,
				Observer:    observer,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(nil)
	observed := run(ObserverFunc(func(AnnealSample) {}))
	if math.Abs(observed-base) >= 3 {
		t.Errorf("observer path allocates: nil=%v allocs/run, no-op observer=%v", base, observed)
	}
}
