package opt

import (
	"fmt"
	"math"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// EvalMode selects how the annealer evaluates candidate moves — the
// evaluation ladder of DESIGN.md. Every mode produces the same accepted-
// move sequence and the same final graphs for a given seed; they differ
// only in how much work a decision costs.
type EvalMode int

const (
	// EvalExact evaluates every candidate with the full sharded sweep
	// (hsgraph.Evaluator). The reference mode; the default.
	EvalExact EvalMode = iota
	// EvalIncremental evaluates every candidate exactly, but through the
	// dirty-source cache (hsgraph.IncrementalEvaluator): only sources
	// whose BFS trees can have changed are re-swept. Energies are
	// bit-identical to EvalExact, so decisions trivially agree.
	EvalIncremental
	// EvalLadder consults a sampled-source bound on the energy delta
	// first and escalates to the exact incremental evaluation only when
	// the accept/reject decision falls within the bound. Uphill moves the
	// temperature cannot save are rejected without ever computing the
	// exact energy. Decisions agree with EvalExact whenever the bounds
	// hold, which the configured confidence makes overwhelmingly likely
	// (see ladderConf).
	EvalLadder
	// EvalSymmetric evaluates through the orbit-quotient incremental
	// cache (hsgraph.NewOrbitIncrementalEvaluator): only orbit-
	// representative sources are cached and re-swept, ~Symmetry× fewer
	// than EvalIncremental, with the fold scaled by the orbit size for
	// bit-identical energies. Requires Options.Symmetry >= 2 and a start
	// graph closed under the group action; the symmetric move operators
	// (enabled by Options.Symmetry with any mode) keep it closed.
	EvalSymmetric
)

func (e EvalMode) String() string {
	switch e {
	case EvalExact:
		return "exact"
	case EvalIncremental:
		return "incremental"
	case EvalLadder:
		return "ladder"
	case EvalSymmetric:
		return "symmetric"
	}
	return fmt.Sprintf("EvalMode(%d)", int(e))
}

// ParseEvalMode parses the CLI spelling of an evaluation mode.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "exact", "":
		return EvalExact, nil
	case "incremental":
		return EvalIncremental, nil
	case "ladder":
		return EvalLadder, nil
	case "symmetric":
		return EvalSymmetric, nil
	}
	return 0, fmt.Errorf("opt: unknown evaluation mode %q (want exact, incremental, ladder or symmetric)", s)
}

// Ladder tuning. The estimator samples up to 64 bit-parallel batches of
// dirty sources: for every realistic dirty set the sample is exhaustive,
// the bounds collapse to the exact delta, and a decision costs
// ceil(dirty/64) sweeps against exact mode's ceil(m/64). Only dirty sets
// past the cap fall back to genuine Hoeffding bounds from a partial
// sample. The confidence is set so that a bound failure — the only way a
// ladder decision can need the exact-mode tie-break — has probability
// ~1e-6 per estimate, i.e. one in a million moves even before the 4x
// range inflation hsgraph applies on top.
const (
	ladderMaxSample = 4096
	ladderConf      = 1e-6
	// ladderSeedSalt derives the estimator's private RNG stream from the
	// run seed. The stream is separate from the decision RNG so that
	// sampling never perturbs the accept/reject draws.
	ladderSeedSalt = 0xb5ad4eceda1ce2a9
)

// ladderEval holds the ladder's per-run machinery: the incremental cache
// and the estimator's private RNG stream.
type ladderEval struct {
	inc    *hsgraph.IncrementalEvaluator
	estRnd *rng.Rand
	// Rung-decision counters (surfaced as EvalStats on every telemetry
	// sample): boundDecided candidates were settled by the sampled bound
	// alone, escalated ones needed the exact rung because the decision
	// fell inside the bound, and unbounded ones had no usable bound at
	// all (connectivity transitions, unattached cache).
	boundDecided int64
	escalated    int64
	unbounded    int64
}

// stats snapshots the rung counters plus the incremental cache's internal
// decision counters. Nil-safe: exact-mode runs have no ladder and report
// zeros.
func (l *ladderEval) stats() EvalStats {
	if l == nil {
		return EvalStats{}
	}
	return EvalStats{
		BoundDecided: l.boundDecided,
		Escalated:    l.escalated,
		Unbounded:    l.unbounded,
		Inc:          l.inc.Stats(),
	}
}

// decide is the ladder's accept/reject verdict on the current (already
// mutated) graph, given the pre-move energy cur and temperature temp.
// It consumes draws from rnd exactly as the exact-mode rule does — one
// draw iff the true delta is positive and the graph stays connected —
// whenever the bounds contain the true delta, so the decision stream is
// identical to exact mode's. The returned energy is the exact candidate
// energy when accepted; rejected verdicts may skip computing it entirely.
func (l *ladderEval) decide(g *hsgraph.Graph, cur int64, temp float64, rnd *rng.Rand) (int64, bool) {
	est := l.inc.EstimateDelta(g, ladderMaxSample, ladderConf, l.estRnd)
	if !est.Connected {
		// Exact mode rejects disconnecting moves without a draw.
		l.boundDecided++
		return 0, false
	}
	// commit evaluates through the cache, re-sweeping and storing the
	// dirty rows: the candidate becomes the cache's new base state. Only
	// accepted candidates pay it.
	commit := func() int64 {
		e, connected := l.inc.Energy(g)
		if !connected {
			return math.MaxInt64
		}
		return e
	}
	// peekExact is the ladder's escalation rung: the exact candidate
	// energy, bit-identical to commit's, but into scratch — a rejected
	// candidate costs ceil(dirty/64) batch sweeps and rolls back for free.
	peekExact := func() int64 {
		e, connected, ok := l.inc.PeekEnergy(g)
		if !ok {
			return commit()
		}
		if !connected {
			return math.MaxInt64
		}
		return e
	}
	if !est.Bounded {
		l.unbounded++
		e := peekExact()
		accepted := acceptExact(e, cur, temp, rnd)
		if accepted {
			commit()
		}
		return e, accepted
	}
	// The bounds are against the cache's base state, which can lag cur by
	// a committed-then-rejected candidate (see twoNeighborSwing's step 3);
	// shift them onto the pre-move energy and widen by half a unit so the
	// integer delta cannot fall on a rounded-off boundary.
	shift := float64(est.Base - cur)
	lo := est.Lo + shift - 0.5
	hi := est.Hi + shift + 0.5
	if hi <= 0 {
		// Certain downhill: exact mode accepts without a draw.
		l.boundDecided++
		return commit(), true
	}
	if lo > 0 {
		// Certain uphill: exact mode draws once. Use the bound to decide
		// without the exact energy when the draw is decisive either way.
		u := rnd.Float64()
		if u >= math.Exp(-lo/temp) {
			l.boundDecided++
			return 0, false // even the most favorable delta loses the draw
		}
		if u < math.Exp(-hi/temp) {
			l.boundDecided++
			return commit(), true // even the worst delta wins the draw
		}
		l.escalated++
		e := peekExact()
		if e == math.MaxInt64 {
			return 0, false
		}
		delta := e - cur
		if delta <= 0 {
			// Bound failure (possible with probability < ladderConf): the
			// move was downhill after all. Accept, as exact mode would.
			commit()
			return e, true
		}
		if u < math.Exp(-float64(delta)/temp) {
			commit()
			return e, true
		}
		return e, false
	}
	// The sign of the delta is inside the bound: escalate to the exact
	// energy and apply the standard rule.
	l.escalated++
	e := peekExact()
	accepted := acceptExact(e, cur, temp, rnd)
	if accepted {
		commit()
	}
	return e, accepted
}

// acceptExact is the exact-mode Metropolis rule: accept downhill moves
// outright, uphill moves with probability exp(-delta/temp), consuming one
// draw only in the uphill case.
func acceptExact(candidate, cur int64, temp float64, rnd *rng.Rand) bool {
	if candidate == math.MaxInt64 {
		return false
	}
	delta := candidate - cur
	if delta <= 0 {
		return true
	}
	return rnd.Float64() < math.Exp(-float64(delta)/temp)
}
