package opt

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
)

// progressPoint is one OnProgress observation: with ReportEvery=1 the
// sequence of points is the full accepted-move trajectory of a run.
type progressPoint struct {
	iter          int
	current, best int64
}

// runWithTrajectory anneals with ReportEvery=1 and returns the serialized
// best graph, the Result and every (iter, current, best) point.
func runWithTrajectory(t *testing.T, o Options, seed uint64) ([]byte, Result, []progressPoint) {
	t.Helper()
	start := randomGraph(t, 48, 12, 8, 5)
	var traj []progressPoint
	o.Seed = seed
	o.ReportEvery = 1
	o.OnProgress = func(iter int, current, best int64) {
		traj = append(traj, progressPoint{iter, current, best})
	}
	g, res, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}
	return graphBytes(t, g), res, traj
}

// TestEvalModesProduceIdenticalRuns is the ladder's headline property:
// for the same seed, every rung of the evaluation ladder — exact,
// incremental, ladder — produces the identical accepted-move sequence
// (same current/best energy after every iteration), the identical Result
// (move counters included) and the identical final best graph, across
// move sets and schedules.
func TestEvalModesProduceIdenticalRuns(t *testing.T) {
	cases := []struct {
		name  string
		moves MoveSet
		sched Schedule
		iters int
		seeds []uint64
	}{
		{"2ns-geometric", TwoNeighborSwing, Geometric, 400, []uint64{7, 19}},
		{"swap-geometric", SwapOnly, Geometric, 400, []uint64{7}},
		{"swing-geometric", SwingOnly, Geometric, 400, []uint64{7}},
		{"2ns-linear", TwoNeighborSwing, Linear, 300, []uint64{3}},
		{"2ns-hillclimb", TwoNeighborSwing, HillClimb, 300, []uint64{3}},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		for _, seed := range tc.seeds {
			base := Options{Iterations: tc.iters, Moves: tc.moves, Schedule: tc.sched}
			exactO := base
			exactO.Eval = EvalExact
			wantG, wantRes, wantTraj := runWithTrajectory(t, exactO, seed)
			for _, mode := range []EvalMode{EvalIncremental, EvalLadder} {
				for _, workers := range []int{1, 3} {
					o := base
					o.Eval = mode
					o.Workers = workers
					gotG, gotRes, gotTraj := runWithTrajectory(t, o, seed)
					ctx := tc.name + "/" + mode.String()
					if !bytes.Equal(wantG, gotG) {
						t.Fatalf("%s seed=%d workers=%d: best graphs differ from exact mode", ctx, seed, workers)
					}
					gotRes.Eval = EvalStats{} // diagnostics differ by mode by design
					if !reflect.DeepEqual(wantRes, gotRes) {
						t.Fatalf("%s seed=%d workers=%d: results differ:\nexact %+v\ngot   %+v", ctx, seed, workers, wantRes, gotRes)
					}
					if !reflect.DeepEqual(wantTraj, gotTraj) {
						for i := range wantTraj {
							if i < len(gotTraj) && wantTraj[i] != gotTraj[i] {
								t.Fatalf("%s seed=%d workers=%d: trajectories fork at iteration %d: exact %+v, got %+v",
									ctx, seed, workers, wantTraj[i].iter, wantTraj[i], gotTraj[i])
							}
						}
						t.Fatalf("%s seed=%d workers=%d: trajectory lengths differ: %d vs %d", ctx, seed, workers, len(wantTraj), len(gotTraj))
					}
				}
			}
		}
	}
}

// TestLadderKillResume: a ladder-mode run interrupted at an arbitrary
// iteration and resumed from its snapshot — including with a different
// worker count — is bit-identical to the uninterrupted ladder run (and
// hence to the exact run, by TestEvalModesProduceIdenticalRuns). This is
// what the v2 checkpoint's estimator-stream field exists for.
func TestLadderKillResume(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	o := ckptBaseOptions()
	o.Eval = EvalLadder
	wantG, wantRes, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		killAt, killWorkers, resumeWorkers int
	}{
		{1, 1, 2},
		{137, 1, 3},
		{517, 3, 1},
		{799, 2, 2},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "ladder.ckpt")
		var stop atomic.Bool
		ko := ckptBaseOptions()
		ko.Eval = EvalLadder
		ko.CheckpointPath = path
		ko.CheckpointEvery = 100
		ko.Interrupt = &stop
		ko.Workers = tc.killWorkers
		ko.OnProgress = func(iter int, current, best int64) {
			if iter == tc.killAt {
				stop.Store(true)
			}
		}
		if _, _, err := Anneal(start, ko); !errors.Is(err, ckpt.ErrInterrupted) {
			t.Fatalf("killAt=%d: want ErrInterrupted, got %v", tc.killAt, err)
		}

		ro := ckptBaseOptions()
		ro.Eval = EvalLadder
		ro.CheckpointPath = path
		ro.Resume = true
		ro.Workers = tc.resumeWorkers
		gotG, gotRes, err := Anneal(start, ro)
		if err != nil {
			t.Fatalf("killAt=%d: resume: %v", tc.killAt, err)
		}
		requireIdentical(t, wantG, gotG, wantRes, gotRes)
	}
}

// TestLadderResumeFingerprintsEvalMode: a snapshot taken in one
// evaluation mode refuses to resume in another — silently switching rungs
// mid-run would invalidate the checkpointed estimator stream.
func TestLadderResumeFingerprintsEvalMode(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	path := filepath.Join(t.TempDir(), "anneal.ckpt")
	o := ckptBaseOptions()
	o.Eval = EvalLadder
	o.CheckpointPath = path
	o.CheckpointEvery = 100
	if _, _, err := Anneal(start, o); err != nil {
		t.Fatal(err)
	}
	ro := ckptBaseOptions()
	ro.Eval = EvalExact
	ro.CheckpointPath = path
	ro.Resume = true
	_, _, err := Anneal(start, ro)
	if err == nil || !strings.Contains(err.Error(), "Eval") {
		t.Fatalf("resume with mismatched eval mode: want fingerprint error, got %v", err)
	}
}

// TestParallelAnnealLadder: the restart tournament picks the same winner
// on every rung.
func TestParallelAnnealLadder(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	base := Options{Iterations: 300, Seed: 21}
	exactG, exactRes, err := ParallelAnneal(start, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []EvalMode{EvalIncremental, EvalLadder} {
		o := base
		o.Eval = mode
		g, res, err := ParallelAnneal(start, o, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(graphBytes(t, exactG), graphBytes(t, g)) {
			t.Fatalf("%v: ParallelAnneal winner differs from exact mode", mode)
		}
		res.Eval = EvalStats{} // diagnostics differ by mode by design
		if !reflect.DeepEqual(exactRes, res) {
			t.Fatalf("%v: ParallelAnneal results differ:\nexact %+v\ngot   %+v", mode, exactRes, res)
		}
	}
}
