package opt

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// ckptBaseOptions is the shared configuration for the differential
// resume tests: ReportEvery=1 so an interrupt can be armed at any exact
// iteration, tracing on with a small cap so decimation is exercised.
func ckptBaseOptions() Options {
	return Options{
		Iterations: 800,
		// TwoNeighborSwing is the move set most sensitive to restored
		// state: it indexes the edge list, scans adjacency lists from a
		// random offset and moves the first host on a switch, so any
		// ordering the snapshot failed to preserve diverges the stream.
		Moves:          TwoNeighborSwing,
		Seed:           77,
		ReportEvery:    1,
		TraceEnergy:    true,
		EnergyTraceMax: 64,
	}
}

func graphBytes(t *testing.T, g *hsgraph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hsgraph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireIdentical asserts the headline invariant: same serialized best
// graph, same Result down to the last field (energy trace included).
// Result.Eval is diagnostics, not part of the determinism contract — the
// counters depend on the evaluation mode and restart on resume — so it is
// zeroed before comparing.
func requireIdentical(t *testing.T, wantG, gotG *hsgraph.Graph, wantRes, gotRes Result) {
	t.Helper()
	if !bytes.Equal(graphBytes(t, wantG), graphBytes(t, gotG)) {
		t.Fatal("best graphs differ")
	}
	wantRes.Eval = EvalStats{}
	gotRes.Eval = EvalStats{}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("results differ:\nwant %+v\ngot  %+v", wantRes, gotRes)
	}
}

// TestResumeDeterminismAfterInterrupt is the issue's headline test: a run
// interrupted at an arbitrary iteration and resumed from its snapshot is
// bit-identical to the run that was never interrupted — best graph,
// Result, energy trace — including when the resumed half runs with a
// different evaluator worker count.
func TestResumeDeterminismAfterInterrupt(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	wantG, wantRes, err := Anneal(start, ckptBaseOptions())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		killAt        int // iteration at which the interrupt fires
		killWorkers   int // worker count of the interrupted half
		resumeWorkers int // worker count of the resumed half
	}{
		{1, 1, 1},   // immediately after the first iteration
		{137, 1, 3}, // arbitrary point, serial -> parallel
		{517, 2, 1}, // arbitrary point, parallel -> serial
		{799, 3, 2}, // one iteration before the end
		{800, 1, 1}, // resuming a completed run replays nothing
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "anneal.ckpt")

		var stop atomic.Bool
		o := ckptBaseOptions()
		o.CheckpointPath = path
		o.CheckpointEvery = 100 // interrupt points deliberately off-cycle
		o.Interrupt = &stop
		o.Workers = tc.killWorkers
		o.OnProgress = func(iter int, current, best int64) {
			if iter == tc.killAt {
				stop.Store(true)
			}
		}
		_, partial, err := Anneal(start, o)
		if tc.killAt < o.Iterations {
			if !errors.Is(err, ckpt.ErrInterrupted) {
				t.Fatalf("killAt=%d: want ErrInterrupted, got %v", tc.killAt, err)
			}
			if partial.Iterations != tc.killAt {
				t.Fatalf("killAt=%d: partial result reports %d iterations", tc.killAt, partial.Iterations)
			}
		} else if err != nil {
			t.Fatalf("killAt=%d: %v", tc.killAt, err)
		}

		ro := ckptBaseOptions()
		ro.CheckpointPath = path
		ro.Resume = true
		ro.Workers = tc.resumeWorkers
		gotG, gotRes, err := Anneal(start, ro)
		if err != nil {
			t.Fatalf("killAt=%d: resume: %v", tc.killAt, err)
		}
		requireIdentical(t, wantG, gotG, wantRes, gotRes)

		// Resuming the now-completed run again must reproduce it exactly,
		// not advance anything.
		againG, againRes, err := Anneal(start, ro)
		if err != nil {
			t.Fatalf("killAt=%d: second resume: %v", tc.killAt, err)
		}
		requireIdentical(t, wantG, againG, wantRes, againRes)
	}
}

// TestCheckpointingDoesNotPerturbRun: enabling snapshots must not change
// the RNG stream or any output — checkpointing is observation, not
// intervention.
func TestCheckpointingDoesNotPerturbRun(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	wantG, wantRes, err := Anneal(start, ckptBaseOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := ckptBaseOptions()
	o.CheckpointPath = filepath.Join(t.TempDir(), "anneal.ckpt")
	o.CheckpointEvery = 64
	gotG, gotRes, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, wantG, gotG, wantRes, gotRes)
}

// TestResumeFromPeriodicSnapshot simulates a SIGKILL: the process dies
// with only a mid-run periodic snapshot on disk (no interrupt-triggered
// final write). Resuming from that older snapshot must still reproduce
// the uninterrupted run exactly, replaying the lost iterations.
func TestResumeFromPeriodicSnapshot(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 9)
	dir := t.TempDir()
	livePath := filepath.Join(dir, "anneal.ckpt")
	killPath := filepath.Join(dir, "killed.ckpt")

	o := ckptBaseOptions()
	o.CheckpointPath = livePath
	o.CheckpointEvery = 128
	o.OnProgress = func(iter int, current, best int64) {
		if iter == 512 {
			// Freeze whatever snapshot a SIGKILL at this instant would
			// leave behind: the most recent completed periodic write.
			data, err := os.ReadFile(livePath)
			if err != nil {
				t.Errorf("reading live checkpoint: %v", err)
				return
			}
			if err := os.WriteFile(killPath, data, 0o644); err != nil {
				t.Errorf("writing kill copy: %v", err)
			}
		}
	}
	wantG, wantRes, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}

	info, err := ReadCheckpointInfo(killPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Iter <= 0 || info.Iter >= 512 || info.Iter%128 != 0 {
		t.Fatalf("kill copy holds iteration %d, want a periodic snapshot before 512", info.Iter)
	}

	ro := ckptBaseOptions()
	ro.CheckpointPath = killPath
	ro.Resume = true
	gotG, gotRes, err := Anneal(start, ro)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, wantG, gotG, wantRes, gotRes)
}

// interruptObserver arms the shared interrupt flag once any restart
// reaches the trigger iteration. Safe for concurrent use.
type interruptObserver struct {
	stop *atomic.Bool
	at   int
}

func (o *interruptObserver) ObserveAnneal(s AnnealSample) {
	if s.Iter >= o.at {
		o.stop.Store(true)
	}
}

// TestParallelAnnealResume: interrupt a multi-restart run — each restart
// stops wherever it happens to be, a deliberately nondeterministic kill
// point — and resume. The final winner must be bit-identical to the
// uninterrupted run regardless of where each restart was cut.
func TestParallelAnnealResume(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 13)
	const restarts = 3
	base := ckptBaseOptions()
	base.Iterations = 600

	wantG, wantRes, err := ParallelAnneal(start, base, restarts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	var stop atomic.Bool
	o := base
	o.CheckpointPath = path
	o.CheckpointEvery = 100
	o.Interrupt = &stop
	o.Observer = &interruptObserver{stop: &stop, at: 150}
	if _, _, err := ParallelAnneal(start, o, restarts); !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	for i := 0; i < restarts; i++ {
		if _, err := os.Stat(RestartCheckpointPath(path, restarts, i)); err != nil {
			t.Fatalf("restart %d left no snapshot: %v", i, err)
		}
	}

	ro := base
	ro.CheckpointPath = path
	ro.Resume = true
	ro.Workers = 1
	gotG, gotRes, err := ParallelAnneal(start, ro, restarts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, wantG, gotG, wantRes, gotRes)
}

// writeTestCheckpoint produces a snapshot file by interrupting a short
// run, returning the path.
func writeTestCheckpoint(t *testing.T, start *hsgraph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "anneal.ckpt")
	var stop atomic.Bool
	o := ckptBaseOptions()
	o.CheckpointPath = path
	o.Interrupt = &stop
	o.OnProgress = func(iter int, current, best int64) {
		if iter == 50 {
			stop.Store(true)
		}
	}
	if _, _, err := Anneal(start, o); !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	return path
}

// TestResumeRejectsMismatchedOptions: a resume whose explicit options
// disagree with the snapshot's stream-defining parameters must error and
// name the offending field — silently diverging would void the
// determinism contract.
func TestResumeRejectsMismatchedOptions(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	path := writeTestCheckpoint(t, start)

	cases := []struct {
		field  string
		mutate func(*Options)
	}{
		{"Seed", func(o *Options) { o.Seed++ }},
		{"Iterations", func(o *Options) { o.Iterations = 9999 }},
		{"Moves", func(o *Options) { o.Moves = SwingOnly }},
		{"Schedule", func(o *Options) { o.Schedule = Linear }},
		{"ReportEvery", func(o *Options) { o.ReportEvery = 7 }},
		{"TraceEnergy", func(o *Options) { o.TraceEnergy = false }},
		{"EnergyTraceMax", func(o *Options) { o.EnergyTraceMax = 9 }},
		{"FinalTemp", func(o *Options) { o.FinalTemp = 12345.5 }},
	}
	for _, tc := range cases {
		o := ckptBaseOptions()
		o.CheckpointPath = path
		o.Resume = true
		tc.mutate(&o)
		_, _, err := Anneal(start, o)
		if err == nil {
			t.Fatalf("%s mismatch was accepted", tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s mismatch error does not name the field: %v", tc.field, err)
		}
	}

	// Zero-valued fields mean "take the stored value": resuming with a
	// minimal option set must work. Enums and booleans have no unset
	// sentinel (their zero values are meaningful) and must be passed.
	minimal := Options{
		Seed:        77,
		Moves:       TwoNeighborSwing,
		TraceEnergy: true,
		Resume:      true,
	}
	minimal.CheckpointPath = path
	if _, _, err := Anneal(start, minimal); err != nil {
		t.Fatalf("minimal resume options rejected: %v", err)
	}
}

// TestResumeMissingFileStartsFresh: Resume with no snapshot on disk is a
// fresh run, so kill/resume wrapper scripts are idempotent.
func TestResumeMissingFileStartsFresh(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	wantG, wantRes, err := Anneal(start, ckptBaseOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := ckptBaseOptions()
	o.CheckpointPath = filepath.Join(t.TempDir(), "never-written.ckpt")
	o.Resume = true
	gotG, gotRes, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, wantG, gotG, wantRes, gotRes)
}

// TestResumeRejectsTamperedGraph: a snapshot whose graph bytes were
// altered (but re-sealed with a valid CRC) must be rejected by the
// energy cross-check or graph validation — a corrupt graph must never
// silently seed a resumed run.
func TestResumeRejectsTamperedGraph(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	path := writeTestCheckpoint(t, start)

	kind, payload, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The payload ends inside the best graph's state blob (the final
	// field). Corrupt its last byte and re-seal with a valid CRC: the
	// envelope passes, so only the graph-level validation stands between
	// the corruption and the resumed run.
	payload[len(payload)-1] ^= 0x40
	if err := ckpt.WriteFile(path, kind, payload); err != nil {
		t.Fatal(err)
	}

	o := ckptBaseOptions()
	o.CheckpointPath = path
	o.Resume = true
	if _, _, err := Anneal(start, o); err == nil {
		t.Fatal("resume accepted a snapshot with a tampered graph")
	}
}

// TestReadCheckpointInfo: the cheap metadata reader reports where the
// run stood.
func TestReadCheckpointInfo(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	path := writeTestCheckpoint(t, start)
	info, err := ReadCheckpointInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Iter != 50 || info.Iterations != 800 || info.Seed != 77 || info.Restart != 0 {
		t.Fatalf("unexpected info: %+v", info)
	}
	if info.BestEnergy <= 0 {
		t.Fatalf("implausible best energy %d", info.BestEnergy)
	}
}

// TestAnnealRejectsInvalidOptions is the regression suite for the
// validation bugs: a negative FinalTemp used to slip past the
// FinalTemp > InitialTemp check and feed math.Pow a negative ratio,
// silently turning the cooling factor into NaN (and the anneal into a
// hill-climb); negative Iterations silently ran zero iterations.
func TestAnnealRejectsInvalidOptions(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 5)
	cases := []struct {
		name string
		o    Options
	}{
		{"negative FinalTemp", Options{FinalTemp: -1}},
		{"negative InitialTemp", Options{InitialTemp: -5}},
		{"NaN InitialTemp", Options{InitialTemp: math.NaN()}},
		{"NaN FinalTemp", Options{FinalTemp: math.NaN()}},
		{"infinite FinalTemp", Options{FinalTemp: math.Inf(1)}},
		{"negative Iterations", Options{Iterations: -3}},
		{"negative CheckpointEvery", Options{CheckpointEvery: -2}},
		{"unknown move set", Options{Moves: MoveSet(99)}},
		{"unknown schedule", Options{Schedule: Schedule(99)}},
	}
	for _, tc := range cases {
		if _, _, err := Anneal(start, tc.o); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The valid zero-value configuration still works.
	if _, _, err := Anneal(start, Options{Iterations: 10}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// FuzzDecodeAnnealSnapshot: arbitrary payload bytes must either decode
// into a structurally plausible snapshot or error — never panic, never
// yield values that violate the decoder's own invariants.
func FuzzDecodeAnnealSnapshot(f *testing.F) {
	start, err := hsgraph.RandomConnected(24, 6, 8, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	o := Options{Iterations: 20, Seed: 3, ReportEvery: 1, TraceEnergy: true,
		CheckpointPath: path, CheckpointEvery: 10}
	if _, _, err := Anneal(start, o); err != nil {
		f.Fatal(err)
	}
	_, payload, err := ckpt.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeAnnealSnapshot(data)
		if err != nil {
			return
		}
		if s.iterations <= 0 || s.iter < 0 || s.iter > s.iterations {
			t.Fatalf("accepted snapshot with invalid cursor %d/%d", s.iter, s.iterations)
		}
		if s.finalTemp > s.initialTemp || !(s.initialTemp > 0) {
			t.Fatalf("accepted snapshot with invalid temps %v/%v", s.initialTemp, s.finalTemp)
		}
		if s.accepted > s.proposed {
			t.Fatalf("accepted snapshot with accepted %d > proposed %d", s.accepted, s.proposed)
		}
	})
}
