package opt

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
)

// Clique builds the Appendix's optimal construction for the regime
// n <= m(r-m+1): the minimum number of switches forming a complete graph,
// hosts distributed as evenly as possible. By Theorem 3 this attains the
// minimum h-ASPL for its (n, r) whenever it is feasible.
func Clique(n, r int) (*hsgraph.Graph, error) {
	m := bounds.MinCliqueSwitches(n, r)
	if m == 0 {
		return nil, fmt.Errorf("opt: no clique host-switch graph exists for n=%d r=%d", n, r)
	}
	return CliqueWith(n, m, r)
}

// CliqueWith builds an m-switch clique host-switch graph with n hosts.
func CliqueWith(n, m, r int) (*hsgraph.Graph, error) {
	if !bounds.CliqueFeasible(n, m, r) {
		return nil, fmt.Errorf("opt: clique infeasible for n=%d m=%d r=%d", n, m, r)
	}
	g := hsgraph.New(n, m, r)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if err := g.Connect(a, b); err != nil {
				return nil, err
			}
		}
	}
	if err := hsgraph.DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	return g, nil
}
