package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// TestPropertyMovesPreserveInvariants: arbitrary sequences of the three
// search operations keep the graph structurally valid, preserve the edge
// count (every operation exchanges endpoints, never adds or removes
// edges), and preserve the total host count.
func TestPropertyMovesPreserveInvariants(t *testing.T) {
	check := func(seed uint64, ops []byte) bool {
		rnd := rng.New(seed)
		g, err := hsgraph.RandomConnected(20, 7, 6, rnd)
		if err != nil {
			return false
		}
		edges := g.NumEdges()
		decide := func() (int64, bool) {
			met := g.Evaluate()
			if !met.Connected {
				return 1 << 60, false
			}
			return met.TotalPath, rnd.Intn(2) == 0
		}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if u, ok := trySwap(g, rnd); ok && rnd.Intn(2) == 0 {
					u()
				}
			case 1:
				if u, ok := trySwing(g, rnd); ok && rnd.Intn(2) == 0 {
					u()
				}
			case 2:
				twoNeighborSwing(g, rnd, decide, &MoveCounters{})
			}
			if g.NumEdges() != edges {
				return false
			}
			if err := g.Validate(); err != nil && err != hsgraph.ErrNotConnected {
				return false
			}
			hosts := 0
			for s := 0; s < g.Switches(); s++ {
				hosts += g.HostCount(s)
			}
			if hosts != 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAnnealNeverBeatsBounds: over random instances, the SA
// result respects Theorem 2 (checked indirectly: the best energy is a
// real graph's energy, and real graphs respect the bound — asserted in
// bounds' own tests; here we assert best <= initial, i.e. SA never
// returns something worse than its start).
func TestPropertyAnnealMonotoneBest(t *testing.T) {
	check := func(seed uint64) bool {
		rnd := rng.New(seed)
		g, err := hsgraph.RandomConnected(24, 8, 7, rnd)
		if err != nil {
			return false
		}
		_, res, err := Anneal(g, Options{Iterations: 300, Seed: seed})
		if err != nil {
			return false
		}
		return res.Best.TotalPath <= res.Initial.TotalPath
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(110))}); err != nil {
		t.Fatal(err)
	}
}
