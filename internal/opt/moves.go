// Package opt implements the paper's randomized algorithm for the
// order/radix problem: simulated annealing over host-switch graphs with the
// swap operation (Section 5.1), the swing operation and the 2-neighbor
// swing operation (Section 5.2), plus the clique construction of the
// Appendix for the trivial regime n <= m(r-m+1).
package opt

import (
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// An undo reverses a successfully applied move.
type undo func()

// trySwap applies the paper's swap operation (Fig. 2): replace switch-switch
// edges {a,b}, {c,d} by {a,d}, {b,c}. Host attachments are untouched, so
// repeated swaps explore k-regular host-switch graphs. Returns ok=false
// (graph unchanged) when no valid swap could be sampled.
func trySwap(g *hsgraph.Graph, rnd *rng.Rand) (undo, bool) {
	ne := g.NumEdges()
	if ne < 2 {
		return nil, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		i := rnd.Intn(ne)
		j := rnd.Intn(ne)
		if i == j {
			continue
		}
		a, b := g.Edge(i)
		c, d := g.Edge(j)
		// Random orientation: swap the roles of c and d half the time, so
		// both rewirings {a,d}/{b,c} and {a,c}/{b,d} are reachable.
		if rnd.Intn(2) == 0 {
			c, d = d, c
		}
		if a == c || a == d || b == c || b == d {
			continue
		}
		if g.HasEdge(a, d) || g.HasEdge(b, c) {
			continue
		}
		mustDo(g.Disconnect(a, b))
		mustDo(g.Disconnect(c, d))
		mustDo(g.Connect(a, d))
		mustDo(g.Connect(b, c))
		return func() {
			mustDo(g.Disconnect(a, d))
			mustDo(g.Disconnect(b, c))
			mustDo(g.Connect(a, b))
			mustDo(g.Connect(c, d))
		}, true
	}
	return nil, false
}

// applySwing performs swing(a, b, c) (Fig. 3): given edge {a,b} and a host
// h on c, rewire to edge {a,c} with h moved to b. Increments k_b,
// decrements k_c. Preconditions (checked): {a,b} exists, c has a host,
// c != a, c != b, and {a,c} does not exist. Degrees are preserved:
// b swaps a switch link for a host link, c the reverse.
func applySwing(g *hsgraph.Graph, a, b, c int) (undo, bool) {
	if c == a || c == b || !g.HasEdge(a, b) || g.HasEdge(a, c) {
		return nil, false
	}
	h := g.AnyHostOn(c)
	if h < 0 {
		return nil, false
	}
	mustDo(g.Disconnect(a, b))
	// b now has a free port for the host; c will have one for the edge.
	mustDo(g.MoveHost(h, b))
	mustDo(g.Connect(a, c))
	return func() {
		mustDo(g.Disconnect(a, c))
		mustDo(g.MoveHost(h, c))
		mustDo(g.Connect(a, b))
	}, true
}

// trySwing samples a random swing operation.
func trySwing(g *hsgraph.Graph, rnd *rng.Rand) (undo, bool) {
	ne := g.NumEdges()
	m := g.Switches()
	if ne < 1 || m < 3 {
		return nil, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		a, b := g.Edge(rnd.Intn(ne))
		if rnd.Intn(2) == 0 {
			a, b = b, a
		}
		c := rnd.Intn(m)
		if u, ok := applySwing(g, a, b, c); ok {
			return u, true
		}
	}
	return nil, false
}

// twoNeighborSwing implements the paper's 2-neighbor swing operation
// (Fig. 4). decide is the annealer's verdict on the current (mutated)
// graph: it returns the candidate's exact energy and whether the move is
// accepted; rejecting verdicts may skip the energy (the returned value is
// only used on acceptance). The operation:
//
//	Step 1: apply swing(a, b, c); if accepted, keep it (1-neighbor).
//	Step 3: otherwise apply swing(d, c, b) — using the host that step 1
//	        moved onto b — yielding the swap of {a,b} and {d,c}; if
//	        accepted, keep it (2-neighbor). Otherwise restore the input.
//
// Returns whether a move was kept. mc (non-nil) receives the per-step
// attempt/accept telemetry: step 1 counts as a swing, step 3 as a
// counter-swing.
func twoNeighborSwing(g *hsgraph.Graph, rnd *rng.Rand,
	decide func() (int64, bool), mc *MoveCounters) (int64, bool) {

	ne := g.NumEdges()
	m := g.Switches()
	if ne < 1 || m < 3 {
		return 0, false
	}
	var a, b, c int
	var undo1 undo
	found := false
	for attempt := 0; attempt < 8 && !found; attempt++ {
		a, b = g.Edge(rnd.Intn(ne))
		if rnd.Intn(2) == 0 {
			a, b = b, a
		}
		c = rnd.Intn(m)
		if u, ok := applySwing(g, a, b, c); ok {
			undo1, found = u, true
		}
	}
	if !found {
		return 0, false
	}
	mc.SwingAttempts++
	if e1, accepted := decide(); accepted {
		mc.SwingAccepts++
		return e1, true
	}
	// Step 3: swing(d, c, b) for a neighbour d of c (d != a, b), moving the
	// host back from b to c and producing the swap {a,c},{d,b}.
	// Preconditions of applySwing(d, c, b): edge {d,c} exists, b has a
	// host (it does: step 1 moved one there), and {d,b} absent.
	neighbors := g.Neighbors(c)
	// Deterministic random scan order over c's neighbours.
	start := 0
	if len(neighbors) > 0 {
		start = rnd.Intn(len(neighbors))
	}
	for i := 0; i < len(neighbors); i++ {
		d := int(neighbors[(start+i)%len(neighbors)])
		if d == a || d == b {
			continue
		}
		undo2, ok := applySwing(g, d, c, b)
		if !ok {
			continue
		}
		mc.CounterAttempts++
		if e2, accepted := decide(); accepted {
			mc.CounterAccepts++
			return e2, true
		}
		undo2()
		break // paper evaluates a single 2-neighbor candidate
	}
	undo1()
	return 0, false
}

func mustDo(err error) {
	if err != nil {
		panic("opt: move invariant violated: " + err.Error())
	}
}
