package opt

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestExhaustiveSingleSwitchOptimal(t *testing.T) {
	// n <= r: the optimum is one switch with every host (h-ASPL 2).
	g, err := ExhaustiveMinimum(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Evaluate().HASPL; got != 2 {
		t.Fatalf("exhaustive optimum h-ASPL = %v, want 2", got)
	}
}

func TestExhaustiveRespectsTheorem2(t *testing.T) {
	// Ground truth can never beat the analytic bound — and on these tiny
	// instances we learn exactly how tight the bound is.
	cases := []struct{ n, r, maxM int }{
		{5, 4, 4}, {6, 4, 4}, {7, 4, 4}, {6, 5, 4}, {8, 5, 4},
	}
	for _, c := range cases {
		g, err := ExhaustiveMinimum(c.n, c.r, c.maxM)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.n, c.r, err)
		}
		got := g.Evaluate().HASPL
		lb := bounds.HASPLLowerBound(c.n, c.r)
		if got < lb-1e-9 {
			t.Fatalf("(%d,%d): exhaustive optimum %v beats Theorem 2 bound %v", c.n, c.r, got, lb)
		}
	}
}

func TestExhaustiveConfirmsTheorem3CliqueOptimality(t *testing.T) {
	// Where the clique construction is feasible, Theorem 3 says it is
	// optimal: the exhaustive optimum must match the clique's h-ASPL.
	cases := []struct{ n, r int }{
		{6, 4},  // clique with m=2: 2*(4-1) = 6 hosts
		{8, 5},  // m=2: 2*4 = 8
		{9, 5},  // m=3: 3*3 = 9
		{10, 6}, // m=2: 2*5 = 10
	}
	for _, c := range cases {
		clique, err := Clique(c.n, c.r)
		if err != nil {
			t.Fatalf("(%d,%d): clique: %v", c.n, c.r, err)
		}
		exact, err := ExhaustiveMinimum(c.n, c.r, clique.Switches()+2)
		if err != nil {
			t.Fatalf("(%d,%d): exhaustive: %v", c.n, c.r, err)
		}
		ch := clique.Evaluate().HASPL
		eh := exact.Evaluate().HASPL
		if math.Abs(ch-eh) > 1e-12 {
			t.Fatalf("(%d,%d): clique h-ASPL %v != exhaustive optimum %v (Theorem 3 violated?)", c.n, c.r, ch, eh)
		}
	}
}

func TestExhaustiveMatchesSAOnTinyInstance(t *testing.T) {
	// SA with a generous budget should find the true optimum of a tiny
	// non-clique instance.
	const n, r = 9, 4 // clique infeasible: m(5-m) maxes at 6 < 9
	exact, err := ExhaustiveMinimum(n, r, 5)
	if err != nil {
		t.Fatal(err)
	}
	exactH := exact.Evaluate().HASPL
	// Anneal at the exhaustive optimum's switch count.
	m := exact.Switches()
	start, err := hsgraph.RandomConnected(n, m, r, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Anneal(start, Options{Iterations: 6000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	saH := g.Evaluate().HASPL
	if saH < exactH-1e-9 {
		t.Fatalf("SA (%v) beat the exhaustive optimum (%v): enumeration is buggy", saH, exactH)
	}
	if saH > exactH+1e-9 {
		t.Logf("SA %v vs exact %v (same m=%d)", saH, exactH, m)
		// The start has a fixed (saturated) edge count; the optimum may
		// use fewer edges. Only fail if SA is far off.
		if saH > exactH*1.15 {
			t.Fatalf("SA %v far from exhaustive optimum %v", saH, exactH)
		}
	}
}

func TestExhaustiveRejectsBadArgs(t *testing.T) {
	if _, err := ExhaustiveMinimum(5, 4, 0); err == nil {
		t.Fatal("maxM=0 accepted")
	}
	if _, err := ExhaustiveMinimum(5, 4, 7); err == nil {
		t.Fatal("maxM=7 accepted")
	}
	// Infeasible: 9 hosts, radix 3, at most 2 switches (max 3*2-2=4).
	if _, err := ExhaustiveMinimum(9, 3, 2); err == nil {
		t.Fatal("infeasible instance produced a graph")
	}
}
