package opt

import "repro/internal/hsgraph"

// Anneal telemetry. The annealer samples its state every
// Options.ReportEvery iterations and hands the sample to a pluggable
// Observer. The nil-observer hot path does no timing calls and no
// allocations (guarded in opt's tests and the root benchmarks); a non-nil
// observer costs one time.Now per interval plus whatever the observer
// itself does.

// MoveCounters breaks proposed/accepted moves down by operation. For the
// 2-neighbor-swing move set, "swing" is the step-1 swing and "counter" the
// step-3 complementary swing (the one that completes a swap); the swap-
// and swing-only move sets fill their own pair. Counts are cumulative over
// the run.
type MoveCounters struct {
	SwapAttempts    int64
	SwapAccepts     int64
	SwingAttempts   int64
	SwingAccepts    int64
	CounterAttempts int64
	CounterAccepts  int64
}

// EvalStats is the evaluation ladder's introspection snapshot, carried on
// every AnnealSample. All counters are cumulative over the run (restart-
// local under ParallelAnneal); consumers diff successive samples for
// rates. Zero in exact mode, which has no ladder machinery to introspect.
type EvalStats struct {
	// BoundDecided counts candidates the sampled bound settled without
	// the exact candidate energy: certain downhill/uphill verdicts,
	// decisive Metropolis draws, and disconnecting moves.
	BoundDecided int64
	// Escalated counts candidates that needed the exact rung because
	// the decision fell inside the bound (including non-decisive uphill
	// draws).
	Escalated int64
	// Unbounded counts estimates the cache refused to bound
	// (connectivity transitions, unattached cache); they escalate too.
	Unbounded int64
	// Inc is the incremental evaluator's internal decision counters —
	// commits, full-rebuild fallbacks, stored-peek reuse, dirty and
	// swept source totals. Populated in both incremental and ladder
	// modes.
	Inc hsgraph.IncStats
}

// EscalationRate is the fraction of ladder decisions that needed the
// exact rung (0 when no decision was made yet).
func (s EvalStats) EscalationRate() float64 {
	total := s.BoundDecided + s.Escalated + s.Unbounded
	if total == 0 {
		return 0
	}
	return float64(s.Escalated+s.Unbounded) / float64(total)
}

// AnnealSample is one telemetry interval of a running anneal.
type AnnealSample struct {
	// Restart identifies the ParallelAnneal restart emitting the sample
	// (0 for plain Anneal).
	Restart int
	// Iter is the number of iterations completed; Iterations the total
	// budget.
	Iter, Iterations int
	// Temp is the current temperature.
	Temp float64
	// Current and Best are energies (total host-pair path length).
	Current, Best int64
	// Accepted and Proposed are cumulative move counts.
	Accepted, Proposed int
	// Moves breaks the counts down by operation.
	Moves MoveCounters
	// MovesPerSec is the wall-clock iteration rate since the previous
	// sample; Elapsed the wall-clock seconds since the run began.
	MovesPerSec float64
	Elapsed     float64
	// Eval is the evaluation ladder's introspection snapshot (zero in
	// exact mode).
	Eval EvalStats
}

// AcceptRate is cumulative accepted/proposed (0 when nothing proposed).
func (s AnnealSample) AcceptRate() float64 {
	if s.Proposed == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Proposed)
}

// Observer receives anneal telemetry. Implementations must be safe for
// concurrent use when passed to ParallelAnneal with more than one restart
// (every restart samples into the same observer, tagged by Restart).
type Observer interface {
	ObserveAnneal(s AnnealSample)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(s AnnealSample)

// ObserveAnneal calls f(s).
func (f ObserverFunc) ObserveAnneal(s AnnealSample) { f(s) }
