package opt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// MoveSet selects which neighbourhood the annealer explores.
type MoveSet int

const (
	// SwapOnly uses only the swap operation (Section 5.1); it preserves
	// host attachments and hence explores regular host-switch graphs when
	// started from one.
	SwapOnly MoveSet = iota
	// SwingOnly uses only the swing operation (Section 5.2).
	SwingOnly
	// TwoNeighborSwing uses the paper's combined operation (Fig. 4),
	// which subsumes both swap and swing. This is the recommended set.
	TwoNeighborSwing
)

func (m MoveSet) String() string {
	switch m {
	case SwapOnly:
		return "swap"
	case SwingOnly:
		return "swing"
	case TwoNeighborSwing:
		return "2-neighbor-swing"
	}
	return fmt.Sprintf("MoveSet(%d)", int(m))
}

// Schedule selects the cooling schedule.
type Schedule int

const (
	// Geometric cools by a constant factor per iteration (default).
	Geometric Schedule = iota
	// Linear cools by a constant decrement per iteration.
	Linear
	// HillClimb accepts only improvements (temperature pinned at ~0);
	// the baseline the SA is meant to beat.
	HillClimb
)

func (s Schedule) String() string {
	switch s {
	case Geometric:
		return "geometric"
	case Linear:
		return "linear"
	case HillClimb:
		return "hillclimb"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Options configures Anneal. The zero value is usable: sensible defaults
// are filled in for every unset field.
type Options struct {
	// Iterations is the number of proposed moves. Default 20000.
	// Negative values are rejected.
	Iterations int
	// Moves selects the neighbourhood. Default TwoNeighborSwing.
	Moves MoveSet
	// Schedule selects the cooling schedule. Default Geometric.
	Schedule Schedule
	// InitialTemp and FinalTemp bound the geometric cooling schedule in
	// units of total path length. If InitialTemp is zero it is calibrated
	// from a sample of move deltas; FinalTemp defaults to InitialTemp/200.
	// Negative or non-finite values are rejected: a negative FinalTemp
	// would slip past the FinalTemp > InitialTemp check and feed math.Pow
	// a negative ratio, silently turning the cooling factor into NaN and
	// the anneal into a hill-climb.
	InitialTemp float64
	FinalTemp   float64
	// Seed drives all randomness. Two runs with equal inputs and seeds
	// produce identical outputs.
	Seed uint64
	// OnProgress, if non-nil, is called every ReportEvery iterations
	// (default 1000) with the iteration count and current/best energy.
	OnProgress  func(iter int, current, best int64)
	ReportEvery int
	// Observer, if non-nil, receives an AnnealSample every ReportEvery
	// iterations plus one final sample at the last iteration. The nil
	// path adds no allocations and no timing calls to the hot loop.
	Observer Observer
	// TraceEnergy records the best energy at every ReportEvery interval
	// into Result.EnergyTrace so convergence can be plotted without
	// re-running. Memory stays bounded: once the trace reaches
	// EnergyTraceMax samples it is decimated (every other sample
	// dropped, sampling stride doubled).
	TraceEnergy    bool
	EnergyTraceMax int // cap on len(Result.EnergyTrace); default 2048
	// restart tags observer samples from ParallelAnneal.
	restart int
	// Workers is the number of shard workers each h-ASPL evaluation is
	// split over (see hsgraph.Evaluator). Values <= 1 evaluate serially.
	// The result is identical for every worker count; only throughput
	// changes. ParallelAnneal resolves 0 to a share of GOMAXPROCS.
	Workers int
	// Eval selects the evaluation ladder rung (see EvalMode). The default
	// EvalExact evaluates every candidate with the full sweep;
	// EvalIncremental re-sweeps only dirty sources; EvalLadder adds the
	// sampled-source bound with escalation; EvalSymmetric quotients the
	// incremental cache by the cyclic group action (requires Symmetry).
	// All modes yield the same accepted-move sequence for a seed (ladder:
	// whenever its confidence bounds hold, which is all but ~1e-6 of
	// estimates).
	Eval EvalMode
	// Symmetry, when >= 2, restricts the search to graphs closed under
	// the cyclic group action σ(s) = (s + m/Symmetry) mod m: the start
	// graph must verify (see hsgraph.VerifySymmetric) and every move is a
	// symmetric operator applying the base edit plus its images to a
	// whole orbit. Works with every Eval mode; EvalSymmetric additionally
	// exploits it to sweep ~Symmetry× fewer sources. 0 and 1 mean no
	// symmetry; negative values are rejected.
	Symmetry int

	// CheckpointPath, when non-empty, makes the annealer write a
	// crash-safe snapshot of its complete loop state (graphs, energies,
	// temperature, move counters, energy trace, RNG stream) to this file
	// every CheckpointEvery iterations and once at the final iteration.
	// Snapshots are atomic (temp file + fsync + rename, see package
	// ckpt); a reader never observes a partial file. ParallelAnneal
	// treats the path as a base name and gives restart i its own
	// "<path>.r<i>" file.
	CheckpointPath string
	// CheckpointEvery is the snapshot interval in iterations. Default
	// 10000. Negative values are rejected.
	CheckpointEvery int
	// Resume, with a non-empty CheckpointPath, loads the snapshot and
	// continues from it instead of starting fresh; when the file does not
	// exist the run starts from scratch (so kill-and-resume loops are
	// idempotent). The resumed run is bit-identical — best graph, every
	// Result field, the energy trace — to the run that was never
	// interrupted, at every worker count. Stream-defining options stored
	// in the snapshot (iterations, move set, schedule, temperatures,
	// seed, sampling interval, trace settings) must match any non-zero
	// values in these Options, or Anneal errors out rather than silently
	// diverging.
	Resume bool
	// Interrupt, if non-nil, is polled once per iteration; when it
	// becomes true the annealer writes a final snapshot (if checkpointing
	// is configured) and returns the best graph so far together with
	// ckpt.ErrInterrupted. The CLIs arm it from SIGINT/SIGTERM via
	// cliutil.Interrupt.
	Interrupt *atomic.Bool
	// Span, if non-nil, is the caller's parent span; the annealer opens
	// children at stage boundaries (anneal.init or anneal.resume-load,
	// anneal.loop with an outcome attribute, anneal.checkpoint per
	// snapshot, anneal.final-eval; ParallelAnneal adds one anneal.restart
	// per restart). A nil span costs nothing: every span method on a nil
	// receiver is a no-op, so the untraced hot path stays allocation-free
	// (see internal/obs).
	Span *obs.Span
}

// Result summarises an annealing run.
type Result struct {
	Best        hsgraph.Metrics // metrics of the returned graph
	Initial     hsgraph.Metrics // metrics of the input graph
	Accepted    int             // number of accepted moves
	Proposed    int             // number of sampled candidate moves
	Iterations  int             // iterations actually run
	FinalTemp   float64
	InitialTemp float64
	// Moves breaks Proposed/Accepted down by operation.
	Moves MoveCounters
	// EnergyTrace is the best energy sampled every EnergyTraceStride
	// iterations (only with Options.TraceEnergy; see EnergyTraceMax).
	EnergyTrace       []float64
	EnergyTraceStride int
	// Eval snapshots the evaluation-ladder counters at the end of the run
	// (all zero in EvalExact mode, and reset by a resume — see telemetry).
	// CLIs use it to surface silent performance degradations such as
	// IncStats.PeekStoreSkips. Excluded from JSON: the counters are
	// in-process diagnostics, not part of the run's deterministic result
	// (a resumed run re-attaches the cache and counts differently), so
	// serializing them would break the bit-identical resume contract that
	// result payloads carry.
	Eval EvalStats `json:"-"`
}

// annealState is the complete loop state of a running anneal — everything
// a snapshot must capture for a resumed run to be bit-identical to an
// uninterrupted one. iter is the number of completed iterations; temp has
// already been advanced past iteration iter-1.
type annealState struct {
	g, best            *hsgraph.Graph
	energy, bestEnergy int64
	temp               float64
	iter               int
	rnd                *rng.Rand
	// estRnd is the ladder estimator's private stream (nil outside
	// EvalLadder). It is checkpointed: a resumed ladder run replays the
	// same source samples and hence the same escalation pattern.
	estRnd *rng.Rand
	res    Result
	tel    telemetry
}

// validateOptions rejects senseless inputs. It deliberately fills no
// defaults: zero values still mean "unset" when a resume fingerprints the
// snapshot against the caller's options (see applyDefaults).
func validateOptions(o *Options) error {
	if o.Iterations < 0 {
		return fmt.Errorf("opt: negative Iterations %d", o.Iterations)
	}
	for _, t := range []struct {
		name string
		v    float64
	}{{"InitialTemp", o.InitialTemp}, {"FinalTemp", o.FinalTemp}} {
		if t.v < 0 || math.IsNaN(t.v) || math.IsInf(t.v, 0) {
			return fmt.Errorf("opt: %s %v must be a finite value >= 0 (0 = default)", t.name, t.v)
		}
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("opt: negative CheckpointEvery %d", o.CheckpointEvery)
	}
	switch o.Moves {
	case SwapOnly, SwingOnly, TwoNeighborSwing:
	default:
		return fmt.Errorf("opt: unknown move set %v", o.Moves)
	}
	switch o.Schedule {
	case Geometric, Linear, HillClimb:
	default:
		return fmt.Errorf("opt: unknown schedule %v", o.Schedule)
	}
	switch o.Eval {
	case EvalExact, EvalIncremental, EvalLadder, EvalSymmetric:
	default:
		return fmt.Errorf("opt: unknown evaluation mode %v", o.Eval)
	}
	if o.Symmetry < 0 {
		return fmt.Errorf("opt: negative Symmetry %d", o.Symmetry)
	}
	if o.Eval == EvalSymmetric && o.Symmetry < 2 {
		return fmt.Errorf("opt: evaluation mode %v requires Symmetry >= 2, got %d", o.Eval, o.Symmetry)
	}
	return nil
}

// applyDefaults resolves the unset fields that a fresh run needs (a
// resumed run takes them from the snapshot instead).
func applyDefaults(o *Options) {
	if o.Iterations == 0 {
		o.Iterations = 20000
	}
	if o.ReportEvery <= 0 {
		o.ReportEvery = 1000
	}
}

// Anneal runs simulated annealing from the given starting graph and
// returns the best graph found. The input graph is not modified.
//
// With Options.Resume and an existing CheckpointPath, the run continues
// from the snapshot instead; see the Resume field for the determinism
// contract.
func Anneal(start *hsgraph.Graph, o Options) (*hsgraph.Graph, Result, error) {
	if start == nil {
		return nil, Result{}, fmt.Errorf("opt: nil start graph")
	}
	if err := start.Validate(); err != nil {
		return nil, Result{}, fmt.Errorf("opt: invalid start graph: %w", err)
	}
	if err := validateOptions(&o); err != nil {
		return nil, Result{}, err
	}
	// The cache-backed modes refuse oversized graphs up front with a
	// documented error — the alternative is an attach-time panic deep in
	// the loop (and historically a silent fall-through was on the table;
	// neither is acceptable).
	if o.Eval != EvalExact && start.Switches() > hsgraph.MaxIncrementalSwitches {
		return nil, Result{}, fmt.Errorf("opt: evaluation mode %v uses the incremental cache, which supports at most %d switches (graph has %d); use EvalExact for larger graphs",
			o.Eval, hsgraph.MaxIncrementalSwitches, start.Switches())
	}
	if o.Symmetry > 1 {
		if err := hsgraph.VerifySymmetric(start, o.Symmetry); err != nil {
			return nil, Result{}, fmt.Errorf("opt: Symmetry=%d start graph: %w", o.Symmetry, err)
		}
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 10000
	}
	ev := hsgraph.NewEvaluator(o.Workers)
	defer ev.Close()

	if o.Resume && o.CheckpointPath != "" {
		if _, err := os.Stat(o.CheckpointPath); err == nil {
			sp := o.Span.Child("anneal.resume-load")
			st, err := loadAnnealState(o.CheckpointPath, &o, ev)
			if err != nil {
				sp.Fail(err)
				return nil, Result{}, err
			}
			sp.SetF("iter", float64(st.iter))
			sp.End()
			return runAnneal(st, o, ev)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, Result{}, fmt.Errorf("opt: resume: %w", err)
		}
	}

	applyDefaults(&o)
	sp := o.Span.Child("anneal.init")
	st, err := newAnnealState(start, &o, ev)
	if err != nil {
		sp.Fail(err)
		return nil, Result{}, err
	}
	sp.End()
	return runAnneal(st, o, ev)
}

// newAnnealState builds the iteration-zero state: evaluates the start
// graph, calibrates the temperature bounds, and seeds the RNG. It mutates
// o, resolving InitialTemp/FinalTemp to their effective values.
func newAnnealState(start *hsgraph.Graph, o *Options, ev *hsgraph.Evaluator) (*annealState, error) {
	st := &annealState{rnd: rng.New(o.Seed)}
	if o.Eval == EvalLadder {
		// A private stream, derived from the seed but never touching the
		// decision RNG: sampling noise must not perturb the move draws.
		st.estRnd = rng.New(o.Seed ^ ladderSeedSalt)
	}
	st.g = start.Clone()
	cur := ev.Evaluate(st.g)
	if !cur.Connected {
		return nil, hsgraph.ErrNotConnected
	}
	st.res = Result{Initial: cur}
	st.energy = cur.TotalPath
	st.best = st.g.Clone()
	st.bestEnergy = st.energy

	if o.Schedule == HillClimb {
		o.InitialTemp, o.FinalTemp = hillClimbTemp, hillClimbTemp
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = calibrateTemp(st.g, o.Moves, o.Symmetry, st.rnd.Split(), ev)
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = o.InitialTemp / 200
	}
	if o.FinalTemp > o.InitialTemp {
		return nil, fmt.Errorf("opt: FinalTemp %v exceeds InitialTemp %v", o.FinalTemp, o.InitialTemp)
	}
	st.res.InitialTemp, st.res.FinalTemp = o.InitialTemp, o.FinalTemp
	st.temp = o.InitialTemp
	st.tel.init(*o)
	return st, nil
}

// runAnneal drives the annealing loop from st (iteration st.iter) to
// o.Iterations. o must be fully resolved (validateOptions applied, temps
// concrete).
func runAnneal(st *annealState, o Options, ev *hsgraph.Evaluator) (*hsgraph.Graph, Result, error) {
	res := &st.res
	cool := math.Pow(o.FinalTemp/o.InitialTemp, 1/math.Max(1, float64(o.Iterations-1)))
	linStep := (o.InitialTemp - o.FinalTemp) / math.Max(1, float64(o.Iterations-1))

	// The evaluation ladder: decide judges the current (mutated) graph
	// against st.energy at st.temp. Exact mode pays a full sweep per
	// candidate; incremental mode the dirty-source re-sweep; ladder mode
	// consults the sampled bound first and escalates only when the
	// decision is within it. All modes consume st.rnd identically (one
	// draw per connected uphill candidate), so the accepted-move sequence
	// is seed-determined, not mode-determined.
	var ladder *ladderEval
	if o.Eval != EvalExact {
		workers := o.Workers
		if workers < 1 {
			workers = 1
		}
		sym := 1
		if o.Eval == EvalSymmetric {
			sym = o.Symmetry
		}
		ladder = &ladderEval{inc: hsgraph.NewOrbitIncrementalEvaluator(workers, sym), estRnd: st.estRnd}
	}
	st.tel.ladder = ladder

	// The loop span brackets the iteration range this call actually runs
	// (a resumed run starts past zero); checkpoint writes open children so
	// a trace shows where durability time went.
	loop := o.Span.Child("anneal.loop")
	loop.SetF("start-iter", float64(st.iter))
	decide := func() (int64, bool) {
		if o.Eval == EvalLadder {
			return ladder.decide(st.g, st.energy, st.temp, st.rnd)
		}
		if o.Eval == EvalIncremental || o.Eval == EvalSymmetric {
			// Peek the exact candidate energy without committing rows;
			// only accepted candidates pay the cache update, so rejected
			// ones roll back for free.
			e, connected, ok := ladder.inc.PeekEnergy(st.g)
			if !ok {
				e, connected = ladder.inc.Energy(st.g)
			}
			if !connected {
				e = math.MaxInt64
			}
			accepted := acceptExact(e, st.energy, st.temp, st.rnd)
			if accepted {
				ladder.inc.Energy(st.g)
			}
			return e, accepted
		}
		e, connected := ev.Energy(st.g)
		if !connected {
			e = math.MaxInt64
		}
		return e, acceptExact(e, st.energy, st.temp, st.rnd)
	}

	for iter := st.iter; iter < o.Iterations; iter++ {
		switch o.Moves {
		case TwoNeighborSwing:
			res.Proposed++
			var e int64
			var moved bool
			if o.Symmetry > 1 {
				e, moved = symTwoNeighborSwing(st.g, o.Symmetry, st.rnd, decide, &res.Moves)
			} else {
				e, moved = twoNeighborSwing(st.g, st.rnd, decide, &res.Moves)
			}
			if moved {
				st.energy = e
				res.Accepted++
			}
		case SwapOnly, SwingOnly:
			var u undo
			var ok bool
			switch {
			case o.Moves == SwapOnly && o.Symmetry > 1:
				u, ok = trySymSwap(st.g, o.Symmetry, st.rnd)
			case o.Moves == SwapOnly:
				u, ok = trySwap(st.g, st.rnd)
			case o.Symmetry > 1:
				u, ok = trySymSwing(st.g, o.Symmetry, st.rnd)
			default:
				u, ok = trySwing(st.g, st.rnd)
			}
			if ok {
				res.Proposed++
				if o.Moves == SwapOnly {
					res.Moves.SwapAttempts++
				} else {
					res.Moves.SwingAttempts++
				}
				if e, accepted := decide(); accepted {
					st.energy = e
					res.Accepted++
					if o.Moves == SwapOnly {
						res.Moves.SwapAccepts++
					} else {
						res.Moves.SwingAccepts++
					}
				} else {
					u()
				}
			}
		}
		if st.energy < st.bestEnergy {
			st.bestEnergy = st.energy
			st.best = st.g.Clone()
		}
		if (iter+1)%o.ReportEvery == 0 || iter+1 == o.Iterations {
			if o.OnProgress != nil && (iter+1)%o.ReportEvery == 0 {
				o.OnProgress(iter+1, st.energy, st.bestEnergy)
			}
			st.tel.sample(&o, res, iter+1, st.temp, st.energy, st.bestEnergy)
		}
		switch o.Schedule {
		case Linear:
			st.temp -= linStep
			if st.temp < o.FinalTemp {
				st.temp = o.FinalTemp
			}
		case HillClimb:
			// temperature pinned
		default:
			st.temp *= cool
		}
		st.iter = iter + 1

		// Durability points, off the boundary-free hot path: a periodic
		// snapshot, the final snapshot, and an interrupt-triggered one.
		interrupted := o.Interrupt != nil && o.Interrupt.Load()
		if o.CheckpointPath != "" &&
			(st.iter%o.CheckpointEvery == 0 || st.iter == o.Iterations || interrupted) {
			csp := loop.Child("anneal.checkpoint")
			csp.SetF("iter", float64(st.iter))
			if err := writeAnnealCheckpoint(o.CheckpointPath, st, &o); err != nil {
				csp.Fail(err)
				loop.Fail(err)
				return nil, Result{}, err
			}
			csp.End()
		}
		if interrupted && st.iter < o.Iterations {
			res.Iterations = st.iter
			res.Eval = ladder.stats()
			loop.SetF("iter", float64(st.iter))
			loop.SetS("outcome", "interrupted")
			loop.End()
			res.Best = ev.Evaluate(st.best)
			return st.best, *res, ckpt.ErrInterrupted
		}
	}
	res.Iterations = o.Iterations
	res.Eval = ladder.stats()
	st.tel.finish(&o, res)
	loop.SetF("iter", float64(st.iter))
	loop.SetS("outcome", "done")
	loop.End()
	fsp := o.Span.Child("anneal.final-eval")
	res.Best = ev.Evaluate(st.best)
	fsp.End()
	return st.best, *res, nil
}

// telemetry drives Observer sampling and energy tracing. It is fully
// inert — no clock reads, no appends, no allocations — unless the run
// requested an observer or an energy trace. buf, stride and interval are
// part of the checkpointed loop state; the wall-clock fields are not
// (resumed runs restart the rate clock, which only affects observer
// samples, never the Result).
type telemetry struct {
	observe  bool
	trace    bool
	max      int
	start    time.Time
	lastTime time.Time
	lastIter int
	stride   int // energy-trace decimation stride, in ReportEvery units
	interval int // aligned intervals seen so far
	buf      []float64
	// ladder, when the run evaluates through the incremental cache, lets
	// samples carry the rung/cache counters (EvalStats). Not part of the
	// checkpointed state: a resumed run restarts the counters, which only
	// affects observer samples, never the Result.
	ladder *ladderEval
}

func (t *telemetry) init(o Options) {
	t.observe = o.Observer != nil
	t.trace = o.TraceEnergy
	t.max = o.EnergyTraceMax
	if t.max <= 0 {
		t.max = 2048
	}
	if t.max < 2 {
		t.max = 2
	}
	if t.stride == 0 {
		t.stride = 1
	}
	if t.observe {
		t.start = time.Now()
		t.lastTime = t.start
	}
}

// sample records one telemetry interval. iter is the number of completed
// iterations; the caller invokes it on ReportEvery boundaries and once at
// the final iteration.
func (t *telemetry) sample(o *Options, res *Result, iter int, temp float64, current, best int64) {
	if t.trace && iter%o.ReportEvery == 0 {
		if t.interval%t.stride == 0 {
			t.buf = append(t.buf, float64(best))
			if len(t.buf) >= t.max {
				// Decimate: keep every other sample, double the stride.
				half := (len(t.buf) + 1) / 2
				for i := 0; i < half; i++ {
					t.buf[i] = t.buf[2*i]
				}
				t.buf = t.buf[:half]
				t.stride *= 2
			}
		}
		t.interval++
	}
	if t.observe {
		now := time.Now()
		rate := 0.0
		if dt := now.Sub(t.lastTime).Seconds(); dt > 0 {
			rate = float64(iter-t.lastIter) / dt
		}
		o.Observer.ObserveAnneal(AnnealSample{
			Restart:     o.restart,
			Iter:        iter,
			Iterations:  o.Iterations,
			Temp:        temp,
			Current:     current,
			Best:        best,
			Accepted:    res.Accepted,
			Proposed:    res.Proposed,
			Moves:       res.Moves,
			MovesPerSec: rate,
			Elapsed:     now.Sub(t.start).Seconds(),
			Eval:        t.ladder.stats(),
		})
		t.lastTime, t.lastIter = now, iter
	}
}

func (t *telemetry) finish(o *Options, res *Result) {
	if t.trace {
		res.EnergyTrace = t.buf
		res.EnergyTraceStride = t.stride * o.ReportEvery
	}
}

// hillClimbTemp is effectively zero on the integer energy scale: any
// uphill move has acceptance probability exp(-1/1e-9) == 0.
const hillClimbTemp = 1e-9

// calibrateTemp estimates a starting temperature as the mean |delta| of a
// sample of random moves, the classic rule of thumb that yields a high
// initial acceptance rate. Works on a scratch clone, evaluated through
// the annealer's evaluator. Symmetric runs sample symmetric moves: their
// deltas are ~sym× a single-image move's, and the temperature must match
// the scale of the moves the loop will actually propose.
func calibrateTemp(g *hsgraph.Graph, moves MoveSet, sym int, rnd *rng.Rand, ev *hsgraph.Evaluator) float64 {
	scratch := g.Clone()
	base, _ := ev.Energy(scratch)
	var sum float64
	count := 0
	for i := 0; i < 40; i++ {
		var u undo
		var ok bool
		switch {
		case moves == SwapOnly && sym > 1:
			u, ok = trySymSwap(scratch, sym, rnd)
		case moves == SwapOnly:
			u, ok = trySwap(scratch, rnd)
		case sym > 1:
			u, ok = trySymSwing(scratch, sym, rnd)
		default:
			u, ok = trySwing(scratch, rnd)
		}
		if !ok {
			continue
		}
		if e, connected := ev.Energy(scratch); connected {
			sum += math.Abs(float64(e - base))
			count++
		}
		u()
	}
	if count == 0 || sum == 0 {
		// Fall back to a small fraction of the energy scale.
		return math.Max(1, float64(base)*1e-4)
	}
	return sum / float64(count)
}

// ParallelAnneal runs restarts independent annealing runs with distinct
// seeds on separate goroutines and returns the best result. Determinism is
// preserved: the winner depends only on (start, o, restarts).
//
// When o.Workers is zero the available cores are split between the two
// levels of parallelism: each restart gets GOMAXPROCS/restarts evaluation
// shard workers (at least one), so a 2-restart run on 8 cores uses 2x4
// goroutines instead of leaving 6 cores idle.
//
// With checkpointing configured, restart i snapshots into
// RestartCheckpointPath(o.CheckpointPath, restarts, i); Resume picks up
// whichever restarts left snapshots behind and starts the rest fresh. If
// o.Interrupt fires, every restart persists its state and ParallelAnneal
// returns ckpt.ErrInterrupted.
func ParallelAnneal(start *hsgraph.Graph, o Options, restarts int) (*hsgraph.Graph, Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	if o.Workers == 0 {
		if w := runtime.GOMAXPROCS(0) / restarts; w > 1 {
			o.Workers = w
		} else {
			o.Workers = 1
		}
	}
	type outcome struct {
		g   *hsgraph.Graph
		res Result
		err error
	}
	outs := make([]outcome, restarts)
	done := make(chan int)
	for i := 0; i < restarts; i++ {
		go func(i int) {
			// Stage-label the restart goroutine (and, by inheritance,
			// everything it spawns except the evaluator pool, which
			// re-labels itself stage=eval) for per-stage CPU profiles.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("stage", "anneal", "worker", strconv.Itoa(i))))
			oi := o
			oi.Seed = o.Seed + uint64(i)*0x9e3779b97f4a7c15
			oi.OnProgress = nil
			// The Observer (if any) is shared by every restart; samples
			// carry the restart index. Observer implementations used here
			// must be safe for concurrent use (see Observer docs).
			oi.restart = i
			if o.CheckpointPath != "" {
				oi.CheckpointPath = RestartCheckpointPath(o.CheckpointPath, restarts, i)
			}
			// Each restart traces under its own span; the emit function of
			// the tracer behind o.Span must be concurrency-safe (it is for
			// every tracer this repo builds).
			rsp := o.Span.Child("anneal.restart")
			rsp.SetF("restart", float64(i))
			oi.Span = rsp
			g, res, err := Anneal(start, oi)
			switch {
			case errors.Is(err, ckpt.ErrInterrupted):
				rsp.SetS("outcome", "interrupted")
				rsp.End()
			case err != nil:
				rsp.Fail(err)
			default:
				rsp.SetS("outcome", "done")
				rsp.End()
			}
			outs[i] = outcome{g, res, err}
			done <- i
		}(i)
	}
	for i := 0; i < restarts; i++ {
		<-done
	}
	interrupted := false
	for _, out := range outs {
		if out.err != nil && !errors.Is(out.err, ckpt.ErrInterrupted) {
			return nil, Result{}, out.err
		}
		interrupted = interrupted || out.err != nil
	}
	if interrupted {
		return nil, Result{}, ckpt.ErrInterrupted
	}
	bestIdx := -1
	for i, out := range outs {
		if bestIdx == -1 || out.res.Best.TotalPath < outs[bestIdx].res.Best.TotalPath {
			bestIdx = i
		}
	}
	return outs[bestIdx].g, outs[bestIdx].res, nil
}

// RestartCheckpointPath is the snapshot file of restart i in a
// ParallelAnneal over the given base path. Single-restart runs use the
// base path itself, so plain Anneal and 1-restart ParallelAnneal share
// snapshots.
func RestartCheckpointPath(base string, restarts, i int) string {
	if restarts == 1 {
		return base
	}
	return fmt.Sprintf("%s.r%d", base, i)
}
