package opt

import (
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func randomGraph(t *testing.T, n, m, r int, seed uint64) *hsgraph.Graph {
	t.Helper()
	g, err := hsgraph.RandomConnected(n, m, r, rng.New(seed))
	if err != nil {
		t.Fatalf("RandomConnected(%d,%d,%d): %v", n, m, r, err)
	}
	return g
}

func degreesOf(g *hsgraph.Graph) []int {
	out := make([]int, g.Switches())
	for s := range out {
		out[s] = g.Degree(s)
	}
	return out
}

func TestSwapPreservesStructure(t *testing.T) {
	g := randomGraph(t, 24, 8, 7, 1)
	rnd := rng.New(2)
	for i := 0; i < 200; i++ {
		before := g.Clone()
		degs := degreesOf(g)
		edges := g.NumEdges()
		u, ok := trySwap(g, rnd)
		if !ok {
			continue
		}
		if g.NumEdges() != edges {
			t.Fatal("swap changed edge count")
		}
		for s, d := range degreesOf(g) {
			if d != degs[s] {
				t.Fatalf("swap changed degree of switch %d: %d -> %d", s, degs[s], d)
			}
		}
		for h := 0; h < g.Order(); h++ {
			if g.SwitchOf(h) != before.SwitchOf(h) {
				t.Fatal("swap moved a host")
			}
		}
		if err := g.Validate(); err != nil && err != hsgraph.ErrNotConnected {
			t.Fatalf("swap broke invariants: %v", err)
		}
		// Undo must restore the labelled graph exactly.
		u()
		if !hsgraph.Equal(g, before) {
			t.Fatal("swap undo did not restore graph")
		}
	}
}

func TestSwingMovesOneHost(t *testing.T) {
	g := randomGraph(t, 24, 8, 7, 3)
	rnd := rng.New(4)
	moved := 0
	for i := 0; i < 200; i++ {
		before := g.Clone()
		u, ok := trySwing(g, rnd)
		if !ok {
			continue
		}
		moved++
		if g.NumEdges() != before.NumEdges() {
			t.Fatal("swing changed edge count")
		}
		// Exactly one host moved, k changes by +-1 on two switches.
		changedHosts := 0
		for h := 0; h < g.Order(); h++ {
			if g.SwitchOf(h) != before.SwitchOf(h) {
				changedHosts++
			}
		}
		if changedHosts != 1 {
			t.Fatalf("swing moved %d hosts, want 1", changedHosts)
		}
		plus, minus := 0, 0
		for s := 0; s < g.Switches(); s++ {
			switch g.HostCount(s) - before.HostCount(s) {
			case 1:
				plus++
			case -1:
				minus++
			case 0:
			default:
				t.Fatal("swing changed a host count by more than 1")
			}
			if g.Degree(s) != before.Degree(s) {
				t.Fatalf("swing changed total degree of switch %d", s)
			}
		}
		if plus != 1 || minus != 1 {
			t.Fatalf("swing host-count delta wrong: +%d/-%d", plus, minus)
		}
		u()
		if !hsgraph.Equal(g, before) {
			t.Fatal("swing undo did not restore graph")
		}
	}
	if moved == 0 {
		t.Fatal("no swing move ever applied")
	}
}

func TestApplySwingPreconditions(t *testing.T) {
	// Path 0-1-2, hosts on all switches.
	g, err := hsgraph.Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := applySwing(g, 0, 1, 0); ok {
		t.Fatal("swing with c == a accepted")
	}
	if _, ok := applySwing(g, 0, 1, 1); ok {
		t.Fatal("swing with c == b accepted")
	}
	if _, ok := applySwing(g, 0, 2, 1); ok {
		t.Fatal("swing on missing edge accepted")
	}
	// {a,c} already exists: a=1, b=0, c=2 -> new edge {1,2} exists.
	if _, ok := applySwing(g, 1, 0, 2); ok {
		t.Fatal("swing creating duplicate edge accepted")
	}
	// Valid: edge {0,1}, host on 2, new edge {0,2}.
	u, ok := applySwing(g, 0, 1, 2)
	if !ok {
		t.Fatal("valid swing rejected")
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 1) {
		t.Fatal("swing edges wrong")
	}
	if g.HostCount(1) != 3 || g.HostCount(2) != 1 {
		t.Fatalf("swing host counts wrong: %d, %d", g.HostCount(1), g.HostCount(2))
	}
	u()
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("undo failed")
	}
}

func TestSwingOnEmptySwitch(t *testing.T) {
	// Swing must refuse when c has no host.
	g := hsgraph.New(2, 3, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := applySwing(g, 1, 0, 2); ok {
		t.Fatal("swing with empty c accepted")
	}
}

func TestTwoNeighborSwingAlwaysReject(t *testing.T) {
	g := randomGraph(t, 24, 8, 7, 5)
	before := g.Clone()
	rnd := rng.New(6)
	reject := func() (int64, bool) { return g.Evaluate().TotalPath, false }
	for i := 0; i < 50; i++ {
		if _, moved := twoNeighborSwing(g, rnd, reject, &MoveCounters{}); moved {
			t.Fatal("move kept despite rejecting acceptor")
		}
		if !hsgraph.Equal(g, before) {
			t.Fatalf("iteration %d: graph changed after full rejection", i)
		}
	}
}

func TestTwoNeighborSwingAlwaysAccept(t *testing.T) {
	g := randomGraph(t, 24, 8, 7, 7)
	rnd := rng.New(8)
	accept := func() (int64, bool) { return g.Evaluate().TotalPath, true }
	kept := 0
	for i := 0; i < 50; i++ {
		if _, moved := twoNeighborSwing(g, rnd, accept, &MoveCounters{}); moved {
			kept++
		}
		if err := g.Validate(); err != nil && err != hsgraph.ErrNotConnected {
			t.Fatalf("invariants broken: %v", err)
		}
	}
	if kept == 0 {
		t.Fatal("no 2-neighbor swing ever kept")
	}
}

func TestTwoNeighborSwingSecondStepIsSwap(t *testing.T) {
	// With an acceptor that rejects the first candidate and accepts the
	// second, the net effect must preserve all host counts (a pure swap).
	g := randomGraph(t, 24, 8, 7, 9)
	rnd := rng.New(10)
	for i := 0; i < 100; i++ {
		before := g.Clone()
		calls := 0
		_, moved := twoNeighborSwing(g, rnd, func() (int64, bool) {
			calls++
			return g.Evaluate().TotalPath, calls == 2
		}, &MoveCounters{})
		if !moved {
			continue
		}
		if calls != 2 {
			t.Fatalf("expected two candidates, saw %d", calls)
		}
		for s := 0; s < g.Switches(); s++ {
			if g.HostCount(s) != before.HostCount(s) {
				t.Fatal("2-neighbor acceptance changed host counts (not a swap)")
			}
		}
		return
	}
	t.Skip("never reached a 2-neighbor acceptance in 100 tries")
}
