package opt

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestAnnealImproves(t *testing.T) {
	start := randomGraph(t, 64, 16, 8, 20)
	g, res, err := Anneal(start, Options{Iterations: 4000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("annealed graph invalid: %v", err)
	}
	if res.Best.TotalPath > res.Initial.TotalPath {
		t.Fatalf("annealing worsened energy: %d -> %d", res.Initial.TotalPath, res.Best.TotalPath)
	}
	if res.Best.HASPL < bounds.HASPLLowerBound(64, 8)-1e-9 {
		t.Fatalf("annealed h-ASPL %v beats Theorem 2 bound %v", res.Best.HASPL, bounds.HASPLLowerBound(64, 8))
	}
	if g.NumEdges() != start.NumEdges() {
		t.Fatal("edge count not preserved by annealing")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	start := randomGraph(t, 40, 10, 8, 30)
	o := Options{Iterations: 1500, Seed: 31}
	g1, r1, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2, err := Anneal(start, o)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(g1, g2) {
		t.Fatal("same seed produced different graphs")
	}
	if r1.Best.TotalPath != r2.Best.TotalPath || r1.Accepted != r2.Accepted {
		t.Fatalf("same seed produced different results: %+v vs %+v", r1, r2)
	}
}

func TestAnnealDoesNotMutateInput(t *testing.T) {
	start := randomGraph(t, 40, 10, 8, 32)
	snapshot := start.Clone()
	if _, _, err := Anneal(start, Options{Iterations: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(start, snapshot) {
		t.Fatal("Anneal mutated its input")
	}
}

func TestAnnealSwapOnlyKeepsRegularity(t *testing.T) {
	start, err := hsgraph.RandomRegular(48, 12, 8, 4, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Anneal(start, Options{Iterations: 2000, Seed: 34, Moves: SwapOnly})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.Switches(); s++ {
		if g.SwitchDegree(s) != 4 || g.HostCount(s) != 4 {
			t.Fatalf("switch %d not regular after swap-only SA: deg=%d hosts=%d", s, g.SwitchDegree(s), g.HostCount(s))
		}
	}
}

func TestAnnealSwingOnly(t *testing.T) {
	start := randomGraph(t, 48, 12, 8, 35)
	g, res, err := Anneal(start, Options{Iterations: 2000, Seed: 36, Moves: SwingOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Best.TotalPath > res.Initial.TotalPath {
		t.Fatal("swing-only SA worsened energy")
	}
}

func TestAnnealRejectsInvalidInput(t *testing.T) {
	if _, _, err := Anneal(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := hsgraph.New(2, 2, 3) // hosts unattached
	if _, _, err := Anneal(bad, Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
	g := randomGraph(t, 12, 4, 6, 1)
	if _, _, err := Anneal(g, Options{InitialTemp: 1, FinalTemp: 10}); err == nil {
		t.Fatal("inverted temperature range accepted")
	}
}

func TestAnnealProgressCallback(t *testing.T) {
	start := randomGraph(t, 24, 8, 7, 40)
	calls := 0
	_, _, err := Anneal(start, Options{
		Iterations:  1000,
		ReportEvery: 100,
		Seed:        41,
		OnProgress: func(iter int, cur, best int64) {
			calls++
			if best > cur {
				// best is a minimum over history; it may be below cur but
				// never above it at the instant of improvement; since cur
				// can regress at high temperature, only sanity-check sign.
				_ = cur
			}
			if iter%100 != 0 {
				t.Errorf("callback at iter %d not on boundary", iter)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("expected 10 progress calls, got %d", calls)
	}
}

func TestAnnealApproachesCliqueOptimum(t *testing.T) {
	// n=24, r=10: clique with m=3 achieves h-ASPL
	// (3*C(8,2)*2 + 3*64*3) / C(24,2) = 744/276.
	want := 744.0 / 276
	clique, err := Clique(24, 10)
	if err != nil {
		t.Fatal(err)
	}
	cm := clique.Evaluate()
	if math.Abs(cm.HASPL-want) > 1e-12 {
		t.Fatalf("clique h-ASPL = %v, want %v", cm.HASPL, want)
	}
	// SA from a random start with the same m must not beat the clique
	// (Theorem 3) and should get close.
	start := randomGraph(t, 24, 3, 10, 50)
	_, res, err := Anneal(start, Options{Iterations: 3000, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.HASPL < cm.HASPL-1e-9 {
		t.Fatalf("SA beat the provably optimal clique: %v < %v", res.Best.HASPL, cm.HASPL)
	}
	if res.Best.HASPL > cm.HASPL*1.10 {
		t.Fatalf("SA ended far from optimum: %v vs %v", res.Best.HASPL, cm.HASPL)
	}
}

func TestParallelAnneal(t *testing.T) {
	start := randomGraph(t, 40, 10, 8, 60)
	g1, r1, err := ParallelAnneal(start, Options{Iterations: 800, Seed: 61}, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2, err := ParallelAnneal(start, Options{Iterations: 800, Seed: 61}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(g1, g2) || r1.Best.TotalPath != r2.Best.TotalPath {
		t.Fatal("ParallelAnneal not deterministic")
	}
	// The multi-start winner can be no worse than a single run with the
	// same base seed.
	_, single, err := Anneal(start, Options{Iterations: 800, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.TotalPath > single.Best.TotalPath {
		t.Fatalf("multi-start worse than its own first seed: %d > %d", r1.Best.TotalPath, single.Best.TotalPath)
	}
}

func TestCliqueConstructions(t *testing.T) {
	// Section 5.3: n=128, r=24 admits a clique at m=8.
	g, err := Clique(128, 24)
	if err != nil {
		t.Fatal(err)
	}
	if g.Switches() != 8 {
		t.Fatalf("Clique(128,24) used %d switches, want 8", g.Switches())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	met := g.Evaluate()
	if met.HASPL >= 3 {
		t.Fatalf("clique h-ASPL %v should be below 3 (paper Fig. 5a discussion)", met.HASPL)
	}
	if _, err := Clique(1<<20, 24); err == nil {
		t.Fatal("impossible clique accepted")
	}
	if _, err := CliqueWith(128, 4, 24); err == nil {
		t.Fatal("undersized clique accepted (4*(24-3) = 84 < 128)")
	}
}

func TestMoveSetString(t *testing.T) {
	if SwapOnly.String() != "swap" || SwingOnly.String() != "swing" || TwoNeighborSwing.String() != "2-neighbor-swing" {
		t.Fatal("MoveSet strings wrong")
	}
	if MoveSet(99).String() == "" {
		t.Fatal("unknown move set produced empty string")
	}
}
