package opt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// degrade returns an annealed graph plus a link-failure degradation of it.
func degrade(t *testing.T, frac float64) (*hsgraph.Graph, *fault.Degraded) {
	t.Helper()
	start, err := hsgraph.RandomConnected(128, 32, 10, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Anneal(start, Options{Iterations: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.Sample(g, fault.UniformLinks, frac, 17)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fault.Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

// TestRepairRecoversLinkFailures is the acceptance property at test scale:
// after 5% random link failures, Repair must recover at least half of the
// h-ASPL degradation and must restore the link count (every freed port
// pair gets a spare cable).
func TestRepairRecoversLinkFailures(t *testing.T) {
	g, d := degrade(t, 0.05)
	pristine := g.Evaluate()
	repaired, res, err := Repair(d.Graph, nil, RepairOptions{Iterations: 2000, Seed: 5, MaxNewLinks: d.FailedLinks})
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired graph invalid: %v", err)
	}
	if !res.After.Connected {
		t.Fatalf("repair left the graph disconnected: %+v", res.After)
	}
	if repaired.NumEdges() != g.NumEdges() {
		t.Fatalf("repair restored %d links, pristine had %d", repaired.NumEdges(), g.NumEdges())
	}
	before := float64(res.Before.TotalPath) / float64(res.Before.ReachablePairs)
	degradation := before - pristine.HASPL
	recovery := before - res.After.HASPL
	if degradation <= 0 {
		t.Skipf("5%% failures did not degrade h-ASPL (%.4f -> %.4f)", pristine.HASPL, before)
	}
	if recovery < degradation/2 {
		t.Fatalf("repair recovered %.4f of %.4f degradation (< half): pristine %.4f degraded %.4f repaired %.4f",
			recovery, degradation, pristine.HASPL, before, res.After.HASPL)
	}
}

// TestRepairSwitchFailure: failed switches must stay dead, their hosts
// re-homed, and the result must be a valid connected graph.
func TestRepairSwitchFailure(t *testing.T) {
	g, err := hsgraph.RandomConnected(96, 24, 10, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.Sample(g, fault.UniformSwitches, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Switches) == 0 {
		t.Fatal("scenario failed no switches")
	}
	d, err := fault.Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	repaired, res, err := Repair(d.Graph, sc.Switches, RepairOptions{Iterations: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sc.Switches {
		if repaired.SwitchDegree(int(s)) != 0 || repaired.HostCount(int(s)) != 0 {
			t.Fatalf("failed switch %d was resurrected", s)
		}
	}
	if res.HostsReattached != len(d.DetachedHosts) {
		t.Fatalf("reattached %d of %d stranded hosts", res.HostsReattached, len(d.DetachedHosts))
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired graph invalid: %v", err)
	}
	if !res.After.Connected {
		t.Fatalf("repair left hosts unreachable: %+v", res.After)
	}
}

// TestRepairEvalModesBitIdentical is the differential contract for
// RepairOptions.Eval: the incremental evaluator returns bit-identical
// energies to the exact sharded sweep, so every accept decision, RNG
// draw, and therefore the repaired graph itself must match move for
// move. Ladder is accepted too and runs as incremental in the repair
// polish.
func TestRepairEvalModesBitIdentical(t *testing.T) {
	_, d := degrade(t, 0.08)
	base := RepairOptions{Iterations: 800, Seed: 21, MaxNewLinks: d.FailedLinks}

	exact, rExact, err := Repair(d.Graph, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []EvalMode{EvalIncremental, EvalLadder} {
		o := base
		o.Eval = mode
		g, r, err := Repair(d.Graph, nil, o)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r != rExact {
			t.Fatalf("%v: result diverged from exact: %+v vs %+v", mode, r, rExact)
		}
		if g.Fingerprint() != exact.Fingerprint() {
			t.Fatalf("%v: repaired graph diverged from exact", mode)
		}
	}
}

// TestRepairRejectsUnknownEvalMode pins input validation.
func TestRepairRejectsUnknownEvalMode(t *testing.T) {
	_, d := degrade(t, 0.02)
	if _, _, err := Repair(d.Graph, nil, RepairOptions{Eval: EvalMode(99)}); err == nil {
		t.Fatal("Repair accepted an unknown eval mode")
	}
}

// TestRepairDeterministic pins reproducibility.
func TestRepairDeterministic(t *testing.T) {
	_, d := degrade(t, 0.1)
	a, ra, err := Repair(d.Graph, nil, RepairOptions{Iterations: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Repair(d.Graph, nil, RepairOptions{Iterations: 500, Seed: 9, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ra.After != rb.After || a.NumEdges() != b.NumEdges() {
		t.Fatalf("repair not deterministic across worker counts: %+v vs %+v", ra, rb)
	}
	if ra.Before != d.Graph.Evaluate() {
		t.Fatal("Repair mutated its input")
	}
}
