package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// TestAnnealWorkerInvariance is the determinism guarantee of the sharded
// evaluation engine at the SA level: with a fixed seed, the accepted-move
// sequence — and hence the final graph, the acceptance counters and the
// final h-ASPL — must be identical whether each energy evaluation runs
// serially or sharded over any number of workers.
func TestAnnealWorkerInvariance(t *testing.T) {
	start := randomGraph(t, 96, 24, 8, 77)
	type outcome struct {
		g   *hsgraph.Graph
		res Result
	}
	var ref *outcome
	for _, workers := range []int{1, 4, 8} {
		g, res, err := Anneal(start, Options{Iterations: 1200, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = &outcome{g, res}
			continue
		}
		if !hsgraph.Equal(g, ref.g) {
			t.Fatalf("workers=%d produced a different graph than workers=1", workers)
		}
		if res.Accepted != ref.res.Accepted || res.Proposed != ref.res.Proposed {
			t.Fatalf("workers=%d accepted/proposed %d/%d, workers=1 %d/%d",
				workers, res.Accepted, res.Proposed, ref.res.Accepted, ref.res.Proposed)
		}
		if res.Best != ref.res.Best || res.Initial != ref.res.Initial {
			t.Fatalf("workers=%d metrics %+v diverged from %+v", workers, res.Best, ref.res.Best)
		}
	}
}

// TestParallelAnnealSeedSplitting guards the seed-splitting contract: a
// k-restart ParallelAnneal must return exactly the best of k independent
// Anneal runs with the derived seeds, and the winning graph must be the
// first run attaining that energy.
func TestParallelAnnealSeedSplitting(t *testing.T) {
	check := func(seed uint64) bool {
		start, err := hsgraph.RandomConnected(32, 9, 7, rng.New(seed))
		if err != nil {
			return false
		}
		o := Options{Iterations: 250, Seed: seed}
		const restarts = 3
		pg, pres, err := ParallelAnneal(start, o, restarts)
		if err != nil {
			return false
		}
		bestIdx, bestEnergy := -1, int64(0)
		var bestGraph *hsgraph.Graph
		for i := 0; i < restarts; i++ {
			oi := o
			oi.Seed = o.Seed + uint64(i)*0x9e3779b97f4a7c15
			g, res, err := Anneal(start, oi)
			if err != nil {
				return false
			}
			if bestIdx == -1 || res.Best.TotalPath < bestEnergy {
				bestIdx, bestEnergy, bestGraph = i, res.Best.TotalPath, g
			}
		}
		// No worse than the best independent run, and in fact identical
		// to it (same winner, same graph).
		if pres.Best.TotalPath > bestEnergy {
			return false
		}
		return pres.Best.TotalPath == bestEnergy && hsgraph.Equal(pg, bestGraph)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6, Rand: rand.New(rand.NewSource(4212))}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelAnnealSplitsWorkers sanity-checks the auto split: explicit
// worker counts pass through Anneal unchanged and still give the serial
// result (worker-invariance at the multi-start level).
func TestParallelAnnealSplitsWorkers(t *testing.T) {
	start := randomGraph(t, 40, 10, 8, 88)
	g1, r1, err := ParallelAnneal(start, Options{Iterations: 400, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2, err := ParallelAnneal(start, Options{Iterations: 400, Seed: 5, Workers: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(g1, g2) || r1.Best != r2.Best {
		t.Fatal("ParallelAnneal result depends on the worker split")
	}
}
