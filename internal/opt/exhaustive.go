package opt

import (
	"fmt"

	"repro/internal/hsgraph"
)

// ExhaustiveMinimum enumerates every host-switch graph with order n,
// radix r and 1..maxM switches (all host distributions × all switch-edge
// subsets, up to host relabeling within a switch) and returns one with
// the minimum h-ASPL. It is exponential in m and only sensible for tiny
// instances; the test suite uses it to verify Theorem 2's lower bound and
// the Appendix's clique-optimality claim (Theorem 3) against ground truth.
func ExhaustiveMinimum(n, r, maxM int) (*hsgraph.Graph, error) {
	if maxM < 1 || maxM > 6 {
		return nil, fmt.Errorf("opt: ExhaustiveMinimum supports maxM in [1,6], got %d", maxM)
	}
	var best *hsgraph.Graph
	var bestTotal int64 = 1 << 62
	for m := 1; m <= maxM; m++ {
		pairs := allPairs(m)
		// Enumerate edge subsets of the complete switch graph.
		for mask := 0; mask < 1<<len(pairs); mask++ {
			// Switch degrees under this edge set.
			deg := make([]int, m)
			for i, pr := range pairs {
				if mask&(1<<i) != 0 {
					deg[pr[0]]++
					deg[pr[1]]++
				}
			}
			ok := true
			free := 0
			for _, d := range deg {
				if d > r {
					ok = false
					break
				}
				free += r - d
			}
			if !ok || free < n {
				continue
			}
			// Enumerate host distributions k_0..k_{m-1} with sum n and
			// k_i <= r - deg[i].
			dist := make([]int, m)
			var rec func(i, left int)
			rec = func(i, left int) {
				if i == m-1 {
					if left > r-deg[i] {
						return
					}
					dist[i] = left
					evalCandidate(n, m, r, pairs, mask, dist, &best, &bestTotal)
					return
				}
				max := r - deg[i]
				if max > left {
					max = left
				}
				for k := 0; k <= max; k++ {
					dist[i] = k
					rec(i+1, left-k)
				}
			}
			rec(0, n)
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no connected host-switch graph exists for n=%d r=%d maxM=%d", n, r, maxM)
	}
	return best, nil
}

func allPairs(m int) [][2]int {
	var out [][2]int
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

func evalCandidate(n, m, r int, pairs [][2]int, mask int, dist []int, best **hsgraph.Graph, bestTotal *int64) {
	g := hsgraph.New(n, m, r)
	for i, pr := range pairs {
		if mask&(1<<i) != 0 {
			if err := g.Connect(pr[0], pr[1]); err != nil {
				return
			}
		}
	}
	h := 0
	for s, k := range dist {
		for j := 0; j < k; j++ {
			if err := g.AttachHost(h, s); err != nil {
				return
			}
			h++
		}
	}
	met := g.Evaluate()
	if !met.Connected {
		return
	}
	if met.TotalPath < *bestTotal {
		*bestTotal = met.TotalPath
		*best = g
	}
}
