package opt

import (
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// annealKind names the snapshot payload layout. Bump the suffix when the
// layout changes; old files are then rejected with a clear error instead
// of being misparsed. v2 added the evaluation mode and the ladder
// estimator's RNG stream; v3 added the symmetry order.
const annealKind = "orp.anneal.v3"

// Decode caps. A snapshot that claims more than these is corrupt (or
// hostile); reject before allocating. They comfortably exceed anything
// the annealer can produce (graphs are capped by hsgraph.MaxReadDim on
// the way back in).
const (
	maxCkptGraph = 1 << 27 // serialized graph text bytes
	maxCkptTrace = 1 << 20 // energy-trace samples
	maxCkptIters = 1 << 40 // iteration budget
)

// annealSnapshot is the decoded wire form of a snapshot: the resolved
// stream-defining options plus the loop state, with the two graphs still
// in their serialized text form.
type annealSnapshot struct {
	iterations     int
	moves          MoveSet
	schedule       Schedule
	initialTemp    float64
	finalTemp      float64
	seed           uint64
	reportEvery    int
	traceEnergy    bool
	energyTraceMax int
	restart        int
	eval           EvalMode
	symmetry       int

	iter               int
	temp               float64
	energy, bestEnergy int64
	rngState           [4]uint64
	// estRngState is the ladder estimator's stream; all-zero (and ignored)
	// outside EvalLadder.
	estRngState [4]uint64

	accepted, proposed int
	moveCounters       MoveCounters
	initial            hsgraph.Metrics

	traceBuf      []float64
	traceStride   int
	traceInterval int

	graphText, bestText []byte
}

// writeAnnealCheckpoint atomically persists the loop state to path.
func writeAnnealCheckpoint(path string, st *annealState, o *Options) error {
	var e ckpt.Enc
	e.Int(o.Iterations)
	e.Int(int(o.Moves))
	e.Int(int(o.Schedule))
	e.F64(o.InitialTemp)
	e.F64(o.FinalTemp)
	e.U64(o.Seed)
	e.Int(o.ReportEvery)
	e.Bool(o.TraceEnergy)
	e.Int(o.EnergyTraceMax)
	e.Int(o.restart)
	e.Int(int(o.Eval))
	// Symmetry is stored normalized (1 = generic): it selects the move
	// operators, so it is as stream-defining as the move set itself.
	sym := o.Symmetry
	if sym < 1 {
		sym = 1
	}
	e.Int(sym)

	e.Int(st.iter)
	e.F64(st.temp)
	e.I64(st.energy)
	e.I64(st.bestEnergy)
	for _, s := range st.rnd.State() {
		e.U64(s)
	}
	var estState [4]uint64
	if st.estRnd != nil {
		estState = st.estRnd.State()
	}
	for _, s := range estState {
		e.U64(s)
	}

	e.Int(st.res.Accepted)
	e.Int(st.res.Proposed)
	mc := &st.res.Moves
	for _, c := range []int64{mc.SwapAttempts, mc.SwapAccepts, mc.SwingAttempts,
		mc.SwingAccepts, mc.CounterAttempts, mc.CounterAccepts} {
		e.I64(c)
	}
	e.F64(st.res.Initial.HASPL)
	e.Int(st.res.Initial.Diameter)
	e.I64(st.res.Initial.TotalPath)
	e.Bool(st.res.Initial.Connected)
	e.I64(st.res.Initial.ReachablePairs)

	e.F64s(st.tel.buf)
	e.Int(st.tel.stride)
	e.Int(st.tel.interval)

	// Graphs go through the order-preserving state codec, not the
	// canonical text format: the move sampler is sensitive to edge-list,
	// adjacency and host-list ordering, which the text format discards —
	// a resume through it would fork the move stream (caught by
	// TestResumeDeterminismAfterInterrupt).
	e.Bytes(st.g.MarshalState())
	e.Bytes(st.best.MarshalState())

	if err := ckpt.WriteFile(path, annealKind, e.Finish()); err != nil {
		return fmt.Errorf("opt: checkpoint: %w", err)
	}
	return nil
}

// decodeAnnealSnapshot parses and sanity-checks a snapshot payload. It
// never panics on corrupt input and never hands back implausible values;
// the graphs are still unparsed bytes (see loadAnnealState).
func decodeAnnealSnapshot(payload []byte) (*annealSnapshot, error) {
	d := ckpt.NewDec(payload)
	s := &annealSnapshot{}
	s.iterations = d.Int()
	s.moves = MoveSet(d.Int())
	s.schedule = Schedule(d.Int())
	s.initialTemp = d.F64()
	s.finalTemp = d.F64()
	s.seed = d.U64()
	s.reportEvery = d.Int()
	s.traceEnergy = d.Bool()
	s.energyTraceMax = d.Int()
	s.restart = d.Int()
	s.eval = EvalMode(d.Int())
	s.symmetry = d.Int()

	s.iter = d.Int()
	s.temp = d.F64()
	s.energy = d.I64()
	s.bestEnergy = d.I64()
	for i := range s.rngState {
		s.rngState[i] = d.U64()
	}
	for i := range s.estRngState {
		s.estRngState[i] = d.U64()
	}

	s.accepted = d.Int()
	s.proposed = d.Int()
	mc := &s.moveCounters
	for _, c := range []*int64{&mc.SwapAttempts, &mc.SwapAccepts, &mc.SwingAttempts,
		&mc.SwingAccepts, &mc.CounterAttempts, &mc.CounterAccepts} {
		*c = d.I64()
	}
	s.initial.HASPL = d.F64()
	s.initial.Diameter = d.Int()
	s.initial.TotalPath = d.I64()
	s.initial.Connected = d.Bool()
	s.initial.ReachablePairs = d.I64()

	s.traceBuf = d.F64s(maxCkptTrace)
	s.traceStride = d.Int()
	s.traceInterval = d.Int()

	s.graphText = d.Bytes(maxCkptGraph)
	s.bestText = d.Bytes(maxCkptGraph)
	if err := d.Done(); err != nil {
		return nil, err
	}

	// Structural plausibility. Every violated line means the payload did
	// not come from writeAnnealCheckpoint, CRC notwithstanding.
	switch {
	case s.iterations <= 0 || s.iterations > maxCkptIters:
		return nil, fmt.Errorf("opt: checkpoint: implausible iteration budget %d", s.iterations)
	case s.iter < 0 || s.iter > s.iterations:
		return nil, fmt.Errorf("opt: checkpoint: iteration cursor %d outside budget %d", s.iter, s.iterations)
	case s.moves != SwapOnly && s.moves != SwingOnly && s.moves != TwoNeighborSwing:
		return nil, fmt.Errorf("opt: checkpoint: unknown move set %d", int(s.moves))
	case s.schedule != Geometric && s.schedule != Linear && s.schedule != HillClimb:
		return nil, fmt.Errorf("opt: checkpoint: unknown schedule %d", int(s.schedule))
	case s.reportEvery <= 0:
		return nil, fmt.Errorf("opt: checkpoint: non-positive ReportEvery %d", s.reportEvery)
	case !(s.initialTemp > 0) || math.IsInf(s.initialTemp, 0):
		return nil, fmt.Errorf("opt: checkpoint: invalid InitialTemp %v", s.initialTemp)
	case !(s.finalTemp > 0) || s.finalTemp > s.initialTemp:
		return nil, fmt.Errorf("opt: checkpoint: invalid FinalTemp %v (InitialTemp %v)", s.finalTemp, s.initialTemp)
	case !(s.temp >= 0) || math.IsInf(s.temp, 0):
		return nil, fmt.Errorf("opt: checkpoint: invalid temperature %v", s.temp)
	case s.energyTraceMax < 0:
		return nil, fmt.Errorf("opt: checkpoint: negative EnergyTraceMax %d", s.energyTraceMax)
	case s.traceStride < 1 || s.traceInterval < 0:
		return nil, fmt.Errorf("opt: checkpoint: invalid trace state stride=%d interval=%d", s.traceStride, s.traceInterval)
	case s.accepted < 0 || s.proposed < 0 || s.accepted > s.proposed:
		return nil, fmt.Errorf("opt: checkpoint: invalid move counts accepted=%d proposed=%d", s.accepted, s.proposed)
	case s.restart < 0:
		return nil, fmt.Errorf("opt: checkpoint: negative restart %d", s.restart)
	case s.eval != EvalExact && s.eval != EvalIncremental && s.eval != EvalLadder && s.eval != EvalSymmetric:
		return nil, fmt.Errorf("opt: checkpoint: unknown evaluation mode %d", int(s.eval))
	case s.eval == EvalLadder && s.estRngState == [4]uint64{}:
		return nil, fmt.Errorf("opt: checkpoint: ladder mode with empty estimator RNG state")
	case s.symmetry < 1:
		return nil, fmt.Errorf("opt: checkpoint: implausible symmetry order %d", s.symmetry)
	case s.eval == EvalSymmetric && s.symmetry < 2:
		return nil, fmt.Errorf("opt: checkpoint: symmetric evaluation mode with symmetry order %d", s.symmetry)
	}
	return s, nil
}

// CheckpointInfo is the metadata of an anneal snapshot, cheap to read
// (graphs are not parsed): where the run stood when it was taken.
type CheckpointInfo struct {
	Iter, Iterations int
	Restart          int
	Seed             uint64
	Temp             float64
	BestEnergy       int64
}

// ReadCheckpointInfo reads the metadata of the snapshot at path.
func ReadCheckpointInfo(path string) (CheckpointInfo, error) {
	kind, payload, err := ckpt.ReadFile(path)
	if err != nil {
		return CheckpointInfo{}, err
	}
	if kind != annealKind {
		return CheckpointInfo{}, fmt.Errorf("opt: checkpoint: kind %q is not %q", kind, annealKind)
	}
	s, err := decodeAnnealSnapshot(payload)
	if err != nil {
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{
		Iter: s.iter, Iterations: s.iterations, Restart: s.restart,
		Seed: s.seed, Temp: s.temp, BestEnergy: s.bestEnergy,
	}, nil
}

// loadAnnealState reads the snapshot at path, checks it against the
// caller's options (any non-zero stream-defining field must agree — a
// resume that silently used different parameters would break the
// determinism contract), parses and re-validates both graphs, and
// cross-checks the stored energies against a fresh evaluation so a
// logically corrupt snapshot cannot smuggle in a wrong graph. On success
// o's stream-defining fields hold the stored values.
func loadAnnealState(path string, o *Options, ev *hsgraph.Evaluator) (*annealState, error) {
	kind, payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("opt: resume %s: %w", path, err)
	}
	if kind != annealKind {
		return nil, fmt.Errorf("opt: resume %s: kind %q is not %q", path, kind, annealKind)
	}
	s, err := decodeAnnealSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("opt: resume %s: %w", path, err)
	}

	// Fingerprint check. Zero-valued caller fields mean "take the stored
	// value" (they are the documented "default" sentinels); anything the
	// caller set explicitly must match.
	mismatch := func(field string, stored, requested any) error {
		return fmt.Errorf("opt: resume %s: checkpoint has %s=%v but options request %v", path, field, stored, requested)
	}
	switch {
	case o.Iterations != 0 && o.Iterations != s.iterations:
		return nil, mismatch("Iterations", s.iterations, o.Iterations)
	case o.Moves != s.moves:
		return nil, mismatch("Moves", s.moves, o.Moves)
	case o.Schedule != s.schedule:
		return nil, mismatch("Schedule", s.schedule, o.Schedule)
	case o.Seed != s.seed:
		return nil, mismatch("Seed", s.seed, o.Seed)
	case o.InitialTemp != 0 && o.Schedule != HillClimb && o.InitialTemp != s.initialTemp:
		return nil, mismatch("InitialTemp", s.initialTemp, o.InitialTemp)
	case o.FinalTemp != 0 && o.Schedule != HillClimb && o.FinalTemp != s.finalTemp:
		return nil, mismatch("FinalTemp", s.finalTemp, o.FinalTemp)
	case o.ReportEvery != 0 && o.ReportEvery != s.reportEvery:
		return nil, mismatch("ReportEvery", s.reportEvery, o.ReportEvery)
	case o.TraceEnergy != s.traceEnergy:
		return nil, mismatch("TraceEnergy", s.traceEnergy, o.TraceEnergy)
	case o.EnergyTraceMax != 0 && o.EnergyTraceMax != s.energyTraceMax:
		return nil, mismatch("EnergyTraceMax", s.energyTraceMax, o.EnergyTraceMax)
	case o.restart != s.restart:
		return nil, mismatch("restart", s.restart, o.restart)
	case o.Eval != s.eval:
		return nil, mismatch("Eval", s.eval, o.Eval)
	case o.Symmetry > 1 && o.Symmetry != s.symmetry:
		return nil, mismatch("Symmetry", s.symmetry, o.Symmetry)
	case o.Symmetry <= 1 && o.Symmetry != 0 && s.symmetry > 1:
		// An explicit "no symmetry" request cannot resume a symmetric
		// stream; only the zero sentinel adopts the stored order.
		return nil, mismatch("Symmetry", s.symmetry, o.Symmetry)
	}
	o.Symmetry = s.symmetry
	o.Iterations = s.iterations
	o.InitialTemp, o.FinalTemp = s.initialTemp, s.finalTemp
	o.ReportEvery = s.reportEvery
	o.EnergyTraceMax = s.energyTraceMax

	g, err := readCheckpointGraph(s.graphText, "current", ev, s.energy)
	if err != nil {
		return nil, fmt.Errorf("opt: resume %s: %w", path, err)
	}
	best, err := readCheckpointGraph(s.bestText, "best", ev, s.bestEnergy)
	if err != nil {
		return nil, fmt.Errorf("opt: resume %s: %w", path, err)
	}
	if o.Symmetry > 1 {
		if err := hsgraph.VerifySymmetric(g, o.Symmetry); err != nil {
			return nil, fmt.Errorf("opt: resume %s: current graph: %w", path, err)
		}
		if err := hsgraph.VerifySymmetric(best, o.Symmetry); err != nil {
			return nil, fmt.Errorf("opt: resume %s: best graph: %w", path, err)
		}
	}
	rnd, err := rng.FromState(s.rngState)
	if err != nil {
		return nil, fmt.Errorf("opt: resume %s: %w", path, err)
	}
	var estRnd *rng.Rand
	if s.eval == EvalLadder {
		if estRnd, err = rng.FromState(s.estRngState); err != nil {
			return nil, fmt.Errorf("opt: resume %s: estimator stream: %w", path, err)
		}
	}

	st := &annealState{
		g: g, best: best,
		energy: s.energy, bestEnergy: s.bestEnergy,
		temp: s.temp, iter: s.iter, rnd: rnd, estRnd: estRnd,
		res: Result{
			Initial:     s.initial,
			Accepted:    s.accepted,
			Proposed:    s.proposed,
			Moves:       s.moveCounters,
			InitialTemp: s.initialTemp,
			FinalTemp:   s.finalTemp,
		},
		tel: telemetry{
			buf:      s.traceBuf,
			stride:   s.traceStride,
			interval: s.traceInterval,
		},
	}
	st.tel.init(*o)
	return st, nil
}

// readCheckpointGraph reconstructs one serialized graph (UnmarshalState
// fully validates it) and cross-checks its energy against the snapshot's
// claim.
func readCheckpointGraph(blob []byte, which string, ev *hsgraph.Evaluator, wantEnergy int64) (*hsgraph.Graph, error) {
	g, err := hsgraph.UnmarshalState(blob)
	if err != nil {
		return nil, fmt.Errorf("%s graph: %w", which, err)
	}
	energy, connected := ev.Energy(g)
	if !connected {
		return nil, fmt.Errorf("%s graph: %w", which, hsgraph.ErrNotConnected)
	}
	if energy != wantEnergy {
		return nil, fmt.Errorf("%s graph: stored energy %d disagrees with evaluation %d", which, wantEnergy, energy)
	}
	return g, nil
}
