package opt

import (
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// Symmetry-preserving move operators: each is the corresponding Fig. 2/3/4
// operation applied simultaneously to a whole orbit of the cyclic group
// action σ(s) = (s + m/sym) mod m — the base move plus its sym-1 images.
// A graph that enters sym-symmetric leaves sym-symmetric, which is what
// lets the orbit-quotient evaluators (hsgraph.OrbitEvaluator, orbit-mode
// IncrementalEvaluator) keep quotienting throughout an anneal.
//
// Pairs fixed by the half-turn σ^(sym/2) (endpoints m/2 apart, even sym
// only) have short orbits that the uniform image loop would double-touch;
// every operator rejects moves that would remove or create such an
// antipodal edge. Image applications that collide (an image of the added
// edge already present, a port filled by an earlier image) roll back the
// whole orbit and report failure, leaving the graph untouched.

// symAntipodal reports whether the switch pair {a, b} is fixed by the
// half-turn σ^(sym/2): |a-b| == m/2, possible only for even sym.
func symAntipodal(m, sym, a, b int) bool {
	if sym%2 != 0 {
		return false
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return 2*diff == m
}

// symEdit accumulates the undo closures of a partially applied orbit move
// so it can either roll back in place or hand the caller one combined undo.
type symEdit struct {
	g     *hsgraph.Graph
	sym   int
	undos []undo
}

// rollback reverses every applied step, most recent first.
func (se *symEdit) rollback() {
	for i := len(se.undos) - 1; i >= 0; i-- {
		se.undos[i]()
	}
	se.undos = se.undos[:0]
}

// undo packages the accumulated steps as one reversal closure.
func (se *symEdit) undo() undo {
	undos := se.undos
	return func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
}

// disconnectOrbit removes edge {a, b} and its images, recording undos.
// On a missing image it reports false with the partial steps still
// recorded (the caller rolls back).
func (se *symEdit) disconnectOrbit(a, b int) bool {
	m := se.g.Switches()
	q := m / se.sym
	for j := 0; j < se.sym; j++ {
		aj, bj := (a+j*q)%m, (b+j*q)%m
		if se.g.Disconnect(aj, bj) != nil {
			return false
		}
		se.undos = append(se.undos, func() { mustDo(se.g.Connect(aj, bj)) })
	}
	return true
}

// connectOrbit adds edge {a, b} and its images, recording undos.
func (se *symEdit) connectOrbit(a, b int) bool {
	m := se.g.Switches()
	q := m / se.sym
	for j := 0; j < se.sym; j++ {
		aj, bj := (a+j*q)%m, (b+j*q)%m
		if se.g.Connect(aj, bj) != nil {
			return false
		}
		se.undos = append(se.undos, func() { mustDo(se.g.Disconnect(aj, bj)) })
	}
	return true
}

// trySymSwap is trySwap under the group action: replace the edge orbits of
// {a,b}, {c,d} by those of {a,d}, {b,c}. Degrees and host attachments are
// untouched on every switch.
func trySymSwap(g *hsgraph.Graph, sym int, rnd *rng.Rand) (undo, bool) {
	ne := g.NumEdges()
	if ne < 2 {
		return nil, false
	}
	m := g.Switches()
	for attempt := 0; attempt < 8; attempt++ {
		i := rnd.Intn(ne)
		j := rnd.Intn(ne)
		if i == j {
			continue
		}
		a, b := g.Edge(i)
		c, d := g.Edge(j)
		if rnd.Intn(2) == 0 {
			c, d = d, c
		}
		if a == c || a == d || b == c || b == d {
			continue
		}
		if g.HasEdge(a, d) || g.HasEdge(b, c) {
			continue
		}
		if symAntipodal(m, sym, a, b) || symAntipodal(m, sym, c, d) ||
			symAntipodal(m, sym, a, d) || symAntipodal(m, sym, b, c) {
			continue
		}
		se := &symEdit{g: g, sym: sym}
		if se.disconnectOrbit(a, b) && se.disconnectOrbit(c, d) &&
			se.connectOrbit(a, d) && se.connectOrbit(b, c) {
			return se.undo(), true
		}
		se.rollback()
	}
	return nil, false
}

// applySymSwing performs swing(a, b, c) and its sym-1 images: every image
// edge {a_j, b_j} is rewired to {a_j, c_j} with one host moved from c_j to
// b_j, so host counts stay constant on every orbit. Fails (graph
// unchanged) on the standard swing preconditions, on antipodal {a,b} or
// {a,c}, and on any image collision.
func applySymSwing(g *hsgraph.Graph, sym, a, b, c int) (undo, bool) {
	m := g.Switches()
	if symAntipodal(m, sym, a, b) || symAntipodal(m, sym, a, c) {
		return nil, false
	}
	q := m / sym
	se := &symEdit{g: g, sym: sym}
	for j := 0; j < sym; j++ {
		aj, bj, cj := (a+j*q)%m, (b+j*q)%m, (c+j*q)%m
		u, ok := applySwing(g, aj, bj, cj)
		if !ok {
			se.rollback()
			return nil, false
		}
		se.undos = append(se.undos, u)
	}
	return se.undo(), true
}

// trySymSwing samples a random orbit swing.
func trySymSwing(g *hsgraph.Graph, sym int, rnd *rng.Rand) (undo, bool) {
	ne := g.NumEdges()
	m := g.Switches()
	if ne < 1 || m < 3 {
		return nil, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		a, b := g.Edge(rnd.Intn(ne))
		if rnd.Intn(2) == 0 {
			a, b = b, a
		}
		c := rnd.Intn(m)
		if u, ok := applySymSwing(g, sym, a, b, c); ok {
			return u, true
		}
	}
	return nil, false
}

// symTwoNeighborSwing is the 2-neighbor swing operation (Fig. 4) under the
// group action, mirroring twoNeighborSwing move for move with orbit-wide
// swings. decide and mc have the same contracts.
func symTwoNeighborSwing(g *hsgraph.Graph, sym int, rnd *rng.Rand,
	decide func() (int64, bool), mc *MoveCounters) (int64, bool) {

	ne := g.NumEdges()
	m := g.Switches()
	if ne < 1 || m < 3 {
		return 0, false
	}
	var a, b, c int
	var undo1 undo
	found := false
	for attempt := 0; attempt < 8 && !found; attempt++ {
		a, b = g.Edge(rnd.Intn(ne))
		if rnd.Intn(2) == 0 {
			a, b = b, a
		}
		c = rnd.Intn(m)
		if u, ok := applySymSwing(g, sym, a, b, c); ok {
			undo1, found = u, true
		}
	}
	if !found {
		return 0, false
	}
	mc.SwingAttempts++
	if e1, accepted := decide(); accepted {
		mc.SwingAccepts++
		return e1, true
	}
	// Step 3: the counter-swing swing(d, c, b) applied orbit-wide — the
	// base images put a host on every b_j, so each image's precondition
	// holds unless its own collision rolls the orbit back.
	neighbors := g.Neighbors(c)
	start := 0
	if len(neighbors) > 0 {
		start = rnd.Intn(len(neighbors))
	}
	for i := 0; i < len(neighbors); i++ {
		d := int(neighbors[(start+i)%len(neighbors)])
		if d == a || d == b {
			continue
		}
		undo2, ok := applySymSwing(g, sym, d, c, b)
		if !ok {
			continue
		}
		mc.CounterAttempts++
		if e2, accepted := decide(); accepted {
			mc.CounterAccepts++
			return e2, true
		}
		undo2()
		break // a single 2-neighbor candidate, as in the generic operator
	}
	undo1()
	return 0, false
}
