package opt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

func collectSpans(id string) (*obs.Tracer, func() []obs.Event) {
	var mu sync.Mutex
	var events []obs.Event
	tr := obs.NewTracer(id, time.Now(), func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	return tr, func() []obs.Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]obs.Event(nil), events...)
	}
}

func TestAnnealStageSpans(t *testing.T) {
	start := observerStart(t)
	tr, drain := collectSpans("run-1")
	root := tr.Root("solve")
	if _, _, err := Anneal(start, Options{Iterations: 400, Seed: 3, Span: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	roots := obs.BuildSpanTrees(drain())
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	names := map[string]*obs.SpanNode{}
	for _, c := range roots[0].Children {
		names[c.Name] = c
	}
	for _, want := range []string{"anneal.init", "anneal.loop", "anneal.final-eval"} {
		if names[want] == nil {
			t.Fatalf("missing stage span %q, have %v", want, roots[0].Children)
		}
	}
	loop := names["anneal.loop"]
	if loop.S["outcome"] != "done" {
		t.Fatalf("loop outcome %q, want done", loop.S["outcome"])
	}
	if loop.F["iter"] != 400 {
		t.Fatalf("loop iter %v, want 400", loop.F["iter"])
	}
}

func TestAnnealInterruptSpanOutcome(t *testing.T) {
	start := observerStart(t)
	tr, drain := collectSpans("run-int")
	root := tr.Root("solve")
	var stop atomic.Bool
	stop.Store(true) // interrupt fires on the first durability check
	_, _, err := Anneal(start, Options{
		Iterations: 5000,
		Seed:       3,
		Span:       root,
		Interrupt:  &stop,
	})
	if !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	root.End()
	roots := obs.BuildSpanTrees(drain())
	var loop *obs.SpanNode
	for _, c := range roots[0].Children {
		if c.Name == "anneal.loop" {
			loop = c
		}
	}
	if loop == nil || loop.S["outcome"] != "interrupted" {
		t.Fatalf("interrupted run's loop span: %+v", loop)
	}
}

func TestParallelAnnealRestartSpans(t *testing.T) {
	start := observerStart(t)
	tr, drain := collectSpans("run-par")
	root := tr.Root("solve")
	if _, _, err := ParallelAnneal(start, Options{
		Iterations: 300, Seed: 5, Workers: 1, Span: root,
	}, 3); err != nil {
		t.Fatal(err)
	}
	root.End()
	roots := obs.BuildSpanTrees(drain())
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	restarts := map[float64]bool{}
	for _, c := range roots[0].Children {
		if c.Name != "anneal.restart" {
			t.Fatalf("unexpected child %q", c.Name)
		}
		if c.S["outcome"] != "done" {
			t.Fatalf("restart outcome %q", c.S["outcome"])
		}
		restarts[c.F["restart"]] = true
		// Every restart nests the full stage sequence.
		var loop bool
		for _, cc := range c.Children {
			loop = loop || cc.Name == "anneal.loop"
		}
		if !loop {
			t.Fatalf("restart without a loop span: %+v", c.Children)
		}
	}
	if len(restarts) != 3 {
		t.Fatalf("restart indices %v, want 3 distinct", restarts)
	}
}

// TestSpanPathBoundedAllocs pins the span layer's cost model: stage spans
// allocate per stage, never per iteration. The traced 800-iteration run
// may allocate a fixed handful more than the untraced one (a few spans,
// their attribute maps and emitted events), but anything growing with the
// iteration count would blow far past the bound.
func TestSpanPathBoundedAllocs(t *testing.T) {
	start := observerStart(t)
	run := func(span *obs.Span) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, _, err := Anneal(start, Options{
				Iterations: 800,
				Seed:       11,
				Span:       span,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(nil)
	tr := obs.NewTracer("alloc", time.Now(), func(obs.Event) {})
	root := tr.Root("solve")
	defer root.End()
	traced := run(root)
	if traced-base > 100 {
		t.Errorf("span path allocates per iteration: nil=%v traced=%v", base, traced)
	}
}

func TestLadderSampleCarriesEvalStats(t *testing.T) {
	start := observerStart(t)
	var last AnnealSample
	_, _, err := Anneal(start, Options{
		Iterations:  2000,
		ReportEvery: 500,
		Seed:        7,
		Eval:        EvalLadder,
		Observer:    ObserverFunc(func(s AnnealSample) { last = s }),
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := last.Eval
	decisions := ev.BoundDecided + ev.Escalated + ev.Unbounded
	if decisions == 0 {
		t.Fatal("ladder run reported no rung decisions")
	}
	if ev.BoundDecided == 0 {
		t.Errorf("sampled bound never decided a candidate: %+v", ev)
	}
	if ev.Inc.Estimates == 0 {
		t.Errorf("incremental cache reported no estimates: %+v", ev.Inc)
	}
	if r := ev.EscalationRate(); r < 0 || r > 1 {
		t.Errorf("escalation rate %v out of [0,1]", r)
	}

	// Exact mode carries a zero snapshot.
	var exact AnnealSample
	if _, _, err := Anneal(start, Options{
		Iterations:  500,
		ReportEvery: 500,
		Seed:        7,
		Observer:    ObserverFunc(func(s AnnealSample) { exact = s }),
	}); err != nil {
		t.Fatal(err)
	}
	if exact.Eval != (EvalStats{}) {
		t.Errorf("exact mode leaked eval stats: %+v", exact.Eval)
	}

	// Incremental mode has no rung decisions but does report cache work.
	var inc AnnealSample
	if _, _, err := Anneal(start, Options{
		Iterations:  500,
		ReportEvery: 500,
		Seed:        7,
		Eval:        EvalIncremental,
		Observer:    ObserverFunc(func(s AnnealSample) { inc = s }),
	}); err != nil {
		t.Fatal(err)
	}
	if inc.Eval.Inc.Peeks == 0 {
		t.Errorf("incremental mode reported no peeks: %+v", inc.Eval.Inc)
	}
	if inc.Eval.BoundDecided != 0 || inc.Eval.Escalated != 0 {
		t.Errorf("incremental mode counted rung decisions: %+v", inc.Eval)
	}
}
