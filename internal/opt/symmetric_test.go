package opt

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/topo"
)

// symStart returns the canonical symmetric test instance: the same shape
// as randomGraph(48, 12, 8, ...) but closed under a cyclic action of
// order 4.
func symStart(t *testing.T, sym int, seed uint64) *hsgraph.Graph {
	t.Helper()
	g, err := topo.RandomSymmetric(48, 12, 8, sym, seed)
	if err != nil {
		t.Fatalf("RandomSymmetric: %v", err)
	}
	return g
}

// symRunWithTrajectory is runWithTrajectory over a symmetric start.
func symRunWithTrajectory(t *testing.T, start *hsgraph.Graph, o Options, seed uint64) ([]byte, Result, []progressPoint) {
	t.Helper()
	var traj []progressPoint
	o.Seed = seed
	o.ReportEvery = 1
	o.OnProgress = func(iter int, current, best int64) {
		traj = append(traj, progressPoint{iter, current, best})
	}
	g, res, err := Anneal(start.Clone(), o)
	if err != nil {
		t.Fatal(err)
	}
	return graphBytes(t, g), res, traj
}

// TestSymmetricEvalModesProduceIdenticalRuns extends the ladder's
// headline property to symmetric runs: with Options.Symmetry set, every
// rung — exact, incremental, ladder and the orbit-quotient symmetric mode
// — produces the identical accepted-move sequence, Result and best graph,
// at every worker count.
func TestSymmetricEvalModesProduceIdenticalRuns(t *testing.T) {
	cases := []struct {
		name  string
		sym   int
		moves MoveSet
		iters int
	}{
		{"2ns-sym4", 4, TwoNeighborSwing, 400},
		{"swap-sym4", 4, SwapOnly, 400},
		{"swing-sym4", 4, SwingOnly, 300},
		{"2ns-sym3", 3, TwoNeighborSwing, 300},
		{"2ns-sym2", 2, TwoNeighborSwing, 300},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		start := symStart(t, tc.sym, 5)
		base := Options{Iterations: tc.iters, Moves: tc.moves, Symmetry: tc.sym}
		exactO := base
		exactO.Eval = EvalExact
		wantG, wantRes, wantTraj := symRunWithTrajectory(t, start, exactO, 7)
		for _, mode := range []EvalMode{EvalIncremental, EvalLadder, EvalSymmetric} {
			for _, workers := range []int{1, 3} {
				o := base
				o.Eval = mode
				o.Workers = workers
				gotG, gotRes, gotTraj := symRunWithTrajectory(t, start, o, 7)
				ctx := tc.name + "/" + mode.String()
				if !bytes.Equal(wantG, gotG) {
					t.Fatalf("%s workers=%d: best graphs differ from exact mode", ctx, workers)
				}
				gotRes.Eval = EvalStats{} // diagnostics differ by mode by design
				if !reflect.DeepEqual(wantRes, gotRes) {
					t.Fatalf("%s workers=%d: results differ:\nexact %+v\ngot   %+v", ctx, workers, wantRes, gotRes)
				}
				if !reflect.DeepEqual(wantTraj, gotTraj) {
					for i := range wantTraj {
						if i < len(gotTraj) && wantTraj[i] != gotTraj[i] {
							t.Fatalf("%s workers=%d: trajectories fork at iteration %d: exact %+v, got %+v",
								ctx, workers, wantTraj[i].iter, wantTraj[i], gotTraj[i])
						}
					}
					t.Fatalf("%s workers=%d: trajectory lengths differ: %d vs %d", ctx, workers, len(wantTraj), len(gotTraj))
				}
			}
		}
		// The whole run stayed inside the symmetric subspace.
		g, _, err := Anneal(start.Clone(), exactO)
		if err != nil {
			t.Fatal(err)
		}
		if err := hsgraph.VerifySymmetric(g, tc.sym); err != nil {
			t.Fatalf("%s: best graph left the symmetric subspace: %v", tc.name, err)
		}
	}
}

// TestSymmetricKillResume: a symmetric-mode run interrupted at an
// arbitrary iteration and resumed from its v3 snapshot — including with a
// different worker count — is bit-identical to the uninterrupted run.
func TestSymmetricKillResume(t *testing.T) {
	const sym = 4
	start := symStart(t, sym, 5)
	o := ckptBaseOptions()
	o.Eval = EvalSymmetric
	o.Symmetry = sym
	wantG, wantRes, err := Anneal(start.Clone(), o)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		killAt, killWorkers, resumeWorkers int
	}{
		{1, 1, 2},
		{137, 1, 3},
		{517, 3, 1},
		{799, 2, 2},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "symmetric.ckpt")
		var stop atomic.Bool
		ko := ckptBaseOptions()
		ko.Eval = EvalSymmetric
		ko.Symmetry = sym
		ko.CheckpointPath = path
		ko.CheckpointEvery = 100
		ko.Interrupt = &stop
		ko.Workers = tc.killWorkers
		ko.OnProgress = func(iter int, current, best int64) {
			if iter == tc.killAt {
				stop.Store(true)
			}
		}
		if _, _, err := Anneal(start.Clone(), ko); !errors.Is(err, ckpt.ErrInterrupted) {
			t.Fatalf("killAt=%d: want ErrInterrupted, got %v", tc.killAt, err)
		}

		ro := ckptBaseOptions()
		ro.Eval = EvalSymmetric
		ro.Symmetry = sym
		ro.CheckpointPath = path
		ro.Resume = true
		ro.Workers = tc.resumeWorkers
		gotG, gotRes, err := Anneal(start.Clone(), ro)
		if err != nil {
			t.Fatalf("killAt=%d: resume: %v", tc.killAt, err)
		}
		requireIdentical(t, wantG, gotG, wantRes, gotRes)
	}
}

// TestResumeFingerprintsSymmetry: the symmetry order is as
// stream-defining as the move set, so the v3 snapshot fingerprints it.
// A mismatched explicit order refuses to resume; the zero sentinel adopts
// the stored order and reproduces the uninterrupted run bit-identically.
func TestResumeFingerprintsSymmetry(t *testing.T) {
	const sym = 4
	start := symStart(t, sym, 5)

	// Uninterrupted reference: symmetric moves on the generic ladder rung
	// (so the resume-side Eval can stay EvalLadder while Symmetry varies).
	o := ckptBaseOptions()
	o.Eval = EvalLadder
	o.Symmetry = sym
	wantG, wantRes, err := Anneal(start.Clone(), o)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted half.
	path := filepath.Join(t.TempDir(), "sym.ckpt")
	var stop atomic.Bool
	ko := ckptBaseOptions()
	ko.Eval = EvalLadder
	ko.Symmetry = sym
	ko.CheckpointPath = path
	ko.CheckpointEvery = 100
	ko.Interrupt = &stop
	ko.OnProgress = func(iter int, current, best int64) {
		if iter == 300 {
			stop.Store(true)
		}
	}
	if _, _, err := Anneal(start.Clone(), ko); !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}

	resume := func(symmetry int) (*hsgraph.Graph, Result, error) {
		ro := ckptBaseOptions()
		ro.Eval = EvalLadder
		ro.Symmetry = symmetry
		ro.CheckpointPath = path
		ro.Resume = true
		return Anneal(start.Clone(), ro)
	}
	if _, _, err := resume(2); err == nil || !strings.Contains(err.Error(), "ymmetr") {
		t.Fatalf("resume with Symmetry=2 against a sym-4 stream: want fingerprint error, got %v", err)
	}
	if _, _, err := resume(1); err == nil || !strings.Contains(err.Error(), "ymmetr") {
		t.Fatalf("resume with explicit Symmetry=1 against a sym-4 stream: want fingerprint error, got %v", err)
	}
	gotG, gotRes, err := resume(0) // zero sentinel: adopt the stored order
	if err != nil {
		t.Fatalf("resume with Symmetry=0 sentinel: %v", err)
	}
	requireIdentical(t, wantG, gotG, wantRes, gotRes)

	// The reverse direction: a generic stream cannot grow a symmetry.
	gpath := filepath.Join(t.TempDir(), "generic.ckpt")
	go2 := ckptBaseOptions()
	go2.CheckpointPath = gpath
	go2.CheckpointEvery = 100
	if _, _, err := Anneal(randomGraph(t, 48, 12, 8, 5), go2); err != nil {
		t.Fatal(err)
	}
	ro := ckptBaseOptions()
	ro.Symmetry = sym
	ro.CheckpointPath = gpath
	ro.Resume = true
	if _, _, err := Anneal(start.Clone(), ro); err == nil || !strings.Contains(err.Error(), "ymmetr") {
		t.Fatalf("resume generic stream with Symmetry=%d: want fingerprint error, got %v", sym, err)
	}
}

// TestSymmetricMovesPreserveSymmetry pins the move operators directly:
// every applied symmetric move keeps the graph inside the symmetric
// subspace with the edge count (swap) and degree profile intact, and its
// undo restores the exact previous graph.
func TestSymmetricMovesPreserveSymmetry(t *testing.T) {
	const sym = 4
	g := symStart(t, sym, 9)
	rnd := rng.New(3)
	swaps := 0
	for i := 0; i < 300; i++ {
		before := g.Fingerprint()
		edges := g.NumEdges()
		u, ok := trySymSwap(g, sym, rnd)
		if !ok {
			continue
		}
		swaps++
		if g.NumEdges() != edges {
			t.Fatalf("iteration %d: symmetric swap changed the edge count", i)
		}
		if err := hsgraph.VerifySymmetric(g, sym); err != nil {
			t.Fatalf("iteration %d: symmetric swap broke the symmetry: %v", i, err)
		}
		if i%2 == 0 {
			u()
			if g.Fingerprint() != before {
				t.Fatalf("iteration %d: undo did not restore the graph", i)
			}
		}
	}
	if swaps < 50 {
		t.Fatalf("only %d symmetric swaps applied in 300 attempts", swaps)
	}

	swings := 0
	for i := 0; i < 300; i++ {
		before := g.Fingerprint()
		u, ok := trySymSwing(g, sym, rnd)
		if !ok {
			continue
		}
		swings++
		if err := hsgraph.VerifySymmetric(g, sym); err != nil {
			t.Fatalf("iteration %d: symmetric swing broke the symmetry: %v", i, err)
		}
		if i%2 == 0 {
			u()
			if g.Fingerprint() != before {
				t.Fatalf("iteration %d: swing undo did not restore the graph", i)
			}
		}
	}
	if swings < 20 {
		t.Fatalf("only %d symmetric swings applied in 300 attempts", swings)
	}

	var mc MoveCounters
	accepts := 0
	for i := 0; i < 200; i++ {
		_, moved := symTwoNeighborSwing(g, sym, rnd, func() (int64, bool) {
			return 0, rnd.Intn(2) == 0
		}, &mc)
		if moved {
			accepts++
		}
		if err := hsgraph.VerifySymmetric(g, sym); err != nil {
			t.Fatalf("iteration %d: symmetric 2-neighbor swing broke the symmetry: %v", i, err)
		}
	}
	if accepts == 0 || mc.SwingAttempts == 0 {
		t.Fatalf("symmetric 2-neighbor swing never moved (accepts=%d, attempts=%d)", accepts, mc.SwingAttempts)
	}
}

// TestSymmetryOptionValidation pins the documented error paths of the
// Symmetry option.
func TestSymmetryOptionValidation(t *testing.T) {
	start := randomGraph(t, 24, 8, 7, 1)
	if _, _, err := Anneal(start, Options{Iterations: 1, Symmetry: -1}); err == nil || !strings.Contains(err.Error(), "Symmetry") {
		t.Fatalf("negative Symmetry: want error, got %v", err)
	}
	if _, _, err := Anneal(start, Options{Iterations: 1, Eval: EvalSymmetric, Symmetry: 1}); err == nil || !strings.Contains(err.Error(), "Symmetry") {
		t.Fatalf("EvalSymmetric without Symmetry: want error, got %v", err)
	}
	// A start graph outside the symmetric subspace is rejected up front.
	if _, _, err := Anneal(start, Options{Iterations: 1, Symmetry: 2}); err == nil || !strings.Contains(err.Error(), "ymmetr") {
		t.Fatalf("asymmetric start with Symmetry=2: want error, got %v", err)
	}
}

// TestAnnealRefusesOversizedIncrementalGraphs pins the documented error
// that replaced the silent attach-time panic: every cache-backed rung
// refuses graphs beyond hsgraph.MaxIncrementalSwitches and points at
// EvalExact.
func TestAnnealRefusesOversizedIncrementalGraphs(t *testing.T) {
	m := hsgraph.MaxIncrementalSwitches + 1 // 20001 = 3 * 59 * 113
	g := hsgraph.New(2, m, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m; s++ {
		if err := g.Connect(s, (s+1)%m); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		mode EvalMode
		sym  int
	}{
		{EvalIncremental, 0},
		{EvalLadder, 0},
		{EvalSymmetric, 3}, // 3 divides 20001; the size check still fires first
	} {
		_, _, err := Anneal(g, Options{Iterations: 1, Eval: tc.mode, Symmetry: tc.sym, Seed: 1})
		if err == nil || !strings.Contains(err.Error(), "EvalExact") {
			t.Fatalf("%v on %d switches: want documented cache-size error, got %v", tc.mode, m, err)
		}
	}
}
