package opt

import (
	"fmt"
	"math"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// RepairOptions configures Repair.
type RepairOptions struct {
	// Iterations is the length of the focused anneal (default 4000) —
	// deliberately short: the greedy phase does the structural work and
	// the anneal only polishes the neighbourhood of the failures.
	Iterations int
	// Seed drives all randomness; equal inputs and seeds give equal
	// outputs.
	Seed uint64
	// Workers is the evaluator shard count (see hsgraph.Evaluator).
	Workers int
	// InitialTemp overrides the warm-start temperature. Zero calibrates
	// to a tenth of the classic mean-|delta| estimate: the repair starts
	// from a near-optimal graph, so it must not random-walk away from it.
	InitialTemp float64
	// MaxNewLinks caps the spare cables installed in the greedy phase,
	// so a repair cannot out-cable the pristine deployment (ports freed
	// before the failure stay free). Values <= 0 mean no cap beyond the
	// radix budget. Callers repairing a fault.Degraded typically pass
	// its FailedLinks count.
	MaxNewLinks int
	// Eval selects the evaluation rung of the warm-start anneal (see
	// EvalMode). EvalExact (the default) pays a full sharded sweep per
	// candidate swap; EvalIncremental re-sweeps only the dirty sources
	// through hsgraph.IncrementalEvaluator — bit-identical energies, so
	// the repaired graph is identical move for move. EvalLadder is
	// accepted and runs as EvalIncremental: the repair polish is too
	// short and too cold for the sampled-bound rung to pay for its
	// estimator stream.
	Eval EvalMode
}

// RepairResult summarises a repair run.
type RepairResult struct {
	Before hsgraph.Metrics // metrics of the degraded input
	After  hsgraph.Metrics // metrics of the repaired graph

	HostsReattached int // detached hosts re-homed onto surviving switches
	LinksAdded      int // spare cables installed across freed ports
	Accepted        int // anneal moves kept
	Proposed        int // anneal moves evaluated
}

// Repair re-optimises a degraded host-switch graph around its failures
// under the radix budget, without resurrecting failed components: switches
// listed in down keep zero links and zero hosts. The repair has three
// phases — reattach stranded hosts to surviving free ports, greedily
// recable freed ports (connecting the most distant port pairs first, which
// also reconnects split components), then a short warm-start anneal whose
// swap moves are restricted to edges touching the affected switches. The
// input graph is not modified.
func Repair(degraded *hsgraph.Graph, down []int32, o RepairOptions) (*hsgraph.Graph, RepairResult, error) {
	if degraded == nil {
		return nil, RepairResult{}, fmt.Errorf("opt: nil degraded graph")
	}
	switch o.Eval {
	case EvalExact, EvalIncremental, EvalLadder:
	default:
		return nil, RepairResult{}, fmt.Errorf("opt: unknown evaluation mode %v", o.Eval)
	}
	if o.Iterations == 0 {
		o.Iterations = 4000
	}
	g := degraded.Clone()
	m := g.Switches()
	isDown := make([]bool, m)
	for _, s := range down {
		if s < 0 || int(s) >= m {
			return nil, RepairResult{}, fmt.Errorf("opt: failed switch %d out of range", s)
		}
		isDown[s] = true
	}
	rnd := rng.New(o.Seed)
	ev := hsgraph.NewEvaluator(o.Workers)
	defer ev.Close()
	res := RepairResult{Before: ev.Evaluate(degraded)}

	// The anneal later focuses on switches whose neighbourhood the repair
	// touched; start from the switches that lost capacity.
	affected := make([]bool, m)
	markAffected := func(s int) {
		if !affected[s] {
			affected[s] = true
		}
	}
	for s := 0; s < m; s++ {
		if isDown[s] {
			continue
		}
		if g.Degree(s) < degraded.Radix() {
			markAffected(s) // has a freed port: lost a link or a host
		}
	}

	// Phase 1: reattach stranded hosts, spreading them across the
	// surviving switches with the most free ports.
	for h := 0; h < g.Order(); h++ {
		if g.SwitchOf(h) != -1 {
			continue
		}
		best, bestFree := -1, 0
		for s := 0; s < m; s++ {
			if isDown[s] {
				continue
			}
			if free := g.Radix() - g.Degree(s); free > bestFree {
				best, bestFree = s, free
			}
		}
		if best == -1 {
			break // no ports anywhere; remaining hosts stay stranded
		}
		if err := g.AttachHost(h, best); err != nil {
			return nil, RepairResult{}, err
		}
		markAffected(best)
		res.HostsReattached++
	}

	// Phase 2: greedy recabling. Repeatedly connect the two free-port
	// switches at maximal switch-graph distance (disconnected pairs count
	// as infinitely far), so spare cables bridge components first and
	// shortcut the longest detours second.
	dist := make([]int32, m)
	queue := make([]int32, 0, m)
	for o.MaxNewLinks <= 0 || res.LinksAdded < o.MaxNewLinks {
		free := freePortSwitches(g, isDown)
		a, b := farthestPair(g, free, dist, queue)
		if a == -1 {
			break
		}
		if err := g.Connect(a, b); err != nil {
			return nil, RepairResult{}, err
		}
		markAffected(a)
		markAffected(b)
		res.LinksAdded++
	}

	// Phase 3: focused warm-start anneal. Swap moves must touch at least
	// one affected switch; the rest of the (near-optimal) graph is left
	// alone. Temperature starts low — this is a polish, not a search.
	//
	// Candidate energies come from the mode-selected evaluator. The
	// incremental evaluator returns bit-identical energies to the exact
	// sharded sweep, so the accept decisions, RNG draw pattern and
	// repaired graph are identical across modes — only the cost per
	// candidate changes. Rejected candidates peek without committing
	// distance rows, so their rollback is free.
	var inc *hsgraph.IncrementalEvaluator
	if o.Eval != EvalExact {
		inc = hsgraph.NewIncrementalEvaluator(o.Workers)
	}
	candEnergy := func() (int64, bool) {
		if inc == nil {
			return ev.Energy(g)
		}
		e, connected, ok := inc.PeekEnergy(g)
		if !ok {
			e, connected = inc.Energy(g)
		}
		return e, connected
	}
	var energy int64
	var connected bool
	if inc == nil {
		energy, connected = ev.Energy(g)
	} else {
		energy, connected = inc.Energy(g)
	}
	if !connected {
		energy = math.MaxInt64
	}
	best := g.Clone()
	bestEnergy := energy

	temp := o.InitialTemp
	if temp == 0 {
		temp = calibrateTemp(g, SwapOnly, 1, rnd.Split(), ev) / 10
	}
	if temp <= 0 {
		temp = 1
	}
	finalTemp := temp / 50
	cool := math.Pow(finalTemp/temp, 1/math.Max(1, float64(o.Iterations-1)))

	for iter := 0; iter < o.Iterations; iter++ {
		u, ok := tryFocusedSwap(g, rnd, affected)
		if !ok {
			continue
		}
		res.Proposed++
		cand, connected := candEnergy()
		accept := false
		if connected {
			delta := cand - energy
			if energy == math.MaxInt64 {
				accept = true // any connected state beats disconnection
			} else if delta <= 0 {
				accept = true
			} else {
				accept = rnd.Float64() < math.Exp(-float64(delta)/temp)
			}
		}
		if accept {
			if inc != nil {
				inc.Energy(g) // commit the peeked rows into the cache
			}
			energy = cand
			res.Accepted++
			if energy < bestEnergy {
				bestEnergy = energy
				best = g.Clone()
			}
		} else {
			u()
		}
		temp *= cool
	}
	res.After = ev.Evaluate(best)
	return best, res, nil
}

// freePortSwitches lists surviving switches with at least one free port.
func freePortSwitches(g *hsgraph.Graph, isDown []bool) []int {
	var free []int
	for s := 0; s < g.Switches(); s++ {
		if !isDown[s] && g.Degree(s) < g.Radix() {
			free = append(free, s)
		}
	}
	return free
}

// farthestPair returns the non-adjacent pair of free-port switches at
// maximal switch-graph distance, preferring disconnected pairs. Returns
// (-1, -1) when no connectable pair remains.
func farthestPair(g *hsgraph.Graph, free []int, dist []int32, queue []int32) (int, int) {
	bestA, bestB := -1, -1
	bestD := int32(-2) // any valid pair beats this; disconnected pairs score MaxInt32
	for i, a := range free {
		bfsSwitch(g, a, dist, queue)
		for _, b := range free[i+1:] {
			if g.HasEdge(a, b) {
				continue
			}
			d := dist[b]
			if d < 0 {
				d = math.MaxInt32
			}
			if d > bestD {
				bestA, bestB, bestD = a, b, d
			}
		}
	}
	return bestA, bestB
}

// bfsSwitch fills dist with BFS distances from s (-1 unreachable).
func bfsSwitch(g *hsgraph.Graph, s int, dist []int32, queue []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue = append(queue[:0], int32(s))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
}

// tryFocusedSwap is trySwap with the first edge restricted (by rejection
// sampling) to edges incident to an affected switch, so the anneal only
// rewires the failure neighbourhood.
func tryFocusedSwap(g *hsgraph.Graph, rnd *rng.Rand, affected []bool) (undo, bool) {
	ne := g.NumEdges()
	if ne < 2 {
		return nil, false
	}
	for attempt := 0; attempt < 16; attempt++ {
		a, b := g.Edge(rnd.Intn(ne))
		if !affected[a] && !affected[b] {
			continue
		}
		c, d := g.Edge(rnd.Intn(ne))
		if rnd.Intn(2) == 0 {
			c, d = d, c
		}
		if a == c || a == d || b == c || b == d {
			continue
		}
		if g.HasEdge(a, d) || g.HasEdge(b, c) {
			continue
		}
		mustDo(g.Disconnect(a, b))
		mustDo(g.Disconnect(c, d))
		mustDo(g.Connect(a, d))
		mustDo(g.Connect(b, c))
		return func() {
			mustDo(g.Disconnect(a, d))
			mustDo(g.Disconnect(b, c))
			mustDo(g.Connect(a, b))
			mustDo(g.Connect(c, d))
		}, true
	}
	return nil, false
}
