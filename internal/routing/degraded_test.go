package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// TestFailoverShortestPath: after link failures that keep the graph
// connected, every pair stays routable, stretch is >= 1, and the degraded
// table is minimal on the degraded graph.
func TestFailoverShortestPath(t *testing.T) {
	g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.Sample(g, fault.UniformLinks, 0.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fault.Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Graph.Evaluate().Connected {
		t.Skip("scenario disconnected the graph; covered by TestFailoverLostPairs")
	}
	table, rep, err := Failover(g, d.Graph, ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPairs != 0 {
		t.Fatalf("connected degraded graph lost %d pairs", rep.LostPairs)
	}
	if rep.MeanStretch < 1 || rep.MaxStretch < rep.MeanStretch {
		t.Fatalf("implausible stretch: %+v", rep)
	}
	ddist := d.Graph.SwitchDistances()
	for s := 0; s < d.Graph.Switches(); s++ {
		for dd := 0; dd < d.Graph.Switches(); dd++ {
			if s == dd || ddist[s][dd] < 0 {
				continue
			}
			if pl := table.PathLen(s, dd); pl != int(ddist[s][dd]) {
				t.Fatalf("degraded table not minimal on %d->%d: %d vs %d", s, dd, pl, ddist[s][dd])
			}
		}
	}
	// Zero-failure failover must be stretch-1 with no changed routes.
	_, rep0, err := Failover(g, g, ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.MeanStretch != 1 || rep0.MaxStretch != 1 || rep0.ChangedRoutes != 0 || rep0.LostPairs != 0 {
		t.Fatalf("identity failover not a no-op: %+v", rep0)
	}
}

// TestFailoverLostPairs: cutting a bridge strands pairs and the report
// counts them.
func TestFailoverLostPairs(t *testing.T) {
	// Path of 4 switches, one host each: cutting the middle edge loses
	// the 4 ordered cross pairs (2 hosts each side).
	g := hsgraph.New(4, 4, 4)
	for h := 0; h < 4; h++ {
		if err := g.AttachHost(h, h); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 3; s++ {
		if err := g.Connect(s, s+1); err != nil {
			t.Fatal(err)
		}
	}
	d, err := fault.Apply(g, fault.Scenario{Links: [][2]int32{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Failover(g, d.Graph, ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered host-bearing pairs across the cut: 2x2 each direction = 8.
	if rep.LostPairs != 8 {
		t.Fatalf("lost %d pairs, want 8", rep.LostPairs)
	}
	if rep.RoutedPairs != 4 { // (0,1) and (2,3) in both directions
		t.Fatalf("routed %d pairs, want 4", rep.RoutedPairs)
	}
}

// TestFailoverUpDown: up*/down* recomputation on a connected degraded
// graph stays deadlock-free.
func TestFailoverUpDown(t *testing.T) {
	g, err := hsgraph.RandomConnected(48, 12, 8, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var d *fault.Degraded
	for seed := uint64(0); ; seed++ {
		sc, err := fault.Sample(g, fault.UniformLinks, 0.08, seed)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := fault.Apply(g, sc)
		if err != nil {
			t.Fatal(err)
		}
		if dd.Graph.Evaluate().Connected {
			d = dd
			break
		}
		if seed > 50 {
			t.Fatal("no connected degradation found")
		}
	}
	table, rep, err := Failover(g, d.Graph, UpDown)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPairs != 0 {
		t.Fatalf("up*/down* lost %d pairs on a connected graph", rep.LostPairs)
	}
	free, err := DeadlockFree(d.Graph, table)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Fatal("recomputed up*/down* table not deadlock-free")
	}
}
