package routing

import (
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/topo"
)

func TestShortestPathTableMinimal(t *testing.T) {
	g, err := hsgraph.RandomConnected(24, 8, 7, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ShortestPath(g)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.SwitchDistances()
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			if pl := tab.PathLen(s, d); pl != int(dist[s][d]) {
				t.Fatalf("shortest-path table gives %d hops for (%d,%d), want %d", pl, s, d, dist[s][d])
			}
		}
	}
	mean, max, err := Stretch(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 1 || max != 1 {
		t.Fatalf("minimal routing has stretch %v/%v", mean, max)
	}
}

func TestUpDownRoutesEverything(t *testing.T) {
	g, err := hsgraph.RandomConnected(40, 12, 7, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := UpDown(g)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 12; s++ {
		for d := 0; d < 12; d++ {
			if s == d {
				continue
			}
			if tab.PathLen(s, d) < 0 {
				t.Fatalf("up*/down* cannot route (%d,%d)", s, d)
			}
		}
	}
}

func TestUpDownIsDeadlockFree(t *testing.T) {
	fixtures := []*hsgraph.Graph{}
	g1, err := hsgraph.Ring(12, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, g1)
	g2, err := hsgraph.RandomConnected(40, 12, 7, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, g2)
	sp, err := topo.Dragonfly(4)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := sp.Build(36)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, g3)
	for i, g := range fixtures {
		tab, err := UpDown(g)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		free, err := DeadlockFree(g, tab)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if !free {
			t.Fatalf("fixture %d: up*/down* produced a cyclic CDG", i)
		}
	}
}

func TestShortestPathRingHasCycle(t *testing.T) {
	// Minimal routing on a 6-ring creates a cyclic channel dependency
	// (each switch forwards two hops around the ring).
	g, err := hsgraph.Ring(12, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ShortestPath(g)
	if err != nil {
		t.Fatal(err)
	}
	free, err := DeadlockFree(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("minimal routing on a ring reported deadlock-free")
	}
}

func TestShortestPathTreeIsDeadlockFree(t *testing.T) {
	// Trees have no cycles at all, so even minimal routing is safe.
	g, err := hsgraph.Path(12, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ShortestPath(g)
	if err != nil {
		t.Fatal(err)
	}
	free, err := DeadlockFree(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Fatal("tree routing reported deadlocking")
	}
}

func TestUpDownStretchBounded(t *testing.T) {
	g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := UpDown(g)
	if err != nil {
		t.Fatal(err)
	}
	mean, max, err := Stretch(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 1 || max < mean {
		t.Fatalf("implausible stretch: mean %v max %v", mean, max)
	}
	if mean > 2.5 {
		t.Fatalf("up*/down* stretch too high on a small graph: %v", mean)
	}
}

func TestUpDownOnFatTreeIsMinimal(t *testing.T) {
	// A fat-tree is itself an up/down structure: up*/down* routing over
	// it should be (close to) minimal.
	sp, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := UpDown(g)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := Stretch(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if mean > 1.35 {
		t.Fatalf("up*/down* mean stretch on fat-tree = %v, expected near 1", mean)
	}
	free, err := DeadlockFree(g, tab)
	if err != nil || !free {
		t.Fatalf("fat-tree up*/down* not deadlock-free: %v %v", free, err)
	}
}

func TestPathHelpers(t *testing.T) {
	g, err := hsgraph.Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ShortestPath(g)
	if err != nil {
		t.Fatal(err)
	}
	p := tab.Path(0, 2)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("Path(0,2) = %v", p)
	}
	if q := tab.Path(1, 1); len(q) != 1 {
		t.Fatalf("self path = %v", q)
	}
	if tab.PathLen(2, 2) != 0 {
		t.Fatal("self path length nonzero")
	}
}

func TestDeterministicTables(t *testing.T) {
	g, err := hsgraph.RandomConnected(40, 12, 7, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := UpDown(g)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := UpDown(g)
	if err != nil {
		t.Fatal(err)
	}
	for s := range t1.Next {
		for d := range t1.Next[s] {
			if t1.Next[s][d] != t2.Next[s][d] {
				t.Fatal("UpDown table not deterministic")
			}
		}
	}
}
