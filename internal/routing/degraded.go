package routing

import (
	"fmt"

	"repro/internal/hsgraph"
)

// FailoverReport compares routing on a degraded graph against minimal
// routing on the pristine graph it was derived from: how many host-bearing
// pairs survive, how many are lost, and how much longer the surviving
// routes got (path stretch after failure, measured against the pristine
// minimal distance — so it folds together the topological detour and any
// non-minimality of the routing function itself).
type FailoverReport struct {
	RoutedPairs   int     // ordered host-bearing switch pairs routable after the failure
	LostPairs     int     // pairs routable before but not after (detached or unreachable)
	ChangedRoutes int     // surviving pairs whose switch path changed
	MeanStretch   float64 // mean degraded-path-len / pristine-distance over surviving pairs
	MaxStretch    float64
}

// Failover recomputes a routing table on the degraded graph with the given
// builder (ShortestPath or UpDown) and measures path stretch after failure
// relative to the pristine graph. The two graphs must have the same switch
// count — degraded is expected to come from package fault, which preserves
// switch indices. Builders that cannot tolerate disconnection (UpDown)
// propagate their error.
func Failover(pristine, degraded *hsgraph.Graph,
	build func(*hsgraph.Graph) (*Table, error)) (*Table, FailoverReport, error) {

	if pristine.Switches() != degraded.Switches() {
		return nil, FailoverReport{}, fmt.Errorf(
			"routing: switch count mismatch %d vs %d", pristine.Switches(), degraded.Switches())
	}
	table, err := build(degraded)
	if err != nil {
		return nil, FailoverReport{}, err
	}
	base, err := ShortestPath(pristine)
	if err != nil {
		return nil, FailoverReport{}, err
	}
	rep := FailoverReport{}
	distBefore := pristine.SwitchDistances()
	m := pristine.Switches()
	var sum float64
	for s := 0; s < m; s++ {
		if pristine.HostCount(s) == 0 {
			continue
		}
		for d := 0; d < m; d++ {
			if d == s || pristine.HostCount(d) == 0 || distBefore[s][d] <= 0 {
				continue
			}
			// The pair existed before the failure; does it survive?
			if degraded.HostCount(s) == 0 || degraded.HostCount(d) == 0 {
				rep.LostPairs++ // an endpoint switch lost its hosts
				continue
			}
			pl := table.PathLen(s, d)
			if pl < 0 {
				rep.LostPairs++
				continue
			}
			rep.RoutedPairs++
			ratio := float64(pl) / float64(distBefore[s][d])
			sum += ratio
			if ratio > rep.MaxStretch {
				rep.MaxStretch = ratio
			}
			if !samePath(base, table, s, d) {
				rep.ChangedRoutes++
			}
		}
	}
	if rep.RoutedPairs > 0 {
		rep.MeanStretch = sum / float64(rep.RoutedPairs)
	}
	return table, rep, nil
}

// samePath reports whether two tables route s -> d over the same switch
// sequence.
func samePath(a, b *Table, s, d int) bool {
	pa, pb := a.Path(s, d), b.Path(s, d)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}
