// Package routing provides topology-agnostic deterministic routing
// algorithms for host-switch graphs and the channel-dependency-graph
// (CDG) analysis that decides whether a routing function is deadlock-free
// (Dally & Seitz). The paper's related work (its reference [14], a survey
// of topology-agnostic deterministic routing) motivates this: irregular
// low-h-ASPL topologies need such algorithms in practice because pure
// shortest-path routing can deadlock wormhole/virtual-cut-through
// networks without extra virtual channels.
//
// Two routing functions are provided:
//
//   - ShortestPath: minimal routing with deterministic lowest-index
//     tie-break (what the simulator uses); may contain CDG cycles.
//   - UpDown: the classic up*/down* routing over a BFS spanning tree:
//     provably deadlock-free, possibly non-minimal.
//
// Stretch reports how much path length up*/down* sacrifices for
// deadlock freedom on a given topology.
package routing

import (
	"fmt"
	"sort"

	"repro/internal/hsgraph"
)

// sortedNeighbors returns the neighbours of s in ascending order, making
// every BFS in this package fully deterministic with lowest-index
// preference.
func sortedNeighbors(g *hsgraph.Graph, s int) []int32 {
	ns := append([]int32(nil), g.Neighbors(s)...)
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Table is a per-pair next-hop routing table over switches: Next[s][d] is
// the neighbour of switch s on the route towards switch d (or -1 when
// s == d or unreachable).
type Table struct {
	Next [][]int32
}

// PathLen returns the number of switch-switch hops from s to d following
// the table, or -1 on a routing loop / unreachable pair.
func (t *Table) PathLen(s, d int) int {
	if s == d {
		return 0
	}
	hops := 0
	cur := s
	limit := len(t.Next) + 1
	for cur != d {
		next := t.Next[cur][d]
		if next < 0 || hops > limit {
			return -1
		}
		cur = int(next)
		hops++
	}
	return hops
}

// Path returns the switch sequence from s to d (inclusive), or nil on
// failure.
func (t *Table) Path(s, d int) []int {
	if s == d {
		return []int{s}
	}
	out := []int{s}
	cur := s
	limit := len(t.Next) + 1
	for cur != d {
		next := t.Next[cur][d]
		if next < 0 || len(out) > limit {
			return nil
		}
		cur = int(next)
		out = append(out, cur)
	}
	return out
}

// ShortestPath builds a minimal routing table with lowest-index next-hop
// tie-breaks.
func ShortestPath(g *hsgraph.Graph) (*Table, error) {
	m := g.Switches()
	dist := g.SwitchDistances()
	t := &Table{Next: make([][]int32, m)}
	for s := 0; s < m; s++ {
		t.Next[s] = make([]int32, m)
		for d := 0; d < m; d++ {
			t.Next[s][d] = -1
			if s == d || dist[s][d] < 0 {
				continue
			}
			best := int32(-1)
			for _, u := range g.Neighbors(s) {
				if dist[u][d] == dist[s][d]-1 && (best == -1 || u < best) {
					best = u
				}
			}
			t.Next[s][d] = best
		}
	}
	return t, nil
}

// UpDown builds up*/down* routing: a BFS spanning tree is rooted at the
// switch of lowest index with maximal degree; every link gets an
// orientation ("up" towards the root: lower BFS level, ties by lower
// index). A legal path uses zero or more up links followed by zero or
// more down links, which provably breaks all CDG cycles. Among legal
// paths the shortest is chosen (lowest-index tie-break).
func UpDown(g *hsgraph.Graph) (*Table, error) {
	m := g.Switches()
	root := 0
	for s := 1; s < m; s++ {
		if g.Degree(s) > g.Degree(root) {
			root = s
		}
	}
	level := make([]int32, m)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []int32{int32(root)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range sortedNeighbors(g, int(v)) {
			if level[u] == -1 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	for s := 0; s < m; s++ {
		if level[s] == -1 && (g.HostCount(s) > 0 || g.SwitchDegree(s) > 0) {
			return nil, fmt.Errorf("routing: switch %d unreachable from root %d", s, root)
		}
	}
	// isUp(a, b): does a -> b traverse an up link?
	isUp := func(a, b int32) bool {
		if level[a] != level[b] {
			return level[b] < level[a]
		}
		return b < a
	}
	// Distances under the up*/down* constraint via BFS per destination on
	// the state graph (switch, phase) where phase 0 = still going up,
	// phase 1 = going down. We BFS *backwards* from each destination d:
	// easier forwards per source? m BFS runs forwards per source over 2m
	// states gives next hops directly.
	t := &Table{Next: make([][]int32, m)}
	for s := 0; s < m; s++ {
		t.Next[s] = make([]int32, m)
		for d := 0; d < m; d++ {
			t.Next[s][d] = -1
		}
	}
	type state struct {
		sw    int32
		phase int8
	}
	for src := 0; src < m; src++ {
		// BFS over states from (src, up-phase).
		dist := make([]int32, 2*m)
		parentFirst := make([]int32, 2*m) // first hop switch from src, -1 unset
		for i := range dist {
			dist[i] = -1
			parentFirst[i] = -1
		}
		idx := func(st state) int { return int(st.sw)*2 + int(st.phase) }
		start := state{int32(src), 0}
		dist[idx(start)] = 0
		q := []state{start}
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for _, u := range sortedNeighbors(g, int(cur.sw)) {
				up := isUp(cur.sw, u)
				var nxt state
				switch {
				case cur.phase == 0 && up:
					nxt = state{u, 0}
				case cur.phase == 0 && !up:
					nxt = state{u, 1}
				case cur.phase == 1 && !up:
					nxt = state{u, 1}
				default:
					continue // down then up: illegal
				}
				if dist[idx(nxt)] != -1 {
					continue
				}
				dist[idx(nxt)] = dist[idx(cur)] + 1
				if cur.sw == int32(src) {
					parentFirst[idx(nxt)] = u
				} else {
					parentFirst[idx(nxt)] = parentFirst[idx(cur)]
				}
				q = append(q, nxt)
			}
		}
		for d := 0; d < m; d++ {
			if d == src {
				continue
			}
			// Best of the two phases at destination d.
			du, dd := dist[d*2], dist[d*2+1]
			var first int32 = -1
			switch {
			case du >= 0 && (dd < 0 || du <= dd):
				first = parentFirst[d*2]
			case dd >= 0:
				first = parentFirst[d*2+1]
			}
			t.Next[src][d] = first
		}
	}
	return t, nil
}

// Stretch compares a routing table's path lengths with minimal distances:
// it returns the mean and maximum ratio over host-bearing switch pairs.
func Stretch(g *hsgraph.Graph, t *Table) (mean, max float64, err error) {
	dist := g.SwitchDistances()
	m := g.Switches()
	var sum float64
	count := 0
	for s := 0; s < m; s++ {
		if g.HostCount(s) == 0 {
			continue
		}
		for d := 0; d < m; d++ {
			if d == s || g.HostCount(d) == 0 {
				continue
			}
			if dist[s][d] <= 0 {
				continue
			}
			pl := t.PathLen(s, d)
			if pl < 0 {
				return 0, 0, fmt.Errorf("routing: table cannot route %d -> %d", s, d)
			}
			ratio := float64(pl) / float64(dist[s][d])
			sum += ratio
			if ratio > max {
				max = ratio
			}
			count++
		}
	}
	if count == 0 {
		return 1, 1, nil
	}
	return sum / float64(count), max, nil
}

// DeadlockFree reports whether the routing function induces an acyclic
// channel dependency graph. Channels are directed switch-switch links;
// routing path (a, b, c) adds the dependency (a->b) => (b->c). Cycle
// detection is a DFS three-colouring.
func DeadlockFree(g *hsgraph.Graph, t *Table) (bool, error) {
	m := g.Switches()
	chanID := map[[2]int32]int32{}
	var chans [][2]int32
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		for _, dir := range [][2]int32{{int32(a), int32(b)}, {int32(b), int32(a)}} {
			chanID[dir] = int32(len(chans))
			chans = append(chans, dir)
		}
	}
	adj := make([][]int32, len(chans))
	seen := make(map[[2]int32]bool)
	addDep := func(c1, c2 int32) {
		key := [2]int32{c1, c2}
		if !seen[key] {
			seen[key] = true
			adj[c1] = append(adj[c1], c2)
		}
	}
	for s := 0; s < m; s++ {
		for d := 0; d < m; d++ {
			if s == d || t.Next[s][d] < 0 {
				continue
			}
			path := t.Path(s, d)
			if path == nil {
				return false, fmt.Errorf("routing: loop on pair (%d,%d)", s, d)
			}
			for i := 0; i+2 < len(path); i++ {
				c1, ok1 := chanID[[2]int32{int32(path[i]), int32(path[i+1])}]
				c2, ok2 := chanID[[2]int32{int32(path[i+1]), int32(path[i+2])}]
				if !ok1 || !ok2 {
					return false, fmt.Errorf("routing: path uses nonexistent link")
				}
				addDep(c1, c2)
			}
		}
	}
	// DFS cycle detection.
	color := make([]int8, len(chans)) // 0 white, 1 grey, 2 black
	for start := range chans {
		if color[start] != 0 {
			continue
		}
		// Iterative DFS with explicit post-processing.
		type frame struct {
			node int32
			next int
		}
		frames := []frame{{int32(start), 0}}
		color[start] = 1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(adj[f.node]) {
				u := adj[f.node][f.next]
				f.next++
				switch color[u] {
				case 1:
					return false, nil // grey edge: cycle
				case 0:
					color[u] = 1
					frames = append(frames, frame{u, 0})
				}
			} else {
				color[f.node] = 2
				frames = frames[:len(frames)-1]
			}
		}
	}
	return true, nil
}
