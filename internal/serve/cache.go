package serve

import (
	"container/list"
	"encoding/json"
	"sync"
)

// resultCache is the content-addressed result store: canonical job key
// (see JobSpec.cacheKey) → the marshaled result JSON of the job that
// first answered it. Storing the bytes rather than the value is the
// byte-identity contract: a cache hit replays exactly the payload the
// original job produced, immune to map iteration order, float
// formatting or schema drift between marshal calls.
//
// Eviction is LRU over entry count. Entries are immutable once
// inserted; Get returns the stored slice (callers must not mutate it —
// everything downstream only writes it to an http.ResponseWriter or
// embeds it as json.RawMessage).
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element
}

type cacheEntry struct {
	key    string
	result json.RawMessage
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the stored result bytes and marks the entry recently used.
func (c *resultCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores result under key. A racing duplicate insert keeps the
// first entry (both racers computed the same deterministic result, but
// keeping one canonical byte slice preserves byte-identity regardless).
func (c *resultCache) Put(key string, result json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, result: result})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the live entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
