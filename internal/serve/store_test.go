package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/runstore"
)

// submitDone submits spec and waits for completion.
func submitDone(t *testing.T, s *Server, spec JobSpec) JobStatus {
	t.Helper()
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s: state %s err %q", st.ID, st.State, st.Error)
	}
	return st
}

// TestRestartWarmCache is the restart-warm invariant: a query served by
// one process is answered byte-identically by a fresh process pointed at
// the same -store dir, without re-running the engine.
func TestRestartWarmCache(t *testing.T) {
	storeDir := t.TempDir()
	spec := JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7}
	anneal := JobSpec{Type: TypeAnneal, N: 32, R: 4, Iterations: 300, Seed: 11}

	s1 := testServer(t, Config{Workers: 2, StoreDir: storeDir})
	cold := submitDone(t, s1, spec)
	coldAnneal := submitDone(t, s1, anneal)
	if cold.Cached || coldAnneal.Cached {
		t.Fatal("first submissions claim cache hits")
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close first server: %v", err)
	}

	s2 := testServer(t, Config{Workers: 2, StoreDir: storeDir})
	warm := submitDone(t, s2, spec)
	if !warm.Cached {
		t.Fatal("restart-warm submission was not served from the store")
	}
	if !bytes.Equal(warm.Result, cold.Result) {
		t.Fatalf("restart-warm reply differs:\n cold %s\n warm %s", cold.Result, warm.Result)
	}
	warmAnneal := submitDone(t, s2, anneal)
	if !warmAnneal.Cached || !bytes.Equal(warmAnneal.Result, coldAnneal.Result) {
		t.Fatal("anneal result not byte-identical across restart")
	}

	// The warm hit was re-promoted into the in-memory LRU: the next
	// lookup hits memory, not the store.
	if hits := s2.met.storeHits.Value(); hits != 2 {
		t.Fatalf("store hits = %v, want 2", hits)
	}
	again := submitDone(t, s2, spec)
	if !again.Cached || !bytes.Equal(again.Result, cold.Result) {
		t.Fatal("re-promoted entry not served from memory cache")
	}
	if hits := s2.met.storeHits.Value(); hits != 2 {
		t.Fatalf("store consulted again after re-promotion: hits = %v", hits)
	}
}

// TestEvictionThenStoreReServe covers the cache-eviction × persistence
// interaction: a result evicted from the 1-entry LRU is re-served
// byte-identically from the store and re-promoted.
func TestEvictionThenStoreReServe(t *testing.T) {
	s := testServer(t, Config{Workers: 2, CacheSize: 1, StoreDir: t.TempDir()})
	specA := JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 1}
	specB := JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 2}

	a1 := submitDone(t, s, specA)
	submitDone(t, s, specB) // evicts A from the 1-entry LRU

	a2 := submitDone(t, s, specA)
	if !a2.Cached {
		t.Fatal("evicted-but-stored result not served as a hit")
	}
	if !bytes.Equal(a2.Result, a1.Result) {
		t.Fatalf("evicted result not byte-identical:\n first %s\n again %s", a1.Result, a2.Result)
	}
	if hits := s.met.storeHits.Value(); hits != 1 {
		t.Fatalf("store hits = %v, want 1", hits)
	}
	// Re-promotion: A is back in the LRU, so an immediate repeat stays
	// in memory.
	a3 := submitDone(t, s, specA)
	if !a3.Cached || !bytes.Equal(a3.Result, a1.Result) {
		t.Fatal("re-promoted result wrong")
	}
	if hits := s.met.storeHits.Value(); hits != 1 {
		t.Fatalf("re-promoted lookup went to the store: hits = %v", hits)
	}
}

// TestEvictionStoreReServeConcurrent drives the eviction/fall-through
// path from many goroutines so -race can see into it.
func TestEvictionStoreReServeConcurrent(t *testing.T) {
	s := testServer(t, Config{Workers: 4, CacheSize: 1, StoreDir: t.TempDir()})
	specs := []JobSpec{
		{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 1},
		{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 2},
		{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 3},
	}
	want := make([][]byte, len(specs))
	for i, sp := range specs {
		want[i] = submitDone(t, s, sp).Result
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (w + i) % len(specs)
				st, err := s.Submit(specs[k])
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if !st.Cached || !bytes.Equal(st.Result, want[k]) {
					t.Errorf("spec %d: cached=%v, byte-identity=%v",
						k, st.Cached, bytes.Equal(st.Result, want[k]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRecordsWrittenForCompletedJobs(t *testing.T) {
	storeDir := t.TempDir()
	s := testServer(t, Config{Workers: 2, StoreDir: storeDir})
	submitDone(t, s, JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7})
	// >= opt's default ReportEvery (1000) so the energy trace has samples.
	submitDone(t, s, JobSpec{Type: TypeAnneal, N: 32, R: 4, Iterations: 2000, Seed: 5})
	submitDone(t, s, JobSpec{Type: TypeSweep, N: 48, M: 16, R: 6, GraphSeed: 7,
		Trials: 2, Fractions: []float64{0.05}})
	// A cache hit is not a new run and must not append a record.
	hit := submitDone(t, s, JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7})
	if !hit.Cached {
		t.Fatal("expected a cache hit")
	}
	s.Close()

	store, err := runstore.OpenRead(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	recs := store.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	kinds := map[string]runstore.Record{}
	for _, r := range recs {
		kinds[r.Kind] = r
		if r.Tool != "orpd" {
			t.Errorf("record %s: tool %q", r.ID, r.Tool)
		}
		if r.Key == "" || r.Fingerprint == "" {
			t.Errorf("record %s: missing key/fingerprint", r.ID)
		}
		if r.N != 48 && r.N != 32 {
			t.Errorf("record %s: n = %d", r.ID, r.N)
		}
		if !r.Metrics.Connected || r.Metrics.HASPL <= 0 {
			t.Errorf("record %s: implausible metrics %+v", r.ID, r.Metrics)
		}
		if r.WallSeconds <= 0 {
			t.Errorf("record %s: wall %v", r.ID, r.WallSeconds)
		}
		if len(r.Result) == 0 {
			t.Errorf("record %s: no result bytes", r.ID)
		}
		if len(r.Phases) == 0 {
			t.Errorf("record %s: no phase decomposition", r.ID)
		}
	}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v, want eval/anneal/sweep", kinds)
	}
	if len(kinds["anneal"].EnergyTrace) == 0 {
		t.Error("anneal record has no energy trace")
	}
	// Phases come from the job's span tree: queue.wait and run must be
	// among them.
	names := map[string]bool{}
	for _, p := range kinds["eval"].Phases {
		names[p.Name] = true
	}
	if !names["run"] || !names["queue.wait"] {
		t.Errorf("eval phases missing run/queue.wait: %+v", kinds["eval"].Phases)
	}
}

func TestHealthzJSON(t *testing.T) {
	s := testServer(t, Config{Workers: 3, StoreDir: t.TempDir()})
	submitDone(t, s, JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7})

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rr.Code)
	}
	var hs HealthStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &hs); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, rr.Body.String())
	}
	if hs.Status != "ok" {
		t.Fatalf("status = %q", hs.Status)
	}
	if hs.Workers != 3 {
		t.Fatalf("workers = %d, want 3", hs.Workers)
	}
	if hs.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", hs.UptimeSeconds)
	}
	if !hs.Store.Enabled || hs.Store.Records != 1 {
		t.Fatalf("store status = %+v, want enabled with 1 record", hs.Store)
	}

	// Without a store the endpoint keeps its shape, store disabled.
	s2 := testServer(t, Config{Workers: 1})
	rr2 := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr2, httptest.NewRequest("GET", "/healthz", nil))
	var hs2 HealthStatus
	if err := json.Unmarshal(rr2.Body.Bytes(), &hs2); err != nil {
		t.Fatal(err)
	}
	if hs2.Status != "ok" || hs2.Store.Enabled {
		t.Fatalf("no-store healthz = %+v", hs2)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s := testServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	for seed := uint64(1); seed <= 3; seed++ {
		submitDone(t, s, JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: seed})
	}

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/history", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("history status %d: %s", rr.Code, rr.Body.String())
	}
	var recs []runstore.Record
	if err := json.Unmarshal(rr.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("history has %d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Unix < recs[i].Unix {
			t.Fatal("history not newest-first")
		}
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/history?n=1", nil))
	recs = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("?n=1 returned %d records", len(recs))
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/history?n=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d", rr.Code)
	}

	// No store: empty list, not an error.
	s2 := testServer(t, Config{Workers: 1})
	rr = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/history", nil))
	if rr.Code != http.StatusOK || rr.Body.String() == "null\n" {
		t.Fatalf("no-store history: %d %q", rr.Code, rr.Body.String())
	}
}

// TestStoreSurvivesAbruptStop simulates a crash (no Close, no drain) and
// checks every acknowledged record is readable afterwards — the
// append-path fsync contract.
func TestStoreSurvivesAbruptStop(t *testing.T) {
	storeDir := t.TempDir()
	s := testServer(t, Config{Workers: 2, StoreDir: storeDir})
	done := submitDone(t, s, JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7})
	// No Close: read the store out from under the live server (crash
	// equivalence for file contents; the OS page cache serves reads).
	store, err := runstore.OpenRead(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records, want 1", store.Len())
	}
	rec := store.Records()[0]
	if !bytes.Equal(rec.Result, done.Result) {
		t.Fatal("stored result differs from the served reply")
	}
}
