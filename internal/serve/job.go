package serve

import (
	"encoding/json"
	"time"

	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the GET /v1/jobs/{id} payload (and each element of
// GET /v1/jobs). Result holds the job's marshaled result verbatim —
// json.RawMessage, so a cache hit replays the original bytes.
type JobStatus struct {
	ID       string `json:"id"`
	Type     string `json:"type"`
	State    string `json:"state"`
	Priority int    `json:"priority"`
	Workers  int    `json:"workers"` // granted demand on the worker budget

	// Cached is true when the result came from the content-addressed
	// cache rather than a fresh engine run.
	Cached bool `json:"cached"`
	// Preemptions counts how many times the job was checkpointed off
	// the workers by a higher-priority job.
	Preemptions int `json:"preemptions"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// EvalResult is the result payload of an eval job.
type EvalResult struct {
	Graph       fault.GraphReport `json:"graph"`
	Fingerprint string            `json:"fingerprint"`
}

// AnnealResult is the result payload of an anneal job: the designed
// topology (canonical text + fingerprint, so clients can both deploy it
// and cheaply compare runs), its metrics report and the SA statistics.
type AnnealResult struct {
	Graph       fault.GraphReport `json:"graph"`
	Fingerprint string            `json:"fingerprint"`
	GraphText   string            `json:"graphText"`
	Method      string            `json:"method"`
	MPredicted  int               `json:"mPredicted,omitempty"`
	MUsed       int               `json:"mUsed"`
	LowerBound  float64           `json:"lowerBound,omitempty"`
	Anneal      *opt.Result       `json:"anneal,omitempty"`
}

// SweepResult is the result payload of a sweep job.
type SweepResult struct {
	Graph       fault.GraphReport  `json:"graph"`
	Fingerprint string             `json:"fingerprint"`
	Model       string             `json:"model"`
	Trials      int                `json:"trials"`
	Seed        uint64             `json:"seed"`
	Points      []fault.SweepPoint `json:"points"`
}

// job is the server-side record. Mutable fields are guarded by the
// scheduler's lock; the eventLog and doneCh have their own
// synchronization.
type job struct {
	id   string
	seq  uint64 // FIFO tiebreak within a priority level
	spec JobSpec
	key  string // content-address of the result

	// Parsed once at submit.
	graph    *hsgraph.Graph // nil when generated/designed by the job
	evalMode opt.EvalMode
	model    fault.Model

	state       string
	workers     int  // granted demand, 1..budget
	preemptible bool // anneals and sweeps checkpoint; evals are short and run through
	preempting  bool // interrupt armed, waiting for the engine to unwind
	preemptions int
	resume      bool   // next run continues from the checkpoint
	ckptPath    string // per-job checkpoint file under the data dir

	cached    bool
	submitted time.Time
	started   *time.Time
	finished  *time.Time
	err       error
	result    json.RawMessage

	log *eventLog
	// doneCh closes when the job reaches done or failed.
	doneCh chan struct{}

	// The job's causal trace (span events land in log). root is the
	// "job" span opened at submit and ended when the job finishes;
	// waitSpan/runSpan are the currently open queue.wait / run episode
	// (both guarded by the scheduler lock; runSpan is set before the
	// engine goroutine launches and read by it).
	tracer   *obs.Tracer
	root     *obs.Span
	waitSpan *obs.Span
	runSpan  *obs.Span
	queuedAt time.Time // start of the current queue episode
}

// status snapshots the job for JSON. Caller holds the scheduler lock.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Type:        j.spec.Type,
		State:       j.state,
		Priority:    j.spec.Priority,
		Workers:     j.workers,
		Cached:      j.cached,
		Preemptions: j.preemptions,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
		Result:      j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
