package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPreemptResumeBitIdentical is the acceptance contract of elastic
// scheduling: a low-priority anneal that gets preempted by a
// high-priority job (checkpointed off the workers, later resumed) must
// return a byte-identical result JSON — same best graph, same SA
// statistics — as the same job run uninterrupted on a second server.
func TestPreemptResumeBitIdentical(t *testing.T) {
	gtxt := graphText(t, 64, 20, 7, 9)
	anneal := JobSpec{
		Type: TypeAnneal, Graph: gtxt,
		Iterations: 60_000, Seed: 4, EvalMode: "incremental", Priority: 0,
	}

	// Reference: uninterrupted run.
	ref := testServer(t, Config{Workers: 1})
	rst, err := ref.Submit(anneal)
	if err != nil {
		t.Fatal(err)
	}
	rst = waitDone(t, ref, rst.ID)
	if rst.State != StateDone {
		t.Fatalf("reference run failed: %q", rst.Error)
	}

	// Contended: budget 1, so the high-priority eval cannot fit while
	// the anneal runs — the anneal must be checkpointed off.
	s := testServer(t, Config{Workers: 1})
	ast, err := s.Submit(anneal)
	if err != nil {
		t.Fatal(err)
	}
	// Let the anneal actually start before contending.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := s.sched.Get(ast.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anneal never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	est, err := s.Submit(JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 1, Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, est.ID); st.State != StateDone {
		t.Fatalf("preemptor failed: %q", st.Error)
	}
	ast = waitDone(t, s, ast.ID)
	if ast.State != StateDone {
		t.Fatalf("preempted anneal failed: %q", ast.Error)
	}
	if ast.Preemptions < 1 {
		t.Fatal("the anneal was never preempted; the test exercised nothing")
	}
	if !bytes.Equal(ast.Result, rst.Result) {
		t.Fatalf("preempted-then-resumed result differs from uninterrupted run:\n%s\nvs\n%s",
			ast.Result, rst.Result)
	}

	// The lifecycle shows the round trip: running -> preempted ->
	// running (resume) -> done.
	events, ok := s.sched.Events(ast.ID)
	if !ok {
		t.Fatal("no event log")
	}
	kinds := map[string]int{}
	for _, e := range events.Snapshot() {
		kinds[e.Kind]++
	}
	if kinds[KindJobPreempted] < 1 || kinds[KindJobRunning] < 2 {
		t.Fatalf("lifecycle missing the preemption round trip: %v", kinds)
	}
}

// TestPriorityOrderAndFIFO pins queue order: strictly by priority, FIFO
// within a level.
func TestPriorityOrderAndFIFO(t *testing.T) {
	s := testServer(t, Config{Workers: 1})

	// Occupy the only worker so everything below queues up. The blocker
	// outranks everything so no later submission preempts it, and the
	// queue order is observed cleanly when it finishes.
	blocker, err := s.Submit(JobSpec{Type: TypeAnneal, Graph: graphText(t, 64, 20, 7, 1),
		Iterations: 400_000, Seed: 1, EvalMode: "incremental", Priority: 100})
	if err != nil {
		t.Fatal(err)
	}

	lo1, _ := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 1, Priority: 1})
	lo2, _ := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 2, Priority: 1})
	hi, _ := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 3, Priority: 5})

	// The blocker must still hold the worker, or the test observed
	// nothing: all three submissions have to be queued behind it.
	for _, id := range []string{lo1.ID, lo2.ID, hi.ID} {
		if got, _ := s.sched.Get(id); got.State != StateQueued {
			t.Fatalf("job %s is %s; the blocker finished before the queue formed (make it longer)",
				id, got.State)
		}
	}

	waitDone(t, s, blocker.ID)
	var at [3]time.Time
	for i, id := range []string{hi.ID, lo1.ID, lo2.ID} {
		st := waitDone(t, s, id)
		if st.State != StateDone {
			t.Fatalf("%s failed: %q", id, st.Error)
		}
		at[i] = *st.Started
	}
	// Budget 1 runs them one at a time; start times order as
	// high-priority first, then FIFO within the low-priority level.
	if !at[0].Before(at[1]) || !at[1].Before(at[2]) {
		t.Fatalf("start order hi=%v lo1=%v lo2=%v violates priority/FIFO", at[0], at[1], at[2])
	}
}

// TestWorkerBudgetShared pins that concurrent jobs share one budget:
// total granted workers never exceeds it.
func TestWorkerBudgetShared(t *testing.T) {
	s := testServer(t, Config{Workers: 3})
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		st, err := s.Submit(JobSpec{
			Type: TypeSweep, N: 48, M: 16, R: 6, GraphSeed: seed,
			Fractions: []float64{0.05}, Trials: 3, Seed: seed, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// While anything runs, busy <= budget.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, id := range ids {
			waitDone(t, s, id)
		}
	}()
	for {
		select {
		case <-done:
			if busy := s.met.workersBusy.Value(); busy != 0 {
				t.Fatalf("workers still busy after all jobs done: %v", busy)
			}
			return
		default:
			s.sched.mu.Lock()
			busy := s.sched.budget - s.sched.free
			s.sched.mu.Unlock()
			if busy > 3 {
				t.Fatalf("budget exceeded: %d busy with budget 3", busy)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestCacheLRUEviction pins the bounded-memory contract.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("LRU evicted the recently-used entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

// TestEventLogOverrunEviction pins the ring-buffer contract: appends
// never block or fail when a reader falls behind — the oldest events are
// trimmed, and the lagging reader is told exactly how many it lost.
func TestEventLogOverrunEviction(t *testing.T) {
	l := newEventLogCap(64)
	for i := 0; i < 5000; i++ {
		l.Append(obs.Event{Kind: "x", T: float64(i)})
	}
	if got := l.Len(); got != 5001 { // header + 5000, counting trimmed ones
		t.Fatalf("Len() = %d, want 5001", got)
	}
	if got := len(l.Snapshot()); got != 64 {
		t.Fatalf("buffered %d events, want the 64-cap window", got)
	}

	// A reader that never consumed anything resumes at the window start
	// and learns the exact number of trimmed events.
	batch, next, dropped, closed, _ := l.ReadFrom(0)
	if dropped != 5001-64 {
		t.Fatalf("dropped = %d, want %d", dropped, 5001-64)
	}
	if len(batch) != 64 || next != 5001 || closed {
		t.Fatalf("batch=%d next=%d closed=%v", len(batch), next, closed)
	}
	// The window is the most recent suffix, in order.
	if batch[len(batch)-1].T != 4999 {
		t.Fatalf("window does not end at the newest event: T=%v", batch[len(batch)-1].T)
	}

	// A caught-up reader sees nothing new and no drop; after Close it
	// drains the final event and observes the end of stream.
	l.Close(obs.Event{Kind: "done"})
	batch, next, dropped, closed, _ = l.ReadFrom(next)
	if dropped != 0 || !closed || len(batch) != 1 || batch[0].Kind != "done" {
		t.Fatalf("post-close read: batch=%v dropped=%d closed=%v", batch, dropped, closed)
	}
	if batch, _, _, closed, _ = l.ReadFrom(next); len(batch) != 0 || !closed {
		t.Fatalf("stream did not terminate: batch=%d closed=%v", len(batch), closed)
	}
}

// TestFailedJobReportsError pins the failure path: an infeasible
// generated graph fails the job with a useful error and is not cached.
func TestFailedJobReportsError(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	spec := JobSpec{Type: TypeEval, N: 100, M: 30, R: 3, GraphSeed: 1} // degree budget too small
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("want failed state with error, got %s %q", st.State, st.Error)
	}
	// Resubmission runs again (failures are not cached).
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatal("failure was cached")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if st2, _ = s.Wait(ctx, st2.ID); st2.State != StateFailed {
		t.Fatalf("second run state %s", st2.State)
	}
}
