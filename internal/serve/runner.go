package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
)

// execute runs j's engine to completion (or to its interrupt) and
// returns the marshaled result. It holds no scheduler locks: the only
// shared state it touches is the job's event log (internally locked),
// the run-episode span (set before this goroutine launched) and the
// interrupt flag.
func (s *scheduler) execute(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	switch j.spec.Type {
	case TypeEval:
		return executeEval(j)
	case TypeAnneal:
		return s.executeAnneal(j, intr)
	case TypeSweep:
		return s.executeSweep(j, intr)
	}
	return nil, fmt.Errorf("serve: unknown job type %q", j.spec.Type) // unreachable after normalize
}

// concreteGraph resolves the job's input graph: the inline one, or the
// deterministic random graph its generation parameters name.
func concreteGraph(j *job) (*hsgraph.Graph, error) {
	if j.graph != nil {
		return j.graph.Clone(), nil
	}
	g, err := hsgraph.RandomConnected(j.spec.N, j.spec.M, j.spec.R, rng.New(j.spec.GraphSeed))
	if err != nil {
		return nil, fmt.Errorf("serve: generate graph: %w", err)
	}
	return g, nil
}

// encodeResult marshals v under an "encode" child of the run span, so
// the trace separates engine time from serialization time.
func encodeResult(j *job, v any) (json.RawMessage, error) {
	esp := j.runSpan.Child("encode")
	b, err := marshalResult(v)
	esp.SetF("bytes", float64(len(b)))
	esp.Fail(err)
	return b, err
}

func executeEval(j *job) (json.RawMessage, error) {
	g, err := concreteGraph(j)
	if err != nil {
		return nil, err
	}
	met := g.EvaluateParallel(j.workers)
	return encodeResult(j, EvalResult{
		Graph:       fault.NewGraphReport(g, met),
		Fingerprint: g.Fingerprint().String(),
	})
}

// logObserver streams anneal telemetry into the job's event log, with
// the same field keys cmd/orpcli writes to -trace-out files, and
// forwards the evaluation-ladder counters to the orpd_* instruments.
//
// The engine's EvalStats are cumulative per restart; the observer keeps
// the previous snapshot per restart and adds only the delta, so the
// service counters stay monotone across concurrent jobs and restarts.
// A snapshot that runs backwards means the engine's counters restarted
// (a preempted job resumed: the ladder state is not checkpointed) — the
// whole new snapshot is fresh work then.
type logObserver struct {
	log *eventLog
	met *metrics // nil in tests that only want the event stream

	mu   sync.Mutex
	last map[int]opt.EvalStats // per restart
}

func newLogObserver(log *eventLog, met *metrics) *logObserver {
	return &logObserver{log: log, met: met, last: make(map[int]opt.EvalStats)}
}

func (o *logObserver) ObserveAnneal(sm opt.AnnealSample) {
	f := map[string]float64{
		"iter":        float64(sm.Iter),
		"temp":        sm.Temp,
		"current":     float64(sm.Current),
		"best":        float64(sm.Best),
		"accepted":    float64(sm.Accepted),
		"proposed":    float64(sm.Proposed),
		"movesPerSec": sm.MovesPerSec,
		"restart":     float64(sm.Restart),
	}
	if ev := sm.Eval; ev != (opt.EvalStats{}) {
		f["boundDecided"] = float64(ev.BoundDecided)
		f["escalated"] = float64(ev.Escalated)
		f["unbounded"] = float64(ev.Unbounded)
		f["incSyncs"] = float64(ev.Inc.Syncs)
		f["incFullRebuilds"] = float64(ev.Inc.FullRebuilds)
		f["incPeeks"] = float64(ev.Inc.Peeks)
		f["incEstimates"] = float64(ev.Inc.Estimates)
	}
	o.log.Append(obs.Event{T: sm.Elapsed, Kind: obs.KindAnnealSample, F: f})

	if o.met == nil {
		return
	}
	o.mu.Lock()
	prev := o.last[sm.Restart]
	o.last[sm.Restart] = sm.Eval
	o.mu.Unlock()
	ev, pv := sm.Eval, prev
	addDelta(o.met.ladderBound, ev.BoundDecided, pv.BoundDecided)
	addDelta(o.met.ladderEscalated, ev.Escalated, pv.Escalated)
	addDelta(o.met.ladderUnbounded, ev.Unbounded, pv.Unbounded)
	addDelta(o.met.incSyncs, ev.Inc.Syncs, pv.Inc.Syncs)
	addDelta(o.met.incRebuilds, ev.Inc.FullRebuilds, pv.Inc.FullRebuilds)
	addDelta(o.met.incPeekReuses, ev.Inc.StoredPeekReuses, pv.Inc.StoredPeekReuses)
	addDelta(o.met.incSwept, ev.Inc.SweptSources, pv.Inc.SweptSources)
	addDelta(o.met.incDirty, ev.Inc.DirtySources, pv.Inc.DirtySources)
}

// addDelta advances a monotone counter from a cumulative snapshot pair.
func addDelta(c *obs.Counter, cur, prev int64) {
	switch {
	case cur > prev:
		c.Add(cur - prev)
	case cur < prev:
		c.Add(cur) // source counters restarted; the snapshot is all new work
	}
}

func (s *scheduler) executeAnneal(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	res := AnnealResult{Method: "annealed"}
	var g *hsgraph.Graph

	if j.graph != nil {
		// Inline start graph: anneal it directly (the client chose the
		// topology to improve; core.Solve would generate its own start).
		ao := opt.Options{
			Iterations:     j.spec.Iterations,
			Seed:           j.spec.Seed,
			Workers:        j.workers,
			Eval:           j.evalMode,
			TraceEnergy:    true, // results carry their convergence trace (run-store records reuse it)
			Observer:       newLogObserver(j.log, s.met),
			CheckpointPath: j.ckptPath,
			Resume:         j.resume,
			Interrupt:      intr,
			Span:           j.runSpan,
		}
		var annealRes opt.Result
		var err error
		if j.spec.Restarts > 1 {
			g, annealRes, err = opt.ParallelAnneal(j.graph.Clone(), ao, j.spec.Restarts)
		} else {
			g, annealRes, err = opt.Anneal(j.graph.Clone(), ao)
		}
		if err != nil {
			return nil, err
		}
		res.Anneal = &annealRes
		res.MUsed = g.Switches()
	} else {
		top, err := core.Solve(j.spec.N, j.spec.R, core.Options{
			Iterations:     j.spec.Iterations,
			Restarts:       j.spec.Restarts,
			Seed:           j.spec.Seed,
			FixedM:         j.spec.M,
			Workers:        j.workers,
			Eval:           j.evalMode,
			TraceEnergy:    true,
			Observer:       newLogObserver(j.log, s.met),
			CheckpointPath: j.ckptPath,
			Resume:         j.resume,
			Interrupt:      intr,
			Span:           j.runSpan,
		})
		if err != nil {
			return nil, err
		}
		g = top.Graph
		res.Method = top.Method.String()
		res.MPredicted = top.MPredicted
		res.MUsed = top.MUsed
		res.LowerBound = top.LowerBound
		if top.Method == core.Annealed {
			r := top.Anneal
			res.Anneal = &r
		}
	}

	met := g.EvaluateParallel(j.workers)
	res.Graph = fault.NewGraphReport(g, met)
	res.Fingerprint = g.Fingerprint().String()
	var buf bytes.Buffer
	if err := hsgraph.Write(&buf, g); err != nil {
		return nil, err
	}
	res.GraphText = buf.String()
	return encodeResult(j, res)
}

func (s *scheduler) executeSweep(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	g, err := concreteGraph(j)
	if err != nil {
		return nil, err
	}
	so := fault.SweepOptions{
		Model:          j.model,
		Fractions:      j.spec.Fractions,
		Trials:         j.spec.Trials,
		Seed:           j.spec.Seed,
		Workers:        j.workers,
		CheckpointPath: j.ckptPath,
		Resume:         j.resume,
		Interrupt:      intr,
		Span:           j.runSpan,
		OnTrial: func(p fault.TrialProgress) {
			j.log.Append(obs.Event{T: p.Seconds, Kind: obs.KindSweepTrial, F: map[string]float64{
				"fraction":       p.Fraction,
				"trial":          float64(p.Trial),
				"done":           float64(p.Done),
				"total":          float64(p.Total),
				"seconds":        p.Seconds,
				"survivingHASPL": p.Result.SurvivingHASPL,
				"stretch":        p.Result.Stretch,
				"reachableFrac":  p.Result.ReachableFrac,
				"failedLinks":    float64(p.Result.FailedLinks),
				"failedSwitches": float64(p.Result.FailedSwitches),
			}})
		},
	}
	points, err := fault.Sweep(g, so)
	if err != nil {
		return nil, err
	}
	return encodeResult(j, SweepResult{
		Graph:       fault.NewGraphReport(g, g.EvaluateParallel(j.workers)),
		Fingerprint: g.Fingerprint().String(),
		Model:       j.model.String(),
		Trials:      j.spec.Trials,
		Seed:        j.spec.Seed,
		Points:      points,
	})
}
