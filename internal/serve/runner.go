package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
)

// execute runs j's engine to completion (or to its interrupt) and
// returns the marshaled result. It holds no scheduler locks: the only
// shared state it touches is the job's event log (internally locked)
// and the interrupt flag.
func (s *scheduler) execute(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	switch j.spec.Type {
	case TypeEval:
		return executeEval(j)
	case TypeAnneal:
		return executeAnneal(j, intr)
	case TypeSweep:
		return executeSweep(j, intr)
	}
	return nil, fmt.Errorf("serve: unknown job type %q", j.spec.Type) // unreachable after normalize
}

// concreteGraph resolves the job's input graph: the inline one, or the
// deterministic random graph its generation parameters name.
func concreteGraph(j *job) (*hsgraph.Graph, error) {
	if j.graph != nil {
		return j.graph.Clone(), nil
	}
	g, err := hsgraph.RandomConnected(j.spec.N, j.spec.M, j.spec.R, rng.New(j.spec.GraphSeed))
	if err != nil {
		return nil, fmt.Errorf("serve: generate graph: %w", err)
	}
	return g, nil
}

func executeEval(j *job) (json.RawMessage, error) {
	g, err := concreteGraph(j)
	if err != nil {
		return nil, err
	}
	met := g.EvaluateParallel(j.workers)
	return marshalResult(EvalResult{
		Graph:       fault.NewGraphReport(g, met),
		Fingerprint: g.Fingerprint().String(),
	})
}

// logObserver streams anneal telemetry into the job's event log, with
// the same field keys cmd/orpcli writes to -trace-out files.
type logObserver struct{ log *eventLog }

func (o logObserver) ObserveAnneal(sm opt.AnnealSample) {
	o.log.Append(obs.Event{
		T:    sm.Elapsed,
		Kind: obs.KindAnnealSample,
		F: map[string]float64{
			"iter":        float64(sm.Iter),
			"temp":        sm.Temp,
			"current":     float64(sm.Current),
			"best":        float64(sm.Best),
			"accepted":    float64(sm.Accepted),
			"proposed":    float64(sm.Proposed),
			"movesPerSec": sm.MovesPerSec,
			"restart":     float64(sm.Restart),
		},
	})
}

func executeAnneal(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	res := AnnealResult{Method: "annealed"}
	var g *hsgraph.Graph

	if j.graph != nil {
		// Inline start graph: anneal it directly (the client chose the
		// topology to improve; core.Solve would generate its own start).
		ao := opt.Options{
			Iterations:     j.spec.Iterations,
			Seed:           j.spec.Seed,
			Workers:        j.workers,
			Eval:           j.evalMode,
			Observer:       logObserver{j.log},
			CheckpointPath: j.ckptPath,
			Resume:         j.resume,
			Interrupt:      intr,
		}
		var annealRes opt.Result
		var err error
		if j.spec.Restarts > 1 {
			g, annealRes, err = opt.ParallelAnneal(j.graph.Clone(), ao, j.spec.Restarts)
		} else {
			g, annealRes, err = opt.Anneal(j.graph.Clone(), ao)
		}
		if err != nil {
			return nil, err
		}
		res.Anneal = &annealRes
		res.MUsed = g.Switches()
	} else {
		top, err := core.Solve(j.spec.N, j.spec.R, core.Options{
			Iterations:     j.spec.Iterations,
			Restarts:       j.spec.Restarts,
			Seed:           j.spec.Seed,
			FixedM:         j.spec.M,
			Workers:        j.workers,
			Eval:           j.evalMode,
			Observer:       logObserver{j.log},
			CheckpointPath: j.ckptPath,
			Resume:         j.resume,
			Interrupt:      intr,
		})
		if err != nil {
			return nil, err
		}
		g = top.Graph
		res.Method = top.Method.String()
		res.MPredicted = top.MPredicted
		res.MUsed = top.MUsed
		res.LowerBound = top.LowerBound
		if top.Method == core.Annealed {
			r := top.Anneal
			res.Anneal = &r
		}
	}

	met := g.EvaluateParallel(j.workers)
	res.Graph = fault.NewGraphReport(g, met)
	res.Fingerprint = g.Fingerprint().String()
	var buf bytes.Buffer
	if err := hsgraph.Write(&buf, g); err != nil {
		return nil, err
	}
	res.GraphText = buf.String()
	return marshalResult(res)
}

func executeSweep(j *job, intr *atomic.Bool) (json.RawMessage, error) {
	g, err := concreteGraph(j)
	if err != nil {
		return nil, err
	}
	so := fault.SweepOptions{
		Model:          j.model,
		Fractions:      j.spec.Fractions,
		Trials:         j.spec.Trials,
		Seed:           j.spec.Seed,
		Workers:        j.workers,
		CheckpointPath: j.ckptPath,
		Resume:         j.resume,
		Interrupt:      intr,
		OnTrial: func(p fault.TrialProgress) {
			j.log.Append(obs.Event{T: p.Seconds, Kind: obs.KindSweepTrial, F: map[string]float64{
				"fraction":       p.Fraction,
				"trial":          float64(p.Trial),
				"done":           float64(p.Done),
				"total":          float64(p.Total),
				"seconds":        p.Seconds,
				"survivingHASPL": p.Result.SurvivingHASPL,
				"stretch":        p.Result.Stretch,
				"reachableFrac":  p.Result.ReachableFrac,
				"failedLinks":    float64(p.Result.FailedLinks),
				"failedSwitches": float64(p.Result.FailedSwitches),
			}})
		},
	}
	points, err := fault.Sweep(g, so)
	if err != nil {
		return nil, err
	}
	return marshalResult(SweepResult{
		Graph:       fault.NewGraphReport(g, g.EvaluateParallel(j.workers)),
		Fingerprint: g.Fingerprint().String(),
		Model:       j.model.String(),
		Trials:      j.spec.Trials,
		Seed:        j.spec.Seed,
		Points:      points,
	})
}
