package serve

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// jobHeap orders queued jobs: higher priority first, FIFO (submission
// seq) within a priority level.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// scheduler owns the queue, the worker budget and every job record. One
// budget is shared by all concurrent jobs: a job "demands" its granted
// worker count while running, and a queued job that cannot fit preempts
// strictly-lower-priority checkpointable jobs to make room (elastic
// scheduling — the preempted work is not lost, it resumes from its
// snapshot bit-identically once capacity frees up).
//
// Scheduling is strict priority with no backfill: while the
// highest-priority queued job waits for workers, nothing behind it
// starts. That forfeits some utilisation but makes latency of the
// urgent job independent of the queue behind it.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every running-set change (drain waits on it)
	budget  int
	free    int
	seq     uint64
	jobs    map[string]*job
	order   []*job // submission order, for listing
	queue   jobHeap
	running map[*job]*atomic.Bool // job -> its current interrupt flag
	cache   *resultCache
	dataDir string
	met     *metrics
	drained bool

	clock func() time.Time // test hook; time.Now in production
}

func newScheduler(budget int, cache *resultCache, dataDir string, met *metrics) *scheduler {
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &scheduler{
		budget:  budget,
		free:    budget,
		jobs:    make(map[string]*job),
		running: make(map[*job]*atomic.Bool),
		cache:   cache,
		dataDir: dataDir,
		met:     met,
		clock:   time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Submit validates the spec, answers it from the result cache when the
// canonical job identity is already known, and otherwise queues it.
func (s *scheduler) Submit(spec JobSpec) (JobStatus, error) {
	g, mode, model, err := spec.normalize()
	if err != nil {
		return JobStatus{}, err
	}
	key := spec.cacheKey(g)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.seq),
		seq:       s.seq,
		spec:      spec,
		key:       key,
		graph:     g,
		evalMode:  mode,
		model:     model,
		workers:   clamp(spec.Workers, 1, s.budget),
		submitted: s.clock(),
		log:       newEventLog(),
		doneCh:    make(chan struct{}),
	}
	j.preemptible = spec.Type != TypeEval
	if s.dataDir != "" {
		j.ckptPath = filepath.Join(s.dataDir, j.id+".orpc")
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.met.submitted.Inc()

	if cached, ok := s.cache.Get(key); ok {
		now := s.clock()
		j.state, j.cached, j.result = StateDone, true, cached
		j.started, j.finished = &now, &now
		s.met.hits.Inc()
		s.met.done.Inc()
		j.log.Close(jobDoneEvent(j, 0))
		close(j.doneCh)
		return j.status(), nil
	}
	s.met.misses.Inc()

	j.state = StateQueued
	heap.Push(&s.queue, j)
	s.met.queueDepth.Set(float64(s.queue.Len()))
	j.log.Append(obs.Event{Kind: KindJobQueued, F: map[string]float64{
		"priority": float64(spec.Priority), "workers": float64(j.workers),
	}})
	s.schedule()
	return j.status(), nil
}

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: server is draining")

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// schedule starts queued jobs while the budget allows, arming
// preemptions when the head of the queue outranks running work. Caller
// holds s.mu.
func (s *scheduler) schedule() {
	if s.drained {
		return
	}
	for s.queue.Len() > 0 {
		top := s.queue[0]
		if s.free >= top.workers {
			heap.Pop(&s.queue)
			s.met.queueDepth.Set(float64(s.queue.Len()))
			s.start(top)
			continue
		}
		s.preemptFor(top)
		return // strict priority: nothing behind top starts before it
	}
}

// start transitions j to running and launches its engine goroutine.
// Caller holds s.mu.
func (s *scheduler) start(j *job) {
	intr := &atomic.Bool{}
	s.free -= j.workers
	j.state = StateRunning
	j.preempting = false
	now := s.clock()
	if j.started == nil {
		j.started = &now
	}
	s.running[j] = intr
	s.met.workersBusy.Set(float64(s.budget - s.free))
	s.cond.Broadcast()
	j.log.Append(obs.Event{Kind: KindJobRunning, F: map[string]float64{
		"priority": float64(j.spec.Priority), "workers": float64(j.workers),
		"resume": b2f(j.resume),
	}})
	go s.run(j, intr)
}

// preemptFor arms interrupts on strictly-lower-priority preemptible
// jobs — cheapest victims first — until the workers they will release
// (plus the currently free ones) cover top's demand. If the demand can
// never be covered this way, nothing is armed beyond what helps.
// Caller holds s.mu.
func (s *scheduler) preemptFor(top *job) {
	projected := s.free
	var victims []*job
	for j := range s.running {
		if j.preempting {
			projected += j.workers // already unwinding; its workers are coming back
			continue
		}
		if j.preemptible && j.spec.Priority < top.spec.Priority && j.ckptPath != "" {
			victims = append(victims, j)
		}
	}
	if projected >= top.workers {
		return // enough is already unwinding
	}
	// Lowest priority first; youngest first within a level (preserve the
	// longest-running work).
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].spec.Priority != victims[b].spec.Priority {
			return victims[a].spec.Priority < victims[b].spec.Priority
		}
		return victims[a].seq > victims[b].seq
	})
	for _, v := range victims {
		if projected >= top.workers {
			break
		}
		v.preempting = true
		s.running[v].Store(true)
		projected += v.workers
		s.met.preemptions.Inc()
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// run executes j's engine off the scheduler lock and routes the outcome:
// interrupted-and-preempting jobs go back to the queue (to resume from
// their checkpoint), everything else completes.
func (s *scheduler) run(j *job, intr *atomic.Bool) {
	started := time.Now()
	result, err := s.execute(j, intr)
	elapsed := time.Since(started).Seconds()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, j)
	s.free += j.workers
	s.met.workersBusy.Set(float64(s.budget - s.free))
	s.cond.Broadcast()

	if err != nil && errors.Is(err, ckpt.ErrInterrupted) && (j.preempting || s.drained) {
		// Preempted (or drained): the engine flushed its snapshot. The
		// job re-queues and its next run resumes bit-identically.
		j.state = StateQueued
		j.preempting = false
		j.resume = true
		j.preemptions++
		j.log.Append(obs.Event{T: elapsed, Kind: KindJobPreempted, F: map[string]float64{
			"preemptions": float64(j.preemptions),
		}})
		heap.Push(&s.queue, j)
		s.met.queueDepth.Set(float64(s.queue.Len()))
		s.schedule()
		return
	}

	now := s.clock()
	j.finished = &now
	if err != nil {
		j.state = StateFailed
		j.err = err
		s.met.failed.Inc()
	} else {
		j.state = StateDone
		j.result = result
		s.cache.Put(j.key, result)
		s.met.done.Inc()
	}
	if j.ckptPath != "" {
		removeCheckpoints(j.ckptPath, j.spec.Restarts)
	}
	s.met.jobSeconds.Observe(elapsed)
	j.log.Close(jobDoneEvent(j, elapsed))
	close(j.doneCh)
	s.schedule()
}

func jobDoneEvent(j *job, elapsed float64) obs.Event {
	e := obs.Event{T: elapsed, Kind: KindJobDone, F: map[string]float64{
		"cached": b2f(j.cached), "failed": b2f(j.state == StateFailed),
		"preemptions": float64(j.preemptions),
	}}
	if j.err != nil {
		e.S = map[string]string{"error": j.err.Error()}
	}
	return e
}

// removeCheckpoints deletes a finished job's snapshot files (multi-
// restart anneals write one per restart via opt.RestartCheckpointPath).
func removeCheckpoints(path string, restarts int) {
	os.Remove(path)
	if restarts > 1 {
		for i := 0; i < restarts; i++ {
			os.Remove(fmt.Sprintf("%s.r%d", path, i))
		}
	}
}

// Get returns a job's status.
func (s *scheduler) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// List returns every job in submission order.
func (s *scheduler) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.status())
	}
	return out
}

// Events returns a job's event log.
func (s *scheduler) Events(id string) (*eventLog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.log, true
}

// Wait blocks until the job reaches done or failed, or ctx is done.
func (s *scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: no job %q", id)
	}
	select {
	case <-j.doneCh:
		st, _ := s.Get(id)
		return st, nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Drain stops the scheduler: new submissions are rejected, queued jobs
// stay queued, and running preemptible jobs are interrupted so they
// flush their checkpoints (their snapshots survive under the data dir;
// a later process can resubmit and resume). Blocks until every running
// engine unwound or ctx expired.
func (s *scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.drained = true
	for j, intr := range s.running {
		if j.preemptible {
			j.preempting = true
			intr.Store(true)
		}
	}
	s.mu.Unlock()

	// Wake the cond.Wait loop when ctx expires.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.running) > 0 && ctx.Err() == nil {
		s.cond.Wait()
	}
	if len(s.running) > 0 {
		return fmt.Errorf("serve: drain deadline passed with %d jobs still running", len(s.running))
	}
	return nil
}

// marshalResult is the single place results become bytes, so cache
// entries and fresh replies are produced by the same encoder settings.
func marshalResult(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal result: %w", err)
	}
	return b, nil
}
