package serve

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// jobHeap orders queued jobs: higher priority first, FIFO (submission
// seq) within a priority level.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// scheduler owns the queue, the worker budget and every job record. One
// budget is shared by all concurrent jobs: a job "demands" its granted
// worker count while running, and a queued job that cannot fit preempts
// strictly-lower-priority checkpointable jobs to make room (elastic
// scheduling — the preempted work is not lost, it resumes from its
// snapshot bit-identically once capacity frees up).
//
// Scheduling is strict priority with no backfill: while the
// highest-priority queued job waits for workers, nothing behind it
// starts. That forfeits some utilisation but makes latency of the
// urgent job independent of the queue behind it.
//
// Every job carries its own obs.Tracer writing into its event log: the
// scheduler opens the root "job" span at submit and one child per phase
// (admission, cache.lookup, then alternating queue.wait and run
// episodes), so a job's event stream decomposes its wall time into
// disjoint intervals — including across preemptions.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond // broadcast on every running-set change (drain waits on it)
	budget    int
	free      int
	seq       uint64
	jobs      map[string]*job
	order     []*job // submission order, for listing
	queue     jobHeap
	running   map[*job]*atomic.Bool // job -> its current interrupt flag
	cache     *resultCache
	store     *runstore.Store // nil when no -store dir is configured
	dataDir   string
	met       *metrics
	retention time.Duration // 0 = keep finished jobs forever
	drained   bool

	clock func() time.Time // test hook; time.Now in production
}

func newScheduler(budget int, cache *resultCache, store *runstore.Store, dataDir string, met *metrics, retention time.Duration) *scheduler {
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &scheduler{
		budget:    budget,
		free:      budget,
		jobs:      make(map[string]*job),
		running:   make(map[*job]*atomic.Bool),
		cache:     cache,
		store:     store,
		dataDir:   dataDir,
		met:       met,
		retention: retention,
		clock:     time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Submit validates the spec, answers it from the result cache when the
// canonical job identity is already known, and otherwise queues it.
func (s *scheduler) Submit(spec JobSpec) (JobStatus, error) {
	accepted := time.Now() // admission span starts at arrival, before parsing
	g, mode, model, err := spec.normalize()
	if err != nil {
		return JobStatus{}, err
	}
	key := spec.cacheKey(g)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	if s.drained {
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.seq),
		seq:       s.seq,
		spec:      spec,
		key:       key,
		graph:     g,
		evalMode:  mode,
		model:     model,
		workers:   clamp(spec.Workers, 1, s.budget),
		submitted: s.clock(),
		log:       newEventLog(),
		doneCh:    make(chan struct{}),
	}
	j.preemptible = spec.Type != TypeEval
	if s.dataDir != "" {
		j.ckptPath = filepath.Join(s.dataDir, j.id+".orpc")
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.met.submitted.Inc()

	// The job's trace: one tracer per job (trace ID = job ID, epoch =
	// arrival), emitting span events into the job's own log. The root
	// "job" span is backdated to arrival so admission work done before
	// the record existed is still inside it.
	j.tracer = obs.NewTracer(j.id, accepted, j.log.Append)
	j.root = j.tracer.Root("job")
	j.root.SetS("type", spec.Type)
	j.root.SetF("priority", float64(spec.Priority))
	adm := j.root.Child("admission")
	adm.SetF("workers", float64(j.workers))
	backdate(j.root, accepted)
	backdate(adm, accepted)
	adm.End()

	lsp := j.root.Child("cache.lookup")
	cached, hit := s.cache.Get(key)
	fromStore := false
	if !hit && s.store != nil {
		// LRU miss: fall through to the persistent store. A hit
		// re-promotes the stored bytes into the in-memory cache, so the
		// next lookup is answered without touching disk. The bytes are
		// the original run's verbatim reply — byte-identity holds across
		// eviction and across process restarts.
		s.met.storeLookups.Inc()
		if b := s.store.LookupResult(key); b != nil {
			cached, hit, fromStore = json.RawMessage(b), true, true
			s.cache.Put(key, cached)
			s.met.storeHits.Inc()
		}
	}
	lsp.SetF("hit", b2f(hit))
	lsp.SetF("store", b2f(fromStore))
	lsp.End()
	if hit {
		now := s.clock()
		j.state, j.cached, j.result = StateDone, true, cached
		j.started, j.finished = &now, &now
		s.met.hits.Inc()
		s.met.done.Inc()
		j.root.SetS("outcome", "done")
		j.root.SetF("cached", 1)
		j.root.End()
		j.log.Close(jobDoneEvent(j, 0))
		close(j.doneCh)
		return j.status(), nil
	}
	s.met.misses.Inc()

	j.state = StateQueued
	s.enqueueLocked(j)
	s.schedule()
	return j.status(), nil
}

// backdate is a deliberate narrow hack: spans record their start at
// Child() time, but the job record (and so the tracer) only exists
// after spec parsing. Resetting the start to the request's arrival
// keeps the admission span honest about parse cost.
func backdate(sp *obs.Span, to time.Time) {
	if sp == nil {
		return
	}
	sp.Backdate(to)
}

// enqueueLocked pushes j onto the queue and opens its queue.wait span
// episode. Caller holds s.mu.
func (s *scheduler) enqueueLocked(j *job) {
	j.queuedAt = s.clock()
	j.waitSpan = j.root.Child("queue.wait")
	j.waitSpan.SetF("episode", float64(j.preemptions))
	heap.Push(&s.queue, j)
	s.met.queueDepth.Set(float64(s.queue.Len()))
	j.log.Append(obs.Event{Kind: KindJobQueued, F: map[string]float64{
		"priority": float64(j.spec.Priority), "workers": float64(j.workers),
	}})
}

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: server is draining")

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// schedule starts queued jobs while the budget allows, arming
// preemptions when the head of the queue outranks running work. Caller
// holds s.mu.
func (s *scheduler) schedule() {
	if s.drained {
		return
	}
	for s.queue.Len() > 0 {
		top := s.queue[0]
		if s.free >= top.workers {
			heap.Pop(&s.queue)
			s.met.queueDepth.Set(float64(s.queue.Len()))
			s.start(top)
			continue
		}
		s.preemptFor(top)
		return // strict priority: nothing behind top starts before it
	}
}

// start transitions j to running and launches its engine goroutine.
// Caller holds s.mu.
func (s *scheduler) start(j *job) {
	intr := &atomic.Bool{}
	s.free -= j.workers
	j.state = StateRunning
	j.preempting = false
	now := s.clock()
	if j.started == nil {
		j.started = &now
	}
	s.running[j] = intr
	s.met.workersBusy.Set(float64(s.budget - s.free))
	s.cond.Broadcast()

	// Close this queue-wait episode: span + per-priority histogram.
	j.waitSpan.End()
	j.waitSpan = nil
	s.met.queueWait(j.spec.Priority).Observe(now.Sub(j.queuedAt).Seconds())

	// Open the run episode; the engine goroutine owns it until it ends
	// it (done, failed or preempted).
	j.runSpan = j.root.Child("run")
	j.runSpan.SetF("episode", float64(j.preemptions))
	j.runSpan.SetF("workers", float64(j.workers))
	j.runSpan.SetF("resume", b2f(j.resume))

	j.log.Append(obs.Event{Kind: KindJobRunning, F: map[string]float64{
		"priority": float64(j.spec.Priority), "workers": float64(j.workers),
		"resume": b2f(j.resume),
	}})
	go s.run(j, intr)
}

// preemptFor arms interrupts on strictly-lower-priority preemptible
// jobs — cheapest victims first — until the workers they will release
// (plus the currently free ones) cover top's demand. If the demand can
// never be covered this way, nothing is armed beyond what helps.
// Caller holds s.mu.
func (s *scheduler) preemptFor(top *job) {
	projected := s.free
	var victims []*job
	for j := range s.running {
		if j.preempting {
			projected += j.workers // already unwinding; its workers are coming back
			continue
		}
		if j.preemptible && j.spec.Priority < top.spec.Priority && j.ckptPath != "" {
			victims = append(victims, j)
		}
	}
	if projected >= top.workers {
		return // enough is already unwinding
	}
	// Lowest priority first; youngest first within a level (preserve the
	// longest-running work).
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].spec.Priority != victims[b].spec.Priority {
			return victims[a].spec.Priority < victims[b].spec.Priority
		}
		return victims[a].seq > victims[b].seq
	})
	for _, v := range victims {
		if projected >= top.workers {
			break
		}
		v.preempting = true
		s.running[v].Store(true)
		projected += v.workers
		s.met.preemptions.Inc()
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// run executes j's engine off the scheduler lock and routes the outcome:
// interrupted-and-preempting jobs go back to the queue (to resume from
// their checkpoint), everything else completes.
func (s *scheduler) run(j *job, intr *atomic.Bool) {
	started := time.Now()
	result, err := s.execute(j, intr)
	elapsed := time.Since(started).Seconds()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, j)
	s.free += j.workers
	s.met.workersBusy.Set(float64(s.budget - s.free))
	s.cond.Broadcast()

	if err != nil && errors.Is(err, ckpt.ErrInterrupted) && (j.preempting || s.drained) {
		// Preempted (or drained): the engine flushed its snapshot. The
		// job re-queues and its next run resumes bit-identically.
		j.state = StateQueued
		j.preempting = false
		j.resume = true
		j.preemptions++
		j.runSpan.SetS("outcome", "preempted")
		j.runSpan.End()
		j.runSpan = nil
		j.log.Append(obs.Event{T: elapsed, Kind: KindJobPreempted, F: map[string]float64{
			"preemptions": float64(j.preemptions),
		}})
		s.enqueueLocked(j)
		s.schedule()
		return
	}

	now := s.clock()
	j.finished = &now
	if err != nil {
		j.state = StateFailed
		j.err = err
		s.met.failed.Inc()
		j.runSpan.SetS("outcome", "failed")
		j.runSpan.Fail(err)
	} else {
		j.state = StateDone
		j.result = result
		s.cache.Put(j.key, result)
		s.met.done.Inc()
		j.runSpan.SetS("outcome", "done")
		j.runSpan.End()
	}
	j.runSpan = nil
	if j.ckptPath != "" {
		removeCheckpoints(j.ckptPath, j.spec.Restarts)
	}
	s.met.jobSeconds.Observe(elapsed)
	j.root.SetF("preemptions", float64(j.preemptions))
	if j.err != nil {
		j.root.SetS("outcome", "failed")
	} else {
		j.root.SetS("outcome", "done")
	}
	j.root.End()
	j.log.Close(jobDoneEvent(j, elapsed))
	close(j.doneCh)
	if err == nil {
		s.recordRunLocked(j)
	}
	s.schedule()
}

// recordRunLocked appends a finished job to the persistent run store.
// Called after the job's root span ended (so the event log holds the
// complete wall-time decomposition) and only on success — failed jobs
// and cache hits are not history. The append is synchronous under the
// scheduler lock: one write+fsync per completed engine run, a rate the
// scheduler cannot outpace. A nil store skips everything, including
// building the record. Caller holds s.mu.
func (s *scheduler) recordRunLocked(j *job) {
	storeErr := s.store.AppendRun(func() runstore.Record {
		// The result payload is schema-typed per job type, but every
		// schema shares the fingerprint/graph envelope (and anneals add
		// the convergence trace); probe just those fields.
		var probe struct {
			Fingerprint string            `json:"fingerprint"`
			Graph       fault.GraphReport `json:"graph"`
			Anneal      *struct {
				EnergyTrace       []float64
				EnergyTraceStride int
			} `json:"anneal"`
		}
		_ = json.Unmarshal(j.result, &probe)
		rec := runstore.Record{
			Unix:        time.Now().UnixNano(),
			Tool:        "orpd",
			Kind:        j.spec.Type,
			Build:       buildinfo.Get().String(),
			Key:         j.key,
			Fingerprint: probe.Fingerprint,
			Seed:        j.spec.Seed,
			N:           probe.Graph.Order,
			M:           probe.Graph.Switches,
			R:           probe.Graph.Radix,
			EvalMode:    j.evalMode.String(),
			Workers:     j.workers,
			Metrics: runstore.Metrics{
				HASPL:          probe.Graph.HASPL,
				Diameter:       probe.Graph.Diameter,
				Connected:      probe.Graph.Connected,
				TotalPath:      probe.Graph.TotalPath,
				ReachablePairs: probe.Graph.ReachablePairs,
			},
			Phases:      runstore.PhasesFromDurations(obs.PhaseDurations(j.log.Snapshot())),
			WallSeconds: j.finished.Sub(j.submitted).Seconds(),
			Result:      j.result,
		}
		if probe.Anneal != nil {
			rec.EnergyTrace = probe.Anneal.EnergyTrace
			rec.EnergyTraceStride = probe.Anneal.EnergyTraceStride
		}
		return rec
	})
	if s.store == nil {
		return
	}
	if storeErr != nil {
		s.met.storeErrors.Inc()
		return
	}
	s.met.storeAppends.Inc()
	s.met.storeRecords.Set(float64(s.store.Len()))
}

func jobDoneEvent(j *job, elapsed float64) obs.Event {
	e := obs.Event{T: elapsed, Kind: KindJobDone, F: map[string]float64{
		"cached": b2f(j.cached), "failed": b2f(j.state == StateFailed),
		"preemptions": float64(j.preemptions),
	}}
	if j.err != nil {
		e.S = map[string]string{"error": j.err.Error()}
	}
	return e
}

// removeCheckpoints deletes a finished job's snapshot files (multi-
// restart anneals write one per restart via opt.RestartCheckpointPath).
func removeCheckpoints(path string, restarts int) {
	os.Remove(path)
	if restarts > 1 {
		for i := 0; i < restarts; i++ {
			os.Remove(fmt.Sprintf("%s.r%d", path, i))
		}
	}
}

// gcLocked drops finished job records older than the retention window.
// Queued and running jobs are never touched; the result cache keeps its
// own (LRU-bounded) copy of the payload, so a resubmission after
// eviction is still a cache hit. Caller holds s.mu.
func (s *scheduler) gcLocked() {
	if s.retention <= 0 || len(s.order) == 0 {
		return
	}
	cutoff := s.clock().Add(-s.retention)
	kept := s.order[:0]
	for _, j := range s.order {
		if (j.state == StateDone || j.state == StateFailed) &&
			j.finished != nil && j.finished.Before(cutoff) {
			delete(s.jobs, j.id)
			s.met.evicted.Inc()
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil // release the evicted records
	}
	s.order = kept
}

// Get returns a job's status.
func (s *scheduler) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// List returns jobs in submission order (a stable order: evictions only
// remove elements, never reorder them). A non-empty state keeps only
// jobs currently in that state.
func (s *scheduler) List(state string) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j.status())
	}
	return out
}

// Events returns a job's event log.
func (s *scheduler) Events(id string) (*eventLog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.log, true
}

// Wait blocks until the job reaches done or failed, or ctx is done.
func (s *scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: no job %q", id)
	}
	select {
	case <-j.doneCh:
		return j.statusLocked(s), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// statusLocked takes the scheduler lock and snapshots j. Unlike Get it
// holds the job pointer, so it works even after retention GC dropped
// the record from the index.
func (j *job) statusLocked(s *scheduler) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status()
}

// Drain stops the scheduler: new submissions are rejected, queued jobs
// stay queued, and running preemptible jobs are interrupted so they
// flush their checkpoints (their snapshots survive under the data dir;
// a later process can resubmit and resume). Blocks until every running
// engine unwound or ctx expired.
func (s *scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.drained = true
	for j, intr := range s.running {
		if j.preemptible {
			j.preempting = true
			intr.Store(true)
		}
	}
	s.mu.Unlock()

	// Wake the cond.Wait loop when ctx expires.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.running) > 0 && ctx.Err() == nil {
		s.cond.Wait()
	}
	if len(s.running) > 0 {
		return fmt.Errorf("serve: drain deadline passed with %d jobs still running", len(s.running))
	}
	return nil
}

// marshalResult is the single place results become bytes, so cache
// entries and fresh replies are produced by the same encoder settings.
func marshalResult(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal result: %w", err)
	}
	return b, nil
}
