package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"net/http"
)

// TestLoadCachedEvalsUnderAnnealPressure is the committed load test
// behind EXPERIMENTS.md's §orpd numbers: thousands of concurrent cached
// eval queries racing ten concurrent anneal jobs under one shared
// worker budget. It asserts the latency-isolation property the service
// exists for — cache hits stay fast while the budget is saturated with
// design work — and prints the p50/p95/p99 table. Run with -short to
// skip (CI runs it in the dedicated load job, not in the unit sweep).
func TestLoadCachedEvalsUnderAnnealPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("load test: skipped in -short")
	}
	if raceEnabled {
		t.Skip("load test: latency bounds are meaningless under the race detector")
	}
	s := testServer(t, Config{Workers: 4, CacheSize: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// Warm the cache with the eval queries the load phase will repeat.
	const distinctEvals = 8
	evalBody := func(i int) string {
		return fmt.Sprintf(`{"type":"eval","n":48,"m":16,"r":6,"graphSeed":%d}`, i+1)
	}
	for i := 0; i < distinctEvals; i++ {
		st, err := s.Submit(JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitDone(t, s, st.ID); st.State != StateDone {
			t.Fatalf("warmup eval failed: %q", st.Error)
		}
	}

	// Background pressure: 10 concurrent anneal jobs sharing the budget.
	const anneals = 10
	annealIDs := make([]string, anneals)
	for i := range annealIDs {
		st, err := s.Submit(JobSpec{
			Type: TypeAnneal, Graph: graphText(t, 64, 20, 7, uint64(i+1)),
			Iterations: 150_000, Seed: uint64(i + 1), EvalMode: "incremental",
		})
		if err != nil {
			t.Fatal(err)
		}
		annealIDs[i] = st.ID
	}

	// Load phase: 32 client goroutines, 2000 cached eval queries over
	// HTTP while the anneals grind.
	const clients, queries = 32, 2000
	lat := make([]time.Duration, queries)
	var idx int64
	var mu sync.Mutex
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	per := queries / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < per; q++ {
				body := evalBody((c + q) % distinctEvals)
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					errCh <- fmt.Errorf("expected cache-hit 200, got %d", resp.StatusCode)
					return
				}
				resp.Body.Close()
				d := time.Since(start)
				mu.Lock()
				lat[idx] = d
				idx++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every anneal must complete despite the query storm.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range annealIDs {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("anneal %s: %s %q", id, st.State, st.Error)
		}
	}

	got := lat[:idx]
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	q := func(p float64) time.Duration { return got[int(p*float64(len(got)-1))] }
	t.Logf("cached evals under anneal pressure: n=%d clients=%d  p50=%v  p95=%v  p99=%v  max=%v",
		len(got), clients, q(0.50), q(0.95), q(0.99), got[len(got)-1])

	// The latency-isolation assertion. A cache hit never runs an
	// engine, so its median stays milliseconds even under full budget
	// saturation. The tail bound is deliberately loose: on a single-core
	// runner the Go scheduler timeslices 40+ runnable goroutines at
	// ~10ms quanta, so the p99 measures CPU oversubscription, not the
	// cache — it only guards against hits blocking behind an engine run
	// (which would push seconds, not hundreds of milliseconds).
	if p50 := q(0.50); p50 > 100*time.Millisecond {
		t.Fatalf("cache-hit p50 %v: hits are not being served from memory", p50)
	}
	if p99 := q(0.99); p99 > 2*time.Second {
		t.Fatalf("cache-hit p99 %v: reads are blocking behind engine work", p99)
	}
	hits := s.met.hits.Value()
	if hits < int64(len(got)) {
		t.Fatalf("only %d cache hits for %d queries", hits, len(got))
	}
}
