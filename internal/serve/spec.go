// Package serve is the long-running topology-design service behind
// cmd/orpd. It exposes the repository's three expensive engines —
// graph evaluation, ORP annealing (core.Solve / opt.Anneal) and
// Monte-Carlo fault sweeps — as REST jobs with
//
//   - a priority queue in front of one global worker budget, shared by
//     every concurrent job (elastic scheduling: a high-priority job
//     preempts lower-priority anneals and sweeps through their
//     crash-safe checkpoints, and the preempted jobs later resume
//     bit-identically),
//   - a content-addressed result cache keyed on the canonical job
//     identity (graph fingerprint + result-defining options), so a
//     repeated design query is answered from memory with byte-identical
//     JSON, and
//   - per-job versioned JSONL event streams (the obs schema) that
//     clients can replay and follow over HTTP while the job runs.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/opt"
)

// Job types.
const (
	TypeEval   = "eval"   // evaluate a graph: fault.GraphReport
	TypeAnneal = "anneal" // design a topology: core.Solve / opt.Anneal
	TypeSweep  = "sweep"  // Monte-Carlo fault sweep: []fault.SweepPoint
)

// JobSpec is the body of POST /v1/jobs. Exactly one graph source is
// required: inline canonical text in Graph, or generation parameters
// (N, R and — for eval/sweep jobs, which need a concrete graph rather
// than a design problem — M and GraphSeed for hsgraph.RandomConnected).
type JobSpec struct {
	// Type is one of eval, anneal, sweep.
	Type string `json:"type"`
	// Priority orders the queue: higher runs first, and a job that
	// cannot fit in the worker budget preempts strictly-lower-priority
	// preemptible jobs (anneals and sweeps, via their checkpoints).
	// Equal-priority jobs run FIFO and never preempt each other.
	Priority int `json:"priority,omitempty"`
	// Workers is this job's demand on the server's worker budget
	// (evaluator shards / sweep goroutines). 0 means 1; values above
	// the budget are clamped to it. Results are worker-invariant, so
	// Workers never changes a result — only its wall-clock — and is
	// excluded from the cache key.
	Workers int `json:"workers,omitempty"`

	// Graph is a host-switch graph in the canonical text format
	// (hsgraph.Write). When set, N/M/R/GraphSeed must be zero.
	Graph string `json:"graph,omitempty"`
	// N, R describe the design problem (anneal) or, with M and
	// GraphSeed, the concrete random graph (eval/sweep, and anneal with
	// fixed M runs core.Solve with FixedM).
	N int `json:"n,omitempty"`
	R int `json:"r,omitempty"`
	// M fixes the switch count. Anneal jobs: 0 predicts m_opt
	// (core.Solve). Eval/sweep jobs: required (a concrete graph needs a
	// switch count).
	M int `json:"m,omitempty"`
	// GraphSeed seeds hsgraph.RandomConnected for generated graphs.
	GraphSeed uint64 `json:"graphSeed,omitempty"`

	// Anneal options (TypeAnneal).
	Iterations int    `json:"iterations,omitempty"` // default 50000 (core.Solve's default)
	Seed       uint64 `json:"seed,omitempty"`
	Restarts   int    `json:"restarts,omitempty"` // independent SA runs, best wins; default 1
	EvalMode   string `json:"evalMode,omitempty"` // exact|incremental|ladder (opt.ParseEvalMode)

	// Sweep options (TypeSweep).
	Model     string    `json:"model,omitempty"`     // links|switches|bundles|targeted
	Fractions []float64 `json:"fractions,omitempty"` // default fault.DefaultFractions
	Trials    int       `json:"trials,omitempty"`    // default 20
}

// normalize validates the spec and fills defaults, returning the parsed
// graph (nil when the job generates or designs its own) and parsed
// enum options.
func (sp *JobSpec) normalize() (g *hsgraph.Graph, mode opt.EvalMode, model fault.Model, err error) {
	switch sp.Type {
	case TypeEval, TypeAnneal, TypeSweep:
	default:
		return nil, 0, 0, fmt.Errorf("serve: unknown job type %q (want eval, anneal or sweep)", sp.Type)
	}
	if sp.Workers < 0 {
		return nil, 0, 0, fmt.Errorf("serve: workers must be >= 0, got %d", sp.Workers)
	}
	if sp.Graph != "" {
		if sp.N != 0 || sp.M != 0 || sp.R != 0 || sp.GraphSeed != 0 {
			return nil, 0, 0, fmt.Errorf("serve: give either an inline graph or n/m/r/graphSeed, not both")
		}
		g, err = hsgraph.Read(strings.NewReader(sp.Graph))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("serve: inline graph: %w", err)
		}
	} else {
		if sp.N < 1 || sp.R < 3 {
			return nil, 0, 0, fmt.Errorf("serve: generated jobs need n >= 1 and r >= 3 (got n=%d r=%d)", sp.N, sp.R)
		}
		if sp.Type != TypeAnneal && sp.M < 1 {
			return nil, 0, 0, fmt.Errorf("serve: %s jobs need a concrete graph: inline text or m >= 1", sp.Type)
		}
	}
	mode, err = opt.ParseEvalMode(sp.EvalMode)
	if err != nil {
		return nil, 0, 0, err
	}
	if sp.Type == TypeSweep {
		if sp.Model == "" {
			sp.Model = "links"
		}
		model, err = fault.ParseModel(sp.Model)
		if err != nil {
			return nil, 0, 0, err
		}
		if len(sp.Fractions) == 0 {
			sp.Fractions = fault.DefaultFractions()
		}
		for _, f := range sp.Fractions {
			if f < 0 || f > 1 {
				return nil, 0, 0, fmt.Errorf("serve: fraction %v outside [0,1]", f)
			}
		}
		if sp.Trials == 0 {
			sp.Trials = 20
		}
		if sp.Trials < 0 {
			return nil, 0, 0, fmt.Errorf("serve: trials must be > 0, got %d", sp.Trials)
		}
	}
	if sp.Type == TypeAnneal {
		if sp.Iterations == 0 {
			sp.Iterations = 50000
		}
		if sp.Iterations < 0 {
			return nil, 0, 0, fmt.Errorf("serve: iterations must be > 0, got %d", sp.Iterations)
		}
		if sp.Restarts == 0 {
			sp.Restarts = 1
		}
		if sp.Restarts < 0 {
			return nil, 0, 0, fmt.Errorf("serve: restarts must be > 0, got %d", sp.Restarts)
		}
	}
	return g, mode, model, nil
}

// cacheKeyDomain seeds the job-identity hash; bump the suffix whenever a
// result-defining field is added to JobSpec or a result schema changes,
// so stale entries can never masquerade as current ones. This matters
// more now that keys outlive the process: the persistent run store
// serves old bytes under their recorded key, and a domain bump is what
// keeps a schema change from replaying them. (v1 → v2: anneal results
// gained the always-on energy trace.)
const cacheKeyDomain = "orp.serve.job.v2"

// cacheKey is the content address of a job's result: a hash over the
// canonical identity of the query. Every result-defining field goes in —
// the graph (by canonical fingerprint, so storage order is invisible) or
// its generation parameters, and all engine options including the
// evaluation mode (exact/incremental are bit-identical by construction,
// but ladder carries a ~1e-6 sampled-bound failure probability, so modes
// are conservatively kept distinct). Workers and Priority stay out:
// results are worker-invariant and scheduling never changes a result.
func (sp *JobSpec) cacheKey(g *hsgraph.Graph) string {
	h := sha256.New()
	w := func(parts ...any) {
		for _, p := range parts {
			fmt.Fprintf(h, "%v\x00", p)
		}
	}
	w(cacheKeyDomain, sp.Type)
	if g != nil {
		fp := g.Fingerprint()
		w("graph", fp.String())
	} else {
		w("gen", sp.N, sp.M, sp.R, sp.GraphSeed)
	}
	switch sp.Type {
	case TypeAnneal:
		w(sp.Iterations, sp.Seed, sp.Restarts, sp.EvalMode)
	case TypeSweep:
		// Fraction order is kept: []SweepPoint comes back in the given
		// order, so reordering fractions is a different (reordered) result.
		w(sp.Model, sp.Trials, sp.Seed)
		for _, f := range sp.Fractions {
			w(f)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
