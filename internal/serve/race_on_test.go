//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector. The load test skips its latency assertions under -race: the
// instrumentation slows the engines ~10x, so measured percentiles would
// reflect the detector, not the service.
const raceEnabled = true
