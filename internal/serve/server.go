package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 1024-entry cache, checkpoints in a fresh temp dir.
type Config struct {
	// Workers is the global worker budget shared by every concurrent
	// job. 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the result-cache capacity in entries. 0 means 1024.
	// The cache is load-bearing for the service's latency contract, so
	// it cannot be disabled; values < 1 are treated as a 1-entry cache.
	CacheSize int
	// DataDir holds per-job checkpoint files. "" creates a temp dir
	// owned by the server (removed on Close).
	DataDir string
	// StoreDir, when non-empty, enables the persistent run store
	// (internal/runstore): every completed job is appended as a durable
	// record, and result-cache misses fall through to the store — so a
	// previously-served query gets a byte-identical reply even after an
	// LRU eviction or a process restart. "" disables persistence (the
	// cache is memory-only, the pre-store behaviour).
	StoreDir string
	// Registry receives the orpd_* instruments and is served at
	// /metrics. Nil builds a private one.
	Registry *obs.Registry
	// Retention bounds how long finished jobs (done or failed) stay
	// queryable after they finish. Zero keeps them forever (the
	// pre-retention behaviour). Expired records are garbage-collected
	// lazily on API access and scheduling activity and counted by
	// orpd_jobs_evicted_total; queued and running jobs are never
	// collected. Cached results outlive the job record — the result
	// cache has its own LRU bound.
	Retention time.Duration
}

// Endpoint labels of the RED instrument set.
var apiEndpoints = []string{"submit", "list", "get", "events", "history"}

// metrics is the orpd instrument set.
type metrics struct {
	reg                                   *obs.Registry
	submitted, done, failed, hits, misses *obs.Counter
	preemptions, evicted                  *obs.Counter
	queueDepth, workersBusy               *obs.Gauge
	jobSeconds, httpSeconds               *obs.Histogram

	// RED per endpoint: request counters by status class and latency
	// histograms, exposed as labeled children of
	// orpd_http_requests_total / orpd_http_request_seconds.
	httpReq map[string]map[string]*obs.Counter // endpoint -> class -> counter
	httpSec map[string]*obs.Histogram          // endpoint -> latency histogram

	// Evaluation-ladder introspection, aggregated across jobs from the
	// per-restart EvalStats deltas (see evalStatsSink).
	ladderBound, ladderEscalated, ladderUnbounded  *obs.Counter
	incSyncs, incRebuilds, incPeekReuses, incSwept *obs.Counter
	incDirty                                       *obs.Counter

	// Persistent run store (all zero while no -store dir is configured).
	storeAppends, storeLookups, storeHits, storeErrors *obs.Counter
	storeRecords, storeSkipped                         *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		reg:         reg,
		submitted:   reg.Counter("orpd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs."),
		done:        reg.Counter("orpd_jobs_done_total", "Jobs finished successfully (cache hits included)."),
		failed:      reg.Counter("orpd_jobs_failed_total", "Jobs that ended in an error."),
		hits:        reg.Counter("orpd_cache_hits_total", "Submissions answered from the result cache."),
		misses:      reg.Counter("orpd_cache_misses_total", "Submissions that had to run an engine."),
		preemptions: reg.Counter("orpd_preemptions_total", "Checkpoint preemptions of running jobs."),
		evicted:     reg.Counter("orpd_jobs_evicted_total", "Finished job records dropped by retention GC."),
		queueDepth:  reg.Gauge("orpd_queue_depth", "Jobs waiting for workers."),
		workersBusy: reg.Gauge("orpd_workers_busy", "Workers currently granted to running jobs."),
		jobSeconds:  reg.Histogram("orpd_job_seconds", "Wall-clock of one engine run.", obs.ExpBuckets(1e-4, 2, 24)),
		httpSeconds: reg.Histogram("orpd_http_request_seconds", "Wall-clock of one API request.", obs.ExpBuckets(1e-5, 2, 22)),

		ladderBound:     reg.Counter("orpd_ladder_bound_decided_total", "Anneal candidates settled by the sampled bound alone."),
		ladderEscalated: reg.Counter("orpd_ladder_escalated_total", "Anneal candidates escalated to the exact evaluation rung."),
		ladderUnbounded: reg.Counter("orpd_ladder_unbounded_total", "Delta estimates the incremental cache refused to bound."),
		incSyncs:        reg.Counter("orpd_inc_syncs_total", "Incremental-cache commits with pending work."),
		incRebuilds:     reg.Counter("orpd_inc_full_rebuilds_total", "Incremental-cache commits that fell back to a full rebuild."),
		incPeekReuses:   reg.Counter("orpd_inc_stored_peek_reuses_total", "Incremental-cache commits satisfied by stored peek rows."),
		incSwept:        reg.Counter("orpd_inc_swept_sources_total", "Source rows swept into the incremental cache."),
		incDirty:        reg.Counter("orpd_inc_dirty_sources_total", "Dirty sources seen at incremental-cache commits."),

		storeAppends: reg.Counter("orpd_store_appends_total", "Run records appended to the persistent store."),
		storeLookups: reg.Counter("orpd_store_lookups_total", "Result-cache misses that consulted the persistent store."),
		storeHits:    reg.Counter("orpd_store_hits_total", "Submissions answered from the persistent store (and re-promoted into the cache)."),
		storeErrors:  reg.Counter("orpd_store_append_errors_total", "Failed appends to the persistent run store."),
		storeRecords: reg.Gauge("orpd_store_records", "Live records in the persistent run store."),
		storeSkipped: reg.Gauge("orpd_store_skipped_records", "Corrupt or foreign regions skipped when the store was opened."),

		httpReq: make(map[string]map[string]*obs.Counter),
		httpSec: make(map[string]*obs.Histogram),
	}
	for _, ep := range apiEndpoints {
		m.httpReq[ep] = make(map[string]*obs.Counter)
		for _, class := range []string{"2xx", "4xx", "5xx"} {
			m.httpReq[ep][class] = reg.Counter(
				fmt.Sprintf(`orpd_http_requests_total{endpoint=%q,code=%q}`, ep, class),
				"API requests by endpoint and status class.")
		}
		m.httpSec[ep] = reg.Histogram(
			fmt.Sprintf(`orpd_http_request_seconds{endpoint=%q}`, ep),
			"Wall-clock of one API request.", obs.ExpBuckets(1e-5, 2, 22))
	}
	return m
}

// httpObserve records one finished API request in the RED set. The
// events endpoint passes seconds < 0: its duration is the client's
// follow-session length, which would poison the latency histograms.
func (m *metrics) httpObserve(endpoint string, code int, seconds float64) {
	class := fmt.Sprintf("%dxx", code/100)
	byClass, ok := m.httpReq[endpoint]
	if !ok {
		return
	}
	if c, ok := byClass[class]; ok {
		c.Inc()
	}
	if seconds >= 0 {
		m.httpSec[endpoint].Observe(seconds)
		m.httpSeconds.Observe(seconds)
	}
}

// queueWait returns the per-priority queue-wait histogram, registering
// the labeled child on first use (priorities are client-chosen ints).
func (m *metrics) queueWait(priority int) *obs.Histogram {
	return m.reg.Histogram(
		fmt.Sprintf(`orpd_queue_wait_seconds{priority="%d"}`, priority),
		"Queue wait before each run episode, by job priority.", obs.ExpBuckets(1e-4, 2, 24))
}

// Server is the orpd service core: scheduler + cache + HTTP API. Wire
// Handler into an http.Server (cmd/orpd does) or call it directly in
// tests and benchmarks.
type Server struct {
	sched   *scheduler
	cache   *resultCache
	store   *runstore.Store // nil without Config.StoreDir
	met     *metrics
	mux     *http.ServeMux
	dataDir string
	ownsDir bool
	started time.Time
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	size := cfg.CacheSize
	if size == 0 {
		size = 1024
	}
	dataDir, ownsDir := cfg.DataDir, false
	if dataDir == "" {
		d, err := os.MkdirTemp("", "orpd-*")
		if err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
		dataDir, ownsDir = d, true
	} else if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := newMetrics(reg)
	cache := newResultCache(size)
	var store *runstore.Store
	if cfg.StoreDir != "" {
		var err error
		store, err = runstore.Open(cfg.StoreDir)
		if err != nil {
			if ownsDir {
				os.RemoveAll(dataDir)
			}
			return nil, fmt.Errorf("serve: run store: %w", err)
		}
		st := store.Stats()
		met.storeRecords.Set(float64(st.Records))
		met.storeSkipped.Set(float64(st.SkippedRecords))
	}
	s := &Server{
		sched:   newScheduler(cfg.Workers, cache, store, dataDir, met, cfg.Retention),
		cache:   cache,
		store:   store,
		met:     met,
		dataDir: dataDir,
		ownsDir: ownsDir,
		started: time.Now(),
	}
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the API handler (Go 1.22 pattern routes):
//
//	POST /v1/jobs             submit a JobSpec
//	GET  /v1/jobs             list jobs (submission order; ?state= filters)
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/events replay + follow the job's JSONL events (?follow=0 for replay only)
//	GET  /v1/history          persistent run records, newest first (?n= limits)
//	GET  /metrics             Prometheus exposition
//	GET  /healthz             liveness (JSON: version, uptime, workers, store)
//	GET  /debug/pprof/...     standard profiles
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.timed("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.timed("list", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed("get", s.handleGet))
	// Long-lived: counted in the RED request counters but kept out of
	// the latency histograms (a follow session lasts as long as its job).
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.counted("events", s.handleEvents))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.met.reg)
	})
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/history", s.timed("history", s.handleHistory))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

// statusWriter captures the response code for the RED counters. It
// forwards Flush so the events stream keeps its incremental delivery.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK // implicit 200 on first Write
	}
	return w.code
}

func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.met.httpObserve(endpoint, sw.status(), time.Since(start).Seconds())
	}
}

func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.met.httpObserve(endpoint, sw.status(), -1)
	}
}

// Submit queues (or cache-answers) a job without going through HTTP.
// The perf workloads and tests drive the server through this.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) { return s.sched.Submit(spec) }

// Wait blocks until the job finishes.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	return s.sched.Wait(ctx, id)
}

// Drain gracefully stops the scheduler: see scheduler.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close drains with a short deadline and removes the owned data dir.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	if s.ownsDir {
		os.RemoveAll(s.dataDir)
	}
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// HealthStatus is the GET /healthz payload: liveness plus enough
// identity to tell which build is serving and whether its history
// survives restarts.
type HealthStatus struct {
	Status        string  `json:"status"` // always "ok" when the process can answer
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Workers       int     `json:"workers"` // global worker budget

	Store StoreStatus `json:"store"`
}

// StoreStatus describes the persistent run store in /healthz.
type StoreStatus struct {
	Enabled        bool   `json:"enabled"`
	Path           string `json:"path,omitempty"`
	Records        int    `json:"records,omitempty"`
	SkippedRecords int    `json:"skippedRecords,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := HealthStatus{
		Status:        "ok",
		Version:       buildinfo.Get().Version,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.sched.budget,
	}
	if s.store != nil {
		stats := s.store.Stats()
		st.Store = StoreStatus{
			Enabled:        true,
			Path:           s.store.Dir(),
			Records:        stats.Records,
			SkippedRecords: stats.SkippedRecords,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHistory serves the persistent run history, newest first (?n=
// limits the count). Without a configured store it returns an empty
// list — the endpoint shape does not depend on deployment flags.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad n %q", q)})
			return
		}
		limit = n
	}
	recs := s.store.Recent(limit)
	if recs == nil {
		recs = []runstore.Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	st, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, apiError{err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // cache hit: the result is already in the payload
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed:
	default:
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf(
			"unknown state %q (want %s, %s, %s or %s)",
			state, StateQueued, StateRunning, StateDone, StateFailed)})
		return
	}
	writeJSON(w, http.StatusOK, s.sched.List(state))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's event log as JSONL: full replay first,
// then live follow until the job finishes or the client goes away
// (?follow=0 stops after the replay). The stream is exactly the schema
// of the CLIs' -trace-out files, starting with the versioned obs header.
//
// The log is ring-buffered; a reader that falls more than the buffer
// capacity behind receives a stream.gap event naming how many events
// were dropped and then continues from the live window. The stream is
// therefore always well-formed JSONL and always terminates once the job
// is done — never a hang, never a torn record.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, ok := s.sched.Events(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	follow := r.URL.Query().Get("follow") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	next := 0
	for {
		batch, n, dropped, closed, changed := log.ReadFrom(next)
		if dropped > 0 {
			if enc.Encode(obs.Event{Kind: KindStreamGap,
				F: map[string]float64{"dropped": float64(dropped)}}) != nil {
				return
			}
		}
		for _, e := range batch {
			if enc.Encode(e) != nil {
				return
			}
		}
		if len(batch) > 0 || dropped > 0 {
			flush()
		}
		next = n
		if closed && len(batch) == 0 {
			return // drained past the final event
		}
		if !follow && len(batch) == 0 {
			return // replay-only mode: caught up with the live window
		}
		if !closed && len(batch) == 0 {
			select {
			case <-changed:
			case <-r.Context().Done():
				return
			}
		}
	}
}
