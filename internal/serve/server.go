package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 1024-entry cache, checkpoints in a fresh temp dir.
type Config struct {
	// Workers is the global worker budget shared by every concurrent
	// job. 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the result-cache capacity in entries. 0 means 1024.
	// The cache is load-bearing for the service's latency contract, so
	// it cannot be disabled; values < 1 are treated as a 1-entry cache.
	CacheSize int
	// DataDir holds per-job checkpoint files. "" creates a temp dir
	// owned by the server (removed on Close).
	DataDir string
	// Registry receives the orpd_* instruments and is served at
	// /metrics. Nil builds a private one.
	Registry *obs.Registry
}

// metrics is the orpd instrument set.
type metrics struct {
	reg                                   *obs.Registry
	submitted, done, failed, hits, misses *obs.Counter
	preemptions                           *obs.Counter
	queueDepth, workersBusy               *obs.Gauge
	jobSeconds, httpSeconds               *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:         reg,
		submitted:   reg.Counter("orpd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs."),
		done:        reg.Counter("orpd_jobs_done_total", "Jobs finished successfully (cache hits included)."),
		failed:      reg.Counter("orpd_jobs_failed_total", "Jobs that ended in an error."),
		hits:        reg.Counter("orpd_cache_hits_total", "Submissions answered from the result cache."),
		misses:      reg.Counter("orpd_cache_misses_total", "Submissions that had to run an engine."),
		preemptions: reg.Counter("orpd_preemptions_total", "Checkpoint preemptions of running jobs."),
		queueDepth:  reg.Gauge("orpd_queue_depth", "Jobs waiting for workers."),
		workersBusy: reg.Gauge("orpd_workers_busy", "Workers currently granted to running jobs."),
		jobSeconds:  reg.Histogram("orpd_job_seconds", "Wall-clock of one engine run.", obs.ExpBuckets(1e-4, 2, 24)),
		httpSeconds: reg.Histogram("orpd_http_request_seconds", "Wall-clock of one API request.", obs.ExpBuckets(1e-5, 2, 22)),
	}
}

// Server is the orpd service core: scheduler + cache + HTTP API. Wire
// Handler into an http.Server (cmd/orpd does) or call it directly in
// tests and benchmarks.
type Server struct {
	sched   *scheduler
	cache   *resultCache
	met     *metrics
	mux     *http.ServeMux
	dataDir string
	ownsDir bool
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	size := cfg.CacheSize
	if size == 0 {
		size = 1024
	}
	dataDir, ownsDir := cfg.DataDir, false
	if dataDir == "" {
		d, err := os.MkdirTemp("", "orpd-*")
		if err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
		dataDir, ownsDir = d, true
	} else if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := newMetrics(reg)
	cache := newResultCache(size)
	s := &Server{
		sched:   newScheduler(cfg.Workers, cache, dataDir, met),
		cache:   cache,
		met:     met,
		dataDir: dataDir,
		ownsDir: ownsDir,
	}
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the API handler (Go 1.22 pattern routes):
//
//	POST /v1/jobs             submit a JobSpec
//	GET  /v1/jobs             list jobs (submission order)
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/events replay + follow the job's JSONL events
//	GET  /metrics             Prometheus exposition
//	GET  /healthz             liveness
//	GET  /debug/pprof/...     standard profiles
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.timed(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.timed(s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed(s.handleGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents) // long-lived: not in the latency histogram
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.met.reg)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.met.httpSeconds.Observe(time.Since(start).Seconds())
	}
}

// Submit queues (or cache-answers) a job without going through HTTP.
// The perf workloads and tests drive the server through this.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) { return s.sched.Submit(spec) }

// Wait blocks until the job finishes.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	return s.sched.Wait(ctx, id)
}

// Drain gracefully stops the scheduler: see scheduler.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close drains with a short deadline and removes the owned data dir.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	if s.ownsDir {
		os.RemoveAll(s.dataDir)
	}
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	st, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, apiError{err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // cache hit: the result is already in the payload
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's event log as JSONL: full replay first,
// then live follow until the job finishes or the client goes away. The
// stream is exactly the schema of the CLIs' -trace-out files, starting
// with the versioned obs header.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, ok := s.sched.Events(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	replay, follow, unsubscribe := log.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, e := range replay {
		if enc.Encode(e) != nil {
			return
		}
	}
	flush()
	for {
		select {
		case e, open := <-follow:
			if !open {
				return // job finished (or this subscriber overran)
			}
			if enc.Encode(e) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
