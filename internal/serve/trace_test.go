package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// jobSpanTree fetches the job's event log and returns its root "job"
// span node.
func jobSpanTree(t *testing.T, s *Server, id string) *obs.SpanNode {
	t.Helper()
	log, ok := s.sched.Events(id)
	if !ok {
		t.Fatalf("no event log for %s", id)
	}
	roots := obs.BuildSpanTrees(log.Snapshot())
	for _, r := range roots {
		if r.Name == "job" {
			return r
		}
	}
	t.Fatalf("no root job span among %d roots", len(roots))
	return nil
}

// TestJobTraceDecomposition is the tracing acceptance contract: a
// preempted-then-resumed anneal's trace decomposes ≥95% of the job's
// wall time into non-overlapping top-level phases (admission,
// cache.lookup, alternating queue.wait and run episodes), with the
// engine's stage spans and the encode span nested under the run
// episodes.
func TestJobTraceDecomposition(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ast, err := s.Submit(JobSpec{
		Type: TypeAnneal, Graph: graphText(t, 64, 20, 7, 9),
		Iterations: 60_000, Seed: 4, EvalMode: "incremental", Priority: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := s.sched.Get(ast.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anneal never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A high-priority job on a 1-worker budget forces a preemption.
	est, err := s.Submit(JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 1, Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, est.ID)
	if st := waitDone(t, s, ast.ID); st.State != StateDone || st.Preemptions < 1 {
		t.Fatalf("state %s preemptions %d err %q; the round trip never happened",
			st.State, st.Preemptions, st.Error)
	}

	root := jobSpanTree(t, s, ast.ID)
	if root.S["outcome"] != "done" {
		t.Fatalf("root outcome %q", root.S["outcome"])
	}
	if cov := root.CoveredFraction(); cov < 0.95 {
		t.Errorf("children cover %.4f of the job span, want >= 0.95", cov)
	}
	if ov := root.MaxSiblingOverlap(); ov > 1e-3 {
		t.Errorf("top-level phases overlap by %.6fs, want disjoint", ov)
	}

	var waits, runs int
	var outcomes []string
	for _, c := range root.Children {
		switch c.Name {
		case "admission", "cache.lookup":
		case "queue.wait":
			waits++
		case "run":
			runs++
			outcomes = append(outcomes, c.S["outcome"])
		default:
			t.Errorf("unexpected top-level phase %q", c.Name)
		}
	}
	if waits < 2 || runs < 2 {
		t.Fatalf("preempted job has %d queue.wait and %d run episodes, want >= 2 each", waits, runs)
	}
	if outcomes[0] != "preempted" || outcomes[len(outcomes)-1] != "done" {
		t.Fatalf("run episode outcomes %v, want preempted...done", outcomes)
	}

	// Engine stages and the encode span nest under the run episodes.
	nested := map[string]bool{}
	for _, c := range root.Children {
		if c.Name != "run" {
			continue
		}
		for _, cc := range c.Children {
			nested[cc.Name] = true
		}
	}
	for _, want := range []string{"anneal.loop", "encode"} {
		if !nested[want] {
			t.Errorf("run episodes are missing a nested %q span: %v", want, nested)
		}
	}

	// The same stream renders as a Chrome trace and a waterfall.
	log, _ := s.sched.Events(ast.ID)
	if rows := obs.SpanTraceEvents(log.Snapshot()); len(rows) < 5 {
		t.Errorf("chrome trace export produced %d rows", len(rows))
	}
	var sb strings.Builder
	if err := obs.WriteSpanTree(&sb, []*obs.SpanNode{root}, 32); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "queue.wait") {
		t.Errorf("waterfall rendering lost the phases:\n%s", sb.String())
	}
}

// TestCachedJobTrace pins that even an instant cache-hit job leaves a
// complete, well-formed trace.
func TestCachedJobTrace(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	spec := JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 3}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	hit, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second submission missed the cache")
	}
	root := jobSpanTree(t, s, hit.ID)
	if root.F["cached"] != 1 || root.S["outcome"] != "done" {
		t.Fatalf("cached job root span: %+v %+v", root.F, root.S)
	}
	var lookup *obs.SpanNode
	for _, c := range root.Children {
		if c.Name == "cache.lookup" {
			lookup = c
		}
	}
	if lookup == nil || lookup.F["hit"] != 1 {
		t.Fatalf("cache.lookup span missing or not a hit: %+v", lookup)
	}
}

// TestEventsFollowGapMarker pins the overrun contract of the events
// stream: when the ring buffer has already trimmed events a follower
// never saw, the stream opens with a stream.gap marker naming the loss,
// stays valid JSONL, and terminates — it never hangs and never tears a
// record.
func TestEventsFollowGapMarker(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A hand-planted job with a tiny ring, already overrun and closed.
	l := newEventLogCap(8)
	for i := 0; i < 100; i++ {
		l.Append(obs.Event{Kind: "x", T: float64(i)})
	}
	l.Close(obs.Event{Kind: KindJobDone})
	s.sched.mu.Lock()
	s.sched.jobs["jgap"] = &job{id: "jgap", log: l}
	s.sched.mu.Unlock()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/jgap/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, err := obs.ReadJSONL(resp.Body) // fails on any torn record
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Kind != KindStreamGap {
		t.Fatalf("overrun stream does not open with stream.gap: %v", events[0].Kind)
	}
	// header + 100 appends + final = 102 total; 8 remain buffered.
	if got := events[0].F["dropped"]; got != 102-8 {
		t.Fatalf("gap reports %v dropped, want %d", got, 102-8)
	}
	if len(events) != 9 { // gap marker + the 8-event window (incl. final)
		t.Fatalf("stream has %d events, want 9", len(events))
	}
	if events[len(events)-1].Kind != KindJobDone {
		t.Fatalf("stream does not terminate at job.done: %v", events[len(events)-1].Kind)
	}

	// A live follower that connects before the overrun also terminates
	// (possibly with a mid-stream gap) once the log closes.
	l2 := newEventLogCap(8)
	s.sched.mu.Lock()
	s.sched.jobs["jgap2"] = &job{id: "jgap2", log: l2}
	s.sched.mu.Unlock()
	go func() {
		for i := 0; i < 200; i++ {
			l2.Append(obs.Event{Kind: "x", T: float64(i)})
		}
		l2.Close(obs.Event{Kind: KindJobDone})
	}()
	resp2, err := client.Get(ts.URL + "/v1/jobs/jgap2/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2, err := obs.ReadJSONL(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if events2[len(events2)-1].Kind != KindJobDone {
		t.Fatal("live follow did not terminate at job.done")
	}

	// ?follow=0 returns immediately even on a still-open log.
	l3 := newEventLogCap(8)
	l3.Append(obs.Event{Kind: "x"})
	s.sched.mu.Lock()
	s.sched.jobs["jgap3"] = &job{id: "jgap3", log: l3}
	s.sched.mu.Unlock()
	resp3, err := client.Get(ts.URL + "/v1/jobs/jgap3/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if events3, err := obs.ReadJSONL(strings.NewReader(string(b))); err != nil || len(events3) != 2 {
		t.Fatalf("replay-only stream: %d events err %v", len(events3), err)
	}
}

// TestJobRetentionGC pins the TTL: finished jobs past the retention
// window disappear from the index (counted by orpd_jobs_evicted_total)
// while unfinished jobs are untouched, and the listing order of the
// survivors is unchanged.
func TestJobRetentionGC(t *testing.T) {
	s := testServer(t, Config{Workers: 2, Retention: time.Hour})
	st, err := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	st2, err := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st2.ID)

	if got := s.sched.List(""); len(got) != 2 {
		t.Fatalf("list before expiry: %d jobs", len(got))
	}

	// Move the scheduler's clock past the window: both finished jobs
	// expire on the next API touch.
	s.sched.mu.Lock()
	s.sched.clock = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.sched.mu.Unlock()

	if got := s.sched.List(""); len(got) != 0 {
		t.Fatalf("expired jobs still listed: %+v", got)
	}
	if _, ok := s.sched.Get(st.ID); ok {
		t.Fatal("expired job still gettable")
	}
	if got := s.met.evicted.Value(); got != 2 {
		t.Fatalf("evicted counter %d, want 2", got)
	}

	// The result cache is unaffected: resubmission is still a hit.
	hit, err := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("eviction took the cached result with it")
	}
}

// TestListStateFilterHTTP pins GET /v1/jobs?state=: valid states filter,
// anything else is a 400, and order stays submission order.
func TestListStateFilterHTTP(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		st, err := s.Submit(JobSpec{Type: TypeEval, N: 24, M: 8, R: 5, GraphSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitDone(t, s, st.ID)
	}

	getList := func(q string) ([]JobStatus, int) {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var list []JobStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
		}
		return list, resp.StatusCode
	}

	done, code := getList("?state=done")
	if code != http.StatusOK || len(done) != 3 {
		t.Fatalf("?state=done: code %d len %d", code, len(done))
	}
	for i, st := range done {
		if st.ID != ids[i] {
			t.Fatalf("listing order changed: %v vs %v", st.ID, ids[i])
		}
	}
	if failed, code := getList("?state=failed"); code != http.StatusOK || len(failed) != 0 {
		t.Fatalf("?state=failed: code %d len %d", code, len(failed))
	}
	if _, code := getList("?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("?state=bogus: code %d, want 400", code)
	}
}

// TestServiceMetricsExposition pins the instrument surface the dashboard
// (cmd/orptop) and CI scrape: flat legacy families survive, the RED
// per-endpoint children appear, and a ladder-mode anneal feeds the
// orpd_ladder_* / orpd_inc_* counters.
func TestServiceMetricsExposition(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"type":"anneal","graph":` + jsonString(graphText(t, 48, 16, 6, 3)) +
		`,"iterations":4000,"seed":5,"evalMode":"ladder"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st = waitDone(t, s, st.ID); st.State != StateDone {
		t.Fatalf("anneal failed: %q", st.Error)
	}
	if resp, err = http.Get(ts.URL + "/v1/jobs"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"orpd_jobs_submitted_total 1", // flat families stay (CI greps them)
		"orpd_jobs_done_total 1",
		`orpd_http_requests_total{endpoint="submit",code="2xx"} 1`,
		`orpd_http_requests_total{endpoint="list",code="2xx"} 1`,
		`orpd_http_request_seconds_count{endpoint="submit"} 1`,
		"orpd_jobs_evicted_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The ladder run reported at least one sampling interval, so the
	// introspection counters moved.
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"orpd_ladder_bound_decided_total", "orpd_inc_syncs_total", "orpd_inc_swept_sources_total",
	} {
		if v, ok := scalarMetric(fams, name); !ok || v <= 0 {
			t.Errorf("%s = %v (present %v), want > 0", name, v, ok)
		}
	}
	// Queue-wait histograms appear per priority.
	if !strings.Contains(text, `orpd_queue_wait_seconds_count{priority="0"} 1`) {
		t.Errorf("missing per-priority queue wait histogram:\n%s",
			firstMatching(text, "orpd_queue_wait"))
	}
}

// scalarMetric finds the first unlabeled sample of a family.
func scalarMetric(samples []obs.PromSample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func firstMatching(text, substr string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return "(no line matches " + substr + ")"
}
