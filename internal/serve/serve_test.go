package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/rng"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

func graphText(t *testing.T, n, m, r int, seed uint64) string {
	t.Helper()
	g, err := hsgraph.RandomConnected(n, m, r, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hsgraph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestEvalJobAndCacheByteIdentity(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	spec := JobSpec{Type: TypeEval, N: 48, M: 16, R: 6, GraphSeed: 7}

	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 = waitDone(t, s, st1.ID)
	if st1.State != StateDone {
		t.Fatalf("job 1: state %s err %q", st1.State, st1.Error)
	}
	if st1.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	var res EvalResult
	if err := json.Unmarshal(st1.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Connected || res.Graph.HASPL <= 0 {
		t.Fatalf("implausible eval result: %+v", res.Graph)
	}

	// Second identical submission: immediate, cached, byte-identical.
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("repeat submission not served from cache: state %s cached %v", st2.State, st2.Cached)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", st1.Result, st2.Result)
	}

	// The same graph submitted inline (different spec spelling, same
	// canonical content) must hit too: the key is the fingerprint.
	st3, err := s.Submit(JobSpec{Type: TypeEval, Graph: graphText(t, 48, 16, 6, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Fatal("inline vs generated spell the graph source differently and must not share a key")
	}
	st3 = waitDone(t, s, st3.ID)
	if !bytes.Equal(st1.Result, st3.Result) {
		t.Fatalf("same graph, different result bytes:\n%s\nvs\n%s", st1.Result, st3.Result)
	}

	// And now the inline spelling is cached under its own key: a
	// storage-order-permuted copy of the same graph must hit it.
	g, err := hsgraph.Read(strings.NewReader(graphText(t, 48, 16, 6, 7)))
	if err != nil {
		t.Fatal(err)
	}
	perm := rebuildShuffledServe(t, g)
	var buf bytes.Buffer
	if err := hsgraph.Write(&buf, perm); err != nil {
		t.Fatal(err)
	}
	st4, err := s.Submit(JobSpec{Type: TypeEval, Graph: buf.String()})
	if err != nil {
		t.Fatal(err)
	}
	if !st4.Cached {
		t.Fatal("storage-order permutation missed the cache: fingerprint key broken")
	}
	if !bytes.Equal(st3.Result, st4.Result) {
		t.Fatal("cache hit not byte-identical across storage orders")
	}
}

// rebuildShuffledServe rebuilds g with a different insertion order (the
// same labeled graph, permuted internal storage).
func rebuildShuffledServe(t *testing.T, g *hsgraph.Graph) *hsgraph.Graph {
	t.Helper()
	rnd := rng.New(99)
	c := hsgraph.New(g.Order(), g.Switches(), g.Radix())
	for _, h := range rnd.Perm(g.Order()) {
		if s := g.SwitchOf(h); s != -1 {
			if err := c.AttachHost(h, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, i := range rnd.Perm(g.NumEdges()) {
		a, b := g.Edge(i)
		if err := c.Connect(a, b); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAnnealJobInlineGraph(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	st, err := s.Submit(JobSpec{
		Type: TypeAnneal, Graph: graphText(t, 48, 16, 6, 3),
		Iterations: 2000, Seed: 5, EvalMode: "incremental",
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state %s err %q", st.State, st.Error)
	}
	var res AnnealResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Anneal == nil || res.Anneal.Best.TotalPath > res.Anneal.Initial.TotalPath {
		t.Fatalf("anneal did not improve: %+v", res.Anneal)
	}
	// The returned graph text must round-trip to the returned fingerprint.
	g, err := hsgraph.Read(strings.NewReader(res.GraphText))
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint().String() != res.Fingerprint {
		t.Fatal("graphText does not match fingerprint")
	}
}

func TestAnnealJobDesignProblem(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	// n <= r: single-switch regime, instant.
	st, err := s.Submit(JobSpec{Type: TypeAnneal, N: 8, R: 10})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state %s err %q", st.State, st.Error)
	}
	var res AnnealResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Method != "single-switch" || res.Graph.HASPL != 2 {
		t.Fatalf("expected single-switch h-ASPL 2, got %+v", res)
	}
}

func TestSweepJob(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	st, err := s.Submit(JobSpec{
		Type: TypeSweep, N: 48, M: 16, R: 6, GraphSeed: 2,
		Model: "links", Fractions: []float64{0.05, 0.1}, Trials: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state %s err %q", st.State, st.Error)
	}
	var res SweepResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Fraction != 0.05 {
		t.Fatalf("unexpected sweep points: %+v", res.Points)
	}
	// Repeat: cached, byte-identical.
	st2, err := s.Submit(JobSpec{
		Type: TypeSweep, N: 48, M: 16, R: 6, GraphSeed: 2,
		Model: "links", Fractions: []float64{0.05, 0.1}, Trials: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || !bytes.Equal(st.Result, st2.Result) {
		t.Fatal("repeat sweep not a byte-identical cache hit")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	bad := []JobSpec{
		{Type: "mine-bitcoin"},
		{Type: TypeEval},                                    // no graph source
		{Type: TypeEval, N: 48, R: 6},                       // eval needs m
		{Type: TypeEval, Graph: "garbage"},                  // unparseable
		{Type: TypeAnneal, N: 48, R: 6, Graph: "x", M: 16},  // both sources
		{Type: TypeAnneal, N: 48, R: 6, EvalMode: "wrong"},  // bad enum
		{Type: TypeSweep, N: 48, M: 16, R: 6, Model: "bad"}, // bad model
		{Type: TypeSweep, N: 48, M: 16, R: 6, Fractions: []float64{2}},
		{Type: TypeEval, N: 48, M: 16, R: 6, Workers: -1},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestHTTPAPI(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit over HTTP.
	body := `{"type":"eval","n":48,"m":16,"r":6,"graphSeed":1}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	waitDone(t, s, st.ID)

	// Status.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("GET job: %+v", got)
	}

	// Repeat POST: cache hit carries the result immediately with 200.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var hit JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !hit.Cached || hit.Result == nil {
		t.Fatalf("cache-hit POST: status %d cached %v", resp.StatusCode, hit.Cached)
	}
	if !bytes.Equal(hit.Result, got.Result) {
		t.Fatal("HTTP cache hit not byte-identical")
	}

	// List.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}

	// Unknown job: 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status %d", resp.StatusCode)
	}

	// Metrics exposition names the orpd instruments.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"orpd_jobs_submitted_total 2", "orpd_cache_hits_total 1", "orpd_cache_misses_total 1"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestEventStreamReplayAndFollow(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobSpec{
		Type: TypeSweep, N: 48, M: 16, R: 6, GraphSeed: 4,
		Fractions: []float64{0.05}, Trials: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Follow while running: the stream ends at job.done on its own.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, err := obs.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != obs.KindHeader {
		t.Fatalf("stream does not start with the obs header: %+v", events)
	}
	if events[0].F["version"] != obs.SchemaVersion {
		t.Fatalf("wrong schema version: %v", events[0].F)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[KindJobQueued] != 1 || kinds[KindJobRunning] < 1 || kinds[KindJobDone] != 1 {
		t.Fatalf("missing lifecycle events: %v", kinds)
	}
	if kinds[obs.KindSweepTrial] != 6 {
		t.Fatalf("want 6 sweep.trial events, got %d", kinds[obs.KindSweepTrial])
	}
	if events[len(events)-1].Kind != KindJobDone {
		t.Fatalf("stream does not end with job.done: %v", events[len(events)-1].Kind)
	}

	// Replay after completion: the identical full stream.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay, err := obs.ReadJSONL(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(events) {
		t.Fatalf("replay has %d events, live follow had %d", len(replay), len(events))
	}
}

func TestDrainRejectsAndUnwinds(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	// A long anneal to be mid-flight at drain time.
	st, err := s.Submit(JobSpec{
		Type: TypeAnneal, Graph: graphText(t, 64, 20, 7, 1),
		Iterations: 5_000_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to actually start.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := s.sched.Get(st.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drained: submissions bounce.
	if _, err := s.Submit(JobSpec{Type: TypeEval, N: 8, M: 2, R: 5, GraphSeed: 1}); err != ErrDraining {
		t.Fatalf("submit after drain: %v", err)
	}
	// The interrupted job is back in queued state with its checkpoint
	// flushed, ready for a future process to resume.
	got, _ := s.sched.Get(st.ID)
	if got.State != StateQueued || got.Preemptions != 1 {
		t.Fatalf("after drain: state %s preemptions %d", got.State, got.Preemptions)
	}
}
