package serve

import (
	"sync"

	"repro/internal/obs"
)

// Serve-specific event kinds, extending the obs schema (which grows by
// design: consumers tolerate unknown kinds).
const (
	// KindJobQueued/Running/Preempted/Done mark job lifecycle
	// transitions. f: priority, workers; done also carries cached (0/1)
	// and failed (0/1), s: optionally "error".
	KindJobQueued    = "job.queued"
	KindJobRunning   = "job.running"
	KindJobPreempted = "job.preempted"
	KindJobDone      = "job.done"
	// KindStreamGap is emitted into a follow stream (never stored in the
	// log itself) when the log's ring buffer overwrote events the reader
	// had not consumed yet. f: dropped — how many events are gone. The
	// stream stays valid JSONL and keeps following; only the marked
	// window is missing. Part of the schema-v2 follow contract.
	KindStreamGap = "stream.gap"
)

// defaultLogCap bounds one job's in-memory event history. Big enough for
// any realistic job (tens of thousands of interval samples); a job that
// outgrows it keeps only the most recent window, and followers that fall
// behind the window see a stream.gap marker instead of stale memory
// growth or a stalled scheduler.
const defaultLogCap = 16384

// eventLog is one job's telemetry stream: a ring-buffered JSONL event
// sequence with absolute indexing plus change notification for
// followers. The first event is the versioned obs header; the last is
// always job.done, after which the log is closed.
//
// Appends come from the scheduler, the job's span tracer and engine
// observers (anneal samples, sweep trials) — any goroutine. Appends
// never block on readers: a reader that falls more than the buffer
// capacity behind simply finds its next index trimmed and reports the
// gap (see ReadFrom), so a dead client can never stall an engine.
type eventLog struct {
	mu      sync.Mutex
	cap     int
	base    int // absolute index of events[0]
	events  []obs.Event
	closed  bool
	changed chan struct{} // closed and replaced on every append/close
}

func newEventLog() *eventLog { return newEventLogCap(defaultLogCap) }

func newEventLogCap(capacity int) *eventLog {
	if capacity < 2 {
		capacity = 2 // room for the header and at least one live event
	}
	l := &eventLog{cap: capacity, changed: make(chan struct{})}
	l.Append(obs.Header())
	return l
}

// Append records e, trimming the oldest events past the ring capacity,
// and wakes followers.
func (l *eventLog) Append(e obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.appendLocked(e)
	l.bumpLocked()
}

func (l *eventLog) appendLocked(e obs.Event) {
	l.events = append(l.events, e)
	if len(l.events) > l.cap {
		trim := len(l.events) - l.cap
		l.base += trim
		n := copy(l.events, l.events[trim:])
		for i := n; i < len(l.events); i++ {
			l.events[i] = obs.Event{} // release the trimmed payloads
		}
		l.events = l.events[:n]
	}
}

// bumpLocked signals waiting followers by closing the current change
// channel and installing a fresh one. A follower always waits on the
// channel it got from ReadFrom, so a signal between its read and its
// wait is never lost (the channel it holds is already closed).
func (l *eventLog) bumpLocked() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// Close appends the final event and ends the stream: ReadFrom reports
// closed once the reader has drained past the final event.
func (l *eventLog) Close(final obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.appendLocked(final)
	l.closed = true
	l.bumpLocked()
}

// ReadFrom returns the buffered events at absolute index >= from.
// dropped counts events that were trimmed before the reader got to them
// (0 for a healthy reader); next is the absolute index to resume from;
// closed reports that the log has its final event (the stream ends once
// the reader has consumed up to next == total); changed is closed on the
// next append or close, so a follower can wait without polling.
func (l *eventLog) ReadFrom(from int) (batch []obs.Event, next int, dropped int, closed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		dropped = l.base - from
		from = l.base
	}
	if off := from - l.base; off < len(l.events) {
		batch = append([]obs.Event(nil), l.events[off:]...)
	}
	return batch, from + len(batch), dropped, l.closed, l.changed
}

// Snapshot returns the events still buffered (the full history for any
// job within the ring capacity).
func (l *eventLog) Snapshot() []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.Event(nil), l.events...)
}

// Len returns base+len: the total number of events ever appended.
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + len(l.events)
}
