package serve

import (
	"sync"

	"repro/internal/obs"
)

// Serve-specific event kinds, extending the obs schema (which grows by
// design: consumers tolerate unknown kinds).
const (
	// KindJobQueued/Running/Preempted/Done mark job lifecycle
	// transitions. f: priority, workers; done also carries cached (0/1)
	// and failed (0/1), s: optionally "error".
	KindJobQueued    = "job.queued"
	KindJobRunning   = "job.running"
	KindJobPreempted = "job.preempted"
	KindJobDone      = "job.done"
)

// eventLog is one job's telemetry stream: a replayable in-memory JSONL
// event sequence plus live fan-out to followers. The first event is the
// versioned obs header; the last is always job.done, after which the
// log is closed and followers drain.
//
// Appends come from the scheduler and from engine observers (anneal
// samples, sweep trials) — any goroutine. A healthy subscriber gets
// every event exactly once in order: Subscribe returns the events so
// far and a channel carrying the rest. An overrun subscriber is
// evicted (see Append).
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
	subs   map[chan obs.Event]struct{}
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{subs: make(map[chan obs.Event]struct{})}
	l.Append(obs.Header())
	return l
}

// Append records e and forwards it to live subscribers. Sends never
// block: a subscriber that falls a full channel buffer behind the
// emitters (a wedged client connection) is evicted — its channel closes
// early, which the streaming handler reports as truncation — so a dead
// reader can never stall the scheduler or an engine observer.
func (l *eventLog) Append(e obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	for ch := range l.subs {
		select {
		case ch <- e:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// Close appends the final event and ends the stream: follower channels
// are closed after it, and later Subscribe calls see a complete replay
// with a closed channel.
func (l *eventLog) Close(final obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, final)
	for ch := range l.subs {
		select {
		case ch <- final:
		default: // evicted as overrun; closed below either way
		}
		close(ch)
	}
	l.subs = nil
	l.closed = true
}

// Subscribe returns every event so far plus a channel for the rest.
// The channel is closed when the job finishes (nil and closed when it
// already has). Cancel with unsubscribe; after Close, unsubscribe is a
// no-op.
func (l *eventLog) Subscribe() (replay []obs.Event, follow <-chan obs.Event, unsubscribe func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = append([]obs.Event(nil), l.events...)
	if l.closed {
		ch := make(chan obs.Event)
		close(ch)
		return replay, ch, func() {}
	}
	// Capacity for a whole stream of interval samples; Append blocks
	// only if a follower is slower than the engine's sampling cadence
	// for thousands of intervals.
	ch := make(chan obs.Event, 4096)
	l.subs[ch] = struct{}{}
	return replay, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// Snapshot returns the events recorded so far.
func (l *eventLog) Snapshot() []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.Event(nil), l.events...)
}
