// Package rng provides small, fast, deterministic pseudo-random number
// generators whose output is stable across Go releases and platforms.
//
// The standard library's math/rand does not guarantee a stable stream
// across Go versions, which would make the repository's experiments
// non-reproducible. Every randomized component in this module therefore
// takes an explicit *rng.Rand seeded by the caller.
package rng

import (
	"errors"
	"math/bits"
)

// SplitMix64 advances a SplitMix64 state and returns the next value.
// It is used both as a standalone mixer and to seed xoshiro256**.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New. Rand is not safe for concurrent use; give each goroutine its
// own instance (e.g. via Split).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64,
// following the reference seeding procedure for xoshiro256**.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 of any seed yields one
	// with overwhelming probability, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// State returns the generator's internal xoshiro256** state so it can be
// checkpointed. FromState(r.State()) yields a generator that continues
// r's stream exactly where it left off.
func (r *Rand) State() [4]uint64 { return r.s }

// FromState reconstructs a generator from a State() snapshot. The all-zero
// state is invalid for xoshiro256** (the stream would be constant zero) and
// is rejected; it cannot be produced by New or by use, so encountering it
// means the snapshot is corrupt.
func FromState(s [4]uint64) (*Rand, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, errors.New("rng: all-zero state is not a valid xoshiro256** state")
	}
	return &Rand{s: s}, nil
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so a parent that Splits n
// children in a fixed order always produces the same children.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

// Uint64 returns the next value of the xoshiro256** stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless method.
func (r *Rand) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}
