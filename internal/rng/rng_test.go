package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the public
	// reference implementation by Sebastiano Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

// TestStateRoundTrip: FromState(State()) must continue the stream exactly
// — the property the checkpoint/resume subsystem rests on.
func TestStateRoundTrip(t *testing.T) {
	r := New(1234)
	for i := 0; i < 57; i++ { // advance to an arbitrary mid-stream point
		r.Uint64()
	}
	clone, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("restored generator diverged at step %d: %#x vs %#x", i, a, b)
		}
	}
	// The snapshot is a copy: mutating the original must not move it.
	s := r.State()
	r.Uint64()
	if s != r.State() {
		// expected: states differ after advancing
	} else {
		t.Fatal("State() did not change after Uint64()")
	}
}

func TestFromStateRejectsZero(t *testing.T) {
	if _, err := FromState([4]uint64{}); err == nil {
		t.Fatal("FromState accepted the all-zero state")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
	// Splitting from a fresh same-seed parent must reproduce the children.
	p2 := New(7)
	d1 := p2.Split()
	d2 := p2.Split()
	p3 := New(7)
	g1 := p3.Split()
	g2 := p3.Split()
	for i := 0; i < 100; i++ {
		if d1.Uint64() != g1.Uint64() || d2.Uint64() != g2.Uint64() {
			t.Fatalf("Split derivation is not deterministic at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 10 buckets, 100k samples.
	r := New(2024)
	const buckets, samples = 10, 100000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[r.Intn(buckets)]++
	}
	expect := float64(samples) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d has %d samples, expected ~%.0f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickCoversAllElements(t *testing.T) {
	r := New(3)
	xs := []int{10, 20, 30, 40}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != len(xs) {
		t.Fatalf("Pick covered %d/%d elements after 1000 draws", len(seen), len(xs))
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
