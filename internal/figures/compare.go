package figures

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/partition"
	"repro/internal/phys"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Comparison bundles one of the paper's §6.3 head-to-heads: a conventional
// topology and the proposed topology at the same (n, r).
type Comparison struct {
	Kind     string // "torus" | "dragonfly" | "fattree"
	N        int
	R        int
	Baseline *hsgraph.Graph
	Proposed *hsgraph.Graph
}

// Kinds lists the supported comparison kinds in paper order
// (Fig. 9, Fig. 10, Fig. 11).
var Kinds = []string{"torus", "dragonfly", "fattree"}

// proposals caches solved proposed topologies: SA at n=1024 is the
// expensive step and Figs. 9 and 10 share the r=15 instance.
var (
	proposalMu sync.Mutex
	proposals  = map[string]*hsgraph.Graph{}
)

// ProposedTopology solves the ORP instance for (n, r) and applies the
// paper's depth-first host relabeling (§6.2.1). Results are cached per
// (n, r, iterations, seed).
func ProposedTopology(n, r, iterations int, seed uint64) (*hsgraph.Graph, error) {
	key := fmt.Sprintf("%d/%d/%d/%d", n, r, iterations, seed)
	proposalMu.Lock()
	g, ok := proposals[key]
	proposalMu.Unlock()
	if ok {
		return g, nil
	}
	top, err := core.Solve(n, r, core.Options{Iterations: iterations, Seed: seed})
	if err != nil {
		return nil, err
	}
	g = topo.RelabelHostsDFS(top.Graph)
	proposalMu.Lock()
	proposals[key] = g
	proposalMu.Unlock()
	return g, nil
}

// BuildComparison constructs the paper's configuration for a kind:
// torus    - 5-D base-3 torus, r=15, m=243 (Sequoia-like)
// dragonfly- a=8, r=15, m=264 (Cori/Piz-Daint-like)
// fattree  - 16-ary 3-layer fat-tree, r=16, m=320 (Tianhe-2-like)
// against the proposed topology with n=1024 and the same radix.
func BuildComparison(kind string, o Options) (*Comparison, error) {
	o = o.withDefaults()
	const n = 1024
	var spec *topo.Spec
	var err error
	switch kind {
	case "torus":
		spec, err = topo.Torus(5, 3, 15)
	case "dragonfly":
		spec, err = topo.Dragonfly(8)
	case "fattree":
		spec, err = topo.FatTree(16)
	default:
		return nil, fmt.Errorf("figures: unknown comparison %q (have %v)", kind, Kinds)
	}
	if err != nil {
		return nil, err
	}
	base, err := spec.Build(n)
	if err != nil {
		return nil, err
	}
	prop, err := ProposedTopology(n, spec.Radix, o.SAIterations, o.Seed)
	if err != nil {
		return nil, err
	}
	return &Comparison{Kind: kind, N: n, R: spec.Radix, Baseline: base, Proposed: prop}, nil
}

// classFor resolves the per-benchmark NPB class: the paper runs class A
// for IS and FT and class B for the rest; Options.Class 'P' selects that,
// any other value applies uniformly.
func classFor(o Options, bench string) npb.Class {
	if o.Class == 'P' {
		if bench == "IS" || bench == "FT" {
			return npb.ClassA
		}
		return npb.ClassB
	}
	return npb.Class(o.Class)
}

// Performance reproduces Figs. 9a/10a/11a: NPB Mop/s on the baseline and
// the proposed topology.
func (c *Comparison) Performance(o Options) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     fmt.Sprintf("fig-%s-a", c.Kind),
		Title:  fmt.Sprintf("NPB performance, %s vs proposed (n=%d, ranks=%d)", c.Kind, c.N, o.Ranks),
		XLabel: "benchmark index (see labels)",
		YLabel: "Mop/s (simulated)",
	}
	baseNet, err := simnet.NewNetwork(c.Baseline, simnet.Config{})
	if err != nil {
		return fig, err
	}
	propNet, err := simnet.NewNetwork(c.Proposed, simnet.Config{})
	if err != nil {
		return fig, err
	}
	var sBase, sProp Series
	sBase.Label = c.Kind
	sProp.Label = "proposed"
	for i, bench := range o.Benchmarks {
		spec, err := npb.New(bench, classFor(o, bench), o.Ranks)
		if err != nil {
			return fig, fmt.Errorf("figures: %s: %w", bench, err)
		}
		if o.MaxIters > 0 && spec.Iterations > o.MaxIters {
			spec.Iterations = o.MaxIters
		}
		mb, err := runMops(baseNet, spec, o.Ranks)
		if err != nil {
			return fig, fmt.Errorf("figures: %s on %s: %w", bench, c.Kind, err)
		}
		mp, err := runMops(propNet, spec, o.Ranks)
		if err != nil {
			return fig, fmt.Errorf("figures: %s on proposed: %w", bench, err)
		}
		sBase.Points = append(sBase.Points, Point{float64(i), mb})
		sProp.Points = append(sProp.Points, Point{float64(i), mp})
	}
	fig.Series = []Series{sBase, sProp}
	return fig, nil
}

func runMops(nw *simnet.Network, spec *npb.Spec, ranks int) (float64, error) {
	stats, err := mpi.Run(nw, ranks, mpi.Config{}, spec.Program())
	if err != nil {
		return 0, err
	}
	if stats.Elapsed <= 0 {
		return 0, fmt.Errorf("zero elapsed time")
	}
	return spec.NominalOps() / stats.Elapsed / 1e6, nil
}

// Bandwidth reproduces Figs. 9b/10b/11b: the partition-cut bandwidth for
// P = 2..16 parts, computed with the multilevel partitioner (METIS's
// role in the paper).
func (c *Comparison) Bandwidth(o Options) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     fmt.Sprintf("fig-%s-b", c.Kind),
		Title:  fmt.Sprintf("bandwidth (partition cut), %s vs proposed", c.Kind),
		XLabel: "partitions P",
		YLabel: "cut edges",
	}
	var sBase, sProp Series
	sBase.Label = c.Kind
	sProp.Label = "proposed"
	gb := partition.FromHostSwitchGraph(c.Baseline)
	gp := partition.FromHostSwitchGraph(c.Proposed)
	for p := 2; p <= 16; p++ {
		pb, err := partition.KWay(gb, p, o.Seed)
		if err != nil {
			return fig, err
		}
		pp, err := partition.KWay(gp, p, o.Seed)
		if err != nil {
			return fig, err
		}
		sBase.Points = append(sBase.Points, Point{float64(p), float64(partition.EdgeCut(gb, pb))})
		sProp.Points = append(sProp.Points, Point{float64(p), float64(partition.EdgeCut(gp, pp))})
	}
	fig.Series = []Series{sBase, sProp}
	return fig, nil
}

// Power reproduces Figs. 9c/10c/11c: total power versus the number of
// connectable hosts, sweeping the conventional topology's size parameter
// and the proposed topology's order. Proposed points use a random
// saturated graph at m_opt: power depends on m, the edge count and the
// layout, all of which SA leaves essentially unchanged.
func (c *Comparison) Power(o Options) (Figure, error) {
	return c.deploymentSweep(o, "c", "total power (W)", func(rep phys.Report) float64 {
		return rep.TotalPowerW()
	})
}

// Cost reproduces the totals of Figs. 9d/10d/11d (see CostBreakdown for
// the switch/cable split).
func (c *Comparison) Cost(o Options) (Figure, error) {
	return c.deploymentSweep(o, "d", "total cost ($)", func(rep phys.Report) float64 {
		return rep.TotalCost()
	})
}

func (c *Comparison) deploymentSweep(o Options, suffix, ylabel string, metric func(phys.Report) float64) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     fmt.Sprintf("fig-%s-%s", c.Kind, suffix),
		Title:  fmt.Sprintf("%s vs connectable hosts, %s vs proposed", ylabel, c.Kind),
		XLabel: "connectable hosts",
		YLabel: ylabel,
	}
	params := phys.NewParams()
	var sBase, sProp Series
	sBase.Label = c.Kind
	sProp.Label = "proposed"
	specs, err := c.sizeSweep()
	if err != nil {
		return fig, err
	}
	for _, spec := range specs {
		g, err := spec.Build(spec.MaxHosts)
		if err != nil {
			return fig, err
		}
		sBase.Points = append(sBase.Points, Point{float64(spec.MaxHosts), metric(phys.Evaluate(g, params))})
		// Proposed network with the same host count and this spec's radix.
		pg, err := proposedPhysical(spec.MaxHosts, spec.Radix, o.Seed)
		if err != nil {
			return fig, err
		}
		sProp.Points = append(sProp.Points, Point{float64(spec.MaxHosts), metric(phys.Evaluate(pg, params))})
	}
	fig.Series = []Series{sBase, sProp}
	return fig, nil
}

// sizeSweep returns growing instances of the conventional topology for
// the deployment sweeps, per the paper: the torus keeps dimension 5 and
// radix 15 and grows its base; the dragonfly grows a (radix 2a-1); the
// fat-tree grows K (radix K).
func (c *Comparison) sizeSweep() ([]*topo.Spec, error) {
	var out []*topo.Spec
	switch c.Kind {
	case "torus":
		for _, base := range []int{2, 3, 4} {
			sp, err := topo.Torus(5, base, 15)
			if err != nil {
				return nil, err
			}
			out = append(out, sp)
		}
	case "dragonfly":
		for _, a := range []int{4, 6, 8, 10} {
			sp, err := topo.Dragonfly(a)
			if err != nil {
				return nil, err
			}
			out = append(out, sp)
		}
	case "fattree":
		for _, k := range []int{8, 12, 16, 20} {
			sp, err := topo.FatTree(k)
			if err != nil {
				return nil, err
			}
			out = append(out, sp)
		}
	}
	return out, nil
}

// proposedPhysical builds a deployment-equivalent proposed network: a
// random saturated host-switch graph at the m_opt switch count (a
// one-iteration Solve). Deployment metrics depend on m, the edge count
// and the floorplan, all of which simulated annealing leaves unchanged,
// so skipping the SA keeps the sweeps fast without changing the figure.
func proposedPhysical(n, r int, seed uint64) (*hsgraph.Graph, error) {
	top, err := core.Solve(n, r, core.Options{Iterations: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	return top.Graph, nil
}

// Breakdown is the switch/cable cost and power split of Figs. 9d-11d.
type Breakdown struct {
	ID   string
	Rows []BreakdownRow
}

// BreakdownRow is one topology's deployment split.
type BreakdownRow struct {
	Name        string
	Switches    int
	SwitchCost  float64
	CableCost   float64
	SwitchPower float64
	CablePower  float64
}

// Format renders the breakdown as an aligned table.
func (b Breakdown) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", b.ID)
	fmt.Fprintf(&sb, "%-12s%-10s%-14s%-14s%-14s%-14s\n",
		"topology", "switches", "switch-cost", "cable-cost", "switch-W", "cable-W")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-12s%-10d%-14.0f%-14.0f%-14.1f%-14.1f\n",
			r.Name, r.Switches, r.SwitchCost, r.CableCost, r.SwitchPower, r.CablePower)
	}
	return sb.String()
}

// CostBreakdown computes the n=1024 cost/power split for the comparison's
// two topologies (the bar charts of Figs. 9d/10d/11d).
func (c *Comparison) CostBreakdown() Breakdown {
	params := phys.NewParams()
	rows := []BreakdownRow{}
	for _, t := range []struct {
		name string
		g    *hsgraph.Graph
	}{{c.Kind, c.Baseline}, {"proposed", c.Proposed}} {
		rep := phys.Evaluate(t.g, params)
		rows = append(rows, BreakdownRow{
			Name:        t.name,
			Switches:    t.g.Switches(),
			SwitchCost:  rep.SwitchCost,
			CableCost:   rep.CableCost,
			SwitchPower: rep.SwitchPowerW,
			CablePower:  rep.CablePowerW,
		})
	}
	return Breakdown{ID: fmt.Sprintf("fig-%s-d breakdown (n=%d)", c.Kind, c.N), Rows: rows}
}
