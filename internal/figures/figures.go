// Package figures regenerates the data behind every figure of the paper's
// evaluation (Figs. 5-11). Each function returns plain data series so that
// cmd/orpfigures can print them and the repository's benchmarks can check
// their shape. Options default to scaled-down-but-faithful sizes
// (documented per figure); PaperScale restores the paper's parameters.
package figures

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Series is a named list of points.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a set of series with axis labels.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Histogram is a host-distribution figure (Figs. 6 and 8).
type Histogram struct {
	ID     string
	Title  string
	Counts []int // Counts[k] = number of switches with k hosts
}

// Format renders a figure as an aligned text table, one row per x value.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x = %s, y = %s\n", f.XLabel, f.YLabel)
	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-22s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, "%-22.6g", y)
			} else {
				fmt.Fprintf(&b, "%-22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Format renders a histogram.
func (h Histogram) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", h.ID, h.Title)
	fmt.Fprintf(&b, "%-8s%-10s\n", "hosts", "switches")
	for k, c := range h.Counts {
		if c > 0 || k == 0 {
			fmt.Fprintf(&b, "%-8d%-10d\n", k, c)
		}
	}
	return b.String()
}

// Options scales the experiments. The zero value is usable (small sizes);
// PaperScale() reproduces the paper's configuration.
type Options struct {
	// SAIterations is the annealing budget per solve. Default 8000.
	SAIterations int
	// Ranks is the MPI job size for the NPB comparisons. The paper uses
	// 1024; the default 256 keeps the fluid simulation tractable while
	// preserving the class A/B message geometry. Must be a power of four
	// for BT/SP (the paper notes the same power-of-four restriction).
	Ranks int
	// Class is the NPB class: 'P' (default) selects the paper's choice
	// per benchmark (A for IS and FT, B otherwise); any other value
	// applies uniformly ('S' in unit tests).
	Class byte
	// MaxIters caps each benchmark's iteration count (0 = class default).
	// Topology comparisons are iteration-invariant because simulated time
	// scales linearly, so the default 2 loses nothing but wall-clock.
	MaxIters int
	// Benchmarks to run in Figs. 9a/10a/11a. Defaults to all eight.
	Benchmarks []string
	// Seed drives every randomised component.
	Seed uint64
	// Workers is the number of h-ASPL evaluation shard workers per SA run
	// (hsgraph.Evaluator). Zero keeps each run serial, which is the right
	// default here because the figure harness already fans independent
	// runs out across cores. Every figure is worker-invariant.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.SAIterations == 0 {
		o.SAIterations = 8000
	}
	if o.Ranks == 0 {
		o.Ranks = 256
	}
	if o.Class == 0 {
		o.Class = 'P'
	}
	if o.MaxIters == 0 {
		o.MaxIters = 2
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"EP", "IS", "FT", "CG", "MG", "LU", "BT", "SP"}
	}
	return o
}

// PaperScale returns the options matching the paper's §6.2 setup: 1024
// MPI ranks, full class A/B iteration counts and a 100k-step annealing
// budget. Expect hours of wall clock for the all-to-all benchmarks.
func PaperScale() Options {
	return Options{
		SAIterations: 100000,
		Ranks:        1024,
		Class:        'P',
		MaxIters:     -1, // class defaults
		Seed:         1,
	}
}
