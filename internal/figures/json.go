package figures

import (
	"encoding/json"
	"io"
)

// JSON export of experiment results, so figure data can be archived and
// post-processed (plotting, regression tracking) outside the repository.

// WriteJSON writes the figure as indented JSON.
func (f Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteJSON writes the histogram as indented JSON.
func (h Histogram) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// WriteJSON writes the breakdown as indented JSON.
func (b Breakdown) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadFigureJSON parses a figure previously written with WriteJSON.
func ReadFigureJSON(r io.Reader) (Figure, error) {
	var f Figure
	err := json.NewDecoder(r).Decode(&f)
	return f, err
}
