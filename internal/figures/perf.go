package figures

import (
	"fmt"
	"sort"

	"repro/internal/perf"
)

// PerfTrajectory builds the repository's performance-history figure from
// a set of BENCH_*.json reports (the trajectory cmd/orpbench maintains at
// the repo root). Reports are ordered by their CreatedAt stamp (path as
// a tie-break); each workload becomes one series of median wall times
// normalized to its value in the oldest report, so regressions read as
// y > 1 and optimizations as y < 1 on a shared axis. Workloads absent
// from the oldest report are normalized to their first appearance.
func PerfTrajectory(paths []string) (Figure, error) {
	if len(paths) == 0 {
		return Figure{}, fmt.Errorf("figures: no bench reports to plot")
	}
	type rep struct {
		path string
		r    *perf.Report
	}
	reps := make([]rep, 0, len(paths))
	for _, p := range paths {
		r, err := perf.ReadReportFile(p)
		if err != nil {
			return Figure{}, err
		}
		reps = append(reps, rep{p, r})
	}
	sort.Slice(reps, func(i, j int) bool {
		if reps[i].r.CreatedAt != reps[j].r.CreatedAt {
			return reps[i].r.CreatedAt < reps[j].r.CreatedAt
		}
		return reps[i].path < reps[j].path
	})

	base := map[string]float64{} // workload -> first-seen median
	series := map[string]*Series{}
	var order []string
	for i, rp := range reps {
		for _, w := range rp.r.Workloads {
			if _, ok := base[w.Name]; !ok {
				base[w.Name] = w.MedianNs
				series[w.Name] = &Series{Label: w.Name}
				order = append(order, w.Name)
			}
			s := series[w.Name]
			s.Points = append(s.Points, Point{X: float64(i), Y: w.MedianNs / base[w.Name]})
		}
	}

	f := Figure{
		ID:     "perf",
		Title:  "performance trajectory (median wall time, normalized to first report)",
		XLabel: "report (chronological)",
		YLabel: "median / first median",
	}
	for _, name := range order {
		f.Series = append(f.Series, *series[name])
	}
	return f, nil
}
