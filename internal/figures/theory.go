package figures

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Fig1 builds the paper's Fig. 1 example host-switch graph: n = 16 hosts,
// m = 4 switches, r = 6 — four hosts per switch with the switches in a
// ring, so that l(h_0, h_15) = 3 as the paper walks through.
func Fig1() (*hsgraph.Graph, error) {
	return hsgraph.Ring(16, 4, 6)
}

// Fig5 reproduces one panel of the paper's Fig. 5: h-ASPL versus the
// number of switches m for fixed (n, r), with four series — SA restricted
// to regular host-switch graphs (swap operation), SA over all host-switch
// graphs (2-neighbor swing), Theorem 2's lower bound, and the continuous
// Moore bound. The paper sweeps n in {128, 256, 512, 1024} and r in
// {12, 24}.
func Fig5(n, r int, o Options) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     fmt.Sprintf("fig5(n=%d,r=%d)", n, r),
		Title:  "h-ASPL vs number of switches",
		XLabel: "m (switches)",
		YLabel: "h-ASPL",
	}
	mOpt, _ := bounds.OptimalSwitchCount(n, r, 0)
	ms := sweepM(n, r, mOpt)

	var swing, swap, moore Series
	swing.Label = "SA-2neighbor-swing"
	swap.Label = "SA-swap(regular)"
	moore.Label = "continuous-Moore"
	lb := bounds.HASPLLowerBound(n, r)
	thm2 := Series{Label: "theorem2-LB"}

	// The SA runs for different m are independent; run them on a bounded
	// worker pool. Results are deterministic regardless of scheduling
	// because every run derives its own seed from (o.Seed, m).
	type mResult struct {
		swing, swap float64 // NaN when the variant is undefined at this m
		err         error
	}
	results := make([]mResult, len(ms))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for idx, m := range ms {
		idx, m := idx, m
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res := mResult{swing: math.NaN(), swap: math.NaN()}
			// General SA (2-neighbor swing) from a random start.
			if hsgraph.Feasible(n, m, r) {
				start, err := hsgraph.RandomConnected(n, m, r, rng.New(o.Seed+uint64(m)))
				if err == nil {
					g, _, err := opt.Anneal(start, opt.Options{
						Iterations: o.SAIterations,
						Workers:    o.Workers,
						Seed:       o.Seed + uint64(m),
						Moves:      opt.TwoNeighborSwing,
					})
					if err != nil {
						res.err = err
					} else {
						res.swing = g.Evaluate().HASPL
					}
				}
			}
			// Regular SA (swap only): needs m | n, k = r - n/m >= 2,
			// m*k even.
			if res.err == nil && n%m == 0 {
				k := r - n/m
				if k >= 2 && k < m && (m*k)%2 == 0 {
					startR, err := hsgraph.RandomRegular(n, m, r, k, rng.New(o.Seed+uint64(m)*7))
					if err == nil {
						g, _, err := opt.Anneal(startR, opt.Options{
							Iterations: o.SAIterations,
							Workers:    o.Workers,
							Seed:       o.Seed + uint64(m)*7,
							Moves:      opt.SwapOnly,
						})
						if err != nil {
							res.err = err
						} else {
							res.swap = g.Evaluate().HASPL
						}
					}
				}
			}
			results[idx] = res
		}()
	}
	wg.Wait()

	for idx, m := range ms {
		if b := bounds.ContinuousMooreHASPL(n, m, r); !math.IsInf(b, 1) {
			moore.Points = append(moore.Points, Point{float64(m), b})
		}
		thm2.Points = append(thm2.Points, Point{float64(m), lb})
		res := results[idx]
		if res.err != nil {
			return fig, res.err
		}
		if !math.IsNaN(res.swing) {
			swing.Points = append(swing.Points, Point{float64(m), res.swing})
		}
		if !math.IsNaN(res.swap) {
			swap.Points = append(swap.Points, Point{float64(m), res.swap})
		}
	}
	fig.Series = []Series{swing, swap, thm2, moore}
	return fig, nil
}

// sweepM picks the m values for Fig. 5: a dense band around m_opt plus a
// log-spaced tail out to n.
func sweepM(n, r, mOpt int) []int {
	set := map[int]bool{}
	add := func(m int) {
		if m >= 1 && m <= n {
			set[m] = true
		}
	}
	for _, f := range []float64{0.5, 0.7, 0.85, 1.0, 1.2, 1.5, 2.0, 3.0} {
		add(int(math.Round(float64(mOpt) * f)))
	}
	// Divisors of n near the band make the regular series denser.
	for m := 2; m <= n; m++ {
		if n%m == 0 && m >= mOpt/3 && m <= mOpt*4 {
			add(m)
		}
	}
	add(n)
	ms := make([]int, 0, len(set))
	for m := range set {
		ms = append(ms, m)
	}
	sortInts(ms)
	return ms
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Fig6 reproduces the paper's Fig. 6: the host distribution of the
// optimised host-switch graph at m = m_opt for a given (n, r).
func Fig6(n, r int, o Options) (Histogram, *hsgraph.Graph, error) {
	o = o.withDefaults()
	mOpt, _ := bounds.OptimalSwitchCount(n, r, 0)
	start, err := hsgraph.RandomConnected(n, mOpt, r, rng.New(o.Seed))
	if err != nil {
		return Histogram{}, nil, err
	}
	g, _, err := opt.Anneal(start, opt.Options{
		Iterations: o.SAIterations,
		Workers:    o.Workers,
		Seed:       o.Seed,
		Moves:      opt.TwoNeighborSwing,
	})
	if err != nil {
		return Histogram{}, nil, err
	}
	return Histogram{
		ID:     fmt.Sprintf("fig6(n=%d,r=%d,m=%d)", n, r, mOpt),
		Title:  "host distribution at m_opt",
		Counts: g.HostDistribution(),
	}, g, nil
}

// Fig7 reproduces the paper's Fig. 7: the (integer) Moore bound, defined
// only where m divides n, against the continuous Moore bound, for
// n = 1024, r = 24 (parameterised here).
func Fig7(n, r int) Figure {
	fig := Figure{
		ID:     fmt.Sprintf("fig7(n=%d,r=%d)", n, r),
		Title:  "Moore bound vs continuous Moore bound",
		XLabel: "m (switches)",
		YLabel: "h-ASPL lower bound",
	}
	integer := Series{Label: "Moore(m|n only)"}
	cont := Series{Label: "continuous-Moore"}
	for m := 1; m <= n; m++ {
		if b := bounds.ContinuousMooreHASPL(n, m, r); !math.IsInf(b, 1) {
			cont.Points = append(cont.Points, Point{float64(m), b})
		}
		if n%m == 0 {
			if b, err := bounds.RegularHASPLBound(n, m, r); err == nil && !math.IsInf(b, 1) {
				integer.Points = append(integer.Points, Point{float64(m), b})
			}
		}
	}
	fig.Series = []Series{integer, cont}
	return fig
}

// Fig8 reproduces the paper's Fig. 8: the host distribution of an
// optimised graph with as many switches as hosts ((n, m, r) =
// (1024, 1024, 24) in the paper), showing that most switches end up with
// no hosts at all when m far exceeds m_opt.
func Fig8(n, r int, o Options) (Histogram, *hsgraph.Graph, error) {
	o = o.withDefaults()
	start, err := hsgraph.RandomConnected(n, n, r, rng.New(o.Seed))
	if err != nil {
		return Histogram{}, nil, err
	}
	g, _, err := opt.Anneal(start, opt.Options{
		Iterations: o.SAIterations,
		Workers:    o.Workers,
		Seed:       o.Seed,
		Moves:      opt.TwoNeighborSwing,
	})
	if err != nil {
		return Histogram{}, nil, err
	}
	return Histogram{
		ID:     fmt.Sprintf("fig8(n=%d,m=%d,r=%d)", n, n, r),
		Title:  "host distribution with unused switches",
		Counts: g.HostDistribution(),
	}, g, nil
}
