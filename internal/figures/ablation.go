package figures

import (
	"fmt"

	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Ablations beyond the paper's figures: each isolates one design choice
// DESIGN.md calls out (move set, host placement, ECMP tie-break,
// collective algorithm) and quantifies its effect with the same
// machinery as the main experiments.

// AblationMoves compares the three SA neighbourhoods at fixed (n, m, r):
// swap-only (regular), swing-only, and the paper's 2-neighbor swing.
// Returns final h-ASPL per move set.
func AblationMoves(n, m, r int, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	out := map[string]float64{}
	start, err := hsgraph.RandomConnected(n, m, r, rng.New(o.Seed))
	if err != nil {
		return nil, err
	}
	for _, ms := range []opt.MoveSet{opt.SwapOnly, opt.SwingOnly, opt.TwoNeighborSwing} {
		g, _, err := opt.Anneal(start, opt.Options{
			Iterations: o.SAIterations,
			Workers:    o.Workers,
			Moves:      ms,
			Seed:       o.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		out[ms.String()] = g.Evaluate().HASPL
	}
	return out, nil
}

// AblationSchedules compares cooling schedules with the 2-neighbor swing
// neighbourhood.
func AblationSchedules(n, m, r int, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	out := map[string]float64{}
	start, err := hsgraph.RandomConnected(n, m, r, rng.New(o.Seed))
	if err != nil {
		return nil, err
	}
	for _, sc := range []opt.Schedule{opt.Geometric, opt.Linear, opt.HillClimb} {
		g, _, err := opt.Anneal(start, opt.Options{
			Iterations: o.SAIterations,
			Workers:    o.Workers,
			Schedule:   sc,
			Seed:       o.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		out[sc.String()] = g.Evaluate().HASPL
	}
	return out, nil
}

// AblationPlacement measures the paper's §6.2.1 depth-first host
// relabeling against keeping the raw (arbitrary) host order, by timing
// one NPB benchmark on both placements of the same solved topology.
// Returns simulated seconds for {"raw", "dfs"}.
func AblationPlacement(bench string, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	raw, err := ProposedTopology(1024, 16, o.SAIterations, o.Seed)
	if err != nil {
		return nil, err
	}
	// ProposedTopology already applies DFS; reconstruct a scrambled
	// placement by reversing host ids (a worst-ish case permutation that
	// preserves per-switch host counts).
	scrambled := reverseHosts(raw)
	out := map[string]float64{}
	for name, g := range map[string]*hsgraph.Graph{"dfs": raw, "raw": scrambled} {
		nw, err := simnet.NewNetwork(g, simnet.Config{})
		if err != nil {
			return nil, err
		}
		spec, err := npb.New(bench, classFor(o, bench), o.Ranks)
		if err != nil {
			return nil, err
		}
		if o.MaxIters > 0 && spec.Iterations > o.MaxIters {
			spec.Iterations = o.MaxIters
		}
		stats, err := mpi.Run(nw, o.Ranks, mpi.Config{}, spec.Program())
		if err != nil {
			return nil, err
		}
		out[name] = stats.Elapsed
	}
	return out, nil
}

// reverseHosts returns a copy of g with host ids reversed.
func reverseHosts(g *hsgraph.Graph) *hsgraph.Graph {
	n := g.Order()
	out := hsgraph.New(n, g.Switches(), g.Radix())
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if err := out.Connect(a, b); err != nil {
			panic(err)
		}
	}
	for h := 0; h < n; h++ {
		if err := out.AttachHost(n-1-h, g.SwitchOf(h)); err != nil {
			panic(err)
		}
	}
	return out
}

// AblationTieBreak compares the deterministic lowest-index routing
// against hash-spread ECMP on one NPB benchmark over the proposed
// topology. Returns simulated seconds per policy.
func AblationTieBreak(bench string, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	g, err := ProposedTopology(1024, 16, o.SAIterations, o.Seed)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for name, tb := range map[string]simnet.TieBreak{"lowest": simnet.LowestIndex, "hash": simnet.HashSpread} {
		nw, err := simnet.NewNetwork(g, simnet.Config{TieBreak: tb})
		if err != nil {
			return nil, err
		}
		spec, err := npb.New(bench, classFor(o, bench), o.Ranks)
		if err != nil {
			return nil, err
		}
		if o.MaxIters > 0 && spec.Iterations > o.MaxIters {
			spec.Iterations = o.MaxIters
		}
		stats, err := mpi.Run(nw, o.Ranks, mpi.Config{}, spec.Program())
		if err != nil {
			return nil, err
		}
		out[name] = stats.Elapsed
	}
	return out, nil
}

// AblationCollectives compares the short- and long-message collective
// algorithms on the proposed topology at several sizes, returning the
// elapsed seconds keyed by "algorithm/bytes".
func AblationCollectives(o Options) (map[string]float64, error) {
	o = o.withDefaults()
	g, err := ProposedTopology(1024, 16, o.SAIterations, o.Seed)
	if err != nil {
		return nil, err
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	run := func(key string, f func(r *mpi.Rank)) error {
		stats, err := mpi.Run(nw, o.Ranks, mpi.Config{}, func(r *mpi.Rank) error {
			f(r)
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		out[key] = stats.Elapsed
		return nil
	}
	for _, bytes := range []float64{1024, 1 << 20} {
		b := bytes
		if err := run(fmt.Sprintf("bcast-binomial/%d", int(b)), func(r *mpi.Rank) { r.Bcast(0, b) }); err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("bcast-vandegeijn/%d", int(b)), func(r *mpi.Rank) { r.BcastScatterAllgather(0, b) }); err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("allreduce-rd/%d", int(b)), func(r *mpi.Rank) { r.Allreduce(b) }); err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("allreduce-rabenseifner/%d", int(b)), func(r *mpi.Rank) { r.AllreduceRabenseifner(b) }); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AblationAttachment compares sequential vs round-robin host attachment
// for a conventional topology under one benchmark; returns elapsed
// seconds per policy.
func AblationAttachment(kind, bench string, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	var spec *topo.Spec
	var err error
	switch kind {
	case "torus":
		spec, err = topo.Torus(5, 3, 15)
	case "dragonfly":
		spec, err = topo.Dragonfly(8)
	case "fattree":
		spec, err = topo.FatTree(16)
	default:
		return nil, fmt.Errorf("figures: unknown kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	seq, err := spec.Build(1024)
	if err != nil {
		return nil, err
	}
	rr, err := spec.BuildRoundRobin(1024)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for name, g := range map[string]*hsgraph.Graph{"sequential": seq, "roundrobin": rr} {
		nw, err := simnet.NewNetwork(g, simnet.Config{})
		if err != nil {
			return nil, err
		}
		bspec, err := npb.New(bench, classFor(o, bench), o.Ranks)
		if err != nil {
			return nil, err
		}
		if o.MaxIters > 0 && bspec.Iterations > o.MaxIters {
			bspec.Iterations = o.MaxIters
		}
		stats, err := mpi.Run(nw, o.Ranks, mpi.Config{}, bspec.Program())
		if err != nil {
			return nil, err
		}
		out[name] = stats.Elapsed
	}
	return out, nil
}
