package figures

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/perf"
)

// benchReport fabricates a valid bench report with the given workload
// medians and a creation stamp that fixes chronological order.
func benchReport(t *testing.T, path, createdAt string, medians map[string]float64) {
	t.Helper()
	r := perf.NewReport(false)
	r.CreatedAt = createdAt
	// Deterministic name order so series order is stable.
	names := make([]string, 0, len(medians))
	for n := range medians {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		med := medians[name]
		samples := []float64{med, med * 0.98, med * 1.02}
		m, mad := perf.MedianMAD(samples)
		r.Workloads = append(r.Workloads, perf.WorkloadResult{
			Name: name, Family: "eval", Warmup: 1, Reps: len(samples),
			SamplesNs: samples, MedianNs: m, MADNs: mad,
		})
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestPerfTrajectory(t *testing.T) {
	dir := t.TempDir()
	older := filepath.Join(dir, "BENCH_1.json")
	newer := filepath.Join(dir, "BENCH_2.json")
	benchReport(t, older, "2026-01-01T00:00:00Z", map[string]float64{"eval/a": 100, "eval/b": 200})
	// Pass the newer report first to prove ordering comes from
	// CreatedAt, not argument order; eval/c appears only in the newer
	// report and must be normalized to its own first appearance.
	benchReport(t, newer, "2026-02-01T00:00:00Z", map[string]float64{"eval/a": 150, "eval/b": 200, "eval/c": 50})

	f, err := PerfTrajectory([]string{newer, older})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("got %d series, want 3: %+v", len(f.Series), f.Series)
	}
	bySeries := map[string][]Point{}
	for _, s := range f.Series {
		bySeries[s.Label] = s.Points
	}
	a := bySeries["eval/a"]
	if len(a) != 2 || a[0].Y != 1 || a[1].Y != 1.5 {
		t.Fatalf("eval/a trajectory = %+v, want [1, 1.5]", a)
	}
	if b := bySeries["eval/b"]; len(b) != 2 || b[1].Y != 1 {
		t.Fatalf("eval/b trajectory = %+v, want flat at 1", b)
	}
	c := bySeries["eval/c"]
	if len(c) != 1 || c[0].X != 1 || c[0].Y != 1 {
		t.Fatalf("eval/c trajectory = %+v, want single point (1, 1)", c)
	}

	if _, err := PerfTrajectory(nil); err == nil {
		t.Fatal("PerfTrajectory accepted an empty report set")
	}
	if _, err := PerfTrajectory([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("PerfTrajectory accepted a missing file")
	}
}
