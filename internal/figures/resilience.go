package figures

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hsgraph"
)

// ResilienceOptions configures the beyond-the-paper resilience figure: a
// Monte-Carlo degradation sweep of the proposed topology against the
// conventional baselines at matched (n, r).
type ResilienceOptions struct {
	// Kinds are the baselines to degrade alongside the proposed topology.
	// Default: torus, dragonfly, fattree (the paper's §6.3 head-to-heads).
	Kinds []string
	// Model is the failure model (default fault.UniformLinks).
	Model fault.Model
	// Fractions are the failure fractions (default fault.DefaultFractions).
	Fractions []float64
	// Trials per fraction (default 20).
	Trials int
}

func (ro ResilienceOptions) withDefaults() ResilienceOptions {
	if len(ro.Kinds) == 0 {
		ro.Kinds = Kinds
	}
	if len(ro.Fractions) == 0 {
		ro.Fractions = fault.DefaultFractions()
	}
	if ro.Trials == 0 {
		ro.Trials = 20
	}
	return ro
}

// Resilience sweeps random failures over the proposed topology and the
// conventional baselines and reports the mean relative h-ASPL stretch
// (surviving h-ASPL / pristine h-ASPL) per failure fraction. A second
// figure reports the mean fraction of host pairs still mutually
// reachable. Each topology's proposed counterpart shares the SA budget of
// the §6.3 comparisons, so the sweep degrades exactly the graphs the
// performance figures evaluate.
func Resilience(ro ResilienceOptions, o Options) (stretch, reach Figure, err error) {
	ro = ro.withDefaults()
	o = o.withDefaults()
	stretch = Figure{
		ID:     "fig-resilience-stretch",
		Title:  fmt.Sprintf("h-ASPL stretch under %s failures (%d trials/point)", ro.Model, ro.Trials),
		XLabel: "failure fraction",
		YLabel: "surviving h-ASPL / pristine h-ASPL (mean)",
	}
	reach = Figure{
		ID:     "fig-resilience-reach",
		Title:  fmt.Sprintf("host-pair reachability under %s failures (%d trials/point)", ro.Model, ro.Trials),
		XLabel: "failure fraction",
		YLabel: "fraction of host pairs still connected (mean)",
	}

	type entry struct {
		label string
		g     *hsgraph.Graph
	}
	var entries []entry
	seenProposed := map[int]bool{} // torus and dragonfly share r=15
	for _, kind := range ro.Kinds {
		c, err := BuildComparison(kind, o)
		if err != nil {
			return stretch, reach, err
		}
		entries = append(entries, entry{kind, c.Baseline})
		if !seenProposed[c.R] {
			seenProposed[c.R] = true
			entries = append(entries, entry{fmt.Sprintf("proposed-r%d", c.R), c.Proposed})
		}
	}

	for _, e := range entries {
		points, err := fault.Sweep(e.g, fault.SweepOptions{
			Model:     ro.Model,
			Fractions: ro.Fractions,
			Trials:    ro.Trials,
			Seed:      o.Seed,
			Workers:   o.Workers,
		})
		if err != nil {
			return stretch, reach, fmt.Errorf("figures: resilience sweep of %s: %w", e.label, err)
		}
		sSt := Series{Label: e.label}
		sRe := Series{Label: e.label}
		for _, p := range points {
			sSt.Points = append(sSt.Points, Point{X: p.Fraction, Y: p.Stretch.Mean})
			sRe.Points = append(sRe.Points, Point{X: p.Fraction, Y: p.ReachableFrac.Mean})
		}
		stretch.Series = append(stretch.Series, sSt)
		reach.Series = append(reach.Series, sRe)
	}
	return stretch, reach, nil
}
