package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Small-but-faithful options for unit tests.
func testOptions() Options {
	return Options{SAIterations: 1500, Ranks: 16, Class: 'S', Seed: 5,
		Benchmarks: []string{"EP", "IS", "FT", "CG", "MG", "LU", "BT", "SP"}}
}

func TestFig5SmallInstance(t *testing.T) {
	fig, err := Fig5(96, 8, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var swing, swap, thm2, moore *Series
	for i := range fig.Series {
		switch fig.Series[i].Label {
		case "SA-2neighbor-swing":
			swing = &fig.Series[i]
		case "SA-swap(regular)":
			swap = &fig.Series[i]
		case "theorem2-LB":
			thm2 = &fig.Series[i]
		case "continuous-Moore":
			moore = &fig.Series[i]
		}
	}
	if swing == nil || swap == nil || thm2 == nil || moore == nil {
		t.Fatalf("missing series in %v", fig.Series)
	}
	if len(swing.Points) < 5 {
		t.Fatalf("too few swing points: %d", len(swing.Points))
	}
	// Shape checks from the paper:
	// 1. The SA results never beat Theorem 2's bound.
	lb := thm2.Points[0].Y
	for _, p := range swing.Points {
		if p.Y < lb-1e-9 {
			t.Fatalf("swing SA beat Theorem 2 at m=%v: %v < %v", p.X, p.Y, lb)
		}
	}
	// 2. Away from m_opt, the regular (swap) search is no better than the
	//    unrestricted (swing) search wherever both exist.
	for _, sp := range swap.Points {
		if y, ok := lookup(*swing, sp.X); ok && sp.Y < y-0.25 {
			t.Fatalf("swap SA much better than swing SA at m=%v: %v vs %v", sp.X, sp.Y, y)
		}
	}
	// 3. The minimum of the swing curve sits near the continuous Moore
	//    bound minimiser (the paper's central observation).
	bestM, bestY := 0.0, math.Inf(1)
	for _, p := range swing.Points {
		if p.Y < bestY {
			bestM, bestY = p.X, p.Y
		}
	}
	mooreM, mooreY := 0.0, math.Inf(1)
	for _, p := range moore.Points {
		if p.Y < mooreY {
			mooreM, mooreY = p.X, p.Y
		}
	}
	if math.Abs(bestM-mooreM) > 0.5*mooreM+4 {
		t.Fatalf("SA minimum at m=%v far from Moore minimiser m=%v", bestM, mooreM)
	}
	if fig.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestFig6HostDistribution(t *testing.T) {
	hist, g, err := Fig6(96, 8, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	hosts := 0
	for k, c := range hist.Counts {
		total += c
		hosts += k * c
	}
	if total != g.Switches() || hosts != 96 {
		t.Fatalf("histogram inconsistent: %d switches, %d hosts", total, hosts)
	}
	// The paper's key observation: the optimised graph mixes host counts
	// (it is neither direct nor indirect). Expect at least two distinct
	// nonzero host-count bins.
	distinct := 0
	for _, c := range hist.Counts {
		if c > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("host distribution degenerate: %v", hist.Counts)
	}
	if !strings.Contains(hist.Format(), "hosts") {
		t.Fatal("format missing header")
	}
}

func TestFig7BoundsCoincideOnDivisors(t *testing.T) {
	fig := Fig7(256, 12)
	var integer, cont *Series
	for i := range fig.Series {
		switch fig.Series[i].Label {
		case "Moore(m|n only)":
			integer = &fig.Series[i]
		case "continuous-Moore":
			cont = &fig.Series[i]
		}
	}
	if integer == nil || cont == nil {
		t.Fatal("missing series")
	}
	if len(cont.Points) <= len(integer.Points) {
		t.Fatal("continuous bound should be defined at many more m values")
	}
	for _, p := range integer.Points {
		if y, ok := lookup(*cont, p.X); ok && math.Abs(y-p.Y) > 1e-9 {
			t.Fatalf("bounds disagree at divisor m=%v: %v vs %v", p.X, p.Y, y)
		}
	}
}

func TestFig8UnusedSwitches(t *testing.T) {
	o := testOptions()
	hist, g, err := Fig8(128, 12, o)
	if err != nil {
		t.Fatal(err)
	}
	if g.Switches() != 128 {
		t.Fatalf("Fig8 must keep m = n, got %d", g.Switches())
	}
	// Paper's Fig. 8: a large share of switches carries no hosts when
	// m = n >> m_opt. Demand at least 25% empty (paper reports > 70% at
	// full scale).
	if hist.Counts[0] < 128/4 {
		t.Fatalf("only %d/128 switches empty; expected many (got %v)", hist.Counts[0], hist.Counts)
	}
}

func TestBuildComparisonConfigs(t *testing.T) {
	o := testOptions()
	wantM := map[string][2]int{ // baseline m, radix
		"torus":     {243, 15},
		"dragonfly": {264, 15},
		"fattree":   {320, 16},
	}
	for _, kind := range Kinds {
		c, err := BuildComparison(kind, o)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if c.Baseline.Switches() != wantM[kind][0] || c.R != wantM[kind][1] {
			t.Fatalf("%s: m=%d r=%d, want %v", kind, c.Baseline.Switches(), c.R, wantM[kind])
		}
		if c.Proposed.Order() != 1024 {
			t.Fatalf("%s: proposed has %d hosts", kind, c.Proposed.Order())
		}
		// Headline claim: the proposed topology uses fewer switches
		// (20%/27%/43% fewer in the paper).
		if c.Proposed.Switches() >= c.Baseline.Switches() {
			t.Fatalf("%s: proposed uses %d switches vs baseline %d", kind, c.Proposed.Switches(), c.Baseline.Switches())
		}
	}
	if _, err := BuildComparison("hypertorus", o); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSwitchReductionMatchesPaper(t *testing.T) {
	// Paper §6.3: proposed m=194 at r=15 (20% under torus's 243, 27%
	// under dragonfly's 264) and m=183 at r=16 (43% under fat-tree's 320).
	o := testOptions()
	c, err := BuildComparison("torus", o)
	if err != nil {
		t.Fatal(err)
	}
	if m := c.Proposed.Switches(); m < 190 || m > 198 {
		t.Fatalf("proposed r=15 uses m=%d, paper says 194", m)
	}
	cf, err := BuildComparison("fattree", o)
	if err != nil {
		t.Fatal(err)
	}
	if m := cf.Proposed.Switches(); m < 179 || m > 187 {
		t.Fatalf("proposed r=16 uses m=%d, paper says 183", m)
	}
}

func TestComparisonBandwidth(t *testing.T) {
	o := testOptions()
	c, err := BuildComparison("fattree", o)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := c.Bandwidth(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("want 2 series")
	}
	for _, s := range fig.Series {
		if len(s.Points) != 15 { // P = 2..16
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("non-positive cut at P=%v", p.X)
			}
		}
	}
	// Paper Fig. 11b: the fat-tree has the higher bisection bandwidth.
	ft, _ := lookup(fig.Series[0], 2)
	prop, _ := lookup(fig.Series[1], 2)
	if ft <= prop {
		t.Fatalf("fat-tree bisection %v should exceed proposed %v", ft, prop)
	}
}

func TestComparisonPowerAndCost(t *testing.T) {
	o := testOptions()
	c, err := BuildComparison("dragonfly", o)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := c.Power(o)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Cost(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{pw, ct} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s: want 2 series", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s: empty series %s", fig.ID, s.Label)
			}
			prev := 0.0
			for _, p := range s.Points {
				if p.Y <= 0 {
					t.Fatalf("%s: non-positive metric", fig.ID)
				}
				if p.Y < prev {
					t.Fatalf("%s: %s not monotone in size", fig.ID, s.Label)
				}
				prev = p.Y
			}
		}
	}
	// Paper Fig. 10c/d: proposed beats dragonfly on power and cost
	// regardless of size. Check at the largest common x.
	for _, fig := range []Figure{pw, ct} {
		base := fig.Series[0]
		prop := fig.Series[1]
		for i := range base.Points {
			if prop.Points[i].Y >= base.Points[i].Y {
				t.Fatalf("%s: proposed (%v) not below dragonfly (%v) at x=%v",
					fig.ID, prop.Points[i].Y, base.Points[i].Y, base.Points[i].X)
			}
		}
	}
}

func TestCostBreakdownSwitchDominant(t *testing.T) {
	o := testOptions()
	c, err := BuildComparison("torus", o)
	if err != nil {
		t.Fatal(err)
	}
	bd := c.CostBreakdown()
	if len(bd.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	for _, row := range bd.Rows {
		if row.SwitchCost <= row.CableCost {
			t.Fatalf("%s: switch cost should dominate (paper §6.3.1): %+v", row.Name, row)
		}
	}
	if !strings.Contains(bd.Format(), "switch-cost") {
		t.Fatal("format missing columns")
	}
}

func TestComparisonPerformanceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("NPB simulation in -short mode")
	}
	o := testOptions()
	o.Benchmarks = []string{"EP", "IS", "CG"}
	c, err := BuildComparison("torus", o)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := c.Performance(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 3 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("non-positive Mop/s in %s", s.Label)
			}
		}
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	fig := Fig7(128, 12)
	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFigureJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != fig.ID || len(back.Series) != len(fig.Series) {
		t.Fatalf("round trip changed figure: %+v", back)
	}
	for i := range fig.Series {
		if len(back.Series[i].Points) != len(fig.Series[i].Points) {
			t.Fatalf("series %d length changed", i)
		}
	}
}

func TestHistogramAndBreakdownJSON(t *testing.T) {
	var buf bytes.Buffer
	h := Histogram{ID: "x", Title: "t", Counts: []int{1, 2, 3}}
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"Counts\"") {
		t.Fatalf("histogram JSON missing counts: %s", buf.String())
	}
	buf.Reset()
	b := Breakdown{ID: "y", Rows: []BreakdownRow{{Name: "a", Switches: 3}}}
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"Switches\": 3") {
		t.Fatalf("breakdown JSON wrong: %s", buf.String())
	}
}

func TestFig1MatchesPaperExample(t *testing.T) {
	g, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 16 || g.Switches() != 4 || g.Radix() != 6 {
		t.Fatalf("Fig1 parameters wrong: %v", g)
	}
	// The paper's walkthrough: l(h_0, h_15) = 3.
	if d := g.HostDistance(0, 15); d != 3 {
		t.Fatalf("l(h0,h15) = %d, want 3", d)
	}
}

func TestProposedTopologyCaching(t *testing.T) {
	a, err := ProposedTopology(96, 8, 400, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProposedTopology(96, 8, 400, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical parameters")
	}
	c, err := ProposedTopology(96, 8, 400, 78)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds shared a cache entry")
	}
}

func TestClassForSelection(t *testing.T) {
	o := Options{Class: 'P'}
	if classFor(o, "IS") != 'A' || classFor(o, "FT") != 'A' || classFor(o, "CG") != 'B' {
		t.Fatal("paper class selection wrong")
	}
	o.Class = 'S'
	if classFor(o, "IS") != 'S' {
		t.Fatal("uniform class ignored")
	}
}

func TestFormatHandlesDisjointSeries(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "t", XLabel: "a", YLabel: "b",
		Series: []Series{
			{Label: "s1", Points: []Point{{1, 10}}},
			{Label: "s2", Points: []Point{{2, 20}}},
		},
	}
	out := fig.Format()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent values:\n%s", out)
	}
}
