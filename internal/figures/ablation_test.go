package figures

import "testing"

func TestAblationMoves(t *testing.T) {
	o := testOptions()
	res, err := AblationMoves(96, 30, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"swap", "swing", "2-neighbor-swing"} {
		if res[k] <= 2 {
			t.Fatalf("%s: implausible h-ASPL %v", k, res[k])
		}
	}
	// The combined operation should be at least as good as swap-only from
	// the same (non-regular) start; allow a little SA noise.
	if res["2-neighbor-swing"] > res["swap"]+0.3 {
		t.Fatalf("2-neighbor swing (%v) much worse than swap (%v)", res["2-neighbor-swing"], res["swap"])
	}
}

func TestAblationSchedules(t *testing.T) {
	o := testOptions()
	res, err := AblationSchedules(96, 30, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"geometric", "linear", "hillclimb"} {
		if res[k] <= 2 {
			t.Fatalf("%s missing or implausible: %v", k, res[k])
		}
	}
}

func TestAblationPlacement(t *testing.T) {
	o := testOptions()
	o.Ranks = 16
	res, err := AblationPlacement("MG", o)
	if err != nil {
		t.Fatal(err)
	}
	if res["dfs"] <= 0 || res["raw"] <= 0 {
		t.Fatalf("missing timings: %v", res)
	}
}

func TestAblationTieBreak(t *testing.T) {
	o := testOptions()
	o.Ranks = 16
	res, err := AblationTieBreak("CG", o)
	if err != nil {
		t.Fatal(err)
	}
	if res["lowest"] <= 0 || res["hash"] <= 0 {
		t.Fatalf("missing timings: %v", res)
	}
}

func TestAblationCollectives(t *testing.T) {
	o := testOptions()
	o.Ranks = 16
	res, err := AblationCollectives(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("expected 8 entries, got %d: %v", len(res), res)
	}
	// At 1 MiB the bandwidth-optimised algorithms must not lose.
	if res["bcast-vandegeijn/1048576"] > res["bcast-binomial/1048576"] {
		t.Fatalf("van de Geijn slower at 1 MiB: %v", res)
	}
	if res["allreduce-rabenseifner/1048576"] > res["allreduce-rd/1048576"] {
		t.Fatalf("Rabenseifner slower at 1 MiB: %v", res)
	}
}

func TestAblationAttachment(t *testing.T) {
	o := testOptions()
	o.Ranks = 16
	res, err := AblationAttachment("torus", "MG", o)
	if err != nil {
		t.Fatal(err)
	}
	if res["sequential"] <= 0 || res["roundrobin"] <= 0 {
		t.Fatalf("missing timings: %v", res)
	}
	if _, err := AblationAttachment("nosuch", "MG", o); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
