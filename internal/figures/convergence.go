package figures

import (
	"fmt"

	"repro/internal/hsgraph"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Convergence plots best h-ASPL against annealing iteration for each SA
// neighbourhood at fixed (n, m, r), from one shared random start. It is
// the convergence companion to AblationMoves: instead of the final value
// it shows how fast each move set gets there, using the annealer's
// bounded EnergyTrace rather than repeated re-runs.
func Convergence(n, m, r int, o Options) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     "convergence",
		Title:  fmt.Sprintf("SA convergence by move set (n=%d m=%d r=%d)", n, m, r),
		XLabel: "iteration",
		YLabel: "best h-ASPL",
	}
	start, err := hsgraph.RandomConnected(n, m, r, rng.New(o.Seed))
	if err != nil {
		return Figure{}, err
	}
	pairs := float64(n) * float64(n-1) / 2
	for _, ms := range []opt.MoveSet{opt.SwapOnly, opt.SwingOnly, opt.TwoNeighborSwing} {
		_, res, err := opt.Anneal(start, opt.Options{
			Iterations:  o.SAIterations,
			Workers:     o.Workers,
			Moves:       ms,
			Seed:        o.Seed + 1,
			TraceEnergy: true,
		})
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: ms.String()}
		for i, e := range res.EnergyTrace {
			s.Points = append(s.Points, Point{
				X: float64((i + 1) * res.EnergyTraceStride),
				Y: e / pairs, // total path length -> h-ASPL
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
