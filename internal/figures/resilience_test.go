package figures

import (
	"testing"

	"repro/internal/fault"
)

// TestResilienceFigure: a tiny sweep over one comparison kind produces
// both figures, the zero-failure point is exactly 1.0 on every series,
// and stretch grows (weakly) with the failure fraction.
func TestResilienceFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep in -short mode")
	}
	ro := ResilienceOptions{
		Kinds:     []string{"fattree"},
		Model:     fault.UniformLinks,
		Fractions: []float64{0, 0.05},
		Trials:    3,
	}
	stretch, reach, err := Resilience(ro, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// fattree baseline + its proposed counterpart.
	if len(stretch.Series) != 2 || len(reach.Series) != 2 {
		t.Fatalf("want 2 series each, got %d and %d", len(stretch.Series), len(reach.Series))
	}
	for _, s := range stretch.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", s.Label, len(s.Points))
		}
		if s.Points[0].X != 0 || s.Points[0].Y != 1 {
			t.Fatalf("series %s zero-failure stretch = %v, want 1", s.Label, s.Points[0])
		}
		if s.Points[1].Y < 1 {
			t.Fatalf("series %s stretch at 5%% failures is %v < 1", s.Label, s.Points[1].Y)
		}
	}
	for _, s := range reach.Series {
		if s.Points[0].Y != 1 {
			t.Fatalf("series %s zero-failure reachability = %v, want 1", s.Label, s.Points[0].Y)
		}
		if y := s.Points[1].Y; y <= 0 || y > 1 {
			t.Fatalf("series %s reachability at 5%% failures out of range: %v", s.Label, y)
		}
	}
}
