// Package buildinfo exposes the build identity of the running binary —
// module path, VCS revision, dirtiness, Go version — read once from
// runtime/debug.ReadBuildInfo. Every surface that records "which build
// produced this" (the CLIs' -version flag, bench reports, the obs JSONL
// event header) goes through this package so they can never disagree.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the stamped build identity. Fields the build did not record
// (e.g. VCS data in `go test` binaries or bare `go run`) are empty.
type Info struct {
	// Module is the main module path ("repro").
	Module string `json:"module,omitempty"`
	// Version is the main module version; "(devel)" for local builds.
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary, e.g. "go1.22.1".
	GoVersion string `json:"goVersion,omitempty"`
	// Revision is the VCS commit hash, when the build recorded one.
	Revision string `json:"revision,omitempty"`
	// Time is the commit time in RFC3339, when recorded.
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes at build time, when recorded.
	Dirty bool `json:"dirty,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build identity, resolving it on first call.
func Get() Info {
	once.Do(func() { cached = read(debug.ReadBuildInfo()) })
	return cached
}

// read extracts an Info from a debug.BuildInfo; split out so tests can
// feed synthetic build metadata.
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{GoVersion: runtime.Version()}
	if !ok || bi == nil {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// ShortRevision is the first 12 characters of the revision hash, or the
// empty string when no revision was recorded.
func (i Info) ShortRevision() string {
	if len(i.Revision) > 12 {
		return i.Revision[:12]
	}
	return i.Revision
}

// String renders a one-line human-readable identity, the -version output
// of the CLIs: "repro (devel) go1.22.1 rev abc123def456 (dirty)".
func (i Info) String() string {
	s := i.Module
	if s == "" {
		s = "unknown-module"
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.GoVersion != "" {
		s += " " + i.GoVersion
	}
	if rev := i.ShortRevision(); rev != "" {
		s += " rev " + rev
		if i.Dirty {
			s += " (dirty)"
		}
	}
	return s
}

// Fprintln writes the identity for tool name to w, the shared body of
// every CLI's -version handler.
func Fprintln(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s: %s\n", tool, Get())
}
