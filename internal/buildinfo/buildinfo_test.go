package buildinfo

import (
	"bytes"
	"runtime/debug"
	"strings"
	"testing"
)

func TestGetHasGoVersion(t *testing.T) {
	info := Get()
	if info.GoVersion == "" {
		t.Fatal("GoVersion must always be set")
	}
	// Test binaries are built from the module, so the module path is
	// recorded even when VCS stamps are not.
	if info.Module != "repro" {
		t.Fatalf("Module = %q, want repro", info.Module)
	}
}

func TestReadSyntheticVCS(t *testing.T) {
	bi := &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Path: "repro", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abcdef0123456789abcdef"},
			{Key: "vcs.time", Value: "2026-08-05T00:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	info := read(bi, true)
	if info.Revision != "abcdef0123456789abcdef" || !info.Dirty || info.Time == "" {
		t.Fatalf("read missed VCS settings: %+v", info)
	}
	if got := info.ShortRevision(); got != "abcdef012345" {
		t.Fatalf("ShortRevision = %q", got)
	}
	s := info.String()
	for _, want := range []string{"repro", "(devel)", "go1.22.0", "rev abcdef012345", "(dirty)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestReadNilInfo(t *testing.T) {
	info := read(nil, false)
	if info.GoVersion == "" {
		t.Fatal("GoVersion must fall back to runtime.Version()")
	}
	if info.Module != "" || info.Revision != "" {
		t.Fatalf("nil build info must leave VCS fields empty: %+v", info)
	}
}

func TestFprintln(t *testing.T) {
	var buf bytes.Buffer
	Fprintln(&buf, "orpbench")
	out := buf.String()
	if !strings.HasPrefix(out, "orpbench: ") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("Fprintln output %q", out)
	}
}
