package fault

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSweepProgressReporting: OnTrial fires once per trial with coherent
// cumulative counts, the obs instruments agree, and reporting does not
// change the sweep's numbers.
func TestSweepProgressReporting(t *testing.T) {
	g := testGraph(t, 21, 96, 24, 8)
	o := SweepOptions{
		Model:     UniformLinks,
		Fractions: []float64{0, 0.1},
		Trials:    4,
		Seed:      7,
		Workers:   2,
		Resamples: 100,
	}
	plain, err := Sweep(g, o)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var updates []TrialProgress
	reg := obs.NewRegistry()
	o.Metrics = NewSweepMetrics(reg)
	o.OnTrial = func(p TrialProgress) {
		mu.Lock()
		updates = append(updates, p)
		mu.Unlock()
	}
	observed, err := Sweep(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("progress reporting changed point %d:\n%+v\n%+v", i, plain[i], observed[i])
		}
	}

	total := len(o.Fractions) * o.Trials
	if len(updates) != total {
		t.Fatalf("OnTrial fired %d times, want %d", len(updates), total)
	}
	seen := make(map[[2]int]bool)
	maxDone := 0
	for _, p := range updates {
		if p.Total != total {
			t.Errorf("update total %d, want %d", p.Total, total)
		}
		if p.Fraction != o.Fractions[p.FracIndex] {
			t.Errorf("fraction %v at index %d", p.Fraction, p.FracIndex)
		}
		if p.Seconds < 0 {
			t.Errorf("negative trial duration %v", p.Seconds)
		}
		if p.Result.SurvivingHASPL <= 0 {
			t.Errorf("update carries empty result: %+v", p.Result)
		}
		key := [2]int{p.FracIndex, p.Trial}
		if seen[key] {
			t.Errorf("trial %v reported twice", key)
		}
		seen[key] = true
		if p.Done > maxDone {
			maxDone = p.Done
		}
	}
	if maxDone != total {
		t.Errorf("max Done %d, want %d", maxDone, total)
	}

	m := o.Metrics
	if m.TrialsCompleted.Value() != int64(total) {
		t.Errorf("trials counter %d, want %d", m.TrialsCompleted.Value(), total)
	}
	if m.Progress.Value() != 1 {
		t.Errorf("progress gauge %v, want 1", m.Progress.Value())
	}
	if h := m.TrialSeconds.Snapshot(); h.Count != int64(total) {
		t.Errorf("timing histogram count %d, want %d", h.Count, total)
	}
}

func TestSweepStageSpans(t *testing.T) {
	g := testGraph(t, 6, 24, 8, 6)
	var mu sync.Mutex
	var events []obs.Event
	tr := obs.NewTracer("sweep-1", time.Now(), func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	root := tr.Root("sweep")
	_, err := Sweep(g, SweepOptions{
		Model:     UniformLinks,
		Fractions: []float64{0, 0.1},
		Trials:    3,
		Seed:      9,
		Workers:   2,
		Span:      root,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	roots := obs.BuildSpanTrees(events)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	stages := map[string]*obs.SpanNode{}
	for _, c := range roots[0].Children {
		stages[c.Name] = c
	}
	for _, want := range []string{"sweep.pristine-eval", "sweep.trials", "sweep.aggregate"} {
		if stages[want] == nil {
			t.Fatalf("missing stage %q in %v", want, roots[0].Children)
		}
	}
	trials := stages["sweep.trials"]
	if trials.F["total"] != 6 || trials.F["done"] != 6 || trials.S["outcome"] != "done" {
		t.Fatalf("trials span: %+v %+v", trials.F, trials.S)
	}
}
