package fault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func sweepTestGraph(t testing.TB) *hsgraph.Graph {
	t.Helper()
	g, err := hsgraph.RandomConnected(48, 12, 8, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sweepTestOptions() SweepOptions {
	return SweepOptions{
		Model:     UniformLinks,
		Fractions: []float64{0.05, 0.10, 0.20},
		Trials:    8,
		Seed:      99,
		Workers:   2,
	}
}

// TestSweepResumeDeterminism: interrupt a sweep partway, resume it, and
// require the aggregated []SweepPoint to be deeply equal to the sweep
// that was never interrupted — the sweep-side half of the issue's
// resume-determinism invariant.
func TestSweepResumeDeterminism(t *testing.T) {
	g := sweepTestGraph(t)
	want, err := Sweep(g, sweepTestOptions())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	var stop atomic.Bool
	o := sweepTestOptions()
	o.CheckpointPath = path
	o.Interrupt = &stop
	o.OnTrial = func(p TrialProgress) {
		if p.Done >= 7 { // kill mid-sweep, off any fraction boundary
			stop.Store(true)
		}
	}
	if _, err := Sweep(g, o); !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}

	ro := sweepTestOptions()
	ro.CheckpointPath = path
	ro.Resume = true
	ro.Workers = 3 // worker count must not matter, resumed or not
	resumed := 0
	ro.OnTrial = func(p TrialProgress) { resumed++ }
	got, err := Sweep(g, ro)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed sweep diverged:\nwant %+v\ngot  %+v", want, got)
	}
	total := len(sweepTestOptions().Fractions) * sweepTestOptions().Trials
	if resumed >= total {
		t.Fatalf("resume re-ran all %d trials; ledger restored nothing", total)
	}

	// Resuming the completed ledger re-runs nothing and aggregates the
	// same points again.
	rerun := 0
	ro.OnTrial = func(p TrialProgress) { rerun++ }
	again, err := Sweep(g, ro)
	if err != nil {
		t.Fatal(err)
	}
	if rerun != 0 {
		t.Fatalf("resume of a finished sweep re-ran %d trials", rerun)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("resume of a finished sweep diverged")
	}
}

// TestSweepResumeMissingFileStartsFresh: Resume with no ledger on disk
// behaves exactly like a fresh checkpointed sweep.
func TestSweepResumeMissingFileStartsFresh(t *testing.T) {
	g := sweepTestGraph(t)
	want, err := Sweep(g, sweepTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := sweepTestOptions()
	o.CheckpointPath = filepath.Join(t.TempDir(), "never-written.ckpt")
	o.Resume = true
	got, err := Sweep(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fresh checkpointed sweep diverged from plain sweep")
	}
}

// TestSweepResumeRejectsMismatch: a ledger written by a different sweep
// (options or graph) must be rejected with an error naming the
// disagreement.
func TestSweepResumeRejectsMismatch(t *testing.T) {
	g := sweepTestGraph(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	var stop atomic.Bool
	o := sweepTestOptions()
	o.CheckpointPath = path
	o.Interrupt = &stop
	o.OnTrial = func(p TrialProgress) {
		if p.Done >= 3 {
			stop.Store(true)
		}
	}
	if _, err := Sweep(g, o); !errors.Is(err, ckpt.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}

	cases := []struct {
		field  string
		mutate func(*SweepOptions) *hsgraph.Graph
	}{
		{"Seed", func(o *SweepOptions) *hsgraph.Graph { o.Seed++; return g }},
		{"Trials", func(o *SweepOptions) *hsgraph.Graph { o.Trials = 5; return g }},
		{"Model", func(o *SweepOptions) *hsgraph.Graph { o.Model = UniformSwitches; return g }},
		{"Fractions", func(o *SweepOptions) *hsgraph.Graph { o.Fractions = []float64{0.05, 0.10, 0.25}; return g }},
		{"checksum", func(o *SweepOptions) *hsgraph.Graph {
			other, err := hsgraph.RandomConnected(48, 12, 8, rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			return other // same dimensions, different wiring
		}},
	}
	for _, tc := range cases {
		ro := sweepTestOptions()
		ro.CheckpointPath = path
		ro.Resume = true
		gr := tc.mutate(&ro)
		_, err := Sweep(gr, ro)
		if err == nil {
			t.Fatalf("%s mismatch was accepted", tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s mismatch error does not name the field: %v", tc.field, err)
		}
	}
}

// TestSweepLedgerRejectsCorruption: truncations of a valid ledger file
// must all be rejected (the envelope CRC holds the line), and a
// corrupted payload re-sealed with a valid CRC must fail the ledger's
// own structural checks.
func TestSweepLedgerRejectsCorruption(t *testing.T) {
	g := sweepTestGraph(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	o := sweepTestOptions()
	o.CheckpointPath = path
	if _, err := Sweep(g, o); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ro := sweepTestOptions()
	ro.CheckpointPath = path
	ro.Resume = true
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Sweep(g, ro); err == nil {
			t.Fatalf("resume accepted a %d/%d-byte ledger", n, len(data))
		}
	}

	// Logical corruption behind a valid envelope: the payload ends with
	// the last trial's Stretch and ReachableFrac floats. Flip an exponent
	// bit of ReachableFrac (9 bytes from the end), pushing it outside
	// [0,1]; the ledger's plausibility check must catch what the CRC no
	// longer can.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-9] ^= 0x40
	if err := ckpt.WriteFile(path, kind, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(g, ro); err == nil {
		t.Fatal("resume accepted a tampered ledger")
	}
}

// FuzzLoadSweepLedger: arbitrary payloads must never panic the ledger
// decoder and never load a ledger violating its own invariants.
func FuzzLoadSweepLedger(f *testing.F) {
	g, err := hsgraph.RandomConnected(16, 6, 6, rng.New(2))
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "sweep.ckpt")
	o := SweepOptions{Model: UniformLinks, Fractions: []float64{0.1}, Trials: 2, Seed: 7,
		Workers: 1, CheckpointPath: path}
	if _, err := Sweep(g, o); err != nil {
		f.Fatal(err)
	}
	_, payload, err := ckpt.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	fp := fingerprintSweep(g, &o)
	f.Add(payload)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPath := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := ckpt.WriteFile(fuzzPath, sweepKind, data); err != nil {
			t.Fatal(err)
		}
		l, err := loadSweepLedger(fuzzPath, 1, fp, len(o.Fractions)*o.Trials)
		if err != nil {
			return
		}
		if len(l.done) != len(o.Fractions)*o.Trials || len(l.results) != len(l.done) {
			t.Fatal("accepted ledger with wrong job count")
		}
	})
}
