package fault

import (
	"repro/internal/hsgraph"
)

// Result compares a degraded graph against its pristine baseline.
type Result struct {
	Pristine hsgraph.Metrics
	Degraded hsgraph.Metrics

	FailedLinks       int // links removed (incl. those of failed switches)
	FailedSwitches    int
	DetachedHosts     int // hosts whose switch failed
	DisconnectedHosts int // hosts outside the largest surviving component

	// SurvivingHASPL is TotalPath / ReachablePairs on the degraded graph:
	// the h-ASPL over host pairs that can still communicate. On a
	// connected degraded graph it equals Degraded.HASPL.
	SurvivingHASPL float64
	// ReachableFrac is the share of the pristine C(n,2) host pairs that
	// remain mutually reachable.
	ReachableFrac float64
	// Stretch is SurvivingHASPL / Pristine.HASPL: the relative latency
	// penalty paid by the pairs that survive.
	Stretch float64
}

// Measure evaluates the degradation of d against the pristine metrics.
// ev may be shared across calls (it is only used for the degraded graph);
// pass the pristine metrics from one up-front evaluation so sweeps do not
// re-evaluate the baseline per trial.
func Measure(pristine hsgraph.Metrics, d *Degraded, ev *hsgraph.Evaluator) Result {
	met := ev.Evaluate(d.Graph)
	res := Result{
		Pristine:          pristine,
		Degraded:          met,
		FailedLinks:       d.FailedLinks,
		FailedSwitches:    len(d.Scenario.Switches),
		DetachedHosts:     len(d.DetachedHosts),
		DisconnectedHosts: DisconnectedHosts(d.Graph),
	}
	if met.ReachablePairs > 0 {
		res.SurvivingHASPL = float64(met.TotalPath) / float64(met.ReachablePairs)
	}
	n := int64(d.Graph.Order())
	if pairs := n * (n - 1) / 2; pairs > 0 {
		res.ReachableFrac = float64(met.ReachablePairs) / float64(pairs)
	} else {
		res.ReachableFrac = 1
	}
	if pristine.HASPL > 0 && res.SurvivingHASPL > 0 {
		res.Stretch = res.SurvivingHASPL / pristine.HASPL
	}
	return res
}

// DisconnectedHosts returns the number of hosts outside the largest
// surviving component (by host population). Detached hosts count as
// disconnected. On a connected graph it is zero.
func DisconnectedHosts(g *hsgraph.Graph) int {
	m := g.Switches()
	comp := make([]int32, m)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, m)
	best := 0
	attached := 0
	var nc int32
	for s := 0; s < m; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = nc
		queue = append(queue[:0], int32(s))
		hostsIn := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			hostsIn += g.HostCount(int(v))
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] == -1 {
					comp[u] = nc
					queue = append(queue, u)
				}
			}
		}
		attached += hostsIn
		if hostsIn > best {
			best = hostsIn
		}
		nc++
	}
	// Unattached hosts are not in any component.
	return g.Order() - best
}
