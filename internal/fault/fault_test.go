package fault

import (
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func testGraph(t *testing.T, seed uint64, n, m, r int) *hsgraph.Graph {
	t.Helper()
	g, err := hsgraph.RandomConnected(n, m, r, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestZeroFailureIdentity: a 0%-failure scenario must be metric-identical
// to the pristine graph under every model, and Apply must not mutate the
// input.
func TestZeroFailureIdentity(t *testing.T) {
	g := testGraph(t, 11, 96, 24, 8)
	pristine := g.Evaluate()
	for _, model := range []Model{UniformLinks, UniformSwitches, Bundles, Targeted} {
		sc, err := Sample(g, model, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Empty() {
			t.Fatalf("%v: 0%% fraction sampled non-empty scenario %+v", model, sc)
		}
		d, err := Apply(g, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Graph.Evaluate(); got != pristine {
			t.Fatalf("%v: degraded metrics %+v != pristine %+v", model, got, pristine)
		}
		if d.FailedLinks != 0 || len(d.DetachedHosts) != 0 {
			t.Fatalf("%v: zero scenario reported failures: %+v", model, d)
		}
	}
	if again := g.Evaluate(); again != pristine {
		t.Fatal("Apply mutated the input graph")
	}
}

// TestDegradedAgreesWithScratch: metrics of the degraded graph reported
// through fault.Measure must agree with recomputing hsgraph metrics from
// scratch on an independently mutated copy.
func TestDegradedAgreesWithScratch(t *testing.T) {
	rnd := rng.New(77)
	ev := hsgraph.NewEvaluator(3)
	defer ev.Close()
	for trial := 0; trial < 30; trial++ {
		var n, m, r int
		for {
			n, m, r = 40+rnd.Intn(120), 10+rnd.Intn(30), 6+rnd.Intn(6)
			if hsgraph.Feasible(n, m, r) {
				break
			}
		}
		g := testGraph(t, uint64(1000+trial), n, m, r)
		model := []Model{UniformLinks, UniformSwitches, Bundles, Targeted}[trial%4]
		frac := []float64{0.02, 0.05, 0.1, 0.2}[rnd.Intn(4)]
		sc, err := Sample(g, model, frac, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		d, err := Apply(g, sc)
		if err != nil {
			t.Fatal(err)
		}

		// Rebuild the mutation independently of Apply's bookkeeping.
		scratch := g.Clone()
		for _, s := range sc.Switches {
			for scratch.SwitchDegree(int(s)) > 0 {
				nb := int(scratch.Neighbors(int(s))[0])
				if err := scratch.Disconnect(int(s), nb); err != nil {
					t.Fatal(err)
				}
			}
			for scratch.HostCount(int(s)) > 0 {
				if err := scratch.DetachHost(scratch.AnyHostOn(int(s))); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, e := range sc.Links {
			if scratch.HasEdge(int(e[0]), int(e[1])) {
				if err := scratch.Disconnect(int(e[0]), int(e[1])); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := scratch.EvaluateSlow()
		res := Measure(g.Evaluate(), d, ev)
		if res.Degraded != want {
			t.Fatalf("trial %d %v f=%.2f: Measure degraded %+v != scratch %+v",
				trial, model, frac, res.Degraded, want)
		}
		if got := d.Graph.EvaluateSlow(); got != want {
			t.Fatalf("trial %d: Apply graph %+v != scratch graph %+v", trial, got, want)
		}
		if want.ReachablePairs > 0 {
			scratchHASPL := float64(want.TotalPath) / float64(want.ReachablePairs)
			if res.SurvivingHASPL != scratchHASPL {
				t.Fatalf("trial %d: SurvivingHASPL %v != %v", trial, res.SurvivingHASPL, scratchHASPL)
			}
		}
	}
}

// TestSampleDeterministic pins that sampling is a pure function of
// (graph, fraction, seed) and that different seeds move the scenario.
func TestSampleDeterministic(t *testing.T) {
	g := testGraph(t, 5, 128, 32, 10)
	for _, model := range []Model{UniformLinks, UniformSwitches, Bundles, Targeted} {
		a, err := Sample(g, model, 0.1, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Sample(g, model, 0.1, 99)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Links) != len(b.Links) || len(a.Switches) != len(b.Switches) {
			t.Fatalf("%v: same seed, different scenario sizes", model)
		}
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				t.Fatalf("%v: same seed, different links", model)
			}
		}
		for i := range a.Switches {
			if a.Switches[i] != b.Switches[i] {
				t.Fatalf("%v: same seed, different switches", model)
			}
		}
	}
}

// TestSampleFractions checks the failed-component counts track the
// requested fraction for the link-population models.
func TestSampleFractions(t *testing.T) {
	g := testGraph(t, 3, 256, 64, 12)
	e := g.NumEdges()
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		want := int(frac*float64(e) + 0.5)
		for _, model := range []Model{UniformLinks, Targeted} {
			sc, err := Sample(g, model, frac, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Links) != want {
				t.Fatalf("%v f=%.2f: %d links failed, want %d", model, frac, len(sc.Links), want)
			}
		}
		// Bundles fail in whole groups: at least the quota, never more
		// than quota + the largest bundle could overshoot by.
		sc, err := Sample(g, Bundles, frac, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Links) < want {
			t.Fatalf("bundles f=%.2f: %d links failed, want >= %d", frac, len(sc.Links), want)
		}
	}
	// Full failure takes everything down in every link model.
	for _, model := range []Model{UniformLinks, Bundles, Targeted} {
		sc, err := Sample(g, model, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Links) != e {
			t.Fatalf("%v f=1: %d links failed, want all %d", model, len(sc.Links), e)
		}
	}
}

// TestSwitchFailureDetachesHosts checks switch failures remove the
// switch's links and hosts, and that degraded metrics count the detached
// hosts as unreachable.
func TestSwitchFailureDetachesHosts(t *testing.T) {
	g := testGraph(t, 9, 64, 16, 8)
	sc := Scenario{Switches: []int32{3}}
	d, err := Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.SwitchDegree(3) != 0 || d.Graph.HostCount(3) != 0 {
		t.Fatal("failed switch kept links or hosts")
	}
	if len(d.DetachedHosts) != g.HostCount(3) {
		t.Fatalf("detached %d hosts, switch carried %d", len(d.DetachedHosts), g.HostCount(3))
	}
	met := d.Graph.Evaluate()
	if met.Connected && g.HostCount(3) > 0 {
		t.Fatal("graph with detached hosts reported connected")
	}
	if DisconnectedHosts(d.Graph) < len(d.DetachedHosts) {
		t.Fatal("DisconnectedHosts missed the detached hosts")
	}
}

// TestEdgeBetweennessBridge: on a barbell (two cliques joined by one
// bridge) the bridge must rank first.
func TestEdgeBetweennessBridge(t *testing.T) {
	// Two K4s on switches 0-3 and 4-7, bridge 3-4. Radix 8 leaves room.
	g := hsgraph.New(8, 8, 8)
	for h := 0; h < 8; h++ {
		if err := g.AttachHost(h, h); err != nil {
			t.Fatal(err)
		}
	}
	clique := func(lo int) {
		for a := lo; a < lo+4; a++ {
			for b := a + 1; b < lo+4; b++ {
				if err := g.Connect(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	clique(0)
	clique(4)
	if err := g.Connect(3, 4); err != nil {
		t.Fatal(err)
	}
	ranked := EdgeBetweenness(g)
	if ranked[0] != [2]int32{3, 4} {
		t.Fatalf("bridge not ranked first: %v", ranked[0])
	}
	// Targeted attack at minimal fraction must cut exactly the bridge.
	sc, err := Sample(g, Targeted, 1.0/float64(g.NumEdges()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Links) != 1 || sc.Links[0] != [2]int32{3, 4} {
		t.Fatalf("targeted attack missed the bridge: %+v", sc)
	}
	d, err := Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if DisconnectedHosts(d.Graph) != 4 {
		t.Fatalf("bridge cut should strand 4 hosts, got %d", DisconnectedHosts(d.Graph))
	}
}

// TestSweepDeterministicAndMonotone: the sweep is reproducible and the
// zero point matches the pristine metrics exactly.
func TestSweepDeterministicAndMonotone(t *testing.T) {
	g := testGraph(t, 21, 128, 32, 10)
	o := SweepOptions{
		Model:     UniformLinks,
		Fractions: []float64{0, 0.05, 0.15},
		Trials:    8,
		Seed:      7,
		Resamples: 200,
	}
	a, err := Sweep(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 2 // different parallelism must not change the numbers
	b, err := Sweep(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	pristine := g.Evaluate()
	p0 := a[0]
	if p0.SurvivingHASPL.Mean != pristine.HASPL || p0.ConnectedTrials != o.Trials {
		t.Fatalf("zero point %+v does not match pristine %+v", p0, pristine)
	}
	if p0.HASPLLo != pristine.HASPL || p0.HASPLHi != pristine.HASPL {
		t.Fatalf("zero point CI [%v,%v] should collapse to %v", p0.HASPLLo, p0.HASPLHi, pristine.HASPL)
	}
	// More failures cannot shrink the surviving h-ASPL on average here.
	if a[1].SurvivingHASPL.Mean < pristine.HASPL {
		t.Fatalf("5%% failures improved h-ASPL: %v < %v", a[1].SurvivingHASPL.Mean, pristine.HASPL)
	}
	if a[2].HASPLLo > a[2].HASPLHi {
		t.Fatal("bootstrap CI inverted")
	}
}

// TestGraphReportSchema pins the shared JSON field values on a degraded
// graph.
func TestGraphReportSchema(t *testing.T) {
	g := testGraph(t, 2, 32, 8, 6)
	met := g.Evaluate()
	rep := NewGraphReport(g, met)
	if rep.Order != 32 || rep.Switches != 8 || rep.Radix != 6 || rep.Links != g.NumEdges() {
		t.Fatalf("bad shape fields: %+v", rep)
	}
	if !rep.Connected || rep.HASPL != met.HASPL || rep.SurvivingHASPL != met.HASPL || rep.ReachableFrac != 1 {
		t.Fatalf("connected report inconsistent: %+v", rep)
	}
	sc, err := Sample(g, UniformSwitches, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	dmet := d.Graph.Evaluate()
	drep := NewGraphReport(d.Graph, dmet)
	if dmet.Connected {
		t.Skip("scenario did not disconnect the graph")
	}
	if drep.HASPL != -1 || drep.Connected {
		t.Fatalf("disconnected report should flag HASPL=-1: %+v", drep)
	}
	if drep.ReachableFrac >= 1 || drep.SurvivingHASPL <= 0 {
		t.Fatalf("degraded report fields unset: %+v", drep)
	}
}
