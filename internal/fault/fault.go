// Package fault injects component failures into host-switch graphs and
// measures the resulting degradation. It provides deterministic failure
// models (uniform random link/switch failures, correlated cable-bundle
// failures driven by the phys floorplan, and targeted highest-betweenness
// attacks), derives a degraded hsgraph.Graph from a pristine one, and runs
// Monte-Carlo resilience sweeps over failure fractions with bootstrap
// confidence intervals. Resilience is a first-class evaluation axis for
// low-diameter topologies (Besta & Hoefler, SC'14); this package adds that
// axis to the ORP reproduction.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/hsgraph"
	"repro/internal/phys"
	"repro/internal/rng"
)

// Scenario is a set of component failures to apply to a graph. Switch
// failures subsume the links incident to the switch; listing such a link
// explicitly is allowed and has no extra effect.
type Scenario struct {
	Links    [][2]int32 // failed switch-switch edges (unordered pairs)
	Switches []int32    // failed switches (all their ports go down)
}

// Empty reports whether the scenario fails nothing.
func (sc Scenario) Empty() bool { return len(sc.Links) == 0 && len(sc.Switches) == 0 }

// Model selects a failure-sampling strategy.
type Model int

const (
	// UniformLinks fails a fraction of switch-switch edges uniformly at
	// random — the classic random-cable-cut model.
	UniformLinks Model = iota
	// UniformSwitches fails a fraction of switches uniformly at random;
	// every port of a failed switch goes down and its hosts detach.
	UniformSwitches
	// Bundles fails correlated cable bundles: inter-cabinet edges are
	// grouped by cabinet pair under the phys default floorplan, and whole
	// bundles fail together until the requested link fraction is reached.
	// This models a severed conduit taking out every cable routed
	// through it.
	Bundles
	// Targeted fails the links of highest edge betweenness (an informed
	// adversary, or equivalently the most-loaded cables wearing out
	// first). Deterministic given the graph; the seed only breaks ties.
	Targeted
)

// String returns the CLI name of the model.
func (m Model) String() string {
	switch m {
	case UniformLinks:
		return "links"
	case UniformSwitches:
		return "switches"
	case Bundles:
		return "bundles"
	case Targeted:
		return "targeted"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ParseModel maps a CLI name to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "links":
		return UniformLinks, nil
	case "switches":
		return UniformSwitches, nil
	case "bundles":
		return Bundles, nil
	case "targeted":
		return Targeted, nil
	}
	return 0, fmt.Errorf("fault: unknown model %q (want links|switches|bundles|targeted)", s)
}

// Sample draws a failure scenario from the model. fraction is the share of
// the model's component population to fail (links for UniformLinks,
// Bundles and Targeted; switches for UniformSwitches), clamped to [0, 1].
// The count is rounded to the nearest integer so a sweep over fractions
// hits every population size. Sampling is a pure function of (g, fraction,
// seed): the same inputs always yield the same scenario.
func Sample(g *hsgraph.Graph, m Model, fraction float64, seed uint64) (Scenario, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	switch m {
	case UniformLinks:
		return sampleLinks(g, fraction, seed), nil
	case UniformSwitches:
		return sampleSwitches(g, fraction, seed), nil
	case Bundles:
		return sampleBundles(g, fraction, seed), nil
	case Targeted:
		return targetBetweenness(g, fraction, seed), nil
	}
	return Scenario{}, fmt.Errorf("fault: unknown model %v", m)
}

// round half-up; count of components to fail.
func failCount(population int, fraction float64) int {
	k := int(fraction*float64(population) + 0.5)
	if k > population {
		k = population
	}
	return k
}

func sampleLinks(g *hsgraph.Graph, fraction float64, seed uint64) Scenario {
	edges := sortedEdges(g)
	k := failCount(len(edges), fraction)
	rnd := rng.New(seed)
	rnd.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return Scenario{Links: canonLinks(edges[:k])}
}

func sampleSwitches(g *hsgraph.Graph, fraction float64, seed uint64) Scenario {
	m := g.Switches()
	k := failCount(m, fraction)
	perm := rng.New(seed).Perm(m)
	sw := make([]int32, k)
	for i := 0; i < k; i++ {
		sw[i] = int32(perm[i])
	}
	sort.Slice(sw, func(i, j int) bool { return sw[i] < sw[j] })
	return Scenario{Switches: sw}
}

// sampleBundles groups inter-cabinet edges into bundles by (cabinet,
// cabinet) pair under the phys default layout, shuffles the bundles, and
// fails whole bundles until at least failCount links are down.
// Intra-cabinet edges are short independent cables and never join a
// bundle; they fill the tail only if every bundle is already failed.
func sampleBundles(g *hsgraph.Graph, fraction float64, seed uint64) Scenario {
	layout := phys.DefaultLayout(g, phys.NewParams())
	type bundle struct {
		key   [2]int32
		edges [][2]int32
	}
	byPair := make(map[[2]int32]*bundle)
	var keys [][2]int32
	var intra [][2]int32
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		ca, cb := layout.CabinetOf[a], layout.CabinetOf[b]
		if ca == cb {
			intra = append(intra, [2]int32{int32(a), int32(b)})
			continue
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		key := [2]int32{ca, cb}
		bu := byPair[key]
		if bu == nil {
			bu = &bundle{key: key}
			byPair[key] = bu
			keys = append(keys, key)
		}
		bu.edges = append(bu.edges, [2]int32{int32(a), int32(b)})
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	rnd := rng.New(seed)
	rnd.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	want := failCount(g.NumEdges(), fraction)
	var failed [][2]int32
	for _, key := range keys {
		if len(failed) >= want {
			break
		}
		failed = append(failed, byPair[key].edges...)
	}
	// All bundles down but quota unmet: fall back to random intra-cabinet
	// cables so fraction=1 still fails everything.
	if len(failed) < want {
		rnd.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
		failed = append(failed, intra[:want-len(failed)]...)
	}
	return Scenario{Links: canonLinks(failed)}
}

// targetBetweenness fails the failCount links of highest edge betweenness
// in the pristine graph (single shot, not recomputed between removals).
// Ties break on the canonical edge order, so the result is deterministic;
// the seed is unused but kept for signature symmetry.
func targetBetweenness(g *hsgraph.Graph, fraction float64, _ uint64) Scenario {
	k := failCount(g.NumEdges(), fraction)
	if k == 0 {
		return Scenario{}
	}
	ranked := EdgeBetweenness(g)
	return Scenario{Links: canonLinks(ranked[:k])}
}

// sortedEdges returns the edge list in canonical (a, b) ascending order,
// independent of the graph's mutation history.
func sortedEdges(g *hsgraph.Graph) [][2]int32 {
	edges := make([][2]int32, g.NumEdges())
	for i := range edges {
		a, b := g.Edge(i)
		edges[i] = [2]int32{int32(a), int32(b)}
	}
	sort.Slice(edges, func(i, j int) bool {
		return edges[i][0] < edges[j][0] || (edges[i][0] == edges[j][0] && edges[i][1] < edges[j][1])
	})
	return edges
}

// canonLinks normalises each pair to a <= b and sorts the list.
func canonLinks(links [][2]int32) [][2]int32 {
	out := make([][2]int32, len(links))
	for i, e := range links {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		out[i] = e
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// Degraded is the result of applying a Scenario to a graph.
type Degraded struct {
	Graph         *hsgraph.Graph // the surviving fabric (failed edges removed, hosts of failed switches detached)
	Scenario      Scenario       // the applied failures (normalised)
	FailedLinks   int            // distinct links removed, including those lost to switch failures
	DetachedHosts []int          // hosts whose switch failed; they reach nothing
}

// Apply clones g and removes the scenario's components. Failed switches
// stay as vertices (so indices keep their meaning for vis and routing) but
// lose every link and host. Links already listed under a failed switch are
// counted once. Apply never mutates g.
func Apply(g *hsgraph.Graph, sc Scenario) (*Degraded, error) {
	d := &Degraded{Graph: g.Clone()}
	dg := d.Graph
	m := g.Switches()
	downSwitch := make([]bool, m)
	for _, s := range sc.Switches {
		if s < 0 || int(s) >= m {
			return nil, fmt.Errorf("fault: switch %d out of range [0,%d)", s, m)
		}
		if downSwitch[s] {
			continue
		}
		downSwitch[s] = true
		for dg.SwitchDegree(int(s)) > 0 {
			nb := int(dg.Neighbors(int(s))[0])
			if err := dg.Disconnect(int(s), nb); err != nil {
				return nil, err
			}
			d.FailedLinks++
		}
		for dg.HostCount(int(s)) > 0 {
			h := dg.AnyHostOn(int(s))
			if err := dg.DetachHost(h); err != nil {
				return nil, err
			}
			d.DetachedHosts = append(d.DetachedHosts, h)
		}
	}
	for _, e := range sc.Links {
		a, b := int(e[0]), int(e[1])
		if a < 0 || a >= m || b < 0 || b >= m {
			return nil, fmt.Errorf("fault: link {%d,%d} out of range [0,%d)", a, b, m)
		}
		if !dg.HasEdge(a, b) {
			if g.HasEdge(a, b) {
				continue // already removed by a failed endpoint switch
			}
			return nil, fmt.Errorf("fault: link {%d,%d} does not exist", a, b)
		}
		if err := dg.Disconnect(a, b); err != nil {
			return nil, err
		}
		d.FailedLinks++
	}
	sort.Ints(d.DetachedHosts)
	d.Scenario = Scenario{Links: canonLinks(sc.Links), Switches: append([]int32(nil), sc.Switches...)}
	sort.Slice(d.Scenario.Switches, func(i, j int) bool {
		return d.Scenario.Switches[i] < d.Scenario.Switches[j]
	})
	return d, nil
}
