package fault

import (
	"sort"

	"repro/internal/hsgraph"
)

// EdgeBetweenness ranks the switch-switch edges of g by descending edge
// betweenness centrality (Brandes 2001), computed on the unweighted switch
// graph with every switch as a source. Ties break on the canonical edge
// order so the ranking is fully deterministic. The returned pairs are
// normalised a <= b.
func EdgeBetweenness(g *hsgraph.Graph) [][2]int32 {
	m := g.Switches()
	score := make(map[[2]int32]float64, g.NumEdges())
	edges := sortedEdges(g)
	for _, e := range edges {
		score[e] = 0
	}

	dist := make([]int32, m)
	sigma := make([]float64, m) // shortest-path counts
	delta := make([]float64, m) // dependency accumulators
	order := make([]int32, 0, m)
	queue := make([]int32, 0, m)

	for s := 0; s < m; s++ {
		for i := 0; i < m; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		dist[s] = 0
		sigma[s] = 1
		order = order[:0]
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(int(v)) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		// Walk vertices in reverse BFS order, pushing dependencies down
		// the shortest-path DAG and charging each DAG edge.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range g.Neighbors(int(w)) {
				if dist[v] != dist[w]-1 {
					continue
				}
				c := sigma[v] / sigma[w] * (1 + delta[w])
				delta[v] += c
				key := [2]int32{v, w}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				score[key] += c
			}
		}
	}

	sort.SliceStable(edges, func(i, j int) bool {
		si, sj := score[edges[i]], score[edges[j]]
		if si != sj {
			return si > sj
		}
		return edges[i][0] < edges[j][0] ||
			(edges[i][0] == edges[j][0] && edges[i][1] < edges[j][1])
	})
	return edges
}
