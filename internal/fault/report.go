package fault

import (
	"repro/internal/hsgraph"
)

// GraphReport is the machine-readable evaluation of one graph. It is the
// single JSON schema shared by `orpeval -json` and `orpfault -json`, so
// scripted sweeps can consume either tool's output with one parser.
type GraphReport struct {
	Order    int `json:"order"`
	Switches int `json:"switches"`
	Radix    int `json:"radix"`
	Links    int `json:"links"`

	HASPL          float64 `json:"haspl"` // -1 when disconnected
	Diameter       int     `json:"diameter"`
	Connected      bool    `json:"connected"`
	TotalPath      int64   `json:"totalPath"`
	ReachablePairs int64   `json:"reachablePairs"`

	// SurvivingHASPL averages over reachable pairs only; it equals HASPL
	// on connected graphs and stays finite on degraded ones.
	SurvivingHASPL float64 `json:"survivingHASPL"`
	ReachableFrac  float64 `json:"reachableFrac"`
}

// NewGraphReport packages a graph and its metrics for JSON output.
func NewGraphReport(g *hsgraph.Graph, met hsgraph.Metrics) GraphReport {
	rep := GraphReport{
		Order:          g.Order(),
		Switches:       g.Switches(),
		Radix:          g.Radix(),
		Links:          g.NumEdges(),
		HASPL:          met.HASPL,
		Diameter:       met.Diameter,
		Connected:      met.Connected,
		TotalPath:      met.TotalPath,
		ReachablePairs: met.ReachablePairs,
	}
	if !met.Connected {
		rep.HASPL = -1
	}
	if met.ReachablePairs > 0 {
		rep.SurvivingHASPL = float64(met.TotalPath) / float64(met.ReachablePairs)
	}
	n := int64(g.Order())
	if pairs := n * (n - 1) / 2; pairs > 0 {
		rep.ReachableFrac = float64(met.ReachablePairs) / float64(pairs)
	} else {
		rep.ReachableFrac = 1
	}
	return rep
}
