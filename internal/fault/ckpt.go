package fault

// Crash-safe sweep ledger. A Monte-Carlo sweep is embarrassingly
// resumable: every trial's Result is a pure function of (graph, options,
// fraction index, trial index), so a checkpoint only needs to remember
// which trials are finished and what they measured. The ledger stores a
// fingerprint of the sweep's defining inputs plus a done-flag and Result
// per trial; resuming re-runs exactly the missing trials and aggregates
// identically to a sweep that was never interrupted.

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
)

// sweepKind names the ledger payload layout (see internal/ckpt).
const sweepKind = "orp.sweep.v1"

// maxLedgerJobs caps the trial count a ledger may claim; beyond it the
// file is corrupt (or hostile), not a real sweep.
const maxLedgerJobs = 1 << 24

var ledgerCRCTable = crc32.MakeTable(crc32.Castagnoli)

// sweepFingerprint pins a ledger to the sweep inputs that define its
// numbers. Workers, reporting and CI options are deliberately absent:
// they never change a trial's Result.
type sweepFingerprint struct {
	model     Model
	seed      uint64
	trials    int
	fractions []float64
	n, m, r   int
	graphCRC  uint32
}

func fingerprintSweep(g *hsgraph.Graph, o *SweepOptions) sweepFingerprint {
	var buf bytes.Buffer
	// The canonical text form identifies the graph independent of its
	// in-memory storage order (the sweep never mutates it, so order
	// cannot matter the way it does for anneal snapshots).
	if err := hsgraph.Write(&buf, g); err != nil {
		panic("fault: serializing a validated graph failed: " + err.Error())
	}
	return sweepFingerprint{
		model:     o.Model,
		seed:      o.Seed,
		trials:    o.Trials,
		fractions: o.Fractions,
		n:         g.Order(),
		m:         g.Switches(),
		r:         g.Radix(),
		graphCRC:  crc32.Checksum(buf.Bytes(), ledgerCRCTable),
	}
}

// sweepLedger is the in-memory side of the checkpoint file. record is
// safe for concurrent use by the sweep's trial workers.
type sweepLedger struct {
	mu         sync.Mutex
	path       string
	every      int
	sinceFlush int
	fp         sweepFingerprint
	done       []bool
	results    []Result
}

// newSweepLedger builds an empty ledger over the sweep's job list.
func newSweepLedger(path string, every int, fp sweepFingerprint, jobs int) *sweepLedger {
	return &sweepLedger{
		path:    path,
		every:   every,
		fp:      fp,
		done:    make([]bool, jobs),
		results: make([]Result, jobs),
	}
}

// record marks job i finished and flushes the ledger to disk when the
// flush interval is due.
func (l *sweepLedger) record(i int, r Result) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.done[i] = true
	l.results[i] = r
	l.sinceFlush++
	if l.sinceFlush < l.every {
		return nil
	}
	return l.flushLocked()
}

// flush persists the current state regardless of the interval.
func (l *sweepLedger) flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sinceFlush == 0 {
		return nil
	}
	return l.flushLocked()
}

func (l *sweepLedger) flushLocked() error {
	var e ckpt.Enc
	e.Int(int(l.fp.model))
	e.U64(l.fp.seed)
	e.Int(l.fp.trials)
	e.F64s(l.fp.fractions)
	e.Int(l.fp.n)
	e.Int(l.fp.m)
	e.Int(l.fp.r)
	e.U64(uint64(l.fp.graphCRC))
	e.Int(len(l.done))
	for i, d := range l.done {
		e.Bool(d)
		if d {
			encSweepResult(&e, &l.results[i])
		}
	}
	if err := ckpt.WriteFile(l.path, sweepKind, e.Finish()); err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	l.sinceFlush = 0
	return nil
}

func encSweepResult(e *ckpt.Enc, r *Result) {
	for _, m := range []*hsgraph.Metrics{&r.Pristine, &r.Degraded} {
		e.F64(m.HASPL)
		e.Int(m.Diameter)
		e.I64(m.TotalPath)
		e.Bool(m.Connected)
		e.I64(m.ReachablePairs)
	}
	e.Int(r.FailedLinks)
	e.Int(r.FailedSwitches)
	e.Int(r.DetachedHosts)
	e.Int(r.DisconnectedHosts)
	e.F64(r.SurvivingHASPL)
	e.F64(r.ReachableFrac)
	e.F64(r.Stretch)
}

func decSweepResult(d *ckpt.Dec, r *Result) {
	for _, m := range []*hsgraph.Metrics{&r.Pristine, &r.Degraded} {
		m.HASPL = d.F64()
		m.Diameter = d.Int()
		m.TotalPath = d.I64()
		m.Connected = d.Bool()
		m.ReachablePairs = d.I64()
	}
	r.FailedLinks = d.Int()
	r.FailedSwitches = d.Int()
	r.DetachedHosts = d.Int()
	r.DisconnectedHosts = d.Int()
	r.SurvivingHASPL = d.F64()
	r.ReachableFrac = d.F64()
	r.Stretch = d.F64()
}

// loadSweepLedger reads the ledger at path and verifies it against the
// current sweep's fingerprint; a mismatch means the file belongs to a
// different sweep and resuming from it would silently corrupt the
// output.
func loadSweepLedger(path string, every int, want sweepFingerprint, jobs int) (*sweepLedger, error) {
	kind, payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: resume %s: %w", path, err)
	}
	if kind != sweepKind {
		return nil, fmt.Errorf("fault: resume %s: kind %q is not %q", path, kind, sweepKind)
	}
	d := ckpt.NewDec(payload)
	got := sweepFingerprint{}
	got.model = Model(d.Int())
	got.seed = d.U64()
	got.trials = d.Int()
	got.fractions = d.F64s(maxLedgerJobs)
	got.n = d.Int()
	got.m = d.Int()
	got.r = d.Int()
	got.graphCRC = uint32(d.U64())
	count := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("fault: resume %s: %w", path, err)
	}
	if count < 0 || count > maxLedgerJobs || count != len(got.fractions)*got.trials {
		return nil, fmt.Errorf("fault: resume %s: ledger claims %d trials for %d fractions x %d",
			path, count, len(got.fractions), got.trials)
	}
	for _, f := range got.fractions {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return nil, fmt.Errorf("fault: resume %s: implausible fraction %v", path, f)
		}
	}

	mismatch := func(field string, stored, requested any) error {
		return fmt.Errorf("fault: resume %s: ledger has %s=%v but this sweep uses %v", path, field, stored, requested)
	}
	switch {
	case got.model != want.model:
		return nil, mismatch("Model", got.model, want.model)
	case got.seed != want.seed:
		return nil, mismatch("Seed", got.seed, want.seed)
	case got.trials != want.trials:
		return nil, mismatch("Trials", got.trials, want.trials)
	case !equalF64s(got.fractions, want.fractions):
		return nil, mismatch("Fractions", got.fractions, want.fractions)
	case got.n != want.n || got.m != want.m || got.r != want.r:
		return nil, mismatch("graph dimensions",
			fmt.Sprintf("n=%d m=%d r=%d", got.n, got.m, got.r),
			fmt.Sprintf("n=%d m=%d r=%d", want.n, want.m, want.r))
	case got.graphCRC != want.graphCRC:
		return nil, mismatch("graph checksum", got.graphCRC, want.graphCRC)
	case count != jobs:
		return nil, mismatch("trial count", count, jobs)
	}

	l := newSweepLedger(path, every, want, jobs)
	for i := 0; i < count; i++ {
		l.done[i] = d.Bool()
		if l.done[i] {
			decSweepResult(d, &l.results[i])
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("fault: resume %s: %w", path, err)
	}
	for i, dn := range l.done {
		if !dn {
			continue
		}
		r := &l.results[i]
		if math.IsNaN(r.ReachableFrac) || r.ReachableFrac < 0 || r.ReachableFrac > 1 ||
			r.FailedLinks < 0 || r.FailedSwitches < 0 || r.DetachedHosts < 0 || r.DisconnectedHosts < 0 {
			return nil, fmt.Errorf("fault: resume %s: trial %d holds implausible measurements", path, i)
		}
	}
	return l, nil
}

func equalF64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
