package fault

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// SweepOptions configures a Monte-Carlo resilience sweep.
type SweepOptions struct {
	Model     Model
	Fractions []float64 // failure fractions to probe, e.g. 0, 0.05, ..., 0.20
	Trials    int       // independent scenarios per fraction (default 20)
	Seed      uint64    // base seed; every (fraction, trial) seed derives from it
	Workers   int       // total goroutine budget (0 = GOMAXPROCS), split between trials and evaluator shards

	Confidence float64 // bootstrap CI level (default 0.95)
	Resamples  int     // bootstrap resamples (default 1000)
}

// SweepPoint aggregates the trials at one failure fraction.
type SweepPoint struct {
	Fraction float64
	Trials   int

	// SurvivingHASPL is the distribution of per-trial h-ASPL over still-
	// reachable host pairs, with a bootstrap CI for its mean.
	SurvivingHASPL         stats.Summary
	HASPLLo, HASPLHi       float64
	Stretch                stats.Summary // SurvivingHASPL / pristine h-ASPL
	DisconnectedHosts      stats.Summary
	ReachableFrac          stats.Summary
	ConnectedTrials        int // trials where every host pair stayed reachable
	WorstDegradedDiameter  int // max finite diameter seen across trials
	MeanFailedLinks        float64
	MeanFailedSwitches     float64
	MeanDetachedHostsCount float64
}

// TrialSeed returns the deterministic seed of trial t at fraction index
// fi for a sweep with the given base seed. Exposed so CLIs can replay a
// single trial out of a sweep.
func TrialSeed(base uint64, fi, t int) uint64 {
	s := base ^ 0x5851f42d4c957f2d*uint64(fi+1) ^ 0x14057b7ef767814f*uint64(t+1)
	return rng.SplitMix64(&s)
}

// Sweep runs Trials scenarios at every fraction and aggregates degradation
// statistics. Trials are independent and run on a worker pool; each worker
// owns an hsgraph.Evaluator whose shard count is the remaining share of
// the goroutine budget, so small sweeps on large graphs still saturate the
// machine. The output is a pure function of (g, o): scheduling never
// changes the numbers, only the wall-clock.
func Sweep(g *hsgraph.Graph, o SweepOptions) ([]SweepPoint, error) {
	if len(o.Fractions) == 0 {
		return nil, fmt.Errorf("fault: sweep needs at least one fraction")
	}
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Resamples == 0 {
		o.Resamples = 1000
	}
	pristine := g.EvaluateParallel(o.Workers)
	if !pristine.Connected {
		return nil, fmt.Errorf("fault: pristine graph is disconnected; refusing to sweep")
	}

	type job struct{ fi, t int }
	jobs := make([]job, 0, len(o.Fractions)*o.Trials)
	for fi := range o.Fractions {
		for t := 0; t < o.Trials; t++ {
			jobs = append(jobs, job{fi, t})
		}
	}
	trialWorkers := o.Workers
	if trialWorkers > len(jobs) {
		trialWorkers = len(jobs)
	}
	evWorkers := o.Workers / trialWorkers
	if evWorkers < 1 {
		evWorkers = 1
	}

	results := make([]Result, len(jobs))
	errs := make([]error, trialWorkers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < trialWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := hsgraph.NewEvaluator(evWorkers)
			defer ev.Close()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jb := jobs[i]
				sc, err := Sample(g, o.Model, o.Fractions[jb.fi], TrialSeed(o.Seed, jb.fi, jb.t))
				if err != nil {
					errs[w] = err
					return
				}
				d, err := Apply(g, sc)
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = Measure(pristine, d, ev)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	points := make([]SweepPoint, len(o.Fractions))
	for fi, frac := range o.Fractions {
		pt := SweepPoint{Fraction: frac, Trials: o.Trials}
		haspl := make([]float64, 0, o.Trials)
		stretch := make([]float64, 0, o.Trials)
		disc := make([]float64, 0, o.Trials)
		reach := make([]float64, 0, o.Trials)
		for t := 0; t < o.Trials; t++ {
			r := results[fi*o.Trials+t]
			haspl = append(haspl, r.SurvivingHASPL)
			stretch = append(stretch, r.Stretch)
			disc = append(disc, float64(r.DisconnectedHosts))
			reach = append(reach, r.ReachableFrac)
			if r.Degraded.Connected {
				pt.ConnectedTrials++
			}
			if r.Degraded.Diameter > pt.WorstDegradedDiameter {
				pt.WorstDegradedDiameter = r.Degraded.Diameter
			}
			pt.MeanFailedLinks += float64(r.FailedLinks)
			pt.MeanFailedSwitches += float64(r.FailedSwitches)
			pt.MeanDetachedHostsCount += float64(r.DetachedHosts)
		}
		nt := float64(o.Trials)
		pt.MeanFailedLinks /= nt
		pt.MeanFailedSwitches /= nt
		pt.MeanDetachedHostsCount /= nt
		pt.SurvivingHASPL = stats.Summarize(haspl)
		pt.Stretch = stats.Summarize(stretch)
		pt.DisconnectedHosts = stats.Summarize(disc)
		pt.ReachableFrac = stats.Summarize(reach)
		ciSeed := TrialSeed(o.Seed, fi, -7) // distinct from every trial seed
		pt.HASPLLo, pt.HASPLHi = stats.BootstrapCI(haspl, o.Confidence, o.Resamples, ciSeed)
		points[fi] = pt
	}
	return points, nil
}

// DefaultFractions is the 0-20% failure-fraction grid used by orpfault
// -sweep and the resilience figure.
func DefaultFractions() []float64 {
	return []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}
}
