package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// SweepOptions configures a Monte-Carlo resilience sweep.
type SweepOptions struct {
	Model     Model
	Fractions []float64 // failure fractions to probe, e.g. 0, 0.05, ..., 0.20
	Trials    int       // independent scenarios per fraction (default 20)
	Seed      uint64    // base seed; every (fraction, trial) seed derives from it
	Workers   int       // total goroutine budget (0 = GOMAXPROCS), split between trials and evaluator shards

	Confidence float64 // bootstrap CI level (default 0.95)
	Resamples  int     // bootstrap resamples (default 1000)

	// OnTrial, when non-nil, is called after every completed trial with
	// cumulative progress. Calls are serialized but may come from any
	// worker goroutine and in any trial order; keep the callback fast — it
	// sits on the sweep's critical path. Progress reporting never changes
	// the sweep's numbers, only its wall-clock.
	OnTrial func(p TrialProgress)
	// Metrics, when non-nil, receives live per-trial counters and a
	// wall-clock timing histogram (see SweepMetrics).
	Metrics *SweepMetrics

	// CheckpointPath, when non-empty, maintains a crash-safe ledger of
	// completed trials at this path (atomic replace per flush, see
	// package ckpt). Because every trial is a pure function of the graph
	// and the options, a resumed sweep re-runs only the missing trials
	// and produces []SweepPoint identical to an uninterrupted run.
	CheckpointPath string
	// CheckpointEvery is the ledger flush interval in completed trials.
	// Default 1 (every trial — trials are expensive, flushes are not).
	// Negative values are rejected.
	CheckpointEvery int
	// Resume, with a non-empty CheckpointPath, loads the ledger and skips
	// its completed trials; a missing file starts fresh. The ledger's
	// fingerprint (model, fractions, trials, seed, graph) must match this
	// sweep or Sweep errors out.
	Resume bool
	// Interrupt, if non-nil, is polled between trials; when it becomes
	// true, workers finish their current trial, the ledger is flushed,
	// and Sweep returns ckpt.ErrInterrupted. Nil results accompany the
	// error; the ledger holds every finished trial.
	Interrupt *atomic.Bool
	// Span, if non-nil, is the caller's parent span; the sweep opens
	// stage children (sweep.pristine-eval, sweep.trials with trial
	// counts, sweep.aggregate). Nil costs nothing (see internal/obs).
	Span *obs.Span
}

// TrialProgress is the per-trial report handed to SweepOptions.OnTrial.
type TrialProgress struct {
	FracIndex int     // index into SweepOptions.Fractions
	Fraction  float64 // the fraction being probed
	Trial     int     // trial number within the fraction, 0-based
	Done      int     // trials completed so far, across all fractions
	Total     int     // len(Fractions) * Trials
	Seconds   float64 // wall-clock duration of this trial
	Result    Result  // the trial's measurements
}

// SweepMetrics publishes live sweep state into an obs.Registry.
type SweepMetrics struct {
	TrialsCompleted *obs.Counter
	Progress        *obs.Gauge // completed fraction of the sweep, 0..1
	// TrialSeconds is the wall-clock duration of individual trials
	// (100µs .. ~50s exponential buckets).
	TrialSeconds *obs.Histogram
}

// NewSweepMetrics registers the fault-sweep instrument set in r.
func NewSweepMetrics(r *obs.Registry) *SweepMetrics {
	return &SweepMetrics{
		TrialsCompleted: r.Counter("fault_trials_completed_total", "Monte-Carlo trials finished."),
		Progress:        r.Gauge("fault_sweep_progress", "Completed fraction of the sweep (0..1)."),
		TrialSeconds:    r.Histogram("fault_trial_seconds", "Wall-clock duration of one trial.", obs.ExpBuckets(1e-4, 2, 20)),
	}
}

// SweepPoint aggregates the trials at one failure fraction.
type SweepPoint struct {
	Fraction float64
	Trials   int

	// SurvivingHASPL is the distribution of per-trial h-ASPL over still-
	// reachable host pairs, with a bootstrap CI for its mean.
	SurvivingHASPL         stats.Summary
	HASPLLo, HASPLHi       float64
	Stretch                stats.Summary // SurvivingHASPL / pristine h-ASPL
	DisconnectedHosts      stats.Summary
	ReachableFrac          stats.Summary
	ConnectedTrials        int // trials where every host pair stayed reachable
	WorstDegradedDiameter  int // max finite diameter seen across trials
	MeanFailedLinks        float64
	MeanFailedSwitches     float64
	MeanDetachedHostsCount float64
}

// TrialSeed returns the deterministic seed of trial t at fraction index
// fi for a sweep with the given base seed. Exposed so CLIs can replay a
// single trial out of a sweep.
func TrialSeed(base uint64, fi, t int) uint64 {
	s := base ^ 0x5851f42d4c957f2d*uint64(fi+1) ^ 0x14057b7ef767814f*uint64(t+1)
	return rng.SplitMix64(&s)
}

// Sweep runs Trials scenarios at every fraction and aggregates degradation
// statistics. Trials are independent and run on a worker pool; each worker
// owns an hsgraph.Evaluator whose shard count is the remaining share of
// the goroutine budget, so small sweeps on large graphs still saturate the
// machine. The output is a pure function of (g, o): scheduling never
// changes the numbers, only the wall-clock.
func Sweep(g *hsgraph.Graph, o SweepOptions) ([]SweepPoint, error) {
	if len(o.Fractions) == 0 {
		return nil, fmt.Errorf("fault: sweep needs at least one fraction")
	}
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Resamples == 0 {
		o.Resamples = 1000
	}
	if o.CheckpointEvery < 0 {
		return nil, fmt.Errorf("fault: negative CheckpointEvery %d", o.CheckpointEvery)
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1
	}
	psp := o.Span.Child("sweep.pristine-eval")
	pristine := g.EvaluateParallel(o.Workers)
	if !pristine.Connected {
		err := fmt.Errorf("fault: pristine graph is disconnected; refusing to sweep")
		psp.Fail(err)
		return nil, err
	}
	psp.End()

	type job struct{ fi, t int }
	jobs := make([]job, 0, len(o.Fractions)*o.Trials)
	for fi := range o.Fractions {
		for t := 0; t < o.Trials; t++ {
			jobs = append(jobs, job{fi, t})
		}
	}

	var ledger *sweepLedger
	if o.CheckpointPath != "" {
		fp := fingerprintSweep(g, &o)
		if o.Resume {
			if _, err := os.Stat(o.CheckpointPath); err == nil {
				ledger, err = loadSweepLedger(o.CheckpointPath, o.CheckpointEvery, fp, len(jobs))
				if err != nil {
					return nil, err
				}
			} else if !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("fault: resume: %w", err)
			}
		}
		if ledger == nil {
			ledger = newSweepLedger(o.CheckpointPath, o.CheckpointEvery, fp, len(jobs))
		}
	}
	trialWorkers := o.Workers
	if trialWorkers > len(jobs) {
		trialWorkers = len(jobs)
	}
	evWorkers := o.Workers / trialWorkers
	if evWorkers < 1 {
		evWorkers = 1
	}

	// With a ledger, its (possibly prefilled) result slots are the
	// working storage, so restored and fresh trials aggregate uniformly.
	results := make([]Result, len(jobs))
	if ledger != nil {
		results = ledger.results
	}
	prefilled := 0
	if ledger != nil {
		for _, d := range ledger.done {
			if d {
				prefilled++
			}
		}
	}
	tsp := o.Span.Child("sweep.trials")
	tsp.SetF("total", float64(len(jobs)))
	tsp.SetF("restored", float64(prefilled))
	tsp.SetF("workers", float64(trialWorkers))
	errs := make([]error, trialWorkers)
	var cursor, doneCount atomic.Int64
	doneCount.Store(int64(prefilled))
	var progressMu sync.Mutex
	reporting := o.OnTrial != nil || o.Metrics != nil
	var wg sync.WaitGroup
	for w := 0; w < trialWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stage-label the trial worker so CPU profiles split sweep
			// time from the evaluator shards it drives (stage=eval).
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("stage", "sweep", "worker", strconv.Itoa(w))))
			ev := hsgraph.NewEvaluator(evWorkers)
			defer ev.Close()
			for {
				if o.Interrupt != nil && o.Interrupt.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if ledger != nil && ledger.done[i] {
					continue // restored from the ledger; nothing to redo
				}
				jb := jobs[i]
				var trialStart time.Time
				if reporting {
					trialStart = time.Now()
				}
				sc, err := Sample(g, o.Model, o.Fractions[jb.fi], TrialSeed(o.Seed, jb.fi, jb.t))
				if err != nil {
					errs[w] = err
					return
				}
				d, err := Apply(g, sc)
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = Measure(pristine, d, ev)
				if ledger != nil {
					if err := ledger.record(i, results[i]); err != nil {
						errs[w] = err
						return
					}
				}
				done := int(doneCount.Add(1))
				if reporting {
					secs := time.Since(trialStart).Seconds()
					if m := o.Metrics; m != nil {
						m.TrialsCompleted.Inc()
						m.TrialSeconds.Observe(secs)
						m.Progress.Set(float64(done) / float64(len(jobs)))
					}
					if o.OnTrial != nil {
						progressMu.Lock()
						o.OnTrial(TrialProgress{
							FracIndex: jb.fi,
							Fraction:  o.Fractions[jb.fi],
							Trial:     jb.t,
							Done:      done,
							Total:     len(jobs),
							Seconds:   secs,
							Result:    results[i],
						})
						progressMu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	tsp.SetF("done", float64(doneCount.Load()))
	for _, err := range errs {
		if err != nil {
			tsp.Fail(err)
			return nil, err
		}
	}
	if ledger != nil {
		if err := ledger.flush(); err != nil {
			tsp.Fail(err)
			return nil, err
		}
	}
	if int(doneCount.Load()) < len(jobs) {
		// Only an interrupt leaves trials unfinished without an error.
		tsp.SetS("outcome", "interrupted")
		tsp.End()
		return nil, ckpt.ErrInterrupted
	}
	tsp.SetS("outcome", "done")
	tsp.End()

	asp := o.Span.Child("sweep.aggregate")
	defer asp.End()
	points := make([]SweepPoint, len(o.Fractions))
	for fi, frac := range o.Fractions {
		pt := SweepPoint{Fraction: frac, Trials: o.Trials}
		haspl := make([]float64, 0, o.Trials)
		stretch := make([]float64, 0, o.Trials)
		disc := make([]float64, 0, o.Trials)
		reach := make([]float64, 0, o.Trials)
		for t := 0; t < o.Trials; t++ {
			r := results[fi*o.Trials+t]
			haspl = append(haspl, r.SurvivingHASPL)
			stretch = append(stretch, r.Stretch)
			disc = append(disc, float64(r.DisconnectedHosts))
			reach = append(reach, r.ReachableFrac)
			if r.Degraded.Connected {
				pt.ConnectedTrials++
			}
			if r.Degraded.Diameter > pt.WorstDegradedDiameter {
				pt.WorstDegradedDiameter = r.Degraded.Diameter
			}
			pt.MeanFailedLinks += float64(r.FailedLinks)
			pt.MeanFailedSwitches += float64(r.FailedSwitches)
			pt.MeanDetachedHostsCount += float64(r.DetachedHosts)
		}
		nt := float64(o.Trials)
		pt.MeanFailedLinks /= nt
		pt.MeanFailedSwitches /= nt
		pt.MeanDetachedHostsCount /= nt
		pt.SurvivingHASPL = stats.Summarize(haspl)
		pt.Stretch = stats.Summarize(stretch)
		pt.DisconnectedHosts = stats.Summarize(disc)
		pt.ReachableFrac = stats.Summarize(reach)
		ciSeed := TrialSeed(o.Seed, fi, -7) // distinct from every trial seed
		pt.HASPLLo, pt.HASPLHi = stats.BootstrapCI(haspl, o.Confidence, o.Resamples, ciSeed)
		points[fi] = pt
	}
	return points, nil
}

// DefaultFractions is the 0-20% failure-fraction grid used by orpfault
// -sweep and the resilience figure.
func DefaultFractions() []float64 {
	return []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}
}
