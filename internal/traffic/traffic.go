// Package traffic provides the synthetic traffic patterns classically
// used to evaluate interconnection networks (uniform random, permutation
// patterns like transpose / bit-reverse / bit-complement, hotspot,
// nearest-neighbour shift) plus a harness that measures end-to-end
// latency and aggregate throughput of a host-switch graph under each
// pattern. This extends the paper's NPB evaluation with the
// pattern-level microbenchmarks common in the interconnect literature
// (e.g. Dally & Towles), exercising the same simulator substrate.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/simnet"
)

// Pattern maps a source host to its destination host for a given host
// count. Destinations equal to the source are skipped by the harness.
type Pattern struct {
	Name string
	Dest func(src, n int) int
}

// Uniform returns a pattern where each source draws a fresh uniformly
// random destination (per round, seeded deterministically).
func Uniform(seed uint64) Pattern {
	return Pattern{
		Name: "uniform",
		Dest: func(src, n int) int {
			// Per-source deterministic stream so rounds differ but runs
			// reproduce.
			r := rng.New(seed ^ (uint64(src)+1)*0x9e3779b97f4a7c15)
			return r.Intn(n)
		},
	}
}

// Transpose is the matrix-transpose permutation: on n = k*k hosts,
// (i, j) -> (j, i). Hosts beyond the largest square talk to themselves
// (skipped).
var Transpose = Pattern{
	Name: "transpose",
	Dest: func(src, n int) int {
		k := int(math.Sqrt(float64(n)))
		if k < 1 || src >= k*k {
			return src
		}
		i, j := src/k, src%k
		return j*k + i
	},
}

// BitReverse reverses the bits of the source address (within the width
// of n rounded down to a power of two).
var BitReverse = Pattern{
	Name: "bitreverse",
	Dest: func(src, n int) int {
		w := 0
		for 1<<(w+1) <= n {
			w++
		}
		if src >= 1<<w {
			return src
		}
		out := 0
		for b := 0; b < w; b++ {
			if src&(1<<b) != 0 {
				out |= 1 << (w - 1 - b)
			}
		}
		return out
	},
}

// BitComplement sends to the bitwise complement of the source.
var BitComplement = Pattern{
	Name: "bitcomplement",
	Dest: func(src, n int) int {
		w := 0
		for 1<<(w+1) <= n {
			w++
		}
		if src >= 1<<w {
			return src
		}
		return (1<<w - 1) ^ src
	},
}

// Shift sends to (src + n/2) mod n — the worst case for many low-radix
// topologies.
var Shift = Pattern{
	Name: "shift",
	Dest: func(src, n int) int { return (src + n/2) % n },
}

// Neighbor sends to (src + 1) mod n, the friendliest pattern.
var Neighbor = Pattern{
	Name: "neighbor",
	Dest: func(src, n int) int { return (src + 1) % n },
}

// Hotspot sends a fraction of sources to host 0 and the rest uniformly.
func Hotspot(seed uint64, percent int) Pattern {
	u := Uniform(seed)
	return Pattern{
		Name: fmt.Sprintf("hotspot%d", percent),
		Dest: func(src, n int) int {
			r := rng.New(seed*31 ^ uint64(src))
			if r.Intn(100) < percent {
				return 0
			}
			return u.Dest(src, n)
		},
	}
}

// All returns the standard pattern set.
func All(seed uint64) []Pattern {
	return []Pattern{
		Uniform(seed), Transpose, BitReverse, BitComplement, Shift, Neighbor, Hotspot(seed, 10),
	}
}

// Result summarises one pattern run.
type Result struct {
	Pattern    string
	Hosts      int
	Messages   int64
	MeanLatSec float64 // mean end-to-end message latency
	P99LatSec  float64 // 99th percentile latency
	MaxLatSec  float64
	Elapsed    float64 // makespan of the whole run
	Throughput float64 // delivered bytes/sec aggregate
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s msgs=%-7d mean=%.2fus p99=%.2fus max=%.2fus makespan=%.2fus agg=%.2fGB/s",
		r.Pattern, r.Messages, r.MeanLatSec*1e6, r.P99LatSec*1e6, r.MaxLatSec*1e6,
		r.Elapsed*1e6, r.Throughput/1e9)
}

// RunOptions configures a pattern run.
type RunOptions struct {
	MessageBytes float64 // per message; default 4096
	Rounds       int     // messages per source; default 4
	Hosts        int     // participating hosts; default all
	Packet       bool    // use store-and-forward packets instead of flows
	MTU          float64 // packet size for Packet mode (0 = default)
}

func (o RunOptions) withDefaults(n int) RunOptions {
	if o.MessageBytes == 0 {
		o.MessageBytes = 4096
	}
	if o.Rounds == 0 {
		o.Rounds = 4
	}
	if o.Hosts == 0 || o.Hosts > n {
		o.Hosts = n
	}
	return o
}

// Run injects Rounds messages per source according to the pattern (all
// sources start simultaneously; each source sends its rounds back to
// back) and reports latency and throughput statistics.
func Run(nw *simnet.Network, p Pattern, o RunOptions) (Result, error) {
	o = o.withDefaults(nw.Hosts())
	n := o.Hosts
	sim := simnet.NewSim(nw)
	latencies := make([][]float64, n)
	var sendErr error
	for src := 0; src < n; src++ {
		src := src
		sim.Spawn(src, func(proc *simnet.Proc) {
			for round := 0; round < o.Rounds; round++ {
				dst := p.Dest(src, n)
				if dst == src || dst < 0 || dst >= n {
					continue
				}
				start := proc.Now()
				var sg *simnet.Signal
				var err error
				if o.Packet {
					sg, err = sim.StartPacketMessage(src, dst, o.MessageBytes, o.MTU)
				} else {
					sg, err = sim.StartFlow(src, dst, o.MessageBytes)
				}
				if err != nil {
					sendErr = err
					return
				}
				proc.Wait(sg)
				latencies[src] = append(latencies[src], proc.Now()-start)
			}
		})
	}
	if err := sim.Run(); err != nil {
		return Result{}, err
	}
	if sendErr != nil {
		return Result{}, sendErr
	}
	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	res := Result{Pattern: p.Name, Hosts: n, Messages: int64(len(all)), Elapsed: sim.Now()}
	if len(all) == 0 {
		return res, nil
	}
	sort.Float64s(all)
	var sum float64
	for _, l := range all {
		sum += l
	}
	res.MeanLatSec = sum / float64(len(all))
	p99 := len(all) * 99 / 100
	if p99 >= len(all) {
		p99 = len(all) - 1
	}
	res.P99LatSec = all[p99]
	res.MaxLatSec = all[len(all)-1]
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Messages) * o.MessageBytes / res.Elapsed
	}
	return res, nil
}

// Sweep runs every pattern in ps and returns results in order.
func Sweep(nw *simnet.Network, ps []Pattern, o RunOptions) ([]Result, error) {
	out := make([]Result, 0, len(ps))
	for _, p := range ps {
		res, err := Run(nw, p, o)
		if err != nil {
			return nil, fmt.Errorf("traffic: %s: %w", p.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
