package traffic

import (
	"math"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func fabric(t testing.TB, hosts int) *simnet.Network {
	t.Helper()
	sp, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(hosts)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestPatternsAreValidDestinations(t *testing.T) {
	for _, p := range All(7) {
		for _, n := range []int{4, 16, 17, 64, 100} {
			for src := 0; src < n; src++ {
				d := p.Dest(src, n)
				if d < 0 || d >= n {
					t.Fatalf("%s: Dest(%d, %d) = %d out of range", p.Name, src, n, d)
				}
			}
		}
	}
}

func TestPermutationPatternsAreBijective(t *testing.T) {
	// Transpose, bit-reverse and bit-complement must be permutations on
	// their natural domain (square / power-of-two host counts).
	cases := []struct {
		p Pattern
		n int
	}{
		{Transpose, 16}, {Transpose, 64},
		{BitReverse, 16}, {BitReverse, 32},
		{BitComplement, 16}, {BitComplement, 64},
		{Shift, 10}, {Neighbor, 7},
	}
	for _, c := range cases {
		seen := make([]bool, c.n)
		for src := 0; src < c.n; src++ {
			d := c.p.Dest(src, c.n)
			if seen[d] {
				t.Fatalf("%s on n=%d: destination %d repeated", c.p.Name, c.n, d)
			}
			seen[d] = true
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	for src := 0; src < 64; src++ {
		d := Transpose.Dest(src, 64)
		if Transpose.Dest(d, 64) != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
	}
}

func TestBitComplementSelfInverse(t *testing.T) {
	for src := 0; src < 32; src++ {
		d := BitComplement.Dest(src, 32)
		if BitComplement.Dest(d, 32) != src {
			t.Fatalf("bitcomplement not self-inverse at %d", src)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := Uniform(5), Uniform(5)
	for src := 0; src < 50; src++ {
		if a.Dest(src, 64) != b.Dest(src, 64) {
			t.Fatal("uniform pattern not deterministic for equal seeds")
		}
	}
	c := Uniform(6)
	same := 0
	for src := 0; src < 50; src++ {
		if a.Dest(src, 64) == c.Dest(src, 64) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical uniform pattern")
	}
}

func TestHotspotConcentration(t *testing.T) {
	p := Hotspot(3, 50)
	hits := 0
	const n = 200
	for src := 1; src < n; src++ {
		if p.Dest(src, n) == 0 {
			hits++
		}
	}
	if hits < n/4 {
		t.Fatalf("hotspot sent only %d/%d to host 0", hits, n)
	}
}

func TestRunProducesStats(t *testing.T) {
	nw := fabric(t, 16)
	res, err := Run(nw, Neighbor, RunOptions{MessageBytes: 8192, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 16*3 {
		t.Fatalf("messages = %d, want 48", res.Messages)
	}
	if res.MeanLatSec <= 0 || res.MaxLatSec < res.P99LatSec || res.P99LatSec < res.MeanLatSec*0.5 {
		t.Fatalf("implausible stats: %+v", res)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("missing aggregate stats: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestNeighborFasterThanShift(t *testing.T) {
	// On a ring fabric, neighbour traffic is strictly more local than
	// half-shift traffic.
	g, err := hsgraph.Ring(16, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := RunOptions{MessageBytes: 1 << 16, Rounds: 2}
	near, err := Run(nw, Neighbor, o)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Run(nw, Shift, o)
	if err != nil {
		t.Fatal(err)
	}
	if near.MeanLatSec >= far.MeanLatSec {
		t.Fatalf("neighbour latency %v not below shift latency %v on a ring", near.MeanLatSec, far.MeanLatSec)
	}
}

func TestSweepAllPatterns(t *testing.T) {
	nw := fabric(t, 16)
	results, err := Sweep(nw, All(1), RunOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Pattern == "" || (r.Messages > 0 && r.MeanLatSec <= 0) {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	nw := fabric(t, 16)
	a, err := Run(nw, Uniform(9), RunOptions{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nw, Uniform(9), RunOptions{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatSec != b.MeanLatSec || a.Elapsed != b.Elapsed {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestHostSubset(t *testing.T) {
	nw := fabric(t, 16)
	res, err := Run(nw, Neighbor, RunOptions{Rounds: 1, Hosts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 8 || res.Messages != 8 {
		t.Fatalf("subset run wrong: %+v", res)
	}
}

func TestProposedBeatsPathUnderUniform(t *testing.T) {
	// A path of switches has terrible uniform latency compared to a
	// saturated random graph with the same port budget — the core premise
	// of low-h-ASPL design, visible at the traffic level.
	path, err := hsgraph.Path(24, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	better, err := hsgraph.RandomConnected(24, 12, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	o := RunOptions{Rounds: 2}
	lp := mustRun(t, path, o)
	lb := mustRun(t, better, o)
	if lb.MeanLatSec >= lp.MeanLatSec {
		t.Fatalf("random graph latency %v not below path latency %v", lb.MeanLatSec, lp.MeanLatSec)
	}
	if math.IsNaN(lb.MeanLatSec) {
		t.Fatal("NaN latency")
	}
}

func mustRun(t *testing.T, g *hsgraph.Graph, o RunOptions) Result {
	t.Helper()
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Uniform(5), o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPacketModeRun(t *testing.T) {
	nw := fabric(t, 16)
	fluid, err := Run(nw, Transpose, RunOptions{MessageBytes: 65536, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	packet, err := Run(nw, Transpose, RunOptions{MessageBytes: 65536, Rounds: 2, Packet: true})
	if err != nil {
		t.Fatal(err)
	}
	if packet.Messages != fluid.Messages {
		t.Fatalf("message counts differ: %d vs %d", packet.Messages, fluid.Messages)
	}
	if packet.MeanLatSec < fluid.MeanLatSec/4 || packet.MeanLatSec > fluid.MeanLatSec*4 {
		t.Fatalf("fidelity levels diverge: %v vs %v", fluid.MeanLatSec, packet.MeanLatSec)
	}
}
