package hsgraph

// Order-preserving binary snapshot of a Graph's internal representation.
//
// The canonical text format (Write/Read) identifies graphs up to
// isomorphism of their storage: it forgets the history-dependent order of
// the edge list, the adjacency lists and the per-switch host lists. That
// order is observable — the annealer's move sampler indexes edges by
// position, scans neighbour lists from a random offset, and picks the
// first host on a switch — so a checkpoint restored through the text
// format would silently fork the RNG-driven move stream. MarshalState and
// UnmarshalState round-trip the exact storage instead.

import (
	"fmt"

	"repro/internal/ckpt"
)

// MarshalState encodes g's exact internal representation, including every
// ordering the text format discards. UnmarshalState(g.MarshalState())
// yields a graph indistinguishable from g to any order-sensitive
// traversal.
func (g *Graph) MarshalState() []byte {
	var e ckpt.Enc
	e.Int(g.n)
	e.Int(len(g.adj))
	e.Int(g.r)
	e.Int(len(g.edges))
	for _, ed := range g.edges {
		e.Int(int(ed[0]))
		e.Int(int(ed[1]))
	}
	for _, ns := range g.adj {
		e.Int(len(ns))
		for _, v := range ns {
			e.Int(int(v))
		}
	}
	for _, hs := range g.hostsAt {
		e.Int(len(hs))
		for _, h := range hs {
			e.Int(int(h))
		}
	}
	return e.Finish()
}

// UnmarshalState reconstructs a graph from MarshalState output. Corrupt
// or inconsistent input yields an error, never a panic and never a graph
// that violates the package invariants: the result always passes
// Validate (which is run before returning).
func UnmarshalState(data []byte) (*Graph, error) {
	d := ckpt.NewDec(data)
	n, m, r := d.Int(), d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("hsgraph: state: %w", err)
	}
	if n < 1 || m < 1 || r < 1 || n > MaxReadDim || m > MaxReadDim || r > MaxReadDim {
		return nil, fmt.Errorf("hsgraph: state: header n=%d m=%d r=%d out of range", n, m, r)
	}
	g := New(n, m, r)

	ne := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("hsgraph: state: %w", err)
	}
	if ne < 0 || ne > m*r/2 {
		return nil, fmt.Errorf("hsgraph: state: %d edges exceed capacity of %d switches at radix %d", ne, m, r)
	}
	g.edges = make([][2]int32, 0, ne)
	for i := 0; i < ne; i++ {
		a, b := d.Int(), d.Int()
		if d.Err() != nil {
			break // Done() below reports the decode error
		}
		// Connect stores keys with a < b; anything else is corruption.
		if a < 0 || b >= m || a >= b {
			return nil, fmt.Errorf("hsgraph: state: edge %d is invalid pair {%d,%d}", i, a, b)
		}
		key := [2]int32{int32(a), int32(b)}
		if _, dup := g.posInList[key]; dup {
			return nil, fmt.Errorf("hsgraph: state: duplicate edge {%d,%d}", a, b)
		}
		g.posInList[key] = int32(len(g.edges))
		g.edges = append(g.edges, key)
	}

	adjTotal := 0
	for s := 0; s < m && d.Err() == nil; s++ {
		k := d.Int()
		if d.Err() != nil {
			break
		}
		if k < 0 || k > r {
			return nil, fmt.Errorf("hsgraph: state: switch %d has %d neighbours at radix %d", s, k, r)
		}
		if k == 0 {
			continue
		}
		list := make([]int32, 0, k)
		for j := 0; j < k; j++ {
			v := d.Int()
			if v < 0 || v >= m {
				if d.Err() != nil {
					break
				}
				return nil, fmt.Errorf("hsgraph: state: switch %d neighbour %d out of range", s, v)
			}
			list = append(list, int32(v))
		}
		g.adj[s] = list
		adjTotal += k
	}

	for s := 0; s < m && d.Err() == nil; s++ {
		k := d.Int()
		if d.Err() != nil {
			break
		}
		if k < 0 || k > r {
			return nil, fmt.Errorf("hsgraph: state: switch %d claims %d hosts at radix %d", s, k, r)
		}
		for j := 0; j < k; j++ {
			h := d.Int()
			if h < 0 || h >= n {
				if d.Err() != nil {
					break
				}
				return nil, fmt.Errorf("hsgraph: state: host %d out of range on switch %d", h, s)
			}
			if g.hostOf[h] != -1 {
				return nil, fmt.Errorf("hsgraph: state: host %d attached twice", h)
			}
			g.hostOf[h] = int32(s)
			g.hostPos[h] = int32(j)
			g.hostsAt[s] = append(g.hostsAt[s], int32(h))
		}
		g.hosts[s] = int32(k)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("hsgraph: state: %w", err)
	}
	if adjTotal != 2*len(g.edges) {
		return nil, fmt.Errorf("hsgraph: state: adjacency lists carry %d entries for %d edges", adjTotal, len(g.edges))
	}
	// Validate closes the remaining gaps: adjacency symmetric with the
	// edge set, degrees within radix, every host attached, connectivity.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("hsgraph: state: %w", err)
	}
	return g, nil
}
