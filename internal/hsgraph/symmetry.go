package hsgraph

import "fmt"

// This file implements the orbit-quotient side of the evaluation story:
// graphs closed under a cyclic group action evaluate with one bit-parallel
// BFS per source *orbit* instead of one per host-bearing switch.
//
// The group action of order sym on m switches (sym | m) is the cyclic
// shift σ(s) = (s + m/sym) mod m. Every switch orbit {s, σ(s), σ²(s), …}
// has exactly sym elements (j·(m/sym) ≡ 0 mod m only when sym | j), and
// the representatives are the switches in [0, m/sym). A graph is
// sym-symmetric when host counts are constant on every orbit and the edge
// set maps to itself under σ. Then d(σ(s), σ(t)) = d(s, t), so the row
// aggregates of a source equal those of its representative and the full
// ordered path sum is exactly sym times the representative sum — no
// approximation, bit-identical integer arithmetic.

// VerifySymmetric checks that g is closed under the cyclic group action
// σ(s) = (s + m/sym) mod m of order sym: the switch count must be a
// positive multiple of sym, host counts must be constant on every switch
// orbit, and every edge's image must be an edge. sym <= 1 is trivially
// satisfied. The check is O(m + edges).
func VerifySymmetric(g *Graph, sym int) error {
	if sym <= 1 {
		return nil
	}
	m := len(g.adj)
	if m == 0 || m%sym != 0 {
		return fmt.Errorf("hsgraph: switch count %d is not a positive multiple of symmetry %d", m, sym)
	}
	q := m / sym
	for s := 0; s < m; s++ {
		img := (s + q) % m
		if g.hosts[s] != g.hosts[img] {
			return fmt.Errorf("hsgraph: host counts break the order-%d symmetry: switch %d carries %d hosts but its image %d carries %d",
				sym, s, g.hosts[s], img, g.hosts[img])
		}
	}
	for i := 0; i < len(g.edges); i++ {
		a, b := g.Edge(i)
		if !g.HasEdge((a+q)%m, (b+q)%m) {
			return fmt.Errorf("hsgraph: edge {%d,%d} breaks the order-%d symmetry: image {%d,%d} is absent",
				a, b, sym, (a+q)%m, (b+q)%m)
		}
	}
	return nil
}

// OrbitEvaluator evaluates sym-symmetric graphs by sweeping one
// bit-parallel BFS per host-bearing switch *orbit* and scaling the
// per-representative aggregates by the orbit size — ~sym× fewer sweeps
// than the generic Evaluator for bit-identical results. It wraps an
// Evaluator, sharing its worker pool, scratch buffers and shard merge, so
// the steady state stays allocation-free.
//
// Every call verifies the symmetry first and returns an error for inputs
// that break it: a quotient sweep of an asymmetric graph would silently
// mis-evaluate, so the contract is fail-loud. Like Evaluator, an
// OrbitEvaluator is not safe for concurrent use.
type OrbitEvaluator struct {
	ev  *Evaluator
	sym int
}

// NewOrbitEvaluator returns an OrbitEvaluator for graphs closed under a
// cyclic action of order sym, with the given shard worker count (values
// below 1 mean 1, as in NewEvaluator). sym values below 2 degrade to the
// generic single-orbit case and are accepted for uniformity.
func NewOrbitEvaluator(workers, sym int) *OrbitEvaluator {
	if sym < 1 {
		sym = 1
	}
	return &OrbitEvaluator{ev: NewEvaluator(workers), sym: sym}
}

// Workers returns the configured shard worker count.
func (oe *OrbitEvaluator) Workers() int { return oe.ev.Workers() }

// Symmetry returns the group order the evaluator quotients by.
func (oe *OrbitEvaluator) Symmetry() int { return oe.sym }

// Close releases the underlying pool goroutines. Idempotent.
func (oe *OrbitEvaluator) Close() { oe.ev.Close() }

// gather verifies the symmetry, collects the host-bearing orbit
// representatives into the wrapped evaluator's source list and returns
// the intra-switch contribution plus the total host-bearing switch count.
func (oe *OrbitEvaluator) gather(g *Graph) (total, pairs int64, diam, bearing int, allAttached bool, err error) {
	if err = VerifySymmetric(g, oe.sym); err != nil {
		return 0, 0, 0, 0, false, err
	}
	e := oe.ev
	e.srcs = e.srcs[:0]
	m := len(g.adj)
	q := m / oe.sym
	var attached int64
	for s := 0; s < m; s++ {
		k := int64(g.hosts[s])
		if k == 0 {
			continue
		}
		bearing++
		attached += k
		total += k * (k - 1) // 2 * C(k,2)
		pairs += k * (k - 1) / 2
		if k >= 2 && diam < 2 {
			diam = 2
		}
		if s < q {
			e.srcs = append(e.srcs, int32(s))
		}
	}
	return total, pairs, diam, bearing, attached == int64(g.n), nil
}

// Evaluate computes exactly Graph.Evaluate's Metrics (including the
// partial TotalPath of disconnected graphs) from representative sweeps
// only. It returns an error when g is not sym-symmetric.
func (oe *OrbitEvaluator) Evaluate(g *Graph) (Metrics, error) {
	total, pairs, diam, bearing, allAttached, err := oe.gather(g)
	if err != nil {
		return Metrics{}, err
	}
	if bearing == 0 {
		return g.finishMetrics(0, 0, 0, allAttached && g.n <= 1), nil
	}
	if bearing == 1 {
		return g.finishMetrics(total, pairs, diam, allAttached), nil
	}
	sym := int64(oe.sym)
	orderedSum, reach, orderedWeighted, sweepDiam := oe.ev.runSweep(g)
	if sweepDiam > diam {
		diam = sweepDiam
	}
	// Orbit images contribute row aggregates identical to their
	// representative's, so the full ordered sums are sym times the
	// representative sums; connectivity compares the scaled ordered
	// reachable pair count against bearing·(bearing−1).
	connected := sym*reach == int64(bearing)*int64(bearing-1) && allAttached
	total += sym * orderedSum / 2
	pairs += sym * orderedWeighted / 2
	return g.finishMetrics(total, pairs, diam, connected), nil
}

// Energy is the hot-path variant: total host-pair path length plus a
// connectivity verdict, with a single serial BFS failing disconnecting
// inputs in O(edges) before any sweep. It returns an error when g is not
// sym-symmetric.
func (oe *OrbitEvaluator) Energy(g *Graph) (int64, bool, error) {
	total, _, _, bearing, allAttached, err := oe.gather(g)
	if err != nil {
		return 0, false, err
	}
	if bearing == 0 {
		return 0, allAttached && g.n <= 1, nil
	}
	if bearing == 1 {
		return total, allAttached, nil
	}
	if !allAttached || !oe.ev.connectedQuick(g, bearing) {
		return 0, false, nil
	}
	sym := int64(oe.sym)
	orderedSum, reach, _, _ := oe.ev.runSweep(g)
	connected := sym*reach == int64(bearing)*int64(bearing-1)
	return total + sym*orderedSum/2, connected, nil
}
