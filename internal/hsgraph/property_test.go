package hsgraph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestPropertyMutationSequences drives a graph through a random sequence
// of mutations (connect, disconnect, move host) decoded from raw bytes
// and checks that the structural invariants hold after every step. This
// is the repository's core data structure; the property is that no legal
// operation sequence can corrupt it.
func TestPropertyMutationSequences(t *testing.T) {
	check := func(seed uint64, ops []byte) bool {
		rnd := rng.New(seed)
		g, err := RandomConnected(18, 6, 6, rnd)
		if err != nil {
			return false
		}
		for _, op := range ops {
			a := rnd.Intn(6)
			b := rnd.Intn(6)
			h := rnd.Intn(18)
			switch op % 3 {
			case 0:
				// Connect may legitimately fail; failure must not mutate.
				before := g.Clone()
				if err := g.Connect(a, b); err != nil {
					if !Equal(g, before) {
						return false
					}
				}
			case 1:
				before := g.Clone()
				if err := g.Disconnect(a, b); err != nil {
					if !Equal(g, before) {
						return false
					}
				}
			case 2:
				before := g.Clone()
				if err := g.MoveHost(h, b); err != nil {
					if !Equal(g, before) {
						return false
					}
				}
			}
			// Structural invariants that must hold regardless of
			// connectivity: run Validate but accept ErrNotConnected.
			if err := g.Validate(); err != nil && err != ErrNotConnected {
				t.Logf("invariant broken after op %d: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(55))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEvaluateAgreement: the bit-parallel and reference
// evaluators agree on arbitrary random instances.
func TestPropertyEvaluateAgreement(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw, rRaw uint8) bool {
		n := 4 + int(nRaw)%80
		m := 2 + int(mRaw)%14
		r := 4 + int(rRaw)%10
		if !Feasible(n, m, r) {
			return true
		}
		g, err := RandomConnected(n, m, r, rng.New(seed))
		if err != nil {
			return false
		}
		fast, slow := g.Evaluate(), g.EvaluateSlow()
		return fast.TotalPath == slow.TotalPath &&
			fast.Diameter == slow.Diameter &&
			fast.Connected == slow.Connected
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(66))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySerializationRoundTrip: Write/Read is the identity on
// arbitrary random instances.
func TestPropertySerializationRoundTrip(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := 4 + int(nRaw)%40
		m := 2 + int(mRaw)%10
		r := 8
		if !Feasible(n, m, r) {
			return true
		}
		g, err := RandomConnected(n, m, r, rng.New(seed))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return Equal(g, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDiameterBoundsHASPL: for every graph, h-ASPL <= diameter
// and both are at least 2 when n >= 2.
func TestPropertyDiameterBoundsHASPL(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := 4 + int(nRaw)%60
		m := 2 + int(mRaw)%12
		r := 8
		if !Feasible(n, m, r) {
			return true
		}
		g, err := RandomConnected(n, m, r, rng.New(seed))
		if err != nil {
			return false
		}
		met := g.Evaluate()
		if !met.Connected {
			return false
		}
		return met.HASPL >= 2 && met.Diameter >= 2 && met.HASPL <= float64(met.Diameter)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(88))}); err != nil {
		t.Fatal(err)
	}
}
