package hsgraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text format is line-oriented:
//
//	hsgraph <n> <m> <r>
//	host <h> <s>        (one per host, in any order)
//	link <s1> <s2>      (one per switch-switch edge)
//
// Lines starting with '#' and blank lines are ignored. The format is a
// host-switch-aware variant of the Graph Golf edge-list files.

// Write serialises g in the text format. Output is canonical: hosts in
// increasing order, links sorted lexicographically.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hsgraph %d %d %d\n", g.n, len(g.adj), g.r)
	for h := 0; h < g.n; h++ {
		fmt.Fprintf(bw, "host %d %d\n", h, g.hostOf[h])
	}
	links := append([][2]int32(nil), g.edges...)
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, e := range links {
		fmt.Fprintf(bw, "link %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// MaxReadDim caps the host and switch counts Read accepts. A one-line
// header sizes every per-host and per-switch array, so without a cap a
// hostile (or fuzzed) input of a few bytes could demand gigabytes before
// any structural check runs. 2^20 comfortably covers Graph Golf-scale
// instances (the competition tops out at 10^6 vertices).
const MaxReadDim = 1 << 20

// Read parses a graph in the text format. The returned graph has been
// structurally checked (ports, duplicates) but not connectivity-validated;
// call Validate for the full check.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "hsgraph":
			if g != nil {
				return nil, fmt.Errorf("hsgraph: line %d: duplicate header", lineNo)
			}
			var n, m, rr int
			if len(fields) != 4 {
				return nil, fmt.Errorf("hsgraph: line %d: malformed header", lineNo)
			}
			if _, err := fmt.Sscanf(line, "hsgraph %d %d %d", &n, &m, &rr); err != nil {
				return nil, fmt.Errorf("hsgraph: line %d: %v", lineNo, err)
			}
			if n < 1 || m < 1 || rr < 1 {
				return nil, fmt.Errorf("hsgraph: line %d: invalid header values n=%d m=%d r=%d", lineNo, n, m, rr)
			}
			if n > MaxReadDim || m > MaxReadDim {
				return nil, fmt.Errorf("hsgraph: line %d: header n=%d m=%d exceeds limit %d", lineNo, n, m, MaxReadDim)
			}
			g = New(n, m, rr)
		case "host":
			if g == nil {
				return nil, fmt.Errorf("hsgraph: line %d: host before header", lineNo)
			}
			var h, s int
			if _, err := fmt.Sscanf(line, "host %d %d", &h, &s); err != nil {
				return nil, fmt.Errorf("hsgraph: line %d: %v", lineNo, err)
			}
			if err := g.AttachHost(h, s); err != nil {
				return nil, fmt.Errorf("hsgraph: line %d: %v", lineNo, err)
			}
		case "link":
			if g == nil {
				return nil, fmt.Errorf("hsgraph: line %d: link before header", lineNo)
			}
			var a, b int
			if _, err := fmt.Sscanf(line, "link %d %d", &a, &b); err != nil {
				return nil, fmt.Errorf("hsgraph: line %d: %v", lineNo, err)
			}
			if err := g.Connect(a, b); err != nil {
				return nil, fmt.Errorf("hsgraph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("hsgraph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("hsgraph: empty input")
	}
	return g, nil
}

// Equal reports whether two graphs are identical as labelled graphs:
// same parameters, same host attachments, same edge set.
func Equal(a, b *Graph) bool {
	if a.n != b.n || a.r != b.r || len(a.adj) != len(b.adj) || len(a.edges) != len(b.edges) {
		return false
	}
	for h := 0; h < a.n; h++ {
		if a.hostOf[h] != b.hostOf[h] {
			return false
		}
	}
	for k := range a.posInList {
		if _, ok := b.posInList[k]; !ok {
			return false
		}
	}
	return true
}
