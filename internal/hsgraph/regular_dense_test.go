package hsgraph

import (
	"testing"

	"repro/internal/rng"
)

func TestRandomRegularDense(t *testing.T) {
	// Dense cases where stub matching alone would essentially never
	// succeed; the circulant fallback must cover them.
	cases := []struct{ n, m, r, k int }{
		{128, 32, 12, 8},
		{128, 64, 12, 10},
		{1024, 256, 24, 20},
		{60, 20, 10, 7}, // odd k, even m
	}
	for _, c := range cases {
		g, err := RandomRegular(c.n, c.m, c.r, c.k, rng.New(9))
		if err != nil {
			t.Fatalf("RandomRegular(%+v): %v", c, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		for s := 0; s < c.m; s++ {
			if g.SwitchDegree(s) != c.k {
				t.Fatalf("%+v: switch %d degree %d", c, s, g.SwitchDegree(s))
			}
		}
	}
}
