package hsgraph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// IncrementalEvaluator computes the same metrics as Evaluator but caches
// the full per-source BFS state of the last graph it evaluated, so that a
// re-evaluation after a local mutation (an annealing swap or swing touches
// 1-2 edges) re-sweeps only the sources whose BFS trees can have changed.
//
// The evaluator arms the graph's edge-mutation log; between evaluations it
// derives the net edge diff from the log, compares the cached host counts
// against the graph's, and flags a source s dirty when
//
//   - a net-removed edge {a,b} was tight from s (|d_s(a)-d_s(b)| == 1 —
//     the necessary condition for the edge to lie on any shortest path
//     out of s) and the far endpoint has no alternate shortest
//     predecessor surviving in both the cached and the current graph, or
//   - a net-added edge {a,b} was slack from s (|d_s(a)-d_s(b)| >= 2, the
//     necessary condition for the edge to create a shorter path), or
//     joins s's component to switches s could not reach.
//
// Net diffing makes rollbacks free: a rejected move's undo cancels the
// move's own entries, so the next sync sees an empty diff and touches
// nothing. Only the flagged rows are re-swept (bit-parallel, 64 sources
// per word, sharded over workers when the dirty set is large); host-count
// changes adjust the unflagged rows' cached aggregates in O(m) without any
// BFS. When the dirty set exceeds fallbackNum/fallbackDen of the sources,
// a full rebuild is cheaper and runs instead. Every cached quantity is an
// integer derived per row, so results are bit-identical to Evaluator's for
// every worker count and every mutation history.
//
// An IncrementalEvaluator is not safe for concurrent use, and at most one
// may be attached to a graph at a time (attaching a second one invalidates
// the first, which then falls back to a full rebuild). Memory cost is one
// m x m distance matrix of int16, so m is capped at MaxIncrementalSwitches.
//
// Orbit mode (NewOrbitIncrementalEvaluator with sym >= 2) caches and
// sweeps only the m/sym orbit-representative rows of a sym-symmetric
// graph and scales the fold-up by the orbit size, for bit-identical
// results at ~sym× less sweep work. The attached graph must stay in the
// symmetric subspace: attach verifies the whole graph, every sync/peek
// verifies the pending mutations, and a violation panics — a quotient
// evaluation of an asymmetric graph would silently mis-evaluate, so the
// contract is fail-loud (use opt's symmetric move operators, which cannot
// leave the subspace).
type IncrementalEvaluator struct {
	workers int
	sym     int // symmetry order; 1 = generic mode
	q       int // representative rows cached: m/sym (== m when sym == 1)

	g      *Graph
	epoch  uint64  // g.opEpoch this evaluator armed
	m      int     // switch count of the cached graph
	dist   []int16 // m*m distance matrix, row-major; -1 = unreachable
	rowSum []int64 // rowSum[s]  = sum over reachable t!=s of k_t*(d(s,t)+2)
	rowW   []int64 // rowW[s]    = sum over reachable t!=s of k_t
	rowRch []int64 // rowRch[s]  = #{t != s : k_t > 0, reachable}
	hosts  []int32 // cached host counts at last sync
	valid  bool

	// Sync scratch, reused across calls.
	netKeys   [][2]int32 // net edge diff keys (insertion order)
	netDelta  []int32    // +1 net-added, -1 net-removed, 0 cancelled
	dirty     []int32
	dirtyAt   []uint32 // dirtyAt[s] == dirtyGen marks s dirty
	dirtyGen  uint32
	seen      []int32 // connectivity pre-check visit marks
	queue     []int32
	sweep     []sweepScratch // per-worker bit-BFS scratch
	cursor    atomic.Int64
	sampleD   []float64  // per-sample deltas for EstimateDelta
	sampleIx  []int32    // sampled dirty sources
	keys      []dirtyKey // active net-diff keys, hoisted for the fused scan
	negRow    []int16    // all -1, the row-prefill template
	scratchF  []float64  // sampleBatchDeltas result scratch
	scratchR  []int64    // sampleBatchDeltas reach scratch
	peekSum   []int64    // PeekEnergy per-source aggregates (dirty entries only)
	peekW     []int64
	peekRch   []int64
	hostDelta []int32 // switches with pending host-count changes (peek scratch)

	// Stored-peek state: a peek sweep that fits the row budget keeps the
	// candidate distance rows, so committing the very same pending state
	// (an accepted move) copies them into the cache instead of re-sweeping.
	peekRows  []int16  // candidate rows, slot-major in peekList order
	peekList  []int32  // sources with stored rows, in sweep order
	peekHosts []int32  // host counts at stamp time
	peekOps   []edgeOp // compacted op log at stamp time
	peekValid bool     // stored peek matches the pending state
	peekStore bool     // the in-flight peek sweep stores rows

	stats IncStats
}

// IncStats counts the incremental evaluator's internal decisions since it
// was created — the introspection feed of the evaluation-ladder telemetry
// (opt.AnnealSample.Eval, orpd's ladder instruments). All counters are
// cumulative; consumers diff successive snapshots for rates. Reads are
// only consistent from the goroutine driving the evaluator (which is the
// evaluator's general concurrency contract anyway).
type IncStats struct {
	// Syncs counts cache commits that had pending work (an op log or a
	// host-count change); no-op syncs after a clean rollback are free and
	// uncounted.
	Syncs int64
	// FullRebuilds counts commits that fell back to rebuilding every row
	// because more than fallbackNum/fallbackDen of the sources were dirty.
	FullRebuilds int64
	// StoredPeekReuses counts commits satisfied by copying the stored
	// peek rows instead of re-sweeping (an accepted move whose peek
	// already swept the exact pending state).
	StoredPeekReuses int64
	// DirtySources accumulates the dirty-set sizes seen at commits;
	// DirtySources/float64(Syncs*m) is the mean dirty-source fraction.
	DirtySources int64
	// SweptSources accumulates rows actually swept into the cache,
	// including attach/rebuild sweeps — the work the cache could not
	// avoid.
	SweptSources int64
	// Peeks counts PeekEnergy sweeps answered from scratch space.
	Peeks int64
	// Estimates counts EstimateDelta calls; ExactEstimates the subset
	// whose sample covered every dirty source (bounds collapsed to the
	// exact delta).
	Estimates      int64
	ExactEstimates int64
	// PeekStoreSkips counts peek sweeps whose dirty set exceeded
	// MaxPeekRowEntries, so no candidate rows were stored and the commit
	// of an accepted move had to re-sweep. Results are unaffected — this
	// is the one silent performance downgrade in the evaluator, surfaced
	// here so CLIs can warn about it.
	PeekStoreSkips int64
}

// Stats returns the evaluator's cumulative decision counters.
func (ie *IncrementalEvaluator) Stats() IncStats { return ie.stats }

type sweepScratch struct {
	visited, front, next []uint64
	_                    [16]byte
}

// MaxIncrementalSwitches bounds the cached distance matrix (int16
// distances, m^2 entries). 20000 switches cost ~800 MB; beyond that the
// incremental cache is the wrong tool and the constructor-free fallback
// (plain Evaluator) should be used. Exported so callers selecting an
// evaluation mode can refuse oversized instances up front instead of
// hitting the attach-time panic.
const MaxIncrementalSwitches = 20000

// Fallback threshold: when more than fallbackNum/fallbackDen of all
// sources are dirty, a full rebuild re-sweeps everything in one pass
// instead of patching rows (the batched sweep is then strictly cheaper).
const (
	fallbackNum = 3
	fallbackDen = 4
)

// minExtrapolateSample is the smallest sample EstimateDelta extrapolates
// from. Below it the empirical range badly underestimates the per-source
// delta spread and the Hoeffding-style half-width loses its nominal
// coverage, so smaller maxSample requests are rounded up (the sample
// still fits one 64-lane batch).
const minExtrapolateSample = 16

// MaxPeekRowEntries bounds the stored-peek row buffer (int16 entries, so
// 8M entries = 16 MiB). Peeks whose dirty set would exceed it still
// compute exact aggregates — the commit just re-sweeps as before, and
// IncStats.PeekStoreSkips counts the skips.
const MaxPeekRowEntries = 8 << 20

// NewIncrementalEvaluator returns an evaluator with the given number of
// sweep workers (values below 1 mean 1). Workers only affect throughput,
// never results.
func NewIncrementalEvaluator(workers int) *IncrementalEvaluator {
	return NewOrbitIncrementalEvaluator(workers, 1)
}

// NewOrbitIncrementalEvaluator returns an evaluator in orbit mode: it is
// restricted to graphs closed under the cyclic group action of order sym
// (see VerifySymmetric) and caches only the orbit-representative distance
// rows, ~sym× less sweep work and memory for the same bit-identical
// results. sym values below 2 mean the generic evaluator. Mutating the
// attached graph out of the symmetric subspace panics at the next
// sync/peek (see the type comment).
func NewOrbitIncrementalEvaluator(workers, sym int) *IncrementalEvaluator {
	if workers < 1 {
		workers = 1
	}
	if sym < 1 {
		sym = 1
	}
	return &IncrementalEvaluator{
		workers: workers,
		sym:     sym,
		sweep:   make([]sweepScratch, workers),
	}
}

// Workers returns the configured sweep worker count.
func (ie *IncrementalEvaluator) Workers() int { return ie.workers }

// Symmetry returns the group order the evaluator quotients by (1 in
// generic mode).
func (ie *IncrementalEvaluator) Symmetry() int { return ie.sym }

// row returns the cached distance row of source s.
func (ie *IncrementalEvaluator) row(s int) []int16 {
	return ie.dist[s*ie.m : (s+1)*ie.m]
}

// attach arms the op log on g and rebuilds the full cache.
func (ie *IncrementalEvaluator) attach(g *Graph) {
	m := len(g.adj)
	if m > MaxIncrementalSwitches {
		panic(fmt.Sprintf("hsgraph: IncrementalEvaluator supports at most %d switches, got %d", MaxIncrementalSwitches, m))
	}
	if ie.sym > 1 {
		if err := VerifySymmetric(g, ie.sym); err != nil {
			panic("hsgraph: orbit-mode IncrementalEvaluator attached to an asymmetric graph: " + err.Error())
		}
	}
	ie.g = g
	ie.epoch = g.startOpLog()
	ie.m = m
	ie.q = m / ie.sym
	q := ie.q
	if cap(ie.dist) < q*m {
		ie.dist = make([]int16, q*m)
	}
	ie.dist = ie.dist[:q*m]
	ie.rowSum = growI64(ie.rowSum, q)
	ie.rowW = growI64(ie.rowW, q)
	ie.rowRch = growI64(ie.rowRch, q)
	ie.peekSum = growI64(ie.peekSum, q)
	ie.peekW = growI64(ie.peekW, q)
	ie.peekRch = growI64(ie.peekRch, q)
	ie.hosts = append(ie.hosts[:0], g.hosts...)
	if cap(ie.dirtyAt) < q {
		ie.dirtyAt = make([]uint32, q)
		ie.dirtyGen = 0
	}
	ie.dirtyAt = ie.dirtyAt[:q]
	if cap(ie.negRow) < m {
		ie.negRow = make([]int16, m)
		for i := range ie.negRow {
			ie.negRow[i] = -1
		}
	}
	ie.negRow = ie.negRow[:m]
	ie.peekValid = false
	ie.rebuildAll()
	ie.valid = true
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// synced reports whether the cache tracks g's current op-log stream.
func (ie *IncrementalEvaluator) synced(g *Graph) bool {
	return ie.valid && ie.g == g && g.opLogOn && g.opEpoch == ie.epoch &&
		!g.opOverflow && ie.m == len(g.adj)
}

// sync brings the cache up to date with g, consuming the pending op log.
func (ie *IncrementalEvaluator) sync(g *Graph) {
	if !ie.synced(g) {
		ie.attach(g)
		return
	}
	if len(g.oplog) == 0 && !ie.hostsChanged(g) {
		return
	}
	ie.stats.Syncs++
	if ie.peekApplicable(g) {
		// The stamped peek already swept exactly this pending state: the
		// op log and host counts match the stamp and the current dirty set
		// is the stamped list, so netDiff and markDirty would only
		// recompute what the estimate already derived. Commit the stored
		// rows directly.
		ie.stats.StoredPeekReuses++
		ie.stats.DirtySources += int64(len(ie.peekList))
		ie.peekValid = false
		g.oplog = g.oplog[:0]
		ie.applyPeek()
		ie.patchHostDeltas(g)
		ie.hosts = append(ie.hosts[:0], g.hosts...)
		return
	}
	ie.netDiff(g.oplog)
	ie.checkSymmetryPending(g)
	ie.markDirty()
	usePeek := ie.peekApplicable(g)
	ie.peekValid = false
	g.oplog = g.oplog[:0]
	ie.stats.DirtySources += int64(len(ie.dirty))
	if len(ie.dirty)*fallbackDen > ie.q*fallbackNum {
		ie.stats.FullRebuilds++
		ie.hosts = append(ie.hosts[:0], g.hosts...)
		ie.rebuildAll()
		return
	}
	if usePeek {
		ie.stats.StoredPeekReuses++
		ie.applyPeek()
	} else {
		ie.stats.SweptSources += int64(len(ie.dirty))
		ie.resweep(ie.dirty)
	}
	ie.patchHostDeltas(g)
	ie.hosts = append(ie.hosts[:0], g.hosts...)
}

// patchHostDeltas folds host-count changes into the rows that were not
// re-swept: for those rows the cached distances are exactly the current
// ones, so moving delta hosts on switch b shifts rowSum by delta*(d(s,b)+2)
// and rowW by delta, and a 0 <-> >0 transition of k_b shifts rowRch by one.
// Re-swept rows (dirtyAt at the current generation) already aggregated
// against the current host counts. In orbit mode only the representative
// rows exist; b still ranges over all switches, since a representative's
// row aggregates every target.
func (ie *IncrementalEvaluator) patchHostDeltas(g *Graph) {
	for b := 0; b < ie.m; b++ {
		delta := int64(g.hosts[b] - ie.hosts[b])
		if delta == 0 {
			continue
		}
		wasBearing, isBearing := ie.hosts[b] > 0, g.hosts[b] > 0
		for s := 0; s < ie.q; s++ {
			if s == b || ie.dirtyAt[s] == ie.dirtyGen {
				continue
			}
			d := ie.row(s)[b]
			if d < 0 {
				continue
			}
			ie.rowSum[s] += delta * int64(d+2)
			ie.rowW[s] += delta
			if wasBearing != isBearing {
				if isBearing {
					ie.rowRch[s]++
				} else {
					ie.rowRch[s]--
				}
			}
		}
	}
}

// checkSymmetryPending verifies, in orbit mode, that the pending
// mutations keep the graph inside the symmetric subspace: host counts
// must stay constant on every orbit and the net edge diff must be closed
// under the group action with matching deltas (each changed edge changes
// together with its sym-1 images, in the same direction). Requires
// ie.netDiff to have just run on g.oplog. A violation panics: the
// quotient cache cannot represent the asymmetric graph, and evaluating it
// anyway would silently return wrong energies.
func (ie *IncrementalEvaluator) checkSymmetryPending(g *Graph) {
	if ie.sym <= 1 {
		return
	}
	m, q := int32(ie.m), int32(ie.q)
	for s := int32(0); s < m; s++ {
		img := (s + q) % m
		if g.hosts[s] != g.hosts[img] {
			panic(fmt.Sprintf("hsgraph: orbit-mode IncrementalEvaluator: host move broke the order-%d symmetry: switch %d carries %d hosts but its image %d carries %d",
				ie.sym, s, g.hosts[s], img, g.hosts[img]))
		}
	}
	for i, key := range ie.netKeys {
		if ie.netDelta[i] == 0 {
			continue
		}
		img := edgeKey((key[0]+q)%m, (key[1]+q)%m)
		found := false
		for j, k2 := range ie.netKeys {
			if k2 == img {
				found = ie.netDelta[j] == ie.netDelta[i]
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("hsgraph: orbit-mode IncrementalEvaluator: edge mutation broke the order-%d symmetry: net change %+d on {%d,%d} has no matching change on its image {%d,%d}",
				ie.sym, ie.netDelta[i], key[0], key[1], img[0], img[1]))
		}
	}
}

// hostsChanged reports whether g's host counts differ from the cache.
func (ie *IncrementalEvaluator) hostsChanged(g *Graph) bool {
	for s, k := range g.hosts {
		if ie.hosts[s] != k {
			return true
		}
	}
	return false
}

// netDiff reduces the pending op log to the net edge diff: edges whose
// add/remove counts do not cancel. Intermediate states are irrelevant —
// the cache only ever compares its own snapshot against the final graph —
// so a rejected move's do/undo pairs vanish here.
func (ie *IncrementalEvaluator) netDiff(ops []edgeOp) {
	ie.netKeys = ie.netKeys[:0]
	ie.netDelta = ie.netDelta[:0]
	for _, op := range ops {
		key := [2]int32{op.a, op.b}
		found := -1
		for i, k := range ie.netKeys {
			if k == key {
				found = i
				break
			}
		}
		if found < 0 {
			found = len(ie.netKeys)
			ie.netKeys = append(ie.netKeys, key)
			ie.netDelta = append(ie.netDelta, 0)
		}
		if op.add {
			ie.netDelta[found]++
		} else {
			ie.netDelta[found]--
		}
	}
}

// compactOpLog rewrites the pending op log to its net diff (one entry per
// surviving edge change). Rejected moves append do/undo pairs that only a
// commit would clear; peeks between commits compact them away so repeated
// estimates never rescan cancelled history, and the log stays far from its
// overflow cap. Requires ie.netDiff to have just run on g.oplog.
func (ie *IncrementalEvaluator) compactOpLog(g *Graph) {
	if len(g.oplog) == len(ie.netKeys) {
		return // nothing cancelled
	}
	n := 0
	for i, k := range ie.netKeys {
		if ie.netDelta[i] == 0 {
			continue
		}
		g.oplog[n] = edgeOp{add: ie.netDelta[i] > 0, a: k[0], b: k[1]}
		n++
	}
	g.oplog = g.oplog[:n]
}

// markDirty flags every source whose cached BFS row can differ on g, given
// the net edge diff, into ie.dirty. Soundness: a source flagged by no net
// operation keeps its exact row — apply the net removals then the net
// additions in any order; each unflagging condition, evaluated against the
// cached distances, certifies that the operation leaves the row unchanged,
// so the cached distances remain valid for judging the next one.
func (ie *IncrementalEvaluator) markDirty() {
	ie.dirty = ie.dirty[:0]
	ie.dirtyGen++
	if ie.dirtyGen == 0 { // wrapped: marks are stale, reset
		for i := range ie.dirtyAt {
			ie.dirtyAt[i] = 0
		}
		ie.dirtyGen = 1
	}
	ie.keys = ie.keys[:0]
	for i, key := range ie.netKeys {
		if ie.netDelta[i] == 0 {
			continue
		}
		n := len(ie.keys)
		if n < cap(ie.keys) {
			ie.keys = ie.keys[:n+1] // reuse the element's alt-slice capacity
		} else {
			ie.keys = append(ie.keys, dirtyKey{})
		}
		k := &ie.keys[n]
		k.a, k.b = key[0], key[1]
		k.removed = ie.netDelta[i] < 0
		k.altA, k.altB = k.altA[:0], k.altB[:0]
		if k.removed {
			// Hoist the net-added edges incident to either endpoint: the
			// alternate-predecessor scan below must skip them, and they are
			// almost always absent, turning the skip into a nil check.
			for j, k2 := range ie.netKeys {
				if ie.netDelta[j] <= 0 {
					continue
				}
				switch key[0] {
				case k2[0]:
					k.altA = append(k.altA, k2[1])
				case k2[1]:
					k.altA = append(k.altA, k2[0])
				}
				switch key[1] {
				case k2[0]:
					k.altB = append(k.altB, k2[1])
				case k2[1]:
					k.altB = append(k.altB, k2[0])
				}
			}
		}
	}
	if len(ie.keys) == 0 {
		return
	}
	// One fused pass over the rows: each 800-byte-ish row is pulled into
	// cache once and tested against every active key, instead of once per
	// key. The dirty list comes out in ascending source order. In orbit
	// mode only representative rows exist (and the net diff contains every
	// image of a changed orbit edge, so a representative affected by any
	// image is flagged).
	for s := 0; s < ie.q; s++ {
		row := ie.row(s)
		for ki := range ie.keys {
			k := &ie.keys[ki]
			da, db := row[k.a], row[k.b]
			var affected bool
			switch {
			case da < 0 && db < 0:
				// Both unreachable from s: neither removing nor adding the
				// edge can touch s's component.
			case (da < 0) != (db < 0):
				// Mixed reachability: impossible for a removed (existing)
				// edge unless the cache is inconsistent; for an added edge
				// it joins a new component. Conservatively dirty.
				affected = true
			case k.removed:
				// The edge lay on a shortest path out of s only if it was
				// tight (distances differ by one, oriented near -> far). Even
				// then the row survives when far has another predecessor at
				// the same depth: every shortest path through the removed
				// edge enters far over it and can be re-routed through the
				// alternate entry at equal length. The alternate edge must
				// exist in both the cached and the current graph — a
				// neighbor in g.adj that the net diff did not add — so the
				// splice is valid against the cached distances.
				if da-db == 1 || db-da == 1 {
					far, dFar, added := k.a, da, k.altA
					if db > da {
						far, dFar, added = k.b, db, k.altB
					}
					affected = true
					if len(added) == 0 {
						for _, u := range ie.g.adj[far] {
							if row[u] == dFar-1 {
								affected = false
								break
							}
						}
					} else {
						for _, u := range ie.g.adj[far] {
							if row[u] == dFar-1 && !containsInt32(added, u) {
								affected = false
								break
							}
						}
					}
				}
			default:
				affected = da-db >= 2 || db-da >= 2
			}
			if affected {
				ie.dirtyAt[s] = ie.dirtyGen
				ie.dirty = append(ie.dirty, int32(s))
				break
			}
		}
	}
}

// dirtyKey is a net-diff entry prepared for markDirty's fused row scan.
type dirtyKey struct {
	a, b    int32
	removed bool
	altA    []int32 // net-added neighbors of a, skipped as alternates
	altB    []int32 // net-added neighbors of b
}

func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// rebuildAll re-sweeps every cached source (every switch, or every orbit
// representative in orbit mode). Rows are assigned to workers in
// 64-source batches via an atomic cursor; each row is written by exactly
// one worker and all aggregates are per-row integers, so the result does
// not depend on scheduling.
func (ie *IncrementalEvaluator) rebuildAll() {
	ie.stats.SweptSources += int64(ie.q)
	if cap(ie.queue) < ie.m {
		ie.queue = make([]int32, 0, ie.m)
	}
	all := ie.queue[:0]
	for s := 0; s < ie.q; s++ {
		all = append(all, int32(s))
	}
	ie.resweep(all)
	ie.queue = all[:0]
}

// resweep recomputes the distance rows and aggregates of the given
// sources on the current graph.
func (ie *IncrementalEvaluator) resweep(srcs []int32) {
	if len(srcs) == 0 {
		return
	}
	stride := sweepStride(len(srcs))
	batches := (len(srcs) + stride - 1) / stride
	workers := ie.workers
	if workers > batches {
		workers = batches
	}
	ie.cursor.Store(0)
	if workers <= 1 {
		ie.runBatches(&ie.sweep[0], srcs, stride)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ie.runBatches(&ie.sweep[w], srcs, stride)
		}(w)
	}
	ie.runBatches(&ie.sweep[0], srcs, stride)
	wg.Wait()
}

// sweepStride picks the lane width of a sweep: two-word 128-lane batches
// once a single 64-lane batch cannot cover the sources, halving the number
// of graph traversals for the common 65..128-source dirty sets.
func sweepStride(n int) int {
	if n > 64 {
		return 128
	}
	return 64
}

func (ie *IncrementalEvaluator) runBatches(sc *sweepScratch, srcs []int32, stride int) {
	m := ie.m
	if cap(sc.visited) < 2*m {
		sc.visited = make([]uint64, 2*m)
		sc.front = make([]uint64, 2*m)
		sc.next = make([]uint64, 2*m)
	}
	for {
		idx := int(ie.cursor.Add(1)) - 1
		lo := idx * stride
		if lo >= len(srcs) {
			return
		}
		hi := lo + stride
		if hi > len(srcs) {
			hi = len(srcs)
		}
		if hi-lo <= 64 {
			ie.sweepRows(sc, srcs[lo:hi])
		} else {
			ie.sweepRowsWide(sc, srcs[lo:hi])
		}
	}
}

// sweepRows runs one bit-parallel BFS with the batch sources in the word
// lanes, writing each source's full distance row. The row aggregates are
// accumulated per lane during the sweep — the same integer additions a
// post-hoc pass over the row would do, just without re-reading it.
func (ie *IncrementalEvaluator) sweepRows(sc *sweepScratch, batch []int32) {
	g := ie.g
	m := ie.m
	visited := sc.visited[:m]
	front := sc.front[:m]
	next := sc.next[:m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	var rows [64][]int16
	var sumKD, w, prevW, rch [64]int64
	for bit, s := range batch {
		row := ie.row(int(s))
		copy(row, ie.negRow)
		row[s] = 0
		rows[bit] = row
		visited[s] |= 1 << uint(bit)
		front[s] |= 1 << uint(bit)
	}
	for level := int16(1); ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			fv := front[v]
			if fv == 0 {
				continue
			}
			// Unconditionally OR the frontier into next: the settle pass
			// below masks off already-visited bits, so pre-filtering here
			// would only add a visited load and a branch per edge word.
			for _, u := range g.adj[v] {
				next[u] |= fv
			}
		}
		for v := 0; v < m; v++ {
			nv := next[v] &^ visited[v]
			if nv == 0 {
				next[v] = 0
				continue
			}
			next[v] = nv
			visited[v] |= nv
			active = true
			kv := int64(g.hosts[v])
			for mask := nv; mask != 0; mask &= mask - 1 {
				bit := trailingZeros(mask)
				rows[bit][v] = level
				if kv > 0 {
					w[bit] += kv
					rch[bit]++
				}
			}
		}
		if !active {
			front, next = next, front
			break
		}
		// Fold this level's newly-reached host weight into the distance
		// sum once per lane instead of once per visit: the lanes whose
		// weight moved gained exactly level * (w - prevW).
		for bit := range batch {
			if d := w[bit] - prevW[bit]; d != 0 {
				sumKD[bit] += int64(level) * d
				prevW[bit] = w[bit]
			}
		}
		front, next = next, front
	}
	for bit, s := range batch {
		ie.rowSum[s] = sumKD[bit] + 2*w[bit]
		ie.rowW[s] = w[bit]
		ie.rowRch[s] = rch[bit]
	}
}

// sweepRowsWide is sweepRows over two mask words: up to 128 sources share
// one graph traversal, with lane i of the batch living in word i>>6, bit
// i&63 of the interleaved visited/front/next arrays. Each source's row and
// aggregates come out as the identical integers sweepRows would produce.
func (ie *IncrementalEvaluator) sweepRowsWide(sc *sweepScratch, batch []int32) {
	g := ie.g
	m := ie.m
	visited := sc.visited[:2*m]
	front := sc.front[:2*m]
	next := sc.next[:2*m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	var rows [128][]int16
	var sumKD, w, prevW, rch [128]int64
	for i, s := range batch {
		row := ie.row(int(s))
		copy(row, ie.negRow)
		row[s] = 0
		rows[i] = row
		j := 2*int(s) + i>>6
		visited[j] |= 1 << uint(i&63)
		front[j] |= 1 << uint(i&63)
	}
	for level := int16(1); ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			i0 := 2 * v
			f0, f1 := front[i0], front[i0+1]
			if f0|f1 == 0 {
				continue
			}
			// Unconditional OR; the settle pass masks visited bits (see the
			// narrow variant).
			for _, u := range g.adj[v] {
				j0 := 2 * int(u)
				next[j0] |= f0
				next[j0+1] |= f1
			}
		}
		for v := 0; v < m; v++ {
			i0 := 2 * v
			nv0 := next[i0] &^ visited[i0]
			nv1 := next[i0+1] &^ visited[i0+1]
			if nv0|nv1 == 0 {
				next[i0], next[i0+1] = 0, 0
				continue
			}
			next[i0], next[i0+1] = nv0, nv1
			visited[i0] |= nv0
			visited[i0+1] |= nv1
			active = true
			kv := int64(g.hosts[v])
			for mask := nv0; mask != 0; mask &= mask - 1 {
				lane := trailingZeros(mask)
				rows[lane][v] = level
				if kv > 0 {
					w[lane] += kv
					rch[lane]++
				}
			}
			for mask := nv1; mask != 0; mask &= mask - 1 {
				lane := 64 + trailingZeros(mask)
				rows[lane][v] = level
				if kv > 0 {
					w[lane] += kv
					rch[lane]++
				}
			}
		}
		if !active {
			front, next = next, front
			break
		}
		// Per-level weight-delta fold; see sweepRows.
		for lane := range batch {
			if d := w[lane] - prevW[lane]; d != 0 {
				sumKD[lane] += int64(level) * d
				prevW[lane] = w[lane]
			}
		}
		front, next = next, front
	}
	for i, s := range batch {
		ie.rowSum[s] = sumKD[i] + 2*w[i]
		ie.rowW[s] = w[i]
		ie.rowRch[s] = rch[i]
	}
}

// gatherTotals folds the cached rows into the graph-level quantities:
// intra-switch contributions plus the ordered inter-switch sums (halved by
// the callers). Mirrors Evaluator.gather + apsp exactly. In orbit mode
// the ordered sums fold representative rows only and scale by the orbit
// size — each image source's row aggregates equal its representative's,
// so the scaled integers are bit-identical to the generic fold.
func (ie *IncrementalEvaluator) gatherTotals(g *Graph) (intraTotal, intraPairs, ordered, orderedW, orderedReach, attached int64, bearing int) {
	for s := 0; s < ie.m; s++ {
		k := int64(g.hosts[s])
		if k == 0 {
			continue
		}
		bearing++
		attached += k
		intraTotal += k * (k - 1)
		intraPairs += k * (k - 1) / 2
		if s < ie.q {
			ordered += k * ie.rowSum[s]
			orderedW += k * ie.rowW[s]
			orderedReach += ie.rowRch[s]
		}
	}
	if ie.sym > 1 {
		sym := int64(ie.sym)
		ordered *= sym
		orderedW *= sym
		orderedReach *= sym
	}
	return
}

// Energy returns the total host-pair path length and whether all hosts
// are connected — bit-identical to Evaluator.Energy, after re-sweeping
// only the dirty sources.
func (ie *IncrementalEvaluator) Energy(g *Graph) (int64, bool) {
	ie.sync(g)
	intraTotal, _, ordered, _, orderedReach, attached, bearing := ie.gatherTotals(g)
	allAttached := attached == int64(g.n)
	switch {
	case bearing == 0:
		return 0, allAttached && g.n <= 1
	case bearing == 1:
		return intraTotal, allAttached
	}
	connected := allAttached && orderedReach == int64(bearing)*int64(bearing-1)
	if !connected {
		return 0, false
	}
	return intraTotal + ordered/2, true
}

// PeekEnergy computes exactly what Energy would return for g — the same
// integers, bit for bit — without committing anything: the op log stays
// pending, no distance row is written, and the dirty sources are swept
// into scratch aggregates only. A rejected candidate move therefore costs
// ceil(dirty/64) batch sweeps and leaves the cache untouched, so the
// subsequent rollback is free. ok is false when the cache is not attached
// to g; the caller then falls back to Energy.
func (ie *IncrementalEvaluator) PeekEnergy(g *Graph) (energy int64, connected, ok bool) {
	if !ie.synced(g) {
		return 0, false, false
	}
	ie.stats.Peeks++
	ie.netDiff(g.oplog)
	ie.checkSymmetryPending(g)
	ie.compactOpLog(g)
	ie.markDirty()
	if len(ie.dirty) > 0 {
		ie.peekSweep(g, ie.dirty)
		ie.stampPeek(g, ie.dirty, ie.peekStore)
	} else {
		ie.stampPeek(g, nil, true)
	}
	ie.hostDelta = ie.hostDelta[:0]
	for b := 0; b < ie.m; b++ {
		if g.hosts[b] != ie.hosts[b] {
			ie.hostDelta = append(ie.hostDelta, int32(b))
		}
	}
	var intraTotal, ordered, orderedReach, attached int64
	bearing := 0
	for s := 0; s < ie.m; s++ {
		k := int64(g.hosts[s])
		if k == 0 {
			continue
		}
		bearing++
		attached += k
		intraTotal += k * (k - 1)
		if s >= ie.q {
			continue // orbit mode: images fold via the sym scaling below
		}
		var sum, reach int64
		if ie.dirtyAt[s] == ie.dirtyGen {
			sum, reach = ie.peekSum[s], ie.peekRch[s]
		} else {
			sum, reach = ie.rowSum[s], ie.rowRch[s]
			// Clean rows hold the current distances; patch their cached
			// aggregates for pending host-count deltas exactly as sync
			// would after committing.
			for _, b := range ie.hostDelta {
				if int(b) == s {
					continue
				}
				d := ie.row(s)[b]
				if d < 0 {
					continue
				}
				sum += int64(g.hosts[b]-ie.hosts[b]) * int64(d+2)
				wasBearing, isBearing := ie.hosts[b] > 0, g.hosts[b] > 0
				if wasBearing != isBearing {
					if isBearing {
						reach++
					} else {
						reach--
					}
				}
			}
		}
		ordered += k * sum
		orderedReach += reach
	}
	if ie.sym > 1 {
		ordered *= int64(ie.sym)
		orderedReach *= int64(ie.sym)
	}
	allAttached := attached == int64(g.n)
	switch {
	case bearing == 0:
		return 0, allAttached && g.n <= 1, true
	case bearing == 1:
		return intraTotal, allAttached, true
	}
	if !(allAttached && orderedReach == int64(bearing)*int64(bearing-1)) {
		return 0, false, true
	}
	return intraTotal + ordered/2, true, true
}

// stampPeek records the just-swept peek's identity so a commit of the
// same pending state can reuse its stored rows.
func (ie *IncrementalEvaluator) stampPeek(g *Graph, srcs []int32, stored bool) {
	ie.peekValid = stored
	if !stored {
		return
	}
	ie.peekList = append(ie.peekList[:0], srcs...)
	ie.peekOps = append(ie.peekOps[:0], g.oplog...)
	ie.peekHosts = append(ie.peekHosts[:0], g.hosts...)
}

// peekApplicable reports whether the stored peek describes exactly the
// pending state sync is about to commit: the identical op log (content,
// not just length — the ops plus the host counts pin the candidate graph,
// since the cache itself has not moved between the two calls), the
// identical host counts, and the identical dirty set in the same order.
func (ie *IncrementalEvaluator) peekApplicable(g *Graph) bool {
	if !ie.peekValid || len(ie.peekOps) != len(g.oplog) || len(ie.peekList) != len(ie.dirty) {
		return false
	}
	for i, op := range g.oplog {
		if ie.peekOps[i] != op {
			return false
		}
	}
	for i, s := range ie.dirty {
		if ie.peekList[i] != s {
			return false
		}
	}
	for b, k := range g.hosts {
		if ie.peekHosts[b] != k {
			return false
		}
	}
	return true
}

// applyPeek commits the stored peek: every dirty source's candidate row
// and aggregates are copied into the cache instead of re-sweeping. The
// copied values are the exact integers resweep would recompute.
func (ie *IncrementalEvaluator) applyPeek() {
	for i, s := range ie.peekList {
		copy(ie.row(int(s)), ie.peekRows[i*ie.m:(i+1)*ie.m])
		ie.rowSum[s] = ie.peekSum[s]
		ie.rowW[s] = ie.peekW[s]
		ie.rowRch[s] = ie.peekRch[s]
	}
}

// peekSweep computes the candidate aggregates of the given sources into
// the peek scratch, in 64-lane batches sharded over workers like resweep.
// When the dirty set fits the row budget the candidate rows are stored
// alongside, ready for applyPeek; nothing cached is written either way.
func (ie *IncrementalEvaluator) peekSweep(g *Graph, srcs []int32) {
	ie.peekStore = len(srcs)*ie.m <= MaxPeekRowEntries
	if !ie.peekStore {
		ie.stats.PeekStoreSkips++
	}
	if ie.peekStore {
		need := len(srcs) * ie.m
		if cap(ie.peekRows) < need {
			ie.peekRows = make([]int16, need)
		}
		ie.peekRows = ie.peekRows[:need]
	}
	stride := sweepStride(len(srcs))
	batches := (len(srcs) + stride - 1) / stride
	workers := ie.workers
	if workers > batches {
		workers = batches
	}
	ie.cursor.Store(0)
	if workers <= 1 {
		ie.runPeekBatches(&ie.sweep[0], srcs, stride)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ie.runPeekBatches(&ie.sweep[w], srcs, stride)
		}(w)
	}
	ie.runPeekBatches(&ie.sweep[0], srcs, stride)
	wg.Wait()
}

func (ie *IncrementalEvaluator) runPeekBatches(sc *sweepScratch, srcs []int32, stride int) {
	m := ie.m
	if cap(sc.visited) < 2*m {
		sc.visited = make([]uint64, 2*m)
		sc.front = make([]uint64, 2*m)
		sc.next = make([]uint64, 2*m)
	}
	for {
		idx := int(ie.cursor.Add(1)) - 1
		lo := idx * stride
		if lo >= len(srcs) {
			return
		}
		hi := lo + stride
		if hi > len(srcs) {
			hi = len(srcs)
		}
		if hi-lo <= 64 {
			ie.peekBatch(sc, srcs[lo:hi], lo)
		} else {
			ie.peekBatchWide(sc, srcs[lo:hi], lo)
		}
	}
}

// peekBatch is sweepRows writing into the peek scratch instead of the
// cache: one bit-parallel BFS accumulating each lane's aggregates against
// the graph's current host counts, plus the candidate rows themselves when
// the sweep is storing (base is the batch's slot offset into peekRows).
func (ie *IncrementalEvaluator) peekBatch(sc *sweepScratch, batch []int32, base int) {
	g := ie.g
	m := ie.m
	visited := sc.visited[:m]
	front := sc.front[:m]
	next := sc.next[:m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	var sumKD, w, prevW, rch [64]int64
	var rows [64][]int16
	for bit, s := range batch {
		if ie.peekStore {
			row := ie.peekRows[(base+bit)*m : (base+bit+1)*m]
			copy(row, ie.negRow)
			row[s] = 0
			rows[bit] = row
		}
		visited[s] |= 1 << uint(bit)
		front[s] |= 1 << uint(bit)
	}
	for level := int16(1); ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			fv := front[v]
			if fv == 0 {
				continue
			}
			// Unconditionally OR the frontier into next: the settle pass
			// below masks off already-visited bits, so pre-filtering here
			// would only add a visited load and a branch per edge word.
			for _, u := range g.adj[v] {
				next[u] |= fv
			}
		}
		for v := 0; v < m; v++ {
			nv := next[v] &^ visited[v]
			if nv == 0 {
				next[v] = 0
				continue
			}
			next[v] = nv
			visited[v] |= nv
			active = true
			kv := int64(g.hosts[v])
			if kv > 0 {
				if ie.peekStore {
					for mask := nv; mask != 0; mask &= mask - 1 {
						bit := trailingZeros(mask)
						rows[bit][v] = level
						w[bit] += kv
						rch[bit]++
					}
				} else {
					for mask := nv; mask != 0; mask &= mask - 1 {
						bit := trailingZeros(mask)
						w[bit] += kv
						rch[bit]++
					}
				}
			} else if ie.peekStore {
				for mask := nv; mask != 0; mask &= mask - 1 {
					rows[trailingZeros(mask)][v] = level
				}
			}
		}
		if !active {
			front, next = next, front
			break
		}
		// Per-level weight-delta fold; see sweepRows.
		for bit := range batch {
			if d := w[bit] - prevW[bit]; d != 0 {
				sumKD[bit] += int64(level) * d
				prevW[bit] = w[bit]
			}
		}
		front, next = next, front
	}
	for bit, s := range batch {
		ie.peekSum[s] = sumKD[bit] + 2*w[bit]
		ie.peekW[s] = w[bit]
		ie.peekRch[s] = rch[bit]
	}
}

// peekBatchWide is peekBatch over two mask words — see sweepRowsWide for
// the lane layout. base is the batch's slot offset into peekRows.
func (ie *IncrementalEvaluator) peekBatchWide(sc *sweepScratch, batch []int32, base int) {
	g := ie.g
	m := ie.m
	visited := sc.visited[:2*m]
	front := sc.front[:2*m]
	next := sc.next[:2*m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	var sumKD, w, prevW, rch [128]int64
	var rows [128][]int16
	for i, s := range batch {
		if ie.peekStore {
			row := ie.peekRows[(base+i)*m : (base+i+1)*m]
			copy(row, ie.negRow)
			row[s] = 0
			rows[i] = row
		}
		j := 2*int(s) + i>>6
		visited[j] |= 1 << uint(i&63)
		front[j] |= 1 << uint(i&63)
	}
	for level := int16(1); ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			i0 := 2 * v
			f0, f1 := front[i0], front[i0+1]
			if f0|f1 == 0 {
				continue
			}
			// Unconditional OR; the settle pass masks visited bits (see the
			// narrow variant).
			for _, u := range g.adj[v] {
				j0 := 2 * int(u)
				next[j0] |= f0
				next[j0+1] |= f1
			}
		}
		for v := 0; v < m; v++ {
			i0 := 2 * v
			nv0 := next[i0] &^ visited[i0]
			nv1 := next[i0+1] &^ visited[i0+1]
			if nv0|nv1 == 0 {
				next[i0], next[i0+1] = 0, 0
				continue
			}
			next[i0], next[i0+1] = nv0, nv1
			visited[i0] |= nv0
			visited[i0+1] |= nv1
			active = true
			kv := int64(g.hosts[v])
			if kv > 0 {
				if ie.peekStore {
					for mask := nv0; mask != 0; mask &= mask - 1 {
						lane := trailingZeros(mask)
						rows[lane][v] = level
						w[lane] += kv
						rch[lane]++
					}
					for mask := nv1; mask != 0; mask &= mask - 1 {
						lane := 64 + trailingZeros(mask)
						rows[lane][v] = level
						w[lane] += kv
						rch[lane]++
					}
				} else {
					for mask := nv0; mask != 0; mask &= mask - 1 {
						lane := trailingZeros(mask)
						w[lane] += kv
						rch[lane]++
					}
					for mask := nv1; mask != 0; mask &= mask - 1 {
						lane := 64 + trailingZeros(mask)
						w[lane] += kv
						rch[lane]++
					}
				}
			} else if ie.peekStore {
				for mask := nv0; mask != 0; mask &= mask - 1 {
					rows[trailingZeros(mask)][v] = level
				}
				for mask := nv1; mask != 0; mask &= mask - 1 {
					rows[64+trailingZeros(mask)][v] = level
				}
			}
		}
		if !active {
			front, next = next, front
			break
		}
		// Per-level weight-delta fold; see sweepRows.
		for lane := range batch {
			if d := w[lane] - prevW[lane]; d != 0 {
				sumKD[lane] += int64(level) * d
				prevW[lane] = w[lane]
			}
		}
		front, next = next, front
	}
	for i, s := range batch {
		ie.peekSum[s] = sumKD[i] + 2*w[i]
		ie.peekW[s] = w[i]
		ie.peekRch[s] = rch[i]
	}
}

// Evaluate computes the full Metrics from the cached rows — bit-identical
// to Evaluator.Evaluate, including the partial sums of disconnected
// graphs.
func (ie *IncrementalEvaluator) Evaluate(g *Graph) Metrics {
	ie.sync(g)
	intraTotal, intraPairs, ordered, orderedW, orderedReach, attached, bearing := ie.gatherTotals(g)
	allAttached := attached == int64(g.n)
	switch {
	case bearing == 0:
		return g.finishMetrics(0, 0, 0, allAttached && g.n <= 1)
	case bearing == 1:
		diam := 0
		for _, k := range g.hosts {
			if k >= 2 {
				diam = 2
			}
		}
		return g.finishMetrics(intraTotal, intraPairs, diam, allAttached)
	}
	diam := 0
	for s := 0; s < ie.m; s++ {
		if g.hosts[s] >= 2 {
			diam = 2
			break
		}
	}
	// Distances are symmetric across orbit images, so in orbit mode the
	// representative rows already contain every distinct distance value.
	for s := 0; s < ie.q; s++ {
		if g.hosts[s] == 0 {
			continue
		}
		row := ie.row(s)
		for t, d := range row {
			if d <= 0 || t == s || g.hosts[t] == 0 {
				continue
			}
			if int(d)+2 > diam {
				diam = int(d) + 2
			}
		}
	}
	connected := allAttached && orderedReach == int64(bearing)*int64(bearing-1)
	return g.finishMetrics(intraTotal+ordered/2, intraPairs+orderedW/2, diam, connected)
}

// CachedEnergy returns the cache's own total path sum (the exact energy of
// the last synced state — possibly a partial sum if that state was
// disconnected) without touching the graph or the pending op log.
func (ie *IncrementalEvaluator) CachedEnergy() int64 {
	var intra, ordered int64
	for s := 0; s < ie.m; s++ {
		k := int64(ie.hosts[s])
		if k == 0 {
			continue
		}
		intra += k * (k - 1)
		if s < ie.q {
			ordered += k * ie.rowSum[s]
		}
	}
	if ie.sym > 1 {
		ordered *= int64(ie.sym)
	}
	return intra + ordered/2
}

// cachedBearingConnected reports whether the cached state had every pair
// of host-bearing switches mutually reachable.
func (ie *IncrementalEvaluator) cachedBearingConnected() bool {
	var bearing, reach int64
	for s := 0; s < ie.m; s++ {
		if ie.hosts[s] == 0 {
			continue
		}
		bearing++
		if s < ie.q {
			reach += ie.rowRch[s]
		}
	}
	if ie.sym > 1 {
		reach *= int64(ie.sym)
	}
	return reach == bearing*(bearing-1)
}

// bearingConnectedNow runs one plain BFS on g and reports whether all
// hosts are attached and every host-bearing switch is reachable from the
// first one (the same pre-check Evaluator.Energy uses). Also reports the
// bearing-switch count.
func (ie *IncrementalEvaluator) bearingConnectedNow(g *Graph) (connected bool, bearing int) {
	m := len(g.adj)
	if cap(ie.seen) < m {
		ie.seen = make([]int32, m)
	}
	seen := ie.seen[:m]
	for i := range seen {
		seen[i] = 0
	}
	start := -1
	var attached int64
	for s := 0; s < m; s++ {
		if g.hosts[s] > 0 {
			bearing++
			attached += int64(g.hosts[s])
			if start == -1 {
				start = s
			}
		}
	}
	allAttached := attached == int64(g.n)
	if bearing <= 1 {
		return allAttached, bearing
	}
	if !allAttached {
		return false, bearing
	}
	if cap(ie.queue) < m {
		ie.queue = make([]int32, 0, m)
	}
	queue := ie.queue[:0]
	seen[start] = 1
	queue = append(queue, int32(start))
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.adj[v] {
			if seen[u] == 0 {
				seen[u] = 1
				if g.hosts[u] > 0 {
					reached++
				}
				queue = append(queue, u)
			}
		}
	}
	ie.queue = queue[:0]
	return reached == bearing, bearing
}

// DeltaEstimate is EstimateDelta's verdict on a pending mutation batch.
type DeltaEstimate struct {
	// Connected is false when the current graph fails the host-bearing
	// connectivity pre-check (the candidate disconnects the graph).
	Connected bool
	// Bounded reports whether Lo/Hi are usable. When false the caller
	// must fall back to an exact evaluation.
	Bounded bool
	// Lo and Hi bound the energy delta between the current graph and the
	// cache's last synced state (CachedEnergy), in total-path units. With
	// Exact they coincide with the true delta.
	Lo, Hi float64
	Exact  bool
	// Base is the cache's energy (the delta's reference point).
	Base int64
	// Dirty and Sampled report the dirty-source count and how many of
	// them were actually swept.
	Dirty, Sampled int
}

// EstimateDelta bounds the energy change of the pending (un-synced)
// mutations without committing anything to the cache: the op log is
// peeked, not consumed, and sampled sources are swept into scratch. A
// rolled-back candidate therefore leaves no trace — the stale-cache class
// of bugs cannot occur, because only Energy/Evaluate ever write rows.
//
// maxSample caps how many dirty sources are swept (sampled uniformly
// without replacement via rnd); the unswept remainder is extrapolated from
// the sample mean with a Hoeffding-style half-width at failure probability
// conf (the empirical sample range, inflated 4x, stands in for the true
// per-source delta range — see DESIGN.md). When every dirty source fits in
// the sample the bounds are exact. The estimate is refused (Bounded=false)
// when the cache is not attached to g or when the mutation changes the
// host-bearing connectivity status, where per-source deltas are unbounded.
//
// The host-bearing connectivity pre-check rides along for free: the first
// sampled lane counts the bearing switches it reaches, which for a bearing
// source equals the bearing count exactly when the graph is connected, so
// no separate BFS runs unless the cache is unusable or no sampled source
// bears hosts.
func (ie *IncrementalEvaluator) EstimateDelta(g *Graph, maxSample int, conf float64, rnd *rng.Rand) DeltaEstimate {
	ie.stats.Estimates++
	est := ie.estimateDelta(g, maxSample, conf, rnd)
	if est.Exact {
		ie.stats.ExactEstimates++
	}
	return est
}

func (ie *IncrementalEvaluator) estimateDelta(g *Graph, maxSample int, conf float64, rnd *rng.Rand) DeltaEstimate {
	if !ie.synced(g) {
		connected, _ := ie.bearingConnectedNow(g)
		return DeltaEstimate{Connected: connected}
	}
	if ie.sym > 1 {
		// Orbit mode caches only representative rows, but the exact
		// host-delta fold below reads arbitrary rows via matrix symmetry.
		// Refuse to estimate; callers escalate to PeekEnergy, which is
		// orbit-aware (and already ~sym× cheaper than a generic peek).
		connected, _ := ie.bearingConnectedNow(g)
		return DeltaEstimate{Connected: connected}
	}
	// Bearing census, O(m) and BFS-free: count, total attachment, first
	// bearing switch (whose cached row doubles as the reachability probe
	// when no row changed).
	var bearing int
	var attached int64
	first := -1
	for b, k := range g.hosts {
		if k > 0 {
			bearing++
			attached += int64(k)
			if first == -1 {
				first = b
			}
		}
	}
	allAttached := attached == int64(g.n)
	if bearing <= 1 {
		// No bearing pair exists; bearingConnectedNow's verdict is just
		// attachment.
		return DeltaEstimate{Connected: allAttached}
	}
	if !allAttached {
		return DeltaEstimate{}
	}
	ie.netDiff(g.oplog)
	ie.compactOpLog(g)
	ie.markDirty()
	est := DeltaEstimate{Dirty: len(ie.dirty)}

	if est.Dirty == 0 {
		// No row changed, so the cached reachability pattern is current:
		// read connectivity off the first bearing switch's row.
		est.Connected = true
		row := ie.row(first)
		for b, k := range g.hosts {
			if k > 0 && b != first && row[b] < 0 {
				est.Connected = false
				break
			}
		}
		if !est.Connected || !ie.cachedBearingConnected() {
			// Disconnected, or a reconnection flip (possible here via host
			// moves alone): per-source deltas are unbounded either way.
			return est
		}
		est.Base = ie.CachedEnergy()
		deltaIntra, exactOrdered := ie.hostDeltaTerms(g)
		est.Bounded, est.Exact = true, true
		est.Lo = deltaIntra + exactOrdered/2
		est.Hi = est.Lo
		return est
	}

	// Samples sweep in bit-parallel batches of 64 sources; a larger
	// maxSample costs proportionally more batches but covers the dirty set
	// exactly sooner, collapsing the bounds to a point.
	if maxSample < 1 {
		maxSample = 1
	}
	sampleN := est.Dirty
	if sampleN > maxSample {
		sampleN = maxSample
	}
	// Extrapolating from a handful of sources is how the empirical-range
	// stand-in goes wrong: the dirty set holds only genuinely-changed rows,
	// whose deltas spread far wider than a tiny sample reveals. Raise the
	// floor whenever the sample does not cover the dirty set — it stays
	// within the single 64-lane batch either way.
	if sampleN < est.Dirty && sampleN < minExtrapolateSample {
		sampleN = minExtrapolateSample
		if sampleN > est.Dirty {
			sampleN = est.Dirty
		}
	}
	if sampleN == est.Dirty {
		// Full coverage: the sample is the whole dirty set, so the sweep
		// runs through the peek machinery — sharded over workers, storing
		// the candidate rows — and the bounds collapse to the exact delta.
		// An immediately following commit (an accepted move) then applies
		// the stored rows instead of re-sweeping.
		ie.peekSweep(g, ie.dirty)
		ie.stampPeek(g, ie.dirty, ie.peekStore)
		// Any bearing dirty row doubles as the connectivity pre-check: it
		// reaches every other bearing switch exactly when the graph is
		// connected.
		probe := int32(-1)
		for _, src := range ie.dirty {
			if g.hosts[src] > 0 {
				probe = src
				break
			}
		}
		var connected bool
		if probe >= 0 {
			connected = ie.peekRch[probe] == int64(bearing-1)
		} else {
			connected, _ = ie.bearingConnectedNow(g)
		}
		if !connected {
			return est
		}
		est.Connected = true
		if !ie.cachedBearingConnected() {
			// Reachability flips make unswept per-source deltas unbounded.
			return est
		}
		est.Base = ie.CachedEnergy()
		deltaIntra, exactOrdered := ie.hostDeltaTerms(g)
		var sampleSum float64
		for _, src := range ie.dirty {
			sampleSum += float64(int64(g.hosts[src]))*float64(ie.peekSum[src]) -
				float64(int64(ie.hosts[src]))*float64(ie.rowSum[src])
		}
		est.Sampled = sampleN
		est.Bounded, est.Exact = true, true
		est.Lo = deltaIntra + (exactOrdered+sampleSum)/2
		est.Hi = est.Lo
		return est
	}

	// Partial Fisher-Yates: the first sampleN entries become a uniform
	// sample without replacement.
	ie.sampleIx = append(ie.sampleIx[:0], ie.dirty...)
	for i := 0; i < sampleN && i < len(ie.sampleIx)-1; i++ {
		j := i + rnd.Intn(len(ie.sampleIx)-i)
		ie.sampleIx[i], ie.sampleIx[j] = ie.sampleIx[j], ie.sampleIx[i]
	}
	// Lead the sample with a bearing source: lane 0's reach count then
	// decides connectivity. Swapping within the sample leaves membership
	// (and hence the sums and range below) unchanged.
	probe := -1
	for i := 0; i < sampleN; i++ {
		if g.hosts[ie.sampleIx[i]] > 0 {
			probe = i
			break
		}
	}
	if probe > 0 {
		ie.sampleIx[0], ie.sampleIx[probe] = ie.sampleIx[probe], ie.sampleIx[0]
	}
	if probe < 0 {
		// Every sampled source is host-free (possible only when hosts
		// concentrate away from the churned region): fall back to the BFS.
		connected, _ := ie.bearingConnectedNow(g)
		if !connected {
			return est
		}
	}
	ie.sampleD = ie.sampleD[:0]
	var sampleSum float64
	for off := 0; off < sampleN; off += 64 {
		end := off + 64
		if end > sampleN {
			end = sampleN
		}
		deltas, reach := ie.sampleBatchDeltas(g, ie.sampleIx[off:end])
		if off == 0 && probe >= 0 && reach[0] != int64(bearing) {
			// The probe's component misses a bearing switch: the candidate
			// disconnects the graph. Skip the remaining batches.
			return est
		}
		for _, d := range deltas {
			ie.sampleD = append(ie.sampleD, d)
			sampleSum += d
		}
	}
	est.Connected = true
	if !ie.cachedBearingConnected() {
		// Reachability flips make unswept per-source deltas unbounded.
		return est
	}
	est.Base = ie.CachedEnergy()
	deltaIntra, exactOrdered := ie.hostDeltaTerms(g)
	est.Sampled = sampleN

	mean := sampleSum / float64(sampleN)
	minD, maxD := ie.sampleD[0], ie.sampleD[0]
	for _, d := range ie.sampleD[1:] {
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
	}
	if conf <= 0 || conf >= 1 {
		conf = 1e-6
	}
	// Hoeffding half-width on the population mean with the empirical range
	// (inflated 4x, floored) standing in for the true range.
	rang := 4*(maxD-minD) + 16
	dev := rang * math.Sqrt(math.Log(2/conf)/(2*float64(sampleN)))
	rest := float64(est.Dirty - sampleN)
	est.Bounded = true
	est.Lo = deltaIntra + (exactOrdered+sampleSum+rest*(mean-dev))/2
	est.Hi = deltaIntra + (exactOrdered+sampleSum+rest*(mean+dev))/2
	return est
}

// hostDeltaTerms computes the exact, BFS-free part of the energy delta:
// the intra-switch term k(k-1) depends only on the host counts, and a
// clean row s (distances unchanged) changes by the source-side reweighting
// (k'_s - k_s)*rowSum[s] plus the target-side shifts
// k'_s * sum_b deltaK_b * (d(s,b)+2). Dirty rows are excluded — their
// contribution comes from the sample sweep.
func (ie *IncrementalEvaluator) hostDeltaTerms(g *Graph) (deltaIntra, exactOrdered float64) {
	for b := 0; b < ie.m; b++ {
		kNew, kOld := int64(g.hosts[b]), int64(ie.hosts[b])
		deltaK := kNew - kOld
		if deltaK == 0 {
			continue
		}
		deltaIntra += float64(kNew*(kNew-1) - kOld*(kOld-1))
		// The cache is a consistent snapshot of an undirected graph, so
		// its matrix is symmetric: d(s,b) for every clean s can be read
		// sequentially off row b instead of walking column b.
		rowB := ie.row(b)
		for s := 0; s < ie.m; s++ {
			if s == b || ie.dirtyAt[s] == ie.dirtyGen {
				continue
			}
			d := rowB[s]
			if d < 0 {
				continue
			}
			exactOrdered += float64(int64(g.hosts[s])) * float64(deltaK) * float64(d+2)
		}
	}
	for s := 0; s < ie.m; s++ {
		if ie.dirtyAt[s] == ie.dirtyGen {
			continue
		}
		if dk := int64(g.hosts[s]) - int64(ie.hosts[s]); dk != 0 {
			exactOrdered += float64(dk) * float64(ie.rowSum[s])
		}
	}
	return deltaIntra, exactOrdered
}

// sampleBatchDeltas runs one bit-parallel BFS over the (<= 64) batch
// sources on the current graph, without writing any cached state, and
// returns each source's ordered-sum contribution change
// k'_s*rowSum'_s - k_s*rowSum_s against its cached aggregate, plus each
// lane's count of reachable host-bearing switches (the source included).
// Both slices are scratch, valid until the next call.
func (ie *IncrementalEvaluator) sampleBatchDeltas(g *Graph, batch []int32) ([]float64, []int64) {
	m := ie.m
	sc := &ie.sweep[0]
	if cap(sc.visited) < m {
		sc.visited = make([]uint64, m)
		sc.front = make([]uint64, m)
		sc.next = make([]uint64, m)
	}
	visited := sc.visited[:m]
	front := sc.front[:m]
	next := sc.next[:m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	var newSum, newRch [64]int64
	for bit, s := range batch {
		visited[s] |= 1 << uint(bit)
		front[s] |= 1 << uint(bit)
		newSum[bit] = 0
		newRch[bit] = 0
		if g.hosts[s] > 0 {
			newRch[bit] = 1
		}
	}
	for level := int64(1); ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			fv := front[v]
			if fv == 0 {
				continue
			}
			// Unconditionally OR the frontier into next: the settle pass
			// below masks off already-visited bits, so pre-filtering here
			// would only add a visited load and a branch per edge word.
			for _, u := range g.adj[v] {
				next[u] |= fv
			}
		}
		for v := 0; v < m; v++ {
			nv := next[v] &^ visited[v]
			if nv == 0 {
				next[v] = 0
				continue
			}
			next[v] = nv
			visited[v] |= nv
			active = true
			if kv := int64(g.hosts[v]); kv > 0 {
				w := kv * (level + 2)
				for mask := nv; mask != 0; mask &= mask - 1 {
					bit := trailingZeros(mask)
					newSum[bit] += w
					newRch[bit]++
				}
			}
		}
		front, next = next, front
		if !active {
			break
		}
	}
	out := ie.sampleScratch(len(batch))
	rch := ie.reachScratch(len(batch))
	for i, s := range batch {
		out[i] = float64(int64(g.hosts[s]))*float64(newSum[i]) -
			float64(int64(ie.hosts[s]))*float64(ie.rowSum[s])
		rch[i] = newRch[i]
	}
	return out, rch
}

// reachScratch returns a reusable int64 slice of length n.
func (ie *IncrementalEvaluator) reachScratch(n int) []int64 {
	if cap(ie.scratchR) < n {
		ie.scratchR = make([]int64, n)
	}
	return ie.scratchR[:n]
}

// sampleScratch returns a reusable float64 slice of length n.
func (ie *IncrementalEvaluator) sampleScratch(n int) []float64 {
	if cap(ie.scratchF) < n {
		ie.scratchF = make([]float64, n)
	}
	return ie.scratchF[:n]
}

// HASPLEstimate is EstimateHASPL's result.
type HASPLEstimate struct {
	HASPL     float64 // point estimate of the h-ASPL
	HalfWidth float64 // confidence half-width: |true - estimate| <= HalfWidth w.p. >= 1-conf
	Sampled   int     // sources swept
}

// EstimateHASPL estimates the h-ASPL of a connected graph by sweeping
// `samples` host-bearing switches drawn uniformly with replacement, with a
// Hoeffding-style confidence half-width at failure probability conf. It is
// the cheap first rung of the evaluation ladder for read-only queries: the
// per-sample statistic B*k_s*sum_t k_t*(d(s,t)+2) is an unbiased estimator
// of the ordered inter-switch path sum (B = number of host-bearing
// switches), and the half-width uses the conservative per-sample range
// [0, B*kmax*n*(Dmax+2)] with Dmax the largest distance observed. ok is
// false on graphs where the estimate is meaningless (fewer than two
// host-bearing switches, unattached hosts, or a disconnected graph,
// detected by any sampled source failing to reach some bearing switch).
func EstimateHASPL(g *Graph, samples int, conf float64, rnd *rng.Rand) (HASPLEstimate, bool) {
	m := len(g.adj)
	var bearing []int32
	var attached, intraTotal int64
	var kmax int64
	for s := 0; s < m; s++ {
		k := int64(g.hosts[s])
		if k > 0 {
			bearing = append(bearing, int32(s))
			attached += k
			intraTotal += k * (k - 1)
			if k > kmax {
				kmax = k
			}
		}
	}
	if len(bearing) < 2 || attached != int64(g.n) {
		return HASPLEstimate{}, false
	}
	if samples < 1 {
		samples = 1
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.05
	}
	d := make([]int16, m)
	queue := make([]int32, 0, m)
	B := float64(len(bearing))
	var sum float64
	var dmax int64
	for i := 0; i < samples; i++ {
		s := int(bearing[rnd.Intn(len(bearing))])
		for t := range d {
			d[t] = -1
		}
		d[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.adj[v] {
				if d[u] == -1 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		var rowSum int64
		for _, t := range bearing {
			dt := d[t]
			if int(t) == s {
				continue
			}
			if dt < 0 {
				return HASPLEstimate{}, false // disconnected
			}
			rowSum += int64(g.hosts[t]) * int64(dt+2)
			if int64(dt) > dmax {
				dmax = int64(dt)
			}
		}
		sum += B * float64(g.hosts[s]) * float64(rowSum)
	}
	pairs := float64(g.n) * float64(g.n-1) / 2
	mean := sum / float64(samples)
	estTotal := float64(intraTotal) + mean/2
	rang := B * float64(kmax) * float64(g.n) * float64(dmax+2)
	dev := rang * math.Sqrt(math.Log(2/conf)/(2*float64(samples))) / 2
	return HASPLEstimate{
		HASPL:     estTotal / pairs,
		HalfWidth: dev / pairs,
		Sampled:   samples,
	}, true
}
