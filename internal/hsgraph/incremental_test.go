package hsgraph

import (
	"testing"

	"repro/internal/rng"
)

// moveOp is one replayable graph mutation for the differential harness.
type moveOp struct {
	kind    int // 0 = disconnect, 1 = connect, 2 = move host
	a, b, h int
}

func (op moveOp) apply(t *testing.T, g *Graph) {
	t.Helper()
	var err error
	switch op.kind {
	case 0:
		err = g.Disconnect(op.a, op.b)
	case 1:
		err = g.Connect(op.a, op.b)
	case 2:
		err = g.MoveHost(op.h, op.a)
	}
	if err != nil {
		t.Fatalf("replay %+v: %v", op, err)
	}
}

// randomMoveScript generates a sequence of valid-in-order mutations by
// applying candidates to the scratch clone as it goes; the result replays
// without errors on any clone of the same starting graph. Roughly half the
// steps are immediately-reverted pairs, so the op log's net-cancellation
// path is exercised as heavily as plain moves.
func randomMoveScript(t *testing.T, g *Graph, rnd *rng.Rand, steps int) []moveOp {
	t.Helper()
	scratch := g.Clone()
	var script []moveOp
	emit := func(op moveOp) {
		op.apply(t, scratch)
		script = append(script, op)
	}
	m := scratch.Switches()
	r := scratch.Radix()
	for len(script) < steps {
		revert := rnd.Intn(2) == 0
		switch rnd.Intn(3) {
		case 0: // rewire: drop a random edge, maybe add another
			if scratch.NumEdges() == 0 {
				continue
			}
			a, b := scratch.Edge(rnd.Intn(scratch.NumEdges()))
			emit(moveOp{kind: 0, a: a, b: b})
			if revert {
				emit(moveOp{kind: 1, a: a, b: b})
			}
		case 1:
			a, b := rnd.Intn(m), rnd.Intn(m)
			if a == b || scratch.HasEdge(a, b) || scratch.Degree(a) >= r || scratch.Degree(b) >= r {
				continue
			}
			emit(moveOp{kind: 1, a: a, b: b})
			if revert {
				emit(moveOp{kind: 0, a: a, b: b})
			}
		default:
			if scratch.Order() == 0 {
				continue
			}
			h := rnd.Intn(scratch.Order())
			from := scratch.SwitchOf(h)
			if from < 0 {
				continue
			}
			to := rnd.Intn(m)
			if to == from || scratch.Degree(to) >= r {
				continue
			}
			emit(moveOp{kind: 2, h: h, a: to})
			if revert {
				emit(moveOp{kind: 2, h: h, a: from})
			}
		}
	}
	return script
}

// checkIncrementalStep compares the incremental evaluator's Energy and
// Evaluate against the trusted serial engine on g's current state.
func checkIncrementalStep(t *testing.T, ie *IncrementalEvaluator, ev *Evaluator, g *Graph, ctx string) {
	t.Helper()
	wantMet := g.Evaluate()
	wantE, wantC := ev.Energy(g)
	gotE, gotC := ie.Energy(g)
	if gotE != wantE || gotC != wantC {
		t.Fatalf("%s: incremental Energy (%d, %v) != exact (%d, %v)", ctx, gotE, gotC, wantE, wantC)
	}
	if gotMet := ie.Evaluate(g); gotMet != wantMet {
		t.Fatalf("%s: incremental Evaluate %+v != exact %+v", ctx, gotMet, wantMet)
	}
}

// TestIncrementalEvaluatorDifferential is the equivalence proof behind the
// incremental engine: on >= 200 (graph, move-script, worker-count)
// combinations, the dirty-source re-sweep must agree with the full-sweep
// engines bit-for-bit on TotalPath, HASPL, Diameter and connectivity after
// every single step — across connected, disconnected, island and
// concentrated-host regimes, and across heavy do/undo churn.
func TestIncrementalEvaluatorDifferential(t *testing.T) {
	rnd := rng.New(20260807)
	workerCounts := []int{1, 2, 3, 8}
	sequences := 50
	steps := 24
	if testing.Short() {
		sequences = 14
	}
	ev := NewEvaluator(3)
	defer ev.Close()
	trials := 0
	for seq := 0; seq < sequences; seq++ {
		base := randomEvalGraph(t, rnd)
		script := randomMoveScript(t, base, rnd, steps)
		for _, workers := range workerCounts {
			trials++
			g := base.Clone()
			ie := NewIncrementalEvaluator(workers)
			checkIncrementalStep(t, ie, ev, g, "initial")
			for i, op := range script {
				op.apply(t, g)
				checkIncrementalStep(t, ie, ev, g, "seq "+itoa(seq)+" step "+itoa(i)+" workers "+itoa(workers))
			}
		}
	}
	if trials < 200 {
		t.Fatalf("differential coverage too small: %d combinations", trials)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestIncrementalRollbackReevaluate is the regression test for the
// stale-cache bug class: a candidate move is estimated (peeked), rejected
// and rolled back, and the evaluator must then judge subsequent moves
// against correct cached distances. A buggy implementation that committed
// the peeked rows (or skipped re-flagging on the undo ops) would keep
// distances of the rejected candidate and return a wrong energy for the
// follow-up move.
func TestIncrementalRollbackReevaluate(t *testing.T) {
	rnd := rng.New(99)
	ev := NewEvaluator(2)
	defer ev.Close()
	for trial := 0; trial < 40; trial++ {
		g := randomEvalGraph(t, rnd)
		ie := NewIncrementalEvaluator(1 + trial%3)
		checkIncrementalStep(t, ie, ev, g, "attach")
		script := randomMoveScript(t, g, rnd, 6)
		est := rng.New(uint64(trial) + 1)
		for i, op := range script {
			// Candidate: apply, peek an estimate, reject, roll back.
			undo := op
			if op.kind == 2 {
				undo.a = g.SwitchOf(op.h) // the host's pre-move switch
			}
			op.apply(t, g)
			ie.EstimateDelta(g, 4, 1e-6, est)
			switch op.kind {
			case 0:
				undo.kind = 1
			case 1:
				undo.kind = 0
			}
			undo.apply(t, g)
			// The cache must now answer for the rolled-back (original)
			// state and for any follow-up mutation.
			checkIncrementalStep(t, ie, ev, g, "rollback "+itoa(i))
			// Re-apply for real so later candidates see fresh states, and
			// check again: the undo ops' re-flagging must not linger.
			op.apply(t, g)
			checkIncrementalStep(t, ie, ev, g, "reapply "+itoa(i))
		}
	}
}

// TestEstimateDeltaBounds checks EstimateDelta's contract on random
// candidates: whenever the estimate is Bounded, the exact energy delta
// (relative to the cache's Base) lies in [Lo, Hi]; whenever it is Exact,
// the bounds coincide with the true delta; and the Connected verdict
// matches the exact engine's.
func TestEstimateDeltaBounds(t *testing.T) {
	rnd := rng.New(4242)
	est := rng.New(777)
	ev := NewEvaluator(2)
	defer ev.Close()
	trials, bounded, exact := 0, 0, 0
	for seq := 0; seq < 60; seq++ {
		g := randomEvalGraph(t, rnd)
		ie := NewIncrementalEvaluator(2)
		script := randomMoveScript(t, g, rnd, 10)
		for _, op := range script {
			// Sync the cache on the pre-move state, then peek the move.
			ie.Energy(g)
			cached := ie.CachedEnergy()
			op.apply(t, g)
			trials++
			e := ie.EstimateDelta(g, 3, 1e-6, est)
			if e.Bounded && e.Base != cached {
				t.Fatalf("Base %d != cached energy %d", e.Base, cached)
			}
			wantE, wantC := ev.Energy(g)
			if e.Connected != wantC {
				// The pre-check must match exactly when it claims
				// disconnection; Connected=true with unattached hosts is
				// excluded by the check itself.
				t.Fatalf("Connected=%v, exact connected=%v", e.Connected, wantC)
			}
			if !wantC || !e.Bounded {
				continue
			}
			bounded++
			// Exact delta in total-path units vs the cached state. The
			// cached state can itself be disconnected (partial sums); such
			// cases return Bounded=false above, so here Base is the true
			// energy of the pre-move state.
			delta := float64(wantE - e.Base)
			if delta < e.Lo-1e-6 || delta > e.Hi+1e-6 {
				t.Fatalf("exact delta %v outside [%v, %v] (dirty=%d sampled=%d)",
					delta, e.Lo, e.Hi, e.Dirty, e.Sampled)
			}
			if e.Exact {
				exact++
				if e.Lo != e.Hi {
					t.Fatalf("Exact estimate with Lo %v != Hi %v", e.Lo, e.Hi)
				}
			}
		}
	}
	if bounded == 0 || exact == 0 {
		t.Fatalf("estimator never exercised: %d trials, %d bounded, %d exact", trials, bounded, exact)
	}
}

// TestEstimateHASPLCoverage runs the sampled-source estimator across 1000
// trials on random connected graphs and checks the confidence contract:
// the exact h-ASPL must lie within HalfWidth of the point estimate. With
// conf = 1e-6 and the conservative range the bound uses, a single failure
// among 1000 deterministic trials is a bug, not noise.
func TestEstimateHASPLCoverage(t *testing.T) {
	rnd := rng.New(31337)
	est := rng.New(31338)
	trials := 1000
	if testing.Short() {
		trials = 200
	}
	for i := 0; i < trials; i++ {
		n := 16 + rnd.Intn(120)
		m := 4 + rnd.Intn(40)
		r := 6 + rnd.Intn(10)
		if !Feasible(n, m, r) {
			trials++
			continue
		}
		g, err := RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatal(err)
		}
		exact := g.Evaluate()
		if !exact.Connected {
			continue
		}
		h, ok := EstimateHASPL(g, 1+est.Intn(16), 1e-6, est)
		if !ok {
			t.Fatalf("trial %d: estimator refused a connected graph", i)
		}
		if diff := exact.HASPL - h.HASPL; diff > h.HalfWidth || -diff > h.HalfWidth {
			t.Fatalf("trial %d: exact h-ASPL %v outside %v +- %v", i, exact.HASPL, h.HASPL, h.HalfWidth)
		}
	}
}

// TestEstimateHASPLRefusals pins the ok=false cases.
func TestEstimateHASPLRefusals(t *testing.T) {
	est := rng.New(5)
	// One bearing switch.
	g := New(4, 3, 8)
	for h := 0; h < 4; h++ {
		if err := g.AttachHost(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := EstimateHASPL(g, 4, 0.01, est); ok {
		t.Fatal("estimator accepted a single-bearing-switch graph")
	}
	// Disconnected bearing switches.
	g2 := New(4, 4, 8)
	for h := 0; h < 4; h++ {
		if err := g2.AttachHost(h, h%2); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := EstimateHASPL(g2, 8, 0.01, est); ok {
		t.Fatal("estimator accepted a disconnected graph")
	}
	// Unattached hosts.
	g3 := New(4, 3, 8)
	if err := g3.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g3.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g3.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := EstimateHASPL(g3, 4, 0.01, est); ok {
		t.Fatal("estimator accepted a graph with unattached hosts")
	}
}

// TestIncrementalOpLogOverflow drives more mutations than the op log
// holds between evaluations; the evaluator must notice and fall back to a
// full rebuild instead of trusting a truncated log.
func TestIncrementalOpLogOverflow(t *testing.T) {
	g, err := RandomConnected(64, 16, 10, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(1)
	defer ev.Close()
	ie := NewIncrementalEvaluator(2)
	checkIncrementalStep(t, ie, ev, g, "attach")
	a, b := g.Edge(0)
	for i := 0; i < maxOpLog; i++ { // 2 ops per round: guaranteed overflow
		if err := g.Disconnect(a, b); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if !g.opOverflow {
		t.Fatal("op log did not overflow")
	}
	checkIncrementalStep(t, ie, ev, g, "post-overflow")
	// And the evaluator must have re-armed a fresh log.
	if g.opOverflow || !g.opLogOn {
		t.Fatal("evaluator did not re-arm the op log after overflow")
	}
}

// TestIncrementalEvaluatorSteadyStateAllocs verifies the annealing-shaped
// cycle (mutate, evaluate, roll back, evaluate) is allocation-free once
// the cache is warm, like the sharded evaluator's steady state.
func TestIncrementalEvaluatorSteadyStateAllocs(t *testing.T) {
	g, err := RandomConnected(128, 32, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ie := NewIncrementalEvaluator(1) // workers=1: no goroutine churn in the loop
	ie.Energy(g)
	est := rng.New(11)
	a, b := g.Edge(0)
	c, d := g.Edge(1)
	step := func() {
		for _, p := range [][2]int{{a, b}, {c, d}} {
			if err := g.Disconnect(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Connect(a, b); err != nil {
			t.Fatal(err)
		}
		ie.EstimateDelta(g, 2, 1e-6, est)
		if err := g.Connect(c, d); err != nil {
			t.Fatal(err)
		}
		if _, ok := ie.Energy(g); !ok {
			t.Fatal("graph disconnected")
		}
	}
	step() // warm every scratch path
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Fatalf("steady-state incremental evaluation allocates %.1f times per cycle", avg)
	}
}

// FuzzIncrementalEval feeds random edge-mutation scripts (including no-op
// and revert pairs) to the incremental evaluator and cross-checks every
// state against a fresh full sweep.
func FuzzIncrementalEval(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint64(7), []byte{9, 9, 9, 9, 0, 0, 0, 0, 255, 254, 253})
	f.Add(uint64(42), []byte{})
	f.Add(uint64(20260807), []byte{1, 0, 1, 0, 1, 0, 1, 0, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		if len(script) > 96 {
			script = script[:96]
		}
		rnd := rng.New(seed)
		g := randomEvalGraph(t, rnd)
		ev := NewEvaluator(2)
		defer ev.Close()
		ie := NewIncrementalEvaluator(1 + int(seed%3))
		est := rng.New(seed ^ 0x9e3779b97f4a7c15)
		checkIncrementalStep(t, ie, ev, g, "attach")
		m := g.Switches()
		r := g.Radix()
		for i := 0; i+2 < len(script); i += 3 {
			op, x, y := script[i], int(script[i+1]), int(script[i+2])
			switch op % 5 {
			case 0: // disconnect an existing edge
				if g.NumEdges() == 0 {
					continue
				}
				a, b := g.Edge(x % g.NumEdges())
				if err := g.Disconnect(a, b); err != nil {
					t.Fatal(err)
				}
			case 1: // connect a feasible pair
				a, b := x%m, y%m
				if a == b || g.HasEdge(a, b) || g.Degree(a) >= r || g.Degree(b) >= r {
					continue
				}
				if err := g.Connect(a, b); err != nil {
					t.Fatal(err)
				}
			case 2: // move a host
				if g.Order() == 0 {
					continue
				}
				h := x % g.Order()
				to := y % m
				if g.SwitchOf(h) < 0 || to == g.SwitchOf(h) || g.Degree(to) >= r {
					continue
				}
				if err := g.MoveHost(h, to); err != nil {
					t.Fatal(err)
				}
			case 3: // revert pair: disconnect + reconnect (net no-op)
				if g.NumEdges() == 0 {
					continue
				}
				a, b := g.Edge(x % g.NumEdges())
				if err := g.Disconnect(a, b); err != nil {
					t.Fatal(err)
				}
				if err := g.Connect(a, b); err != nil {
					t.Fatal(err)
				}
			default: // peek an estimate without committing anything
				ie.EstimateDelta(g, 1+y%4, 1e-6, est)
				continue
			}
			checkIncrementalStep(t, ie, ev, g, "op "+itoa(i))
		}
		checkIncrementalStep(t, ie, ev, g, "final")
	})
}

// TestIncrementalStats checks the introspection counters against a
// scripted interaction: attach, commit, stored-peek reuse, estimate,
// and a forced full-rebuild fallback all leave their fingerprints.
func TestIncrementalStats(t *testing.T) {
	g, err := RandomConnected(32, 16, 10, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	ie := NewIncrementalEvaluator(2)
	est := rng.New(5)

	ie.Energy(g) // attach: a rebuild, but not a counted sync
	s := ie.Stats()
	if s.Syncs != 0 || s.SweptSources != int64(g.Switches()) {
		t.Fatalf("after attach: %+v", s)
	}

	// A host move committed the incremental way (no rows change, so no
	// sweep happens, but the sync is counted).
	if err := g.MoveHost(0, pickTarget(t, g)); err != nil {
		t.Fatal(err)
	}
	ie.Energy(g)
	s = ie.Stats()
	if s.Syncs != 1 || s.FullRebuilds != 0 {
		t.Fatalf("after commit: %+v", s)
	}

	// Peek then commit the identical state: the stored rows must be
	// reused rather than re-swept.
	if err := g.MoveHost(0, pickTarget(t, g)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ie.PeekEnergy(g); !ok {
		t.Fatal("peek refused")
	}
	sweptBefore := ie.Stats().SweptSources
	ie.Energy(g)
	s = ie.Stats()
	if s.Peeks != 1 || s.StoredPeekReuses != 1 {
		t.Fatalf("stored peek not reused: %+v", s)
	}
	if s.SweptSources != sweptBefore {
		t.Fatalf("peek commit swept rows: %+v", s)
	}

	// An estimate counts, and with a generous sample it is exact.
	if err := g.MoveHost(0, pickTarget(t, g)); err != nil {
		t.Fatal(err)
	}
	e := ie.EstimateDelta(g, g.Switches(), 1e-6, est)
	s = ie.Stats()
	if s.Estimates != 1 {
		t.Fatalf("estimate uncounted: %+v", s)
	}
	if e.Exact && s.ExactEstimates != 1 {
		t.Fatalf("exact estimate uncounted: %+v", s)
	}

	// Batch enough genuine rewires between commits and the dirty-source
	// fraction must eventually exceed the fallback threshold.
	rnd := rng.New(23)
	for round := 0; round < 50 && ie.Stats().FullRebuilds == 0; round++ {
		for k := 0; k < 12; k++ {
			rewire(t, g, rnd)
		}
		ie.Energy(g)
	}
	s = ie.Stats()
	if s.FullRebuilds == 0 {
		t.Fatalf("mass dirtying never triggered the fallback: %+v", s)
	}
	if s.DirtySources == 0 || s.SweptSources <= int64(g.Switches()) {
		t.Fatalf("rewires left no sweep trace: %+v", s)
	}
}

// rewire removes a random edge and adds a random non-edge, mutating the
// topology for real (no net no-ops that the op log would compact away).
func rewire(t *testing.T, g *Graph, rnd *rng.Rand) {
	t.Helper()
	if g.NumEdges() > 0 {
		a, b := g.Edge(int(rnd.Uint64() % uint64(g.NumEdges())))
		if err := g.Disconnect(a, b); err != nil {
			t.Fatal(err)
		}
	}
	for try := 0; try < 64; try++ {
		a := int(rnd.Uint64() % uint64(g.Switches()))
		b := int(rnd.Uint64() % uint64(g.Switches()))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		if g.SwitchDegree(a)+g.HostCount(a) >= g.Radix() || g.SwitchDegree(b)+g.HostCount(b) >= g.Radix() {
			continue
		}
		if err := g.Connect(a, b); err != nil {
			t.Fatal(err)
		}
		return
	}
}

// pickTarget returns a switch host 0 can legally move to.
func pickTarget(t *testing.T, g *Graph) int {
	t.Helper()
	from := g.SwitchOf(0)
	for to := 0; to < g.Switches(); to++ {
		if to != from && g.Degree(to) < g.Radix() {
			return to
		}
	}
	t.Fatal("no legal host move")
	return -1
}

// TestPeekStoreSkipAtRowBudget pins the evaluator's one silent
// performance downgrade: a peek whose dirty set exceeds MaxPeekRowEntries
// stores no candidate rows — the commit re-sweeps — but still computes
// exact aggregates, and IncStats.PeekStoreSkips counts the event so CLIs
// can warn. The graph is a hub-plus-ring sized so that removing one spoke
// dirties essentially every source: with m=3000 host-bearing switches,
// dirty*m ≈ 9M > 8M entries.
func TestPeekStoreSkipAtRowBudget(t *testing.T) {
	const m = 3000
	g := New(m, m, m)
	for s := 0; s < m; s++ {
		if err := g.AttachHost(s, s); err != nil {
			t.Fatal(err)
		}
	}
	for s := 1; s < m; s++ {
		if err := g.Connect(0, s); err != nil {
			t.Fatal(err)
		}
	}
	for s := 1; s < m-1; s++ {
		if err := g.Connect(s, s+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(m-1, 1); err != nil {
		t.Fatal(err)
	}

	ie := NewIncrementalEvaluator(4)
	ie.Energy(g) // attach
	if got := ie.Stats().PeekStoreSkips; got != 0 {
		t.Fatalf("PeekStoreSkips before any peek: %d", got)
	}
	if err := g.Disconnect(0, m/2); err != nil {
		t.Fatal(err)
	}
	e, conn, ok := ie.PeekEnergy(g)
	if !ok {
		t.Fatal("PeekEnergy not attached")
	}
	if got := ie.Stats().PeekStoreSkips; got != 1 {
		t.Fatalf("PeekStoreSkips after oversized peek: %d, want 1", got)
	}
	// Results are unaffected: the peek and the subsequent commit agree
	// with from-scratch evaluation.
	want := g.Evaluate()
	if conn != want.Connected || e != want.TotalPath {
		t.Fatalf("oversized peek (%d,%v) != evaluate %+v", e, conn, want)
	}
	ce, cok := ie.Energy(g)
	if cok != want.Connected || ce != want.TotalPath {
		t.Fatalf("commit after oversized peek (%d,%v) != evaluate %+v", ce, cok, want)
	}
}
