package hsgraph

import (
	"testing"

	"repro/internal/rng"
)

// randomEvalGraph builds a graph for the differential tests, deliberately
// covering the regimes the evaluators must agree on: connected graphs,
// disconnected graphs (random edge deletion and forced two-component
// builds), empty switches, hosts piled onto few switches, and graphs with
// more than 64 host-bearing switches (multi-word batches).
func randomEvalGraph(t *testing.T, rnd *rng.Rand) *Graph {
	t.Helper()
	switch rnd.Intn(4) {
	case 0: // connected, well spread
		for {
			n := 8 + rnd.Intn(200)
			m := 2 + rnd.Intn(90)
			r := 4 + rnd.Intn(12)
			if !Feasible(n, m, r) {
				continue
			}
			g, err := RandomConnected(n, m, r, rnd)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
	case 1: // random deletions: connected or disconnected
		for {
			n := 8 + rnd.Intn(120)
			m := 3 + rnd.Intn(40)
			r := 4 + rnd.Intn(10)
			if !Feasible(n, m, r) {
				continue
			}
			g, err := RandomConnected(n, m, r, rnd)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1+rnd.Intn(4) && g.NumEdges() > 0; i++ {
				a, b := g.Edge(rnd.Intn(g.NumEdges()))
				if err := g.Disconnect(a, b); err != nil {
					t.Fatal(err)
				}
			}
			return g
		}
	case 2: // two islands: always disconnected across them
		// m*r >= 48 ports for at most 34 hosts, so attachment always
		// terminates even with the wrap-around scan below.
		n := 4 + 2*rnd.Intn(16) // even, <= 34
		m := 6 + 2*rnd.Intn(10) // even, >= 6
		r := 8 + rnd.Intn(8)
		g := New(n, m, r)
		half := m / 2
		for h := 0; h < n; h++ {
			s := rnd.Intn(half)
			if h%2 == 1 {
				s += half
			}
			for g.Degree(s) >= r {
				s = (s + 1) % m
			}
			if err := g.AttachHost(h, s); err != nil {
				t.Fatal(err)
			}
		}
		connectIsland := func(lo, hi int) {
			for s := lo + 1; s < hi; s++ {
				if g.Degree(s) < r && g.Degree(s-1) < r {
					if err := g.Connect(s-1, s); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		connectIsland(0, half)
		connectIsland(half, m)
		return g
	default: // hosts concentrated on a few switches, many empty ones
		n := 6 + rnd.Intn(40)
		m := 6 + rnd.Intn(60)
		r := n + 4 // room to pile hosts up
		g := New(n, m, r)
		bearing := 1 + rnd.Intn(4)
		for h := 0; h < n; h++ {
			if err := g.AttachHost(h, rnd.Intn(bearing)); err != nil {
				t.Fatal(err)
			}
		}
		// Random path cover plus chords; may or may not touch the
		// host-bearing switches.
		for s := 1; s < m; s++ {
			if rnd.Intn(5) > 0 {
				if err := g.Connect(s-1, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < m/2; i++ {
			a, b := rnd.Intn(m), rnd.Intn(m)
			if a != b && !g.HasEdge(a, b) && g.Degree(a) < r && g.Degree(b) < r {
				if err := g.Connect(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
		return g
	}
}

// TestEvaluatorDifferential is the equivalence proof behind the sharded
// engine: on >= 100 randomized graphs, the per-source BFS oracle
// (EvaluateSlow), the serial bit-parallel sweep (Evaluate) and the sharded
// engine (EvaluateParallel / Evaluator) must agree exactly on TotalPath,
// Diameter, HASPL and connectivity — for every worker count, including
// pools wider than the source word count.
func TestEvaluatorDifferential(t *testing.T) {
	rnd := rng.New(20250805)
	shared := NewEvaluator(3)
	defer shared.Close()
	trials, disconnected, multiword := 0, 0, 0
	for trials < 120 {
		g := randomEvalGraph(t, rnd)
		trials++
		slow := g.EvaluateSlow()
		fast := g.Evaluate()
		if fast != slow {
			t.Fatalf("trial %d %v: Evaluate %+v != EvaluateSlow %+v", trials, g, fast, slow)
		}
		if !slow.Connected {
			disconnected++
		}
		bearing := 0
		for s := 0; s < g.Switches(); s++ {
			if g.HostCount(s) > 0 {
				bearing++
			}
		}
		if bearing > 64 {
			multiword++
		}
		for _, workers := range []int{1, 2, 3, 8, bearing + 1} {
			if got := g.EvaluateParallel(workers); got != slow {
				t.Fatalf("trial %d %v workers=%d: EvaluateParallel %+v != EvaluateSlow %+v",
					trials, g, workers, got, slow)
			}
		}
		// A long-lived Evaluator must behave identically across graphs of
		// varying switch counts (buffer reuse) and repeated calls.
		if got := shared.Evaluate(g); got != slow {
			t.Fatalf("trial %d %v: shared Evaluator %+v != %+v", trials, g, got, slow)
		}
		if got := shared.Evaluate(g); got != slow {
			t.Fatalf("trial %d %v: repeated shared Evaluator call diverged", trials, g)
		}
		if e, ok := shared.Energy(g); ok != slow.Connected || (ok && e != slow.TotalPath) {
			t.Fatalf("trial %d %v: Energy (%d,%v) inconsistent with %+v", trials, g, e, ok, slow)
		}
	}
	if disconnected < 10 {
		t.Fatalf("generator produced only %d disconnected graphs in %d trials", disconnected, trials)
	}
	if multiword < 5 {
		t.Fatalf("generator produced only %d multi-word graphs in %d trials", multiword, trials)
	}
}

// TestEvaluatorTrivialRegimes pins the no-sweep shortcuts against the
// serial implementations: unattached hosts, a single host-bearing switch,
// and the single-host graph.
func TestEvaluatorTrivialRegimes(t *testing.T) {
	ev := NewEvaluator(4)
	defer ev.Close()

	unattached := New(3, 2, 4) // no hosts attached anywhere
	if got, want := ev.Evaluate(unattached), unattached.Evaluate(); got != want {
		t.Fatalf("unattached hosts: %+v != %+v", got, want)
	}

	single := New(5, 3, 8) // all hosts on one switch, empty others
	for h := 0; h < 5; h++ {
		if err := single.AttachHost(h, 1); err != nil {
			t.Fatal(err)
		}
	}
	want := single.Evaluate()
	if got := ev.Evaluate(single); got != want || !got.Connected || got.HASPL != 2 {
		t.Fatalf("single bearing switch: %+v != %+v", ev.Evaluate(single), want)
	}
	if e, ok := ev.Energy(single); !ok || e != want.TotalPath {
		t.Fatalf("Energy on single bearing switch = (%d,%v), want (%d,true)", e, ok, want.TotalPath)
	}

	lone := New(1, 1, 3)
	if err := lone.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := ev.Evaluate(lone); got != lone.Evaluate() {
		t.Fatalf("single host: %+v != %+v", got, lone.Evaluate())
	}
}

// TestEvaluatorEnergyFailsFastOnDisconnection checks the early-exit
// contract: Energy reports disconnection (via the single-BFS pre-check)
// exactly when the full evaluation would.
func TestEvaluatorEnergyFailsFastOnDisconnection(t *testing.T) {
	rnd := rng.New(31)
	ev := NewEvaluator(2)
	defer ev.Close()
	g, err := RandomConnected(40, 12, 6, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ev.Energy(g); !ok {
		t.Fatal("connected graph reported disconnected")
	}
	// Cut the graph: remove every edge of switch 0's neighbourhood.
	for g.SwitchDegree(0) > 0 {
		nb := int(g.Neighbors(0)[0])
		if err := g.Disconnect(0, nb); err != nil {
			t.Fatal(err)
		}
	}
	if g.HostCount(0) == 0 {
		t.Skip("switch 0 carried no hosts after generation")
	}
	if _, ok := ev.Energy(g); ok {
		t.Fatal("isolated host-bearing switch not detected")
	}
	if met := ev.Evaluate(g); met.Connected {
		t.Fatal("full evaluation disagrees with Energy on connectivity")
	}
}

// TestEvaluatorZeroSteadyStateAllocs asserts the amortization contract:
// once an Evaluator has seen a switch count, further evaluations of
// same-sized graphs allocate nothing — serial and pooled alike. This is
// what keeps the SA hot path out of the garbage collector.
func TestEvaluatorZeroSteadyStateAllocs(t *testing.T) {
	rnd := rng.New(9)
	g, err := RandomConnected(256, 80, 8, rnd)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ev := NewEvaluator(workers)
		ev.Evaluate(g) // warm up: grow scratch
		ev.Energy(g)
		if a := testing.AllocsPerRun(50, func() { ev.Evaluate(g) }); a != 0 {
			t.Errorf("workers=%d: Evaluate allocates %v per run in steady state", workers, a)
		}
		if a := testing.AllocsPerRun(50, func() { ev.Energy(g) }); a != 0 {
			t.Errorf("workers=%d: Energy allocates %v per run in steady state", workers, a)
		}
		ev.Close()
	}
}

// TestEvaluatorCloseIdempotent guards the pool teardown.
func TestEvaluatorCloseIdempotent(t *testing.T) {
	ev := NewEvaluator(3)
	ev.Close()
	ev.Close()
	serial := NewEvaluator(1)
	serial.Close()
	if NewEvaluator(0).Workers() != 1 || NewEvaluator(-2).Workers() != 1 {
		t.Fatal("worker floor not applied")
	}
}
