package hsgraph

import (
	"fmt"

	"repro/internal/rng"
)

// DistributeHostsEvenly attaches the graph's n hosts to its m switches as
// evenly as possible: the first n mod m switches receive ceil(n/m) hosts and
// the rest floor(n/m). All hosts must currently be unattached.
func DistributeHostsEvenly(g *Graph) error {
	n, m := g.Order(), g.Switches()
	h := 0
	for s := 0; s < m; s++ {
		k := n / m
		if s < n%m {
			k++
		}
		for i := 0; i < k; i++ {
			if err := g.AttachHost(h, s); err != nil {
				return err
			}
			h++
		}
	}
	return nil
}

// RandomConnected builds a random host-switch graph with n hosts spread
// evenly over m switches, a random spanning tree over the switches, and
// then random extra switch-switch edges until no two non-adjacent switches
// both have free ports (saturated). Saturation matters because the paper's
// swap and swing operations preserve the edge count: the search explores
// only graphs with as many switch-switch edges as the initial solution.
func RandomConnected(n, m, r int, rnd *rng.Rand) (*Graph, error) {
	if !Feasible(n, m, r) {
		return nil, fmt.Errorf("hsgraph: no connected host-switch graph with n=%d m=%d r=%d exists", n, m, r)
	}
	g := New(n, m, r)
	// Spanning structure: a path over a random permutation of the switches.
	// A path consumes the fewest ports per switch (at most 2), leaving the
	// most room for hosts; extra random edges are added afterwards.
	if m > 1 {
		order := rnd.Perm(m)
		for i := 0; i+1 < m; i++ {
			if err := g.Connect(order[i], order[i+1]); err != nil {
				return nil, err
			}
		}
	}
	// Round-robin host fill: one host per pass per switch with a free port,
	// keeping the distribution as even as the path structure allows.
	h := 0
	for h < n {
		progress := false
		for s := 0; s < m && h < n; s++ {
			if g.Degree(s) < r {
				if err := g.AttachHost(h, s); err != nil {
					return nil, err
				}
				h++
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("hsgraph: ran out of ports placing host %d (n=%d m=%d r=%d)", h, n, m, r)
		}
	}
	SaturateEdges(g, rnd)
	return g, nil
}

// Feasible reports whether any connected host-switch graph with n hosts,
// m switches and radix r exists: a spanning tree over the switches uses
// 2(m-1) ports, so n <= m*r - 2(m-1) is required (n <= r when m == 1).
func Feasible(n, m, r int) bool {
	if n < 1 || m < 1 || r < 1 {
		return false
	}
	if m == 1 {
		return n <= r
	}
	return n <= m*r-2*(m-1)
}

// SaturateEdges adds random switch-switch edges until no two distinct,
// non-adjacent switches both have a free port.
func SaturateEdges(g *Graph, rnd *rng.Rand) {
	m := g.Switches()
	free := make([]int, 0, m)
	for s := 0; s < m; s++ {
		if g.Degree(s) < g.Radix() {
			free = append(free, s)
		}
	}
	// Randomized phase: cheap and yields uniform-ish fills.
	misses := 0
	for len(free) >= 2 && misses < 32*m {
		i := rnd.Intn(len(free))
		j := rnd.Intn(len(free))
		if i == j {
			misses++
			continue
		}
		a, b := free[i], free[j]
		if g.HasEdge(a, b) || g.Connect(a, b) != nil {
			misses++
			continue
		}
		misses = 0
		free = compactFree(g, free)
	}
	// Deterministic sweep to finish off any remaining feasible pair.
	for {
		free = compactFree(g, free)
		added := false
		for i := 0; i < len(free) && !added; i++ {
			for j := i + 1; j < len(free); j++ {
				if !g.HasEdge(free[i], free[j]) {
					if g.Connect(free[i], free[j]) == nil {
						added = true
						break
					}
				}
			}
		}
		if !added {
			return
		}
	}
}

func compactFree(g *Graph, free []int) []int {
	out := free[:0]
	for _, s := range free {
		if g.Degree(s) < g.Radix() {
			out = append(out, s)
		}
	}
	return out
}

// RandomRegular builds a k-regular host-switch graph: m switches each with
// exactly k switch neighbours and exactly n/m hosts. Requires m divides n,
// n/m + k <= r, and m*k even. The switch graph is sampled with the
// configuration (stub-matching) model, restarting on clashes, and resampled
// until connected.
func RandomRegular(n, m, r, k int, rnd *rng.Rand) (*Graph, error) {
	if m <= 0 || n%m != 0 {
		return nil, fmt.Errorf("hsgraph: RandomRegular requires m | n (n=%d, m=%d)", n, m)
	}
	if n/m+k > r {
		return nil, fmt.Errorf("hsgraph: hosts-per-switch %d + degree %d exceeds radix %d", n/m, k, r)
	}
	if m*k%2 != 0 {
		return nil, fmt.Errorf("hsgraph: m*k must be even (m=%d, k=%d)", m, k)
	}
	if k >= m {
		return nil, fmt.Errorf("hsgraph: degree %d must be below switch count %d", k, m)
	}
	if k < 1 && m > 1 {
		return nil, fmt.Errorf("hsgraph: degree 0 disconnects %d switches", m)
	}
	// The configuration (stub-matching) model is near-uniform but its
	// success probability collapses for dense k; try it a bounded number
	// of times, then fall back to a randomized circulant, which always
	// succeeds.
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryRegular(n, m, r, k, rnd)
		if ok && g.HostsConnected() {
			return g, nil
		}
	}
	return circulantRegular(n, m, r, k, rnd)
}

// circulantRegular builds a k-regular circulant graph (ring chords
// 1..k/2, plus the antipodal chord for odd k) and randomizes it with
// connectivity-preserving edge swaps.
func circulantRegular(n, m, r, k int, rnd *rng.Rand) (*Graph, error) {
	g := New(n, m, r)
	if err := DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	for d := 1; d <= k/2; d++ {
		for s := 0; s < m; s++ {
			t := (s + d) % m
			if s != t && !g.HasEdge(s, t) {
				if err := g.Connect(s, t); err != nil {
					return nil, err
				}
			}
		}
	}
	if k%2 == 1 {
		// m is even here (m*k even with odd k).
		for s := 0; s < m/2; s++ {
			if err := g.Connect(s, s+m/2); err != nil {
				return nil, err
			}
		}
	}
	for s := 0; s < m; s++ {
		if g.SwitchDegree(s) != k {
			return nil, fmt.Errorf("hsgraph: circulant construction gave degree %d at switch %d, want %d (m=%d)", g.SwitchDegree(s), s, k, m)
		}
	}
	// Randomize: batches of double-edge swaps, rolling back any batch that
	// disconnects the graph.
	target := 10 * m * k
	for done := 0; done < target; {
		snapshot := g.Clone()
		batch := m
		applied := 0
		for i := 0; i < batch*4 && applied < batch; i++ {
			if swapRandomEdges(g, rnd) {
				applied++
			}
		}
		if g.HostsConnected() {
			done += applied
		} else {
			g = snapshot
		}
	}
	return g, nil
}

// swapRandomEdges performs one random degree-preserving 2-opt swap on the
// switch graph; returns false if the sampled move was invalid.
func swapRandomEdges(g *Graph, rnd *rng.Rand) bool {
	ne := g.NumEdges()
	if ne < 2 {
		return false
	}
	i, j := rnd.Intn(ne), rnd.Intn(ne)
	if i == j {
		return false
	}
	a, b := g.Edge(i)
	c, d := g.Edge(j)
	if rnd.Intn(2) == 0 {
		c, d = d, c
	}
	if a == c || a == d || b == c || b == d || g.HasEdge(a, d) || g.HasEdge(b, c) {
		return false
	}
	if g.Disconnect(a, b) != nil || g.Disconnect(c, d) != nil {
		panic("hsgraph: inconsistent edge set in swapRandomEdges")
	}
	if g.Connect(a, d) != nil || g.Connect(b, c) != nil {
		panic("hsgraph: swap reconnection failed")
	}
	return true
}

func tryRegular(n, m, r, k int, rnd *rng.Rand) (*Graph, bool) {
	g := New(n, m, r)
	if err := DistributeHostsEvenly(g); err != nil {
		return nil, false
	}
	stubs := make([]int32, 0, m*k)
	for s := 0; s < m; s++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, int32(s))
		}
	}
	rnd.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs); i += 2 {
		a, b := int(stubs[i]), int(stubs[i+1])
		if a == b || g.HasEdge(a, b) {
			return nil, false
		}
		if err := g.Connect(a, b); err != nil {
			return nil, false
		}
	}
	return g, true
}

// Ring builds a host-switch graph whose m switches form a cycle (or a
// single edge for m = 2, a lone switch for m = 1), with hosts distributed
// evenly. Useful as a deterministic fixture.
func Ring(n, m, r int) (*Graph, error) {
	g := New(n, m, r)
	if err := DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	if m == 2 {
		if err := g.Connect(0, 1); err != nil {
			return nil, err
		}
		return g, nil
	}
	for s := 0; s < m && m > 1; s++ {
		if err := g.Connect(s, (s+1)%m); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Path builds a host-switch graph whose switches form a simple path.
func Path(n, m, r int) (*Graph, error) {
	g := New(n, m, r)
	if err := DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	for s := 0; s+1 < m; s++ {
		if err := g.Connect(s, s+1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star builds one hub switch connected to all other switches; hosts are
// distributed evenly over all switches.
func Star(n, m, r int) (*Graph, error) {
	g := New(n, m, r)
	if err := DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	for s := 1; s < m; s++ {
		if err := g.Connect(0, s); err != nil {
			return nil, err
		}
	}
	return g, nil
}
