package hsgraph

// Content-addressed identity of a host-switch graph.
//
// The fingerprint is the canonical form of the *labeled* graph: two Graph
// values that represent the same hosts-on-switches and switch-switch edge
// set hash identically no matter how they were built — edge insertion
// order, adjacency-list order, per-switch host-list order and the
// swap-remove churn of an annealing history are all invisible to it. It
// deliberately does NOT quotient by isomorphism: relabeling switches
// changes the fingerprint (canonical labeling is a different, much harder
// problem, and the result cache keyed on this fingerprint only needs
// "same query ⇒ same key").
//
// Everything a metric evaluation can observe is covered: n, m, r, the
// host→switch assignment and the edge set. Hence the cache-safety
// contract, enforced by FuzzFingerprint: fingerprint-equal ⇒
// metrics-equal (h-ASPL, diameter, total path, connectivity, and every
// derived report field).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// fingerprintDomain seeds the hash so a graph fingerprint can never
// collide with another domain's use of SHA-256 over similar integers.
// Bump the suffix if the canonical form ever changes meaning.
const fingerprintDomain = "orp.hsgraph.fp.v1"

// FingerprintSize is the size of a Fingerprint in bytes.
const FingerprintSize = sha256.Size

// Fingerprint is the canonical content address of a Graph.
type Fingerprint [FingerprintSize]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint returns the canonical content address of g: a SHA-256 over
// the order-independent canonical form (header, host assignment, sorted
// edge set). See the package comment at the top of this file for the
// exact invariance contract.
func (g *Graph) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))

	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(g.n))
	writeU64(uint64(len(g.adj)))
	writeU64(uint64(g.r))

	// hostOf is indexed by host, so it is already storage-order-free.
	// Unattached hosts (-1) are representable mid-construction; encode
	// them distinctly rather than as a huge unsigned value collision.
	for _, s := range g.hostOf {
		writeU64(uint64(int64(s)) + 1)
	}

	// The edge list's order is mutation-history; sort a copy. Keys are
	// stored with a < b (see edgeKey), so a lexicographic sort yields one
	// canonical sequence per edge set.
	edges := append([][2]int32(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	writeU64(uint64(len(edges)))
	for _, e := range edges {
		writeU64(uint64(e[0]))
		writeU64(uint64(e[1]))
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}
