package hsgraph

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/rng"
)

// rebuildShuffled reconstructs g from scratch, attaching hosts and
// connecting edges in an order drawn from rnd. The result is the same
// labeled graph with a different (generically: maximally different)
// internal storage order.
func rebuildShuffled(t testing.TB, g *Graph, rnd *rng.Rand) *Graph {
	t.Helper()
	c := New(g.Order(), g.Switches(), g.Radix())
	hosts := rnd.Perm(g.Order())
	for _, h := range hosts {
		if s := g.SwitchOf(h); s != -1 {
			if err := c.AttachHost(h, s); err != nil {
				t.Fatalf("reattach host %d: %v", h, err)
			}
		}
	}
	order := rnd.Perm(g.NumEdges())
	for _, i := range order {
		a, b := g.Edge(i)
		if err := c.Connect(a, b); err != nil {
			t.Fatalf("reconnect {%d,%d}: %v", a, b, err)
		}
	}
	return c
}

// churn disconnects and reconnects random edges and bounces random hosts,
// which permutes the internal edge list, adjacency lists and host lists
// (swap-remove reordering) without changing the graph.
func churn(t testing.TB, g *Graph, rnd *rng.Rand, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if ne := g.NumEdges(); ne > 0 {
			a, b := g.Edge(rnd.Intn(ne))
			if err := g.Disconnect(a, b); err != nil {
				t.Fatal(err)
			}
			if err := g.Connect(a, b); err != nil {
				t.Fatal(err)
			}
		}
		h := rnd.Intn(g.Order())
		if s := g.SwitchOf(h); s != -1 {
			if err := g.DetachHost(h); err != nil {
				t.Fatal(err)
			}
			if err := g.AttachHost(h, s); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFingerprintStableAcrossStorageOrder(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g, err := RandomConnected(48, 16, 6, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		want := g.Fingerprint()

		// Shuffled reconstruction: different insertion order, same graph.
		for trial := 0; trial < 4; trial++ {
			c := rebuildShuffled(t, g, rng.New(seed*100+uint64(trial)))
			if got := c.Fingerprint(); got != want {
				t.Fatalf("seed %d trial %d: shuffled rebuild fingerprint %s != %s", seed, trial, got, want)
			}
		}

		// In-place churn: swap-remove reordering of every internal list.
		c := g.Clone()
		churn(t, c, rng.New(seed+77), 200)
		if got := c.Fingerprint(); got != want {
			t.Fatalf("seed %d: churned fingerprint %s != %s", seed, got, want)
		}
		// The churned graph must still be the same graph.
		if c.Evaluate() != g.Evaluate() {
			t.Fatalf("seed %d: churn changed metrics", seed)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	g, err := RandomConnected(48, 16, 6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	base := g.Fingerprint()

	// Removing an edge changes the fingerprint.
	c := g.Clone()
	a, b := c.Edge(0)
	if err := c.Disconnect(a, b); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == base {
		t.Fatal("fingerprint unchanged after edge removal")
	}

	// Moving a host changes the fingerprint. RandomConnected saturates
	// every port, so free one first by dropping an edge, and compare
	// against the edge-dropped fingerprint.
	c = g.Clone()
	if err := c.Disconnect(a, b); err != nil {
		t.Fatal(err)
	}
	edgeDropped := c.Fingerprint()
	h := -1
	for cand := 0; cand < c.Order(); cand++ {
		if c.SwitchOf(cand) != a {
			h = cand
			break
		}
	}
	if h == -1 {
		t.Fatal("every host lives on one switch")
	}
	if err := c.MoveHost(h, a); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == edgeDropped {
		t.Fatal("fingerprint unchanged after host move")
	}

	// A different radix is a different design query even with identical
	// hosts and edges.
	big := New(g.Order(), g.Switches(), g.Radix()+1)
	for h := 0; h < g.Order(); h++ {
		if err := big.AttachHost(h, g.SwitchOf(h)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		ea, eb := g.Edge(i)
		if err := big.Connect(ea, eb); err != nil {
			t.Fatal(err)
		}
	}
	if big.Fingerprint() == base {
		t.Fatal("fingerprint unchanged across radix change")
	}
}

// TestFingerprintSurvivesCodecs pins the fingerprint across every way a
// graph travels: Clone, the canonical text format, and the
// order-preserving state codec.
func TestFingerprintSurvivesCodecs(t *testing.T) {
	g, err := RandomConnected(64, 20, 7, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	churn(t, g, rng.New(10), 50) // non-canonical storage order on purpose
	want := g.Fingerprint()

	if got := g.Clone().Fingerprint(); got != want {
		t.Fatalf("clone fingerprint %s != %s", got, want)
	}

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	rt, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Fingerprint(); got != want {
		t.Fatalf("text round-trip fingerprint %s != %s", got, want)
	}

	st, err := UnmarshalState(g.MarshalState())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Fingerprint(); got != want {
		t.Fatalf("state round-trip fingerprint %s != %s", got, want)
	}
}

// FuzzFingerprint is the cache-safety contract: fingerprint-equal ⇒
// metrics-equal. It builds a random graph, reconstructs it under a
// fuzzer-chosen storage order (fingerprints must collide, metrics must
// agree) and then perturbs the edge set (any fingerprint collision with
// the original would have to keep metrics equal — in practice the
// fingerprints differ, which is also checked).
func FuzzFingerprint(f *testing.F) {
	mk := func(n, m, r int, seed uint64) []byte {
		b := make([]byte, 3+8)
		b[0], b[1], b[2] = byte(n), byte(m), byte(r)
		binary.LittleEndian.PutUint64(b[3:], seed)
		return b
	}
	f.Add(mk(24, 8, 5, 1))
	f.Add(mk(48, 16, 6, 2))
	f.Add(mk(8, 3, 4, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 11 {
			t.Skip()
		}
		n := 1 + int(data[0])%64
		m := 1 + int(data[1])%24
		r := 3 + int(data[2])%8
		seed := binary.LittleEndian.Uint64(data[3:11])
		g, err := RandomConnected(n, m, r, rng.New(seed))
		if err != nil {
			t.Skip() // infeasible (n, m, r)
		}
		met := g.Evaluate()

		// Same graph, fuzzer-chosen storage order.
		c := rebuildShuffled(t, g, rng.New(seed^0xdead))
		churn(t, c, rng.New(seed^0xbeef), 16)
		if g.Fingerprint() != c.Fingerprint() {
			t.Fatalf("same graph, different fingerprints: %s vs %s", g.Fingerprint(), c.Fingerprint())
		}
		if cm := c.Evaluate(); cm != met {
			t.Fatalf("fingerprint-equal graphs disagree on metrics: %+v vs %+v", cm, met)
		}

		// Different graph: drop one edge. Equal fingerprints would demand
		// equal metrics; in fact the fingerprint must change.
		if c.NumEdges() > 0 {
			a, b := c.Edge(int(seed % uint64(c.NumEdges())))
			if err := c.Disconnect(a, b); err != nil {
				t.Fatal(err)
			}
			if c.Fingerprint() == g.Fingerprint() {
				if cm := c.Evaluate(); cm != met {
					t.Fatalf("fingerprint collision with unequal metrics: %+v vs %+v", cm, met)
				}
				t.Fatalf("edge removal did not change the fingerprint")
			}
		}
	})
}
