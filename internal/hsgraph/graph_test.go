package hsgraph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// fig1Graph builds a graph in the spirit of the paper's Fig. 1:
// n = 16, m = 4, r = 6; four switches in a ring, four hosts each.
func fig1Graph(t *testing.T) *Graph {
	t.Helper()
	g, err := Ring(16, 4, 6)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	return g
}

func TestNewBasics(t *testing.T) {
	g := New(8, 3, 5)
	if g.Order() != 8 || g.Switches() != 3 || g.Radix() != 5 {
		t.Fatalf("unexpected parameters: %v", g)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("fresh graph has %d edges", g.NumEdges())
	}
	for h := 0; h < 8; h++ {
		if g.SwitchOf(h) != -1 {
			t.Fatalf("fresh host %d attached to %d", h, g.SwitchOf(h))
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tc := range [][3]int{{0, 1, 3}, {1, 0, 3}, {1, 1, 0}, {-1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", tc)
				}
			}()
			New(tc[0], tc[1], tc[2])
		}()
	}
}

func TestAttachDetach(t *testing.T) {
	g := New(4, 2, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if g.SwitchOf(0) != 0 || g.HostCount(0) != 1 || g.Degree(0) != 1 {
		t.Fatal("attachment not recorded")
	}
	if err := g.AttachHost(0, 1); err == nil {
		t.Fatal("double attach allowed")
	}
	if err := g.AttachHost(9, 0); err == nil {
		t.Fatal("out-of-range host allowed")
	}
	if err := g.AttachHost(1, 5); err == nil {
		t.Fatal("out-of-range switch allowed")
	}
	if err := g.DetachHost(0); err != nil {
		t.Fatal(err)
	}
	if g.SwitchOf(0) != -1 || g.HostCount(0) != 0 {
		t.Fatal("detachment not recorded")
	}
	if err := g.DetachHost(0); err == nil {
		t.Fatal("double detach allowed")
	}
}

func TestRadixEnforced(t *testing.T) {
	g := New(5, 2, 3)
	for h := 0; h < 3; h++ {
		if err := g.AttachHost(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AttachHost(3, 0); err == nil {
		t.Fatal("radix exceeded by host attach")
	}
	if err := g.Connect(0, 1); err == nil {
		t.Fatal("radix exceeded by edge")
	}
}

func TestConnectDisconnect(t *testing.T) {
	g := New(1, 4, 4)
	if err := g.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if err := g.Connect(1, 0); err == nil {
		t.Fatal("duplicate edge allowed")
	}
	if err := g.Connect(2, 2); err == nil {
		t.Fatal("self loop allowed")
	}
	if err := g.Connect(-1, 2); err == nil {
		t.Fatal("out of range switch allowed")
	}
	if err := g.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Fatal("edge not removed")
	}
	if err := g.Disconnect(0, 1); err == nil {
		t.Fatal("removing missing edge allowed")
	}
}

func TestEdgeListStaysConsistent(t *testing.T) {
	g := New(1, 6, 6)
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}
	for _, p := range pairs {
		if err := g.Connect(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Disconnect(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Disconnect(5, 0); err != nil {
		t.Fatal(err)
	}
	// Every edge returned by Edge must exist per HasEdge, and the count of
	// adjacency entries must be twice the edge count.
	deg := 0
	for s := 0; s < 6; s++ {
		deg += g.SwitchDegree(s)
	}
	if deg != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges %d", deg, 2*g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if !g.HasEdge(a, b) {
			t.Fatalf("edge list entry {%d,%d} missing from edge set", a, b)
		}
	}
}

func TestMoveHost(t *testing.T) {
	g := New(2, 2, 2)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.MoveHost(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.SwitchOf(0) != 1 || g.HostCount(0) != 0 || g.HostCount(1) != 2 {
		t.Fatal("move not applied")
	}
	// Switch 1 now full (radix 2): moving host 1 to a full switch must fail
	// and restore the original attachment.
	g2 := New(3, 2, 2)
	for h, s := range []int{0, 1, 1} {
		if err := g2.AttachHost(h, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := g2.MoveHost(0, 1); err == nil {
		t.Fatal("move to full switch allowed")
	}
	if g2.SwitchOf(0) != 0 {
		t.Fatal("failed move did not restore attachment")
	}
}

func TestValidateGood(t *testing.T) {
	g := fig1Graph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestValidateUnattachedHost(t *testing.T) {
	g := New(2, 2, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("graph with unattached host validated")
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := New(2, 2, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph validated")
	}
	if !strings.Contains(g.Validate().Error(), "connect") {
		t.Fatalf("unexpected error: %v", g.Validate())
	}
}

func TestHostsConnectedIgnoresUnusedComponents(t *testing.T) {
	// Hosts all on switches 0,1 (connected); switch 2 isolated and empty.
	g := New(4, 3, 4)
	for h, s := range []int{0, 0, 1, 1} {
		if err := g.AttachHost(h, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HostsConnected() {
		t.Fatal("isolated empty switch should not break host connectivity")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := fig1Graph(t)
	c := g.Clone()
	if !Equal(g, c) {
		t.Fatal("clone not equal to original")
	}
	if err := c.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	// Disconnecting freed one port on switch 1; move host 0 there.
	if err := c.MoveHost(0, 1); err != nil {
		t.Fatal(err)
	}
	if Equal(g, c) {
		t.Fatal("mutating clone affected original (Equal)")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("mutating clone removed edge from original")
	}
	if g.SwitchOf(0) != 0 {
		t.Fatal("mutating clone moved host in original")
	}
}

func TestHostDistribution(t *testing.T) {
	g := New(5, 3, 6)
	for h, s := range []int{0, 0, 0, 1, 2} {
		if err := g.AttachHost(h, s); err != nil {
			t.Fatal(err)
		}
	}
	hist := g.HostDistribution()
	want := []int{0, 2, 0, 1, 0, 0, 0} // k=1 twice, k=3 once
	for k, c := range want {
		if hist[k] != c {
			t.Fatalf("hist[%d] = %d, want %d (full: %v)", k, hist[k], c, hist)
		}
	}
}

func TestUsedSwitches(t *testing.T) {
	// Path of 3 switches, hosts only at both ends: the middle switch is
	// still used (it is interior to the shortest path).
	g := New(2, 3, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.UsedSwitches(); got != 3 {
		t.Fatalf("UsedSwitches = %d, want 3", got)
	}
	// Add a pendant switch hanging off the middle: unused.
	g2 := New(2, 4, 3)
	if err := g2.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g2.AttachHost(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {1, 3}} {
		if err := g2.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := g2.UsedSwitches(); got != 3 {
		t.Fatalf("UsedSwitches with pendant = %d, want 3", got)
	}
}

func TestRandomGraphValidates(t *testing.T) {
	rnd := rng.New(11)
	for i := 0; i < 25; i++ {
		n := 10 + rnd.Intn(60)
		m := 3 + rnd.Intn(12)
		r := 4 + rnd.Intn(12)
		if !Feasible(n, m, r) {
			continue
		}
		g, err := RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatalf("RandomConnected(n=%d,m=%d,r=%d): %v", n, m, r, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph invalid (n=%d,m=%d,r=%d): %v", n, m, r, err)
		}
	}
}
