package hsgraph

import (
	"fmt"
	"math/bits"
)

// Metrics holds the evaluation of a host-switch graph.
type Metrics struct {
	HASPL     float64 // host-to-host average shortest path length
	Diameter  int     // host-to-host diameter
	TotalPath int64   // sum of ell(h_i, h_j) over connected unordered host pairs
	Connected bool    // false if some host pair is unreachable

	// ReachablePairs is the number of unordered host pairs joined by a
	// path. It equals C(n, 2) on connected graphs; on degraded graphs
	// (package fault) TotalPath/ReachablePairs is the h-ASPL over the
	// pairs that can still communicate. Unattached hosts reach nothing.
	ReachablePairs int64
}

// SwitchDistances returns the all-pairs shortest path matrix of the switch
// graph via per-source BFS. Unreachable pairs are -1. This is the reference
// (slow) implementation; Evaluate uses the bit-parallel variant.
func (g *Graph) SwitchDistances() [][]int32 {
	m := len(g.adj)
	dist := make([][]int32, m)
	queue := make([]int32, 0, m)
	for s := 0; s < m; s++ {
		d := make([]int32, m)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if d[u] == -1 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		dist[s] = d
	}
	return dist
}

// bfsFrom fills d (len m, preset to -1) with BFS distances from s and
// returns the number of vertices reached (including s).
func (g *Graph) bfsFrom(s int, d []int32, queue []int32) int {
	for i := range d {
		d[i] = -1
	}
	d[s] = 0
	queue = append(queue[:0], int32(s))
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if d[u] == -1 {
				d[u] = d[v] + 1
				reached++
				queue = append(queue, u)
			}
		}
	}
	return reached
}

// EvaluateSlow computes the metrics with per-source BFS. It exists as an
// independently-coded oracle for property tests of Evaluate.
func (g *Graph) EvaluateSlow() Metrics {
	m := len(g.adj)
	var total, pairs int64
	diam := 0
	connected := true
	for _, s := range g.hostOf {
		if s == -1 {
			connected = false
		}
	}
	d := make([]int32, m)
	queue := make([]int32, 0, m)
	for a := 0; a < m; a++ {
		ka := int64(g.hosts[a])
		if ka == 0 {
			continue
		}
		g.bfsFrom(a, d, queue)
		// Pairs within the same switch: distance 2.
		total += ka * (ka - 1) / 2 * 2
		pairs += ka * (ka - 1) / 2
		if ka >= 2 && diam < 2 {
			diam = 2
		}
		for b := a + 1; b < m; b++ {
			kb := int64(g.hosts[b])
			if kb == 0 {
				continue
			}
			if d[b] < 0 {
				connected = false
				continue
			}
			ell := int(d[b]) + 2
			total += ka * kb * int64(ell)
			pairs += ka * kb
			if ell > diam {
				diam = ell
			}
		}
	}
	return g.finishMetrics(total, pairs, diam, connected)
}

func (g *Graph) finishMetrics(total, reachable int64, diam int, connected bool) Metrics {
	pairs := int64(g.n) * int64(g.n-1) / 2
	met := Metrics{TotalPath: total, Diameter: diam, Connected: connected, ReachablePairs: reachable}
	if pairs > 0 && connected {
		met.HASPL = float64(total) / float64(pairs)
	}
	if !connected {
		met.HASPL = inf
		met.Diameter = -1
	}
	return met
}

const inf = 1e30 // sentinel h-ASPL for disconnected graphs

// Evaluate computes the metrics using bit-parallel BFS (64 sources per
// word). For every host-bearing switch pair (a, b) it accumulates
// k_a * k_b * (d(a,b) + 2) plus 2 * C(k_a, 2) for intra-switch pairs.
func (g *Graph) Evaluate() Metrics {
	m := len(g.adj)
	// Host-bearing switches are the only BFS sources and targets we weight.
	srcs := make([]int32, 0, m)
	var total, pairs, attached int64
	diam := 0
	for s := 0; s < m; s++ {
		k := int64(g.hosts[s])
		if k > 0 {
			srcs = append(srcs, int32(s))
			attached += k
			total += k * (k - 1) // 2 * C(k,2)
			pairs += k * (k - 1) / 2
			if k >= 2 && diam < 2 {
				diam = 2
			}
		}
	}
	allAttached := attached == int64(g.n)
	if len(srcs) == 0 {
		return g.finishMetrics(0, 0, 0, allAttached && g.n <= 1)
	}
	if len(srcs) == 1 {
		// All attached hosts on one switch.
		return g.finishMetrics(total, pairs, diam, allAttached)
	}

	visited := make([]uint64, m)
	front := make([]uint64, m)
	next := make([]uint64, m)
	// pairSum accumulates ordered (source, target) weighted distances; we
	// halve at the end. reachedPairs verifies connectivity;
	// orderedWeighted counts ordered host pairs for ReachablePairs.
	var orderedSum int64
	var reachablePairs, orderedWeighted int64
	wantPairs := int64(len(srcs)) * int64(len(srcs)-1)

	for base := 0; base < len(srcs); base += 64 {
		batch := srcs[base:min(base+64, len(srcs))]
		for i := range visited {
			visited[i] = 0
			front[i] = 0
		}
		for bit, s := range batch {
			visited[s] |= 1 << uint(bit)
			front[s] |= 1 << uint(bit)
		}
		for level := 1; ; level++ {
			for i := range next {
				next[i] = 0
			}
			active := false
			for v := 0; v < m; v++ {
				fv := front[v]
				if fv == 0 {
					continue
				}
				for _, u := range g.adj[v] {
					nu := fv &^ visited[u]
					if nu != 0 {
						next[u] |= nu
					}
				}
			}
			for v := 0; v < m; v++ {
				nv := next[v] &^ visited[v]
				if nv == 0 {
					next[v] = 0
					continue
				}
				next[v] = nv
				visited[v] |= nv
				active = true
				kv := int64(g.hosts[v])
				if kv > 0 {
					// Weight by sum of source host counts present in nv.
					var ks int64
					cnt := int64(0)
					for mask := nv; mask != 0; mask &= mask - 1 {
						bit := trailingZeros(mask)
						ks += int64(g.hosts[batch[bit]])
						cnt++
					}
					orderedSum += kv * ks * int64(level+2)
					reachablePairs += cnt
					orderedWeighted += kv * ks
					if level+2 > diam {
						diam = level + 2
					}
				}
			}
			front, next = next, front
			if !active {
				break
			}
		}
		// Each source reaches itself at distance 0; exclude self pairs.
	}
	// reachablePairs counted ordered (src -> host-bearing target) excluding
	// targets at distance 0 (the source itself) and excluding co-located
	// sources? No: every distinct host-bearing pair (a,b) with a path is
	// counted exactly twice (once per direction), at level d(a,b) >= 1.
	// Pairs with d(a,b) == 0 cannot occur for distinct switches.
	connected := reachablePairs == wantPairs && allAttached
	total += orderedSum / 2
	pairs += orderedWeighted / 2
	return g.finishMetrics(total, pairs, diam, connected)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// HostDistance returns the number of edges on a shortest path between
// hosts a and b, or -1 if unreachable. It panics on out-of-range hosts and
// returns 0 for a == b.
func (g *Graph) HostDistance(a, b int) int {
	if a == b {
		return 0
	}
	sa, sb := g.hostOf[a], g.hostOf[b]
	if sa == -1 || sb == -1 {
		panic(fmt.Sprintf("hsgraph: HostDistance on unattached host (%d,%d)", a, b))
	}
	if sa == sb {
		return 2
	}
	m := len(g.adj)
	d := make([]int32, m)
	queue := make([]int32, 0, m)
	g.bfsFrom(int(sa), d, queue)
	if d[sb] < 0 {
		return -1
	}
	return int(d[sb]) + 2
}

// SingleSourceHostMetrics returns the h-ASPL and eccentricity (in edges)
// from host h to all other hosts. Used by tests of the paper's Lemma 1/2
// constructions. Returns ok=false on disconnection.
func (g *Graph) SingleSourceHostMetrics(h int) (aspl float64, ecc int, ok bool) {
	s := g.hostOf[h]
	if s == -1 {
		panic("hsgraph: unattached host")
	}
	m := len(g.adj)
	d := make([]int32, m)
	queue := make([]int32, 0, m)
	g.bfsFrom(int(s), d, queue)
	var total int64
	count := 0
	ok = true
	for t := 0; t < m; t++ {
		k := int(g.hosts[t])
		if k == 0 {
			continue
		}
		if d[t] < 0 {
			ok = false
			continue
		}
		ell := int(d[t]) + 2
		if t == int(s) {
			// co-located hosts, excluding h itself
			total += int64(2 * (k - 1))
			count += k - 1
			if k > 1 && ecc < 2 {
				ecc = 2
			}
		} else {
			total += int64(ell * k)
			count += k
			if ell > ecc {
				ecc = ell
			}
		}
	}
	if count == 0 {
		return 0, 0, ok
	}
	return float64(total) / float64(count), ecc, ok
}

// RegularHASPLFromSwitchASPL applies the paper's Equation 1: for a
// k-regular host-switch graph with n hosts and m switches whose switch
// graph has ASPL a', the h-ASPL is a'(mn-n)/(mn-m) + 2.
func RegularHASPLFromSwitchASPL(switchASPL float64, n, m int) float64 {
	if m <= 1 {
		return 2
	}
	nm := float64(n) * float64(m)
	return switchASPL*(nm-float64(n))/(nm-float64(m)) + 2
}

// SwitchASPL returns the ASPL and diameter of the switch graph alone
// (all switches, not weighted by hosts). ok is false if disconnected.
func (g *Graph) SwitchASPL() (aspl float64, diameter int, ok bool) {
	m := len(g.adj)
	if m < 2 {
		return 0, 0, true
	}
	var total int64
	var pairs int64
	diam := 0
	ok = true
	d := make([]int32, m)
	queue := make([]int32, 0, m)
	for s := 0; s < m; s++ {
		g.bfsFrom(s, d, queue)
		for t := s + 1; t < m; t++ {
			if d[t] < 0 {
				ok = false
				continue
			}
			total += int64(d[t])
			pairs++
			if int(d[t]) > diam {
				diam = int(d[t])
			}
		}
	}
	if pairs == 0 {
		return 0, 0, ok
	}
	return float64(total) / float64(pairs), diam, ok
}
