package hsgraph

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// Evaluator computes graph metrics with reusable scratch buffers and an
// optional pool of shard workers, so that the millions of evaluations an
// annealing run performs amortize all setup: after the first call on a
// given switch-count, the steady state is allocation-free.
//
// The bit-parallel BFS runs 64 sources per machine word; the Evaluator
// splits the source words into shards and distributes them over a pool of
// persistent worker goroutines. Each worker owns private scratch words and
// accumulates a private partial (path sum, reachable pairs, diameter);
// partials are merged with integer addition and max, so the result is
// bit-for-bit identical to the serial Evaluate for every worker count and
// every scheduling of the shards.
//
// An Evaluator is not safe for concurrent use by multiple goroutines; give
// each searcher its own (the pool inside is private to it). It is not tied
// to one Graph — any graph may be passed, and buffers grow to the largest
// switch count seen. Call Close when done to release the pool goroutines.
type Evaluator struct {
	workers int

	// Connectivity pre-check scratch (Energy fast path).
	dist  []int32
	queue []int32

	srcs   []int32 // host-bearing switches, gathered per call
	shards []evalShard

	// Per-round job state: written by the caller before waking the pool,
	// read-only by workers during the round (the channel operations order
	// the accesses).
	g          *Graph
	chunk      int
	shardCount int
	cursor     atomic.Int64 // next shard index to claim

	wake   chan struct{} // one token per pooled worker per round
	done   chan struct{}
	closed bool
}

// evalShard is one worker's private scratch and partial accumulators.
type evalShard struct {
	visited []uint64
	front   []uint64
	next    []uint64
	total   int64 // ordered weighted path sum over this worker's shards
	reached int64 // ordered reachable (source, target) pairs
	wpairs  int64 // ordered reachable host pairs (weighted by host counts)
	diam    int
	_       [16]byte // separate hot accumulators of adjacent workers
}

// NewEvaluator returns an Evaluator with the given number of shard
// workers. Values below 1 are treated as 1 (fully serial, no pool
// goroutines). Callers wanting hardware-sized pools typically pass
// runtime.GOMAXPROCS(0); larger explicit counts are honoured, which lets
// tests exercise the concurrent merge paths on any machine.
func NewEvaluator(workers int) *Evaluator {
	if workers < 1 {
		workers = 1
	}
	e := &Evaluator{
		workers: workers,
		shards:  make([]evalShard, workers),
	}
	if workers > 1 {
		e.wake = make(chan struct{}, workers-1)
		e.done = make(chan struct{}, workers-1)
		for i := 1; i < workers; i++ {
			go func(i int) {
				// Label the pool goroutine so CPU profiles (orpbench
				// -profile-dir, the -metrics-addr /debug/pprof endpoint)
				// attribute shard time to the evaluation stage per worker.
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
					pprof.Labels("stage", "eval", "worker", strconv.Itoa(i))))
				e.worker(i)
			}(i)
		}
	}
	return e
}

// Workers returns the configured shard worker count.
func (e *Evaluator) Workers() int { return e.workers }

// Close releases the pool goroutines. The Evaluator must not be used
// afterwards. Close is idempotent.
func (e *Evaluator) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.wake != nil {
		close(e.wake)
	}
}

func (e *Evaluator) worker(id int) {
	for range e.wake {
		e.runShards(&e.shards[id])
		e.done <- struct{}{}
	}
}

// Evaluate computes the same Metrics as Graph.Evaluate, sharded over the
// pool. Results are exactly equal (including the partial TotalPath of
// disconnected graphs) for every worker count.
func (e *Evaluator) Evaluate(g *Graph) Metrics {
	total, pairs, diam, allAttached, trivial := e.gather(g)
	if trivial {
		if len(e.srcs) == 0 {
			return g.finishMetrics(0, 0, 0, allAttached && g.n <= 1)
		}
		return g.finishMetrics(total, pairs, diam, allAttached)
	}
	return e.apsp(g, total, pairs, diam, allAttached)
}

// Energy is the annealing hot path: it returns the total host-pair path
// length and whether all hosts are connected. A single plain BFS checks
// connectivity first, so moves that disconnect the switch graph fail in
// O(edges) instead of paying the full all-pairs sweep.
func (e *Evaluator) Energy(g *Graph) (int64, bool) {
	total, pairs, diam, allAttached, trivial := e.gather(g)
	if trivial {
		if len(e.srcs) == 0 {
			return 0, allAttached && g.n <= 1
		}
		return total, allAttached
	}
	if !allAttached || !e.connectedQuick(g, len(e.srcs)) {
		return 0, false
	}
	met := e.apsp(g, total, pairs, diam, allAttached)
	return met.TotalPath, met.Connected
}

// gather collects the host-bearing switches into e.srcs and returns the
// intra-switch contribution. trivial is true when no all-pairs sweep is
// needed (zero or one host-bearing switch). allAttached is false when
// some host has no switch (which disconnects the graph).
func (e *Evaluator) gather(g *Graph) (total, pairs int64, diam int, allAttached, trivial bool) {
	e.srcs = e.srcs[:0]
	var attached int64
	for s := range g.adj {
		k := int64(g.hosts[s])
		if k > 0 {
			e.srcs = append(e.srcs, int32(s))
			attached += k
			total += k * (k - 1) // 2 * C(k,2)
			pairs += k * (k - 1) / 2
			if k >= 2 && diam < 2 {
				diam = 2
			}
		}
	}
	return total, pairs, diam, attached == int64(g.n), len(e.srcs) <= 1
}

// connectedQuick reports whether want host-bearing switches (the total
// count in g) are reachable from the first gathered source, with a single
// serial BFS over reused scratch.
func (e *Evaluator) connectedQuick(g *Graph, want int) bool {
	m := len(g.adj)
	if cap(e.dist) < m {
		e.dist = make([]int32, m)
		e.queue = make([]int32, 0, m)
	}
	seen := e.dist[:m]
	for i := range seen {
		seen[i] = 0
	}
	queue := e.queue[:0]
	start := e.srcs[0]
	seen[start] = 1
	queue = append(queue, start)
	bearing := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.adj[v] {
			if seen[u] == 0 {
				seen[u] = 1
				if g.hosts[u] > 0 {
					bearing++
				}
				queue = append(queue, u)
			}
		}
	}
	e.queue = queue[:0]
	return bearing == want
}

// apsp runs the sharded bit-parallel all-pairs sweep and finishes the
// metrics. total, pairs and diam carry the intra-switch contribution from
// gather.
func (e *Evaluator) apsp(g *Graph, total, pairs int64, diam int, allAttached bool) Metrics {
	n := len(e.srcs)
	orderedSum, reachablePairs, orderedWeighted, sweepDiam := e.runSweep(g)
	if sweepDiam > diam {
		diam = sweepDiam
	}
	// Every distinct reachable host-bearing pair is counted once per
	// direction across all shards; halve the ordered sums and compare the
	// ordered pair count against n(n-1).
	connected := reachablePairs == int64(n)*int64(n-1) && allAttached
	total += orderedSum / 2
	pairs += orderedWeighted / 2
	return g.finishMetrics(total, pairs, diam, connected)
}

// runSweep runs the sharded bit-parallel sweep from the sources currently
// in e.srcs and merges the per-shard partials: the ordered weighted path
// sum, the ordered reachable (source, target) pair count, the ordered
// host-pair count and the sweep diameter. The OrbitEvaluator reuses it
// with orbit-representative sources only.
func (e *Evaluator) runSweep(g *Graph) (orderedSum, reachablePairs, orderedWeighted int64, diam int) {
	n := len(e.srcs)
	// Chunks hold at most 64 sources (one machine word); when the pool is
	// wider than the word count, shrink chunks so every worker gets a shard.
	chunk := (n + e.workers - 1) / e.workers
	if chunk > 64 {
		chunk = 64
	}
	if chunk < 1 {
		chunk = 1
	}
	e.g = g
	e.chunk = chunk
	e.shardCount = (n + chunk - 1) / chunk
	e.cursor.Store(0)
	for i := range e.shards {
		e.shards[i].total = 0
		e.shards[i].reached = 0
		e.shards[i].wpairs = 0
		e.shards[i].diam = 0
	}
	if e.workers == 1 || e.shardCount == 1 {
		e.runShards(&e.shards[0])
	} else {
		for i := 1; i < e.workers; i++ {
			e.wake <- struct{}{}
		}
		e.runShards(&e.shards[0])
		for i := 1; i < e.workers; i++ {
			<-e.done
		}
	}
	e.g = nil
	for i := range e.shards {
		orderedSum += e.shards[i].total
		reachablePairs += e.shards[i].reached
		orderedWeighted += e.shards[i].wpairs
		if e.shards[i].diam > diam {
			diam = e.shards[i].diam
		}
	}
	return orderedSum, reachablePairs, orderedWeighted, diam
}

// runShards claims shards off the shared cursor until none remain,
// accumulating into sh only.
func (e *Evaluator) runShards(sh *evalShard) {
	g := e.g
	m := len(g.adj)
	if cap(sh.visited) < m {
		sh.visited = make([]uint64, m)
		sh.front = make([]uint64, m)
		sh.next = make([]uint64, m)
	}
	for {
		idx := int(e.cursor.Add(1)) - 1
		if idx >= e.shardCount {
			return
		}
		lo := idx * e.chunk
		hi := lo + e.chunk
		if hi > len(e.srcs) {
			hi = len(e.srcs)
		}
		e.sweepBatch(sh, e.srcs[lo:hi])
	}
}

// sweepBatch runs one bit-parallel BFS with the batch sources in the word
// lanes, weighting every newly reached host-bearing switch by the host
// counts of the sources that reached it (the same recurrence as
// Graph.Evaluate, over private scratch).
func (e *Evaluator) sweepBatch(sh *evalShard, batch []int32) {
	g := e.g
	m := len(g.adj)
	visited := sh.visited[:m]
	front := sh.front[:m]
	next := sh.next[:m]
	for i := range visited {
		visited[i] = 0
		front[i] = 0
	}
	for bit, s := range batch {
		visited[s] |= 1 << uint(bit)
		front[s] |= 1 << uint(bit)
	}
	for level := 1; ; level++ {
		for i := range next {
			next[i] = 0
		}
		active := false
		for v := 0; v < m; v++ {
			fv := front[v]
			if fv == 0 {
				continue
			}
			for _, u := range g.adj[v] {
				nu := fv &^ visited[u]
				if nu != 0 {
					next[u] |= nu
				}
			}
		}
		for v := 0; v < m; v++ {
			nv := next[v] &^ visited[v]
			if nv == 0 {
				next[v] = 0
				continue
			}
			next[v] = nv
			visited[v] |= nv
			active = true
			kv := int64(g.hosts[v])
			if kv > 0 {
				var ks, cnt int64
				for mask := nv; mask != 0; mask &= mask - 1 {
					ks += int64(g.hosts[batch[bits.TrailingZeros64(mask)]])
					cnt++
				}
				sh.total += kv * ks * int64(level+2)
				sh.reached += cnt
				sh.wpairs += kv * ks
				if level+2 > sh.diam {
					sh.diam = level + 2
				}
			}
		}
		front, next = next, front
		if !active {
			break
		}
	}
}

// EvaluateParallel computes the metrics with the given number of shard
// workers. It is the one-shot convenience over Evaluator: the pool is
// built and torn down per call, so callers on a hot path should hold an
// Evaluator instead. The result is exactly Evaluate's for any workers.
func (g *Graph) EvaluateParallel(workers int) Metrics {
	e := NewEvaluator(workers)
	defer e.Close()
	return e.Evaluate(g)
}
