package hsgraph

import (
	"testing"

	"repro/internal/rng"
)

// sameStorage compares the full order-sensitive observable surface of two
// graphs: dimensions, edge list order, adjacency list order, host list
// order.
func sameStorage(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Order() != b.Order() || a.Switches() != b.Switches() || a.Radix() != b.Radix() {
		t.Fatal("dimensions differ")
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumEdges(); i++ {
		au, av := a.Edge(i)
		bu, bv := b.Edge(i)
		if au != bu || av != bv {
			t.Fatalf("edge %d differs: {%d,%d} vs {%d,%d}", i, au, av, bu, bv)
		}
	}
	for s := 0; s < a.Switches(); s++ {
		an, bn := a.Neighbors(s), b.Neighbors(s)
		if len(an) != len(bn) {
			t.Fatalf("switch %d neighbour counts differ", s)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("switch %d neighbour order differs at %d: %d vs %d", s, i, an[i], bn[i])
			}
		}
		ah, bh := a.HostsOn(s), b.HostsOn(s)
		if len(ah) != len(bh) {
			t.Fatalf("switch %d host counts differ", s)
		}
		for i := range ah {
			if ah[i] != bh[i] {
				t.Fatalf("switch %d host order differs at %d: %d vs %d", s, i, ah[i], bh[i])
			}
		}
	}
}

// mutate scrambles the internal storage order the way an annealing run
// does: random disconnect/reconnect pairs and host moves, ending in a
// graph whose edge, adjacency and host lists are far from insertion
// order.
func mutate(t *testing.T, g *Graph, rnd *rng.Rand, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		if ne := g.NumEdges(); ne >= 2 {
			a, b := g.Edge(rnd.Intn(ne))
			c, d := g.Edge(rnd.Intn(ne))
			if a != c && a != d && b != c && b != d && !g.HasEdge(a, d) && !g.HasEdge(b, c) {
				for _, err := range []error{
					g.Disconnect(a, b), g.Disconnect(c, d),
					g.Connect(a, d), g.Connect(b, c),
				} {
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		h := rnd.Intn(g.Order())
		to := rnd.Intn(g.Switches())
		from := g.SwitchOf(h)
		if to != from && g.Degree(to) < g.Radix() {
			if err := g.MoveHost(h, to); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestStateRoundTripPreservesOrder(t *testing.T) {
	rnd := rng.New(11)
	g, err := RandomConnected(48, 12, 8, rnd)
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, g, rnd, 500)

	restored, err := UnmarshalState(g.MarshalState())
	if err != nil {
		t.Fatal(err)
	}
	sameStorage(t, g, restored)
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}

	// The restored graph must keep behaving identically under further
	// mutation (its bookkeeping maps were rebuilt, not copied).
	r1, r2 := rng.New(5), rng.New(5)
	mutate(t, g, r1, 100)
	mutate(t, restored, r2, 100)
	sameStorage(t, g, restored)
}

func TestUnmarshalStateRejectsCorruption(t *testing.T) {
	g, err := RandomConnected(16, 6, 6, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	blob := g.MarshalState()
	if _, err := UnmarshalState(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalState(blob[:n]); err == nil {
			t.Fatalf("accepted %d/%d-byte prefix", n, len(blob))
		}
	}
}

// FuzzUnmarshalState: arbitrary bytes must produce a valid graph or an
// error — never a panic, never a graph violating the package invariants.
func FuzzUnmarshalState(f *testing.F) {
	g, err := RandomConnected(16, 6, 6, rng.New(2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g.MarshalState())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalState(data)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
	})
}
