package hsgraph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestWriteDOT(t *testing.T) {
	g, err := Ring(8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph hsgraph {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT graph")
	}
	if strings.Count(out, " -- ") != 8+4 { // 8 host links + 4 ring links
		t.Fatalf("edge lines = %d, want 12", strings.Count(out, " -- "))
	}
	var noHosts bytes.Buffer
	if err := WriteDOT(&noHosts, g, false); err != nil {
		t.Fatal(err)
	}
	if strings.Count(noHosts.String(), " -- ") != 4 {
		t.Fatal("host suppression failed")
	}
}

func TestDegreeStats(t *testing.T) {
	g, err := Star(10, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Degrees()
	// Hub: 2 hosts + 4 links = 6; leaves: 2 hosts + 1 link = 3.
	if st.MaxDegree != 6 || st.MinDegree != 3 {
		t.Fatalf("degree stats %+v", st)
	}
	if st.MaxSwitchDg != 4 || st.MinSwitchDg != 1 {
		t.Fatalf("switch degree stats %+v", st)
	}
	wantFree := 5*8 - (6 + 3*4)
	if st.FreePorts != wantFree {
		t.Fatalf("free ports %d, want %d", st.FreePorts, wantFree)
	}
}

func TestTrimUnused(t *testing.T) {
	// Path 0-1-2 with hosts at the ends plus a pendant switch 3 off the
	// middle: 3 is unused and must be removed; 1 (interior) must stay.
	g := New(2, 4, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {1, 3}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	out := TrimUnused(g)
	if out.Switches() != 3 {
		t.Fatalf("trimmed to %d switches, want 3", out.Switches())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Evaluate().TotalPath != g.Evaluate().TotalPath {
		t.Fatal("trimming changed host metrics")
	}
}

func TestTrimUnusedKeepsEverythingWhenAllUsed(t *testing.T) {
	g, err := RandomConnected(24, 8, 7, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	out := TrimUnused(g)
	if out.Switches() > g.Switches() {
		t.Fatal("trim added switches")
	}
	if out.Evaluate().TotalPath != g.Evaluate().TotalPath {
		t.Fatal("metrics changed")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
