package hsgraph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the host-switch graph in Graphviz DOT format: switches
// as boxes, hosts as circles (matching the paper's figures). Host nodes
// can be suppressed for large graphs.
func WriteDOT(w io.Writer, g *Graph, includeHosts bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph hsgraph {\n")
	fmt.Fprintf(bw, "  // n=%d m=%d r=%d\n", g.Order(), g.Switches(), g.Radix())
	fmt.Fprintf(bw, "  node [shape=box, style=filled, fillcolor=lightblue];\n")
	for s := 0; s < g.Switches(); s++ {
		fmt.Fprintf(bw, "  s%d [label=\"s%d (%d hosts)\"];\n", s, s, g.HostCount(s))
	}
	if includeHosts {
		fmt.Fprintf(bw, "  node [shape=circle, style=filled, fillcolor=white];\n")
		for h := 0; h < g.Order(); h++ {
			if g.SwitchOf(h) >= 0 {
				fmt.Fprintf(bw, "  h%d;\n  h%d -- s%d;\n", h, h, g.SwitchOf(h))
			}
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		fmt.Fprintf(bw, "  s%d -- s%d;\n", a, b)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// DegreeStats summarises the switch-port usage of a graph.
type DegreeStats struct {
	MinDegree   int // total degree (hosts + links)
	MaxDegree   int
	MeanDegree  float64
	FreePorts   int // unused ports across all switches
	MinSwitchDg int // switch-link degree only
	MaxSwitchDg int
}

// Degrees computes port-usage statistics.
func (g *Graph) Degrees() DegreeStats {
	m := g.Switches()
	st := DegreeStats{MinDegree: g.Radix() + 1, MinSwitchDg: g.Radix() + 1}
	total := 0
	for s := 0; s < m; s++ {
		d := g.Degree(s)
		sd := g.SwitchDegree(s)
		total += d
		st.FreePorts += g.Radix() - d
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if sd < st.MinSwitchDg {
			st.MinSwitchDg = sd
		}
		if sd > st.MaxSwitchDg {
			st.MaxSwitchDg = sd
		}
	}
	if m > 0 {
		st.MeanDegree = float64(total) / float64(m)
	}
	return st
}

// TrimUnused returns a copy of g without switches that carry no hosts and
// lie on no host-to-host shortest path (the "otiose" switches of the
// paper's Fig. 8 discussion). Switch indices are renumbered densely; host
// ids are preserved.
func TrimUnused(g *Graph) *Graph {
	m := g.Switches()
	used := make([]bool, m)
	for s := 0; s < m; s++ {
		if g.HostCount(s) > 0 {
			used[s] = true
		}
	}
	dist := g.SwitchDistances()
	var bearing []int
	for s := 0; s < m; s++ {
		if used[s] {
			bearing = append(bearing, s)
		}
	}
	for _, a := range bearing {
		for _, b := range bearing {
			if a >= b || dist[a][b] < 0 {
				continue
			}
			for v := 0; v < m; v++ {
				if !used[v] && dist[a][v] >= 0 && dist[v][b] >= 0 &&
					dist[a][v]+dist[v][b] == dist[a][b] {
					used[v] = true
				}
			}
		}
	}
	remap := make([]int32, m)
	kept := 0
	for s := 0; s < m; s++ {
		if used[s] {
			remap[s] = int32(kept)
			kept++
		} else {
			remap[s] = -1
		}
	}
	out := New(g.Order(), kept, g.Radix())
	for h := 0; h < g.Order(); h++ {
		if s := g.SwitchOf(h); s >= 0 {
			if err := out.AttachHost(h, int(remap[s])); err != nil {
				panic("hsgraph: TrimUnused reattach failed: " + err.Error())
			}
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if remap[a] >= 0 && remap[b] >= 0 {
			if err := out.Connect(int(remap[a]), int(remap[b])); err != nil {
				panic("hsgraph: TrimUnused reconnect failed: " + err.Error())
			}
		}
	}
	return out
}
