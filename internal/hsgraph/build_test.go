package hsgraph

import (
	"testing"

	"repro/internal/rng"
)

func TestDistributeHostsEvenly(t *testing.T) {
	g := New(10, 4, 8)
	if err := DistributeHostsEvenly(g); err != nil {
		t.Fatal(err)
	}
	counts := []int{g.HostCount(0), g.HostCount(1), g.HostCount(2), g.HostCount(3)}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestRandomConnectedSaturates(t *testing.T) {
	rnd := rng.New(31)
	g, err := RandomConnected(20, 8, 6, rnd)
	if err != nil {
		t.Fatal(err)
	}
	// No two distinct non-adjacent switches may both have free ports.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if g.Degree(a) < 6 && g.Degree(b) < 6 && !g.HasEdge(a, b) {
				t.Fatalf("unsaturated pair (%d,%d)", a, b)
			}
		}
	}
}

func TestRandomConnectedInfeasible(t *testing.T) {
	if _, err := RandomConnected(100, 3, 5, rng.New(1)); err == nil {
		t.Fatal("infeasible parameters accepted")
	}
	if _, err := RandomConnected(10, 1, 5, rng.New(1)); err == nil {
		t.Fatal("10 hosts on one radix-5 switch accepted")
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	g1, err := RandomConnected(30, 10, 7, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomConnected(30, 10, 7, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g1, g2) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRandomRegular(t *testing.T) {
	rnd := rng.New(4)
	g, err := RandomRegular(24, 8, 7, 4, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if g.SwitchDegree(s) != 4 {
			t.Fatalf("switch %d degree %d, want 4", s, g.SwitchDegree(s))
		}
		if g.HostCount(s) != 3 {
			t.Fatalf("switch %d hosts %d, want 3", s, g.HostCount(s))
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	rnd := rng.New(4)
	cases := []struct{ n, m, r, k int }{
		{25, 8, 7, 4},  // m does not divide n
		{24, 8, 6, 4},  // n/m + k > r
		{24, 7, 9, 3},  // m*k odd
		{24, 8, 20, 8}, // k >= m
		{24, 8, 7, 0},  // degree 0
	}
	for _, c := range cases {
		if _, err := RandomRegular(c.n, c.m, c.r, c.k, rnd); err == nil {
			t.Errorf("RandomRegular(%+v) accepted", c)
		}
	}
}

func TestFixtureBuilders(t *testing.T) {
	ring, err := Ring(12, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Validate(); err != nil {
		t.Fatalf("ring: %v", err)
	}
	if ring.NumEdges() != 6 {
		t.Fatalf("ring edges = %d", ring.NumEdges())
	}
	path, err := Path(12, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := path.Validate(); err != nil {
		t.Fatalf("path: %v", err)
	}
	if path.NumEdges() != 5 {
		t.Fatalf("path edges = %d", path.NumEdges())
	}
	star, err := Star(12, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := star.Validate(); err != nil {
		t.Fatalf("star: %v", err)
	}
	if star.SwitchDegree(0) != 5 {
		t.Fatalf("star hub degree = %d", star.SwitchDegree(0))
	}
	// Degenerate sizes.
	if _, err := Ring(4, 2, 4); err != nil {
		t.Fatalf("2-ring: %v", err)
	}
	if _, err := Ring(3, 1, 4); err != nil {
		t.Fatalf("1-ring: %v", err)
	}
}
