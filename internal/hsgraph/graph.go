// Package hsgraph implements the host-switch graph model of Yasudo et al.,
// "Order/Radix Problem: Towards Low End-to-End Latency Interconnection
// Networks" (ICPP 2017).
//
// A host-switch graph G = (H, S, E) has n host vertices of degree exactly 1,
// m switch vertices of degree at most r (the radix), switch-switch edges and
// host-switch edges. The central metric is the host-to-host average shortest
// path length (h-ASPL): because hosts have degree 1, the distance between
// hosts on switches a and b is d(a, b) + 2, so all metrics reduce to
// weighted all-pairs shortest paths over the switch graph.
package hsgraph

import (
	"errors"
	"fmt"
)

// Graph is a mutable host-switch graph. The zero value is not usable;
// construct with New. Graph is not safe for concurrent mutation; concurrent
// read-only metric evaluation is safe.
type Graph struct {
	n int // number of hosts (order)
	r int // ports per switch (radix)

	hostOf  []int32   // hostOf[h] = switch of host h, or -1 if unattached
	adj     [][]int32 // adj[s] = neighbouring switches of switch s
	hosts   []int32   // hosts[s] = number of hosts attached to switch s
	hostsAt [][]int32 // hostsAt[s] = hosts attached to switch s (unordered)
	hostPos []int32   // hostPos[h] = index of h within hostsAt[hostOf[h]]
	edges   [][2]int32
	// edgePos[a] maps neighbour b -> index in edges for a < b lookups;
	// we instead locate edges by scanning adj (deg <= r is small) and keep
	// edge list indices via posInList.
	posInList map[[2]int32]int32

	// Edge-mutation log for the incremental evaluator (see incremental.go).
	// While opLogOn, Connect/Disconnect append the applied operation so a
	// consumer can derive the net edge diff since its last sync without
	// rescanning the graph. The log is bounded: past maxOpLog pending
	// entries opOverflow is set and the consumer falls back to a full
	// rebuild. opEpoch identifies the consumer that armed the log, so a
	// second consumer attaching to the same graph invalidates the first
	// instead of silently sharing (and losing) entries.
	oplog      []edgeOp
	opLogOn    bool
	opOverflow bool
	opEpoch    uint64
}

// edgeOp is one logged switch-edge mutation.
type edgeOp struct {
	add  bool
	a, b int32
}

// maxOpLog bounds the pending operation log. An annealing move touches at
// most a handful of edges between evaluations; thousands of pending ops
// mean nobody is consuming the log, and a full rebuild is cheaper than an
// unbounded replay anyway.
const maxOpLog = 1 << 14

// startOpLog arms (or re-arms) the edge-mutation log and returns the new
// epoch. Any previous consumer's pending entries are discarded.
func (g *Graph) startOpLog() uint64 {
	g.opLogOn = true
	g.oplog = g.oplog[:0]
	g.opOverflow = false
	g.opEpoch++
	return g.opEpoch
}

// logEdgeOp appends one mutation to the armed log, tripping the overflow
// flag instead of growing without bound.
func (g *Graph) logEdgeOp(add bool, a, b int32) {
	if !g.opLogOn || g.opOverflow {
		return
	}
	if len(g.oplog) >= maxOpLog {
		g.opOverflow = true
		g.oplog = g.oplog[:0]
		return
	}
	g.oplog = append(g.oplog, edgeOp{add: add, a: a, b: b})
}

// New returns an empty host-switch graph with n hosts (all unattached),
// m switches and radix r. It panics if the parameters are senseless;
// callers constructing graphs from untrusted input should validate first.
func New(n, m, r int) *Graph {
	if n < 1 || m < 1 || r < 1 {
		panic(fmt.Sprintf("hsgraph: invalid parameters n=%d m=%d r=%d", n, m, r))
	}
	g := &Graph{
		n:         n,
		r:         r,
		hostOf:    make([]int32, n),
		adj:       make([][]int32, m),
		hosts:     make([]int32, m),
		hostsAt:   make([][]int32, m),
		hostPos:   make([]int32, n),
		posInList: make(map[[2]int32]int32),
	}
	for h := range g.hostOf {
		g.hostOf[h] = -1
		g.hostPos[h] = -1
	}
	return g
}

// Order returns n, the number of hosts.
func (g *Graph) Order() int { return g.n }

// Switches returns m, the number of switches.
func (g *Graph) Switches() int { return len(g.adj) }

// Radix returns r, the port budget of each switch.
func (g *Graph) Radix() int { return g.r }

// Degree returns the total degree (switch neighbours + attached hosts) of
// switch s.
func (g *Graph) Degree(s int) int { return len(g.adj[s]) + int(g.hosts[s]) }

// SwitchDegree returns the number of switch neighbours of switch s.
func (g *Graph) SwitchDegree(s int) int { return len(g.adj[s]) }

// HostCount returns k_s, the number of hosts attached to switch s.
func (g *Graph) HostCount(s int) int { return int(g.hosts[s]) }

// SwitchOf returns the switch of host h, or -1 if h is unattached.
func (g *Graph) SwitchOf(h int) int { return int(g.hostOf[h]) }

// Neighbors returns the switch neighbours of s. The returned slice is the
// graph's internal storage; callers must not modify it.
func (g *Graph) Neighbors(s int) []int32 { return g.adj[s] }

// NumEdges returns the number of switch-switch edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the i-th switch-switch edge. The edge order is unspecified
// but deterministic for a given mutation history.
func (g *Graph) Edge(i int) (a, b int) {
	e := g.edges[i]
	return int(e[0]), int(e[1])
}

func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// HasEdge reports whether switches a and b are adjacent.
func (g *Graph) HasEdge(a, b int) bool {
	_, ok := g.posInList[edgeKey(int32(a), int32(b))]
	return ok
}

// AttachHost attaches host h to switch s. It returns an error if h is
// already attached or s has no free port.
func (g *Graph) AttachHost(h, s int) error {
	if h < 0 || h >= g.n {
		return fmt.Errorf("hsgraph: host %d out of range", h)
	}
	if s < 0 || s >= len(g.adj) {
		return fmt.Errorf("hsgraph: switch %d out of range", s)
	}
	if g.hostOf[h] != -1 {
		return fmt.Errorf("hsgraph: host %d already attached to switch %d", h, g.hostOf[h])
	}
	if g.Degree(s) >= g.r {
		return fmt.Errorf("hsgraph: switch %d has no free port (radix %d)", s, g.r)
	}
	g.hostOf[h] = int32(s)
	g.hosts[s]++
	g.hostPos[h] = int32(len(g.hostsAt[s]))
	g.hostsAt[s] = append(g.hostsAt[s], int32(h))
	return nil
}

// HostsOn returns the hosts attached to switch s. The returned slice is
// internal storage in unspecified order; callers must not modify it.
func (g *Graph) HostsOn(s int) []int32 { return g.hostsAt[s] }

// AnyHostOn returns some host attached to switch s, or -1 if none.
func (g *Graph) AnyHostOn(s int) int {
	if len(g.hostsAt[s]) == 0 {
		return -1
	}
	return int(g.hostsAt[s][0])
}

// DetachHost detaches host h from its switch. It returns an error if h is
// not attached.
func (g *Graph) DetachHost(h int) error {
	if h < 0 || h >= g.n {
		return fmt.Errorf("hsgraph: host %d out of range", h)
	}
	s := g.hostOf[h]
	if s == -1 {
		return fmt.Errorf("hsgraph: host %d is not attached", h)
	}
	g.hostOf[h] = -1
	g.hosts[s]--
	// Swap-remove h from hostsAt[s], updating the moved host's position.
	list := g.hostsAt[s]
	pos := g.hostPos[h]
	last := int32(len(list) - 1)
	if pos != last {
		moved := list[last]
		list[pos] = moved
		g.hostPos[moved] = pos
	}
	g.hostsAt[s] = list[:last]
	g.hostPos[h] = -1
	return nil
}

// MoveHost reattaches host h to switch to. It is equivalent to
// DetachHost+AttachHost but restores the original attachment on failure.
func (g *Graph) MoveHost(h, to int) error {
	from := g.SwitchOf(h)
	if from == -1 {
		return fmt.Errorf("hsgraph: host %d is not attached", h)
	}
	if err := g.DetachHost(h); err != nil {
		return err
	}
	if err := g.AttachHost(h, to); err != nil {
		if e2 := g.AttachHost(h, from); e2 != nil {
			panic("hsgraph: MoveHost could not restore attachment: " + e2.Error())
		}
		return err
	}
	return nil
}

// Connect adds a switch-switch edge {a, b}. It returns an error on
// self-loops, duplicate edges, or exhausted ports.
func (g *Graph) Connect(a, b int) error {
	if a == b {
		return fmt.Errorf("hsgraph: self-loop on switch %d", a)
	}
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		return fmt.Errorf("hsgraph: switch pair (%d,%d) out of range", a, b)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("hsgraph: edge {%d,%d} already exists", a, b)
	}
	if g.Degree(a) >= g.r {
		return fmt.Errorf("hsgraph: switch %d has no free port", a)
	}
	if g.Degree(b) >= g.r {
		return fmt.Errorf("hsgraph: switch %d has no free port", b)
	}
	key := edgeKey(int32(a), int32(b))
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
	g.posInList[key] = int32(len(g.edges))
	g.edges = append(g.edges, key)
	g.logEdgeOp(true, key[0], key[1])
	return nil
}

// Disconnect removes the switch-switch edge {a, b}. It returns an error if
// the edge does not exist.
func (g *Graph) Disconnect(a, b int) error {
	key := edgeKey(int32(a), int32(b))
	pos, ok := g.posInList[key]
	if !ok {
		return fmt.Errorf("hsgraph: edge {%d,%d} does not exist", a, b)
	}
	removeNeighbor(&g.adj[a], int32(b))
	removeNeighbor(&g.adj[b], int32(a))
	last := int32(len(g.edges) - 1)
	if pos != last {
		moved := g.edges[last]
		g.edges[pos] = moved
		g.posInList[moved] = pos
	}
	g.edges = g.edges[:last]
	delete(g.posInList, key)
	g.logEdgeOp(false, key[0], key[1])
	return nil
}

func removeNeighbor(adj *[]int32, v int32) {
	a := *adj
	for i, u := range a {
		if u == v {
			a[i] = a[len(a)-1]
			*adj = a[:len(a)-1]
			return
		}
	}
	panic("hsgraph: adjacency list inconsistent with edge set")
}

// Clone returns a deep copy of g. The edge-mutation log is consumer state,
// not graph state, and is not copied: clones start with logging disarmed.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:         g.n,
		r:         g.r,
		hostOf:    append([]int32(nil), g.hostOf...),
		adj:       make([][]int32, len(g.adj)),
		hosts:     append([]int32(nil), g.hosts...),
		hostsAt:   make([][]int32, len(g.hostsAt)),
		hostPos:   append([]int32(nil), g.hostPos...),
		edges:     append([][2]int32(nil), g.edges...),
		posInList: make(map[[2]int32]int32, len(g.posInList)),
	}
	for s, ns := range g.adj {
		c.adj[s] = append([]int32(nil), ns...)
	}
	for s, hs := range g.hostsAt {
		c.hostsAt[s] = append([]int32(nil), hs...)
	}
	for k, v := range g.posInList {
		c.posInList[k] = v
	}
	return c
}

// ErrNotConnected is returned by validators and metrics when some pair of
// hosts has no connecting path.
var ErrNotConnected = errors.New("hsgraph: graph does not connect all hosts")

// Validate checks structural invariants: every host attached exactly once,
// every switch within its port budget, adjacency symmetric and loop-free,
// and the host-bearing part of the switch graph connected. Redundant
// (unused) switches are permitted — the paper's Fig. 8 graphs contain them —
// but switches must not exceed radix.
func (g *Graph) Validate() error {
	counted := make([]int32, len(g.adj))
	for h, s := range g.hostOf {
		if s == -1 {
			return fmt.Errorf("hsgraph: host %d unattached", h)
		}
		if int(s) >= len(g.adj) {
			return fmt.Errorf("hsgraph: host %d attached to nonexistent switch %d", h, s)
		}
		counted[s]++
	}
	for s := range g.adj {
		if counted[s] != g.hosts[s] {
			return fmt.Errorf("hsgraph: switch %d host count %d inconsistent (actual %d)", s, g.hosts[s], counted[s])
		}
		if int32(len(g.hostsAt[s])) != g.hosts[s] {
			return fmt.Errorf("hsgraph: switch %d host index has %d entries, count says %d", s, len(g.hostsAt[s]), g.hosts[s])
		}
		for i, h := range g.hostsAt[s] {
			if g.hostOf[h] != int32(s) || g.hostPos[h] != int32(i) {
				return fmt.Errorf("hsgraph: host index corrupt at switch %d entry %d (host %d)", s, i, h)
			}
		}
		if g.Degree(s) > g.r {
			return fmt.Errorf("hsgraph: switch %d degree %d exceeds radix %d", s, g.Degree(s), g.r)
		}
		seen := map[int32]bool{}
		for _, t := range g.adj[s] {
			if int(t) == s {
				return fmt.Errorf("hsgraph: self-loop on switch %d", s)
			}
			if seen[t] {
				return fmt.Errorf("hsgraph: duplicate edge {%d,%d}", s, t)
			}
			seen[t] = true
			if !g.HasEdge(s, int(t)) {
				return fmt.Errorf("hsgraph: adjacency and edge set disagree on {%d,%d}", s, t)
			}
		}
	}
	if !g.HostsConnected() {
		return ErrNotConnected
	}
	return nil
}

// HostsConnected reports whether every pair of hosts is joined by a path.
// Switches with no hosts need not be reachable.
func (g *Graph) HostsConnected() bool {
	if g.n == 0 {
		return true
	}
	start := -1
	total := 0
	for s := range g.adj {
		if g.hosts[s] > 0 {
			total++
			if start == -1 {
				start = s
			}
		}
	}
	for _, s := range g.hostOf {
		if s == -1 {
			return false
		}
	}
	if start == -1 {
		return false
	}
	seen := make([]bool, len(g.adj))
	queue := []int32{int32(start)}
	seen[start] = true
	reached := 1 // start is host-bearing by construction
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				if g.hosts[u] > 0 {
					reached++
				}
				queue = append(queue, u)
			}
		}
	}
	return reached == total
}

// HostDistribution returns a histogram hist[k] = number of switches with
// exactly k attached hosts, for k in [0, r].
func (g *Graph) HostDistribution() []int {
	hist := make([]int, g.r+1)
	for _, k := range g.hosts {
		hist[k]++
	}
	return hist
}

// UsedSwitches returns the number of switches that lie on at least one
// host-to-host shortest path. A switch is "used" if it carries a host or is
// an interior vertex of some shortest path between host-bearing switches.
func (g *Graph) UsedSwitches() int {
	m := len(g.adj)
	used := make([]bool, m)
	for s := 0; s < m; s++ {
		if g.hosts[s] > 0 {
			used[s] = true
		}
	}
	// A switch v is interior to a shortest a->b path iff
	// d(a,v) + d(v,b) == d(a,b). Compute all-pairs distances once.
	dist := g.SwitchDistances()
	bearing := []int{}
	for s := 0; s < m; s++ {
		if g.hosts[s] > 0 {
			bearing = append(bearing, s)
		}
	}
	for _, a := range bearing {
		for _, b := range bearing {
			if a >= b || dist[a][b] < 0 {
				continue
			}
			for v := 0; v < m; v++ {
				if used[v] || dist[a][v] < 0 || dist[v][b] < 0 {
					continue
				}
				if dist[a][v]+dist[v][b] == dist[a][b] {
					used[v] = true
				}
			}
		}
	}
	count := 0
	for _, u := range used {
		if u {
			count++
		}
	}
	return count
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("hsgraph(n=%d m=%d r=%d edges=%d)", g.n, len(g.adj), g.r, len(g.edges))
}
