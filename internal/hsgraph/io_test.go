package hsgraph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rnd := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 6 + rnd.Intn(40)
		m := 2 + rnd.Intn(10)
		r := 5 + rnd.Intn(10)
		if !Feasible(n, m, r) {
			continue
		}
		g, err := RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v\n", err)
		}
		if !Equal(g, got) {
			t.Fatalf("round trip changed graph (trial %d)", trial)
		}
	}
}

func TestWriteIsCanonical(t *testing.T) {
	// Two structurally equal graphs built in different edge orders must
	// serialise identically.
	build := func(order [][2]int) *Graph {
		g := New(2, 3, 4)
		if err := g.AttachHost(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.AttachHost(1, 2); err != nil {
			t.Fatal(err)
		}
		for _, e := range order {
			if err := g.Connect(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a := build([][2]int{{0, 1}, {1, 2}, {0, 2}})
	b := build([][2]int{{2, 0}, {2, 1}, {1, 0}})
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatalf("serialisations differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      "host 0 0\n",
		"double header":  "hsgraph 2 2 3\nhsgraph 2 2 3\n",
		"bad header":     "hsgraph 2 2\n",
		"negative":       "hsgraph -1 2 3\n",
		"unknown verb":   "hsgraph 2 2 3\nfrob 1 2\n",
		"host range":     "hsgraph 2 2 3\nhost 5 0\n",
		"switch range":   "hsgraph 2 2 3\nhost 0 9\n",
		"duplicate host": "hsgraph 2 2 3\nhost 0 0\nhost 0 1\n",
		"self loop":      "hsgraph 2 2 3\nlink 1 1\n",
		"duplicate link": "hsgraph 2 2 3\nlink 0 1\nlink 1 0\n",
		"radix overflow": "hsgraph 3 2 2\nhost 0 0\nhost 1 0\nhost 2 1\nlink 0 1\n",
		"garbage host":   "hsgraph 2 2 3\nhost x 0\n",
		"garbage link":   "hsgraph 2 2 3\nlink 0 y\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nhsgraph 2 2 3\n  \nhost 0 0\nhost 1 1\n# another\nlink 0 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.HostDistance(0, 1) != 3 {
		t.Fatal("parsed graph has wrong structure")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	g1, err := Ring(8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	if !Equal(g1, g2) {
		t.Fatal("clones unequal")
	}
	if err := g2.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect(0, 2); err != nil {
		t.Fatal(err)
	}
	if Equal(g1, g2) {
		t.Fatal("different edge sets reported equal")
	}
	g3 := g1.Clone()
	if err := g3.MoveHost(0, 1); err != nil {
		t.Fatal(err)
	}
	if Equal(g1, g3) {
		t.Fatal("different attachments reported equal")
	}
}

// FuzzReadEdgeList fuzzes the Graph Golf-style edge-list parser (the
// repository's host-switch-aware text format) against two failure modes:
// crashes (panics, unbounded allocation from hostile headers) and silent
// acceptance of invalid graphs — anything the parser lets through must
// either satisfy the full structural Validate or be flagged by it, and
// every accepted-and-valid graph must round-trip through the canonical
// writer unchanged.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"hsgraph 2 2 3\nhost 0 0\nhost 1 1\nlink 0 1\n",
		"# comment\n\nhsgraph 4 2 5\nhost 0 0\nhost 1 0\nhost 2 1\nhost 3 1\nlink 0 1\n",
		"hsgraph 1 1 1\nhost 0 0\n",
		"hsgraph 3 3 4\nhost 0 0\nhost 1 1\nhost 2 2\n", // disconnected
		"hsgraph 2 2 3\nhost 0 0\n",                     // host 1 unattached
		"hsgraph 999999999 999999999 5\n",               // hostile header
		"host 0 0\n",
		"hsgraph 2 2 3\nhsgraph 2 2 3\n",
		"hsgraph 2 2\n",
		"hsgraph -1 2 3\n",
		"hsgraph 2 2 3\nfrob 1 2\n",
		"hsgraph 2 2 3\nhost 5 0\n",
		"hsgraph 2 2 3\nlink 1 1\n",
		"hsgraph 2 2 3\nlink 0 1\nlink 1 0\n",
		"hsgraph 3 2 2\nhost 0 0\nhost 1 0\nhost 2 1\nlink 0 1\n",
		"hsgraph 2 2 3\nhost x 0\n",
		"hsgraph 2 2 3\nlink 0 y\n",
		"hsgraph 2 2 3\nhost 0 0 trailing\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected input: nothing more to check
		}
		if g.Order() < 1 || g.Switches() < 1 || g.Radix() < 1 {
			t.Fatalf("Read accepted a graph with senseless parameters: %v", g)
		}
		if g.Order() > MaxReadDim || g.Switches() > MaxReadDim {
			t.Fatalf("Read accepted dimensions beyond MaxReadDim: %v", g)
		}
		// Validate must catch whatever the parser let through; if it
		// passes, the graph really is structurally sound and must survive
		// a canonical write/read round trip and a metrics evaluation.
		if err := g.Validate(); err != nil {
			return // flagged: the parser's leniency was caught downstream
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write failed on validated graph: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparse of canonical output failed: %v", err)
		}
		if !Equal(g, g2) {
			t.Fatal("write/read round trip changed the graph")
		}
		if fast, slow := g.Evaluate(), g.EvaluateSlow(); fast != slow {
			t.Fatalf("parsed graph evaluates inconsistently: %+v vs %+v", fast, slow)
		}
	})
}
