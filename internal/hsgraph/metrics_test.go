package hsgraph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestEvaluateRingByHand(t *testing.T) {
	// 4 switches in a ring, 4 hosts each (Fig. 1-like):
	// inter-switch pairs: 4 adjacent switch pairs at d=1 (ell=3) and 2
	// opposite pairs at d=2 (ell=4); intra: 4 * C(4,2) pairs at ell=2.
	g, err := Ring(16, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(16*3*4 + 16*4*2 + 4*6*2)
	met := g.Evaluate()
	if !met.Connected {
		t.Fatal("ring reported disconnected")
	}
	if met.TotalPath != want {
		t.Fatalf("TotalPath = %d, want %d", met.TotalPath, want)
	}
	if met.Diameter != 4 {
		t.Fatalf("Diameter = %d, want 4", met.Diameter)
	}
	wantASPL := float64(want) / 120
	if math.Abs(met.HASPL-wantASPL) > 1e-12 {
		t.Fatalf("HASPL = %v, want %v", met.HASPL, wantASPL)
	}
}

func TestEvaluateSingleSwitch(t *testing.T) {
	g := New(5, 1, 8)
	for h := 0; h < 5; h++ {
		if err := g.AttachHost(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	met := g.Evaluate()
	if !met.Connected || met.HASPL != 2 || met.Diameter != 2 {
		t.Fatalf("single switch metrics wrong: %+v", met)
	}
}

func TestEvaluateDisconnected(t *testing.T) {
	g := New(2, 2, 3)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 1); err != nil {
		t.Fatal(err)
	}
	met := g.Evaluate()
	if met.Connected {
		t.Fatal("disconnected graph reported connected")
	}
	slow := g.EvaluateSlow()
	if slow.Connected {
		t.Fatal("EvaluateSlow missed disconnection")
	}
}

func TestEvaluateMatchesSlow(t *testing.T) {
	rnd := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		n := 8 + rnd.Intn(120)
		m := 2 + rnd.Intn(20)
		r := 4 + rnd.Intn(20)
		if !Feasible(n, m, r) {
			continue
		}
		g, err := RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fast, slow := g.Evaluate(), g.EvaluateSlow()
		if fast.TotalPath != slow.TotalPath || fast.Diameter != slow.Diameter || fast.Connected != slow.Connected {
			t.Fatalf("trial %d (n=%d,m=%d,r=%d): fast %+v != slow %+v", trial, n, m, r, fast, slow)
		}
	}
}

func TestEvaluateMatchesSlowLargeBatch(t *testing.T) {
	// Force >64 host-bearing switches so bit-parallel batching exercises
	// multiple words.
	rnd := rng.New(5)
	g, err := RandomConnected(300, 150, 8, rnd)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := g.Evaluate(), g.EvaluateSlow()
	if fast.TotalPath != slow.TotalPath || fast.Diameter != slow.Diameter {
		t.Fatalf("fast %+v != slow %+v", fast, slow)
	}
}

func TestEvaluateWithEmptySwitches(t *testing.T) {
	// Hosts only on switches 0 and 2 of a path 0-1-2: d(0,2)=2, ell=4.
	g := New(4, 3, 4)
	for h, s := range []int{0, 0, 2, 2} {
		if err := g.AttachHost(h, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	met := g.Evaluate()
	// pairs: within 0: 1 pair ell 2; within 2: 1 pair ell 2; across: 4 pairs ell 4.
	want := int64(2 + 2 + 4*4)
	if met.TotalPath != want || met.Diameter != 4 {
		t.Fatalf("metrics %+v, want total %d diam 4", met, want)
	}
}

func TestHostDistance(t *testing.T) {
	g, err := Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts 0,1 on switch 0; 2,3 on switch 1; 4,5 on switch 2.
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 2}, {0, 2, 3}, {0, 4, 4}, {2, 5, 3}, {4, 5, 2},
	}
	for _, c := range cases {
		if got := g.HostDistance(c.a, c.b); got != c.want {
			t.Fatalf("HostDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHostDistanceSumMatchesTotal(t *testing.T) {
	rnd := rng.New(123)
	g, err := RandomConnected(24, 6, 7, rnd)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for a := 0; a < 24; a++ {
		for b := a + 1; b < 24; b++ {
			d := g.HostDistance(a, b)
			if d < 0 {
				t.Fatal("unexpected disconnection")
			}
			total += int64(d)
		}
	}
	if met := g.Evaluate(); met.TotalPath != total {
		t.Fatalf("Evaluate total %d != pairwise sum %d", met.TotalPath, total)
	}
}

func TestSingleSourceHostMetrics(t *testing.T) {
	g, err := Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	aspl, ecc, ok := g.SingleSourceHostMetrics(0)
	if !ok {
		t.Fatal("disconnected")
	}
	// From host 0: host1 ell2; hosts2,3 ell3; hosts4,5 ell4. avg = (2+3+3+4+4)/5
	want := float64(2+3+3+4+4) / 5
	if math.Abs(aspl-want) > 1e-12 || ecc != 4 {
		t.Fatalf("got aspl=%v ecc=%d, want %v/4", aspl, ecc, want)
	}
}

func TestEquation1OnRegularGraphs(t *testing.T) {
	// For k-regular host-switch graphs, Evaluate must agree with Eq. 1
	// applied to the switch graph's ASPL.
	rnd := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		m := 2 * (3 + rnd.Intn(5)) // even so that m*k is even for odd k
		k := 3
		n := m * (2 + rnd.Intn(3))
		r := n/m + k
		g, err := RandomRegular(n, m, r, k, rnd)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sa, _, ok := g.SwitchASPL()
		if !ok {
			t.Fatal("switch graph disconnected")
		}
		want := RegularHASPLFromSwitchASPL(sa, n, m)
		got := g.Evaluate().HASPL
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Eq.1 gives %v, Evaluate gives %v (n=%d m=%d)", trial, want, got, n, m)
		}
	}
}

func TestSwitchDistancesSymmetric(t *testing.T) {
	rnd := rng.New(42)
	g, err := RandomConnected(30, 10, 6, rnd)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.SwitchDistances()
	for a := range dist {
		if dist[a][a] != 0 {
			t.Fatalf("d(%d,%d) = %d", a, a, dist[a][a])
		}
		for b := range dist[a] {
			if dist[a][b] != dist[b][a] {
				t.Fatalf("asymmetric distance (%d,%d)", a, b)
			}
		}
	}
	// Triangle inequality.
	m := len(dist)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			for c := 0; c < m; c++ {
				if dist[a][b] >= 0 && dist[b][c] >= 0 && dist[a][c] >= 0 &&
					dist[a][c] > dist[a][b]+dist[b][c] {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestMetricsOnStar(t *testing.T) {
	// Star with hub: hosts spread over 5 switches (1 hub + 4 leaves),
	// 10 hosts => 2 per switch.
	g, err := Star(10, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	met := g.Evaluate()
	// Pairs: intra 5*C(2,2)... 5 switches * 1 pair * ell2 = 10.
	// hub-leaf: 4 leaf switches * (2*2 pairs) * ell3 = 48.
	// leaf-leaf: C(4,2)=6 switch pairs * 4 * ell4 = 96.
	want := int64(10 + 48 + 96)
	if met.TotalPath != want || met.Diameter != 4 {
		t.Fatalf("star metrics %+v, want total=%d diam=4", met, want)
	}
}

func BenchmarkEvaluateBitParallel(b *testing.B) {
	rnd := rng.New(1)
	g, err := RandomConnected(1024, 194, 15, rnd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Evaluate()
	}
}

func BenchmarkEvaluateSlow(b *testing.B) {
	rnd := rng.New(1)
	g, err := RandomConnected(1024, 194, 15, rnd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.EvaluateSlow()
	}
}
