package hsgraph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// symTestGraph builds a random sym-symmetric host-switch graph without
// going through the topo generators (hsgraph cannot import topo): hosts
// are spread orbit-invariantly and edges are added and removed in whole
// σ-orbits, which keeps the edge set closed under the group action.
// Antipodal orbits (half-size, fixed by the half-turn) are deliberately
// allowed — they are σ-closed too, and the evaluator must handle them.
// Roughly a quarter of the samples leave hosts unattached and a third
// drop orbits until the graph may disconnect, so both Metrics regimes
// appear.
func symTestGraph(tb testing.TB, rnd *rng.Rand) (*Graph, int) {
	tb.Helper()
	syms := []int{2, 3, 4, 6}
	sym := syms[rnd.Intn(len(syms))]
	q := 1 + rnd.Intn(10)
	m := sym * q
	const r = 24
	hk := make([]int, q)
	perOrbit := 0
	for i := range hk {
		hk[i] = rnd.Intn(3)
		perOrbit += hk[i]
	}
	attached := sym * perOrbit
	n := attached
	if rnd.Intn(4) == 0 || n == 0 {
		n += 1 + rnd.Intn(3) // unattached hosts: allAttached must go false
	}
	g := New(n, m, r)
	h := 0
	for s := 0; s < m; s++ {
		for k := 0; k < hk[s%q]; k++ {
			if err := g.AttachHost(h, s); err != nil {
				tb.Fatalf("AttachHost(%d,%d): %v", h, s, err)
			}
			h++
		}
	}
	if rnd.Intn(5) > 0 { // ring: σ-closed as a whole, usually connects
		for s := 0; s < m; s++ {
			a, b := s, (s+1)%m
			if a != b && !g.HasEdge(a, b) {
				if err := g.Connect(a, b); err != nil {
					tb.Fatalf("ring Connect(%d,%d): %v", a, b, err)
				}
			}
		}
	}
	for tries := rnd.Intn(4 * m); tries > 0; tries-- {
		a, b := rnd.Intn(m), rnd.Intn(m)
		if a != b {
			symTestAddOrbit(tb, g, sym, a, b)
		}
	}
	if rnd.Intn(3) == 0 { // drop whole orbits: may disconnect
		for i := 0; i < 1+rnd.Intn(3) && g.NumEdges() > 0; i++ {
			a, b := g.Edge(rnd.Intn(g.NumEdges()))
			symTestRemoveOrbit(tb, g, sym, a, b)
		}
	}
	if err := VerifySymmetric(g, sym); err != nil {
		tb.Fatalf("generator broke its own symmetry: %v", err)
	}
	return g, sym
}

// symTestAddOrbit connects the full σ-orbit of {a,b}, or nothing: a
// capacity failure mid-orbit rolls the applied images back. Because only
// whole orbits are ever committed, an already-present image means the
// whole orbit is present and the attempt is skipped. Returns the applied
// edges (nil when nothing changed).
func symTestAddOrbit(tb testing.TB, g *Graph, sym, a, b int) [][2]int {
	tb.Helper()
	m := g.Switches()
	q := m / sym
	if g.HasEdge(a, b) {
		return nil
	}
	var added [][2]int
	for j := 0; j < sym; j++ {
		x, y := (a+j*q)%m, (b+j*q)%m
		if g.HasEdge(x, y) { // antipodal half-orbit revisits its edges
			continue
		}
		if g.Degree(x) >= g.Radix() || g.Degree(y) >= g.Radix() {
			for i := len(added) - 1; i >= 0; i-- {
				if err := g.Disconnect(added[i][0], added[i][1]); err != nil {
					tb.Fatalf("rollback Disconnect(%v): %v", added[i], err)
				}
			}
			return nil
		}
		if err := g.Connect(x, y); err != nil {
			tb.Fatalf("Connect(%d,%d): %v", x, y, err)
		}
		added = append(added, [2]int{x, y})
	}
	return added
}

// symTestRemoveOrbit disconnects the full σ-orbit of the edge {a,b} and
// returns the removed edges.
func symTestRemoveOrbit(tb testing.TB, g *Graph, sym, a, b int) [][2]int {
	tb.Helper()
	m := g.Switches()
	q := m / sym
	var removed [][2]int
	for j := 0; j < sym; j++ {
		x, y := (a+j*q)%m, (b+j*q)%m
		if !g.HasEdge(x, y) {
			continue
		}
		if err := g.Disconnect(x, y); err != nil {
			tb.Fatalf("Disconnect(%d,%d): %v", x, y, err)
		}
		removed = append(removed, [2]int{x, y})
	}
	return removed
}

func TestVerifySymmetric(t *testing.T) {
	rnd := rng.New(20260808)
	g, sym := symTestGraph(t, rnd)
	if err := VerifySymmetric(g, sym); err != nil {
		t.Fatalf("symmetric graph rejected: %v", err)
	}
	if err := VerifySymmetric(g, 1); err != nil {
		t.Fatalf("sym=1 must be trivially satisfied: %v", err)
	}
	if err := VerifySymmetric(g, 0); err != nil {
		t.Fatalf("sym=0 must be trivially satisfied: %v", err)
	}

	// Switch count not a multiple of the order.
	bad := New(2, 5, 4)
	if err := VerifySymmetric(bad, 2); err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Fatalf("m=5 sym=2: want multiple-of error, got %v", err)
	}
	if err := VerifySymmetric(New(2, 3, 4), 6); err == nil {
		t.Fatal("sym larger than m: want error, got nil")
	}

	// Host counts varying inside an orbit.
	hg := New(1, 4, 4)
	if err := hg.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := VerifySymmetric(hg, 2); err == nil || !strings.Contains(err.Error(), "host") {
		t.Fatalf("orbit-varying hosts: want host-count error, got %v", err)
	}

	// An edge whose image is absent.
	eg := New(1, 6, 4)
	if err := eg.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := VerifySymmetric(eg, 3); err == nil || !strings.Contains(err.Error(), "image") {
		t.Fatalf("non-closed edge: want image error, got %v", err)
	}
	// Completing the orbit repairs it.
	if err := eg.Connect(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := eg.Connect(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := VerifySymmetric(eg, 3); err != nil {
		t.Fatalf("closed orbit still rejected: %v", err)
	}
}

// TestOrbitEvaluatorDifferential is the tentpole's correctness anchor:
// on symmetric graphs of every regime — connected, disconnected, hosts
// unattached, antipodal orbits — the orbit-quotient evaluator and the
// orbit-mode incremental evaluator report bit-identical Metrics and
// Energy to the generic serial evaluation, at every worker count.
func TestOrbitEvaluatorDifferential(t *testing.T) {
	rnd := rng.New(20260808)
	shared := map[int]*OrbitEvaluator{} // long-lived, reused across graphs
	defer func() {
		for _, oe := range shared {
			oe.Close()
		}
	}()
	trials, disconnected, unattached := 0, 0, 0
	for trials < 220 {
		g, sym := symTestGraph(t, rnd)
		trials++
		want := g.EvaluateSlow()
		if !want.Connected {
			disconnected++
		}
		bearing := 0
		for s := 0; s < g.Switches(); s++ {
			if g.HostCount(s) > 0 {
				bearing++
			}
		}
		if bearing > 0 && g.HostCount(0) == 0 || g.Order() > 0 && g.SwitchOf(g.Order()-1) == -1 {
			unattached++
		}
		for _, workers := range []int{1, 2, 3, 8, bearing + 1} {
			oe := NewOrbitEvaluator(workers, sym)
			got, err := oe.Evaluate(g)
			if err != nil {
				t.Fatalf("trial %d %v sym=%d workers=%d: Evaluate: %v", trials, g, sym, workers, err)
			}
			if got != want {
				t.Fatalf("trial %d %v sym=%d workers=%d: orbit %+v != generic %+v", trials, g, sym, workers, got, want)
			}
			e, ok, err := oe.Energy(g)
			if err != nil {
				t.Fatalf("trial %d %v sym=%d workers=%d: Energy: %v", trials, g, sym, workers, err)
			}
			if ok != want.Connected || (ok && e != want.TotalPath) {
				t.Fatalf("trial %d %v sym=%d workers=%d: Energy (%d,%v) inconsistent with %+v", trials, g, sym, workers, e, ok, want)
			}
			oe.Close()
		}
		// A long-lived OrbitEvaluator must behave identically across
		// graphs of varying switch counts (buffer reuse) and repeats.
		oe := shared[sym]
		if oe == nil {
			oe = NewOrbitEvaluator(3, sym)
			shared[sym] = oe
		}
		for rep := 0; rep < 2; rep++ {
			got, err := oe.Evaluate(g)
			if err != nil {
				t.Fatalf("trial %d sym=%d: shared Evaluate: %v", trials, sym, err)
			}
			if got != want {
				t.Fatalf("trial %d sym=%d rep %d: shared orbit %+v != generic %+v", trials, sym, rep, got, want)
			}
		}
		// Orbit-mode incremental cache: attach-time rebuild must agree.
		ie := NewOrbitIncrementalEvaluator(1+rnd.Intn(4), sym)
		e, ok := ie.Energy(g)
		if ok != want.Connected || (ok && e != want.TotalPath) {
			t.Fatalf("trial %d %v sym=%d: incremental Energy (%d,%v) inconsistent with %+v", trials, g, sym, e, ok, want)
		}
	}
	if disconnected < 15 {
		t.Fatalf("generator produced only %d disconnected graphs in %d trials", disconnected, trials)
	}
	if unattached < 5 {
		t.Fatalf("generator produced only %d graphs with unattached hosts in %d trials", unattached, trials)
	}
}

// TestOrbitIncrementalDifferential drives an orbit-mode incremental
// evaluator and a generic one through the same sequence of orbit-closed
// edits — commits, peeked-then-reverted candidates, whole-orbit removals
// — asserting bit-identical energies at every step.
func TestOrbitIncrementalDifferential(t *testing.T) {
	rnd := rng.New(777)
	for trial := 0; trial < 30; trial++ {
		g, sym := symTestGraph(t, rnd)
		mirror := g.Clone()
		ie := NewOrbitIncrementalEvaluator(1+rnd.Intn(4), sym)
		gen := NewIncrementalEvaluator(1 + rnd.Intn(4))
		check := func(step string) {
			eo, oko := ie.Energy(g)
			eg, okg := gen.Energy(mirror)
			if eo != eg || oko != okg {
				t.Fatalf("trial %d sym=%d %s: orbit (%d,%v) != generic (%d,%v)", trial, sym, step, eo, oko, eg, okg)
			}
		}
		check("attach")
		m := g.Switches()
		for step := 0; step < 25; step++ {
			a, b := rnd.Intn(m), rnd.Intn(m)
			if a == b {
				continue
			}
			var applied [][2]int
			removedOrbit := g.HasEdge(a, b)
			if removedOrbit {
				applied = symTestRemoveOrbit(t, g, sym, a, b)
			} else {
				applied = symTestAddOrbit(t, g, sym, a, b)
			}
			for _, e := range applied { // replay the exact same edit
				var err error
				if removedOrbit {
					err = mirror.Disconnect(e[0], e[1])
				} else {
					err = mirror.Connect(e[0], e[1])
				}
				if err != nil {
					t.Fatalf("trial %d: mirror replay %v: %v", trial, e, err)
				}
			}
			if rnd.Intn(2) == 0 && len(applied) > 0 {
				// Candidate path: peek both, then revert the edit — the
				// caches must absorb the rollback without committing.
				eo, co, oko := ie.PeekEnergy(g)
				eg, cg, okg := gen.PeekEnergy(mirror)
				if oko != okg || (oko && (eo != eg || co != cg)) {
					t.Fatalf("trial %d sym=%d step %d: peek orbit (%d,%v,%v) != generic (%d,%v,%v)",
						trial, sym, step, eo, co, oko, eg, cg, okg)
				}
				for i := len(applied) - 1; i >= 0; i-- {
					e := applied[i]
					var err1, err2 error
					if removedOrbit {
						err1, err2 = g.Connect(e[0], e[1]), mirror.Connect(e[0], e[1])
					} else {
						err1, err2 = g.Disconnect(e[0], e[1]), mirror.Disconnect(e[0], e[1])
					}
					if err1 != nil || err2 != nil {
						t.Fatalf("trial %d: revert %v: %v / %v", trial, e, err1, err2)
					}
				}
			}
			check("step")
		}
		// Final states agree with from-scratch evaluation.
		want := g.EvaluateSlow()
		e, ok := ie.Energy(g)
		if ok != want.Connected || (ok && e != want.TotalPath) {
			t.Fatalf("trial %d sym=%d: final orbit Energy (%d,%v) inconsistent with %+v", trial, sym, e, ok, want)
		}
	}
}

// TestOrbitEvaluatorRejectsAsymmetric pins the fail-loud contract: a
// graph outside the symmetric subspace gets an error, never a silently
// wrong quotient evaluation.
func TestOrbitEvaluatorRejectsAsymmetric(t *testing.T) {
	rnd := rng.New(5)
	var g *Graph
	var sym int
	for {
		g, sym = symTestGraph(t, rnd)
		if breakSymmetry(g, sym) {
			break
		}
	}
	oe := NewOrbitEvaluator(2, sym)
	defer oe.Close()
	if _, err := oe.Evaluate(g); err == nil || !strings.Contains(err.Error(), "symmetry") {
		t.Fatalf("Evaluate on asymmetric graph: want symmetry error, got %v", err)
	}
	if _, _, err := oe.Energy(g); err == nil || !strings.Contains(err.Error(), "symmetry") {
		t.Fatalf("Energy on asymmetric graph: want symmetry error, got %v", err)
	}

	// Orbit-mode incremental: attaching to an asymmetric graph panics.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("orbit-mode attach to asymmetric graph: want panic")
			}
			if !strings.Contains(r.(string), "asymmetric") {
				t.Fatalf("attach panic message %q lacks 'asymmetric'", r)
			}
		}()
		ie := NewOrbitIncrementalEvaluator(1, sym)
		ie.Energy(g)
	}()
}

// breakSymmetry adds one edge whose σ-image stays absent, returning false
// when no such edge fits the graph (the caller resamples).
func breakSymmetry(g *Graph, sym int) bool {
	m := g.Switches()
	q := m / sym
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			x, y := (a+q)%m, (b+q)%m
			if g.HasEdge(a, b) || g.HasEdge(x, y) || (x == a && y == b) || (x == b && y == a) {
				continue
			}
			if g.Degree(a) >= g.Radix() || g.Degree(b) >= g.Radix() {
				continue
			}
			if err := g.Connect(a, b); err == nil {
				return true
			}
		}
	}
	return false
}

// TestOrbitIncrementalPanicsOnSymmetryBreak: an attached orbit-mode cache
// that sees a symmetry-breaking edit must panic at the next sync or peek
// — both the edge and the host variant.
func TestOrbitIncrementalPanicsOnSymmetryBreak(t *testing.T) {
	expectPanic := func(name, needle string, mutate func(g *Graph, sym int) bool, probe func(ie *IncrementalEvaluator, g *Graph)) {
		t.Helper()
		rnd := rng.New(99)
		for {
			g, sym := symTestGraph(t, rnd)
			if g.Order() == 0 || g.SwitchOf(0) == -1 {
				continue // host variant needs an attached host to move
			}
			ie := NewOrbitIncrementalEvaluator(2, sym)
			ie.Energy(g) // attach while still symmetric
			if !mutate(g, sym) {
				continue
			}
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s: want panic after symmetry-breaking edit", name)
					}
					if !strings.Contains(r.(string), needle) {
						t.Fatalf("%s: panic %q lacks %q", name, r, needle)
					}
				}()
				probe(ie, g)
			}()
			return
		}
	}

	edgeBreak := func(g *Graph, sym int) bool { return breakSymmetry(g, sym) }
	hostBreak := func(g *Graph, sym int) bool {
		// Move host 0 one switch over: its orbit loses a host that no
		// image position regains.
		from := g.SwitchOf(0)
		to := (from + 1) % g.Switches()
		return g.MoveHost(0, to) == nil
	}
	syncProbe := func(ie *IncrementalEvaluator, g *Graph) { ie.Energy(g) }
	peekProbe := func(ie *IncrementalEvaluator, g *Graph) { ie.PeekEnergy(g) }

	expectPanic("edge/sync", "broke the order", edgeBreak, syncProbe)
	expectPanic("edge/peek", "broke the order", edgeBreak, peekProbe)
	expectPanic("host/sync", "broke the order", hostBreak, syncProbe)
	expectPanic("host/peek", "broke the order", hostBreak, peekProbe)
}

// FuzzOrbitEval drives random symmetric graphs plus one orbit edit
// through the orbit evaluators and cross-checks the generic path.
func FuzzOrbitEval(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(20260808))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rnd := rng.New(seed)
		g, sym := symTestGraph(t, rnd)
		want := g.EvaluateSlow()
		oe := NewOrbitEvaluator(1+int(seed%4), sym)
		defer oe.Close()
		got, err := oe.Evaluate(g)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		if got != want {
			t.Fatalf("orbit %+v != generic %+v", got, want)
		}
		ie := NewOrbitIncrementalEvaluator(1+int(seed%3), sym)
		e, ok := ie.Energy(g)
		if ok != want.Connected || (ok && e != want.TotalPath) {
			t.Fatalf("incremental Energy (%d,%v) inconsistent with %+v", e, ok, want)
		}
		m := g.Switches()
		a, b := rnd.Intn(m), rnd.Intn(m)
		if a != b {
			if g.HasEdge(a, b) {
				symTestRemoveOrbit(t, g, sym, a, b)
			} else {
				symTestAddOrbit(t, g, sym, a, b)
			}
		}
		want = g.EvaluateSlow()
		e, ok = ie.Energy(g)
		if ok != want.Connected || (ok && e != want.TotalPath) {
			t.Fatalf("post-edit incremental Energy (%d,%v) inconsistent with %+v", e, ok, want)
		}
		got, err = oe.Evaluate(g)
		if err != nil {
			t.Fatalf("post-edit Evaluate: %v", err)
		}
		if got != want {
			t.Fatalf("post-edit orbit %+v != generic %+v", got, want)
		}
	})
}
