// Package core is the top-level API of this repository: it solves the
// order/radix problem (ORP) end to end the way Section 5.3 of the paper
// prescribes. Given order n and radix r it
//
//  1. returns the trivial single-switch graph when n <= r,
//  2. returns the Appendix's provably optimal clique construction when
//     n <= m(r-m+1) for some m, and otherwise
//  3. predicts the optimal switch count m_opt as the minimiser of the
//     continuous Moore bound and runs simulated annealing with the
//     2-neighbor swing operation from a random saturated start.
//
// The result is the paper's "proposed topology" for (n, r).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/bounds"
	"repro/internal/ckpt"
	"repro/internal/hsgraph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/topo"
)

// Method records which of the three regimes produced a topology.
type Method int

const (
	// SingleSwitch: n <= r, all hosts on one switch (h-ASPL exactly 2).
	SingleSwitch Method = iota
	// CliqueOptimal: the Appendix construction, provably optimal.
	CliqueOptimal
	// Annealed: m_opt prediction + simulated annealing (the general case).
	Annealed
)

func (m Method) String() string {
	switch m {
	case SingleSwitch:
		return "single-switch"
	case CliqueOptimal:
		return "clique"
	case Annealed:
		return "annealed"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures Solve. The zero value uses the defaults documented
// on each field.
type Options struct {
	// Iterations per annealing run. Default 50000.
	Iterations int
	// Restarts is the number of independent annealing runs (the best
	// wins). Default 1.
	Restarts int
	// Seed drives all randomness; equal seeds give equal topologies.
	Seed uint64
	// FixedM forces the switch count instead of the m_opt prediction.
	// Zero means predict. Used by the Fig. 5 sweeps.
	FixedM int
	// Moves selects the SA neighbourhood. Default TwoNeighborSwing.
	Moves opt.MoveSet
	// Workers is the number of evaluation shard workers per annealing run
	// (hsgraph.Evaluator). Zero means auto: single-restart runs use
	// GOMAXPROCS, multi-restart runs let opt.ParallelAnneal split the
	// cores between restarts and shards. Results are worker-invariant.
	Workers int
	// Eval selects the annealer's evaluation ladder rung (exact,
	// incremental, ladder or symmetric; see opt.EvalMode). Default exact.
	Eval opt.EvalMode
	// Symmetry, when >= 2, makes the annealed regime search only graphs
	// closed under a cyclic group action of order Symmetry: the start is
	// a symmetric random graph (topo.RandomSymmetric) and every move is a
	// symmetry-preserving operator. Unless FixedM pins it, the predicted
	// switch count is adjusted to the nearest value compatible with the
	// group action. Pair with Eval = opt.EvalSymmetric to also quotient
	// the evaluation (~Symmetry× fewer BFS sweeps per decision). The
	// single-switch and clique regimes are already provably optimal and
	// ignore this field.
	Symmetry int
	// OnProgress is forwarded to the annealer (single-restart runs only).
	OnProgress func(iter int, current, best int64)
	// Observer receives per-interval anneal telemetry (every ReportEvery
	// iterations; see opt.Observer). With Restarts > 1 every restart
	// samples into it, tagged by AnnealSample.Restart, so implementations
	// must be concurrency-safe.
	Observer opt.Observer
	// ReportEvery is the sampling interval for Observer/OnProgress in
	// iterations (0 = the annealer's default, 1000).
	ReportEvery int
	// TraceEnergy records a bounded best-energy convergence trace into
	// Topology.Anneal.EnergyTrace (see opt.Options.TraceEnergy).
	TraceEnergy bool
	// CheckpointPath enables crash-safe snapshots of the annealing run
	// (see opt.Options.CheckpointPath). Multi-restart runs write one file
	// per restart via opt.RestartCheckpointPath. The single-switch and
	// clique regimes finish instantly and never checkpoint.
	CheckpointPath string
	// CheckpointEvery is the snapshot interval in iterations (0 = the
	// annealer's default).
	CheckpointEvery int
	// Resume continues from the CheckpointPath snapshot when one exists.
	// The remaining options must match the checkpointed run (zero values
	// adopt the stored ones); the resumed result is bit-identical to an
	// uninterrupted run.
	Resume bool
	// Interrupt, if non-nil, is polled by the annealer; arming it makes
	// Solve persist a final snapshot and return ckpt.ErrInterrupted
	// (alongside the partial best topology when one is available).
	Interrupt *atomic.Bool
	// Span is the parent for the annealer's stage spans (see
	// opt.Options.Span). The single-switch and clique regimes finish in
	// microseconds and open no stages. Nil disables tracing for free.
	Span *obs.Span
}

// Topology is a solved ORP instance.
type Topology struct {
	Graph   *hsgraph.Graph
	Method  Method
	Metrics hsgraph.Metrics
	// MPredicted is the continuous-Moore-bound m_opt for (n, r); MUsed is
	// the switch count actually used (differs only under Options.FixedM
	// or in the clique/single-switch regimes).
	MPredicted int
	MUsed      int
	// LowerBound is Theorem 2's h-ASPL lower bound; ContinuousMoore is
	// the continuous Moore bound at MUsed.
	LowerBound      float64
	ContinuousMoore float64
	// Anneal holds SA statistics when Method == Annealed.
	Anneal opt.Result
}

// Solve produces the proposed topology for order n and radix r.
func Solve(n, r int, o Options) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: order %d < 1", n)
	}
	if r < 3 {
		return nil, fmt.Errorf("core: radix %d < 3", r)
	}
	if o.Iterations == 0 {
		o.Iterations = 50000
	}
	if o.Restarts < 1 {
		o.Restarts = 1
	}

	mOpt, _ := bounds.OptimalSwitchCount(n, r, 0)
	top := &Topology{
		MPredicted: mOpt,
		LowerBound: bounds.HASPLLowerBound(n, r),
	}

	if o.FixedM == 0 {
		// Regime 1: one switch suffices.
		if n <= r {
			g := hsgraph.New(n, 1, r)
			for h := 0; h < n; h++ {
				if err := g.AttachHost(h, 0); err != nil {
					return nil, err
				}
			}
			top.Graph, top.Method = g, SingleSwitch
			return finish(top, n, r)
		}
		// Regime 2: clique construction is feasible and optimal (Thm 3).
		if m := bounds.MinCliqueSwitches(n, r); m > 0 {
			g, err := opt.Clique(n, r)
			if err != nil {
				return nil, err
			}
			top.Graph, top.Method = g, CliqueOptimal
			return finish(top, n, r)
		}
	}

	// Regime 3: predict m, anneal.
	m := o.FixedM
	if m == 0 {
		m = mOpt
		if o.Symmetry > 1 {
			var err error
			if m, err = adjustSymmetricM(n, mOpt, r, o.Symmetry); err != nil {
				return nil, err
			}
		}
	}
	if !hsgraph.Feasible(n, m, r) {
		return nil, fmt.Errorf("core: no host-switch graph with n=%d m=%d r=%d exists", n, m, r)
	}
	var start *hsgraph.Graph
	var err error
	if o.Symmetry > 1 {
		start, err = topo.RandomSymmetric(n, m, r, o.Symmetry, o.Seed)
	} else {
		start, err = hsgraph.RandomConnected(n, m, r, rng.New(o.Seed))
	}
	if err != nil {
		return nil, err
	}
	ao := opt.Options{
		Iterations:      o.Iterations,
		Moves:           o.Moves,
		Seed:            o.Seed + 1,
		Workers:         o.Workers,
		Eval:            o.Eval,
		Symmetry:        o.Symmetry,
		OnProgress:      o.OnProgress,
		Observer:        o.Observer,
		ReportEvery:     o.ReportEvery,
		TraceEnergy:     o.TraceEnergy,
		CheckpointPath:  o.CheckpointPath,
		CheckpointEvery: o.CheckpointEvery,
		Resume:          o.Resume,
		Interrupt:       o.Interrupt,
		Span:            o.Span,
	}
	if ao.Workers == 0 && o.Restarts == 1 {
		ao.Workers = runtime.GOMAXPROCS(0)
	}
	var g *hsgraph.Graph
	var res opt.Result
	if o.Restarts > 1 {
		g, res, err = opt.ParallelAnneal(start, ao, o.Restarts)
	} else {
		g, res, err = opt.Anneal(start, ao)
	}
	if err != nil {
		// An interrupted single-restart anneal still hands back its
		// best-so-far graph; surface it as a partial topology so the CLI
		// can report progress alongside ckpt.ErrInterrupted.
		if errors.Is(err, ckpt.ErrInterrupted) && g != nil {
			top.Graph, top.Method, top.Anneal = g, Annealed, res
			if t, ferr := finish(top, n, r); ferr == nil {
				return t, err
			}
		}
		return nil, err
	}
	top.Graph, top.Method, top.Anneal = g, Annealed, res
	return finish(top, n, r)
}

// adjustSymmetricM finds the switch count nearest the Moore-bound
// prediction mOpt that admits an order-sym symmetric layout: a multiple
// of sym (>= 3) whose host remainder n mod m is also a multiple of sym
// (host counts must be constant on every orbit) and that stays feasible
// for (n, r). Ties at equal distance prefer the smaller count, where the
// continuous Moore bound is flat anyway.
func adjustSymmetricM(n, mOpt, r, sym int) (int, error) {
	ok := func(m int) bool {
		return m >= 3 && m >= sym && m%sym == 0 && (n%m)%sym == 0 && hsgraph.Feasible(n, m, r)
	}
	for d := 0; d <= mOpt+4*sym; d++ {
		if m := mOpt - d; m > 0 && ok(m) {
			return m, nil
		}
		if ok(mOpt + d) {
			return mOpt + d, nil
		}
	}
	return 0, fmt.Errorf("core: no switch count near m_opt=%d supports symmetry %d for n=%d r=%d", mOpt, sym, n, r)
}

func finish(top *Topology, n, r int) (*Topology, error) {
	top.MUsed = top.Graph.Switches()
	top.Metrics = top.Graph.Evaluate()
	top.ContinuousMoore = bounds.ContinuousMooreHASPL(n, top.MUsed, r)
	if !top.Metrics.Connected {
		return nil, hsgraph.ErrNotConnected
	}
	if err := top.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("core: produced invalid topology: %w", err)
	}
	return top, nil
}
