package core

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/opt"
)

func TestSolveSingleSwitch(t *testing.T) {
	top, err := Solve(8, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if top.Method != SingleSwitch {
		t.Fatalf("method = %v, want single-switch", top.Method)
	}
	if top.MUsed != 1 || top.Metrics.HASPL != 2 {
		t.Fatalf("unexpected topology: m=%d h-ASPL=%v", top.MUsed, top.Metrics.HASPL)
	}
}

func TestSolveCliqueRegime(t *testing.T) {
	// n=128, r=24 is the paper's clique case (m=8, h-ASPL < 3).
	top, err := Solve(128, 24, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if top.Method != CliqueOptimal {
		t.Fatalf("method = %v, want clique", top.Method)
	}
	if top.MUsed != 8 {
		t.Fatalf("clique used m=%d, want 8", top.MUsed)
	}
	if top.Metrics.HASPL >= 3 {
		t.Fatalf("clique h-ASPL = %v, want < 3", top.Metrics.HASPL)
	}
	if top.Metrics.HASPL < top.LowerBound-1e-9 {
		t.Fatalf("h-ASPL %v beats Theorem 2 bound %v", top.Metrics.HASPL, top.LowerBound)
	}
}

func TestSolveAnnealedRegime(t *testing.T) {
	top, err := Solve(96, 8, Options{Iterations: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if top.Method != Annealed {
		t.Fatalf("method = %v, want annealed", top.Method)
	}
	if top.MUsed != top.MPredicted {
		t.Fatalf("used m=%d, predicted %d", top.MUsed, top.MPredicted)
	}
	if err := top.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.Metrics.HASPL < top.LowerBound-1e-9 {
		t.Fatalf("h-ASPL %v below Theorem 2 bound %v", top.Metrics.HASPL, top.LowerBound)
	}
	// The SA result should be within a reasonable factor of the continuous
	// Moore bound at m_opt (the paper's Fig. 5 shows the optimised curves
	// hugging the bound).
	if top.Metrics.HASPL > top.ContinuousMoore*1.35 {
		t.Fatalf("h-ASPL %v far above continuous Moore bound %v", top.Metrics.HASPL, top.ContinuousMoore)
	}
}

func TestSolveFixedM(t *testing.T) {
	top, err := Solve(96, 8, Options{Iterations: 1500, Seed: 9, FixedM: 30})
	if err != nil {
		t.Fatal(err)
	}
	if top.MUsed != 30 {
		t.Fatalf("FixedM ignored: m=%d", top.MUsed)
	}
	if top.Method != Annealed {
		t.Fatalf("method = %v", top.Method)
	}
}

func TestSolveDeterministic(t *testing.T) {
	o := Options{Iterations: 1200, Seed: 11}
	t1, err := Solve(72, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Solve(72, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(t1.Graph, t2.Graph) {
		t.Fatal("Solve not deterministic")
	}
}

func TestSolveRestartsNoWorse(t *testing.T) {
	single, err := Solve(72, 8, Options{Iterations: 1000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Solve(72, 8, Options{Iterations: 1000, Seed: 13, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Metrics.TotalPath > single.Metrics.TotalPath {
		t.Fatalf("restarts made it worse: %d > %d", multi.Metrics.TotalPath, single.Metrics.TotalPath)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(0, 8, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Solve(10, 2, Options{}); err == nil {
		t.Fatal("r=2 accepted")
	}
	if _, err := Solve(96, 8, Options{FixedM: 2}); err == nil {
		t.Fatal("infeasible FixedM accepted")
	}
}

func TestSolvePredictionMatchesBounds(t *testing.T) {
	top, err := Solve(96, 8, Options{Iterations: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantM, _ := bounds.OptimalSwitchCount(96, 8, 0)
	if top.MPredicted != wantM {
		t.Fatalf("MPredicted = %d, bounds says %d", top.MPredicted, wantM)
	}
}

func TestMethodString(t *testing.T) {
	if SingleSwitch.String() != "single-switch" || CliqueOptimal.String() != "clique" || Annealed.String() != "annealed" {
		t.Fatal("method strings wrong")
	}
}

func TestSolveFixedMOverridesCliqueRegime(t *testing.T) {
	// n=128, r=24 is clique-feasible (m=8), but FixedM forces annealing
	// at the given switch count.
	top, err := Solve(128, 24, Options{Iterations: 500, Seed: 3, FixedM: 20})
	if err != nil {
		t.Fatal(err)
	}
	if top.Method != Annealed || top.MUsed != 20 {
		t.Fatalf("FixedM did not force annealing: %v m=%d", top.Method, top.MUsed)
	}
}

func TestSolveMovesOption(t *testing.T) {
	for _, mv := range []opt.MoveSet{opt.SwingOnly, opt.TwoNeighborSwing} {
		top, err := Solve(72, 8, Options{Iterations: 800, Seed: 5, Moves: mv})
		if err != nil {
			t.Fatalf("%v: %v", mv, err)
		}
		if err := top.Graph.Validate(); err != nil {
			t.Fatalf("%v: %v", mv, err)
		}
	}
}

func TestSolveProgressForwarded(t *testing.T) {
	calls := 0
	_, err := Solve(72, 8, Options{
		Iterations: 2000,
		Seed:       7,
		OnProgress: func(iter int, cur, best int64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}

func TestTopologyFieldsConsistent(t *testing.T) {
	top, err := Solve(96, 8, Options{Iterations: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if top.Metrics.TotalPath != top.Graph.Evaluate().TotalPath {
		t.Fatal("Metrics field out of sync with Graph")
	}
	if top.ContinuousMoore <= 2 || top.LowerBound <= 2 {
		t.Fatalf("bounds fields implausible: %+v", top)
	}
	if top.Anneal.Iterations != 500 {
		t.Fatalf("anneal stats missing: %+v", top.Anneal)
	}
}
