// Package partition implements a multilevel k-way graph partitioner in the
// style of METIS (Karypis & Kumar): heavy-edge-matching coarsening, greedy
// region-growing initial bisection, Fiduccia-Mattheyses refinement on every
// level, and k-way partitioning by recursive bisection with proportional
// target weights. The paper uses METIS to measure the (bisection) bandwidth
// of host-switch graphs: partition all vertices (hosts and switches) into
// P equal parts and count cut edges.
package partition

import (
	"fmt"

	"repro/internal/hsgraph"
)

// Graph is an undirected graph in CSR form with vertex and edge weights.
// Each undirected edge appears twice (once per endpoint).
type Graph struct {
	XAdj    []int32 // len nv+1: adjacency offsets
	Adj     []int32 // neighbour lists
	VWeight []int64 // len nv
	EWeight []int64 // parallel to Adj
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.VWeight) }

// TotalVWeight returns the sum of vertex weights.
func (g *Graph) TotalVWeight() int64 {
	var t int64
	for _, w := range g.VWeight {
		t += w
	}
	return t
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return int(g.XAdj[v+1] - g.XAdj[v]) }

// Validate checks CSR consistency and symmetry of the edge list.
func (g *Graph) Validate() error {
	nv := g.NumVertices()
	if len(g.XAdj) != nv+1 {
		return fmt.Errorf("partition: xadj length %d, want %d", len(g.XAdj), nv+1)
	}
	if g.XAdj[0] != 0 || int(g.XAdj[nv]) != len(g.Adj) {
		return fmt.Errorf("partition: xadj endpoints inconsistent")
	}
	if len(g.EWeight) != len(g.Adj) {
		return fmt.Errorf("partition: eweight length %d, want %d", len(g.EWeight), len(g.Adj))
	}
	type key struct{ a, b int32 }
	seen := make(map[key]int64, len(g.Adj))
	for v := 0; v < nv; v++ {
		if g.XAdj[v] > g.XAdj[v+1] {
			return fmt.Errorf("partition: xadj not monotone at %d", v)
		}
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			u := g.Adj[i]
			if int(u) == v {
				return fmt.Errorf("partition: self loop at %d", v)
			}
			if u < 0 || int(u) >= nv {
				return fmt.Errorf("partition: neighbour %d out of range", u)
			}
			seen[key{int32(v), u}] = g.EWeight[i]
		}
	}
	for k, w := range seen {
		w2, ok := seen[key{k.b, k.a}]
		if !ok || w2 != w {
			return fmt.Errorf("partition: edge (%d,%d) not symmetric", k.a, k.b)
		}
	}
	return nil
}

// FromHostSwitchGraph converts a host-switch graph into a partitioning
// instance over all vertices: hosts are vertices [0, n) and switch s is
// vertex n+s, all with unit vertex weight and unit edge weight, matching
// the paper's METIS usage.
func FromHostSwitchGraph(g *hsgraph.Graph) *Graph {
	n, m := g.Order(), g.Switches()
	nv := n + m
	deg := make([]int32, nv)
	for h := 0; h < n; h++ {
		if g.SwitchOf(h) >= 0 {
			deg[h]++
			deg[n+g.SwitchOf(h)]++
		}
	}
	for s := 0; s < m; s++ {
		deg[n+s] += int32(g.SwitchDegree(s))
	}
	xadj := make([]int32, nv+1)
	for v := 0; v < nv; v++ {
		xadj[v+1] = xadj[v] + deg[v]
	}
	adj := make([]int32, xadj[nv])
	pos := make([]int32, nv)
	copy(pos, xadj[:nv])
	addEdge := func(a, b int32) {
		adj[pos[a]] = b
		pos[a]++
		adj[pos[b]] = a
		pos[b]++
	}
	for h := 0; h < n; h++ {
		if s := g.SwitchOf(h); s >= 0 {
			addEdge(int32(h), int32(n+s))
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		addEdge(int32(n+a), int32(n+b))
	}
	vw := make([]int64, nv)
	ew := make([]int64, len(adj))
	for i := range vw {
		vw[i] = 1
	}
	for i := range ew {
		ew[i] = 1
	}
	return &Graph{XAdj: xadj, Adj: adj, VWeight: vw, EWeight: ew}
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different parts.
func EdgeCut(g *Graph, parts []int32) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			u := g.Adj[i]
			if parts[v] != parts[u] {
				cut += g.EWeight[i]
			}
		}
	}
	return cut / 2
}

// PartWeights returns the vertex weight of each of the k parts.
func PartWeights(g *Graph, parts []int32, k int) []int64 {
	w := make([]int64, k)
	for v, p := range parts {
		w[p] += g.VWeight[v]
	}
	return w
}

// Imbalance returns max part weight divided by the ideal (total/k).
func Imbalance(g *Graph, parts []int32, k int) float64 {
	w := PartWeights(g, parts, k)
	var maxW int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	ideal := float64(g.TotalVWeight()) / float64(k)
	if ideal == 0 {
		return 1
	}
	return float64(maxW) / ideal
}
