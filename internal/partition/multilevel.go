package partition

import (
	"fmt"

	"repro/internal/rng"
)

// KWay partitions g into k parts of (approximately) equal vertex weight,
// minimising edge cut, by recursive bisection. The returned slice maps
// each vertex to its part in [0, k). The allowed imbalance is roughly one
// maximum-vertex-weight per part, which for unit weights means parts
// differ by at most one vertex.
func KWay(g *Graph, k int, seed uint64) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k=%d < 1", k)
	}
	nv := g.NumVertices()
	if k > nv {
		return nil, fmt.Errorf("partition: k=%d exceeds %d vertices", k, nv)
	}
	parts := make([]int32, nv)
	if k == 1 {
		return parts, nil
	}
	rnd := rng.New(seed)
	ids := make([]int32, nv)
	for i := range ids {
		ids[i] = int32(i)
	}
	if err := recursiveBisect(g, ids, parts, 0, k, rnd); err != nil {
		return nil, err
	}
	return parts, nil
}

// recursiveBisect assigns parts [base, base+k) to the subgraph of g
// induced by ids, writing results into parts (indexed by original ids).
func recursiveBisect(g *Graph, ids []int32, parts []int32, base, k int, rnd *rng.Rand) error {
	if k == 1 {
		for _, v := range ids {
			parts[v] = int32(base)
		}
		return nil
	}
	kLeft := (k + 1) / 2
	kRight := k - kLeft
	sub := induce(g, ids)
	target0 := sub.TotalVWeight() * int64(kLeft) / int64(k)
	side := bisect(sub, target0, int64(kLeft), int64(kRight), rnd)
	fixupCounts(sub, side, kLeft, kRight)
	var leftIDs, rightIDs []int32
	for i, v := range ids {
		if side[i] == 0 {
			leftIDs = append(leftIDs, v)
		} else {
			rightIDs = append(rightIDs, v)
		}
	}
	if len(leftIDs) < kLeft || len(rightIDs) < kRight {
		return fmt.Errorf("partition: degenerate bisection (%d/%d vertices for %d/%d parts)",
			len(leftIDs), len(rightIDs), kLeft, kRight)
	}
	if err := recursiveBisect(g, leftIDs, parts, base, kLeft, rnd); err != nil {
		return err
	}
	return recursiveBisect(g, rightIDs, parts, base+kLeft, kRight, rnd)
}

// induce builds the subgraph of g induced by ids (edges to vertices
// outside ids are dropped).
func induce(g *Graph, ids []int32) *Graph {
	local := make(map[int32]int32, len(ids))
	for i, v := range ids {
		local[v] = int32(i)
	}
	xadj := make([]int32, len(ids)+1)
	var adj []int32
	var ew []int64
	vw := make([]int64, len(ids))
	for i, v := range ids {
		vw[i] = g.VWeight[v]
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if lu, ok := local[g.Adj[e]]; ok {
				adj = append(adj, lu)
				ew = append(ew, g.EWeight[e])
			}
		}
		xadj[i+1] = int32(len(adj))
	}
	return &Graph{XAdj: xadj, Adj: adj, VWeight: vw, EWeight: ew}
}

// bisect splits g into sides 0/1 with side 0 weighing ~target0 (and never
// below lower0, nor side 1 below lower1), using the multilevel scheme;
// returns the side of each vertex.
func bisect(g *Graph, target0, lower0, lower1 int64, rnd *rng.Rand) []int32 {
	const coarsestSize = 40
	nv := g.NumVertices()
	if nv <= coarsestSize {
		side := initialBisection(g, target0, rnd)
		refineFM(g, side, target0, maxVWeight(g), lower0, lower1)
		return side
	}
	coarse, mapTo := coarsen(g, rnd)
	if coarse.NumVertices() >= nv {
		// Coarsening stalled (e.g. a clique); fall back to direct cut.
		side := initialBisection(g, target0, rnd)
		refineFM(g, side, target0, maxVWeight(g), lower0, lower1)
		return side
	}
	coarseSide := bisect(coarse, target0, lower0, lower1, rnd)
	side := make([]int32, nv)
	for v := 0; v < nv; v++ {
		side[v] = coarseSide[mapTo[v]]
	}
	refineFM(g, side, target0, maxVWeight(g), lower0, lower1)
	return side
}

// fixupCounts guarantees each side has at least the number of vertices of
// parts it must host, moving lowest-degree vertices when necessary (only
// ever needed on tiny subgraphs where weight bounds and vertex counts
// diverge).
func fixupCounts(g *Graph, side []int32, kLeft, kRight int) {
	counts := [2]int{}
	for _, s := range side {
		counts[s]++
	}
	need := [2]int{kLeft, kRight}
	for deficient := 0; deficient < 2; deficient++ {
		other := 1 - deficient
		for counts[deficient] < need[deficient] && counts[other] > need[other] {
			// Move the lowest-degree vertex from the surplus side.
			best, bestDeg := -1, 1<<30
			for v := 0; v < g.NumVertices(); v++ {
				if int(side[v]) == other && g.Degree(v) < bestDeg {
					best, bestDeg = v, g.Degree(v)
				}
			}
			if best < 0 {
				return
			}
			side[best] = int32(deficient)
			counts[deficient]++
			counts[other]--
		}
	}
}

func maxVWeight(g *Graph) int64 {
	var mw int64 = 1
	for _, w := range g.VWeight {
		if w > mw {
			mw = w
		}
	}
	return mw
}

// coarsen performs one level of heavy-edge matching and returns the
// coarser graph plus the fine-to-coarse vertex map.
func coarsen(g *Graph, rnd *rng.Rand) (*Graph, []int32) {
	nv := g.NumVertices()
	match := make([]int32, nv)
	for i := range match {
		match[i] = -1
	}
	order := rnd.Perm(nv)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU := int32(-1)
		var bestW int64 = -1
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			u := g.Adj[e]
			if match[u] == -1 && g.EWeight[e] > bestW {
				bestW = g.EWeight[e]
				bestU = u
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	mapTo := make([]int32, nv)
	nc := int32(0)
	for v := 0; v < nv; v++ {
		u := match[v]
		if int(u) >= v {
			mapTo[v] = nc
			if int(u) != v {
				mapTo[u] = nc
			}
			nc++
		}
	}
	// Build the coarse graph: aggregate multi-edges.
	cvw := make([]int64, nc)
	neigh := make([]map[int32]int64, nc)
	for v := 0; v < nv; v++ {
		cv := mapTo[v]
		cvw[cv] += g.VWeight[v]
		if neigh[cv] == nil {
			neigh[cv] = make(map[int32]int64)
		}
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			cu := mapTo[g.Adj[e]]
			if cu != cv {
				neigh[cv][cu] += g.EWeight[e]
			}
		}
	}
	xadj := make([]int32, nc+1)
	var adj []int32
	var ew []int64
	for cv := int32(0); cv < nc; cv++ {
		for cu, w := range neigh[cv] {
			adj = append(adj, cu)
			ew = append(ew, w)
		}
		xadj[cv+1] = int32(len(adj))
		// Sort each neighbour run for determinism (map iteration order is
		// random in Go).
		sortRun(adj, ew, int(xadj[cv]), int(xadj[cv+1]))
	}
	return &Graph{XAdj: xadj, Adj: adj, VWeight: cvw, EWeight: ew}, mapTo
}

func sortRun(adj []int32, ew []int64, lo, hi int) {
	// Insertion sort: runs are short (bounded by degree).
	for i := lo + 1; i < hi; i++ {
		a, w := adj[i], ew[i]
		j := i - 1
		for j >= lo && adj[j] > a {
			adj[j+1], ew[j+1] = adj[j], ew[j]
			j--
		}
		adj[j+1], ew[j+1] = a, w
	}
}

// initialBisection grows side 0 greedily from several random seeds via
// highest-gain expansion (GGGP) and keeps the best cut.
func initialBisection(g *Graph, target0 int64, rnd *rng.Rand) []int32 {
	nv := g.NumVertices()
	const tries = 4
	var best []int32
	var bestCut int64 = -1
	for t := 0; t < tries; t++ {
		side := growRegion(g, target0, rnd.Intn(nv))
		cut := cutOf(g, side)
		if bestCut < 0 || cut < bestCut {
			best, bestCut = side, cut
		}
	}
	return best
}

func growRegion(g *Graph, target0 int64, seedV int) []int32 {
	nv := g.NumVertices()
	side := make([]int32, nv)
	for i := range side {
		side[i] = 1
	}
	var w0 int64
	// Gain of moving v into side 0 = weight of edges to side 0 minus
	// weight of edges to side 1.
	inFrontier := make([]bool, nv)
	frontier := []int32{int32(seedV)}
	inFrontier[seedV] = true
	for w0 < target0 && len(frontier) > 0 {
		// Pick the frontier vertex with the highest gain.
		bestIdx := 0
		var bestGain int64 = -1 << 62
		for i, v := range frontier {
			var gain int64
			for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
				if side[g.Adj[e]] == 0 {
					gain += g.EWeight[e]
				} else {
					gain -= g.EWeight[e]
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		v := frontier[bestIdx]
		frontier[bestIdx] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		side[v] = 0
		w0 += g.VWeight[v]
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			u := g.Adj[e]
			if side[u] == 1 && !inFrontier[u] {
				inFrontier[u] = true
				frontier = append(frontier, u)
			}
		}
	}
	// Disconnected leftovers: if the frontier emptied before reaching the
	// target, move arbitrary side-1 vertices.
	for v := 0; v < nv && w0 < target0; v++ {
		if side[v] == 1 {
			side[v] = 0
			w0 += g.VWeight[v]
		}
	}
	return side
}

func cutOf(g *Graph, side []int32) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if side[v] != side[g.Adj[e]] {
				cut += g.EWeight[e]
			}
		}
	}
	return cut / 2
}

// refineFM runs Fiduccia-Mattheyses passes on a bisection: repeatedly move
// the best-gain movable vertex (respecting the balance envelope and the
// lower0/lower1 weight floors), allowing negative-gain moves within a
// pass, and roll back to the best prefix. Passes stop when no pass
// improves the cut.
func refineFM(g *Graph, side []int32, target0 int64, tol, lower0, lower1 int64) {
	nv := g.NumVertices()
	var w0 int64
	for v := 0; v < nv; v++ {
		if side[v] == 0 {
			w0 += g.VWeight[v]
		}
	}
	total := g.TotalVWeight()
	target1 := total - target0
	gains := make([]int64, nv)
	computeGain := func(v int) int64 {
		var ext, inter int64
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if side[g.Adj[e]] == side[v] {
				inter += g.EWeight[e]
			} else {
				ext += g.EWeight[e]
			}
		}
		return ext - inter
	}
	// Projection from a coarser level can land outside the balance
	// envelope (coarse vertices are heavy); greedily restore balance
	// first, otherwise the envelope check below forbids every move. The
	// same loop pulls weight into a side that starts below its floor.
	for guard := 0; (w0 > target0+tol || total-w0 > target1+tol || w0 < lower0 || total-w0 < lower1) && guard < 4*nv+8; guard++ {
		fromSide := int32(0)
		if total-w0 > target1+tol || w0 < lower0 {
			fromSide = 1
		}
		bestV := -1
		var bestGain int64 = -1 << 62
		for v := 0; v < nv; v++ {
			if side[v] == fromSide {
				if gain := computeGain(v); gain > bestGain {
					bestGain, bestV = gain, v
				}
			}
		}
		if bestV < 0 {
			break
		}
		if side[bestV] == 0 {
			side[bestV] = 1
			w0 -= g.VWeight[bestV]
		} else {
			side[bestV] = 0
			w0 += g.VWeight[bestV]
		}
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		for v := 0; v < nv; v++ {
			gains[v] = computeGain(v)
		}
		locked := make([]bool, nv)
		type rec struct {
			v    int32
			gain int64
		}
		var history []rec
		var cum, bestCum int64
		bestLen := 0
		for moves := 0; moves < nv; moves++ {
			bestV := -1
			var bestGain int64 = -1 << 62
			for v := 0; v < nv; v++ {
				if locked[v] {
					continue
				}
				// Balance envelope: after moving v, neither side may exceed
				// its target by more than tol nor fall below its floor.
				var newW0 int64
				if side[v] == 0 {
					newW0 = w0 - g.VWeight[v]
				} else {
					newW0 = w0 + g.VWeight[v]
				}
				if newW0 > target0+tol || total-newW0 > target1+tol ||
					newW0 < lower0 || total-newW0 < lower1 {
					continue
				}
				if gains[v] > bestGain {
					bestGain, bestV = gains[v], v
				}
			}
			if bestV < 0 {
				break
			}
			// Apply the move.
			v := bestV
			if side[v] == 0 {
				side[v] = 1
				w0 -= g.VWeight[v]
			} else {
				side[v] = 0
				w0 += g.VWeight[v]
			}
			locked[v] = true
			cum += bestGain
			history = append(history, rec{int32(v), bestGain})
			if cum > bestCum {
				bestCum = cum
				bestLen = len(history)
			}
			// Update neighbour gains.
			gains[v] = -gains[v]
			for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
				u := g.Adj[e]
				if side[u] == side[v] {
					gains[u] -= 2 * g.EWeight[e]
				} else {
					gains[u] += 2 * g.EWeight[e]
				}
			}
		}
		// Roll back moves past the best prefix.
		for i := len(history) - 1; i >= bestLen; i-- {
			v := history[i].v
			if side[v] == 0 {
				side[v] = 1
				w0 -= g.VWeight[v]
			} else {
				side[v] = 0
				w0 += g.VWeight[v]
			}
		}
		if bestCum <= 0 {
			return
		}
	}
}
