package partition

import (
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/topo"
)

// pathGraph builds a simple path of nv unit-weight vertices.
func pathGraph(nv int) *Graph {
	xadj := make([]int32, nv+1)
	var adj []int32
	for v := 0; v < nv; v++ {
		if v > 0 {
			adj = append(adj, int32(v-1))
		}
		if v < nv-1 {
			adj = append(adj, int32(v+1))
		}
		xadj[v+1] = int32(len(adj))
	}
	vw := make([]int64, nv)
	ew := make([]int64, len(adj))
	for i := range vw {
		vw[i] = 1
	}
	for i := range ew {
		ew[i] = 1
	}
	return &Graph{XAdj: xadj, Adj: adj, VWeight: vw, EWeight: ew}
}

func TestFromHostSwitchGraph(t *testing.T) {
	g, err := hsgraph.Ring(8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	pg := FromHostSwitchGraph(g)
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	if pg.NumVertices() != 12 {
		t.Fatalf("vertices = %d, want 12", pg.NumVertices())
	}
	// Total edges: 8 host links + 4 ring links, each twice in CSR.
	if len(pg.Adj) != 2*(8+4) {
		t.Fatalf("adjacency entries = %d, want %d", len(pg.Adj), 24)
	}
	// Hosts are degree 1.
	for h := 0; h < 8; h++ {
		if pg.Degree(h) != 1 {
			t.Fatalf("host %d degree = %d", h, pg.Degree(h))
		}
	}
}

func TestBisectPath(t *testing.T) {
	// The optimal bisection of a path cuts exactly one edge.
	g := pathGraph(64)
	parts, err := KWay(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(g, parts)
	if cut != 1 {
		t.Fatalf("path bisection cut = %d, want 1", cut)
	}
	w := PartWeights(g, parts, 2)
	if w[0] != 32 || w[1] != 32 {
		t.Fatalf("part weights %v, want [32 32]", w)
	}
}

func TestKWayPath(t *testing.T) {
	// k-way partition of a path cuts k-1 edges at best.
	g := pathGraph(60)
	for _, k := range []int{3, 4, 5, 6} {
		parts, err := KWay(g, k, 11)
		if err != nil {
			t.Fatal(err)
		}
		cut := EdgeCut(g, parts)
		if cut > int64(k) { // allow one extra over optimal k-1
			t.Fatalf("k=%d: cut = %d, want <= %d", k, cut, k)
		}
		if imb := Imbalance(g, parts, k); imb > 1.15 {
			t.Fatalf("k=%d: imbalance %v too high", k, imb)
		}
	}
}

func TestKWayCoversAllParts(t *testing.T) {
	g := pathGraph(50)
	for k := 1; k <= 16; k++ {
		parts, err := KWay(g, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, k)
		for _, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("part %d out of range for k=%d", p, k)
			}
			seen[p] = true
		}
		for p := 0; p < k; p++ {
			if !seen[p] {
				t.Fatalf("part %d empty for k=%d", p, k)
			}
		}
	}
}

func TestKWayErrors(t *testing.T) {
	g := pathGraph(4)
	if _, err := KWay(g, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KWay(g, 5, 1); err == nil {
		t.Fatal("k > nv accepted")
	}
}

func TestKWayDeterministic(t *testing.T) {
	g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pg := FromHostSwitchGraph(g)
	p1, err := KWay(pg, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := KWay(pg, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("KWay not deterministic")
		}
	}
}

func TestBisectTwoCliques(t *testing.T) {
	// Two 10-cliques joined by a single bridge edge: optimal cut is 1.
	nv := 20
	type edge struct{ a, b int32 }
	var edges []edge
	for c := 0; c < 2; c++ {
		off := int32(c * 10)
		for i := int32(0); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				edges = append(edges, edge{off + i, off + j})
			}
		}
	}
	edges = append(edges, edge{0, 10})
	deg := make([]int32, nv)
	for _, e := range edges {
		deg[e.a]++
		deg[e.b]++
	}
	xadj := make([]int32, nv+1)
	for v := 0; v < nv; v++ {
		xadj[v+1] = xadj[v] + deg[v]
	}
	adj := make([]int32, xadj[nv])
	pos := append([]int32(nil), xadj[:nv]...)
	for _, e := range edges {
		adj[pos[e.a]] = e.b
		pos[e.a]++
		adj[pos[e.b]] = e.a
		pos[e.b]++
	}
	vw := make([]int64, nv)
	ew := make([]int64, len(adj))
	for i := range vw {
		vw[i] = 1
	}
	for i := range ew {
		ew[i] = 1
	}
	g := &Graph{XAdj: xadj, Adj: adj, VWeight: vw, EWeight: ew}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	parts, err := KWay(g, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("two-clique cut = %d, want 1", cut)
	}
}

func TestFatTreeBisectionFull(t *testing.T) {
	// A K-ary fat-tree has full bisection bandwidth: splitting its 1024
	// hosts should cut on the order of n/2 links or more. Mostly a smoke
	// test that realistic instances behave.
	sp, err := topo.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(128)
	if err != nil {
		t.Fatal(err)
	}
	pg := FromHostSwitchGraph(g)
	parts, err := KWay(pg, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(pg, parts)
	if cut < 16 {
		t.Fatalf("fat-tree bisection cut %d suspiciously low", cut)
	}
	if imb := Imbalance(pg, parts, 2); imb > 1.05 {
		t.Fatalf("imbalance %v too high", imb)
	}
}

func TestImbalanceRange(t *testing.T) {
	g, err := hsgraph.RandomConnected(100, 25, 8, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	pg := FromHostSwitchGraph(g)
	for _, k := range []int{2, 3, 5, 7, 11, 16} {
		parts, err := KWay(pg, k, 31)
		if err != nil {
			t.Fatal(err)
		}
		if imb := Imbalance(pg, parts, k); imb > 1.2 {
			t.Fatalf("k=%d: imbalance %v exceeds 1.2", k, imb)
		}
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	g := pathGraph(4)
	bad := &Graph{XAdj: g.XAdj[:3], Adj: g.Adj, VWeight: g.VWeight, EWeight: g.EWeight}
	if bad.Validate() == nil {
		t.Fatal("truncated xadj accepted")
	}
	bad2 := pathGraph(4)
	bad2.Adj[0] = 0 // self loop at vertex 0? adj[0] belongs to vertex 0
	if bad2.Validate() == nil {
		t.Fatal("self loop accepted")
	}
	bad3 := pathGraph(4)
	bad3.Adj[0] = 9
	if bad3.Validate() == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
}

func BenchmarkKWay16Paper(b *testing.B) {
	sp, err := topo.Torus(5, 3, 15)
	if err != nil {
		b.Fatal(err)
	}
	g, err := sp.Build(1024)
	if err != nil {
		b.Fatal(err)
	}
	pg := FromHostSwitchGraph(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(pg, 16, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
