package partition

import (
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestHuntKWayEdgeCases(t *testing.T) {
	r := rng.New(999)
	for trial := 0; trial < 3000; trial++ {
		seed := r.Uint64()
		n := 8 + int(r.Uint64()%60)
		m := 3 + int(r.Uint64()%12)
		k := 2 + int(r.Uint64()%8)
		if !hsgraph.Feasible(n, m, 8) {
			continue
		}
		g, err := hsgraph.RandomConnected(n, m, 8, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		pg := FromHostSwitchGraph(g)
		parts, err := KWay(pg, k, seed+1)
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d k=%d seed=%d): %v", trial, n, m, k, seed, err)
		}
		seen := make([]bool, k)
		for _, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("trial %d: part out of range", trial)
			}
			seen[p] = true
		}
		for pi, s := range seen {
			if !s {
				t.Fatalf("trial %d (n=%d m=%d k=%d seed=%d): part %d empty", trial, n, m, k, seed, pi)
			}
		}
		ideal := float64(pg.TotalVWeight()) / float64(k)
		levels := 0
		for 1<<levels < k {
			levels++
		}
		var maxW int64
		for _, w := range PartWeights(pg, parts, k) {
			if w > maxW {
				maxW = w
			}
		}
		if float64(maxW) > ideal+float64(levels)+1 {
			t.Fatalf("trial %d (n=%d m=%d k=%d seed=%d): maxW %d vs ideal %.2f levels %d", trial, n, m, k, seed, maxW, ideal, levels)
		}
	}
}
