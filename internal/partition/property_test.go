package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// TestPropertyKWayWellFormed: for arbitrary random instances and k, the
// partitioner returns a covering, in-range, reasonably balanced
// assignment whose reported cut matches a recount.
func TestPropertyKWayWellFormed(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw, kRaw uint8) bool {
		n := 8 + int(nRaw)%60
		m := 3 + int(mRaw)%12
		r := 8
		k := 2 + int(kRaw)%8
		if !hsgraph.Feasible(n, m, r) {
			return true
		}
		g, err := hsgraph.RandomConnected(n, m, r, rng.New(seed))
		if err != nil {
			return false
		}
		pg := FromHostSwitchGraph(g)
		if pg.Validate() != nil {
			return false
		}
		parts, err := KWay(pg, k, seed+1)
		if err != nil {
			return false
		}
		if len(parts) != pg.NumVertices() {
			return false
		}
		seen := make([]bool, k)
		for _, p := range parts {
			if p < 0 || int(p) >= k {
				return false
			}
			seen[p] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Cut recount from scratch.
		var cut int64
		for v := 0; v < pg.NumVertices(); v++ {
			for e := pg.XAdj[v]; e < pg.XAdj[v+1]; e++ {
				if parts[v] != parts[pg.Adj[e]] {
					cut += pg.EWeight[e]
				}
			}
		}
		if cut/2 != EdgeCut(pg, parts) {
			return false
		}
		// Balance: recursive bisection rounds by at most one vertex per
		// level, so the largest part is bounded by ideal + log2(k) + 1.
		ideal := float64(pg.TotalVWeight()) / float64(k)
		levels := 0
		for 1<<levels < k {
			levels++
		}
		var maxW int64
		for _, w := range PartWeights(pg, parts, k) {
			if w > maxW {
				maxW = w
			}
		}
		return float64(maxW) <= ideal+float64(levels)+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCutNonNegativeMonotone: more parts cannot give a smaller
// minimum cut than 1 part (which is 0), and the cut never exceeds the
// edge total.
func TestPropertyCutBounds(t *testing.T) {
	check := func(seed uint64, kRaw uint8) bool {
		k := 1 + int(kRaw)%10
		g, err := hsgraph.RandomConnected(40, 10, 8, rng.New(seed))
		if err != nil {
			return false
		}
		pg := FromHostSwitchGraph(g)
		parts, err := KWay(pg, k, seed)
		if err != nil {
			return false
		}
		cut := EdgeCut(pg, parts)
		totalEdges := int64(len(pg.Adj) / 2)
		if k == 1 && cut != 0 {
			return false
		}
		return cut >= 0 && cut <= totalEdges
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Fatal(err)
	}
}
