package mapping

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

func ringFixture(t *testing.T) *hsgraph.Graph {
	t.Helper()
	g, err := hsgraph.Ring(8, 4, 6) // 2 hosts per switch, 4-switch ring
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	m.Add(0, 1, 100)
	m.Add(0, 1, 50)
	m.Add(3, 2, 7)
	if m.At(0, 1) != 150 || m.At(3, 2) != 7 || m.At(1, 0) != 0 {
		t.Fatalf("matrix contents wrong: %+v", m)
	}
	if m.Total() != 157 {
		t.Fatalf("total = %v", m.Total())
	}
}

func TestMatrixAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(2).Add(0, 5, 1)
}

func TestFromTrace(t *testing.T) {
	g := ringFixture(t)
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &mpi.Tracer{}
	_, err = mpi.Run(nw, 4, mpi.Config{Tracer: tr}, func(r *mpi.Rank) error {
		if r.ID() == 0 {
			r.Send(3, 1000, 1)
			r.Send(3, 500, 1)
		}
		if r.ID() == 3 {
			r.Recv(0, 1)
			r.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := FromTrace(tr, 4)
	if m.At(0, 3) != 1500 || m.Total() != 1500 {
		t.Fatalf("trace matrix wrong: %v", m.Bytes)
	}
}

func TestCostKnownValues(t *testing.T) {
	g := ringFixture(t)
	// Hosts 0,1 on switch 0; 2,3 on sw1; 4,5 on sw2; 6,7 on sw3.
	m := NewMatrix(8)
	m.Add(0, 1, 10) // same switch: 2 hops
	m.Add(0, 2, 10) // adjacent switches: 3 hops
	m.Add(0, 4, 10) // opposite switches: 4 hops
	id := make([]int, 8)
	for i := range id {
		id[i] = i
	}
	cost, err := Cost(m, g, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10.0*2 + 10*3 + 10*4; cost != want {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
}

func TestOptimizeImprovesAdversarialMapping(t *testing.T) {
	g := ringFixture(t)
	// Ring application pattern: rank i talks to rank (i+1) mod 8 heavily.
	m := NewMatrix(8)
	for i := 0; i < 8; i++ {
		m.Add(i, (i+1)%8, 1000)
	}
	// Adversarial start: reverse placement makes neighbours far apart...
	// Optimize starts from identity, which is already good on a ring, so
	// first evaluate a scrambled baseline for comparison.
	scrambled := []int{0, 4, 1, 5, 2, 6, 3, 7}
	cs, err := Cost(m, g, scrambled)
	if err != nil {
		t.Fatal(err)
	}
	perm, co, err := Optimize(m, g, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if co > cs {
		t.Fatalf("optimized cost %v worse than scrambled %v", co, cs)
	}
	// Verify the returned cost is consistent.
	check, err := Cost(m, g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check-co) > 1e-6 {
		t.Fatalf("reported cost %v != recomputed %v", co, check)
	}
	// A perfect ring embedding costs: per heavy pair, rank i and i+1
	// ideally co-located (2 hops) or adjacent (3). Lower bound: all pairs
	// at 2 hops is impossible (2 hosts per switch allows 4 co-located
	// pairs), so optimum >= 4*2000... just require a sane improvement
	// over identity? identity: pairs (0,1) colocated (2), (1,2) adjacent
	// (3), ... cost = 4*2*1000... compute identity cost:
	id := make([]int, 8)
	for i := range id {
		id[i] = i
	}
	ci, err := Cost(m, g, id)
	if err != nil {
		t.Fatal(err)
	}
	if co > ci {
		t.Fatalf("optimizer worse than its identity start: %v > %v", co, ci)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	g := ringFixture(t)
	m := NewMatrix(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				m.Add(i, j, float64((i*13+j*7)%19))
			}
		}
	}
	p1, c1, err := Optimize(m, g, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := Optimize(m, g, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("costs differ: %v vs %v", c1, c2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("permutations differ")
		}
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	g := ringFixture(t)
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	out, err := Apply(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank 0 now sits where host 7 was (switch 3).
	if out.SwitchOf(0) != g.SwitchOf(7) {
		t.Fatalf("rank 0 on switch %d, want %d", out.SwitchOf(0), g.SwitchOf(7))
	}
	// Global metrics are permutation-invariant.
	if out.Evaluate().TotalPath != g.Evaluate().TotalPath {
		t.Fatal("apply changed aggregate metrics")
	}
}

func TestApplyRejectsBadPerms(t *testing.T) {
	g := ringFixture(t)
	if _, err := Apply(g, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Apply(g, []int{0, 0, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := Apply(g, []int{0, 1, 2, 3, 4, 5, 6, 99}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestEndToEndMappingSpeedsUpApplication(t *testing.T) {
	// Measure an actual simulated run before and after mapping: a ring
	// application on a ring fabric with a scrambled initial placement.
	g := ringFixture(t)
	scramble := []int{0, 4, 1, 5, 2, 6, 3, 7}
	bad, err := Apply(g, scramble)
	if err != nil {
		t.Fatal(err)
	}
	program := func(r *mpi.Rank) error {
		for round := 0; round < 4; round++ {
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() - 1 + r.Size()) % r.Size()
			rq := r.Irecv(prev, 5)
			r.Send(next, 1<<17, 5)
			r.Wait(rq)
		}
		return nil
	}
	runTime := func(gg *hsgraph.Graph) float64 {
		nw, err := simnet.NewNetwork(gg, simnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := mpi.Run(nw, 8, mpi.Config{}, program)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	before := runTime(bad)

	// Trace the bad run to get the traffic matrix, optimise, re-run.
	tr := &mpi.Tracer{}
	nw, err := simnet.NewNetwork(bad, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(nw, 8, mpi.Config{Tracer: tr}, program); err != nil {
		t.Fatal(err)
	}
	m := FromTrace(tr, 8)
	perm, _, err := Optimize(m, bad, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	better, err := Apply(bad, perm)
	if err != nil {
		t.Fatal(err)
	}
	after := runTime(better)
	if after > before {
		t.Fatalf("mapping made the application slower: %v -> %v", before, after)
	}
}

func TestMatrixIORoundTrip(t *testing.T) {
	m := NewMatrix(5)
	m.Add(0, 4, 123.5)
	m.Add(3, 1, 7)
	m.Add(2, 2, 9) // self traffic allowed in the format
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 5 || back.At(0, 4) != 123.5 || back.At(3, 1) != 7 || back.At(2, 2) != 9 {
		t.Fatalf("round trip changed matrix: %+v", back)
	}
	if back.Total() != m.Total() {
		t.Fatal("total changed")
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no header":    "0 1 5\n",
		"bad header":   "traffic x\n",
		"zero size":    "traffic 0\n",
		"out of range": "traffic 2\n0 5 1\n",
		"negative":     "traffic 2\n0 1 -3\n",
		"garbage":      "traffic 2\na b c\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadMatrixComments(t *testing.T) {
	in := "# generated\ntraffic 3\n\n0 1 10\n# more\n1 2 20\n"
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 10 || m.At(1, 2) != 20 {
		t.Fatalf("parse wrong: %+v", m)
	}
}
