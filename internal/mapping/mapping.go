// Package mapping optimises the placement of application ranks onto the
// hosts of a host-switch graph. The paper's introduction stresses that
// the mapping between logical endpoints and physical nodes strongly
// affects performance; §6.2.1's depth-first placement is one fixed
// heuristic. This package generalises it: given a rank-to-rank traffic
// matrix (measured with mpi.Tracer or synthetic), it searches the space
// of rank->host permutations for one minimising total traffic-weighted
// hop count, with O(n) delta evaluation per candidate swap.
package mapping

import (
	"fmt"

	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// Matrix is an n x n traffic matrix: Bytes[i*n+j] is the volume rank i
// sends to rank j.
type Matrix struct {
	N     int
	Bytes []float64
}

// NewMatrix returns a zero matrix for n ranks.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Bytes: make([]float64, n*n)}
}

// At returns the traffic from rank i to rank j.
func (m *Matrix) At(i, j int) float64 { return m.Bytes[i*m.N+j] }

// Add accumulates traffic from rank i to rank j.
func (m *Matrix) Add(i, j int, bytes float64) {
	if i < 0 || i >= m.N || j < 0 || j >= m.N {
		panic(fmt.Sprintf("mapping: rank pair (%d,%d) out of range for n=%d", i, j, m.N))
	}
	m.Bytes[i*m.N+j] += bytes
}

// Total returns the total traffic volume.
func (m *Matrix) Total() float64 {
	var sum float64
	for _, b := range m.Bytes {
		sum += b
	}
	return sum
}

// FromTrace builds the matrix from a recorded MPI timeline (isend
// events).
func FromTrace(tr *mpi.Tracer, n int) *Matrix {
	m := NewMatrix(n)
	for _, e := range tr.Events {
		if e.Op == "isend" && e.Rank >= 0 && e.Rank < n && e.Peer >= 0 && e.Peer < n {
			m.Add(e.Rank, e.Peer, e.Bytes)
		}
	}
	return m
}

// Cost evaluates a placement: perm[i] is the host of rank i; the cost is
// the sum over rank pairs of traffic times hop count.
func Cost(m *Matrix, g *hsgraph.Graph, perm []int) (float64, error) {
	if len(perm) != m.N {
		return 0, fmt.Errorf("mapping: permutation length %d != n %d", len(perm), m.N)
	}
	if m.N > g.Order() {
		return 0, fmt.Errorf("mapping: %d ranks exceed %d hosts", m.N, g.Order())
	}
	hops, err := hopTable(g)
	if err != nil {
		return 0, err
	}
	var cost float64
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if b := m.At(i, j); b > 0 {
				cost += b * float64(hops.between(g, perm[i], perm[j]))
			}
		}
	}
	return cost, nil
}

// hopTable caches switch distances for host-to-host hop lookups.
type hopsCache struct {
	dist [][]int32
}

func hopTable(g *hsgraph.Graph) (*hopsCache, error) {
	return &hopsCache{dist: g.SwitchDistances()}, nil
}

func (h *hopsCache) between(g *hsgraph.Graph, a, b int) int {
	if a == b {
		return 0
	}
	sa, sb := g.SwitchOf(a), g.SwitchOf(b)
	if sa == sb {
		return 2
	}
	d := h.dist[sa][sb]
	if d < 0 {
		return 1 << 20 // unreachable: effectively infinite
	}
	return int(d) + 2
}

// Optimize searches for a low-cost placement by randomized pairwise
// swaps with greedy acceptance (hill climbing with O(n) delta
// evaluation). It returns the permutation and its cost. The identity
// placement is the starting point.
func Optimize(m *Matrix, g *hsgraph.Graph, iterations int, seed uint64) ([]int, float64, error) {
	n := m.N
	if n > g.Order() {
		return nil, 0, fmt.Errorf("mapping: %d ranks exceed %d hosts", n, g.Order())
	}
	hops, err := hopTable(g)
	if err != nil {
		return nil, 0, err
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	cost, err := Cost(m, g, perm)
	if err != nil {
		return nil, 0, err
	}
	if n < 2 {
		return perm, cost, nil
	}
	rnd := rng.New(seed)
	// rankCost(i) = sum_j traffic(i,j)*hops + traffic(j,i)*hops.
	rowCost := func(i int) float64 {
		var sum float64
		hi := perm[i]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			hj := perm[j]
			d := float64(hops.between(g, hi, hj))
			sum += m.At(i, j)*d + m.At(j, i)*d
		}
		return sum
	}
	for it := 0; it < iterations; it++ {
		a := rnd.Intn(n)
		b := rnd.Intn(n)
		if a == b {
			continue
		}
		before := rowCost(a) + rowCost(b)
		// Swapping a and b double-subtracts/adds the (a,b) term, but it is
		// identical before and after the swap (distance is symmetric in
		// the pair), so the deltas cancel exactly.
		perm[a], perm[b] = perm[b], perm[a]
		after := rowCost(a) + rowCost(b)
		if after >= before {
			perm[a], perm[b] = perm[b], perm[a]
			continue
		}
		cost += after - before
	}
	// Recompute exactly to shed accumulated floating-point drift.
	cost, err = Cost(m, g, perm)
	if err != nil {
		return nil, 0, err
	}
	return perm, cost, nil
}

// Apply returns a copy of g with rank i attached where perm[i] pointed:
// host id i takes the position of host perm[i] in the input graph.
func Apply(g *hsgraph.Graph, perm []int) (*hsgraph.Graph, error) {
	if len(perm) != g.Order() {
		return nil, fmt.Errorf("mapping: permutation length %d != order %d", len(perm), g.Order())
	}
	seen := make([]bool, g.Order())
	for _, h := range perm {
		if h < 0 || h >= g.Order() || seen[h] {
			return nil, fmt.Errorf("mapping: not a permutation")
		}
		seen[h] = true
	}
	out := hsgraph.New(g.Order(), g.Switches(), g.Radix())
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if err := out.Connect(a, b); err != nil {
			return nil, err
		}
	}
	for rank, host := range perm {
		if err := out.AttachHost(rank, g.SwitchOf(host)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
