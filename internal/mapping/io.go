package mapping

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Matrix text format: a header line "traffic <n>" followed by one
// "src dst bytes" triple per line. Zero entries are omitted. Lines
// starting with '#' and blank lines are ignored.

// WriteMatrix serialises m in the text format (entries in row-major
// order, zeros skipped).
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "traffic %d\n", m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if b := m.At(i, j); b > 0 {
				fmt.Fprintf(bw, "%d %d %g\n", i, j, b)
			}
		}
	}
	return bw.Flush()
}

// ReadMatrix parses the text format.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var m *Matrix
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if m == nil {
			var n int
			if _, err := fmt.Sscanf(line, "traffic %d", &n); err != nil {
				return nil, fmt.Errorf("mapping: line %d: expected 'traffic <n>' header: %v", lineNo, err)
			}
			if n < 1 {
				return nil, fmt.Errorf("mapping: line %d: invalid size %d", lineNo, n)
			}
			m = NewMatrix(n)
			continue
		}
		var i, j int
		var b float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &i, &j, &b); err != nil {
			return nil, fmt.Errorf("mapping: line %d: %v", lineNo, err)
		}
		if i < 0 || i >= m.N || j < 0 || j >= m.N {
			return nil, fmt.Errorf("mapping: line %d: pair (%d,%d) out of range", lineNo, i, j)
		}
		if b < 0 {
			return nil, fmt.Errorf("mapping: line %d: negative volume", lineNo)
		}
		m.Add(i, j, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("mapping: empty input")
	}
	return m, nil
}
