// Package vis renders host-switch graphs as standalone SVG documents:
// switches on a circle (or on the cabinet grid of a physical layout),
// hosts as small satellites of their switch, edges as lines. The output
// opens in any browser — no external tooling needed, unlike the DOT
// export.
package vis

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/hsgraph"
)

// Options controls rendering. Zero values take the documented defaults.
type Options struct {
	Size       int  // canvas is Size x Size pixels; default 800
	ShowHosts  bool // draw host satellites
	ShowLabels bool // draw switch indices

	// FailedLinks are switch pairs drawn as dashed red lines — typically
	// the links a fault.Scenario removed, which no longer exist as edges
	// of the (degraded) graph being rendered.
	FailedLinks [][2]int
	// FailedSwitches are drawn in red, the failure analogue of the
	// grey empty-switch highlighting below.
	FailedSwitches []int
}

func (o Options) withDefaults() Options {
	if o.Size == 0 {
		o.Size = 800
	}
	return o
}

type point struct{ x, y float64 }

// WriteSVG renders g with switches evenly spaced on a circle. Edge
// colour encodes nothing; host counts are visible as satellite fans.
func WriteSVG(w io.Writer, g *hsgraph.Graph, o Options) error {
	o = o.withDefaults()
	bw := bufio.NewWriter(w)
	size := float64(o.Size)
	cx, cy := size/2, size/2
	radius := size * 0.38
	m := g.Switches()

	pos := make([]point, m)
	for s := 0; s < m; s++ {
		angle := 2 * math.Pi * float64(s) / float64(m)
		pos[s] = point{cx + radius*math.Cos(angle), cy + radius*math.Sin(angle)}
	}

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Size, o.Size, o.Size, o.Size)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(bw, "<!-- hsgraph n=%d m=%d r=%d -->\n", g.Order(), m, g.Radix())

	// Switch-switch edges.
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#5577aa" stroke-width="1.2" stroke-opacity="0.7"/>`+"\n",
			pos[a].x, pos[a].y, pos[b].x, pos[b].y)
	}
	// Failed links: dashed red ghosts of the removed cables.
	for _, e := range o.FailedLinks {
		a, b := e[0], e[1]
		if a < 0 || a >= m || b < 0 || b >= m {
			return fmt.Errorf("vis: failed link {%d,%d} out of range", a, b)
		}
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cc2222" stroke-width="1.4" stroke-dasharray="5,4" stroke-opacity="0.85"/>`+"\n",
			pos[a].x, pos[a].y, pos[b].x, pos[b].y)
	}
	// Hosts: small fans outside the ring.
	if o.ShowHosts {
		for s := 0; s < m; s++ {
			k := g.HostCount(s)
			if k == 0 {
				continue
			}
			baseAngle := math.Atan2(pos[s].y-cy, pos[s].x-cx)
			for i := 0; i < k; i++ {
				// Place hosts along a short arc outside the switch ring.
				ang := baseAngle + (float64(i)-float64(k-1)/2)*0.05
				hx := cx + (radius+28)*math.Cos(ang)
				hy := cy + (radius+28)*math.Sin(ang)
				fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999999" stroke-width="0.6"/>`+"\n",
					pos[s].x, pos[s].y, hx, hy)
				fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#ffffff" stroke="#666666" stroke-width="0.8"/>`+"\n", hx, hy)
			}
		}
	}
	failed := make(map[int]bool, len(o.FailedSwitches))
	for _, s := range o.FailedSwitches {
		if s < 0 || s >= m {
			return fmt.Errorf("vis: failed switch %d out of range", s)
		}
		failed[s] = true
	}
	// Switches on top.
	for s := 0; s < m; s++ {
		fill, stroke := "#88bbee", "#224466"
		if g.HostCount(s) == 0 {
			fill = "#dddddd" // host-less switches stand out (Fig. 8 effect)
		}
		if failed[s] {
			fill, stroke = "#cc2222", "#661111" // dead switch
		}
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s" stroke="%s" stroke-width="1"/>`+"\n",
			pos[s].x-6, pos[s].y-6, fill, stroke)
		if o.ShowLabels {
			fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="#112233">%d</text>`+"\n",
				pos[s].x, pos[s].y+3, s)
		}
	}
	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}
