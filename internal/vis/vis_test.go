package vis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestWriteSVGStructure(t *testing.T) {
	g, err := hsgraph.Ring(16, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{ShowHosts: true, ShowLabels: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 4 switch rects + 16 host circles + labels.
	if strings.Count(out, "<rect ") != 4+1 { // +1 background
		t.Fatalf("rect count = %d, want 5", strings.Count(out, "<rect "))
	}
	if strings.Count(out, "<circle ") != 16 {
		t.Fatalf("circle count = %d, want 16", strings.Count(out, "<circle "))
	}
	// Ring edges (4) + host stems (16).
	if strings.Count(out, "<line ") != 20 {
		t.Fatalf("line count = %d, want 20", strings.Count(out, "<line "))
	}
	if strings.Count(out, "<text ") != 4 {
		t.Fatalf("label count = %d, want 4", strings.Count(out, "<text "))
	}
}

func TestWriteSVGWithoutHosts(t *testing.T) {
	g, err := hsgraph.RandomConnected(24, 8, 7, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<circle ") != 0 {
		t.Fatal("hosts drawn without ShowHosts")
	}
	if strings.Count(out, "<line ") != g.NumEdges() {
		t.Fatalf("line count = %d, want %d", strings.Count(out, "<line "), g.NumEdges())
	}
}

func TestWriteSVGHighlightsEmptySwitches(t *testing.T) {
	g := hsgraph.New(2, 3, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#dddddd") {
		t.Fatal("empty switch not highlighted")
	}
}
