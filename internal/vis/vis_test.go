package vis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestWriteSVGStructure(t *testing.T) {
	g, err := hsgraph.Ring(16, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{ShowHosts: true, ShowLabels: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 4 switch rects + 16 host circles + labels.
	if strings.Count(out, "<rect ") != 4+1 { // +1 background
		t.Fatalf("rect count = %d, want 5", strings.Count(out, "<rect "))
	}
	if strings.Count(out, "<circle ") != 16 {
		t.Fatalf("circle count = %d, want 16", strings.Count(out, "<circle "))
	}
	// Ring edges (4) + host stems (16).
	if strings.Count(out, "<line ") != 20 {
		t.Fatalf("line count = %d, want 20", strings.Count(out, "<line "))
	}
	if strings.Count(out, "<text ") != 4 {
		t.Fatalf("label count = %d, want 4", strings.Count(out, "<text "))
	}
}

func TestWriteSVGWithoutHosts(t *testing.T) {
	g, err := hsgraph.RandomConnected(24, 8, 7, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<circle ") != 0 {
		t.Fatal("hosts drawn without ShowHosts")
	}
	if strings.Count(out, "<line ") != g.NumEdges() {
		t.Fatalf("line count = %d, want %d", strings.Count(out, "<line "), g.NumEdges())
	}
}

func TestWriteSVGHighlightsEmptySwitches(t *testing.T) {
	g := hsgraph.New(2, 3, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#dddddd") {
		t.Fatal("empty switch not highlighted")
	}
}

func TestWriteSVGFailedElements(t *testing.T) {
	g, err := hsgraph.Ring(16, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade: drop the 1-2 cable the way package fault would.
	if err := g.Disconnect(1, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := Options{FailedLinks: [][2]int{{1, 2}}, FailedSwitches: []int{3}}
	if err := WriteSVG(&buf, g, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 3 surviving ring edges plus one dashed ghost.
	if strings.Count(out, "<line ") != 4 {
		t.Fatalf("line count = %d, want 4", strings.Count(out, "<line "))
	}
	if strings.Count(out, "stroke-dasharray") != 1 {
		t.Fatalf("dashed failed link missing: %d", strings.Count(out, "stroke-dasharray"))
	}
	if strings.Count(out, `fill="#cc2222"`) != 1 {
		t.Fatalf("failed switch not drawn red: %d", strings.Count(out, `fill="#cc2222"`))
	}
	if strings.Count(out, `stroke="#cc2222"`) != 1 {
		t.Fatalf("failed link not drawn red: %d", strings.Count(out, `stroke="#cc2222"`))
	}
	// Out-of-range failures are rejected.
	if err := WriteSVG(&buf, g, Options{FailedSwitches: []int{99}}); err == nil {
		t.Fatal("accepted out-of-range failed switch")
	}
	if err := WriteSVG(&buf, g, Options{FailedLinks: [][2]int{{0, 42}}}); err == nil {
		t.Fatal("accepted out-of-range failed link")
	}
}
