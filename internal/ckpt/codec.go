package ckpt

import (
	"fmt"
	"math"
)

// Enc builds a payload. Append-only; grab the bytes with Finish. The
// format is fixed-width little-endian scalars and length-prefixed slices —
// deterministic (no maps), so equal state always seals to equal bytes.
type Enc struct {
	b []byte
}

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.b = appendU64(e.b, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int (as int64).
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit pattern (NaNs and infinities round-trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(v []byte) {
	e.U64(uint64(len(v)))
	e.b = append(e.b, v...)
}

// String appends a length-prefixed string.
func (e *Enc) String(v string) { e.Bytes([]byte(v)) }

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, f := range v {
		e.F64(f)
	}
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, u := range v {
		e.U64(u)
	}
}

// Finish returns the encoded payload.
func (e *Enc) Finish() []byte { return e.b }

// Dec reads a payload written by Enc. Every read is bounds-checked; the
// first failure sticks, later reads return zero values, and Err/Done
// report it. A Dec never panics and never allocates more than the input
// could hold, whatever the bytes — that is the property the package fuzz
// test pins down.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: decode: "+format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return readU64(v)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Enc.Int, rejecting values that do not fit.
func (d *Dec) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail("int64 %d overflows int", v)
		return 0
	}
	return int(v)
}

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool, rejecting bytes other than 0 or 1.
func (d *Dec) Bool() bool {
	v := d.take(1)
	if v == nil {
		return false
	}
	if v[0] > 1 {
		d.fail("invalid bool byte %d", v[0])
		return false
	}
	return v[0] == 1
}

// Bytes reads a length-prefixed byte slice of at most max bytes. The
// result aliases the input.
func (d *Dec) Bytes(max int) []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) {
		d.fail("slice length %d exceeds cap %d", n, max)
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string of at most max bytes.
func (d *Dec) String(max int) string { return string(d.Bytes(max)) }

// F64s reads a length-prefixed []float64 of at most max elements.
func (d *Dec) F64s(max int) []float64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) || int(n)*8 > len(d.b)-d.off {
		d.fail("float64 slice length %d implausible (cap %d, %d bytes left)", n, max, len(d.b)-d.off)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// U64s reads a length-prefixed []uint64 of at most max elements.
func (d *Dec) U64s(max int) []uint64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) || int(n)*8 > len(d.b)-d.off {
		d.fail("uint64 slice length %d implausible (cap %d, %d bytes left)", n, max, len(d.b)-d.off)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Done returns the first decode failure, or an error if trailing bytes
// remain — a well-formed payload is consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("ckpt: decode: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}
