// Package ckpt is the crash-safe snapshot layer shared by the long-running
// engines (opt.Anneal, fault.Sweep): a small versioned envelope with a CRC
// over its entire contents, written atomically (temp file in the target
// directory, fsync, rename, directory fsync), plus a panic-free binary
// codec for the payloads.
//
// The envelope deliberately knows nothing about what it carries. Engines
// define a payload kind string (e.g. "orp.anneal.v1") and encode their
// state with Enc/Dec; the envelope guarantees that a reader either gets
// back exactly the bytes that were sealed, or an error — a truncated,
// bit-flipped or wrong-version file never yields a payload.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Format constants. Version is the envelope version, independent of any
// payload versioning (which lives in the kind string).
const (
	magic   = "ORPC"
	Version = 1

	// MaxPayload caps the payload size Open will accept. A corrupt length
	// field must not be able to demand gigabytes before the CRC check runs.
	MaxPayload = 1 << 28 // 256 MiB

	// maxKind caps the kind-string length on read.
	maxKind = 128
)

// castagnoli is the CRC-32C table used for every envelope checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrInterrupted is returned by engines that stopped early on an interrupt
// request after persisting their state. Callers distinguish it from real
// failures: the run can be resumed from its checkpoint.
var ErrInterrupted = errors.New("ckpt: interrupted; state saved for resume")

// Seal wraps payload in the envelope: magic, version, kind, length,
// payload, CRC-32C over everything before the checksum.
func Seal(kind string, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+4+4+len(kind)+8+len(payload)+4)
	out = append(out, magic...)
	out = appendU32(out, Version)
	out = appendU32(out, uint32(len(kind)))
	out = append(out, kind...)
	out = appendU64(out, uint64(len(payload)))
	out = append(out, payload...)
	return appendU32(out, crc32.Checksum(out, castagnoli))
}

// Open unwraps an envelope produced by Seal, verifying magic, version,
// structural lengths and the checksum. The returned payload aliases data.
func Open(data []byte) (kind string, payload []byte, err error) {
	if len(data) < len(magic)+4+4+8+4 {
		return "", nil, fmt.Errorf("ckpt: truncated envelope (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("ckpt: bad magic %q", data[:len(magic)])
	}
	// The CRC covers everything before it; check it first so every later
	// field read operates on bytes known to be exactly what Seal wrote.
	body, sum := data[:len(data)-4], readU32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return "", nil, fmt.Errorf("ckpt: checksum mismatch (file %08x, computed %08x)", sum, got)
	}
	off := len(magic)
	if v := readU32(body[off:]); v != Version {
		return "", nil, fmt.Errorf("ckpt: unsupported envelope version %d (this build reads %d)", v, Version)
	}
	off += 4
	kl := int(readU32(body[off:]))
	off += 4
	if kl > maxKind || off+kl > len(body) {
		return "", nil, fmt.Errorf("ckpt: implausible kind length %d", kl)
	}
	kind = string(body[off : off+kl])
	off += kl
	if off+8 > len(body) {
		return "", nil, fmt.Errorf("ckpt: truncated envelope header")
	}
	pl := readU64(body[off:])
	off += 8
	if pl > MaxPayload {
		return "", nil, fmt.Errorf("ckpt: payload length %d exceeds cap %d", pl, MaxPayload)
	}
	if uint64(len(body)-off) != pl {
		return "", nil, fmt.Errorf("ckpt: payload length %d disagrees with file size (%d bytes present)", pl, len(body)-off)
	}
	return kind, body[off:], nil
}

// WriteFile atomically replaces path with a sealed envelope. The snapshot
// is crash-safe: a reader never observes a partial file, because the data
// is written and fsynced to a temp file in the same directory first and
// only then renamed over path (the rename is atomic on POSIX filesystems);
// the directory is fsynced afterwards so the rename itself survives a
// crash.
func WriteFile(path, kind string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(Seal(kind, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is advisory: some filesystems reject it, and the
		// rename is already durable on the ones that matter most.
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads and unwraps the envelope at path.
func ReadFile(path string) (kind string, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	return Open(data)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
