package ckpt

import (
	"bytes"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleEnvelope() []byte {
	var e Enc
	e.U64(42)
	e.F64(3.5)
	e.String("hello snapshot")
	e.F64s([]float64{1, 2, 4, 8})
	e.Bool(true)
	return Seal("orp.test.v1", e.Finish())
}

func TestSealOpenRoundTrip(t *testing.T) {
	data := sampleEnvelope()
	kind, payload, err := Open(data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if kind != "orp.test.v1" {
		t.Fatalf("kind = %q", kind)
	}
	d := NewDec(payload)
	if v := d.U64(); v != 42 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Errorf("F64 = %g", v)
	}
	if v := d.String(64); v != "hello snapshot" {
		t.Errorf("String = %q", v)
	}
	if v := d.F64s(16); len(v) != 4 || v[3] != 8 {
		t.Errorf("F64s = %v", v)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if err := d.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

// TestOpenRejectsTruncation: every strict prefix of a valid envelope must
// be rejected (the crash-mid-write case an atomic rename prevents, but
// the reader must still hold the line on partial copies).
func TestOpenRejectsTruncation(t *testing.T) {
	data := sampleEnvelope()
	for n := 0; n < len(data); n++ {
		if _, _, err := Open(data[:n]); err == nil {
			t.Fatalf("Open accepted a %d/%d-byte prefix", n, len(data))
		}
	}
}

// TestOpenRejectsBitFlips: any single-bit corruption must fail the CRC
// (or a structural check before it).
func TestOpenRejectsBitFlips(t *testing.T) {
	data := sampleEnvelope()
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if _, _, err := Open(mut); err == nil {
				t.Fatalf("Open accepted byte %d bit %d flipped", i, bit)
			}
		}
	}
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	data := sampleEnvelope()
	// Bump the version field and fix up the CRC so only the version is
	// wrong — the error must name the version, not the checksum.
	data[4]++
	body := data[:len(data)-4]
	crc := crc32.Checksum(body, castagnoli)
	data = appendU32(body[:len(body):len(body)], crc)
	_, _, err := Open(data)
	if err == nil {
		t.Fatal("Open accepted an unsupported version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("want a version error, got %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := WriteFile(path, "orp.test.v1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "orp.test.v1" || string(payload) != "payload" {
		t.Fatalf("got %q %q", kind, payload)
	}
	// Overwrite atomically; no temp files may linger.
	if err := WriteFile(path, "orp.test.v1", []byte("payload2")); err != nil {
		t.Fatal(err)
	}
	_, payload, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "payload2" {
		t.Fatalf("payload = %q after overwrite", payload)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := []string{}
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}

func TestDecStickyErrorAndCaps(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // will be read back as an implausible slice length
	d := NewDec(e.Finish())
	if got := d.F64s(8); got != nil {
		t.Fatalf("F64s over cap = %v", got)
	}
	if d.Err() == nil {
		t.Fatal("over-cap length did not error")
	}
	// Error is sticky: further reads return zero values, no panic.
	if v := d.U64(); v != 0 {
		t.Fatalf("post-error U64 = %d", v)
	}
	if d.Done() == nil {
		t.Fatal("Done() lost the sticky error")
	}

	// A length field larger than the remaining bytes must fail without
	// allocating the claimed size.
	var e2 Enc
	e2.U64(math.MaxUint64 / 16)
	d2 := NewDec(e2.Finish())
	if d2.Bytes(1 << 30); d2.Err() == nil {
		t.Fatal("Bytes with absurd length did not error")
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	d := NewDec([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool(7) did not error")
	}
}

// FuzzOpen mirrors the FuzzReadEdgeList discipline: arbitrary bytes must
// either decode cleanly or error — never panic, never hand back a payload
// from a structurally damaged envelope. Valid inputs must round-trip.
func FuzzOpen(f *testing.F) {
	f.Add(sampleEnvelope())
	f.Add(Seal("orp.anneal.v1", nil))
	f.Add(Seal("", bytes.Repeat([]byte{0xff}, 64)))
	f.Add([]byte("ORPC junk"))
	f.Add([]byte{})
	trunc := sampleEnvelope()
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := Open(data)
		if err != nil {
			return
		}
		// Anything Open accepts must re-seal to the identical file: the
		// envelope has exactly one encoding per (kind, payload).
		if !bytes.Equal(Seal(kind, payload), data) {
			t.Fatalf("accepted envelope does not round-trip (kind %q, %d payload bytes)", kind, len(payload))
		}
	})
}

// FuzzDec hammers the codec with arbitrary bytes through a read sequence
// shaped like the anneal snapshot: it must never panic regardless of
// input.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U64(7)
	e.String("kind")
	e.F64s([]float64{1, 2})
	e.Bool(false)
	f.Add(e.Finish())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		d.U64()
		d.String(1 << 10)
		d.F64s(1 << 10)
		d.Bool()
		d.Int()
		d.Bytes(1 << 10)
		d.U64s(1 << 10)
		_ = d.Done()
	})
}
