package topo

import (
	"strings"
	"testing"

	"repro/internal/hsgraph"
)

func TestCyclePlusMatching(t *testing.T) {
	g, err := CyclePlusMatching(64, 32, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every switch: 2 cycle links + 1 matching link = 3.
	for s := 0; s < 32; s++ {
		if g.SwitchDegree(s) != 3 {
			t.Fatalf("switch %d degree %d, want 3", s, g.SwitchDegree(s))
		}
	}
	// Small-world effect: ASPL well below the plain cycle's m/4 = 8.
	aspl, _, ok := g.SwitchASPL()
	if !ok {
		t.Fatal("disconnected")
	}
	if aspl > 5 {
		t.Fatalf("cycle+matching ASPL %v suspiciously high", aspl)
	}
}

func TestCyclePlusMatchingErrors(t *testing.T) {
	if _, err := CyclePlusMatching(10, 5, 8, 1); err == nil {
		t.Fatal("odd m accepted")
	}
	if _, err := CyclePlusMatching(64, 32, 4, 1); err == nil {
		t.Fatal("radix too small accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta = 0: pure ring lattice, deterministic diameter.
	g0, err := WattsStrogatz(64, 32, 8, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	aspl0, _, _ := g0.SwitchASPL()
	// beta = 0.3: rewiring shortens paths (the small-world transition).
	g3, err := WattsStrogatz(64, 32, 8, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
	aspl3, _, _ := g3.SwitchASPL()
	if aspl3 >= aspl0 {
		t.Fatalf("rewiring did not shorten paths: %v vs %v", aspl3, aspl0)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(10, 5, 8, 2, 0.1, 1); err == nil {
		t.Fatal("m <= 2k+1 accepted")
	}
	if _, err := WattsStrogatz(64, 32, 8, 0, 0.1, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := WattsStrogatz(64, 32, 8, 2, 1.5, 1); err == nil {
		t.Fatal("beta > 1 accepted")
	}
	if _, err := WattsStrogatz(64, 32, 5, 2, 0.1, 1); err == nil {
		t.Fatal("radix too small accepted")
	}
}

func TestRandomModelsDeterministic(t *testing.T) {
	a, err := CyclePlusMatching(48, 24, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CyclePlusMatching(48, 24, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(a, b) {
		t.Fatal("cycle+matching not deterministic")
	}
	c, err := WattsStrogatz(48, 24, 8, 2, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := WattsStrogatz(48, 24, 8, 2, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(c, d) {
		t.Fatal("Watts-Strogatz not deterministic")
	}
}

// TestWattsStrogatzAdversarialBounded is the regression test for the
// unbounded retry: at k=1 with beta=1 on a small ring, the rewire pass
// routinely shreds connectivity, and the old implementation recursed on
// itself once per disconnected sample — a stack overflow when the seed
// neighbourhood was unlucky. The bounded loop must terminate for every
// seed with either a valid connected graph or the budget error.
func TestWattsStrogatzAdversarialBounded(t *testing.T) {
	errs := 0
	for seed := uint64(1); seed <= 60; seed++ {
		g, err := WattsStrogatz(12, 6, 6, 1, 1.0, seed)
		if err != nil {
			if !strings.Contains(err.Error(), "attempts") {
				t.Fatalf("seed %d: unexpected error kind: %v", seed, err)
			}
			errs++
			continue
		}
		if !g.HostsConnected() {
			t.Fatalf("seed %d: returned graph is disconnected", seed)
		}
		for s := 0; s < g.Switches(); s++ {
			if g.Degree(s) > g.Radix() {
				t.Fatalf("seed %d: switch %d over radix", seed, s)
			}
		}
	}
	t.Logf("60 adversarial seeds: %d exhausted the attempt budget", errs)
}

// TestWattsStrogatzOnceDisconnectedSamplesExist documents why the bound
// matters: single samples at the adversarial parameters do disconnect.
func TestWattsStrogatzOnceDisconnectedSamplesExist(t *testing.T) {
	disconnected := 0
	for seed := uint64(1); seed <= 200; seed++ {
		g, err := wattsStrogatzOnce(12, 6, 6, 1, 1.0, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.HostsConnected() {
			disconnected++
		}
	}
	if disconnected == 0 {
		t.Fatal("adversarial parameters produced no disconnected sample in 200 draws; the regression scenario has drifted")
	}
}
