package topo

import (
	"strings"
	"testing"

	"repro/internal/hsgraph"
)

// TestRandomSymmetricValid sweeps a parameter grid and checks the
// generator's full contract: connected, radix-respecting graphs closed
// under the cyclic action, with hosts spread orbit-evenly.
func TestRandomSymmetricValid(t *testing.T) {
	cases := []struct {
		n, m, r, sym int
	}{
		{24, 6, 8, 2},
		{24, 6, 8, 3},
		{24, 6, 8, 6},
		{96, 12, 12, 4},
		{100, 12, 14, 2}, // n%m = 4, spread over orbits of 2
		{102, 12, 14, 3}, // n%m = 6, spread over orbits of 3
		{256, 56, 12, 4}, // the orpsolve smoke-test shape
		{48, 16, 7, 8},   // many small orbits
		{30, 15, 6, 5},   // odd orbit count
		{8, 4, 6, 4},     // q = 1: every switch in one orbit family
		{64, 32, 5, 2},   // tight radix
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			g, err := RandomSymmetric(tc.n, tc.m, tc.r, tc.sym, seed)
			if err != nil {
				t.Fatalf("RandomSymmetric(%d,%d,%d,%d,seed=%d): %v", tc.n, tc.m, tc.r, tc.sym, seed, err)
			}
			if g.Order() != tc.n || g.Switches() != tc.m || g.Radix() != tc.r {
				t.Fatalf("case %+v: got n=%d m=%d r=%d", tc, g.Order(), g.Switches(), g.Radix())
			}
			if err := hsgraph.VerifySymmetric(g, tc.sym); err != nil {
				t.Fatalf("case %+v seed=%d: %v", tc, seed, err)
			}
			if !g.HostsConnected() {
				t.Fatalf("case %+v seed=%d: disconnected", tc, seed)
			}
			for s := 0; s < tc.m; s++ {
				if g.Degree(s) > tc.r {
					t.Fatalf("case %+v seed=%d: switch %d degree %d exceeds radix", tc, seed, s, g.Degree(s))
				}
			}
			// Determinism: the same seed reproduces the same graph.
			g2, err := RandomSymmetric(tc.n, tc.m, tc.r, tc.sym, seed)
			if err != nil {
				t.Fatal(err)
			}
			if g.Fingerprint() != g2.Fingerprint() {
				t.Fatalf("case %+v seed=%d: not deterministic", tc, seed)
			}
		}
	}
}

func TestRandomSymmetricRejects(t *testing.T) {
	cases := []struct {
		name         string
		n, m, r, sym int
		needle       string
	}{
		{"sym-too-small", 24, 6, 8, 1, "symmetry"},
		{"m-not-multiple", 24, 7, 8, 2, "multiple"},
		{"remainder-not-orbit-even", 25, 6, 8, 2, "orbit-evenly"},
		{"radix-too-small", 96, 6, 3, 2, "radix"},
		{"m-too-small", 4, 2, 8, 2, ">= 3"},
	}
	for _, tc := range cases {
		_, err := RandomSymmetric(tc.n, tc.m, tc.r, tc.sym, 1)
		if err == nil || !strings.Contains(err.Error(), tc.needle) {
			t.Fatalf("%s: want error containing %q, got %v", tc.name, tc.needle, err)
		}
	}
}

// TestRandomRegularSymmetric checks the ODP-shaped generator: d-regular
// switch graphs, one host per switch, closed under the action.
func TestRandomRegularSymmetric(t *testing.T) {
	cases := []struct {
		n, d, sym int
	}{
		{24, 4, 2},
		{24, 4, 3},
		{24, 3, 2}, // odd degree: antipodal matching, m even forced
		{36, 5, 4}, // odd degree, sym 4
		{30, 6, 5},
		{64, 3, 8},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			g, err := RandomRegularSymmetric(tc.n, tc.n, tc.d+1, tc.d, tc.sym, seed)
			if err != nil {
				t.Fatalf("RandomRegularSymmetric(n=%d,d=%d,sym=%d,seed=%d): %v", tc.n, tc.d, tc.sym, seed, err)
			}
			if err := hsgraph.VerifySymmetric(g, tc.sym); err != nil {
				t.Fatalf("n=%d d=%d sym=%d seed=%d: %v", tc.n, tc.d, tc.sym, seed, err)
			}
			if !g.HostsConnected() {
				t.Fatalf("n=%d d=%d sym=%d seed=%d: disconnected", tc.n, tc.d, tc.sym, seed)
			}
			for s := 0; s < g.Switches(); s++ {
				if got := g.SwitchDegree(s); got != tc.d {
					t.Fatalf("n=%d d=%d sym=%d seed=%d: switch %d degree %d", tc.n, tc.d, tc.sym, seed, s, got)
				}
				if g.HostCount(s) != 1 {
					t.Fatalf("n=%d d=%d sym=%d seed=%d: switch %d carries %d hosts", tc.n, tc.d, tc.sym, seed, s, g.HostCount(s))
				}
			}
		}
	}
	// Odd degree with odd m has no valid handshake, and sym must divide m.
	if _, err := RandomRegularSymmetric(25, 25, 4, 3, 5, 1); err == nil {
		t.Fatal("want error for odd degree on odd m")
	}
	if _, err := RandomRegularSymmetric(24, 24, 5, 4, 7, 1); err == nil {
		t.Fatal("want error when sym does not divide m")
	}
}

// TestIsAntipodal pins the half-turn fixed-pair predicate the generators
// and move operators use to keep every edge orbit full-size.
func TestIsAntipodal(t *testing.T) {
	cases := []struct {
		m, sym, a, b int
		want         bool
	}{
		{12, 2, 0, 6, true},
		{12, 2, 1, 7, true},
		{12, 2, 0, 5, false},
		{12, 3, 0, 6, false}, // odd order: no half-turn
		{12, 4, 0, 6, true},
		{12, 4, 2, 8, true},
		{12, 4, 0, 3, false},
		{12, 6, 5, 11, true},
		{8, 2, 7, 3, true}, // order of endpoints irrelevant
	}
	for _, tc := range cases {
		if got := isAntipodal(tc.m, tc.sym, tc.a, tc.b); got != tc.want {
			t.Fatalf("isAntipodal(m=%d,sym=%d,%d,%d) = %v, want %v", tc.m, tc.sym, tc.a, tc.b, got, tc.want)
		}
	}
}
