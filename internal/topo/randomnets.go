package topo

import (
	"fmt"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// Related-work network models from the paper's §2.1: a cycle plus a
// random matching (Bollobás & Chung, the paper's [6]) and Watts-Strogatz
// small-world rewiring ([8]). Both are switch-graph constructions wrapped
// as host-switch graphs with an even host distribution, giving the
// random-shortcut baselines that ORP graphs are meant to beat.

// CyclePlusMatching builds m switches on a cycle plus a random perfect
// matching (m even): the classic low-diameter 3-regular random model.
// Hosts are spread evenly; radix must fit n/m (rounded up) + 3 ports.
func CyclePlusMatching(n, m, r int, seed uint64) (*hsgraph.Graph, error) {
	if m < 4 || m%2 != 0 {
		return nil, fmt.Errorf("topo: cycle+matching needs even m >= 4, got %d", m)
	}
	perSwitch := (n + m - 1) / m
	if perSwitch+3 > r {
		return nil, fmt.Errorf("topo: radix %d too small for %d hosts/switch plus 3 links", r, perSwitch)
	}
	rnd := rng.New(seed)
	const maxAttempts = 500
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := hsgraph.New(n, m, r)
		if err := hsgraph.DistributeHostsEvenly(g); err != nil {
			return nil, err
		}
		for s := 0; s < m; s++ {
			if err := g.Connect(s, (s+1)%m); err != nil {
				return nil, err
			}
		}
		perm := rnd.Perm(m)
		ok := true
		for i := 0; i < m && ok; i += 2 {
			a, b := perm[i], perm[i+1]
			if a == b || g.HasEdge(a, b) {
				ok = false
				break
			}
			if err := g.Connect(a, b); err != nil {
				ok = false
			}
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topo: failed to sample a cycle+matching on m=%d", m)
}

// WattsStrogatz builds the small-world model: a ring lattice where every
// switch links to its k nearest neighbours on each side, then each
// lattice edge is rewired to a random endpoint with probability beta
// (in [0, 1]). Degree bounds are enforced; rewirings that would violate
// them are skipped (keeping the original edge), as in common
// implementations. Disconnected samples — likely only at adversarial
// parameters such as k=1 with beta=1, where the rewire pass can shred the
// ring — are retried over derived seeds up to a bounded attempt budget
// (mirroring CyclePlusMatching), after which an error is returned instead
// of recursing forever.
func WattsStrogatz(n, m, r, k int, beta float64, seed uint64) (*hsgraph.Graph, error) {
	if m < 2*k+2 {
		return nil, fmt.Errorf("topo: Watts-Strogatz needs m > 2k+1 (m=%d, k=%d)", m, k)
	}
	if k < 1 {
		return nil, fmt.Errorf("topo: k must be >= 1")
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topo: beta %v out of [0,1]", beta)
	}
	perSwitch := (n + m - 1) / m
	if perSwitch+2*k > r {
		return nil, fmt.Errorf("topo: radix %d too small for %d hosts plus 2k=%d links", r, perSwitch, 2*k)
	}
	const maxAttempts = 500
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, err := wattsStrogatzOnce(n, m, r, k, beta, seed+uint64(attempt)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		if g.HostsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topo: Watts-Strogatz produced no connected graph in %d attempts (m=%d, k=%d, beta=%v)", maxAttempts, m, k, beta)
}

// wattsStrogatzOnce draws one (possibly disconnected) Watts-Strogatz
// sample; parameters are pre-validated by WattsStrogatz.
func wattsStrogatzOnce(n, m, r, k int, beta float64, seed uint64) (*hsgraph.Graph, error) {
	rnd := rng.New(seed)
	g := hsgraph.New(n, m, r)
	if err := hsgraph.DistributeHostsEvenly(g); err != nil {
		return nil, err
	}
	// Ring lattice.
	for s := 0; s < m; s++ {
		for d := 1; d <= k; d++ {
			t := (s + d) % m
			if !g.HasEdge(s, t) {
				if err := g.Connect(s, t); err != nil {
					return nil, err
				}
			}
		}
	}
	// Rewire pass: for each lattice edge (s, s+d), with probability beta
	// replace it by (s, random) when legal.
	for s := 0; s < m; s++ {
		for d := 1; d <= k; d++ {
			if rnd.Float64() >= beta {
				continue
			}
			t := (s + d) % m
			if !g.HasEdge(s, t) {
				continue // already rewired away by an earlier step
			}
			u := rnd.Intn(m)
			if u == s || g.HasEdge(s, u) {
				continue
			}
			if err := g.Disconnect(s, t); err != nil {
				return nil, err
			}
			if err := g.Connect(s, u); err != nil {
				// Port budget hit on u: restore the lattice edge.
				if err2 := g.Connect(s, t); err2 != nil {
					return nil, err2
				}
			}
		}
	}
	return g, nil
}
