package topo

import (
	"sort"

	"repro/internal/hsgraph"
)

// RelabelHostsDFS returns a copy of g whose host identifiers are
// renumbered in depth-first order over the switch graph: switch 0 first,
// then recursively its neighbours (lowest index first), assigning
// consecutive host IDs to each visited switch's hosts. This is the paper's
// §6.2.1 placement for the proposed topology ("sequentially connect hosts
// to switches in depth-first order by using backtracking"): consecutive
// MPI ranks land on topologically nearby switches.
func RelabelHostsDFS(g *hsgraph.Graph) *hsgraph.Graph {
	m := g.Switches()
	out := hsgraph.New(g.Order(), m, g.Radix())
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if err := out.Connect(a, b); err != nil {
			panic("topo: relabel could not copy edge: " + err.Error())
		}
	}
	visited := make([]bool, m)
	next := 0
	var dfs func(s int)
	dfs = func(s int) {
		visited[s] = true
		for i := 0; i < g.HostCount(s); i++ {
			if err := out.AttachHost(next, s); err != nil {
				panic("topo: relabel could not attach host: " + err.Error())
			}
			next++
		}
		ns := append([]int32(nil), g.Neighbors(s)...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		for _, u := range ns {
			if !visited[u] {
				dfs(int(u))
			}
		}
	}
	for s := 0; s < m; s++ {
		if !visited[s] {
			dfs(s)
		}
	}
	return out
}
