// Package topo builds the conventional interconnection topologies of the
// paper's Section 6 as host-switch graphs: the K-ary N-torus (direct), the
// dragonfly (direct, a = 2h = 2p, g = ah+1), and the K-ary three-layer
// fat-tree (indirect), plus a hypercube and a full mesh as extras. Every
// builder returns a Spec describing the switch fabric; Build attaches a
// requested number of hosts with the paper's sequential policy.
package topo

import (
	"fmt"

	"repro/internal/hsgraph"
)

// Spec describes a switch fabric before hosts are attached.
type Spec struct {
	Name     string
	Switches int
	Radix    int
	MaxHosts int // total host capacity over all switches

	// hostCap returns the host capacity of switch s.
	hostCap func(s int) int
	// connect adds all switch-switch edges to g.
	connect func(g *hsgraph.Graph) error
}

// Build constructs the host-switch graph with n hosts attached
// sequentially: switches are visited in index order and each is filled to
// its capacity before the next (the paper's §6.2.1 policy for
// conventional topologies).
func (sp *Spec) Build(n int) (*hsgraph.Graph, error) {
	if n < 1 || n > sp.MaxHosts {
		return nil, fmt.Errorf("topo: %s supports 1..%d hosts, requested %d", sp.Name, sp.MaxHosts, n)
	}
	g := hsgraph.New(n, sp.Switches, sp.Radix)
	if err := sp.connect(g); err != nil {
		return nil, fmt.Errorf("topo: wiring %s: %w", sp.Name, err)
	}
	h := 0
	for s := 0; s < sp.Switches && h < n; s++ {
		for i := 0; i < sp.hostCap(s) && h < n; i++ {
			if err := g.AttachHost(h, s); err != nil {
				return nil, fmt.Errorf("topo: attaching host %d to %s switch %d: %w", h, sp.Name, s, err)
			}
			h++
		}
	}
	if h != n {
		return nil, fmt.Errorf("topo: %s placed only %d of %d hosts", sp.Name, h, n)
	}
	return g, nil
}

// BuildRoundRobin attaches n hosts one per switch per pass instead of
// filling each switch; an ablation of the sequential policy.
func (sp *Spec) BuildRoundRobin(n int) (*hsgraph.Graph, error) {
	if n < 1 || n > sp.MaxHosts {
		return nil, fmt.Errorf("topo: %s supports 1..%d hosts, requested %d", sp.Name, sp.MaxHosts, n)
	}
	g := hsgraph.New(n, sp.Switches, sp.Radix)
	if err := sp.connect(g); err != nil {
		return nil, err
	}
	placed := make([]int, sp.Switches)
	h := 0
	for h < n {
		progress := false
		for s := 0; s < sp.Switches && h < n; s++ {
			if placed[s] < sp.hostCap(s) {
				if err := g.AttachHost(h, s); err != nil {
					return nil, err
				}
				placed[s]++
				h++
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("topo: %s ran out of capacity at host %d", sp.Name, h)
		}
	}
	return g, nil
}

// Torus returns the K-ary N-torus spec of §6.1.1: dims (the paper's K)
// dimensions of base (the paper's N) switches each, so base^dims switches
// of which each has 2*dims switch links (base >= 3; base == 2 collapses
// the +/-1 neighbours into one link). Each switch can host r - 2*dims
// hosts.
func Torus(dims, base, r int) (*Spec, error) {
	if dims < 1 {
		return nil, fmt.Errorf("topo: torus dimension %d < 1", dims)
	}
	if base < 2 {
		return nil, fmt.Errorf("topo: torus base %d < 2", base)
	}
	linksPer := 2 * dims
	if base == 2 {
		linksPer = dims
	}
	if r <= linksPer {
		return nil, fmt.Errorf("topo: radix %d leaves no host ports on a %d-D base-%d torus (needs > %d)", r, dims, base, linksPer)
	}
	m := 1
	for i := 0; i < dims; i++ {
		m *= base
	}
	cap_ := r - linksPer
	return &Spec{
		Name:     fmt.Sprintf("torus-%dD-base%d", dims, base),
		Switches: m,
		Radix:    r,
		MaxHosts: m * cap_,
		hostCap:  func(int) int { return cap_ },
		connect: func(g *hsgraph.Graph) error {
			for s := 0; s < m; s++ {
				// Decode the base-ary address of s and connect to the +1
				// neighbour in each dimension (the -1 edge is added by the
				// neighbour itself).
				digitStride := 1
				for d := 0; d < dims; d++ {
					digit := (s / digitStride) % base
					up := s + ((digit+1)%base-digit)*digitStride
					if up != s && !g.HasEdge(s, up) {
						if err := g.Connect(s, up); err != nil {
							return err
						}
					}
					digitStride *= base
				}
			}
			return nil
		},
	}, nil
}

// Dragonfly returns the dragonfly spec of §6.1.2 for group size a (even):
// h = p = a/2, g = a*h + 1 groups, radix 2a-1, one global link between
// every pair of groups, switches within a group fully connected.
func Dragonfly(a int) (*Spec, error) {
	if a < 2 || a%2 != 0 {
		return nil, fmt.Errorf("topo: dragonfly group size a=%d must be even and >= 2", a)
	}
	h := a / 2
	p := a / 2
	groups := a*h + 1
	m := a * groups
	r := (a - 1) + h + p
	return &Spec{
		Name:     fmt.Sprintf("dragonfly-a%d", a),
		Switches: m,
		Radix:    r,
		MaxHosts: p * m,
		hostCap:  func(int) int { return p },
		connect: func(g *hsgraph.Graph) error {
			// Intra-group cliques. Switch j of group u has index u*a + j.
			for u := 0; u < groups; u++ {
				for j := 0; j < a; j++ {
					for k := j + 1; k < a; k++ {
						if err := g.Connect(u*a+j, u*a+k); err != nil {
							return err
						}
					}
				}
			}
			// Global links: group u's global port t (t in [0, a*h)) goes to
			// group (u+t+1) mod groups, attached to switch t/h of u. The
			// peer uses its port t' = groups-2-t, an involutive pairing
			// that realises exactly one link per group pair.
			for u := 0; u < groups; u++ {
				for t := 0; t < a*h; t++ {
					v := (u + t + 1) % groups
					if u < v {
						t2 := groups - 2 - t
						su := u*a + t/h
						sv := v*a + t2/h
						if err := g.Connect(su, sv); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}, nil
}

// FatTree returns the K-ary three-layer fat-tree spec of §6.1.3 (K even):
// K pods of K/2 edge and K/2 aggregation switches plus (K/2)^2 core
// switches; hosts attach only to edge switches (K/2 each).
//
// Switch numbering: edge switches first (pod-major), then aggregation
// (pod-major), then core.
func FatTree(k int) (*Spec, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity K=%d must be even and >= 2", k)
	}
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	m := numEdge + numAgg + numCore
	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, i int) int { return numEdge + pod*half + i }
	coreID := func(x, y int) int { return numEdge + numAgg + x*half + y }
	return &Spec{
		Name:     fmt.Sprintf("fattree-%dary", k),
		Switches: m,
		Radix:    k,
		MaxHosts: k * half * half, // K^3/4
		hostCap: func(s int) int {
			if s < numEdge {
				return half
			}
			return 0
		},
		connect: func(g *hsgraph.Graph) error {
			for pod := 0; pod < k; pod++ {
				// Edge <-> aggregation: complete bipartite within the pod.
				for e := 0; e < half; e++ {
					for a := 0; a < half; a++ {
						if err := g.Connect(edgeID(pod, e), aggID(pod, a)); err != nil {
							return err
						}
					}
				}
				// Aggregation a of every pod connects to core row a.
				for a := 0; a < half; a++ {
					for y := 0; y < half; y++ {
						if err := g.Connect(aggID(pod, a), coreID(a, y)); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}, nil
}

// Hypercube returns a dims-dimensional binary hypercube spec (an extra
// baseline beyond the paper's three).
func Hypercube(dims, r int) (*Spec, error) {
	if dims < 1 {
		return nil, fmt.Errorf("topo: hypercube dimension %d < 1", dims)
	}
	if r <= dims {
		return nil, fmt.Errorf("topo: radix %d leaves no host ports on a %d-cube", r, dims)
	}
	m := 1 << uint(dims)
	cap_ := r - dims
	return &Spec{
		Name:     fmt.Sprintf("hypercube-%d", dims),
		Switches: m,
		Radix:    r,
		MaxHosts: m * cap_,
		hostCap:  func(int) int { return cap_ },
		connect: func(g *hsgraph.Graph) error {
			for s := 0; s < m; s++ {
				for d := 0; d < dims; d++ {
					u := s ^ (1 << uint(d))
					if s < u {
						if err := g.Connect(s, u); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}, nil
}

// FullMesh returns an m-switch complete graph spec.
func FullMesh(m, r int) (*Spec, error) {
	if m < 1 {
		return nil, fmt.Errorf("topo: mesh size %d < 1", m)
	}
	if r < m-1 {
		return nil, fmt.Errorf("topo: radix %d below clique degree %d", r, m-1)
	}
	cap_ := r - (m - 1)
	return &Spec{
		Name:     fmt.Sprintf("fullmesh-%d", m),
		Switches: m,
		Radix:    r,
		MaxHosts: m * cap_,
		hostCap:  func(int) int { return cap_ },
		connect: func(g *hsgraph.Graph) error {
			for a := 0; a < m; a++ {
				for b := a + 1; b < m; b++ {
					if err := g.Connect(a, b); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}, nil
}
