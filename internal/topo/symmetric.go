package topo

import (
	"fmt"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// g-symmetric seed generation (à la the reference implementation's
// ORP_Generate_random_s): random host-switch graphs closed under the
// cyclic group action σ(s) = (s + m/sym) mod m, so that the orbit-quotient
// evaluator (hsgraph.OrbitEvaluator, orbit-mode IncrementalEvaluator) can
// sweep one BFS per switch orbit instead of one per switch. Host counts
// are constant on every orbit and every edge is added together with its
// sym-1 images.
//
// Edges fixed by the half-turn σ^(sym/2) — endpoints exactly m/2 apart,
// possible only for even sym — have orbits of size sym/2 rather than sym.
// The generators never add such "antipodal" edges and opt's symmetric
// move operators never create them, so every edge orbit stays full-size
// and a move can treat all sym images uniformly.

// isAntipodal reports whether the switch pair {a, b} is fixed by the
// half-turn σ^(sym/2): |a-b| == m/2, possible only for even sym.
func isAntipodal(m, sym, a, b int) bool {
	if sym%2 != 0 {
		return false
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return 2*diff == m
}

// checkSymmetric validates the shared (n, m, sym) constraints of the
// symmetric generators.
func checkSymmetric(n, m, sym int) error {
	if sym < 2 {
		return fmt.Errorf("topo: symmetry order must be >= 2, got %d", sym)
	}
	if m < 3 || m%sym != 0 {
		return fmt.Errorf("topo: switch count %d must be a multiple of symmetry %d (and >= 3)", m, sym)
	}
	if (n%m)%sym != 0 {
		return fmt.Errorf("topo: cannot spread %d hosts over %d switches orbit-evenly: the remainder %d is not a multiple of symmetry %d (hosts must be constant on every orbit)",
			n, m, n%m, sym)
	}
	return nil
}

// distributeHostsSymmetric attaches base = n/m hosts to every switch plus
// one extra host to each switch of the first (n%m)/sym orbits, so host
// counts are constant on every orbit. checkSymmetric must have passed.
func distributeHostsSymmetric(g *hsgraph.Graph, sym int) error {
	n, m := g.Order(), g.Switches()
	q := m / sym
	extraOrbits := (n % m) / sym
	h := 0
	for s := 0; s < m; s++ {
		k := n / m
		if s%q < extraOrbits {
			k++
		}
		for i := 0; i < k; i++ {
			if err := g.AttachHost(h, s); err != nil {
				return err
			}
			h++
		}
	}
	return nil
}

// orbitConnect adds edge {a, b} and its sym-1 images. On any failure
// (duplicate edge, port exhaustion) the already-added images are removed
// and false is returned, leaving the graph unchanged. The pair must not
// be antipodal (the orbit would self-collide).
func orbitConnect(g *hsgraph.Graph, sym, a, b int) bool {
	m := g.Switches()
	q := m / sym
	for j := 0; j < sym; j++ {
		aj, bj := (a+j*q)%m, (b+j*q)%m
		if err := g.Connect(aj, bj); err != nil {
			for i := j - 1; i >= 0; i-- {
				ai, bi := (a+i*q)%m, (b+i*q)%m
				if err2 := g.Disconnect(ai, bi); err2 != nil {
					panic("topo: orbit connect rollback failed: " + err2.Error())
				}
			}
			return false
		}
	}
	return true
}

// orbitDisconnect removes edge {a, b} and its sym-1 images, restoring the
// already-removed images and returning false on any failure.
func orbitDisconnect(g *hsgraph.Graph, sym, a, b int) bool {
	m := g.Switches()
	q := m / sym
	for j := 0; j < sym; j++ {
		aj, bj := (a+j*q)%m, (b+j*q)%m
		if err := g.Disconnect(aj, bj); err != nil {
			for i := j - 1; i >= 0; i-- {
				ai, bi := (a+i*q)%m, (b+i*q)%m
				if err2 := g.Connect(ai, bi); err2 != nil {
					panic("topo: orbit disconnect rollback failed: " + err2.Error())
				}
			}
			return false
		}
	}
	return true
}

// mustOrbit applies an orbit edit that restores a state the graph held
// moments ago, so it cannot legitimately fail.
func mustOrbit(ok bool, what string) {
	if !ok {
		panic("topo: symmetric rollback failed to " + what)
	}
}

// RandomSymmetric builds a random connected saturated host-switch graph
// closed under the cyclic group action of order sym (sym | m): the
// symmetric counterpart of hsgraph.RandomConnected, and the standard
// annealing start for -symmetry runs. Hosts are spread orbit-evenly
// (which requires sym | n mod m), a full ring guarantees connectivity,
// and random edge orbits are added until no further orbit fits — so the
// graph is saturated within the symmetric subspace (a free-port pair may
// remain if only an asymmetric edge could join it). Equal seeds give
// equal graphs.
func RandomSymmetric(n, m, r, sym int, seed uint64) (*hsgraph.Graph, error) {
	if err := checkSymmetric(n, m, sym); err != nil {
		return nil, err
	}
	perSwitch := (n + m - 1) / m
	if perSwitch+2 > r {
		return nil, fmt.Errorf("topo: radix %d too small for %d hosts/switch plus the 2 ring links", r, perSwitch)
	}
	rnd := rng.New(seed)
	g := hsgraph.New(n, m, r)
	if err := distributeHostsSymmetric(g, sym); err != nil {
		return nil, err
	}
	// Full ring {s, s+1}: orbit-closed (a union of m/sym edge orbits),
	// never antipodal for m >= 3, and makes every switch reachable.
	for s := 0; s < m; s++ {
		if err := g.Connect(s, (s+1)%m); err != nil {
			return nil, err
		}
	}
	addOrbit := func(a, b int) bool {
		if a == b || isAntipodal(m, sym, a, b) || g.HasEdge(a, b) {
			return false
		}
		return orbitConnect(g, sym, a, b)
	}
	// Randomized fill, then a deterministic representative sweep to
	// saturate the subspace (every edge orbit has a representative with
	// one endpoint in [0, m/sym)).
	misses := 0
	for misses < 8*m {
		if addOrbit(rnd.Intn(m), rnd.Intn(m)) {
			misses = 0
		} else {
			misses++
		}
	}
	for a := 0; a < m/sym; a++ {
		for b := 0; b < m; b++ {
			addOrbit(a, b)
		}
	}
	if !g.HostsConnected() {
		return nil, fmt.Errorf("topo: symmetric generator produced a disconnected graph (n=%d, m=%d, r=%d, sym=%d)", n, m, r, sym)
	}
	if err := hsgraph.VerifySymmetric(g, sym); err != nil {
		return nil, err
	}
	return g, nil
}

// symSwapRandomEdges attempts one degree-preserving double-edge swap
// applied to a whole orbit: pick edges {a,b} and {c,d}, replace them (and
// all their images) by {a,d} and {b,c} (and all theirs). Swaps touching
// or creating antipodal edges are rejected, as are collisions anywhere in
// the four orbits; the graph is unchanged on rejection.
func symSwapRandomEdges(g *hsgraph.Graph, sym int, rnd *rng.Rand) bool {
	ne := g.NumEdges()
	if ne < 2 {
		return false
	}
	m := g.Switches()
	a, b := g.Edge(rnd.Intn(ne))
	c, d := g.Edge(rnd.Intn(ne))
	if rnd.Intn(2) == 1 {
		c, d = d, c
	}
	if a == c || a == d || b == c || b == d {
		return false
	}
	if g.HasEdge(a, d) || g.HasEdge(b, c) {
		return false
	}
	if isAntipodal(m, sym, a, b) || isAntipodal(m, sym, c, d) ||
		isAntipodal(m, sym, a, d) || isAntipodal(m, sym, b, c) {
		return false
	}
	if !orbitDisconnect(g, sym, a, b) {
		return false
	}
	if !orbitDisconnect(g, sym, c, d) {
		mustOrbit(orbitConnect(g, sym, a, b), "restore {a,b}")
		return false
	}
	if !orbitConnect(g, sym, a, d) {
		mustOrbit(orbitConnect(g, sym, c, d), "restore {c,d}")
		mustOrbit(orbitConnect(g, sym, a, b), "restore {a,b}")
		return false
	}
	if !orbitConnect(g, sym, b, c) {
		mustOrbit(orbitDisconnect(g, sym, a, d), "remove {a,d}")
		mustOrbit(orbitConnect(g, sym, c, d), "restore {c,d}")
		mustOrbit(orbitConnect(g, sym, a, b), "restore {a,b}")
		return false
	}
	return true
}

// RandomRegularSymmetric builds a connected switch-degree-regular
// host-switch graph closed under the order-sym cyclic action: the
// symmetric counterpart of hsgraph.RandomRegular, used as the ODP
// (graph-golf) start. The base is a circulant (chords 1..degree/2 plus,
// for odd degree, the antipodal perfect matching — whose edges are fixed
// by the half-turn and therefore never moved afterwards), randomized by
// batches of orbit double-edge swaps with connectivity-checked rollback.
// Requires m | n·(well, sym | m and sym | n mod m), degree < m, and
// m*degree even.
func RandomRegularSymmetric(n, m, r, degree, sym int, seed uint64) (*hsgraph.Graph, error) {
	if err := checkSymmetric(n, m, sym); err != nil {
		return nil, err
	}
	if (n+m-1)/m+degree > r {
		return nil, fmt.Errorf("topo: hosts-per-switch %d + degree %d exceeds radix %d", (n+m-1)/m, degree, r)
	}
	if m*degree%2 != 0 {
		return nil, fmt.Errorf("topo: m*degree must be even (m=%d, degree=%d)", m, degree)
	}
	if degree >= m {
		return nil, fmt.Errorf("topo: degree %d must be below switch count %d", degree, m)
	}
	if degree < 2 && m > 2 {
		return nil, fmt.Errorf("topo: degree %d cannot connect %d switches", degree, m)
	}
	rnd := rng.New(seed)
	g := hsgraph.New(n, m, r)
	if err := distributeHostsSymmetric(g, sym); err != nil {
		return nil, err
	}
	for dd := 1; dd <= degree/2; dd++ {
		for s := 0; s < m; s++ {
			t := (s + dd) % m
			if s != t && !g.HasEdge(s, t) {
				if err := g.Connect(s, t); err != nil {
					return nil, err
				}
			}
		}
	}
	if degree%2 == 1 {
		// m is even here (m*degree even with odd degree).
		for s := 0; s < m/2; s++ {
			if err := g.Connect(s, s+m/2); err != nil {
				return nil, err
			}
		}
	}
	for s := 0; s < m; s++ {
		if g.SwitchDegree(s) != degree {
			return nil, fmt.Errorf("topo: symmetric circulant gave degree %d at switch %d, want %d (m=%d)", g.SwitchDegree(s), s, degree, m)
		}
	}
	// Randomize in batches of orbit swaps, rolling back any batch that
	// disconnects the graph (mirrors hsgraph's circulant randomization).
	target := 10 * m * degree
	for done := 0; done < target; {
		snapshot := g.Clone()
		batch := m
		applied := 0
		for i := 0; i < batch*4 && applied < batch; i++ {
			if symSwapRandomEdges(g, sym, rnd) {
				applied++
			}
		}
		if g.HostsConnected() {
			done += applied
			if applied == 0 {
				break // no legal orbit swap exists; keep the circulant
			}
		} else {
			g = snapshot
		}
	}
	if !g.HostsConnected() {
		return nil, fmt.Errorf("topo: symmetric regular generator produced a disconnected graph (m=%d, degree=%d, sym=%d)", m, degree, sym)
	}
	if err := hsgraph.VerifySymmetric(g, sym); err != nil {
		return nil, err
	}
	return g, nil
}
