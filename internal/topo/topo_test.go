package topo

import (
	"testing"

	"repro/internal/hsgraph"
)

func TestTorusPaperConfiguration(t *testing.T) {
	// §6.3.1: 5-D base-3 torus with r=15: m=243, n <= 1215.
	sp, err := Torus(5, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Switches != 243 || sp.MaxHosts != 1215 || sp.Radix != 15 {
		t.Fatalf("spec = %+v, want m=243 cap=1215 r=15", sp)
	}
	g, err := sp.Build(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every switch has exactly 10 switch links in a 5-D torus.
	for s := 0; s < 243; s++ {
		if g.SwitchDegree(s) != 10 {
			t.Fatalf("switch %d has %d links, want 10", s, g.SwitchDegree(s))
		}
	}
	// Edge count: m * 2K / 2 = 243*5.
	if g.NumEdges() != 243*5 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 243*5)
	}
}

func TestTorusDistances(t *testing.T) {
	// 2-D base-4 torus: switch diameter is 2+2 = 4.
	sp, err := Torus(2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	_, diam, ok := g.SwitchASPL()
	if !ok || diam != 4 {
		t.Fatalf("2-D base-4 torus switch diameter = %d (ok=%v), want 4", diam, ok)
	}
}

func TestTorusBase2(t *testing.T) {
	// Base 2 collapses +/-1 neighbours: a 3-D base-2 torus is a 3-cube.
	sp, err := Torus(3, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if g.SwitchDegree(s) != 3 {
			t.Fatalf("base-2 torus switch %d degree = %d, want 3", s, g.SwitchDegree(s))
		}
	}
	hc, err := Hypercube(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := hc.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Evaluate().TotalPath != g.Evaluate().TotalPath {
		t.Fatal("3-D base-2 torus and 3-cube metrics differ")
	}
}

func TestTorusErrors(t *testing.T) {
	if _, err := Torus(0, 3, 15); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := Torus(5, 1, 15); err == nil {
		t.Fatal("base 1 accepted")
	}
	if _, err := Torus(5, 3, 10); err == nil {
		t.Fatal("radix 10 on 5-D torus accepted (needs > 10)")
	}
}

func TestDragonflyPaperConfiguration(t *testing.T) {
	// §6.3.2: a=8 -> h=p=4, g=33 groups, m=264, r=15, n <= 1056.
	sp, err := Dragonfly(8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Switches != 264 || sp.Radix != 15 || sp.MaxHosts != 1056 {
		t.Fatalf("spec = %+v, want m=264 r=15 cap=1056", sp)
	}
	g, err := sp.Build(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every switch: 7 intra-group + 4 global = 11 switch links.
	for s := 0; s < sp.Switches; s++ {
		if g.SwitchDegree(s) != 11 {
			t.Fatalf("switch %d has %d links, want 11", s, g.SwitchDegree(s))
		}
	}
	// Group graph diameter: intra 1, inter via exactly one global link:
	// switch diameter at most 3 (local, global, local).
	_, diam, ok := g.SwitchASPL()
	if !ok {
		t.Fatal("dragonfly disconnected")
	}
	if diam > 3 {
		t.Fatalf("dragonfly switch diameter = %d, want <= 3", diam)
	}
}

func TestDragonflyGroupPairsSingleLink(t *testing.T) {
	sp, err := Dragonfly(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(sp.MaxHosts)
	if err != nil {
		t.Fatal(err)
	}
	a := 4
	groups := sp.Switches / a
	links := make(map[[2]int]int)
	for i := 0; i < g.NumEdges(); i++ {
		x, y := g.Edge(i)
		gx, gy := x/a, y/a
		if gx == gy {
			continue
		}
		if gx > gy {
			gx, gy = gy, gx
		}
		links[[2]int{gx, gy}]++
	}
	wantPairs := groups * (groups - 1) / 2
	if len(links) != wantPairs {
		t.Fatalf("%d group pairs linked, want %d", len(links), wantPairs)
	}
	for pair, c := range links {
		if c != 1 {
			t.Fatalf("group pair %v has %d links, want 1", pair, c)
		}
	}
}

func TestDragonflyErrors(t *testing.T) {
	if _, err := Dragonfly(3); err == nil {
		t.Fatal("odd a accepted")
	}
	if _, err := Dragonfly(0); err == nil {
		t.Fatal("a=0 accepted")
	}
}

func TestFatTreePaperConfiguration(t *testing.T) {
	// §6.3.3: 16-ary fat-tree: m=320, r=16, n=1024.
	sp, err := FatTree(16)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Switches != 320 || sp.Radix != 16 || sp.MaxHosts != 1024 {
		t.Fatalf("spec = %+v, want m=320 r=16 cap=1024", sp)
	}
	g, err := sp.Build(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hosts only on the 128 edge switches, 8 each.
	for s := 0; s < sp.Switches; s++ {
		want := 0
		if s < 128 {
			want = 8
		}
		if g.HostCount(s) != want {
			t.Fatalf("switch %d has %d hosts, want %d", s, g.HostCount(s), want)
		}
	}
	// All ports used on edge and aggregation layers; core uses K.
	met := g.Evaluate()
	if !met.Connected {
		t.Fatal("fat-tree disconnected")
	}
	// Host diameter of a 3-layer fat-tree: up 3, down 3 => 6 hops between
	// switches in different pods + 2 host links... host-to-host path:
	// h-edge-agg-core-agg-edge-h = 6 edges.
	if met.Diameter != 6 {
		t.Fatalf("fat-tree host diameter = %d, want 6", met.Diameter)
	}
}

func TestFatTreeSmall(t *testing.T) {
	sp, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Switches != 20 || sp.MaxHosts != 16 {
		t.Fatalf("4-ary fat-tree spec = %+v", sp)
	}
	g, err := sp.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Within one pod: host on edge 0 to host on edge 1: h-e0-a-e1-h = 4.
	if d := g.HostDistance(0, 2); d != 4 {
		t.Fatalf("intra-pod distance = %d, want 4", d)
	}
	if d := g.HostDistance(0, 15); d != 6 {
		t.Fatalf("inter-pod distance = %d, want 6", d)
	}
}

func TestFatTreeErrors(t *testing.T) {
	if _, err := FatTree(5); err == nil {
		t.Fatal("odd K accepted")
	}
	if _, err := FatTree(0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	sp, err := Torus(2, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Build(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := sp.Build(sp.MaxHosts + 1); err == nil {
		t.Fatal("over-capacity build accepted")
	}
}

func TestBuildRoundRobinSpreadsHosts(t *testing.T) {
	sp, err := Torus(2, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.BuildRoundRobin(9)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 9; s++ {
		if g.HostCount(s) != 1 {
			t.Fatalf("round robin put %d hosts on switch %d", g.HostCount(s), s)
		}
	}
	gSeq, err := sp.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential fills the first 5 switches (capacity 2 each, 4 full + 1).
	if gSeq.HostCount(0) != 2 || gSeq.HostCount(8) != 0 {
		t.Fatal("sequential policy did not fill in order")
	}
}

func TestHypercubeAndFullMesh(t *testing.T) {
	hc, err := Hypercube(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hc.Build(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, diam, _ := g.SwitchASPL()
	if diam != 4 {
		t.Fatalf("4-cube diameter = %d, want 4", diam)
	}
	fm, err := FullMesh(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := fm.Build(30)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Evaluate().Diameter != 3 {
		t.Fatalf("full mesh host diameter = %d, want 3", gm.Evaluate().Diameter)
	}
	if _, err := FullMesh(6, 4); err == nil {
		t.Fatal("radix below clique degree accepted")
	}
	if _, err := Hypercube(4, 4); err == nil {
		t.Fatal("hypercube with no host ports accepted")
	}
}

func TestRelabelHostsDFS(t *testing.T) {
	// Path 0-1-2 with 2 hosts each: DFS order equals switch order here,
	// so relabeling is the identity on this fixture.
	g, err := hsgraph.Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := RelabelHostsDFS(g)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if !hsgraph.Equal(g, out) {
		t.Fatal("DFS relabel of a path fixture should be the identity")
	}
	// A graph where switch order != DFS order: star with hosts everywhere.
	// DFS from hub visits hub, then leaf 1, 2, ... — identity again; use a
	// custom wiring: 0-2, 2-1 (so DFS is 0,2,1).
	g2 := hsgraph.New(6, 3, 5)
	for h, s := range []int{0, 0, 1, 1, 2, 2} {
		if err := g2.AttachHost(h, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := g2.Connect(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect(2, 1); err != nil {
		t.Fatal(err)
	}
	out2 := RelabelHostsDFS(g2)
	if err := out2.Validate(); err != nil {
		t.Fatal(err)
	}
	// DFS visits 0 (hosts 0,1), 2 (hosts 2,3), 1 (hosts 4,5).
	wantSwitch := []int{0, 0, 2, 2, 1, 1}
	for h, s := range wantSwitch {
		if out2.SwitchOf(h) != s {
			t.Fatalf("host %d on switch %d, want %d", h, out2.SwitchOf(h), s)
		}
	}
	// Metrics are invariant under host relabeling.
	if g2.Evaluate().TotalPath != out2.Evaluate().TotalPath {
		t.Fatal("relabeling changed metrics")
	}
}

func TestRelabelPreservesCounts(t *testing.T) {
	sp, err := Dragonfly(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(50)
	if err != nil {
		t.Fatal(err)
	}
	out := RelabelHostsDFS(g)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.Switches(); s++ {
		if g.HostCount(s) != out.HostCount(s) {
			t.Fatalf("relabel changed host count on switch %d", s)
		}
	}
}

func TestBuildRoundRobinErrors(t *testing.T) {
	sp, err := Torus(2, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.BuildRoundRobin(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := sp.BuildRoundRobin(sp.MaxHosts + 1); err == nil {
		t.Fatal("over capacity accepted")
	}
}

func TestHypercubeCapacity(t *testing.T) {
	sp, err := Hypercube(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MaxHosts != 16*4 {
		t.Fatalf("capacity = %d, want 64", sp.MaxHosts)
	}
	if _, err := Hypercube(0, 8); err == nil {
		t.Fatal("dims 0 accepted")
	}
}

func TestFullMeshErrors(t *testing.T) {
	if _, err := FullMesh(0, 8); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestTorusHostCapacityRespected(t *testing.T) {
	sp, err := Torus(2, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(sp.MaxHosts)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.Switches(); s++ {
		if g.Degree(s) > g.Radix() {
			t.Fatalf("switch %d over radix", s)
		}
	}
}
