// Package stats provides the small descriptive-statistics toolkit used by
// the repository's multi-seed experiment studies: summary statistics and
// deterministic bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = percentileSorted(sorted, 50)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.3g min=%.6g median=%.6g max=%.6g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// percentileSorted returns the p-th percentile (0..100) of a sorted
// sample by linear interpolation.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (0..100) of the sample by linear
// interpolation. Edge cases are defined rather than left to panic or
// propagate, mirroring obs.HistogramSnapshot.Quantile: p is clamped to
// [0, 100] (NaN counts as 0), NaN elements are ignored, and a sample with
// no finite-or-infinite values — including the empty sample — reports 0,
// so text surfaces rendering percentiles never print NaN or crash.
func Percentile(xs []float64, p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0:
		p = 0
	case p > 100:
		p = 100
	}
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// BootstrapCI returns a deterministic percentile-bootstrap confidence
// interval for the mean at the given confidence level (e.g. 0.95), using
// resamples draws seeded by seed.
func BootstrapCI(xs []float64, confidence float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	if resamples < 1 {
		resamples = 1000
	}
	r := rng.New(seed)
	means := make([]float64, resamples)
	for i := range means {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return percentileSorted(means, alpha*100), percentileSorted(means, (1-alpha)*100)
}
