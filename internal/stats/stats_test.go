package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("median = %v", s.Median)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Median != 3.5 {
		t.Fatalf("single-sample summary %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%.1f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBootstrapCIContainsMeanUsually(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lo, hi := BootstrapCI(xs, 0.95, 2000, 1)
	mean := 5.5
	if lo > mean || hi < mean {
		t.Fatalf("CI [%v, %v] excludes the sample mean %v", lo, hi, mean)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	// Deterministic for equal seeds.
	lo2, hi2 := BootstrapCI(xs, 0.95, 2000, 1)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
}

func TestBootstrapCIWidthShrinksWithConfidence(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	lo95, hi95 := BootstrapCI(xs, 0.95, 3000, 7)
	lo50, hi50 := BootstrapCI(xs, 0.50, 3000, 7)
	if hi50-lo50 >= hi95-lo95 {
		t.Fatalf("50%% CI [%v,%v] not narrower than 95%% CI [%v,%v]", lo50, hi50, lo95, hi95)
	}
}

func TestPropertySummaryOrdering(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileEdgeCases pins the defined behaviour on the inputs that
// used to panic (empty sample, p outside [0, 100]) or return NaN (NaN
// elements), mirroring the obs.Quantile fix: p is clamped, NaN elements
// are ignored, and a sample with nothing usable reports 0.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty-out-of-range", []float64{}, 200, 0},
		{"all-nan", []float64{nan, nan}, 50, 0},
		{"p-below-clamps-to-min", []float64{3, 1, 2}, -10, 1},
		{"p-above-clamps-to-max", []float64{3, 1, 2}, 150, 3},
		{"p-nan-clamps-to-min", []float64{3, 1, 2}, nan, 1},
		{"nan-elements-ignored", []float64{nan, 1, nan, 3}, 100, 3},
		{"nan-elements-ignored-median", []float64{nan, 1, 3}, 50, 2},
		{"single", []float64{7}, 99, 7},
		{"median-interpolates", []float64{0, 10}, 50, 5},
		{"p0", []float64{5, 2, 9}, 0, 2},
		{"p100", []float64{5, 2, 9}, 100, 9},
	}
	for _, tc := range cases {
		got := Percentile(tc.xs, tc.p)
		if math.IsNaN(got) {
			t.Errorf("%s: Percentile returned NaN", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Percentile = %g, want %g", tc.name, got, tc.want)
		}
	}
}
