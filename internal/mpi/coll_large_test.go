package mpi

import (
	"fmt"
	"testing"
)

func TestLargeCollectivesComplete(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			nw := collectiveWorld(t, p)
			_, err := Run(nw, p, Config{}, func(r *Rank) error {
				r.BcastScatterAllgather(0, 1<<20)
				r.BcastAuto(0, 100)
				r.BcastAuto(0, 1<<20)
				r.AllreduceRabenseifner(1 << 20)
				r.AllreduceAuto(64)
				r.AllreduceAuto(1 << 20)
				r.AllgatherRecursiveDoubling(4096)
				r.AlltoallBruck(64)
				r.AlltoallAuto(16)
				r.AlltoallAuto(1 << 18)
				r.Scan(4096)
				r.BcastBinomial(0, 2048)
				r.Barrier()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLargeBcastBeatsBinomialOnBandwidth(t *testing.T) {
	// For a long message, scatter+allgather should finish no later than
	// the binomial tree (which sends the full payload log(p) times along
	// the critical path).
	nw := collectiveWorld(t, 16)
	timeOf := func(f func(r *Rank)) float64 {
		stats, err := Run(nw, 16, Config{}, func(r *Rank) error {
			f(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	const bytes = 8 << 20
	binomial := timeOf(func(r *Rank) { r.Bcast(0, bytes) })
	vdg := timeOf(func(r *Rank) { r.BcastScatterAllgather(0, bytes) })
	if vdg > binomial {
		t.Fatalf("scatter+allgather (%v) slower than binomial (%v) at 8 MiB", vdg, binomial)
	}
}

func TestRabenseifnerBeatsRecursiveDoublingOnBandwidth(t *testing.T) {
	nw := collectiveWorld(t, 16)
	timeOf := func(f func(r *Rank)) float64 {
		stats, err := Run(nw, 16, Config{}, func(r *Rank) error {
			f(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	const bytes = 8 << 20
	rd := timeOf(func(r *Rank) { r.Allreduce(bytes) })
	rab := timeOf(func(r *Rank) { r.AllreduceRabenseifner(bytes) })
	if rab > rd {
		t.Fatalf("Rabenseifner (%v) slower than recursive doubling (%v) at 8 MiB", rab, rd)
	}
}

func TestBruckFewerFlowsThanPairwise(t *testing.T) {
	nw := collectiveWorld(t, 16)
	flowsOf := func(f func(r *Rank)) int64 {
		stats, err := Run(nw, 16, Config{}, func(r *Rank) error {
			f(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.FlowsCompleted
	}
	bruck := flowsOf(func(r *Rank) { r.AlltoallBruck(16) })
	pair := flowsOf(func(r *Rank) { r.Alltoall(16) })
	if bruck >= pair {
		t.Fatalf("Bruck used %d flows, pairwise %d; Bruck must send fewer messages", bruck, pair)
	}
}

func TestScanOrdering(t *testing.T) {
	// Rank p-1 holds the full prefix; its completion cannot precede the
	// arrival of at least log2(p) message latencies.
	nw := collectiveWorld(t, 8)
	var last float64
	_, err := Run(nw, 8, Config{}, func(r *Rank) error {
		r.Scan(1024)
		if r.ID() == 7 {
			last = r.Time()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last <= 0 {
		t.Fatal("rank 7 finished scan at t=0")
	}
}

func TestAutoSelectionThreshold(t *testing.T) {
	// The auto entry points must route to different algorithms across the
	// threshold; observable via flow counts (binomial bcast: p-1 flows;
	// scatter+allgather: ~p-1 + p*(p-1) flows).
	nw := collectiveWorld(t, 8)
	flowsOf := func(bytes float64) int64 {
		stats, err := Run(nw, 8, Config{}, func(r *Rank) error {
			r.BcastAuto(0, bytes)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.FlowsCompleted
	}
	small := flowsOf(1024)
	large := flowsOf(1 << 20)
	if small >= large {
		t.Fatalf("auto selection did not switch algorithms: %d vs %d flows", small, large)
	}
}
