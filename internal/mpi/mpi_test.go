package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// ringWorld builds a network of p hosts on p/2 switches in a ring.
func ringWorld(t testing.TB, p int) *simnet.Network {
	t.Helper()
	m := p / 2
	if m < 1 {
		m = 1
	}
	g, err := hsgraph.Ring(p, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSendRecvBasic(t *testing.T) {
	nw := ringWorld(t, 4)
	var recvTime float64
	stats, err := Run(nw, 4, Config{}, func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(3, 1e6, 42)
		case 3:
			r.Recv(0, 42)
			recvTime = r.Time()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvTime <= 0 {
		t.Fatal("receive completed at time zero")
	}
	// 1 MB at 5 GB/s is 200 us plus overheads; sanity-band the result.
	if recvTime < 1e6/5e9 || recvTime > 1e-3 {
		t.Fatalf("receive time %v outside sane band", recvTime)
	}
	if stats.FlowsCompleted == 0 {
		t.Fatal("no flows recorded")
	}
}

func TestEagerVsRendezvousSendCompletion(t *testing.T) {
	nw := ringWorld(t, 4)
	var eagerDone, rendezvousDone float64
	_, err := Run(nw, 4, Config{EagerLimit: 1000}, func(r *Rank) error {
		switch r.ID() {
		case 0:
			// Eager: send completes without any receiver action... but a
			// matching receive must eventually exist for the flow.
			req := r.Isend(1, 100, 1)
			r.Wait(req)
			eagerDone = r.Time()
			req2 := r.Isend(1, 1e6, 2)
			r.Wait(req2)
			rendezvousDone = r.Time()
		case 1:
			r.Compute(1e6) // 10 us of local work before receiving
			r.Recv(0, 1)
			r.Recv(0, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Eager send completes in ~overhead, long before the receiver posts.
	if eagerDone > 5e-6 {
		t.Fatalf("eager send completed at %v, expected ~overhead", eagerDone)
	}
	// Rendezvous completes only after the receiver arrives at 10us.
	if rendezvousDone < 10e-6 {
		t.Fatalf("rendezvous send completed at %v, before receiver posted", rendezvousDone)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	nw := ringWorld(t, 2)
	order := []int{}
	_, err := Run(nw, 2, Config{}, func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, float64(100*(i+1)), 7)
			}
		} else {
			for i := 0; i < 5; i++ {
				r.Recv(0, 7)
				order = append(order, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("received %d messages", len(order))
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	nw := ringWorld(t, 3)
	_, err := Run(nw, 3, Config{}, func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Recv(AnySource, AnyTag)
			r.Recv(AnySource, AnyTag)
		default:
			r.Send(0, 500, r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockOnMissingSend(t *testing.T) {
	nw := ringWorld(t, 2)
	_, err := Run(nw, 2, Config{}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Recv(1, 9) // never sent
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	nw := ringWorld(t, 2)
	_, err := Run(nw, 2, Config{}, func(r *Rank) error {
		if r.ID() == 1 {
			return fmt.Errorf("synthetic failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("expected program error, got %v", err)
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	nw := ringWorld(t, 2)
	var t0 float64
	_, err := Run(nw, 1, Config{FlopsPerHost: 1e9}, func(r *Rank) error {
		r.Compute(2e9) // 2 seconds at 1 GFlops
		t0 = r.Time()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t0-2) > 1e-9 {
		t.Fatalf("compute advanced to %v, want 2", t0)
	}
}

func collectiveWorld(t testing.TB, p int) *simnet.Network {
	t.Helper()
	sp, err := topo.FatTree(4) // 16 hosts, ample paths
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	if p > 16 {
		t.Fatalf("collectiveWorld supports up to 16 ranks, got %d", p)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBarrierSynchronises(t *testing.T) {
	nw := collectiveWorld(t, 8)
	after := make([]float64, 8)
	_, err := Run(nw, 8, Config{}, func(r *Rank) error {
		// Rank i works for i microseconds, then barriers.
		r.Compute(float64(r.ID()) * 100e3) // i us at 100 GFlops
		r.Barrier()
		after[r.ID()] = r.Time()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// No rank may leave the barrier before the slowest rank arrived (7 us).
	for i, ti := range after {
		if ti < 7e-6 {
			t.Fatalf("rank %d left barrier at %v, before last arrival", i, ti)
		}
	}
}

func TestCollectivesComplete(t *testing.T) {
	// Smoke-matrix: every collective at several rank counts, including
	// non-powers of two.
	for _, p := range []int{1, 2, 3, 5, 8, 13, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			nw := collectiveWorld(t, p)
			_, err := Run(nw, p, Config{}, func(r *Rank) error {
				r.Barrier()
				r.Bcast(0, 4096)
				r.Bcast(p-1, 100)
				r.Reduce(0, 4096)
				r.Allreduce(8)
				r.Allreduce(1 << 20)
				r.Allgather(1024)
				r.Alltoall(2048)
				sizes := make([]float64, p)
				for i := range sizes {
					sizes[i] = float64(100 * (i + 1))
				}
				r.Alltoallv(sizes)
				r.Gather(0, 512)
				r.Scatter(0, 512)
				r.ReduceScatterBlock(256)
				r.Barrier()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	nw := collectiveWorld(t, 16)
	times := make([]float64, 16)
	_, err := Run(nw, 16, Config{}, func(r *Rank) error {
		r.Bcast(3, 1e6)
		times[r.ID()] = r.Time()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every non-root must finish strictly after the root started; root 3's
	// completion is when its last child send finished.
	for i, ti := range times {
		if ti <= 0 {
			t.Fatalf("rank %d has zero bcast time", i)
		}
	}
}

func TestAlltoallScalesWithSize(t *testing.T) {
	nw := collectiveWorld(t, 8)
	run := func(bytes float64) float64 {
		var finish float64
		_, err := Run(nw, 8, Config{}, func(r *Rank) error {
			r.Alltoall(bytes)
			if r.ID() == 0 {
				finish = r.Time()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return finish
	}
	small, large := run(1e4), run(1e6)
	if large < 10*small {
		t.Fatalf("alltoall time did not scale: %v vs %v", small, large)
	}
}

func TestDeterministicCollectives(t *testing.T) {
	run := func() float64 {
		nw := collectiveWorld(t, 16)
		stats, err := Run(nw, 16, Config{}, func(r *Rank) error {
			r.Alltoall(32768)
			r.Allreduce(8192)
			r.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("elapsed differs: %v vs %v", a, b)
	}
}

func TestRunErrors(t *testing.T) {
	nw := ringWorld(t, 4)
	if _, err := Run(nw, 0, Config{}, func(r *Rank) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := Run(nw, 5, Config{}, func(r *Rank) error { return nil }); err == nil {
		t.Fatal("size beyond hosts accepted")
	}
}

func TestSendToInvalidRankPanicsIntoError(t *testing.T) {
	nw := ringWorld(t, 2)
	_, err := Run(nw, 2, Config{}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(7, 10, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("send to invalid rank did not error")
	}
}

func TestPacketModeCollectives(t *testing.T) {
	nw := collectiveWorld(t, 8)
	fluid, err := Run(nw, 8, Config{}, func(r *Rank) error {
		r.Alltoall(32768)
		r.Allreduce(4096)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	packet, err := Run(nw, 8, Config{PacketMode: true}, func(r *Rank) error {
		r.Alltoall(32768)
		r.Allreduce(4096)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The two fidelity levels must agree on the order of magnitude.
	if packet.Elapsed < fluid.Elapsed/4 || packet.Elapsed > fluid.Elapsed*4 {
		t.Fatalf("models diverge: fluid %v vs packet %v", fluid.Elapsed, packet.Elapsed)
	}
}
