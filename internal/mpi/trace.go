package mpi

import (
	"fmt"
	"io"
	"sort"
)

// Tracer records the communication timeline of an MPI run: every
// point-to-point post and completion plus compute phases. Attach one via
// Config.Tracer; it is filled in during Run (single-threaded scheduler,
// no locking needed) and can be inspected or dumped afterwards.
type Tracer struct {
	Events []TraceEvent
}

// TraceEvent is one timeline entry.
type TraceEvent struct {
	Time  float64 // simulated seconds at which the event was recorded
	Rank  int
	Op    string // "isend", "irecv", "send-done", "recv-done", "compute"
	Peer  int    // peer rank (-1 for compute)
	Bytes float64
	Tag   int
}

func (e TraceEvent) String() string {
	if e.Op == "compute" {
		return fmt.Sprintf("%.9f r%d compute %.0f flops", e.Time, e.Rank, e.Bytes)
	}
	return fmt.Sprintf("%.9f r%d %s peer=%d bytes=%.0f tag=%d", e.Time, e.Rank, e.Op, e.Peer, e.Bytes, e.Tag)
}

// record appends an event (no-op on a nil tracer).
func (tr *Tracer) record(e TraceEvent) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// ByRank returns the events of one rank in time order.
func (tr *Tracer) ByRank(rank int) []TraceEvent {
	var out []TraceEvent
	for _, e := range tr.Events {
		if e.Rank == rank {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TotalBytes sums the bytes of all "isend" events (each message once).
func (tr *Tracer) TotalBytes() float64 {
	var sum float64
	for _, e := range tr.Events {
		if e.Op == "isend" {
			sum += e.Bytes
		}
	}
	return sum
}

// MessageCount returns the number of point-to-point messages posted.
func (tr *Tracer) MessageCount() int {
	n := 0
	for _, e := range tr.Events {
		if e.Op == "isend" {
			n++
		}
	}
	return n
}

// Dump writes the full timeline in time order.
func (tr *Tracer) Dump(w io.Writer) error {
	events := append([]TraceEvent(nil), tr.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
