package mpi

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Tracer records the communication timeline of an MPI run: every
// point-to-point post and completion plus compute phases. Attach one via
// Config.Tracer; it is filled in during Run (single-threaded scheduler,
// no locking needed) and can be inspected or dumped afterwards.
type Tracer struct {
	Events []TraceEvent
}

// TraceEvent is one timeline entry.
type TraceEvent struct {
	Time  float64 // simulated seconds at which the event was recorded
	Rank  int
	Op    string // "isend", "irecv", "send-done", "recv-done", "compute"
	Peer  int    // peer rank (-1 for compute)
	Bytes float64
	Tag   int
}

func (e TraceEvent) String() string {
	if e.Op == "compute" {
		return fmt.Sprintf("%.9f r%d compute %.0f flops", e.Time, e.Rank, e.Bytes)
	}
	return fmt.Sprintf("%.9f r%d %s peer=%d bytes=%.0f tag=%d", e.Time, e.Rank, e.Op, e.Peer, e.Bytes, e.Tag)
}

// record appends an event (no-op on a nil tracer).
func (tr *Tracer) record(e TraceEvent) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// ByRank returns the events of one rank in time order.
func (tr *Tracer) ByRank(rank int) []TraceEvent {
	var out []TraceEvent
	for _, e := range tr.Events {
		if e.Rank == rank {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TotalBytes sums the bytes of all "isend" events (each message once).
func (tr *Tracer) TotalBytes() float64 {
	var sum float64
	for _, e := range tr.Events {
		if e.Op == "isend" {
			sum += e.Bytes
		}
	}
	return sum
}

// MessageCount returns the number of point-to-point messages posted.
func (tr *Tracer) MessageCount() int {
	n := 0
	for _, e := range tr.Events {
		if e.Op == "isend" {
			n++
		}
	}
	return n
}

// ChromeEvents converts the timeline to Chrome trace_event records: one
// thread row per rank, compute phases as complete spans (their duration
// reconstructed from the recorded flops and flopsPerHost; pass the
// Config.FlopsPerHost of the run, or <= 0 for the 100 GFlops default) and
// message posts as instants. Timestamps are microseconds of simulated
// time.
func (tr *Tracer) ChromeEvents(flopsPerHost float64) []obs.TraceEvent {
	if flopsPerHost <= 0 {
		flopsPerHost = 100e9
	}
	const pid = 1
	evs := []obs.TraceEvent{obs.MetadataEvent("process_name", pid, 0, "mpi ranks")}
	ranksSeen := make(map[int]bool)
	row := func(rank int) int {
		if !ranksSeen[rank] {
			ranksSeen[rank] = true
			evs = append(evs, obs.MetadataEvent("thread_name", pid, rank, fmt.Sprintf("rank %d", rank)))
		}
		return rank
	}
	for _, e := range tr.Events {
		ts := e.Time * 1e6
		if e.Op == "compute" {
			evs = append(evs, obs.TraceEvent{
				Name: "compute", Cat: "compute", Ph: "X",
				Ts: ts, Dur: e.Bytes / flopsPerHost * 1e6, Pid: pid, Tid: row(e.Rank),
				Args: map[string]any{"flops": e.Bytes},
			})
			continue
		}
		evs = append(evs, obs.TraceEvent{
			Name: e.Op, Cat: "p2p", Ph: "i", Ts: ts, Pid: pid, Tid: row(e.Rank), S: "t",
			Args: map[string]any{"peer": e.Peer, "bytes": e.Bytes, "tag": e.Tag},
		})
	}
	return evs
}

// WriteChromeTrace writes the timeline as a chrome://tracing-loadable
// trace_event JSON array.
func (tr *Tracer) WriteChromeTrace(w io.Writer, flopsPerHost float64) error {
	return obs.WriteChromeTrace(w, tr.ChromeEvents(flopsPerHost))
}

// Dump writes the full timeline in time order.
func (tr *Tracer) Dump(w io.Writer) error {
	events := append([]TraceEvent(nil), tr.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
