package mpi

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
)

func TestTracerRecordsTimeline(t *testing.T) {
	nw := ringWorld(t, 4)
	tr := &Tracer{}
	_, err := Run(nw, 4, Config{Tracer: tr}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(1e6)
			r.Send(1, 5000, 42)
		}
		if r.ID() == 1 {
			r.Recv(0, 42)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MessageCount() != 1 {
		t.Fatalf("messages = %d, want 1", tr.MessageCount())
	}
	if tr.TotalBytes() != 5000 {
		t.Fatalf("bytes = %v, want 5000", tr.TotalBytes())
	}
	r0 := tr.ByRank(0)
	if len(r0) != 2 || r0[0].Op != "compute" || r0[1].Op != "isend" {
		t.Fatalf("rank 0 timeline wrong: %v", r0)
	}
	if r0[1].Time < r0[0].Time {
		t.Fatal("timeline out of order")
	}
	r1 := tr.ByRank(1)
	if len(r1) != 1 || r1[0].Op != "irecv" || r1[0].Peer != 0 {
		t.Fatalf("rank 1 timeline wrong: %v", r1)
	}
}

func TestTracerCollectiveVolume(t *testing.T) {
	nw := collectiveWorld(t, 8)
	tr := &Tracer{}
	_, err := Run(nw, 8, Config{Tracer: tr}, func(r *Rank) error {
		r.Alltoall(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise all-to-all: 8 ranks x 7 steps x 1 send of 1000 B.
	if tr.MessageCount() != 56 {
		t.Fatalf("messages = %d, want 56", tr.MessageCount())
	}
	if tr.TotalBytes() != 56000 {
		t.Fatalf("bytes = %v, want 56000", tr.TotalBytes())
	}
}

func TestTracerDump(t *testing.T) {
	nw := ringWorld(t, 2)
	tr := &Tracer{}
	_, err := Run(nw, 2, Config{Tracer: tr}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 100, 7)
		} else {
			r.Recv(0, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "isend") || !strings.Contains(out, "irecv") {
		t.Fatalf("dump missing events:\n%s", out)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	nw := ringWorld(t, 2)
	_, err := Run(nw, 2, Config{}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(100)
			r.Send(1, 100, 1)
		} else {
			r.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracerChromeExport(t *testing.T) {
	nw := ringWorld(t, 4)
	tr := &Tracer{}
	ftr := &simnet.FlowTracer{}
	st, err := Run(nw, 4, Config{Tracer: tr, FlowTracer: ftr, TrackLinkStats: true, LinkSeriesBucket: 1e-4},
		func(r *Rank) error {
			if r.ID() == 0 {
				r.Compute(1e6)
				r.Send(1, 1e6, 7) // rendezvous-sized: becomes a network flow
			}
			if r.ID() == 1 {
				r.Recv(0, 7)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans, instants := 0, 0
	for _, e := range evs {
		switch e.Ph {
		case "X":
			spans++
			// 1e6 flops at the default 100 GFlops = 10 µs.
			if e.Name == "compute" && e.Dur != 10 {
				t.Errorf("compute span dur %v µs, want 10", e.Dur)
			}
		case "i":
			instants++
		}
	}
	if spans != 1 || instants != 2 {
		t.Errorf("spans=%d instants=%d, want 1 compute span + isend/irecv instants", spans, instants)
	}

	// The rendezvous message shows up in the flow-level trace too.
	if n := len(ftr.Latencies()); n != 1 {
		t.Errorf("flow latencies = %d, want 1", n)
	}
	if st.Links == nil {
		t.Error("Stats.Links empty with TrackLinkStats")
	}
	if len(st.LinkSeries) == 0 {
		t.Error("Stats.LinkSeries empty with LinkSeriesBucket set")
	}
}
