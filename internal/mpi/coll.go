package mpi

import "math/bits"

// Collective algorithms in the style of MVAPICH2/MPICH. Every rank must
// call the same collectives in the same order; an internal per-rank
// sequence number keeps the tag spaces of consecutive collectives (and of
// user point-to-point traffic) disjoint.

// collTagBase starts the internal tag space well away from user tags.
const collTagBase = 1 << 28

func (r *Rank) collTag() int {
	r.collSeq++
	return collTagBase + r.collSeq
}

// Barrier blocks until all ranks arrive (dissemination algorithm:
// ceil(log2 p) rounds of 1-byte token exchanges).
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for k := 1; k < p; k <<= 1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		r.SendRecv(dst, 1, src, 1, tag)
	}
}

// Bcast broadcasts bytes from root to every rank (binomial tree).
func (r *Rank) Bcast(root int, bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	relative := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if relative&mask != 0 {
			src := (r.id - mask + p) % p
			r.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p {
			dst := (r.id + mask) % p
			r.Send(dst, bytes, tag)
		}
		mask >>= 1
	}
}

// Reduce reduces bytes of data from all ranks onto root (binomial tree;
// the arithmetic itself is not modelled, only the message traffic).
func (r *Rank) Reduce(root int, bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	relative := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if relative&mask == 0 {
			srcRel := relative | mask
			if srcRel < p {
				src := (srcRel + root) % p
				r.Recv(src, tag)
			}
		} else {
			dst := ((relative &^ mask) + root) % p
			r.Send(dst, bytes, tag)
			break
		}
		mask <<= 1
	}
}

// Allreduce performs a reduction whose result lands on every rank,
// using recursive doubling with the standard fold for non-power-of-two
// sizes (the MVAPICH2 choice for small/medium messages).
func (r *Rank) Allreduce(bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	p2 := 1 << uint(bits.Len(uint(p))-1) // largest power of two <= p
	rem := p - p2

	// Fold phase: the first 2*rem ranks pair up; evens send to odds and
	// drop out of the doubling phase.
	inGroup := true
	groupRank := -1
	switch {
	case r.id < 2*rem && r.id%2 == 0:
		r.Send(r.id+1, bytes, tag)
		inGroup = false
	case r.id < 2*rem:
		r.Recv(r.id-1, tag)
		groupRank = r.id / 2
	default:
		groupRank = r.id - rem
	}

	if inGroup {
		for mask := 1; mask < p2; mask <<= 1 {
			partnerGroup := groupRank ^ mask
			partner := groupToRank(partnerGroup, rem)
			r.SendRecv(partner, bytes, partner, bytes, tag+1)
		}
	}

	// Unfold: odds return the result to the evens they folded.
	if r.id < 2*rem {
		if r.id%2 == 0 {
			r.Recv(r.id+1, tag+2)
		} else {
			r.Send(r.id-1, bytes, tag+2)
		}
	}
	r.collSeq += 2 // account for the tag+1 and tag+2 sub-phases
}

func groupToRank(g, rem int) int {
	if g < rem {
		return 2*g + 1
	}
	return g + rem
}

// Allgather gathers bytesPerRank from every rank onto every rank using
// the ring algorithm: p-1 steps forwarding one block at a time.
func (r *Rank) Allgather(bytesPerRank float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		r.SendRecv(right, bytesPerRank, left, bytesPerRank, tag)
	}
}

// Alltoall exchanges bytesPerPair between every pair of ranks using the
// pairwise-exchange algorithm (p-1 balanced steps; works for any p).
func (r *Rank) Alltoall(bytesPerPair float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.SendRecv(dst, bytesPerPair, src, bytesPerPair, tag)
	}
}

// Alltoallv is Alltoall with per-destination sizes; sizes[d] is the
// number of bytes this rank sends to rank d (sizes[r.id] is ignored).
func (r *Rank) Alltoallv(sizes []float64) {
	p := r.Size()
	if len(sizes) != p {
		panic("mpi: Alltoallv sizes length mismatch")
	}
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.SendRecv(dst, sizes[dst], src, 0, tag)
	}
}

// Gather collects bytesPerRank from every rank onto root (linear).
func (r *Rank) Gather(root int, bytesPerRank float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	if r.id == root {
		reqs := make([]*Request, 0, p-1)
		for src := 0; src < p; src++ {
			if src != root {
				reqs = append(reqs, r.Irecv(src, tag))
			}
		}
		r.WaitAll(reqs...)
	} else {
		r.Send(root, bytesPerRank, tag)
	}
}

// Scatter distributes bytesPerRank from root to every rank (linear).
func (r *Rank) Scatter(root int, bytesPerRank float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	if r.id == root {
		reqs := make([]*Request, 0, p-1)
		for dst := 0; dst < p; dst++ {
			if dst != root {
				reqs = append(reqs, r.Isend(dst, bytesPerRank, tag))
			}
		}
		r.WaitAll(reqs...)
	} else {
		r.Recv(root, tag)
	}
}

// ReduceScatterBlock reduces and scatters equal blocks: modelled as a
// pairwise exchange of block-sized messages (p-1 steps), the message
// pattern of the MPICH pairwise reduce-scatter.
func (r *Rank) ReduceScatterBlock(blockBytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.SendRecv(dst, blockBytes, src, blockBytes, tag)
	}
}
